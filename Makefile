# Make targets are the single entry points for humans and CI alike
# (.github/workflows/ci.yml invokes exactly these).

GO ?= go

# Where the persistent snapshot store lives (database + statistics +
# true-cardinality caches). `make snapshot` fills it; every jobench
# command accepts -cache-dir to use it.
CACHE_DIR ?= .jobench-cache
SNAPSHOT_SCALE ?= 0.3

.PHONY: build test test-short race-short bench bench-smoke fmt fmt-check vet ci snapshot

build:
	$(GO) build ./...

# Full suite, including the multi-minute workload sweeps CI runs.
test:
	$(GO) test ./...

# Developer loop: skips the slow engine/experiments sweeps.
test-short:
	$(GO) test -short ./...

# Race detector over the short suite (the parallel runner's main hazard
# surface); the full suite under -race would take tens of minutes.
race-short:
	$(GO) test -race -short ./...

# Full benchmark run with allocation stats.
bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration per benchmark, no tests: catches bit-rot in bench_test.go
# and establishes a perf baseline without benchmarking-grade runtimes.
# Includes BenchmarkTruecardCompute (serial vs parallel truecard DP).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Build (or refresh) the snapshot cache: generates the database, runs
# ANALYZE, computes all 113 true-cardinality stores, and persists the lot
# under CACHE_DIR. A second invocation with a warm cache is near-instant;
# CI keys this directory on the snapshot format sources via actions/cache.
snapshot:
	$(GO) run ./cmd/jobench snapshot build -cache-dir $(CACHE_DIR) -scale $(SNAPSHOT_SCALE)

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Everything the CI checks job runs, in order.
ci: fmt-check vet build test bench-smoke
