# Make targets are the single entry points for humans and CI alike
# (.github/workflows/ci.yml invokes exactly these).

GO ?= go

# Where the persistent snapshot store lives (database + statistics +
# true-cardinality caches). `make snapshot` fills it; every jobench
# command accepts -cache-dir to use it.
CACHE_DIR ?= .jobench-cache
SNAPSHOT_SCALE ?= 0.3

# Where `make serve` listens.
SERVE_ADDR ?= :8080

.PHONY: build test test-short race-short bench bench-smoke bench-json bench-service chaos chaos-short chaos-fleet fmt fmt-check vet docs-check ci snapshot serve smoke-serve

# bench-service knobs: how long the mixed load runs, how many concurrent
# workers fire it, which scale the replica fleet serves, and which worlds
# (workloads and generator seeds) the load spreads across — distinct worlds
# are what make the consistent-hash router involve every replica.
LOAD_DURATION ?= 10s
LOAD_CONCURRENCY ?= 8
BENCH_SERVICE_SCALE ?= 0.1
BENCH_SERVICE_SEEDS ?= 42,43,44
BENCH_SERVICE_WORKLOADS ?= imdb,tpch

# Where bench-json drops its perf-trajectory artifacts.
BENCH_DIR ?= bench

build:
	$(GO) build ./...

# Full suite, including the multi-minute workload sweeps CI runs.
test:
	$(GO) test ./...

# Developer loop: skips the slow engine/experiments sweeps.
test-short:
	$(GO) test -short ./...

# Race detector over the short suite (the parallel runner's main hazard
# surface); the full suite under -race would take tens of minutes.
race-short:
	$(GO) test -race -short ./...

# Full benchmark run with allocation stats.
bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration per benchmark, no tests: catches bit-rot in bench_test.go
# and establishes a perf baseline without benchmarking-grade runtimes.
# Includes BenchmarkTruecardCompute (serial vs parallel truecard DP) and
# the engine micro-benches (BenchmarkEngineExecuteJOB/EngineHashJoin).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Perf-trajectory capture of the hot-path benchmarks (engine execution,
# truecard DP) at benchmarking-grade iteration counts: one run yields
# BENCH_hotpaths.json (the full `go test -json` stream) and
# BENCH_hotpaths.txt (benchstat-compatible text recovered from it by
# cmd/benchtxt). CI uploads $(BENCH_DIR) as an artifact on every push, so
# regressions show up as a diffable series.
bench-json:
	@mkdir -p $(BENCH_DIR)
	$(GO) test -json -run='^$$' -bench='BenchmarkEngineExecuteJOB|BenchmarkEngineHashJoin|BenchmarkTruecardCompute' \
		-benchmem -benchtime=5x -count=3 ./internal/engine ./internal/truecard \
		> $(BENCH_DIR)/BENCH_hotpaths.json
	$(GO) run ./cmd/benchtxt < $(BENCH_DIR)/BENCH_hotpaths.json > $(BENCH_DIR)/BENCH_hotpaths.txt
	@cat $(BENCH_DIR)/BENCH_hotpaths.txt

# Build (or refresh) the snapshot cache: generates the database, runs
# ANALYZE, computes all 113 true-cardinality stores, and persists the lot
# under CACHE_DIR. A second invocation with a warm cache is near-instant;
# CI keys this directory on the snapshot format sources via actions/cache.
snapshot:
	$(GO) run ./cmd/jobench snapshot build -cache-dir $(CACHE_DIR) -scale $(SNAPSHOT_SCALE)

# Run the benchmark service against the snapshot cache. Requests for the
# default (seed, scale) then warm-load instead of regenerating.
serve:
	$(GO) run ./cmd/jobench serve -addr $(SERVE_ADDR) -scale $(SNAPSHOT_SCALE) -cache-dir $(CACHE_DIR)

# End-to-end service smoke test (CI runs this): start the server on a
# random port, wait for /healthz, require valid JSON (with the expected
# fields) from /healthz and one /v1/optimize, then shut it down with
# SIGTERM and require a clean exit. The server binary is built and run
# directly (not via `go run`) so the TERM signal reaches it.
smoke-serve:
	@set -e; \
	$(GO) build -o .smoke/jobench ./cmd/jobench; \
	$(GO) build -o .smoke/jsoncheck ./cmd/jsoncheck; \
	port=$$(( 20000 + $$$$ % 20000 )); \
	.smoke/jobench serve -addr 127.0.0.1:$$port -scale 0.1 -cache-dir $(CACHE_DIR) & \
	server=$$!; \
	trap 'kill $$server 2>/dev/null || true' EXIT; \
	ok=0; \
	for i in $$(seq 1 60); do \
		if curl -fsS "http://127.0.0.1:$$port/healthz" >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 1; \
	done; \
	test $$ok -eq 1 || { echo "smoke-serve: server never became healthy"; exit 1; }; \
	curl -fsS "http://127.0.0.1:$$port/healthz" | .smoke/jsoncheck status=ok; \
	curl -fsS -X POST "http://127.0.0.1:$$port/v1/optimize" -d '{"query":"13d"}' | .smoke/jsoncheck workload=imdb query=13d; \
	curl -fsS -X POST "http://127.0.0.1:$$port/v1/execute" -d '{"query":"13d","adaptive":true}' | .smoke/jsoncheck workload=imdb query=13d replans; \
	curl -fsS -X POST "http://127.0.0.1:$$port/v1/optimize" -d '{"query":"13d","adaptive":true}' | .smoke/jsoncheck workload=imdb query=13d feedback_hit=true; \
	curl -fsS -X POST "http://127.0.0.1:$$port/v1/optimize" -d '{"query":"tpch5","workload":"tpch","scale":0.05}' | .smoke/jsoncheck workload=tpch query=tpch5; \
	curl -fsS "http://127.0.0.1:$$port/v1/experiment/fig3?workload=tpch&scale=0.05&format=json" | .smoke/jsoncheck workload=tpch experiment=fig3 report; \
	curl -fsS -X POST -H 'X-Jobench-Trace: 00000000abcdef12' "http://127.0.0.1:$$port/v1/explain" -d '{"query":"13d"}' | .smoke/jsoncheck workload=imdb query=13d nodes.0.actual_rows text; \
	curl -fsS "http://127.0.0.1:$$port/v1/traces" | .smoke/jsoncheck traces.0.trace_id=00000000abcdef12 traces.0.route=/v1/explain traces.0.spans.0.name count; \
	kill -TERM $$server; \
	wait $$server; \
	echo "smoke-serve: OK"

# Macro service benchmark: 3 serve replicas + 1 router on random ports,
# a short mixed load (optimize/execute/estimate/experiment) through the
# router, and the BENCH_service.json artifact with throughput and
# p50/p90/p99/p999 per request class. jsoncheck validates the artifact
# shape; all four processes must exit cleanly on SIGTERM. CI uploads
# $(BENCH_DIR)/BENCH_service.json, so every later PR's macro-level
# speedup (or regression) shows up as a diffable series.
bench-service:
	@set -e; \
	mkdir -p $(BENCH_DIR) .smoke; \
	$(GO) build -o .smoke/jobench ./cmd/jobench; \
	$(GO) build -o .smoke/jsoncheck ./cmd/jsoncheck; \
	base=$$(( 21000 + $$$$ % 20000 )); \
	peers="http://127.0.0.1:$$base,http://127.0.0.1:$$((base+1)),http://127.0.0.1:$$((base+2))"; \
	rport=$$((base+3)); \
	pids=""; \
	for i in 0 1 2; do \
		port=$$((base+i)); \
		.smoke/jobench serve -addr 127.0.0.1:$$port -scale $(BENCH_SERVICE_SCALE) \
			-cache-dir $(CACHE_DIR) -pool 4 \
			-replica-id replica-$$i -peers "$$peers" -self "http://127.0.0.1:$$port" & \
		pids="$$pids $$!"; \
	done; \
	.smoke/jobench router -addr 127.0.0.1:$$rport -replicas "$$peers" & \
	pids="$$pids $$!"; \
	trap 'kill $$pids 2>/dev/null || true' EXIT; \
	ok=0; \
	for i in $$(seq 1 90); do \
		if curl -fsS "http://127.0.0.1:$$rport/healthz" >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 1; \
	done; \
	test $$ok -eq 1 || { echo "bench-service: router never became healthy"; exit 1; }; \
	.smoke/jobench loadgen -target "http://127.0.0.1:$$rport" \
		-duration $(LOAD_DURATION) -concurrency $(LOAD_CONCURRENCY) \
		-workload $(BENCH_SERVICE_WORKLOADS) \
		-scale $(BENCH_SERVICE_SCALE) -world-seeds $(BENCH_SERVICE_SEEDS) \
		-mix optimize=4,execute=2,estimate=3,experiment=1,reopt=2 \
		-out $(BENCH_DIR)/BENCH_service.json; \
	.smoke/jsoncheck schema=jobench-loadgen/v1 concurrency=$(LOAD_CONCURRENCY) \
		total.requests total.throughput_rps \
		total.latency_ms.p50 total.latency_ms.p90 total.latency_ms.p99 total.latency_ms.p999 \
		classes.optimize.throughput_rps classes.optimize.latency_ms.p50 \
		classes.execute.latency_ms.p50 classes.estimate.latency_ms.p50 \
		classes.experiment.latency_ms.p50 classes.reopt.latency_ms.p50 \
		< $(BENCH_DIR)/BENCH_service.json; \
	curl -fsS "http://127.0.0.1:$$rport/metrics" | grep -q '^jobench_router_replica_up' \
		|| { echo "bench-service: router metrics missing replica gauges"; exit 1; }; \
	for pid in $$pids; do kill -TERM $$pid 2>/dev/null || true; done; \
	rc=0; \
	for pid in $$pids; do wait $$pid || { echo "bench-service: pid $$pid exited uncleanly"; rc=1; }; done; \
	trap - EXIT; \
	test $$rc -eq 0; \
	echo "bench-service: OK ($(BENCH_DIR)/BENCH_service.json)"

# Chaos knobs: how long the faulted load runs, how many workers fire it,
# the fleet's scale (0.1 matches the CI snapshot cache so opens are warm),
# and the fault spec every replica misbehaves under — injected 500s and
# rare hangs on the optimize path, injected latency on half the execute
# path. Health probes and /v1/estimate stay clean, so liveness reflects
# the process, not the injected faults.
CHAOS_DURATION ?= 8s
CHAOS_CONCURRENCY ?= 6
CHAOS_SCALE ?= 0.1
CHAOS_FAULT_SPEC ?= route=/v1/optimize,error=0.15,hang=0.02;route=/v1/execute,latency=20ms,jitter=20ms,latency_p=0.5

# Chaos suite: the in-process fleet test (internal/chaos, under -race)
# plus a real-process fleet run under injected faults (chaos-fleet).
# `chaos-short` is the CI variant: the -short test (skips the report
# byte-comparison sweep) and a shorter load window.
chaos:
	$(GO) test -race -count=1 ./internal/chaos
	$(MAKE) chaos-fleet

chaos-short:
	$(GO) test -race -short -count=1 ./internal/chaos
	$(MAKE) chaos-fleet CHAOS_DURATION=4s

# Real-process chaos: 3 faulted replicas behind the router (retries,
# deadlines and breakers on), a classified load through it, and jsoncheck
# asserting the resilience contract on $(BENCH_DIR)/BENCH_chaos.json —
# bounded client-visible error rate, zero deadline overruns — plus metrics
# proving faults were actually injected and accounted for. All four
# processes must still exit cleanly on SIGTERM.
chaos-fleet:
	@set -e; \
	mkdir -p $(BENCH_DIR) .smoke; \
	$(GO) build -o .smoke/jobench ./cmd/jobench; \
	$(GO) build -o .smoke/jsoncheck ./cmd/jsoncheck; \
	base=$$(( 21000 + $$$$ % 20000 )); \
	peers="http://127.0.0.1:$$base,http://127.0.0.1:$$((base+1)),http://127.0.0.1:$$((base+2))"; \
	rport=$$((base+3)); \
	pids=""; \
	for i in 0 1 2; do \
		port=$$((base+i)); \
		.smoke/jobench serve -addr 127.0.0.1:$$port -scale $(CHAOS_SCALE) \
			-cache-dir $(CACHE_DIR) -pool 4 -replica-id chaos-$$i \
			-fault-spec '$(CHAOS_FAULT_SPEC)' -fault-seed $$((100+i)) & \
		pids="$$pids $$!"; \
	done; \
	.smoke/jobench router -addr 127.0.0.1:$$rport -replicas "$$peers" \
		-request-timeout 10s -attempt-timeout 1s -max-retries 2 -retry-budget 0.2 & \
	pids="$$pids $$!"; \
	trap 'kill $$pids 2>/dev/null || true' EXIT; \
	ok=0; \
	for i in $$(seq 1 90); do \
		if curl -fsS "http://127.0.0.1:$$rport/healthz" >/dev/null 2>&1 \
			&& curl -fsS "http://127.0.0.1:$$base/healthz" >/dev/null 2>&1 \
			&& curl -fsS "http://127.0.0.1:$$((base+1))/healthz" >/dev/null 2>&1 \
			&& curl -fsS "http://127.0.0.1:$$((base+2))/healthz" >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 1; \
	done; \
	test $$ok -eq 1 || { echo "chaos-fleet: fleet never became healthy"; exit 1; }; \
	warmpids=""; \
	for i in 0 1 2; do \
		curl -fsS -X POST -H 'Content-Type: application/json' -d '{"query":"1a"}' \
			"http://127.0.0.1:$$((base+i))/v1/estimate" >/dev/null & \
		warmpids="$$warmpids $$!"; \
	done; \
	for pid in $$warmpids; do \
		wait $$pid || { echo "chaos-fleet: replica warm-up failed"; exit 1; }; \
	done; \
	.smoke/jobench loadgen -target "http://127.0.0.1:$$rport" \
		-duration $(CHAOS_DURATION) -concurrency $(CHAOS_CONCURRENCY) \
		-scale $(CHAOS_SCALE) -queries 1a,13d \
		-mix optimize=3,execute=2,estimate=2 \
		-request-timeout 3s -deadline-grace 1s \
		-out $(BENCH_DIR)/BENCH_chaos.json; \
	.smoke/jsoncheck schema=jobench-loadgen/v1 \
		'total.requests>=10' 'total.error_rate<=0.1' 'total.deadline_overruns<=0' \
		classes.optimize.latency_ms.p50 classes.execute.latency_ms.p50 \
		< $(BENCH_DIR)/BENCH_chaos.json; \
	curl -fsS "http://127.0.0.1:$$base/metrics" | grep -q '^jobench_fault_injected_total' \
		|| { echo "chaos-fleet: replica metrics missing injected-fault counters"; exit 1; }; \
	routermetrics=$$(curl -fsS "http://127.0.0.1:$$rport/metrics"); \
	echo "$$routermetrics" | grep -q '^jobench_router_replica_retries_total' \
		|| { echo "chaos-fleet: router metrics missing retry counters"; exit 1; }; \
	echo "$$routermetrics" | grep -q '^jobench_router_breaker_throttled' \
		|| { echo "chaos-fleet: router metrics missing breaker gauges"; exit 1; }; \
	curl -fsS "http://127.0.0.1:$$rport/v1/traces" | .smoke/jsoncheck 'count>=1' \
		|| { echo "chaos-fleet: router traces empty after load"; exit 1; }; \
	for pid in $$pids; do kill -TERM $$pid 2>/dev/null || true; done; \
	rc=0; \
	for pid in $$pids; do wait $$pid || { echo "chaos-fleet: pid $$pid exited uncleanly"; rc=1; }; done; \
	trap - EXIT; \
	test $$rc -eq 0; \
	echo "chaos-fleet: OK ($(BENCH_DIR)/BENCH_chaos.json)"

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Godoc gate: every exported identifier in the packages other code
# programs against must carry a doc comment (cmd/docscheck, ~100 lines of
# go/ast — no external linter needed).
docs-check:
	$(GO) run ./cmd/docscheck ./internal/hashtab ./internal/service ./internal/engine \
		./internal/parallel ./internal/router ./internal/loadgen ./internal/reopt \
		./internal/workload ./internal/index ./internal/trace \
		./internal/fault ./internal/deadline

# Everything the CI checks job runs, in order.
ci: fmt-check vet docs-check build test bench-smoke
