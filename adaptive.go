package jobench

import (
	"context"

	"jobench/internal/optimizer"
	"jobench/internal/plan"
	"jobench/internal/query"
	"jobench/internal/reopt"
	"jobench/internal/trace"
)

// AdaptiveOptions control one adaptive execution: the usual run knobs plus
// the re-optimization policy.
type AdaptiveOptions struct {
	RunOptions
	// QErrThreshold is the q-error above which an observed intermediate
	// triggers a replan (0 selects reopt.DefaultQErrThreshold).
	QErrThreshold float64
	// MaxReplans bounds re-optimizations per query (0 selects
	// reopt.DefaultMaxReplans).
	MaxReplans int
}

// AdaptivePlan reports an adaptive optimization: the plan, its estimated
// cost, and how much previously observed truth went into it.
type AdaptivePlan struct {
	// Plan is the EXPLAIN rendering.
	Plan string
	// Cost is the optimizer's estimated cost.
	Cost float64
	// FeedbackHit reports whether the plan-feedback cache held observed
	// cardinalities for this query's fingerprint.
	FeedbackHit bool
	// Pinned is the number of observed cardinalities injected over the
	// estimator.
	Pinned int
}

// AdaptiveResult reports an adaptive execution.
type AdaptiveResult struct {
	Result
	// Replans counts mid-execution re-optimizations.
	Replans int
	// Probes counts plan subtrees executed to observe their cardinality.
	Probes int
	// FeedbackHit reports whether planning started from cached
	// observations.
	FeedbackHit bool
	// Pinned is the number of cached cardinalities injected before the
	// first plan.
	Pinned int
}

// OptimizeAdaptive plans a query with the plan-feedback cache consulted
// first: when a previous adaptive execution of the same query fingerprint
// observed intermediate cardinalities, they are pinned over the estimator,
// so the misestimates that execution paid for are skipped entirely.
func (s *System) OptimizeAdaptive(queryID string, opts PlanOptions) (AdaptivePlan, error) {
	return s.OptimizeAdaptiveContext(context.Background(), queryID, opts)
}

// OptimizeAdaptiveContext is OptimizeAdaptive with cancellation; see
// OptimizeContext.
func (s *System) OptimizeAdaptiveContext(ctx context.Context, queryID string, opts PlanOptions) (AdaptivePlan, error) {
	g, err := s.graph(queryID)
	if err != nil {
		return AdaptivePlan{}, err
	}
	prov, err := s.provider(ctx, queryID, opts.Estimator)
	if err != nil {
		return AdaptivePlan{}, err
	}
	model, err := s.model(opts.CostModel)
	if err != nil {
		return AdaptivePlan{}, err
	}
	canon := reopt.Canonical(g)
	cached := s.feedback.Get(canon.FP)
	pinned := canon.MapFromCanon(cached)
	planProv := reopt.NewPropagator(prov, pinned)
	idxCfg := opts.Indexes
	if _, ok := s.idx[idxCfg]; !ok {
		idxCfg = PKFK
	}
	o := &optimizer.Optimizer{
		DB:         s.db,
		Model:      model,
		Indexes:    s.idx[idxCfg],
		DisableNLJ: opts.DisableNestedLoops,
		Shape:      opts.Shape,
		Algorithm:  opts.Algorithm,
		Seed:       opts.Seed,
	}
	osp := trace.StartSpan(ctx, "optimize")
	root, err := o.Optimize(g, planProv)
	osp.End(trace.String("query", queryID), trace.Bool("feedback_hit", cached != nil),
		trace.Int64("pinned", int64(len(pinned))))
	if err != nil {
		return AdaptivePlan{}, err
	}
	return AdaptivePlan{
		Plan:        plan.Explain(root, g),
		Cost:        root.ECost,
		FeedbackHit: cached != nil,
		Pinned:      len(pinned),
	}, nil
}

// ExecuteAdaptive optimizes and runs a query adaptively: plan subtrees are
// executed bottom-up, observed intermediate cardinalities replace estimates
// whose q-error exceeds the threshold (re-entering plan enumeration), and
// everything observed is recorded in the plan-feedback cache so the next
// request with the same fingerprint plans from truth.
func (s *System) ExecuteAdaptive(queryID string, opts AdaptiveOptions) (AdaptiveResult, error) {
	return s.ExecuteAdaptiveContext(context.Background(), queryID, opts)
}

// ExecuteAdaptiveContext is ExecuteAdaptive with cancellation; see
// OptimizeContext.
func (s *System) ExecuteAdaptiveContext(ctx context.Context, queryID string, opts AdaptiveOptions) (AdaptiveResult, error) {
	g, err := s.graph(queryID)
	if err != nil {
		return AdaptiveResult{}, err
	}
	prov, err := s.provider(ctx, queryID, opts.Estimator)
	if err != nil {
		return AdaptiveResult{}, err
	}
	model, err := s.model(opts.CostModel)
	if err != nil {
		return AdaptiveResult{}, err
	}
	idxCfg := opts.Indexes
	if _, ok := s.idx[idxCfg]; !ok {
		idxCfg = PKFK
	}
	canon := reopt.Canonical(g)
	cached := s.feedback.Get(canon.FP)
	pinned := canon.MapFromCanon(cached)
	sp := trace.StartSpan(ctx, "execute.adaptive")
	rres, err := reopt.Run(ctx, g, prov, pinned, reopt.Config{
		DB:            s.db,
		Indexes:       s.idx[idxCfg],
		Model:         model,
		DisableNLJ:    opts.DisableNestedLoops,
		Shape:         opts.Shape,
		Algorithm:     opts.Algorithm,
		Seed:          opts.Seed,
		Rehash:        opts.Rehash,
		WorkLimit:     opts.WorkLimit,
		QErrThreshold: opts.QErrThreshold,
		MaxReplans:    opts.MaxReplans,
	})
	sp.End(trace.String("query", queryID), trace.Int64("replans", int64(rres.Replans)),
		trace.Int64("probes", int64(len(rres.Steps))), trace.Int64("work", rres.Work))
	if err != nil {
		return AdaptiveResult{}, err
	}
	if len(rres.Observed) > 0 {
		s.feedback.Put(canon.FP, canon.MapToCanon(rres.Observed))
	}
	return AdaptiveResult{
		Result: Result{
			Rows:     rres.Rows,
			Work:     rres.Work,
			TimedOut: rres.TimedOut,
			Plan:     plan.Explain(rres.Plan, g),
		},
		Replans:     rres.Replans,
		Probes:      len(rres.Steps),
		FeedbackHit: cached != nil,
		Pinned:      len(pinned),
	}, nil
}

// FeedbackStats reports the plan-feedback cache counters (hits, misses,
// entries, bytes, evictions) — the service's /metrics reads these.
func (s *System) FeedbackStats() reopt.Stats { return s.feedback.Stats() }

// feedbackPinned is a test hook: the cached observations for a query, in
// query coordinates.
func (s *System) feedbackPinned(queryID string) map[query.BitSet]float64 {
	g, err := s.graph(queryID)
	if err != nil {
		return nil
	}
	canon := reopt.Canonical(g)
	return canon.MapFromCanon(s.feedback.Get(canon.FP))
}
