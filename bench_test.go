// Benchmarks regenerating every table and figure of the paper, one bench
// per artifact (see DESIGN.md's experiment index), plus micro-benchmarks of
// the optimizer substrate. The shared lab (data generation, statistics,
// true cardinalities) is built once outside the timed sections.
//
// Run with: go test -bench=. -benchmem
package jobench_test

import (
	"sync"
	"testing"

	"jobench"
	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/engine"
	"jobench/internal/enum"
	"jobench/internal/experiments"
	"jobench/internal/imdb"
	"jobench/internal/job"
	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/truecard"
)

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
	benchErr  error
)

func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchOnce.Do(func() {
		benchLab, benchErr = experiments.NewLab(experiments.QuickConfig())
		if benchErr == nil {
			benchErr = benchLab.Warmup()
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchLab
}

// --- one benchmark per paper artifact ---------------------------------------

func BenchmarkTable1BaseTableQErrors(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3JoinEstimates(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4TPCH(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5TrueDistinct(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSection41InjectedEstimates(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Section41(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6RiskyPlans(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7Indexes(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8CostModels(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9PlanSpace(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Figure9(500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2TreeShapes(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Heuristics(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReoptJOB runs the adaptive re-optimization experiment — static
// vs re-optimized vs feedback-warm over all 113 JOB queries.
func BenchmarkReoptJOB(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Reopt(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ----------------------------------------------

func BenchmarkGenerateIMDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		imdb.Generate(imdb.Config{Scale: 0.05, Seed: int64(i)})
	}
}

func BenchmarkAnalyze(b *testing.B) {
	db := imdb.Generate(imdb.Config{Scale: 0.1, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.AnalyzeDatabase(db, stats.DefaultOptions())
	}
}

func BenchmarkTrueCardinalities13d(b *testing.B) {
	l := lab(b)
	g := l.Graphs["13d"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Parallel: 1 keeps this the serial baseline it has always been;
		// truecard's BenchmarkTruecardCompute covers the parallel DP.
		if _, err := truecard.Compute(l.DB, g, truecard.Options{Parallel: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSpace(l *experiments.Lab, qid string) *enum.Space {
	g := l.Graphs[qid]
	return &enum.Space{
		G: g, DB: l.DB, Cards: l.Postgres.ForQuery(g),
		Model: costmodel.NewSimple(), Indexes: l.IdxPKFK, DisableNLJ: true,
	}
}

func BenchmarkDPExhaustive17Relations(b *testing.B) {
	l := lab(b)
	sp := benchSpace(l, "29a") // 17 relations, the workload's largest
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enum.DP(sp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDPccp17Relations(b *testing.B) {
	l := lab(b)
	sp := benchSpace(l, "29a")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enum.DPccp(sp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuickPick1000(b *testing.B) {
	l := lab(b)
	sp := benchSpace(l, "13d")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enum.QuickPickBest(sp, 1000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGOO(b *testing.B) {
	l := lab(b)
	sp := benchSpace(l, "13d")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enum.GOO(sp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteHashJoinPlan(b *testing.B) {
	l := lab(b)
	g := l.Graphs["13d"]
	st, err := l.Truth("13d")
	if err != nil {
		b.Fatal(err)
	}
	sp := benchSpace(l, "13d")
	sp.Cards = cardest.True{Store: st}
	root, err := enum.DP(sp)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(l.DB, l.IdxPKFK, g, root, engine.Config{Rehash: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimatorPostgresFullWorkload(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range job.Workload() {
			g := l.Graphs[q.ID]
			if g == nil {
				continue
			}
			prov := l.Postgres.ForQuery(g)
			prov.Card(query.FullSet(g.N))
		}
	}
}

// BenchmarkEngineExecuteTPCH measures the execution engine on the tpch
// workload end to end (the smoke-bench counterpart of the IMDB paths
// above): plan and run one of the ten SPJ families against the uniform,
// independent world.
func BenchmarkEngineExecuteTPCH(b *testing.B) {
	sys, err := jobench.Open(jobench.Options{Workload: "tpch", Scale: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.Execute("tpch5", jobench.RunOptions{
			PlanOptions: jobench.PlanOptions{DisableNestedLoops: true},
			Rehash:      true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkPublicAPI measures the facade end to end on a small instance.
func BenchmarkPublicAPI(b *testing.B) {
	sys, err := jobench.Open(jobench.Options{Scale: 0.05, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.Execute("3b", jobench.RunOptions{
			PlanOptions: jobench.PlanOptions{DisableNestedLoops: true},
			Rehash:      true,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}
