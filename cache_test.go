package jobench

// These tests pin the snapshot store's acceptance contract: a second Open
// with the same Options and a warm cache performs zero database generation
// and zero true-cardinality computation, and a corrupted or version-bumped
// snapshot falls back to regeneration with a logged warning — never an
// error or panic. They live in the jobench package (not jobench_test) to
// reach the generateDB/computeTruth indirection points.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"jobench/internal/index"
	"jobench/internal/query"
	"jobench/internal/storage"
	"jobench/internal/truecard"
	"jobench/internal/workload"
)

// countHooks wraps generation, truth computation, and index construction in
// counters for the duration of the test.
func countHooks(t *testing.T) (gens, computes *atomic.Int64) {
	gens, computes, _ = countAllHooks(t)
	return gens, computes
}

func countAllHooks(t *testing.T) (gens, computes, idxBuilds *atomic.Int64) {
	t.Helper()
	gens, computes, idxBuilds = new(atomic.Int64), new(atomic.Int64), new(atomic.Int64)
	origGen, origCompute, origBuild := generateDB, computeTruth, buildIndexes
	generateDB = func(w workload.Workload, cfg workload.Config) *storage.Database {
		gens.Add(1)
		return origGen(w, cfg)
	}
	computeTruth = func(ctx context.Context, db *storage.Database, g *query.Graph, opts truecard.Options) (*truecard.Store, error) {
		computes.Add(1)
		return origCompute(ctx, db, g, opts)
	}
	buildIndexes = func(w workload.Workload, db *storage.Database, cfg IndexConfig) (*index.Set, error) {
		idxBuilds.Add(1)
		return origBuild(w, db, cfg)
	}
	t.Cleanup(func() { generateDB, computeTruth, buildIndexes = origGen, origCompute, origBuild })
	return gens, computes, idxBuilds
}

// logCapture collects Options.Logf output (truth saves run across the
// warmup worker pool, so it must be concurrency-safe).
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

func (lc *logCapture) all() []string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]string(nil), lc.lines...)
}

func (lc *logCapture) containing(substr string) bool {
	for _, l := range lc.all() {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

var cacheTestQueries = []string{"1a", "6a", "17e"}

func TestWarmOpenSkipsGenerationAndTruth(t *testing.T) {
	dir := t.TempDir()
	gens, computes, idxBuilds := countAllHooks(t)
	var lc logCapture
	opts := Options{Scale: 0.05, Seed: 7, CacheDir: dir, Logf: lc.logf}

	cold, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	truths := make(map[string]float64, len(cacheTestQueries))
	for _, qid := range cacheTestQueries {
		v, err := cold.TrueCardinality(qid)
		if err != nil {
			t.Fatal(err)
		}
		truths[qid] = v
	}
	if got := gens.Load(); got != 1 {
		t.Fatalf("cold open: %d generations, want 1", got)
	}
	if got := computes.Load(); got != int64(len(cacheTestQueries)) {
		t.Fatalf("cold open: %d truth computations, want %d", got, len(cacheTestQueries))
	}
	if got := idxBuilds.Load(); got != 3 {
		t.Fatalf("cold open: %d index builds, want 3", got)
	}
	if lines := lc.all(); len(lines) != 0 {
		t.Fatalf("cold open logged warnings: %q", lines)
	}

	gens.Store(0)
	computes.Store(0)
	idxBuilds.Store(0)
	warm, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, qid := range cacheTestQueries {
		v, err := warm.TrueCardinality(qid)
		if err != nil {
			t.Fatal(err)
		}
		if v != truths[qid] {
			t.Fatalf("%s: warm cardinality %v, cold %v", qid, v, truths[qid])
		}
	}
	if got := gens.Load(); got != 0 {
		t.Fatalf("warm open: %d generations, want 0", got)
	}
	if got := computes.Load(); got != 0 {
		t.Fatalf("warm open: %d truth computations, want 0", got)
	}
	if got := idxBuilds.Load(); got != 0 {
		t.Fatalf("warm open: %d index builds, want 0", got)
	}
	if lines := lc.all(); len(lines) != 0 {
		t.Fatalf("warm open logged warnings: %q", lines)
	}

	// The warm system must behave identically on a full pipeline pass.
	res, err := warm.Execute("1a", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resCold, err := cold.Execute("1a", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != resCold.Rows || res.Work != resCold.Work {
		t.Fatalf("warm execute (%d rows, %d work) != cold (%d rows, %d work)",
			res.Rows, res.Work, resCold.Rows, resCold.Work)
	}
}

// snapFile locates one snapshot file under the cache dir.
func snapFile(t *testing.T, dir, name string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*", name))
	if err != nil || len(matches) != 1 {
		t.Fatalf("glob %s under %s: %v, %d matches", name, dir, err, len(matches))
	}
	return matches[0]
}

func TestCorruptedSnapshotRegenerates(t *testing.T) {
	dir := t.TempDir()
	gens, computes := countHooks(t)
	var lc logCapture
	opts := Options{Scale: 0.05, Seed: 7, CacheDir: dir, Logf: lc.logf}

	cold, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.TrueCardinality("1a")
	if err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the database snapshot and truncate the truth
	// store: both must read as corruption, not as data.
	dbPath := snapFile(t, dir, "db.snap")
	data, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x5a
	if err := os.WriteFile(dbPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	truthPath := snapFile(t, dir, filepath.Join("truth", "1a.snap"))
	truthData, err := os.ReadFile(truthPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truthPath, truthData[:len(truthData)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	gens.Store(0)
	computes.Store(0)
	sys, err := Open(opts)
	if err != nil {
		t.Fatalf("open over corrupted snapshot must fall back, got error: %v", err)
	}
	got, err := sys.TrueCardinality("1a")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("cardinality after corruption recovery %v, want %v", got, want)
	}
	if gens.Load() != 1 || computes.Load() != 1 {
		t.Fatalf("corrupted snapshot: %d generations and %d computations, want 1 and 1",
			gens.Load(), computes.Load())
	}
	if !lc.containing("checksum mismatch") && !lc.containing("truncated") {
		t.Fatalf("no corruption warning logged; got %q", lc.all())
	}

	// The regeneration must have healed the cache in passing.
	lc2 := &logCapture{}
	opts.Logf = lc2.logf
	gens.Store(0)
	computes.Store(0)
	healed, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := healed.TrueCardinality("1a"); err != nil {
		t.Fatal(err)
	}
	if gens.Load() != 0 || computes.Load() != 0 {
		t.Fatalf("cache not healed: %d generations, %d computations", gens.Load(), computes.Load())
	}
	if lines := lc2.all(); len(lines) != 0 {
		t.Fatalf("healed open logged warnings: %q", lines)
	}
}

func TestVersionBumpedSnapshotRegenerates(t *testing.T) {
	dir := t.TempDir()
	gens, _ := countHooks(t)
	var lc logCapture
	opts := Options{Scale: 0.05, Seed: 7, CacheDir: dir, Logf: lc.logf}

	if _, err := Open(opts); err != nil {
		t.Fatal(err)
	}

	// Bump the format-version field (bytes 4..8, after the magic).
	dbPath := snapFile(t, dir, "db.snap")
	data, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	data[4]++
	if err := os.WriteFile(dbPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	gens.Store(0)
	sys, err := Open(opts)
	if err != nil {
		t.Fatalf("open over version-bumped snapshot must fall back, got error: %v", err)
	}
	if gens.Load() != 1 {
		t.Fatalf("version bump: %d generations, want 1", gens.Load())
	}
	if !lc.containing("format version") {
		t.Fatalf("no version warning logged; got %q", lc.all())
	}
	if _, err := sys.TrueCardinality("1a"); err != nil {
		t.Fatal(err)
	}
}
