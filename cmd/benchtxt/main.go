// benchtxt extracts the plain output stream from a `go test -json` run on
// stdin, recovering the benchstat-compatible text from a benchmark capture
// that is archived as JSON — one benchmark run yields both artifacts.
//
// Usage: go test -json -bench ... | tee BENCH.json | benchtxt > BENCH.txt
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Pass through anything that is not go-test JSON (e.g. build
			// noise) so failures stay visible.
			fmt.Println(string(line))
			continue
		}
		if ev.Action == "output" {
			fmt.Print(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchtxt: %v\n", err)
		os.Exit(1)
	}
}
