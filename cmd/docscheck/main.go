// Command docscheck fails when a package exports an undocumented
// identifier: a package without a package comment, or an exported
// function, method, type, constant, or variable without a doc comment.
// It is the `make docs-check` CI gate over the packages whose exported
// surface other packages program against; being ~100 lines of go/ast it
// needs no linter binary the container doesn't have.
//
// Usage:
//
//	docscheck ./internal/hashtab ./internal/service ...
//
// Exits 1 listing every violation as file:line: message.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck <package-dir> ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += checkDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and reports
// violations to stderr, returning how many it found.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
			bad += checkFile(fset, f)
		}
		if !hasPkgDoc {
			fmt.Fprintf(os.Stderr, "%s: package %s has no package comment\n",
				filepath.Clean(dir), pkg.Name)
			bad++
		}
	}
	return bad
}

func checkFile(fset *token.FileSet, f *ast.File) int {
	bad := 0
	complain := func(pos token.Pos, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(pos), fmt.Sprintf(format, args...))
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if recv := receiverType(d); recv != "" {
				if ast.IsExported(recv) {
					complain(d.Pos(), "exported method %s.%s has no doc comment", recv, d.Name.Name)
				}
				continue
			}
			complain(d.Pos(), "exported function %s has no doc comment", d.Name.Name)
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil {
						complain(ts.Pos(), "exported type %s has no doc comment", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				// A doc comment on the grouped declaration covers every spec
				// in it (the `const ( ... )` block idiom).
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, name := range vs.Names {
						if name.IsExported() {
							complain(name.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// receiverType names a method's receiver type ("" for plain functions),
// unwrapping pointers and generic instantiations.
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
