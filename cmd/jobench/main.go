// Command jobench drives the Join Order Benchmark reproduction: generate
// the data set, explain and run individual queries, and regenerate every
// table and figure of Leis et al., "How Good Are Query Optimizers, Really?"
// (VLDB 2015).
//
// Usage:
//
//	jobench gen        [-scale 1.0] [-seed 42]
//	jobench sql        -q 13d
//	jobench graph      -q 13d
//	jobench explain    -q 13d [-est postgres] [-model simple] [-idx pkfk] [-scale 0.3]
//	jobench run        -q 13d [-est postgres] [-model simple] [-idx pkfk] [-rehash] [-no-nlj]
//	jobench experiment -name table1|fig3|fig4|fig5|sec41|fig6|fig7|fig8|fig9|table2|table3|all
//	                   [-scale 0.3] [-samples 10000] [-max-queries 0] [-parallel N]
//	jobench snapshot   build|inspect|clear [-cache-dir .jobench-cache] [-scale 0.3] [-seed 42]
//
// Every command accepts -parallel N to size the worker pool that fans
// experiment cells out across cores (0 = all cores, 1 = serial); the same
// setting parallelizes the per-subexpression work inside each
// true-cardinality computation, so "snapshot build" and single-query
// warmups scale with cores too. Reports are byte-identical at any
// setting. Every command also accepts
// -cache-dir DIR to load the generated database, statistics, and true
// cardinalities from the persistent snapshot store (and persist whatever
// this run computes); "jobench snapshot build" fills that store up front.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"jobench"
	"jobench/internal/experiments"
	"jobench/internal/optimizer"
	"jobench/internal/plan"
	"jobench/internal/snapshot"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = cmdGen(args)
	case "sql":
		err = cmdSQL(args)
	case "graph":
		err = cmdGraph(args)
	case "explain":
		err = cmdExplain(args)
	case "run":
		err = cmdRun(args)
	case "experiment":
		err = cmdExperiment(args)
	case "snapshot":
		err = cmdSnapshot(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "jobench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: jobench <gen|sql|graph|explain|run|experiment|snapshot> [flags]
run "jobench <command> -h" for command flags`)
}

func openFlags(fs *flag.FlagSet) (*float64, *int64, *int, *string) {
	scale := fs.Float64("scale", 0.3, "data scale factor (1.0 ~ 450k rows)")
	seed := fs.Int64("seed", 42, "generator seed")
	parallel := fs.Int("parallel", 0, "worker-pool size for experiment sweeps and the truecard DP (0 = all cores, 1 = serial)")
	cacheDir := fs.String("cache-dir", "", "snapshot cache directory (empty = no caching)")
	return scale, seed, parallel, cacheDir
}

func planFlags(fs *flag.FlagSet) (est, model, idx *string, noNLJ *bool, shape, algo *string) {
	est = fs.String("est", "postgres", "estimator: postgres|dbms-a|dbms-b|dbms-c|hyper|true")
	model = fs.String("model", "simple", "cost model: simple|postgres|tuned")
	idx = fs.String("idx", "pkfk", "index config: none|pk|pkfk")
	noNLJ = fs.Bool("no-nlj", true, "disable non-indexed nested-loop joins")
	shape = fs.String("shape", "bushy", "tree shape: bushy|leftdeep|rightdeep|zigzag")
	algo = fs.String("algo", "dp", "enumeration: dp|dpccp|quickpick|goo")
	return
}

func parsePlanOptions(est, model, idx string, noNLJ bool, shape, algo string) (jobench.PlanOptions, error) {
	opts := jobench.PlanOptions{Estimator: est, CostModel: model, DisableNestedLoops: noNLJ}
	switch idx {
	case "none":
		opts.Indexes = jobench.NoIndexes
	case "pk":
		opts.Indexes = jobench.PKOnly
	case "pkfk", "":
		opts.Indexes = jobench.PKFK
	default:
		return opts, fmt.Errorf("unknown index config %q", idx)
	}
	switch shape {
	case "bushy", "":
		opts.Shape = plan.Bushy
	case "leftdeep":
		opts.Shape = plan.LeftDeep
	case "rightdeep":
		opts.Shape = plan.RightDeep
	case "zigzag":
		opts.Shape = plan.ZigZag
	default:
		return opts, fmt.Errorf("unknown shape %q", shape)
	}
	switch algo {
	case "dp", "":
		opts.Algorithm = optimizer.DP
	case "dpccp":
		opts.Algorithm = optimizer.DPccp
	case "quickpick":
		opts.Algorithm = optimizer.QuickPick1000
	case "goo":
		opts.Algorithm = optimizer.GOO
	default:
		return opts, fmt.Errorf("unknown algorithm %q", algo)
	}
	return opts, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	scale, seed, par, cacheDir := openFlags(fs)
	fs.Parse(args)
	sys, err := jobench.Open(jobench.Options{Scale: *scale, Seed: *seed, Parallel: *par, CacheDir: *cacheDir})
	if err != nil {
		return err
	}
	total := 0
	rows := sys.TableRows()
	fmt.Printf("%-18s %10s\n", "table", "rows")
	for _, name := range []string{
		"kind_type", "info_type", "company_type", "role_type", "link_type",
		"comp_cast_type", "title", "company_name", "keyword", "name",
		"char_name", "movie_companies", "movie_info", "movie_info_idx",
		"movie_keyword", "cast_info", "aka_name", "aka_title", "movie_link",
		"person_info", "complete_cast",
	} {
		fmt.Printf("%-18s %10d\n", name, rows[name])
		total += rows[name]
	}
	fmt.Printf("%-18s %10d\n", "TOTAL", total)
	fmt.Printf("\nworkload: %d queries\n", len(sys.QueryIDs()))
	return nil
}

func cmdSQL(args []string) error {
	fs := flag.NewFlagSet("sql", flag.ExitOnError)
	q := fs.String("q", "13d", "query id")
	scale, seed, par, cacheDir := openFlags(fs)
	fs.Parse(args)
	sys, err := jobench.Open(jobench.Options{Scale: *scale, Seed: *seed, Parallel: *par, CacheDir: *cacheDir})
	if err != nil {
		return err
	}
	sql, err := sys.SQL(*q)
	if err != nil {
		return err
	}
	fmt.Println(sql)
	return nil
}

func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	q := fs.String("q", "13d", "query id")
	scale, seed, par, cacheDir := openFlags(fs)
	fs.Parse(args)
	sys, err := jobench.Open(jobench.Options{Scale: *scale, Seed: *seed, Parallel: *par, CacheDir: *cacheDir})
	if err != nil {
		return err
	}
	dot, err := sys.JoinGraphDot(*q)
	if err != nil {
		return err
	}
	fmt.Print(dot)
	return nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	q := fs.String("q", "13d", "query id")
	est, model, idx, noNLJ, shape, algo := planFlags(fs)
	scale, seed, par, cacheDir := openFlags(fs)
	fs.Parse(args)
	sys, err := jobench.Open(jobench.Options{Scale: *scale, Seed: *seed, Parallel: *par, CacheDir: *cacheDir})
	if err != nil {
		return err
	}
	opts, err := parsePlanOptions(*est, *model, *idx, *noNLJ, *shape, *algo)
	if err != nil {
		return err
	}
	text, cost, err := sys.Optimize(*q, opts)
	if err != nil {
		return err
	}
	fmt.Print(text)
	fmt.Printf("estimated cost: %.2f (%s model, %s estimates)\n", cost, *model, *est)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	q := fs.String("q", "13d", "query id")
	est, model, idx, noNLJ, shape, algo := planFlags(fs)
	rehash := fs.Bool("rehash", true, "resize hash tables at runtime")
	limit := fs.Int64("work-limit", 0, "abort after this many work units")
	scale, seed, par, cacheDir := openFlags(fs)
	fs.Parse(args)
	sys, err := jobench.Open(jobench.Options{Scale: *scale, Seed: *seed, Parallel: *par, CacheDir: *cacheDir})
	if err != nil {
		return err
	}
	opts, err := parsePlanOptions(*est, *model, *idx, *noNLJ, *shape, *algo)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := sys.Execute(*q, jobench.RunOptions{
		PlanOptions: opts, Rehash: *rehash, WorkLimit: *limit,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Plan)
	if res.TimedOut {
		fmt.Printf("TIMED OUT after %d work units (%.1fms wall)\n",
			res.Work, float64(time.Since(start).Microseconds())/1000)
		return nil
	}
	truth, err := sys.TrueCardinality(*q)
	if err != nil {
		return err
	}
	fmt.Printf("rows: %d (true cardinality %.0f)\nwork: %d units, %.1fms wall\n",
		res.Rows, truth, res.Work, float64(time.Since(start).Microseconds())/1000)
	return nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	name := fs.String("name", "all", "experiment: table1|fig3|fig4|fig5|sec41|fig6|fig7|fig8|fig9|table2|table3|ablation-damping|ablation-rehash|hedging|all")
	samples := fs.Int("samples", 10000, "random plans per query for fig9")
	maxQ := fs.Int("max-queries", 0, "limit workload size (0 = all 113)")
	scale, seed, par, cacheDir := openFlags(fs)
	fs.Parse(args)

	lab, err := experiments.NewLab(experiments.Config{
		Scale: *scale, Seed: *seed, MaxQueries: *maxQ, Parallel: *par, CacheDir: *cacheDir,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "computing true cardinalities for %d queries...\n", len(lab.Queries))
	start := time.Now()
	if err := lab.Warmup(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "done in %v\n\n", time.Since(start).Round(time.Millisecond))

	type renderer interface{ Render() string }
	type exp struct {
		id  string
		run func() (renderer, error)
	}
	all := []exp{
		{"table1", func() (renderer, error) { return lab.Table1() }},
		{"fig3", func() (renderer, error) { return lab.Figure3() }},
		{"fig4", func() (renderer, error) { return lab.Figure4() }},
		{"fig5", func() (renderer, error) { return lab.Figure5() }},
		{"sec41", func() (renderer, error) { return lab.Section41() }},
		{"fig6", func() (renderer, error) { return lab.Figure6() }},
		{"fig7", func() (renderer, error) {
			r, err := lab.Figure7()
			if err != nil {
				return nil, err
			}
			return retitled{"Figure 7: PK vs PK+FK indexes (PostgreSQL estimates)\n", r}, nil
		}},
		{"fig8", func() (renderer, error) { return lab.Figure8() }},
		{"fig9", func() (renderer, error) { return lab.Figure9(*samples) }},
		{"table2", func() (renderer, error) { return lab.Table2() }},
		{"table3", func() (renderer, error) { return lab.Table3() }},
		{"ablation-damping", func() (renderer, error) { return lab.DampingAblation(nil) }},
		{"ablation-rehash", func() (renderer, error) { return lab.RehashAblation("17e", nil) }},
		{"hedging", func() (renderer, error) { return lab.Hedging() }},
	}
	matched := false
	for _, e := range all {
		if *name != "all" && *name != e.id {
			continue
		}
		matched = true
		t0 := time.Now()
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Printf("=== %s (%v) ===\n%s\n", e.id, time.Since(t0).Round(time.Millisecond), res.Render())
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", *name)
	}
	return nil
}

func cmdSnapshot(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf(`snapshot: missing subcommand (build|inspect|clear)`)
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("snapshot "+sub, flag.ExitOnError)
	scale, seed, par, cacheDir := openFlags(fs)
	// The snapshot command exists to manage the cache, so unlike the other
	// commands its -cache-dir defaults to a real directory.
	fs.Lookup("cache-dir").DefValue = ".jobench-cache"
	*cacheDir = ".jobench-cache"
	fs.Parse(args)

	switch sub {
	case "build":
		start := time.Now()
		sys, err := jobench.Open(jobench.Options{
			Scale: *scale, Seed: *seed, Parallel: *par, CacheDir: *cacheDir,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "snapshot: database + statistics ready in %v, computing true cardinalities for %d queries...\n",
			time.Since(start).Round(time.Millisecond), len(sys.QueryIDs()))
		if err := sys.Warmup(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "snapshot: built in %v\n", time.Since(start).Round(time.Millisecond))
		return printSnapshotInfo(*cacheDir)
	case "inspect":
		return printSnapshotInfo(*cacheDir)
	case "clear":
		removed, err := snapshot.Clear(*cacheDir)
		if err != nil {
			return err
		}
		fmt.Printf("removed %d snapshot(s) from %s\n", removed, *cacheDir)
		return nil
	default:
		return fmt.Errorf("snapshot: unknown subcommand %q (build|inspect|clear)", sub)
	}
}

func printSnapshotInfo(cacheDir string) error {
	infos, err := snapshot.Inspect(cacheDir)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Printf("no snapshots under %s\n", cacheDir)
		return nil
	}
	fmt.Printf("%-18s %6s %8s %10s %5s %6s %12s\n",
		"fingerprint", "seed", "scale", "workload", "db", "truth", "bytes")
	for _, in := range infos {
		db := "no"
		if in.HasDatabase {
			db = "yes"
		}
		fmt.Printf("%-18s %6d %8g %10s %5s %6d %12d\n",
			in.Fingerprint, in.Manifest.Seed, in.Manifest.Scale, in.Manifest.Workload,
			db, in.TruthFiles, in.Bytes)
	}
	return nil
}

// retitled swaps the heading of a reused result type (Figure 7 reuses
// Figure 6's layout).
type retitled struct {
	prefix string
	inner  interface{ Render() string }
}

func (w retitled) Render() string {
	s := w.inner.Render()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return w.prefix + s[i+1:]
	}
	return w.prefix + s
}
