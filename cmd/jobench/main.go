// Command jobench drives the Join Order Benchmark reproduction: generate
// the data set, explain and run individual queries, and regenerate every
// table and figure of Leis et al., "How Good Are Query Optimizers, Really?"
// (VLDB 2015).
//
// Usage:
//
//	jobench gen        [-workload imdb] [-scale 1.0] [-seed 42]
//	jobench sql        -q 13d
//	jobench graph      -q 13d
//	jobench explain    -q 13d [-analyze] [-est postgres] [-model simple] [-idx pkfk] [-scale 0.3]
//	jobench run        -q 13d [-est postgres] [-model simple] [-idx pkfk] [-rehash] [-no-nlj]
//	                   [-reopt] [-qerr 2] [-max-replans 4]
//	jobench experiment -name table1|fig3|fig4|fig5|sec41|fig6|fig7|fig8|fig9|table2|table3|all
//	                   [-scale 0.3] [-samples 10000] [-max-queries 0] [-parallel N]
//	jobench snapshot   build|inspect|clear [-workload imdb] [-cache-dir .jobench-cache]
//	                   [-scale 0.3] [-seed 42]
//	jobench serve      [-addr :8080] [-pool 2] [-workload imdb] [-scale 0.3] [-seed 42] [-cache-dir DIR]
//	                   [-feedback-bytes N] [-replica-id ID] [-peers URL,URL,...] [-self URL]
//	                   [-slow-query-ms N] [-log-level info] [-pprof 127.0.0.1:6060]
//	jobench router     -replicas URL,URL,... [-addr :8070] [-inflight 32]
//	                   [-slow-query-ms N] [-log-level info] [-pprof 127.0.0.1:6070]
//	jobench loadgen    [-target http://localhost:8070] [-duration 10s] [-concurrency 8]
//	                   [-mix optimize=4,execute=2,estimate=3,experiment=1] [-out BENCH_service.json]
//
// "jobench serve" runs the benchmark-as-a-service layer: warm System
// instances stay resident in an LRU pool and answer /v1/optimize,
// /v1/execute, /v1/explain, /v1/estimate, /v1/queries and
// /v1/experiment/{name} concurrently, with /healthz, /metrics and
// /v1/traces (recent request traces, propagated end-to-end via the
// X-Jobench-Trace header) as the ops surface. It shuts
// down gracefully on SIGINT/SIGTERM, cancelling in-flight work. Given
// -peers and -self it also joins a replica fleet: report-cache misses
// peek at the consistent-hash owner before computing.
//
// "jobench run -reopt" executes adaptively: plan subtrees run first as
// probes, observed intermediate cardinalities replace estimates whose
// q-error exceeds -qerr (triggering up to -max-replans re-optimizations),
// and the observations feed the plan-feedback cache. The service offers
// the same via the "adaptive" request field; "serve -feedback-bytes"
// bounds each resident instance's feedback cache.
//
// "jobench router" fronts N serve replicas with consistent hashing on
// (workload, seed, scale) so each replica's system pool stays hot; it health-checks
// replicas, marks them down on consecutive failures, fails transport
// errors over to the next live candidate, and serves its own /healthz and
// /metrics. "jobench loadgen" replays a mixed optimize/execute/estimate/
// experiment workload against a router (or single replica) and writes
// throughput plus latency percentiles to a JSON artifact. See
// docs/OPERATIONS.md for the full three-process topology.
//
// Every command accepts -parallel N to size the worker pool that fans
// experiment cells out across cores (0 = all cores, 1 = serial); the same
// setting parallelizes the per-subexpression work inside each
// true-cardinality computation, so "snapshot build" and single-query
// warmups scale with cores too. Reports are byte-identical at any
// setting. Every command also accepts
// -cache-dir DIR to load the generated database, statistics, and true
// cardinalities from the persistent snapshot store (and persist whatever
// this run computes); "jobench snapshot build" fills that store up front.
// -workload selects the benchmark world (imdb, the default JOB
// reproduction; tpch, a TPC-H-derived SPJ workload; imdb-skew, the IMDB
// generator with amplified skew and correlation).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"jobench"
	"jobench/internal/experiments"
	"jobench/internal/fault"
	"jobench/internal/loadgen"
	"jobench/internal/router"
	"jobench/internal/service"
	"jobench/internal/snapshot"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = cmdGen(args)
	case "sql":
		err = cmdSQL(args)
	case "graph":
		err = cmdGraph(args)
	case "explain":
		err = cmdExplain(args)
	case "run":
		err = cmdRun(args)
	case "experiment":
		err = cmdExperiment(args)
	case "snapshot":
		err = cmdSnapshot(args)
	case "serve":
		err = cmdServe(args)
	case "router":
		err = cmdRouter(args)
	case "loadgen":
		err = cmdLoadgen(args)
	case "help", "-h", "-help", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "jobench: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "jobench:", err)
		os.Exit(1)
	}
}

// usage prints the full subcommand synopsis. Both a bare "jobench" and an
// unknown subcommand land here (and exit 2).
func usage() {
	fmt.Fprintf(os.Stderr, `usage: jobench <command> [flags]

Commands:
  gen         generate the data set and print table sizes
  sql         print a workload query as SQL
  graph       print a query's join graph (Graphviz dot)
  explain     optimize a query and print the plan (-analyze executes it
              and prints estimated vs measured rows per operator)
  run         optimize and execute a query (-reopt for adaptive re-optimization)
  experiment  reproduce the paper's tables and figures (%s|all)
  snapshot    manage the persistent snapshot store (build|inspect|clear)
  serve       run the benchmark HTTP service (system pool + report cache)
  router      front N serve replicas with consistent hashing on (workload, seed, scale)
  loadgen     replay mixed traffic, write latency histograms + throughput JSON
  help        print this synopsis

Examples:
  jobench serve   -addr :8081 -cache-dir .jobench-cache
  jobench router  -addr :8070 -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
  jobench loadgen -target http://127.0.0.1:8070 -duration 10s -out BENCH_service.json

Run "jobench <command> -h" for command flags. Every command accepts
-workload NAME (imdb|tpch|imdb-skew), -parallel N (worker-pool size;
0 = all cores) and -cache-dir DIR (the persistent snapshot store).
`, strings.Join(experiments.Names(), "|"))
}

func openFlags(fs *flag.FlagSet) (*string, *float64, *int64, *int, *string) {
	wl := fs.String("workload", "", "benchmark workload: imdb|tpch|imdb-skew (empty = imdb)")
	scale := fs.Float64("scale", 0.3, "data scale factor (1.0 ~ 450k rows)")
	seed := fs.Int64("seed", 42, "generator seed")
	parallel := fs.Int("parallel", 0, "worker-pool size for experiment sweeps and the truecard DP (0 = all cores, 1 = serial)")
	cacheDir := fs.String("cache-dir", "", "snapshot cache directory (empty = no caching)")
	return wl, scale, seed, parallel, cacheDir
}

func planFlags(fs *flag.FlagSet) (est, model, idx *string, noNLJ *bool, shape, algo *string) {
	est = fs.String("est", "postgres", "estimator: postgres|dbms-a|dbms-b|dbms-c|hyper|true")
	model = fs.String("model", "simple", "cost model: simple|postgres|tuned")
	idx = fs.String("idx", "pkfk", "index config: none|pk|pkfk")
	noNLJ = fs.Bool("no-nlj", true, "disable non-indexed nested-loop joins")
	shape = fs.String("shape", "bushy", "tree shape: bushy|leftdeep|rightdeep|zigzag")
	algo = fs.String("algo", "dp", "enumeration: dp|dpccp|quickpick|goo")
	return
}

// parsePlanOptions delegates to the facade's shared knob vocabulary (the
// service's JSON API accepts exactly the same strings).
func parsePlanOptions(est, model, idx string, noNLJ bool, shape, algo string) (jobench.PlanOptions, error) {
	return jobench.MakePlanOptions(est, model, idx, noNLJ, shape, algo)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	wl, scale, seed, par, cacheDir := openFlags(fs)
	fs.Parse(args)
	sys, err := jobench.Open(jobench.Options{Workload: *wl, Scale: *scale, Seed: *seed, Parallel: *par, CacheDir: *cacheDir})
	if err != nil {
		return err
	}
	total := 0
	rows := sys.TableRows()
	// The IMDB-shaped workloads print in the schema's conventional order;
	// any other workload lists its tables alphabetically.
	names := []string{
		"kind_type", "info_type", "company_type", "role_type", "link_type",
		"comp_cast_type", "title", "company_name", "keyword", "name",
		"char_name", "movie_companies", "movie_info", "movie_info_idx",
		"movie_keyword", "cast_info", "aka_name", "aka_title", "movie_link",
		"person_info", "complete_cast",
	}
	if _, ok := rows["title"]; !ok {
		names = names[:0]
		for name := range rows {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	fmt.Printf("%-18s %10s\n", "table", "rows")
	for _, name := range names {
		fmt.Printf("%-18s %10d\n", name, rows[name])
		total += rows[name]
	}
	fmt.Printf("%-18s %10d\n", "TOTAL", total)
	fmt.Printf("\nworkload: %d queries\n", len(sys.QueryIDs()))
	return nil
}

func cmdSQL(args []string) error {
	fs := flag.NewFlagSet("sql", flag.ExitOnError)
	q := fs.String("q", "13d", "query id")
	wl, scale, seed, par, cacheDir := openFlags(fs)
	fs.Parse(args)
	sys, err := jobench.Open(jobench.Options{Workload: *wl, Scale: *scale, Seed: *seed, Parallel: *par, CacheDir: *cacheDir})
	if err != nil {
		return err
	}
	sql, err := sys.SQL(*q)
	if err != nil {
		return err
	}
	fmt.Println(sql)
	return nil
}

func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	q := fs.String("q", "13d", "query id")
	wl, scale, seed, par, cacheDir := openFlags(fs)
	fs.Parse(args)
	sys, err := jobench.Open(jobench.Options{Workload: *wl, Scale: *scale, Seed: *seed, Parallel: *par, CacheDir: *cacheDir})
	if err != nil {
		return err
	}
	dot, err := sys.JoinGraphDot(*q)
	if err != nil {
		return err
	}
	fmt.Print(dot)
	return nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	q := fs.String("q", "13d", "query id")
	analyze := fs.Bool("analyze", false, "execute the plan and print measured per-operator cardinalities (EXPLAIN ANALYZE)")
	limit := fs.Int64("work-limit", 0, "abort an -analyze execution after this many work units")
	est, model, idx, noNLJ, shape, algo := planFlags(fs)
	wl, scale, seed, par, cacheDir := openFlags(fs)
	fs.Parse(args)
	sys, err := jobench.Open(jobench.Options{Workload: *wl, Scale: *scale, Seed: *seed, Parallel: *par, CacheDir: *cacheDir})
	if err != nil {
		return err
	}
	opts, err := parsePlanOptions(*est, *model, *idx, *noNLJ, *shape, *algo)
	if err != nil {
		return err
	}
	if *analyze {
		text, err := sys.ExplainAnalyze(*q, jobench.RunOptions{
			PlanOptions: opts, Rehash: true, WorkLimit: *limit,
		})
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}
	text, cost, err := sys.Optimize(*q, opts)
	if err != nil {
		return err
	}
	fmt.Print(text)
	fmt.Printf("estimated cost: %.2f (%s model, %s estimates)\n", cost, *model, *est)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	q := fs.String("q", "13d", "query id")
	est, model, idx, noNLJ, shape, algo := planFlags(fs)
	rehash := fs.Bool("rehash", true, "resize hash tables at runtime")
	limit := fs.Int64("work-limit", 0, "abort after this many work units")
	adaptive := fs.Bool("reopt", false, "execute adaptively: probe intermediates, replan on misestimates, record feedback")
	qerr := fs.Float64("qerr", 0, "q-error threshold that triggers a replan (0 = default 2); needs -reopt")
	maxReplans := fs.Int("max-replans", 0, "re-optimizations per query (0 = default 4); needs -reopt")
	wl, scale, seed, par, cacheDir := openFlags(fs)
	fs.Parse(args)
	sys, err := jobench.Open(jobench.Options{Workload: *wl, Scale: *scale, Seed: *seed, Parallel: *par, CacheDir: *cacheDir})
	if err != nil {
		return err
	}
	opts, err := parsePlanOptions(*est, *model, *idx, *noNLJ, *shape, *algo)
	if err != nil {
		return err
	}
	start := time.Now()
	var res jobench.Result
	if *adaptive {
		ares, err := sys.ExecuteAdaptive(*q, jobench.AdaptiveOptions{
			RunOptions:    jobench.RunOptions{PlanOptions: opts, Rehash: *rehash, WorkLimit: *limit},
			QErrThreshold: *qerr,
			MaxReplans:    *maxReplans,
		})
		if err != nil {
			return err
		}
		res = ares.Result
		fmt.Printf("adaptive: %d probes, %d replans, %d cardinalities pinned from feedback\n",
			ares.Probes, ares.Replans, ares.Pinned)
	} else {
		res, err = sys.Execute(*q, jobench.RunOptions{
			PlanOptions: opts, Rehash: *rehash, WorkLimit: *limit,
		})
		if err != nil {
			return err
		}
	}
	fmt.Print(res.Plan)
	if res.TimedOut {
		fmt.Printf("TIMED OUT after %d work units (%.1fms wall)\n",
			res.Work, float64(time.Since(start).Microseconds())/1000)
		return nil
	}
	truth, err := sys.TrueCardinality(*q)
	if err != nil {
		return err
	}
	fmt.Printf("rows: %d (true cardinality %.0f)\nwork: %d units, %.1fms wall\n",
		res.Rows, truth, res.Work, float64(time.Since(start).Microseconds())/1000)
	return nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	name := fs.String("name", "all", "experiment: table1|fig3|fig4|fig5|sec41|fig6|fig7|fig8|fig9|table2|table3|ablation-damping|ablation-rehash|hedging|all")
	samples := fs.Int("samples", 10000, "random plans per query for fig9")
	maxQ := fs.Int("max-queries", 0, "limit workload size (0 = all 113)")
	wl, scale, seed, par, cacheDir := openFlags(fs)
	fs.Parse(args)

	lab, err := experiments.NewLab(experiments.Config{
		Workload: *wl, Scale: *scale, Seed: *seed, MaxQueries: *maxQ, Parallel: *par, CacheDir: *cacheDir,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "computing true cardinalities for %d queries...\n", len(lab.Queries))
	start := time.Now()
	if err := lab.Warmup(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "done in %v\n\n", time.Since(start).Round(time.Millisecond))

	// The shared registry maps names to drivers; the service's
	// /v1/experiment/{name} resolves the very same entries, which is what
	// keeps both surfaces byte-identical.
	params := experiments.Params{Samples: *samples}
	matched := false
	for _, e := range experiments.Registry() {
		if *name != "all" && *name != e.Name {
			continue
		}
		matched = true
		t0 := time.Now()
		res, err := e.Run(context.Background(), lab, params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		fmt.Printf("=== %s (%v) ===\n%s\n", e.Name, time.Since(t0).Round(time.Millisecond), res.Render())
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q (%s|all)", *name, strings.Join(experiments.Names(), "|"))
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	pool := fs.Int("pool", 2, "max resident (seed, scale) instances; least recently used is evicted")
	feedbackBytes := fs.Int64("feedback-bytes", 0, "per-instance plan-feedback cache budget in bytes (0 = default 1 MiB)")
	replicaID := fs.String("replica-id", "", "identity label exported at /metrics (jobench_replica_info)")
	peers := fs.String("peers", "", "comma-separated base URLs of every fleet replica (including this one); enables report-cache peer-fill")
	self := fs.String("self", "", "this replica's own entry in -peers (required with -peers)")
	slowMS := fs.Float64("slow-query-ms", 0, "log a span summary for requests at least this slow (0 disables)")
	maxQueue := fs.Int("max-queue", 0, "experiment admission-queue cap; arrivals past it are shed with 429 (0 = default 16)")
	faultSpec := fs.String("fault-spec", "", "fault-injection spec for chaos runs, e.g. 'route=/v1/execute,error=0.1,latency=50ms' (empty = injection compiled out)")
	faultSeed := fs.Int64("fault-seed", 0, "seed for the fault spec's random draws (0 = the spec's own seed)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this extra address (e.g. 127.0.0.1:6060); never on the public listener")
	logLevel := logFlags(fs)
	wl, scale, seed, par, cacheDir := openFlags(fs)
	fs.Parse(args)

	if (*peers == "") != (*self == "") {
		return fmt.Errorf("serve: -peers and -self must be set together")
	}
	logger, err := buildLogger(*logLevel)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	spec, err := fault.ParseSpec(*faultSpec)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if spec != nil && *faultSeed != 0 {
		spec.Seed = *faultSeed
	}
	injector := fault.New(spec) // nil spec -> nil injector -> zero request-path cost
	if injector != nil {
		logger.Warn("fault injection ACTIVE — this replica will misbehave on purpose", "spec", *faultSpec)
	}
	startPprof(*pprofAddr, logger)
	// SIGINT/SIGTERM cancel the context; the server stops listening,
	// cancellation propagates into in-flight truecard/experiment work, and
	// handlers get a grace period to flush.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := service.New(service.Config{
		Addr:            *addr,
		DefaultWorkload: *wl,
		DefaultSeed:     *seed,
		DefaultScale:    *scale,
		Parallel:        *par,
		CacheDir:        *cacheDir,
		PoolSize:        *pool,
		FeedbackBytes:   *feedbackBytes,
		ReplicaID:       *replicaID,
		Peers:           splitList(*peers),
		SelfURL:         *self,
		SlowQuery:       time.Duration(*slowMS * float64(time.Millisecond)),
		MaxQueue:        *maxQueue,
		Fault:           injector,
		Logger:          logger,
	})
	return srv.ListenAndServe(ctx)
}

func cmdRouter(args []string) error {
	fs := flag.NewFlagSet("router", flag.ExitOnError)
	addr := fs.String("addr", ":8070", "listen address")
	replicas := fs.String("replicas", "", "comma-separated base URLs of the serve replicas (required)")
	inflight := fs.Int("inflight", 32, "max in-flight forwards per replica; excess requests queue")
	healthEvery := fs.Duration("health-interval", 2*time.Second, "period of the per-replica /healthz probe")
	markDown := fs.Int("mark-down-after", 2, "consecutive failures that mark a replica down")
	requestTimeout := fs.Duration("request-timeout", 0, "end-to-end deadline minted per request as X-Jobench-Deadline (0 = forward timeout)")
	attemptTimeout := fs.Duration("attempt-timeout", 0, "per-attempt bound so a hung replica burns one attempt, not the whole deadline (0 = request timeout)")
	maxRetries := fs.Int("max-retries", 2, "max re-attempts per request (transport errors and retryable 5xx)")
	retryBudget := fs.Float64("retry-budget", 0.2, "per-client retry tokens earned per request (bucket capped at 10)")
	slowMS := fs.Float64("slow-query-ms", 0, "log a span summary for forwarded requests at least this slow (0 disables)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this extra address (e.g. 127.0.0.1:6070); never on the public listener")
	logLevel := logFlags(fs)
	fs.Parse(args)

	logger, err := buildLogger(*logLevel)
	if err != nil {
		return fmt.Errorf("router: %w", err)
	}
	startPprof(*pprofAddr, logger)
	srv, err := router.New(router.Config{
		Addr:               *addr,
		Replicas:           splitList(*replicas),
		InFlightPerReplica: *inflight,
		HealthInterval:     *healthEvery,
		MarkDownAfter:      *markDown,
		RequestTimeout:     *requestTimeout,
		AttemptTimeout:     *attemptTimeout,
		MaxRetries:         *maxRetries,
		RetryBudget:        *retryBudget,
		SlowQuery:          time.Duration(*slowMS * float64(time.Millisecond)),
		Logger:             logger,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.ListenAndServe(ctx)
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	target := fs.String("target", "http://127.0.0.1:8070", "router or replica base URL")
	duration := fs.Duration("duration", 10*time.Second, "how long the workers fire")
	concurrency := fs.Int("concurrency", 8, "number of concurrent request loops")
	mixSpec := fs.String("mix", "optimize=4,execute=2,estimate=3,experiment=1",
		"request-class weights, class=weight comma-separated (classes: optimize|execute|estimate|experiment|reopt)")
	out := fs.String("out", "BENCH_service.json", "result artifact path (- for stdout)")
	loadSeed := fs.Int64("load-seed", 1, "seed for the generator's random choices")
	queries := fs.String("queries", "", "comma-separated workload ids (default: fetch from target)")
	expNames := fs.String("experiments", "fig3", "comma-separated experiment names for the experiment class")
	worldSeeds := fs.String("world-seeds", "", "comma-separated generator seeds to spread the load across (overrides -seed; the experiment class always uses the first)")
	requestTimeout := fs.Duration("request-timeout", 0, "per-request deadline, enforced client-side and sent as X-Jobench-Deadline (0 = none)")
	deadlineGrace := fs.Duration("deadline-grace", 0, "slack over -request-timeout before a request counts as a deadline overrun (default 500ms)")
	logLevel := logFlags(fs)
	wl, scale, seed, _, _ := openFlags(fs)
	fs.Parse(args)

	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	logger, err := buildLogger(*logLevel)
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	var seeds []int64
	for _, s := range splitList(*worldSeeds) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("loadgen: invalid world seed %q", s)
		}
		seeds = append(seeds, v)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := loadgen.Run(ctx, loadgen.Config{
		Target:         *target,
		Duration:       *duration,
		Concurrency:    *concurrency,
		Mix:            mix,
		Seed:           *loadSeed,
		Workloads:      splitList(*wl),
		WorldSeed:      *seed,
		WorldSeeds:     seeds,
		Scale:          *scale,
		Queries:        splitList(*queries),
		Experiments:    splitList(*expNames),
		RequestTimeout: *requestTimeout,
		DeadlineGrace:  *deadlineGrace,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d requests (%d errors) at %.1f req/s, p50 %.1fms p99 %.1fms -> %s\n",
		res.Total.Requests, res.Total.Errors, res.Total.ThroughputRPS,
		res.Total.Latency.P50, res.Total.Latency.P99, *out)
	return nil
}

// splitList splits a comma-separated flag value, dropping empty entries
// (so an unset flag yields nil, not [""]).
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseMix parses "class=weight,class=weight" into a loadgen mix.
func parseMix(spec string) (map[string]int, error) {
	mix := make(map[string]int)
	for _, part := range splitList(spec) {
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: mix entry %q is not class=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("loadgen: invalid weight in %q", part)
		}
		switch name {
		case loadgen.ClassOptimize, loadgen.ClassExecute, loadgen.ClassEstimate,
			loadgen.ClassExperiment, loadgen.ClassReopt:
		default:
			return nil, fmt.Errorf("loadgen: unknown class %q (optimize|execute|estimate|experiment|reopt)", name)
		}
		mix[name] = w
	}
	return mix, nil
}

// logFlags adds the structured-logging flags shared by the service
// commands (serve, router, loadgen).
func logFlags(fs *flag.FlagSet) *string {
	return fs.String("log-level", "info", "log verbosity: debug|info|warn|error")
}

// buildLogger constructs the slog text logger the service commands hand
// to their Config.Logger fields.
func buildLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (debug|info|warn|error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// startPprof serves net/http/pprof on its own mux and listener — never on
// the public address — when addr is non-empty.
func startPprof(addr string, logger *slog.Logger) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		logger.Info("pprof listening", "addr", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			logger.Warn("pprof server stopped", "err", err)
		}
	}()
}

func cmdSnapshot(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf(`snapshot: missing subcommand (build|inspect|clear)`)
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("snapshot "+sub, flag.ExitOnError)
	wl, scale, seed, par, cacheDir := openFlags(fs)
	// The snapshot command exists to manage the cache, so unlike the other
	// commands its -cache-dir defaults to a real directory.
	fs.Lookup("cache-dir").DefValue = ".jobench-cache"
	*cacheDir = ".jobench-cache"
	fs.Parse(args)

	switch sub {
	case "build":
		start := time.Now()
		sys, err := jobench.Open(jobench.Options{
			Workload: *wl, Scale: *scale, Seed: *seed, Parallel: *par, CacheDir: *cacheDir,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "snapshot: database + statistics ready in %v, computing true cardinalities for %d queries...\n",
			time.Since(start).Round(time.Millisecond), len(sys.QueryIDs()))
		if err := sys.Warmup(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "snapshot: built in %v\n", time.Since(start).Round(time.Millisecond))
		return printSnapshotInfo(*cacheDir)
	case "inspect":
		return printSnapshotInfo(*cacheDir)
	case "clear":
		// -workload filters the clear to one workload's artifacts; the flag's
		// empty default clears the whole store (the historical behavior).
		removed, err := snapshot.Clear(*cacheDir, *wl)
		if err != nil {
			return err
		}
		if *wl != "" {
			fmt.Printf("removed %d %s snapshot(s) from %s\n", removed, *wl, *cacheDir)
			return nil
		}
		fmt.Printf("removed %d snapshot(s) from %s\n", removed, *cacheDir)
		return nil
	default:
		return fmt.Errorf("snapshot: unknown subcommand %q (build|inspect|clear)", sub)
	}
}

func printSnapshotInfo(cacheDir string) error {
	infos, err := snapshot.Inspect(cacheDir)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Printf("no snapshots under %s\n", cacheDir)
		return nil
	}
	fmt.Printf("%-18s %6s %8s %10s %5s %6s %-14s %12s\n",
		"fingerprint", "seed", "scale", "workload", "db", "truth", "indexes", "bytes")
	for _, in := range infos {
		db := "no"
		if in.HasDatabase {
			db = "yes"
		}
		idx := "-"
		if len(in.IndexSets) > 0 {
			idx = strings.Join(in.IndexSets, ",")
		}
		fmt.Printf("%-18s %6d %8g %10s %5s %6d %-14s %12d\n",
			in.Fingerprint, in.Manifest.Seed, in.Manifest.Scale, in.Manifest.Workload,
			db, in.TruthFiles, idx, in.Bytes)
	}
	return nil
}
