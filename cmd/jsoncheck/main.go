// Command jsoncheck asserts that stdin is a JSON object containing the
// given keys. It exists so the service and bench-service smoke tests in
// the Makefile and CI can validate responses and artifacts without
// depending on jq being installed.
//
// Each argument is either key=value (the key must be present and its
// value, rendered with fmt.Sprint, must equal the string) or a bare key
// (the key must merely be present). Keys may be dotted paths traversing
// nested objects; an all-digit path part indexes a JSON array
// ("nodes.0.actual_rows" is the first node's actual_rows).
//
// Usage:
//
//	curl -fsS http://localhost:8080/healthz | jsoncheck status=ok
//	jsoncheck schema=jobench-loadgen/v1 total.requests classes.optimize.latency_ms.p50 < BENCH_service.json
//	curl -fsS -d '{"query":"1a"}' http://localhost:8080/v1/explain | jsoncheck nodes.0.actual_rows
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal("reading stdin: %v", err)
	}
	var obj map[string]any
	if err := json.Unmarshal(data, &obj); err != nil {
		fatal("invalid JSON: %v\ninput: %s", err, data)
	}
	for _, arg := range os.Args[1:] {
		path, want, hasWant := strings.Cut(arg, "=")
		got, err := lookup(obj, path)
		if err != nil {
			fatal("%v\ninput: %s", err, data)
		}
		if hasWant && fmt.Sprint(got) != want {
			fatal("key %q = %v, want %q\ninput: %s", path, got, want, data)
		}
	}
}

// lookup resolves a dotted path through nested JSON objects and arrays:
// an all-digit part indexes an array, anything else keys an object.
func lookup(obj map[string]any, path string) (any, error) {
	parts := strings.Split(path, ".")
	var cur any = obj
	for i, part := range parts {
		switch v := cur.(type) {
		case map[string]any:
			var ok bool
			cur, ok = v[part]
			if !ok {
				return nil, fmt.Errorf("key %q missing (at %q)", path, part)
			}
		case []any:
			idx, err := strconv.Atoi(part)
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("key %q: %q is an array, %q is not an index", path, strings.Join(parts[:i], "."), part)
			}
			if idx >= len(v) {
				return nil, fmt.Errorf("key %q: index %d out of range (array has %d elements)", path, idx, len(v))
			}
			cur = v[idx]
		default:
			return nil, fmt.Errorf("key %q: %q is not an object or array", path, strings.Join(parts[:i], "."))
		}
	}
	return cur, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jsoncheck: "+format+"\n", args...)
	os.Exit(1)
}
