// Command jsoncheck asserts that stdin is a JSON object containing the
// given keys. It exists so the service and bench-service smoke tests in
// the Makefile and CI can validate responses and artifacts without
// depending on jq being installed.
//
// Each argument is either key=value (the key must be present and its
// value, rendered with fmt.Sprint, must equal the string), key<=value /
// key>=value (the key must be a number satisfying the comparison — how
// chaos runs assert "error_rate<=0.2" or "deadline_overruns<=0"), or a
// bare key (the key must merely be present). Keys may be dotted paths
// traversing nested objects; an all-digit path part indexes a JSON array
// ("nodes.0.actual_rows" is the first node's actual_rows).
//
// Usage:
//
//	curl -fsS http://localhost:8080/healthz | jsoncheck status=ok
//	jsoncheck schema=jobench-loadgen/v1 total.requests classes.optimize.latency_ms.p50 < BENCH_service.json
//	jsoncheck 'total.error_rate<=0.25' 'total.deadline_overruns<=0' 'total.requests>=10' < BENCH_service.json
//	curl -fsS -d '{"query":"1a"}' http://localhost:8080/v1/explain | jsoncheck nodes.0.actual_rows
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal("reading stdin: %v", err)
	}
	var obj map[string]any
	if err := json.Unmarshal(data, &obj); err != nil {
		fatal("invalid JSON: %v\ninput: %s", err, data)
	}
	for _, arg := range os.Args[1:] {
		if err := check(obj, arg); err != nil {
			fatal("%v\ninput: %s", err, data)
		}
	}
}

// check evaluates one assertion argument against the decoded object.
func check(obj map[string]any, arg string) error {
	// The two-rune operators embed "="; match them before the plain cut.
	for _, op := range []string{"<=", ">="} {
		path, want, ok := strings.Cut(arg, op)
		if !ok {
			continue
		}
		got, err := lookup(obj, path)
		if err != nil {
			return err
		}
		gotN, ok := got.(float64) // encoding/json decodes every number this way
		if !ok {
			return fmt.Errorf("key %q = %v (%T), not a number to compare with %q", path, got, got, op)
		}
		wantN, err := strconv.ParseFloat(want, 64)
		if err != nil {
			return fmt.Errorf("assertion %q: %q is not a number", arg, want)
		}
		if (op == "<=" && gotN > wantN) || (op == ">=" && gotN < wantN) {
			return fmt.Errorf("key %q = %v, want %s %v", path, gotN, op, wantN)
		}
		return nil
	}
	path, want, hasWant := strings.Cut(arg, "=")
	got, err := lookup(obj, path)
	if err != nil {
		return err
	}
	if hasWant && fmt.Sprint(got) != want {
		return fmt.Errorf("key %q = %v, want %q", path, got, want)
	}
	return nil
}

// lookup resolves a dotted path through nested JSON objects and arrays:
// an all-digit part indexes an array, anything else keys an object.
func lookup(obj map[string]any, path string) (any, error) {
	parts := strings.Split(path, ".")
	var cur any = obj
	for i, part := range parts {
		switch v := cur.(type) {
		case map[string]any:
			var ok bool
			cur, ok = v[part]
			if !ok {
				return nil, fmt.Errorf("key %q missing (at %q)", path, part)
			}
		case []any:
			idx, err := strconv.Atoi(part)
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("key %q: %q is an array, %q is not an index", path, strings.Join(parts[:i], "."), part)
			}
			if idx >= len(v) {
				return nil, fmt.Errorf("key %q: index %d out of range (array has %d elements)", path, idx, len(v))
			}
			cur = v[idx]
		default:
			return nil, fmt.Errorf("key %q: %q is not an object or array", path, strings.Join(parts[:i], "."))
		}
	}
	return cur, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jsoncheck: "+format+"\n", args...)
	os.Exit(1)
}
