// Command jsoncheck asserts that stdin is a JSON object containing the
// given key=value pairs (values compared as strings). It exists so the
// service smoke test in the Makefile and CI can validate responses without
// depending on jq being installed.
//
// Usage:
//
//	curl -fsS http://localhost:8080/healthz | jsoncheck status=ok
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal("reading stdin: %v", err)
	}
	var obj map[string]any
	if err := json.Unmarshal(data, &obj); err != nil {
		fatal("invalid JSON: %v\ninput: %s", err, data)
	}
	for _, arg := range os.Args[1:] {
		key, want, ok := strings.Cut(arg, "=")
		if !ok {
			fatal("argument %q is not key=value", arg)
		}
		got, present := obj[key]
		if !present {
			fatal("key %q missing\ninput: %s", key, data)
		}
		if fmt.Sprint(got) != want {
			fatal("key %q = %v, want %q\ninput: %s", key, got, want, data)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jsoncheck: "+format+"\n", args...)
	os.Exit(1)
}
