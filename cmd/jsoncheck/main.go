// Command jsoncheck asserts that stdin is a JSON object containing the
// given keys. It exists so the service and bench-service smoke tests in
// the Makefile and CI can validate responses and artifacts without
// depending on jq being installed.
//
// Each argument is either key=value (the key must be present and its
// value, rendered with fmt.Sprint, must equal the string) or a bare key
// (the key must merely be present). Keys may be dotted paths traversing
// nested objects.
//
// Usage:
//
//	curl -fsS http://localhost:8080/healthz | jsoncheck status=ok
//	jsoncheck schema=jobench-loadgen/v1 total.requests classes.optimize.latency_ms.p50 < BENCH_service.json
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal("reading stdin: %v", err)
	}
	var obj map[string]any
	if err := json.Unmarshal(data, &obj); err != nil {
		fatal("invalid JSON: %v\ninput: %s", err, data)
	}
	for _, arg := range os.Args[1:] {
		path, want, hasWant := strings.Cut(arg, "=")
		got, err := lookup(obj, path)
		if err != nil {
			fatal("%v\ninput: %s", err, data)
		}
		if hasWant && fmt.Sprint(got) != want {
			fatal("key %q = %v, want %q\ninput: %s", path, got, want, data)
		}
	}
}

// lookup resolves a dotted path through nested JSON objects.
func lookup(obj map[string]any, path string) (any, error) {
	parts := strings.Split(path, ".")
	var cur any = obj
	for i, part := range parts {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("key %q: %q is not an object", path, strings.Join(parts[:i], "."))
		}
		cur, ok = m[part]
		if !ok {
			return nil, fmt.Errorf("key %q missing (at %q)", path, part)
		}
	}
	return cur, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jsoncheck: "+format+"\n", args...)
	os.Exit(1)
}
