package main

import (
	"encoding/json"
	"testing"
)

func decode(t *testing.T, s string) map[string]any {
	t.Helper()
	var obj map[string]any
	if err := json.Unmarshal([]byte(s), &obj); err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestCheckOperators(t *testing.T) {
	obj := decode(t, `{
		"schema": "jobench-loadgen/v1",
		"total": {"requests": 120, "error_rate": 0.05, "deadline_overruns": 0},
		"classes": {"optimize": {"failures": {"shed": 3}}}
	}`)
	pass := []string{
		"schema=jobench-loadgen/v1",
		"total.requests",
		"total.requests>=10",
		"total.requests<=120",
		"total.error_rate<=0.2",
		"total.deadline_overruns<=0",
		"classes.optimize.failures.shed>=1",
	}
	for _, arg := range pass {
		if err := check(obj, arg); err != nil {
			t.Errorf("check(%q) = %v, want pass", arg, err)
		}
	}
	fail := []string{
		"schema=other",
		"total.missing",
		"total.requests>=121",
		"total.error_rate<=0.01",
		"total.deadline_overruns<=-1",
		"schema<=3", // not a number
		"total.requests<=abc",
	}
	for _, arg := range fail {
		if err := check(obj, arg); err == nil {
			t.Errorf("check(%q) passed, want failure", arg)
		}
	}
}

func TestLookupArrayIndexing(t *testing.T) {
	obj := decode(t, `{"nodes": [{"actual_rows": 42}]}`)
	got, err := lookup(obj, "nodes.0.actual_rows")
	if err != nil {
		t.Fatal(err)
	}
	if got.(float64) != 42 {
		t.Fatalf("nodes.0.actual_rows = %v, want 42", got)
	}
	if _, err := lookup(obj, "nodes.1.actual_rows"); err == nil {
		t.Fatal("out-of-range index must fail")
	}
}
