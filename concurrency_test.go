package jobench

// These tests pin the System's concurrency contract: every method is safe
// for concurrent use (the service layer serves one shared System to many
// requests at once), and an uncached truth store is computed exactly once
// no matter how many goroutines ask for it simultaneously. They live in the
// jobench package to reach the computeTruth indirection point, and they are
// deliberately small so the -race -short CI job runs them.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jobench/internal/query"
	"jobench/internal/storage"
	"jobench/internal/truecard"
)

// TestConcurrentMixedUse hammers one shared System with mixed
// Optimize/Execute/Estimate/metadata calls from many goroutines, including
// AddQuery racing the read paths. Run under -race this is the proof of the
// documented "safe for concurrent use" contract.
func TestConcurrentMixedUse(t *testing.T) {
	sys, err := Open(Options{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"1a", "6a", "17e"}

	// Serial reference results to compare the concurrent runs against.
	wantPlan := make(map[string]string)
	wantRows := make(map[string]int64)
	for _, qid := range queries {
		text, _, err := sys.Optimize(qid, PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wantPlan[qid] = text
		res, err := sys.Execute(qid, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wantRows[qid] = res.Rows
	}

	const workers = 8
	const iters = 4
	var wg sync.WaitGroup
	errc := make(chan error, workers*iters*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qid := queries[(w+i)%len(queries)]
				switch w % 4 {
				case 0:
					text, _, err := sys.Optimize(qid, PlanOptions{})
					if err != nil {
						errc <- err
					} else if text != wantPlan[qid] {
						errc <- fmt.Errorf("%s: concurrent plan differs from serial", qid)
					}
				case 1:
					res, err := sys.Execute(qid, RunOptions{})
					if err != nil {
						errc <- err
					} else if res.Rows != wantRows[qid] {
						errc <- fmt.Errorf("%s: concurrent rows %d, serial %d", qid, res.Rows, wantRows[qid])
					}
				case 2:
					if _, err := sys.EstimateCardinality(qid, EstPostgres); err != nil {
						errc <- err
					}
					if _, err := sys.TrueCardinality(qid); err != nil {
						errc <- err
					}
				case 3:
					// Registry writes racing the readers above.
					id := fmt.Sprintf("user-%d-%d", w, i)
					if err := sys.AddQuery(id, "SELECT * FROM title t WHERE t.production_year > 1990"); err != nil {
						errc <- err
					}
					if _, _, err := sys.Optimize(id, PlanOptions{}); err != nil {
						errc <- err
					}
					if len(sys.QueryIDs()) == 0 {
						errc <- fmt.Errorf("QueryIDs empty during concurrent use")
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestTruthStoreSingleFlight proves that N concurrent requests for one
// uncached truth store perform exactly one computation and share its
// result.
func TestTruthStoreSingleFlight(t *testing.T) {
	sys, err := Open(Options{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	origCompute := computeTruth
	computeTruth = func(ctx context.Context, db *storage.Database, g *query.Graph, opts truecard.Options) (*truecard.Store, error) {
		computes.Add(1)
		// Hold the flight open long enough for every waiter to pile up
		// behind it.
		time.Sleep(50 * time.Millisecond)
		return origCompute(ctx, db, g, opts)
	}
	t.Cleanup(func() { computeTruth = origCompute })

	const callers = 8
	var wg sync.WaitGroup
	stores := make([]*truecard.Store, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stores[i], errs[i] = sys.TruthStore("1a")
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if stores[i] != stores[0] {
			t.Fatalf("caller %d received a different store instance", i)
		}
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("%d truth computations for one query under concurrency, want 1", got)
	}
}
