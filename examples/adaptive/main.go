// Adaptive re-optimization end to end on one query: execute statically on
// PostgreSQL-style estimates, execute adaptively (probing intermediates and
// re-planning on misestimates), then plan again and watch the plan-feedback
// cache pin the observed cardinalities — the paper's "what if the optimizer
// had the true cardinalities?" question answered by paying for them once.
package main

import (
	"fmt"
	"log"

	"jobench"
)

func main() {
	sys, err := jobench.Open(jobench.Options{Scale: 0.2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	const qid = "16b"
	plan := jobench.PlanOptions{
		Estimator:          jobench.EstPostgres,
		CostModel:          jobench.ModelTuned,
		Indexes:            jobench.PKOnly,
		DisableNestedLoops: true,
	}

	// Static: plan once on estimates, run whatever comes out.
	static, err := sys.Execute(qid, jobench.RunOptions{PlanOptions: plan, Rehash: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static:   %d rows, %12d work units\n", static.Rows, static.Work)

	// Adaptive: probe plan subtrees, replan past q-error 2, record feedback.
	adaptive, err := sys.ExecuteAdaptive(qid, jobench.AdaptiveOptions{
		RunOptions: jobench.RunOptions{PlanOptions: plan, Rehash: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive: %d rows, %12d work units (%d probes, %d replans)\n",
		adaptive.Rows, adaptive.Work, adaptive.Probes, adaptive.Replans)

	// The observations now live in the plan-feedback cache: a repeat
	// optimization of the same query fingerprint plans from truth.
	warm, err := sys.OptimizeAdaptive(qid, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replan:   feedback hit=%v, %d observed cardinalities pinned\n",
		warm.FeedbackHit, warm.Pinned)
	st := sys.FeedbackStats()
	fmt.Printf("cache:    %d entries, %d bytes, %d hits, %d misses\n",
		st.Entries, st.Bytes, st.Hits, st.Misses)
}
