// Cardinality: reproduce the paper's §3 analysis on a few queries — watch
// estimation errors grow exponentially with the number of joins, and
// compare the five estimator profiles side by side (a miniature Fig. 3).
package main

import (
	"fmt"
	"log"

	"jobench/internal/cardest"
	"jobench/internal/imdb"
	"jobench/internal/job"
	"jobench/internal/metrics"
	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/truecard"
)

func main() {
	db := imdb.Generate(imdb.Config{Scale: 0.3, Seed: 42})
	sdb := stats.AnalyzeDatabase(db, stats.DefaultOptions())

	estimators := []cardest.Estimator{
		cardest.NewPostgres(db, sdb),
		cardest.NewDBMSA(db, sdb),
		cardest.NewDBMSB(db, sdb),
		cardest.NewDBMSC(db, sdb),
		cardest.NewSample(db, sdb),
	}

	// Collect signed errors (estimate/truth) by join count over a handful
	// of representative queries.
	errs := make(map[string][][]float64) // system -> joins -> errors
	for _, est := range estimators {
		errs[est.Name()] = make([][]float64, 7)
	}
	for _, qid := range []string{"6a", "13d", "16d", "17b", "25c", "12c", "22a"} {
		q := job.ByID(qid)
		g := query.MustBuildGraph(q)
		st, err := truecard.Compute(db, g, truecard.Options{MaxSize: 7})
		if err != nil {
			log.Fatal(err)
		}
		provs := make(map[string]cardest.Provider)
		for _, est := range estimators {
			provs[est.Name()] = est.ForQuery(g)
		}
		g.ConnectedSubsets(func(s query.BitSet) {
			nj := len(g.EdgesWithin(s))
			if nj > 6 || s.Count() > 7 {
				return
			}
			truth, ok := st.Card(s)
			if !ok {
				return
			}
			for name, p := range provs {
				errs[name][nj] = append(errs[name][nj], metrics.SignedError(p.Card(s), truth))
			}
		})
	}

	fmt.Println("median signed estimation error (est/true) by number of joins")
	fmt.Println("(1.0 = perfect; < 1 = underestimation, the paper's Fig. 3 trend)")
	fmt.Printf("\n%-12s", "system")
	for nj := 0; nj <= 6; nj++ {
		fmt.Printf("%10d", nj)
	}
	fmt.Println()
	for _, est := range estimators {
		fmt.Printf("%-12s", est.Name())
		for nj := 0; nj <= 6; nj++ {
			xs := errs[est.Name()][nj]
			if len(xs) == 0 {
				fmt.Printf("%10s", "-")
				continue
			}
			fmt.Printf("%10.3g", metrics.Median(xs))
		}
		fmt.Println()
	}

	fmt.Println("\nq-error 95th percentile by number of joins")
	for _, est := range estimators {
		fmt.Printf("%-12s", est.Name())
		for nj := 0; nj <= 6; nj++ {
			xs := errs[est.Name()][nj]
			if len(xs) == 0 {
				fmt.Printf("%10s", "-")
				continue
			}
			qe := make([]float64, len(xs))
			for i, x := range xs {
				if x < 1 {
					qe[i] = 1 / x
				} else {
					qe[i] = x
				}
			}
			fmt.Printf("%10.3g", metrics.Percentile(qe, 95))
		}
		fmt.Println()
	}
}
