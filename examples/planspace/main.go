// Planspace: visualise the join-order search space of one query (the
// paper's Fig. 9 and §6): sample thousands of random plans with QuickPick,
// print an ASCII cost histogram per physical design, and compare the
// enumeration algorithms.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/enum"
	"jobench/internal/imdb"
	"jobench/internal/index"
	"jobench/internal/job"
	"jobench/internal/optimizer"
	"jobench/internal/plan"
	"jobench/internal/query"
	"jobench/internal/storage"
	"jobench/internal/truecard"
)

func main() {
	const qid = "16d" // one of Fig. 9's "few good plans" queries
	const samples = 5000

	db := imdb.Generate(imdb.Config{Scale: 0.3, Seed: 42})
	q := job.ByID(qid)
	g := query.MustBuildGraph(q)
	fmt.Printf("query %s: %d relations, %d join predicates, %d connected subgraphs\n\n",
		qid, len(q.Rels), q.NumJoins(), g.CountConnectedSubsets())

	st, err := truecard.Compute(db, g, truecard.Options{})
	if err != nil {
		log.Fatal(err)
	}
	truth := cardest.True{Store: st}

	configs := []struct {
		label string
		cfg   imdb.IndexConfig
	}{
		{"no indexes", imdb.NoIndexes},
		{"PK indexes", imdb.PKOnly},
		{"PK + FK indexes", imdb.PKFK},
	}

	// The normaliser: optimal plan under FK indexes (as in Fig. 9).
	var fkOptimal float64
	for i := len(configs) - 1; i >= 0; i-- {
		idx, err := imdb.BuildIndexes(db, configs[i].cfg)
		if err != nil {
			log.Fatal(err)
		}
		sp := space(g, db, idx, truth)
		opt, err := enum.DP(sp)
		if err != nil {
			log.Fatal(err)
		}
		if configs[i].cfg == imdb.PKFK {
			fkOptimal = opt.ECost
		}
	}

	for _, c := range configs {
		idx, err := imdb.BuildIndexes(db, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		sp := space(g, db, idx, truth)
		opt, err := enum.DP(sp)
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		var costs []float64
		for i := 0; i < samples; i++ {
			p, err := enum.QuickPick(sp, rng)
			if err != nil {
				log.Fatal(err)
			}
			costs = append(costs, p.ECost/fkOptimal)
		}
		fmt.Printf("--- %s (optimal %.2fx of FK optimum) ---\n", c.label, opt.ECost/fkOptimal)
		histogram(costs)

		// How do the heuristics fare here?
		for _, alg := range []optimizer.Algorithm{optimizer.DP, optimizer.QuickPick1000, optimizer.GOO} {
			o := &optimizer.Optimizer{DB: db, Model: costmodel.NewSimple(), Indexes: idx,
				DisableNLJ: true, Algorithm: alg, Seed: 1}
			p, err := o.Optimize(g, truth)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-26s true cost %8.2fx of FK optimum\n", alg, p.ECost/fkOptimal)
		}
		fmt.Println()
	}
}

func space(g *query.Graph, db *storage.Database, idx *index.Set, truth cardest.Provider) *enum.Space {
	return &enum.Space{
		G:          g,
		DB:         db,
		Cards:      truth,
		Model:      costmodel.NewSimple(),
		Indexes:    idx,
		DisableNLJ: true,
		Shape:      plan.Bushy,
	}
}

// histogram prints a log-scale ASCII density plot, like Fig. 9's panels.
func histogram(costs []float64) {
	lo, hi := math.Inf(1), 0.0
	for _, c := range costs {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	const buckets = 12
	counts := make([]int, buckets)
	logLo, logHi := math.Log10(lo), math.Log10(hi*1.0001)
	for _, c := range costs {
		b := int(float64(buckets) * (math.Log10(c) - logLo) / (logHi - logLo))
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for b := 0; b < buckets; b++ {
		edge := math.Pow(10, logLo+float64(b)*(logHi-logLo)/buckets)
		bar := strings.Repeat("#", counts[b]*50/maxC)
		fmt.Printf("  %10.2fx |%-50s %d\n", edge, bar, counts[b])
	}
}
