// Quickstart: open the benchmark, look at a JOB query, optimize it with
// different estimators and execute it — the end-to-end pipeline of the
// paper in ~50 lines.
package main

import (
	"fmt"
	"log"

	"jobench"
)

func main() {
	// A small instance: ~0.2 scale generates ~90k rows over 21 tables.
	sys, err := jobench.Open(jobench.Options{Scale: 0.2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	const qid = "13d" // the paper's running example (Fig. 2)

	sql, err := sys.SQL(qid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Query %s:\n%s\n\n", qid, sql)

	// How large is the result, really, and what do the estimators think?
	truth, err := sys.TrueCardinality(qid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true result cardinality: %.0f\n", truth)
	for _, est := range []string{
		jobench.EstPostgres, jobench.EstDBMSA, jobench.EstDBMSB,
		jobench.EstDBMSC, jobench.EstHyPer,
	} {
		v, err := sys.EstimateCardinality(qid, est)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s estimates %12.1f\n", est, v)
	}

	// Optimize with PostgreSQL-style estimates and execute.
	res, err := sys.Execute(qid, jobench.RunOptions{
		PlanOptions: jobench.PlanOptions{
			Estimator:          jobench.EstPostgres,
			CostModel:          jobench.ModelSimple,
			Indexes:            jobench.PKFK,
			DisableNestedLoops: true,
		},
		Rehash: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan under PostgreSQL estimates:\n%s", res.Plan)
	fmt.Printf("executed: %d rows, %d work units\n\n", res.Rows, res.Work)

	// The same query planned with true cardinalities: the paper's optimal
	// baseline.
	opt, err := sys.Execute(qid, jobench.RunOptions{
		PlanOptions: jobench.PlanOptions{
			Estimator:          jobench.EstTrue,
			DisableNestedLoops: true,
		},
		Rehash: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal plan (true cardinalities): %d rows, %d work units\n", opt.Rows, opt.Work)
	fmt.Printf("slowdown from estimation errors: %.2fx\n", float64(res.Work)/float64(opt.Work))
}
