// Robustness: the paper's §4 story on one query. A deep underestimate makes
// the optimizer pick a classic nested-loop join; executing it is
// catastrophic. Disabling non-indexed nested loops and resizing hash tables
// at runtime recovers near-optimal performance without fixing a single
// estimate.
package main

import (
	"fmt"
	"log"

	"jobench"
)

func main() {
	sys, err := jobench.Open(jobench.Options{Scale: 0.2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	const qid = "17e" // character-name-in-title: large intermediates
	truth, err := sys.TrueCardinality(qid)
	if err != nil {
		log.Fatal(err)
	}
	est, err := sys.EstimateCardinality(qid, jobench.EstPostgres)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s: true cardinality %.0f, PostgreSQL estimate %.1f (%.0fx off)\n\n",
		qid, truth, est, truth/est)

	// Baseline: the plan the optimizer finds when given true cardinalities.
	optimal, err := sys.Execute(qid, jobench.RunOptions{
		PlanOptions: jobench.PlanOptions{
			Estimator:          jobench.EstTrue,
			CostModel:          jobench.ModelPostgres,
			Indexes:            jobench.PKOnly,
			DisableNestedLoops: true,
		},
		Rehash: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal plan (true cardinalities):        %12d work units\n", optimal.Work)

	run := func(label string, noNLJ, rehash bool) {
		res, err := sys.Execute(qid, jobench.RunOptions{
			PlanOptions: jobench.PlanOptions{
				Estimator:          jobench.EstPostgres,
				CostModel:          jobench.ModelPostgres,
				Indexes:            jobench.PKOnly,
				DisableNestedLoops: noNLJ,
			},
			Rehash: rehash,
			// Time out runaway plans at 500x the optimal work (§4.1).
			WorkLimit: 500 * optimal.Work,
		})
		if err != nil && !res.TimedOut {
			log.Fatal(err)
		}
		if res.TimedOut {
			fmt.Printf("%-42s TIMED OUT (>%d work units)\n", label, res.Work)
			return
		}
		fmt.Printf("%-42s %12d work units (%.2fx optimal)\n",
			label, res.Work, float64(res.Work)/float64(optimal.Work))
	}

	// The three engine configurations of Fig. 6.
	run("(a) default engine:", false, false)
	run("(b) nested-loop joins disabled:", true, false)
	run("(c) + hash tables resized at runtime:", true, true)

	fmt.Println("\nLesson (§4.1): robust execution-engine choices absorb most of the")
	fmt.Println("damage of wrong estimates; no estimator improvements were needed.")
}
