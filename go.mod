module jobench

go 1.24
