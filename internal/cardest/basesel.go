package cardest

import (
	"math"

	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/storage"
)

// histogramBase is PostgreSQL's base-table selectivity logic: MCV lists,
// equi-depth histograms, distinct counts, and magic constants where
// statistics cannot help (LIKE). Conjunctions multiply (independence).
type histogramBase struct {
	likeSel float64
}

func (h histogramBase) relSelectivity(rel query.Rel, t *storage.Table, ts *stats.TableStats) float64 {
	sel := 1.0
	for _, p := range rel.Preds {
		sel *= h.predSelectivity(p, t, ts)
	}
	return sel
}

func (h histogramBase) predSelectivity(p *query.Pred, t *storage.Table, ts *stats.TableStats) float64 {
	cs := ts.Cols[p.Col]
	if p.Kind == query.PredOr {
		// s1 OR s2: s1 + s2 - s1*s2, folded left.
		sel := 0.0
		for _, d := range p.Disj {
			s := h.predSelectivity(d, t, ts)
			sel = sel + s - sel*s
		}
		return clampSel(sel)
	}
	if cs == nil {
		return 0.1 // unknown column: a magic constant
	}
	col := t.Column(p.Col)
	switch p.Kind {
	case query.PredEqInt:
		return h.eqSel(cs, p.Val, true)
	case query.PredEqStr:
		code, ok := col.Code(p.Str)
		if !ok {
			// Value absent from the dictionary: histogram systems still
			// assume it might exist and charge a uniform share.
			return 1 / math.Max(1, cs.NDistinct)
		}
		return h.eqSel(cs, code, true)
	case query.PredNeInt:
		return clampSel(1 - cs.NullFrac - h.eqSel(cs, p.Val, true))
	case query.PredNeStr:
		code, ok := col.Code(p.Str)
		if !ok {
			return clampSel(1 - cs.NullFrac)
		}
		return clampSel(1 - cs.NullFrac - h.eqSel(cs, code, true))
	case query.PredLtInt:
		return h.rangeLE(cs, p.Val-1)
	case query.PredLeInt:
		return h.rangeLE(cs, p.Val)
	case query.PredGtInt:
		return clampSel(1 - cs.NullFrac - h.rangeLE(cs, p.Val))
	case query.PredGeInt:
		return clampSel(1 - cs.NullFrac - h.rangeLE(cs, p.Val-1))
	case query.PredBetween:
		return clampSel(h.rangeLE(cs, p.Val2) - h.rangeLE(cs, p.Val-1))
	case query.PredInInt:
		sel := 0.0
		for _, v := range p.Vals {
			sel += h.eqSel(cs, v, true)
		}
		return clampSel(sel)
	case query.PredInStr:
		sel := 0.0
		for _, s := range p.Strs {
			if code, ok := col.Code(s); ok {
				sel += h.eqSel(cs, code, true)
			} else {
				sel += 1 / math.Max(1, cs.NDistinct)
			}
		}
		return clampSel(sel)
	case query.PredLike:
		return h.likeSel
	case query.PredNotLike:
		return clampSel(1 - h.likeSel)
	case query.PredIsNull:
		return clampSel(cs.NullFrac)
	case query.PredNotNull:
		return clampSel(1 - cs.NullFrac)
	default:
		return 0.1
	}
}

// eqSel estimates col = v: MCV frequency if v is an MCV, otherwise a uniform
// share of the non-MCV remainder.
func (h histogramBase) eqSel(cs *stats.ColumnStats, v int64, useMCV bool) float64 {
	if useMCV {
		if f, ok := cs.MCVFracOf(v); ok {
			return f
		}
	}
	rest := 1 - cs.MCVFrac - cs.NullFrac
	if rest <= 0 {
		return 0
	}
	d := cs.NDistinct - float64(len(cs.MCVs))
	if d < 1 {
		d = 1
	}
	return clampSel(rest / d)
}

// rangeLE estimates col <= v combining the MCV list with the histogram over
// the remainder.
func (h histogramBase) rangeLE(cs *stats.ColumnStats, v int64) float64 {
	sel := 0.0
	for _, m := range cs.MCVs {
		if m.Val <= v {
			sel += m.Frac
		}
	}
	rest := 1 - cs.MCVFrac - cs.NullFrac
	if rest > 0 {
		sel += rest * cs.HistFracLE(v)
	}
	return clampSel(sel)
}

// sampleBase evaluates the predicate conjunction on the table sample, the
// HyPer approach (§3.1): excellent for any predicate form as long as the
// selectivity is not below ~1/sample size, where it falls back to a magic
// constant.
type sampleBase struct {
	size int
}

func (s sampleBase) relSelectivity(rel query.Rel, t *storage.Table, ts *stats.TableStats) float64 {
	if len(rel.Preds) == 0 {
		return 1
	}
	f, err := query.CompileAll(rel.Preds, t)
	if err != nil {
		return 0.1
	}
	sample := ts.SampleRows
	if s.size > 0 && len(sample) > s.size {
		sample = sample[:s.size]
	}
	if len(sample) == 0 {
		return 1
	}
	hits := 0
	for _, row := range sample {
		if f(int(row)) {
			hits++
		}
	}
	if hits == 0 {
		// Zero hits on the sample: fall back to "half a row".
		return 0.5 / float64(len(sample))
	}
	return float64(hits) / float64(len(sample))
}

// uniformBase is the DBMS B profile: no MCVs, pure uniformity. Equality
// predicates get 1/ndistinct regardless of skew, which misestimates hot
// values by orders of magnitude on Zipfian data.
type uniformBase struct{}

func (uniformBase) relSelectivity(rel query.Rel, t *storage.Table, ts *stats.TableStats) float64 {
	sel := 1.0
	for _, p := range rel.Preds {
		sel *= uniformPredSel(p, t, ts)
	}
	return sel
}

func uniformPredSel(p *query.Pred, t *storage.Table, ts *stats.TableStats) float64 {
	cs := ts.Cols[p.Col]
	if p.Kind == query.PredOr {
		sel := 0.0
		for _, d := range p.Disj {
			s := uniformPredSel(d, t, ts)
			sel = sel + s - sel*s
		}
		return clampSel(sel)
	}
	if cs == nil {
		return 0.1
	}
	uniform := 1 / math.Max(1, cs.NDistinct)
	switch p.Kind {
	case query.PredEqInt, query.PredEqStr:
		return uniform
	case query.PredNeInt, query.PredNeStr:
		return clampSel(1 - uniform)
	case query.PredInInt:
		return clampSel(float64(len(p.Vals)) * uniform)
	case query.PredInStr:
		return clampSel(float64(len(p.Strs)) * uniform)
	case query.PredLtInt, query.PredLeInt:
		return uniformRange(cs, cs.Lo, p.Val)
	case query.PredGtInt, query.PredGeInt:
		return uniformRange(cs, p.Val, cs.Hi)
	case query.PredBetween:
		return uniformRange(cs, p.Val, p.Val2)
	case query.PredLike:
		return 0.002
	case query.PredNotLike:
		return 0.998
	case query.PredIsNull:
		return clampSel(cs.NullFrac)
	case query.PredNotNull:
		return clampSel(1 - cs.NullFrac)
	default:
		return 0.1
	}
}

func uniformRange(cs *stats.ColumnStats, lo, hi int64) float64 {
	if cs.Hi <= cs.Lo {
		return 0.5
	}
	if hi > cs.Hi {
		hi = cs.Hi
	}
	if lo < cs.Lo {
		lo = cs.Lo
	}
	if hi < lo {
		return 0
	}
	return clampSel(float64(hi-lo+1) / float64(cs.Hi-cs.Lo+1))
}

// magicBase is the DBMS C profile: decent numeric estimation (histograms)
// but fixed magic constants for every string predicate, producing the large
// overestimates of Table 1.
type magicBase struct{}

func (m magicBase) relSelectivity(rel query.Rel, t *storage.Table, ts *stats.TableStats) float64 {
	sel := 1.0
	for _, p := range rel.Preds {
		sel *= m.predSel(p, t, ts)
	}
	return sel
}

func (m magicBase) predSel(p *query.Pred, t *storage.Table, ts *stats.TableStats) float64 {
	h := histogramBase{likeSel: 0.15}
	switch p.Kind {
	case query.PredEqStr, query.PredNeStr:
		return 0.01
	case query.PredInStr:
		return clampSel(0.01 * float64(len(p.Strs)))
	case query.PredLike:
		return 0.15
	case query.PredNotLike:
		return 0.85
	case query.PredOr:
		sel := 0.0
		for _, d := range p.Disj {
			s := m.predSel(d, t, ts)
			sel = sel + s - sel*s
		}
		return clampSel(sel)
	default:
		// Numeric predicates use the histogram machinery.
		return h.predSelectivity(p, t, ts)
	}
}
