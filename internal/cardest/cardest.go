// Package cardest implements the paper's cast of cardinality estimators and
// the injection mechanism that feeds them into the optimizer.
//
// Estimates decompose, as in all System-R descendants, into per-relation
// selectivities and per-join-predicate selectivities combined under the
// independence assumption. The five profiles differ in how they estimate
// base-table selectivities and whether they damp the independence
// assumption:
//
//   - PostgreSQL: MCVs + equi-depth histograms + sampled distinct counts,
//     magic constants for LIKE, plain independence, estimates clamped to
//     >= 1 row (the rounding artifact of the paper's footnote 6).
//   - HyPer: evaluates base predicates on a 1000-row table sample, falling
//     back to a magic constant when the sample yields zero hits (§3.1).
//   - DBMS A: sample-based base estimates plus exponential backoff over the
//     join selectivities — the "damping factor" the paper speculates about
//     in §3.2, which keeps medians near the truth.
//   - DBMS B: pure uniformity (1/ndistinct, no MCVs) and an aggressive
//     extra shrink per join: severe underestimation, "1 row" for deep joins.
//   - DBMS C: histograms for numeric predicates but magic constants for all
//     string predicates: large base-table overestimates (Table 1, row C).
//
// The true-cardinality provider and the Injector make any of these
// interchangeable inputs to the optimizer, replicating the paper's §2.4
// cardinality-injection methodology.
package cardest

import (
	"fmt"
	"math"
	"sort"

	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/storage"
	"jobench/internal/truecard"
)

// Provider supplies cardinalities for the subexpressions of one query.
type Provider interface {
	// Card returns the estimated result size of joining the relations in
	// s (with all selections applied). s must be a connected subgraph.
	Card(s query.BitSet) float64
	// SansSelection returns the estimate for s with relation r's selection
	// discarded (the index-nested-loop intermediate of §2.4).
	SansSelection(s query.BitSet, r int) float64
	// Name identifies the estimator for reports.
	Name() string
}

// Estimator builds a Provider for a query. Implementations are stateless
// with respect to queries; all per-database state (statistics, samples) is
// captured at construction.
type Estimator interface {
	ForQuery(g *query.Graph) Provider
	Name() string
}

// dampExp is the per-predicate softening exponent of the DBMS A profile's
// damping: each join selectivity beyond the most selective one enters the
// product as sel^dampExp instead of sel. Values near 1 damp gently; the
// paper's DBMS A stays within a few factors of the truth even at 6 joins,
// which this setting reproduces.
const dampExp = 0.82

// formula is the shared product-form provider.
type formula struct {
	name     string
	g        *query.Graph
	baseRows []float64 // |R_i|
	sel      []float64 // estimated selection selectivity per relation
	edgeSel  []float64 // estimated selectivity per join edge

	// damping softens the edge selectivities beyond the most selective
	// one (sel^dampExponent each), the DBMS A signature behaviour;
	// dampExponent defaults to dampExp.
	damping      bool
	dampExponent float64
	// shrink, if in (0,1), multiplies the estimate by shrink^(edges-2) for
	// subexpressions with more than 2 join edges (the DBMS B signature).
	shrink float64
}

func (f *formula) Name() string { return f.name }

func (f *formula) Card(s query.BitSet) float64 {
	return f.card(s, -1)
}

func (f *formula) SansSelection(s query.BitSet, r int) float64 {
	return f.card(s, r)
}

func (f *formula) card(s query.BitSet, skipSel int) float64 {
	rows := 1.0
	s.ForEach(func(i int) {
		rows *= f.baseRows[i]
		if i != skipSel {
			rows *= f.sel[i]
		}
	})
	edges := f.g.EdgesWithin(s)
	if f.damping && len(edges) > 1 {
		// Damping: the most selective join predicate applies fully, every
		// further one is softened slightly (selectivity^dampExp). The more
		// predicates pile up, the less the estimator trusts their joint
		// independence — which is exactly the behaviour the paper deduces
		// for DBMS A from its truth-hugging medians (§3.2).
		sels := make([]float64, len(edges))
		for i, e := range edges {
			sels[i] = f.edgeSel[e]
		}
		sort.Float64s(sels)
		exp := f.dampExponent
		if exp == 0 {
			exp = dampExp
		}
		rows *= sels[0]
		for _, sv := range sels[1:] {
			rows *= math.Pow(sv, exp)
		}
	} else {
		for _, e := range edges {
			rows *= f.edgeSel[e]
		}
	}
	if f.shrink > 0 && f.shrink < 1 && len(edges) > 2 {
		rows *= math.Pow(f.shrink, float64(len(edges)-2))
	}
	if rows < 1 {
		// All systems round up to one row; §3.2's footnote 6 traces some of
		// PostgreSQL's instability to exactly this clamp.
		rows = 1
	}
	return rows
}

// baseSelEstimator estimates the selectivity of one relation's predicate
// conjunction.
type baseSelEstimator interface {
	relSelectivity(rel query.Rel, t *storage.Table, ts *stats.TableStats) float64
}

// buildFormula assembles the shared product form for one query.
func buildFormula(name string, db *storage.Database, sdb *stats.DB, g *query.Graph,
	base baseSelEstimator, damping bool, shrink float64) *formula {

	f := &formula{
		name:     name,
		g:        g,
		baseRows: make([]float64, g.N),
		sel:      make([]float64, g.N),
		damping:  damping,
		shrink:   shrink,
	}
	for i, rel := range g.Q.Rels {
		t := db.MustTable(rel.Table)
		ts := sdb.Table(rel.Table)
		f.baseRows[i] = math.Max(1, float64(ts.RowCount))
		f.sel[i] = clampSel(base.relSelectivity(rel, t, ts))
	}
	f.edgeSel = make([]float64, len(g.Edges))
	for ei, e := range g.Edges {
		// Join selectivity 1 / max(dom(x), dom(y)) per predicate; multiple
		// predicates on one edge multiply (independence again).
		sel := 1.0
		for _, j := range e.Preds {
			lRel := g.Q.Rels[g.Q.RelIndex(j.LeftAlias)]
			rRel := g.Q.Rels[g.Q.RelIndex(j.RightAlias)]
			nd1 := sdb.Table(lRel.Table).Cols[j.LeftCol].NDistinct
			nd2 := sdb.Table(rRel.Table).Cols[j.RightCol].NDistinct
			sel *= 1 / math.Max(1, math.Max(nd1, nd2))
		}
		f.edgeSel[ei] = sel
	}
	return f
}

func clampSel(s float64) float64 {
	if math.IsNaN(s) || s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// --- the five estimator profiles -------------------------------------------

// Postgres is the PostgreSQL-style estimator.
type Postgres struct {
	db  *storage.Database
	sdb *stats.DB
}

// NewPostgres builds the PostgreSQL profile from ANALYZE statistics. Passing
// statistics computed with Options.TrueDistinct yields the paper's Fig. 5
// "true distinct counts" variant.
func NewPostgres(db *storage.Database, sdb *stats.DB) *Postgres {
	return &Postgres{db: db, sdb: sdb}
}

// Name implements Estimator.
func (p *Postgres) Name() string { return "PostgreSQL" }

// ForQuery implements Estimator.
func (p *Postgres) ForQuery(g *query.Graph) Provider {
	return buildFormula(p.Name(), p.db, p.sdb, g, histogramBase{likeSel: 0.005}, false, 0)
}

// Sample is the HyPer-style table-sample estimator.
type Sample struct {
	db   *storage.Database
	sdb  *stats.DB
	size int
	name string
}

// NewSample builds the HyPer profile: base-table predicates are evaluated on
// the (1000-row) table sample kept in the statistics.
func NewSample(db *storage.Database, sdb *stats.DB) *Sample {
	return &Sample{db: db, sdb: sdb, size: 1000, name: "HyPer"}
}

// Name implements Estimator.
func (s *Sample) Name() string { return s.name }

// ForQuery implements Estimator.
func (s *Sample) ForQuery(g *query.Graph) Provider {
	return buildFormula(s.Name(), s.db, s.sdb, g, sampleBase{size: s.size}, false, 0)
}

// DBMSA is the "best commercial estimator" profile: sampling plus damping.
type DBMSA struct {
	db  *storage.Database
	sdb *stats.DB
}

// NewDBMSA builds the DBMS A profile.
func NewDBMSA(db *storage.Database, sdb *stats.DB) *DBMSA {
	return &DBMSA{db: db, sdb: sdb}
}

// Name implements Estimator.
func (a *DBMSA) Name() string { return "DBMS A" }

// ForQuery implements Estimator.
func (a *DBMSA) ForQuery(g *query.Graph) Provider {
	return buildFormula(a.Name(), a.db, a.sdb, g, sampleBase{size: 2000}, true, 0)
}

// DBMSB is the severe-underestimation profile.
type DBMSB struct {
	db  *storage.Database
	sdb *stats.DB
}

// NewDBMSB builds the DBMS B profile.
func NewDBMSB(db *storage.Database, sdb *stats.DB) *DBMSB {
	return &DBMSB{db: db, sdb: sdb}
}

// Name implements Estimator.
func (b *DBMSB) Name() string { return "DBMS B" }

// ForQuery implements Estimator.
func (b *DBMSB) ForQuery(g *query.Graph) Provider {
	return buildFormula(b.Name(), b.db, b.sdb, g, uniformBase{}, false, 0.2)
}

// DBMSC is the magic-constant profile: overestimates string predicates.
type DBMSC struct {
	db  *storage.Database
	sdb *stats.DB
}

// NewDBMSC builds the DBMS C profile.
func NewDBMSC(db *storage.Database, sdb *stats.DB) *DBMSC {
	return &DBMSC{db: db, sdb: sdb}
}

// Name implements Estimator.
func (c *DBMSC) Name() string { return "DBMS C" }

// ForQuery implements Estimator.
func (c *DBMSC) ForQuery(g *query.Graph) Provider {
	return buildFormula(c.Name(), c.db, c.sdb, g, magicBase{}, false, 0)
}

// --- true cardinalities and injection ---------------------------------------

// True adapts a truecard.Store into a Provider.
type True struct {
	Store *truecard.Store
}

// Name implements Provider.
func (True) Name() string { return "true cardinalities" }

// Card implements Provider.
func (t True) Card(s query.BitSet) float64 {
	v, ok := t.Store.Card(s)
	if !ok {
		panic(fmt.Sprintf("cardest: true cardinality for %v not computed", s))
	}
	return v
}

// SansSelection implements Provider.
func (t True) SansSelection(s query.BitSet, r int) float64 {
	v, ok := t.Store.SansSelection(s, r)
	if !ok {
		panic(fmt.Sprintf("cardest: sans-selection cardinality for %v/%d not computed", s, r))
	}
	return v
}

// NewDamped builds a DBMS A-style estimator with an explicit damping
// exponent (1.0 disables damping entirely and reduces to plain
// independence). It exists for the damping ablation study.
func NewDamped(db *storage.Database, sdb *stats.DB, exponent float64) Estimator {
	return &damped{db: db, sdb: sdb, exp: exponent}
}

type damped struct {
	db  *storage.Database
	sdb *stats.DB
	exp float64
}

func (d *damped) Name() string { return fmt.Sprintf("damped(%.2f)", d.exp) }

// ForQuery implements Estimator.
func (d *damped) ForQuery(g *query.Graph) Provider {
	f := buildFormula(d.Name(), d.db, d.sdb, g, sampleBase{size: 2000}, true, 0)
	f.dampExponent = d.exp
	return f
}

// Pessimistic hedges against systematic underestimation (the "risk/reward
// tradeoff" future work of §8): it inflates a base provider's estimate by
// Factor per join in the subexpression, so deep intermediates — exactly
// where independence collapses — look bigger to the optimizer, which then
// avoids plans whose advantage hinges on tiny deep intermediates.
type Pessimistic struct {
	Base   Provider
	G      *query.Graph
	Factor float64 // per-join inflation, e.g. 2.0
}

// Name implements Provider.
func (p *Pessimistic) Name() string {
	return fmt.Sprintf("pessimistic(%s, %.1fx/join)", p.Base.Name(), p.Factor)
}

// Card implements Provider.
func (p *Pessimistic) Card(s query.BitSet) float64 {
	return p.Base.Card(s) * p.inflation(s)
}

// SansSelection implements Provider.
func (p *Pessimistic) SansSelection(s query.BitSet, r int) float64 {
	return p.Base.SansSelection(s, r) * p.inflation(s)
}

func (p *Pessimistic) inflation(s query.BitSet) float64 {
	n := len(p.G.EdgesWithin(s))
	if n == 0 {
		return 1
	}
	f := p.Factor
	if f <= 0 {
		f = 2
	}
	return math.Pow(f, float64(n))
}

// Injector overrides individual subexpression cardinalities on top of a
// fallback provider. It generalises DB2's selectivity injection to arbitrary
// expressions, which is the capability the paper added to PostgreSQL.
type Injector struct {
	Fallback  Provider
	Overrides map[query.BitSet]float64
	Label     string
}

// Name implements Provider.
func (in *Injector) Name() string {
	if in.Label != "" {
		return in.Label
	}
	return "injected(" + in.Fallback.Name() + ")"
}

// Card implements Provider.
func (in *Injector) Card(s query.BitSet) float64 {
	if v, ok := in.Overrides[s]; ok {
		return math.Max(1, v)
	}
	return in.Fallback.Card(s)
}

// SansSelection implements Provider.
func (in *Injector) SansSelection(s query.BitSet, r int) float64 {
	return in.Fallback.SansSelection(s, r)
}
