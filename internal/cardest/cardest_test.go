package cardest

import (
	"math"
	"testing"
	"testing/quick"

	"jobench/internal/imdb"
	"jobench/internal/job"
	"jobench/internal/metrics"
	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/storage"
	"jobench/internal/truecard"
)

type lab struct {
	db  *storage.Database
	sdb *stats.DB
}

func newLab(t *testing.T) *lab {
	t.Helper()
	db := imdb.Generate(imdb.Config{Scale: 0.1, Seed: 42})
	sdb := stats.AnalyzeDatabase(db, stats.Options{SampleSize: 5000, MCVTarget: 50, HistBuckets: 50, Seed: 1})
	return &lab{db: db, sdb: sdb}
}

func (l *lab) estimators() []Estimator {
	return []Estimator{
		NewPostgres(l.db, l.sdb),
		NewDBMSA(l.db, l.sdb),
		NewDBMSB(l.db, l.sdb),
		NewDBMSC(l.db, l.sdb),
		NewSample(l.db, l.sdb),
	}
}

func trueSelCount(t *testing.T, db *storage.Database, rel query.Rel) int {
	t.Helper()
	tbl := db.MustTable(rel.Table)
	f, err := query.CompileAll(rel.Preds, tbl)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < tbl.NumRows(); i++ {
		if f(i) {
			n++
		}
	}
	return n
}

func TestBaseEstimatesReasonable(t *testing.T) {
	l := newLab(t)
	// Median base-table q-error should be small for every estimator
	// (Table 1: medians 1.00-1.06), even though tails can be large.
	for _, est := range l.estimators() {
		var qerrs []float64
		for _, q := range job.Workload()[:40] {
			g := query.MustBuildGraph(q)
			prov := est.ForQuery(g)
			for i, rel := range q.Rels {
				if len(rel.Preds) == 0 {
					continue
				}
				truth := float64(trueSelCount(t, l.db, rel))
				got := prov.Card(query.Bit(i))
				qerrs = append(qerrs, metrics.QError(got, truth))
			}
		}
		med := metrics.Median(qerrs)
		if med > 4 {
			t.Errorf("%s: median base q-error %.2f, want small", est.Name(), med)
		}
	}
}

func TestSampleBeatsHistogramOnCorrelatedPredicates(t *testing.T) {
	l := newLab(t)
	// Two correlated predicates on company_name: histogram independence
	// multiplies them, the sample sees the joint distribution.
	rel := query.Rel{Alias: "cn", Table: "company_name", Preds: []*query.Pred{
		query.EqStr("country_code", "[de]"),
		query.Like("name", "Constantin%"),
	}}
	truth := float64(trueSelCount(t, l.db, rel))
	if truth < 1 {
		t.Skip("no Constantin companies at this scale")
	}
	q := &query.Query{ID: "x", Rels: []query.Rel{rel}}
	g := query.MustBuildGraph(q)
	pg := NewPostgres(l.db, l.sdb).ForQuery(g).Card(query.Bit(0))
	hy := NewSample(l.db, l.sdb).ForQuery(g).Card(query.Bit(0))
	if metrics.QError(hy, truth) > metrics.QError(pg, truth)*2 {
		t.Errorf("sample q-error %.1f much worse than histogram %.1f",
			metrics.QError(hy, truth), metrics.QError(pg, truth))
	}
}

func TestDBMSCOverestimatesStringPredicates(t *testing.T) {
	l := newLab(t)
	// A very selective string equality on a large table: DBMS C charges
	// its 1% magic constant and overestimates massively (Table 1, row C).
	rel := query.Rel{Alias: "mi", Table: "movie_info", Preds: []*query.Pred{
		query.EqStr("info", "$1,000,000"),
	}}
	q := &query.Query{ID: "x", Rels: []query.Rel{rel}}
	g := query.MustBuildGraph(q)
	truth := float64(trueSelCount(t, l.db, rel))
	c := NewDBMSC(l.db, l.sdb).ForQuery(g).Card(query.Bit(0))
	if c < 5*math.Max(truth, 1) {
		t.Errorf("DBMS C estimate %.1f not an overestimate of %.0f", c, truth)
	}
}

func TestJoinUnderestimationGrowsWithJoins(t *testing.T) {
	// The paper's core finding (Fig. 3): under independence, the median
	// signed error drifts downwards as joins are added.
	l := newLab(t)
	pg := NewPostgres(l.db, l.sdb)
	medians := make(map[int][]float64)
	for _, qid := range []string{"13a", "13d", "22a", "25c", "12c", "28a"} {
		q := job.ByID(qid)
		g := query.MustBuildGraph(q)
		st, err := truecard.Compute(l.db, g, truecard.Options{MaxSize: 5})
		if err != nil {
			t.Fatal(err)
		}
		prov := pg.ForQuery(g)
		g.ConnectedSubsets(func(s query.BitSet) {
			if s.Count() > 5 {
				return
			}
			truth, ok := st.Card(s)
			if !ok || truth == 0 {
				return
			}
			nj := len(g.EdgesWithin(s))
			medians[nj] = append(medians[nj], metrics.SignedError(prov.Card(s), truth))
		})
	}
	m0 := metrics.Median(medians[0])
	deep := append(append([]float64{}, medians[3]...), medians[4]...)
	m3 := metrics.Median(deep)
	if len(deep) == 0 {
		t.Fatal("no deep subexpressions measured")
	}
	if m3 >= m0 {
		t.Errorf("median signed error at 3-4 joins (%.3g) not below base (%.3g): no underestimation drift", m3, m0)
	}
}

func TestDampingLiftsDeepEstimates(t *testing.T) {
	l := newLab(t)
	q := job.ByID("25c")
	g := query.MustBuildGraph(q)
	pg := NewPostgres(l.db, l.sdb).ForQuery(g)
	a := NewDBMSA(l.db, l.sdb).ForQuery(g)
	b := NewDBMSB(l.db, l.sdb).ForQuery(g)
	// DBMS A's damping must lift deep-join estimates relative to plain
	// independence; DBMS B's shrink must lower them. Compare medians over
	// mid-size subexpressions (at the full query both often clamp to the
	// one-row floor, hiding the difference).
	var aVals, pgVals, bVals []float64
	g.ConnectedSubsets(func(s query.BitSet) {
		if nj := len(g.EdgesWithin(s)); nj < 3 || nj > 6 {
			return
		}
		aVals = append(aVals, a.Card(s))
		pgVals = append(pgVals, pg.Card(s))
		bVals = append(bVals, b.Card(s))
	})
	if len(aVals) == 0 {
		t.Fatal("no mid-size subexpressions")
	}
	aM, pgM, bM := metrics.Median(aVals), metrics.Median(pgVals), metrics.Median(bVals)
	if aM <= pgM {
		t.Errorf("DBMS A deep median (%.3g) not above PostgreSQL (%.3g): damping invisible", aM, pgM)
	}
	if bM > pgM {
		t.Errorf("DBMS B deep median (%.3g) above PostgreSQL (%.3g): shrink not applied", bM, pgM)
	}
}

func TestClampToOneRow(t *testing.T) {
	l := newLab(t)
	for _, est := range l.estimators() {
		for _, qid := range []string{"29a", "28a", "13d"} {
			g := query.MustBuildGraph(job.ByID(qid))
			prov := est.ForQuery(g)
			g.ConnectedSubsets(func(s query.BitSet) {
				if v := prov.Card(s); v < 1 {
					t.Fatalf("%s: Card(%v) = %g < 1", est.Name(), s, v)
				}
			})
		}
	}
}

// Property: SansSelection >= Card for any subexpression (dropping a filter
// can only increase the estimate) and both are finite and positive.
func TestSansSelectionProperty(t *testing.T) {
	l := newLab(t)
	ests := l.estimators()
	qs := job.Workload()
	f := func(qi, ei uint8) bool {
		q := qs[int(qi)%len(qs)]
		est := ests[int(ei)%len(ests)]
		g := query.MustBuildGraph(q)
		prov := est.ForQuery(g)
		ok := true
		g.ConnectedSubsets(func(s query.BitSet) {
			if s.Count() > 4 {
				return
			}
			card := prov.Card(s)
			s.ForEach(func(r int) {
				sans := prov.SansSelection(s, r)
				if sans < card-1e-9 || math.IsNaN(sans) || math.IsInf(sans, 0) {
					ok = false
				}
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTrueProviderAndInjector(t *testing.T) {
	l := newLab(t)
	q := job.ByID("3b")
	g := query.MustBuildGraph(q)
	st, err := truecard.Compute(l.db, g, truecard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp := True{Store: st}
	full := query.FullSet(g.N)
	want, _ := st.Card(full)
	if tp.Card(full) != want {
		t.Fatal("True provider disagrees with store")
	}
	if tp.Name() == "" {
		t.Fatal("empty name")
	}

	pg := NewPostgres(l.db, l.sdb).ForQuery(g)
	inj := &Injector{Fallback: pg, Overrides: map[query.BitSet]float64{full: 12345}}
	if inj.Card(full) != 12345 {
		t.Fatal("override ignored")
	}
	sub := query.Bit(0)
	if inj.Card(sub) != pg.Card(sub) {
		t.Fatal("fallback ignored")
	}
	if inj.SansSelection(full, 0) != pg.SansSelection(full, 0) {
		t.Fatal("sans fallback ignored")
	}
	if inj.Name() == "" {
		t.Fatal("empty injector name")
	}

	// Missing true cardinalities must panic loudly, not silently misestimate.
	limited, err := truecard.Compute(l.db, g, truecard.Options{MaxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for missing true cardinality")
		}
	}()
	True{Store: limited}.Card(full)
}

func TestTrueDistinctVariantChangesEstimates(t *testing.T) {
	// Fig. 5: swapping estimated for true distinct counts changes join
	// estimates (and, in the paper, makes underestimation worse).
	db := imdb.Generate(imdb.Config{Scale: 0.1, Seed: 42})
	est := stats.AnalyzeDatabase(db, stats.Options{SampleSize: 2000, Seed: 1})
	exact := stats.AnalyzeDatabase(db, stats.Options{SampleSize: 2000, Seed: 1, TrueDistinct: true})
	q := job.ByID("13d")
	g := query.MustBuildGraph(q)
	a := NewPostgres(db, est).ForQuery(g)
	b := NewPostgres(db, exact).ForQuery(g)
	diff := false
	g.ConnectedSubsets(func(s query.BitSet) {
		if a.Card(s) != b.Card(s) {
			diff = true
		}
	})
	if !diff {
		t.Fatal("true distinct counts changed nothing")
	}
}

func TestEstimatorNames(t *testing.T) {
	l := newLab(t)
	want := map[string]bool{"PostgreSQL": true, "DBMS A": true, "DBMS B": true, "DBMS C": true, "HyPer": true}
	for _, est := range l.estimators() {
		if !want[est.Name()] {
			t.Errorf("unexpected estimator name %q", est.Name())
		}
		g := query.MustBuildGraph(job.ByID("1a"))
		if est.ForQuery(g).Name() != est.Name() {
			t.Errorf("%s: provider name differs", est.Name())
		}
	}
}
