package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"jobench/internal/fault"
	"jobench/internal/loadgen"
	"jobench/internal/router"
	"jobench/internal/service"
)

const (
	chaosScale = 0.05
	chaosSeed  = 7

	// chaosSpec is the shared misbehavior every fleet replica runs under:
	// 15% injected 500s on the optimize path, 15–30ms of injected latency
	// on half the execute path. Routes the rules don't match (/healthz,
	// /v1/estimate, /v1/experiment) stay clean, so health probes and the
	// report byte-comparison see only organic behavior.
	chaosSpec = "route=/v1/optimize,error=0.15;route=/v1/execute,latency=15ms,jitter=15ms,latency_p=0.5"

	// crashRule rides on one replica only: its /healthz is probed by the
	// router every HealthInterval, so the one-shot crash trips a known
	// number of probes after the router starts — a deterministic
	// mid-run replica death without killing a process.
	crashRule = ";route=/healthz,crash_after=8"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newReplica builds one service replica wrapped in the given fault spec
// ("" = fault-free) and serves it over a real socket.
func newReplica(t *testing.T, spec string) (*httptest.Server, *fault.Injector) {
	t.Helper()
	parsed, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(parsed)
	srv := service.New(service.Config{
		DefaultSeed:  chaosSeed,
		DefaultScale: chaosScale,
		PoolSize:     2,
		Fault:        inj,
		Logger:       discardLogger(),
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs, inj
}

// warm opens the replica's default world via /v1/estimate — a route no
// chaos rule matches — so the load phase measures fault handling, not
// cold-open latency racing the attempt timeout.
func warm(t *testing.T, base string) error {
	resp, err := http.Post(base+"/v1/estimate", "application/json",
		strings.NewReader(`{"query":"1a"}`))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("warm %s: status %d: %s", base, resp.StatusCode, body)
	}
	return nil
}

// waitFor polls cond until it holds or the timeout expires.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// liveCount reports the router's /healthz live-replica count (-1 while
// unreachable or not yet serving).
func liveCount(base string) int {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var h struct {
		Live int `json:"live"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return -1
	}
	return h.Live
}

// getOK fetches url and requires a 200, returning the body.
func getOK(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// sumMetric sums the values of every Prometheus text line starting with
// name whose label set contains each given substring.
func sumMetric(text, name string, labelSubstrs ...string) float64 {
	var sum float64
line:
	for _, l := range strings.Split(text, "\n") {
		if !strings.HasPrefix(l, name+"{") {
			continue
		}
		for _, sub := range labelSubstrs {
			if !strings.Contains(l, sub) {
				continue line
			}
		}
		fields := strings.Fields(l)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err == nil {
			sum += v
		}
	}
	return sum
}

// TestChaosFleet is the chaos suite's core scenario: a 3-replica fleet
// behind the router, every replica injecting errors and latency, one
// replica crashing mid-run. The fleet must hide nearly all of it — and
// what it cannot hide must be accounted for.
func TestChaosFleet(t *testing.T) {
	r0, i0 := newReplica(t, chaosSpec)
	r1, i1 := newReplica(t, chaosSpec)
	r2, i2 := newReplica(t, chaosSpec+crashRule)
	clean, _ := newReplica(t, "") // the fault-free reference replica

	// Warm every world before the router's probes start the crash clock.
	var wg sync.WaitGroup
	for _, s := range []*httptest.Server{r0, r1, r2, clean} {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			if err := warm(t, base); err != nil {
				t.Errorf("warm %s: %v", base, err)
			}
		}(s.URL)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("warm-up failed")
	}

	// The router's own timeouts are backstops sized for the fig3 sweep (the
	// slowest thing forwarded here, ~a minute cold under -race); the load
	// phase's real deadline is the 5s X-Jobench-Deadline each loadgen
	// request carries, which the router takes the minimum of.
	rt, err := router.New(router.Config{
		Replicas:       []string{r0.URL, r1.URL, r2.URL},
		HealthInterval: 50 * time.Millisecond,
		MarkDownAfter:  2,
		RequestTimeout: 240 * time.Second,
		AttemptTimeout: 180 * time.Second,
		MaxRetries:     2,
		Logger:         discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rt.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("router serve: %v", err)
		}
	})
	base := "http://" + ln.Addr().String()

	// The crash replica dies a deterministic number of probes in; the
	// router must notice and take it out of rotation before the load run.
	waitFor(t, "one-shot replica crash", 10*time.Second, func() bool {
		return i2.Stats().Crashed
	})
	waitFor(t, "crashed replica marked down", 10*time.Second, func() bool {
		return liveCount(base) == 2
	})

	// Reports through the chaotic fleet must be byte-identical to the
	// fault-free replica's: injected faults may cost retries and latency,
	// never answers. (Skipped under -short: the report is a full
	// estimation sweep.)
	reportPath := "/v1/experiment/fig3?format=json"
	if !testing.Short() {
		want := getOK(t, clean.URL+reportPath)
		got := getOK(t, base+reportPath)
		if !bytes.Equal(got, want) {
			t.Errorf("report through chaotic fleet differs from fault-free run:\nfleet: %.200s\nclean: %.200s", got, want)
		}
	}

	dur := 4 * time.Second
	if testing.Short() {
		dur = 1500 * time.Millisecond
	}
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:      base,
		Duration:    dur,
		Concurrency: 4,
		Seed:        11,
		Mix: map[string]int{
			loadgen.ClassOptimize: 3, loadgen.ClassExecute: 2, loadgen.ClassEstimate: 2,
		},
		Queries:        []string{"1a", "13d"},
		WorldSeed:      chaosSeed,
		Scale:          chaosScale,
		RequestTimeout: 5 * time.Second,
		DeadlineGrace:  2 * time.Second,
		Logger:         discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Requests == 0 {
		t.Fatal("load run issued no requests")
	}

	// Deadline enforcement: nothing escapes RequestTimeout + grace.
	if res.Total.DeadlineOverruns != 0 {
		t.Errorf("deadline overruns = %d, want 0", res.Total.DeadlineOverruns)
	}
	// Error budget: 15% of optimize attempts fail server-side, but the
	// router's retries mean the *client-visible* rate stays at or below
	// the injected per-attempt rate (in practice near zero).
	if res.Total.ErrorRate > 0.15 {
		t.Errorf("client-visible error rate %.3f exceeds the injected budget 0.15 (failures: %v)",
			res.Total.ErrorRate, res.Total.Failures)
	}

	// Accounting. Every 500 the router observed was injected (the fleet
	// has no organic 5xx at this load), and the injectors can be ahead
	// only by requests a worker abandoned mid-flight at the window edge —
	// at most one per worker.
	injected := i0.Stats().Errors + i1.Stats().Errors + i2.Stats().Errors
	if injected == 0 {
		t.Fatal("no injected errors despite a 15% optimize error rate")
	}
	metrics := string(getOK(t, base+"/metrics"))
	observed := sumMetric(metrics, "jobench_router_replica_requests_total", `code="500"`)
	if int64(observed) > injected || injected-int64(observed) > 4 {
		t.Errorf("router observed %.0f 500s, injectors produced %d (allowed lag: one in-flight per worker)",
			observed, injected)
	}
	// Every observed 500 triggered a retry (budget never drains at this
	// error rate), so retries must show up in the router's metrics.
	if retries := sumMetric(metrics, "jobench_router_replica_retries_total"); observed > 0 && retries == 0 {
		t.Errorf("router observed %.0f 500s but recorded no retries", observed)
	}
	// The crashed replica's death is a markdown, visible in /metrics.
	if md := sumMetric(metrics, "jobench_router_replica_markdowns_total", `replica="`+r2.URL+`"`); md < 1 {
		t.Errorf("crashed replica %s has %v markdowns, want >= 1", r2.URL, md)
	}
	// The router's trace store saw the run.
	var traces struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(getOK(t, base+"/v1/traces"), &traces); err != nil {
		t.Fatalf("decoding /v1/traces: %v", err)
	}
	if traces.Count == 0 {
		t.Error("router /v1/traces is empty after the load run")
	}

	// Recovery: reviving the crashed injector models a replica restart;
	// the router's probes must bring it back into rotation unassisted.
	i2.Revive()
	waitFor(t, "revived replica back in rotation", 10*time.Second, func() bool {
		return liveCount(base) == 3
	})
}
