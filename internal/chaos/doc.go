// Package chaos is the fault-injection test suite for the distributed
// tier. It stands up a 3-replica service fleet behind the consistent-hash
// router — all in one process — with internal/fault injectors misbehaving
// on purpose (injected 500s on the optimize path, latency on the execute
// path, a one-shot crash of one replica), and asserts the resilience
// contract end to end:
//
//   - no request overruns its propagated deadline beyond the grace window,
//   - the client-visible error rate stays within the injected budget
//     (retries absorb almost all injected failures),
//   - experiment reports fetched through the chaotic fleet are
//     byte-identical to a fault-free replica's,
//   - /metrics and /v1/traces account for every injected fault, retry and
//     markdown, and
//   - the crashed replica rejoins the fleet after Revive.
//
// The package holds no production code; `make chaos` (and the -short CI
// variant `make chaos-short`) additionally runs the same shape against
// real processes via cmd/jobench.
package chaos
