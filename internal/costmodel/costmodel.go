// Package costmodel implements the three cost models the paper compares in
// §5: a PostgreSQL-style disk-oriented model (weighted page and CPU costs),
// a main-memory-tuned variant of it (CPU weights raised 50x), and the
// simple C_mm model of §5.4 that only counts tuples flowing through
// operators (τ = 0.2, λ = 2).
//
// Models are pure functions of cardinalities: the plan walker supplies the
// (estimated or true) input/output cardinalities of each operator.
package costmodel

import "math"

// Model prices the operators of a physical plan. The per-operator costs are
// local: the plan walker sums them over the tree.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// ScanCost prices a full table scan of rows tuples of the given width
	// in bytes (selections are applied on the fly).
	ScanCost(rows, width float64) float64
	// HashJoinCost prices a hash join that builds on the left child
	// (following the textbook convention the paper adopts in §6.2),
	// probes with the right child, and emits out tuples.
	HashJoinCost(build, probe, out float64) float64
	// SortMergeJoinCost prices sorting both inputs and merging them.
	SortMergeJoinCost(left, right, out float64) float64
	// NestedLoopJoinCost prices a classic (non-indexed) nested-loop join.
	NestedLoopJoinCost(outer, inner, out float64) float64
	// IndexJoinCost prices an index-nested-loop join: outer tuples from the
	// left child look up an index on the right base relation; lookups is
	// the number of fetched inner tuples *before* the inner selection
	// (|T1 ⋈ R|, the paper's §2.4 index intermediate), innerRows/innerWidth
	// describe the full inner base table.
	IndexJoinCost(outer, lookups, out, innerRows, innerWidth float64) float64
}

const pageSize = 8192

// Postgres mirrors the structure of PostgreSQL's cost model: a weighted sum
// of sequential page reads, random page reads and per-tuple CPU work, with
// the default cost variables (seq_page_cost=1, random_page_cost=4,
// cpu_tuple_cost=0.01, cpu_index_tuple_cost=0.005, cpu_operator_cost=0.0025).
type Postgres struct {
	SeqPage   float64
	RandPage  float64
	CPUTuple  float64
	CPUIndex  float64
	CPUOp     float64
	modelName string
}

// NewPostgres returns the model with PostgreSQL's default cost variables.
func NewPostgres() *Postgres {
	return &Postgres{
		SeqPage:   1.0,
		RandPage:  4.0,
		CPUTuple:  0.01,
		CPUIndex:  0.005,
		CPUOp:     0.0025,
		modelName: "postgres",
	}
}

// NewTuned returns the paper's §5.3 main-memory variant: all CPU cost
// parameters multiplied by 50, shrinking the gap between I/O and CPU
// weights (the default parameters assume processing a tuple is 400x cheaper
// than reading it from a page).
func NewTuned() *Postgres {
	m := NewPostgres()
	m.CPUTuple *= 50
	m.CPUIndex *= 50
	m.CPUOp *= 50
	m.modelName = "tuned postgres"
	return m
}

// Name implements Model.
func (m *Postgres) Name() string { return m.modelName }

func (m *Postgres) pages(rows, width float64) float64 {
	return math.Ceil(rows * width / pageSize)
}

// ScanCost implements Model.
func (m *Postgres) ScanCost(rows, width float64) float64 {
	return m.SeqPage*m.pages(rows, width) + m.CPUTuple*rows
}

// HashJoinCost implements Model.
func (m *Postgres) HashJoinCost(build, probe, out float64) float64 {
	// Building is charged CPU per tuple plus hashing; probing is one hash
	// computation per tuple; each output tuple costs CPU.
	return (m.CPUTuple+m.CPUOp)*build + m.CPUOp*probe + m.CPUTuple*out
}

// SortMergeJoinCost implements Model.
func (m *Postgres) SortMergeJoinCost(left, right, out float64) float64 {
	sort := func(n float64) float64 {
		if n < 2 {
			return m.CPUOp
		}
		return m.CPUOp * n * math.Log2(n)
	}
	return sort(left) + sort(right) + m.CPUTuple*(left+right) + m.CPUTuple*out
}

// NestedLoopJoinCost implements Model.
func (m *Postgres) NestedLoopJoinCost(outer, inner, out float64) float64 {
	return m.CPUOp*outer*inner + m.CPUTuple*out
}

// IndexJoinCost implements Model.
func (m *Postgres) IndexJoinCost(outer, lookups, out, innerRows, innerWidth float64) float64 {
	// Each outer tuple descends the index (CPU) and each fetched inner
	// tuple costs a random page access, discounted for cache hits as more
	// of the relation gets touched.
	innerPages := m.pages(innerRows, innerWidth)
	fetch := math.Min(lookups, innerPages) // repeated page hits are free-ish
	return m.CPUIndex*outer + m.RandPage*fetch + m.CPUTuple*(lookups-fetch) + m.CPUTuple*out
}

// Simple is the paper's C_mm (§5.4): it prices a plan purely by the number
// of tuples that pass through each operator. τ discounts table scans, λ
// makes index lookups more expensive than hash probes.
type Simple struct {
	Tau    float64
	Lambda float64
}

// NewSimple returns C_mm with the paper's parameters τ=0.2, λ=2.
func NewSimple() *Simple { return &Simple{Tau: 0.2, Lambda: 2} }

// Name implements Model.
func (s *Simple) Name() string { return "simple (C_mm)" }

// ScanCost implements Model: C_mm(R) = τ·|R|.
func (s *Simple) ScanCost(rows, width float64) float64 { return s.Tau * rows }

// HashJoinCost implements Model: C_mm(T1 ⋈HJ T2) = |T| + children, and the
// children are added by the walker.
func (s *Simple) HashJoinCost(build, probe, out float64) float64 { return out }

// SortMergeJoinCost implements Model. C_mm has no sort-merge case; we price
// it as sorting both inputs at τ·n·log2(n) plus the output, which keeps it
// dominated by hash joins, as in the paper's engine configuration.
func (s *Simple) SortMergeJoinCost(left, right, out float64) float64 {
	sort := func(n float64) float64 {
		if n < 2 {
			return s.Tau
		}
		return s.Tau * n * math.Log2(n)
	}
	return sort(left) + sort(right) + out
}

// NestedLoopJoinCost implements Model: every pair of tuples is touched.
func (s *Simple) NestedLoopJoinCost(outer, inner, out float64) float64 {
	return outer*inner + out
}

// IndexJoinCost implements Model:
// C_mm(T1 ⋈INL R) = λ·|T1|·max(|T1 ⋈ R|/|T1|, 1) = λ·max(lookups, |T1|).
func (s *Simple) IndexJoinCost(outer, lookups, out, innerRows, innerWidth float64) float64 {
	return s.Lambda * math.Max(lookups, outer)
}
