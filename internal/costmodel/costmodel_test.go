package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func models() []Model {
	return []Model{NewPostgres(), NewTuned(), NewSimple()}
}

func TestNames(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range models() {
		if m.Name() == "" || seen[m.Name()] {
			t.Fatalf("bad or duplicate model name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}

func TestSimpleMatchesPaperFormulas(t *testing.T) {
	s := NewSimple()
	if s.Tau != 0.2 || s.Lambda != 2 {
		t.Fatalf("parameters τ=%g λ=%g, want 0.2/2 (§5.4)", s.Tau, s.Lambda)
	}
	// C_mm(R) = τ|R|.
	if got := s.ScanCost(1000, 64); got != 200 {
		t.Fatalf("scan = %g, want 200", got)
	}
	// Hash join contributes |T| only.
	if got := s.HashJoinCost(50, 70, 123); got != 123 {
		t.Fatalf("hash join = %g, want 123", got)
	}
	// INL: λ·max(lookups, outer); the matching count dominates when the
	// fanout exceeds 1...
	if got := s.IndexJoinCost(100, 450, 450, 10000, 64); got != 900 {
		t.Fatalf("INL = %g, want 900", got)
	}
	// ...and the outer size dominates when lookups find little.
	if got := s.IndexJoinCost(100, 7, 7, 10000, 64); got != 200 {
		t.Fatalf("INL = %g, want 200", got)
	}
	// NLJ touches every pair.
	if got := s.NestedLoopJoinCost(100, 100, 5); got != 10005 {
		t.Fatalf("NLJ = %g, want 10005", got)
	}
}

func TestTunedRaisesCPUWeightsOnly(t *testing.T) {
	pg, tuned := NewPostgres(), NewTuned()
	if tuned.CPUTuple != 50*pg.CPUTuple || tuned.CPUOp != 50*pg.CPUOp || tuned.CPUIndex != 50*pg.CPUIndex {
		t.Fatal("CPU weights not multiplied by 50")
	}
	if tuned.SeqPage != pg.SeqPage || tuned.RandPage != pg.RandPage {
		t.Fatal("I/O weights must stay unchanged")
	}
	// The default parameters imply tuple processing is ~400x cheaper than
	// reading a page sequentially (8KB page / ~200B tuple at width 200:
	// page cost 1 vs cpu 0.01 per tuple) — the §5.3 motivation.
	ratio := pg.SeqPage / pg.CPUTuple
	if ratio < 50 || ratio > 1000 {
		t.Fatalf("I/O-to-CPU ratio = %g, implausible", ratio)
	}
}

func TestPostgresDisfavoursRandomAccess(t *testing.T) {
	pg := NewPostgres()
	// Fetching n tuples by index must cost more than scanning n tuples
	// sequentially once n approaches the table size.
	scan := pg.ScanCost(10000, 64)
	inl := pg.IndexJoinCost(10000, 10000, 10000, 10000, 64)
	if inl < scan {
		t.Fatalf("full-table index fetch (%g) cheaper than scan (%g)", inl, scan)
	}
}

// Property: all costs are non-negative, finite, and monotone in output size.
func TestCostProperties(t *testing.T) {
	f := func(a, b, c uint32) bool {
		l := float64(a%1_000_000) + 1
		r := float64(b%1_000_000) + 1
		out := float64(c % 10_000_000)
		for _, m := range models() {
			vals := []float64{
				m.ScanCost(l, 64),
				m.HashJoinCost(l, r, out),
				m.SortMergeJoinCost(l, r, out),
				m.NestedLoopJoinCost(l, r, out),
				m.IndexJoinCost(l, out, out, r, 64),
			}
			for _, v := range vals {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
			if m.HashJoinCost(l, r, out+1000) < m.HashJoinCost(l, r, out) {
				return false
			}
			if m.NestedLoopJoinCost(l+1000, r, out) < m.NestedLoopJoinCost(l, r, out) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedLoopRiskAsymmetry(t *testing.T) {
	// §4.1: the payoff of NLJ over HJ is tiny when it wins, but the loss is
	// catastrophic when cardinalities are bigger than estimated. Verify the
	// asymmetry in the PostgreSQL model: at estimated cardinality 1 the NLJ
	// may be marginally cheaper, at true cardinality 10000 it is orders of
	// magnitude more expensive.
	pg := NewPostgres()
	nlSmall := pg.NestedLoopJoinCost(1, 100, 1)
	hjSmall := pg.HashJoinCost(1, 100, 1)
	nlBig := pg.NestedLoopJoinCost(10000, 100000, 10000)
	hjBig := pg.HashJoinCost(10000, 100000, 10000)
	if nlSmall > hjSmall {
		t.Logf("NLJ not even cheaper at tiny cardinalities (%g vs %g) — fine", nlSmall, hjSmall)
	}
	if nlBig < 100*hjBig {
		t.Fatalf("NLJ (%g) not catastrophically worse than HJ (%g) at scale", nlBig, hjBig)
	}
}
