// Package deadline defines the wire form of end-to-end request deadlines
// for the distributed tier: the router mints an absolute deadline from its
// `-request-timeout` (or honors an earlier one supplied by the client),
// stamps it on the forwarded request as the X-Jobench-Deadline header, and
// every replica turns the header back into a context deadline that bounds
// pool lookup, admission wait, truecard DP, reopt probes, and engine
// execution. Absolute epoch time — not a relative timeout — is what makes
// the deadline end-to-end: queueing and retries upstream consume budget
// instead of resetting it.
package deadline

import (
	"net/http"
	"strconv"
	"time"
)

// Header carries the absolute request deadline as integer epoch
// milliseconds (UTC). Milliseconds keep the value human-readable in traces
// and logs while staying far finer than any meaningful service timeout.
const Header = "X-Jobench-Deadline"

// Format renders t for the Header.
func Format(t time.Time) string {
	return strconv.FormatInt(t.UnixMilli(), 10)
}

// Parse decodes a Header value; ok is false for absent or malformed input.
func Parse(s string) (t time.Time, ok bool) {
	if s == "" {
		return time.Time{}, false
	}
	ms, err := strconv.ParseInt(s, 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}, false
	}
	return time.UnixMilli(ms), true
}

// FromRequest extracts the deadline header from r; ok is false when the
// request carries none (or a malformed one — a garbled deadline must not
// turn into an unbounded request, so callers treat it like "absent" and
// apply their own default).
func FromRequest(r *http.Request) (t time.Time, ok bool) {
	return Parse(r.Header.Get(Header))
}

// Set stamps t on h, overwriting any existing value.
func Set(h http.Header, t time.Time) {
	h.Set(Header, Format(t))
}
