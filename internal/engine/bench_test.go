package engine

import (
	"fmt"
	"sync"
	"testing"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/enum"
	"jobench/internal/imdb"
	"jobench/internal/index"
	"jobench/internal/job"
	"jobench/internal/plan"
	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/storage"
)

// benchEnv is the scale-0.1 world the engine micro-benches run in: database,
// PK+FK indexes, and optimizer plans for the whole JOB workload, all built
// once outside the timed sections.
type benchEnv struct {
	db    *storage.Database
	pkfk  *index.Set
	graph map[string]*query.Graph
	plans map[string]*plan.Node
	order []string
}

var (
	benchOnce     sync.Once
	benchWorld    *benchEnv
	benchSetupErr error
)

func benchSetup(b *testing.B) *benchEnv {
	b.Helper()
	benchOnce.Do(func() {
		db := imdb.Generate(imdb.Config{Scale: 0.1, Seed: 42})
		sdb := stats.AnalyzeDatabase(db, stats.Options{SampleSize: 2000, Seed: 1})
		pkfk, err := imdb.BuildIndexes(db, imdb.PKFK)
		if err != nil {
			benchSetupErr = err
			return
		}
		pg := cardest.NewPostgres(db, sdb)
		env := &benchEnv{
			db: db, pkfk: pkfk,
			graph: make(map[string]*query.Graph),
			plans: make(map[string]*plan.Node),
		}
		for _, q := range job.Workload() {
			g := query.MustBuildGraph(q)
			sp := &enum.Space{
				G: g, DB: db, Cards: pg.ForQuery(g),
				Model: costmodel.NewTuned(), Indexes: pkfk, DisableNLJ: true,
			}
			root, err := enum.DP(sp)
			if err != nil {
				benchSetupErr = err
				return
			}
			env.graph[q.ID] = g
			env.plans[q.ID] = root
			env.order = append(env.order, q.ID)
		}
		benchWorld = env
	})
	if benchSetupErr != nil {
		b.Fatal(benchSetupErr)
	}
	return benchWorld
}

// BenchmarkEngineExecuteJOB executes the optimizer's plan for every JOB
// query (scale 0.1, PK+FK indexes, rehash on) per iteration — the engine's
// end-to-end throughput number behind every runtime experiment. The
// stats=off/stats=on pair bounds the cost of per-operator actuals
// collection (EXPLAIN ANALYZE): off is the default request path and must
// not regress; on adds block-boundary counter updates plus a wall-clock
// read per executed block.
func BenchmarkEngineExecuteJOB(b *testing.B) {
	env := benchSetup(b)
	stats := make(map[string][]plan.NodeStats, len(env.order))
	for _, id := range env.order {
		stats[id] = make([]plan.NodeStats, plan.NumNodes(env.plans[id]))
	}
	for _, on := range []bool{false, true} {
		name := "stats=off"
		if on {
			name = "stats=on"
		}
		b.Run(name, func(b *testing.B) {
			runner := NewRunner() // the sweep pattern: scratch reused across plans
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, id := range env.order {
					cfg := Config{Rehash: true}
					if on {
						cfg.Stats = stats[id]
					}
					if _, err := runner.Run(env.db, env.pkfk, env.graph[id], env.plans[id], cfg); err != nil {
						b.Fatalf("%s: %v", id, err)
					}
				}
			}
		})
	}
}

// BenchmarkEngineHashJoin isolates the hash-join path: one multi-join query
// with every operator forced to HashJoin, executed per iteration. The
// serial-baseline pattern from the truecard benches: block=1 degenerates
// the executor to row-at-a-time (every tuple settles with the work limit,
// every emit is a one-row gather), block=1024 is the production setting —
// work totals are identical at both, only wall-clock differs.
func BenchmarkEngineHashJoin(b *testing.B) {
	env := benchSetup(b)
	const qid = "13d" // 9 relations, large intermediates
	root := clonePlan(env.plans[qid])
	forceHash(root)
	for _, block := range []int{1, 1024} {
		b.Run(fmt.Sprintf("block=%d", block), func(b *testing.B) {
			defer func(old int) { blockSize = old }(blockSize)
			blockSize = block
			runner := NewRunner()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(env.db, env.pkfk, env.graph[qid], root, Config{Rehash: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func clonePlan(n *plan.Node) *plan.Node {
	if n == nil {
		return nil
	}
	c := *n
	c.Left = clonePlan(n.Left)
	c.Right = clonePlan(n.Right)
	return &c
}

func forceHash(n *plan.Node) {
	if n == nil || n.IsLeaf() {
		return
	}
	n.Algo = plan.HashJoin
	forceHash(n.Left)
	forceHash(n.Right)
}
