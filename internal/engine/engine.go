// Package engine executes physical plans over the column store and meters
// the work they perform. It implements the paper's §2.3 execution model:
// full table scans, unclustered index lookups, classic nested-loop joins,
// in-memory hash joins, index-nested-loop joins and sort-merge joins.
//
// Two engine behaviours from §4.1 are modelled mechanically, not by
// formula:
//
//   - Hash tables are sized from the *optimizer's cardinality estimate* of
//     the build side. Underestimates produce undersized tables with long
//     collision chains whose traversal is really performed (and counted).
//     Config.Rehash enables the PostgreSQL 9.5 behaviour of growing the
//     table at runtime.
//   - Classic nested-loop joins really are O(n·m).
//
// Runtime is reported in deterministic work units (one unit ~ one sequential
// tuple touch; index lookups cost a random-access factor), plus wall-clock
// time. A work limit models the paper's query timeouts.
package engine

import (
	"errors"
	"fmt"
	"time"

	"jobench/internal/index"
	"jobench/internal/plan"
	"jobench/internal/query"
	"jobench/internal/storage"
)

// Work-unit weights. One unit is one sequential tuple touch; a random index
// access costs RandomAccessFactor units (main-memory setting: small, per
// §4.2 index-nested-loop joins are never disastrous in RAM).
const (
	RandomAccessFactor = 4
	HashBuildFactor    = 2
)

// Config controls execution.
type Config struct {
	// Rehash grows hash tables at runtime (the 9.5 backport of §4.1);
	// without it the table is fixed at the estimate-derived size.
	Rehash bool
	// WorkLimit aborts execution after this many work units (0 = off).
	// It is the timeout of §4.1.
	WorkLimit int64
}

// Result reports an execution.
type Result struct {
	Rows     int64
	Work     int64
	Duration time.Duration
	TimedOut bool
}

// ErrWorkLimit is returned (wrapped) when the work limit was exceeded.
var ErrWorkLimit = errors.New("engine: work limit exceeded")

// Run executes the plan over db, using idx for index-nested-loop joins.
func Run(db *storage.Database, idx *index.Set, g *query.Graph, root *plan.Node, cfg Config) (Result, error) {
	start := time.Now()
	ex := &executor{db: db, idx: idx, g: g, cfg: cfg}
	out, err := ex.exec(root)
	res := Result{Work: ex.work, Duration: time.Since(start)}
	if err != nil {
		if errors.Is(err, ErrWorkLimit) {
			res.TimedOut = true
			return res, err
		}
		return res, err
	}
	res.Rows = int64(out.rows())
	return res, nil
}

// batch is a materialised intermediate result: row ids per relation,
// column-major, relations ascending.
type batch struct {
	rels []int
	cols [][]int32
}

func (b *batch) rows() int {
	if len(b.cols) == 0 {
		return 0
	}
	return len(b.cols[0])
}

func (b *batch) colOf(rel int) []int32 {
	for i, r := range b.rels {
		if r == rel {
			return b.cols[i]
		}
	}
	panic(fmt.Sprintf("engine: relation %d not in batch %v", rel, b.rels))
}

type executor struct {
	db   *storage.Database
	idx  *index.Set
	g    *query.Graph
	cfg  Config
	work int64
}

func (ex *executor) charge(units int64) error {
	ex.work += units
	if ex.cfg.WorkLimit > 0 && ex.work > ex.cfg.WorkLimit {
		return ErrWorkLimit
	}
	return nil
}

func (ex *executor) table(rel int) *storage.Table {
	return ex.db.MustTable(ex.g.Q.Rels[rel].Table)
}

func (ex *executor) exec(n *plan.Node) (*batch, error) {
	if n.IsLeaf() {
		return ex.scan(n)
	}
	switch n.Algo {
	case plan.HashJoin:
		return ex.hashJoin(n)
	case plan.IndexNLJoin:
		return ex.indexJoin(n)
	case plan.NestedLoopJoin:
		return ex.nestedLoop(n)
	case plan.SortMergeJoin:
		return ex.sortMerge(n)
	default:
		return nil, fmt.Errorf("engine: unknown join algorithm %v", n.Algo)
	}
}

// scan reads the base table sequentially, applying the selection.
func (ex *executor) scan(n *plan.Node) (*batch, error) {
	rel := n.Rel
	t := ex.table(rel)
	f, err := query.CompileAll(ex.g.Q.Rels[rel].Preds, t)
	if err != nil {
		return nil, err
	}
	var rows []int32
	nr := t.NumRows()
	for i := 0; i < nr; i++ {
		if f(i) {
			rows = append(rows, int32(i))
		}
	}
	// One unit per tuple scanned plus one per emitted tuple.
	if err := ex.charge(int64(nr) + int64(len(rows))); err != nil {
		return nil, err
	}
	return &batch{rels: []int{rel}, cols: [][]int32{rows}}, nil
}

// joinCondition resolves the physical key and residual predicates of a join
// node against its two children.
type joinCondition struct {
	probeRel  int // relation carrying the key on the probe side
	probeCol  *storage.Column
	buildRel  int
	buildCol  *storage.Column
	residuals []residualPred
}

type residualPred struct {
	lRel int
	lCol *storage.Column
	rRel int
	rCol *storage.Column
}

// condition computes the join condition with the build/outer side = left
// child and probe/inner side = right child.
func (ex *executor) condition(n *plan.Node) (*joinCondition, error) {
	jc := &joinCondition{}
	first := true
	for _, ei := range n.EdgeIdxs {
		e := ex.g.Edges[ei]
		for _, j := range e.Preds {
			li := ex.g.Q.RelIndex(j.LeftAlias)
			ri := ex.g.Q.RelIndex(j.RightAlias)
			lCol := ex.table(li).MustColumn(j.LeftCol)
			rCol := ex.table(ri).MustColumn(j.RightCol)
			// Normalise: l side in n.Left.S, r side in n.Right.S.
			if n.Left.S.Has(ri) {
				li, ri = ri, li
				lCol, rCol = rCol, lCol
			}
			if !n.Left.S.Has(li) || !n.Right.S.Has(ri) {
				return nil, fmt.Errorf("engine: edge %d does not span join %v", ei, n.S)
			}
			if first {
				jc.buildRel, jc.buildCol = li, lCol
				jc.probeRel, jc.probeCol = ri, rCol
				first = false
				continue
			}
			jc.residuals = append(jc.residuals, residualPred{lRel: li, lCol: lCol, rRel: ri, rCol: rCol})
		}
	}
	if first {
		return nil, fmt.Errorf("engine: join %v has no predicates", n.S)
	}
	return jc, nil
}

func mergeRels(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// emitter accumulates joined tuples.
type emitter struct {
	rels []int
	cols [][]int32
	lPos []int // for each output slot, index into left batch cols (or -1)
	rPos []int
}

func newEmitter(l, r *batch) *emitter {
	rels := mergeRels(l.rels, r.rels)
	e := &emitter{rels: rels, cols: make([][]int32, len(rels)),
		lPos: make([]int, len(rels)), rPos: make([]int, len(rels))}
	for i, rel := range rels {
		e.lPos[i], e.rPos[i] = -1, -1
		for k, x := range l.rels {
			if x == rel {
				e.lPos[i] = k
			}
		}
		for k, x := range r.rels {
			if x == rel {
				e.rPos[i] = k
			}
		}
	}
	return e
}

func (e *emitter) emit(l *batch, li int, r *batch, ri int) {
	for k := range e.rels {
		if p := e.lPos[k]; p >= 0 {
			e.cols[k] = append(e.cols[k], l.cols[p][li])
		} else {
			e.cols[k] = append(e.cols[k], r.cols[e.rPos[k]][ri])
		}
	}
}

func (e *emitter) batch() *batch {
	for k := range e.cols {
		if e.cols[k] == nil {
			e.cols[k] = []int32{}
		}
	}
	return &batch{rels: e.rels, cols: e.cols}
}

// checkResiduals applies the non-primary join predicates.
func checkResiduals(jc *joinCondition, l *batch, li int, r *batch, ri int) bool {
	for _, rp := range jc.residuals {
		lRow := int(l.colOf(rp.lRel)[li])
		rRow := int(r.colOf(rp.rRel)[ri])
		if rp.lCol.IsNull(lRow) || rp.rCol.IsNull(rRow) {
			return false
		}
		if rp.lCol.Ints[lRow] != rp.rCol.Ints[rRow] {
			return false
		}
	}
	return true
}
