package engine

import (
	"context"
	"errors"
	"testing"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/enum"
	"jobench/internal/imdb"
	"jobench/internal/index"
	"jobench/internal/job"
	"jobench/internal/plan"
	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/storage"
	"jobench/internal/truecard"
)

type elab struct {
	db   *storage.Database
	sdb  *stats.DB
	pg   cardest.Estimator
	pkfk *index.Set
}

var cached *elab

func lab(t *testing.T) *elab {
	t.Helper()
	if cached != nil {
		return cached
	}
	db := imdb.Generate(imdb.Config{Scale: 0.05, Seed: 21})
	sdb := stats.AnalyzeDatabase(db, stats.Options{SampleSize: 2000, Seed: 1})
	pkfk, err := imdb.BuildIndexes(db, imdb.PKFK)
	if err != nil {
		t.Fatal(err)
	}
	cached = &elab{db: db, sdb: sdb, pg: cardest.NewPostgres(db, sdb), pkfk: pkfk}
	return cached
}

func (l *elab) planFor(t *testing.T, qid string, shape plan.Shape) (*query.Graph, *plan.Node) {
	t.Helper()
	q := job.ByID(qid)
	g := query.MustBuildGraph(q)
	sp := &enum.Space{
		G: g, DB: l.db, Cards: l.pg.ForQuery(g),
		Model: costmodel.NewSimple(), Indexes: l.pkfk, DisableNLJ: true, Shape: shape,
	}
	root, err := enum.DP(sp)
	if err != nil {
		t.Fatalf("%s: %v", qid, err)
	}
	return g, root
}

// TestExecutionMatchesTrueCardinality is the central integration invariant:
// whatever plan the optimizer picks, executing it must produce exactly the
// true result cardinality.
func TestExecutionMatchesTrueCardinality(t *testing.T) {
	l := lab(t)
	for _, qid := range []string{"1a", "2d", "3b", "4a", "6a", "8c", "13d", "16b", "17e", "25a", "32a", "33a"} {
		g, root := l.planFor(t, qid, plan.Bushy)
		st, err := truecard.Compute(l.db, g, truecard.Options{})
		if err != nil {
			t.Fatalf("%s: %v", qid, err)
		}
		want, _ := st.Card(query.FullSet(g.N))
		res, err := Run(l.db, l.pkfk, g, root, Config{Rehash: true})
		if err != nil {
			t.Fatalf("%s: %v", qid, err)
		}
		if res.Rows != int64(want) {
			t.Errorf("%s: executed %d rows, true cardinality %.0f", qid, res.Rows, want)
		}
		if res.Work <= 0 {
			t.Errorf("%s: work = %d", qid, res.Work)
		}
	}
}

// forceAlgo rewrites every join to one algorithm (skipping INL, which is
// only valid with an index on a leaf).
func forceAlgo(n *plan.Node, algo plan.JoinAlgo) {
	if n == nil || n.IsLeaf() {
		return
	}
	n.Algo = algo
	forceAlgo(n.Left, algo)
	forceAlgo(n.Right, algo)
}

// TestJoinAlgorithmsAgree: the same plan executed with hash joins,
// sort-merge joins and nested-loop joins yields identical row counts.
func TestJoinAlgorithmsAgree(t *testing.T) {
	l := lab(t)
	for _, qid := range []string{"3b", "1a", "4b", "32a"} {
		g, root := l.planFor(t, qid, plan.Bushy)
		var counts []int64
		for _, algo := range []plan.JoinAlgo{plan.HashJoin, plan.SortMergeJoin, plan.NestedLoopJoin} {
			forceAlgo(root, algo)
			res, err := Run(l.db, l.pkfk, g, root, Config{Rehash: true})
			if err != nil {
				t.Fatalf("%s/%v: %v", qid, algo, err)
			}
			counts = append(counts, res.Rows)
		}
		if counts[0] != counts[1] || counts[1] != counts[2] {
			t.Errorf("%s: HJ/SMJ/NLJ disagree: %v", qid, counts)
		}
	}
}

// TestIndexJoinAgreesWithHashJoin runs plans that contain INL joins (as
// chosen by the optimizer with FK indexes) and compares against the same
// plan with all INLs flipped to hash joins.
func TestIndexJoinAgreesWithHashJoin(t *testing.T) {
	l := lab(t)
	for _, qid := range []string{"13d", "17e", "6a", "25a"} {
		g, root := l.planFor(t, qid, plan.Bushy)
		res1, err := Run(l.db, l.pkfk, g, root, Config{Rehash: true})
		if err != nil {
			t.Fatalf("%s: %v", qid, err)
		}
		forceAlgo(root, plan.HashJoin)
		res2, err := Run(l.db, l.pkfk, g, root, Config{Rehash: true})
		if err != nil {
			t.Fatalf("%s: %v", qid, err)
		}
		if res1.Rows != res2.Rows {
			t.Errorf("%s: INL plan %d rows vs HJ plan %d rows", qid, res1.Rows, res2.Rows)
		}
	}
}

// TestUndersizedHashTablesCostWork reproduces the §4.1 mechanism: a build
// side underestimated by 1000x yields long collision chains; enabling
// rehash removes the penalty without changing the result.
func TestUndersizedHashTablesCostWork(t *testing.T) {
	l := lab(t)
	g, root := l.planFor(t, "17e", plan.Bushy)
	forceAlgo(root, plan.HashJoin)
	// Sabotage the estimates: pretend every build side has 1 row.
	var sabotage func(n *plan.Node)
	sabotage = func(n *plan.Node) {
		if n == nil {
			return
		}
		n.ECard = 1
		sabotage(n.Left)
		sabotage(n.Right)
	}
	sabotage(root)
	bad, err := Run(l.db, l.pkfk, g, root, Config{Rehash: false})
	if err != nil {
		t.Fatal(err)
	}
	good, err := Run(l.db, l.pkfk, g, root, Config{Rehash: true})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Rows != good.Rows {
		t.Fatalf("rehash changed the result: %d vs %d", bad.Rows, good.Rows)
	}
	if bad.Work < 2*good.Work {
		t.Errorf("undersized hash tables cost %d work vs %d with rehash; expected a large penalty", bad.Work, good.Work)
	}
}

// TestWorkLimitTimesOut verifies the §4.1 timeout: an O(n*m) nested-loop
// plan hits the limit and reports TimedOut.
func TestWorkLimitTimesOut(t *testing.T) {
	l := lab(t)
	g, root := l.planFor(t, "17e", plan.Bushy)
	forceAlgo(root, plan.NestedLoopJoin)
	res, err := Run(l.db, l.pkfk, g, root, Config{WorkLimit: 10000})
	if err == nil || !errors.Is(err, ErrWorkLimit) {
		t.Fatalf("expected work-limit error, got %v", err)
	}
	if !res.TimedOut {
		t.Fatal("TimedOut not set")
	}
	if res.Work <= 10000 {
		t.Fatalf("work %d not past the limit", res.Work)
	}
}

// TestContextCancellationAborts: a cancelled Config.Ctx aborts execution
// at a block boundary with the context's error, while a live context
// changes nothing — neither the result nor the metered work.
func TestContextCancellationAborts(t *testing.T) {
	l := lab(t)
	g, root := l.planFor(t, "17e", plan.Bushy)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(l.db, l.pkfk, g, root, Config{Rehash: true, Ctx: cancelled})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v, want context.Canceled", err)
	}
	if res.TimedOut {
		t.Fatal("cancellation must not masquerade as a work-limit timeout")
	}

	// A live context is inert: work and rows identical to no context.
	bare, err := Run(l.db, l.pkfk, g, root, Config{Rehash: true})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Run(l.db, l.pkfk, g, root, Config{Rehash: true, Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Rows != bounded.Rows || bare.Work != bounded.Work {
		t.Fatalf("live ctx changed execution: (%d rows, %d work) vs (%d rows, %d work)",
			bare.Rows, bare.Work, bounded.Rows, bounded.Work)
	}
}

// TestNestedLoopCostsQuadraticWork: the same query runs orders of magnitude
// more work with NLJ than with hash joins — the asymptotic risk of §4.1.
func TestNestedLoopCostsQuadraticWork(t *testing.T) {
	l := lab(t)
	g, root := l.planFor(t, "2d", plan.Bushy)
	forceAlgo(root, plan.HashJoin)
	hj, err := Run(l.db, l.pkfk, g, root, Config{Rehash: true})
	if err != nil {
		t.Fatal(err)
	}
	forceAlgo(root, plan.NestedLoopJoin)
	nl, err := Run(l.db, l.pkfk, g, root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// At the tiny test scale the gap is ~10x; it grows quadratically with
	// data size (TestWorkLimitTimesOut shows the blow-up).
	if nl.Work < 5*hj.Work {
		t.Errorf("NLJ work %d not far above HJ work %d", nl.Work, hj.Work)
	}
}

// TestShapedPlansExecute: restricted tree shapes execute to the same result.
func TestShapedPlansExecute(t *testing.T) {
	l := lab(t)
	var want int64 = -1
	for _, shape := range []plan.Shape{plan.Bushy, plan.LeftDeep, plan.RightDeep, plan.ZigZag} {
		g, root := l.planFor(t, "13a", shape)
		res, err := Run(l.db, l.pkfk, g, root, Config{Rehash: true})
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if want == -1 {
			want = res.Rows
		} else if res.Rows != want {
			t.Errorf("%v: %d rows, want %d", shape, res.Rows, want)
		}
	}
}

// TestDeterministicWork: equal configurations yield identical work counts.
func TestDeterministicWork(t *testing.T) {
	l := lab(t)
	g, root := l.planFor(t, "13d", plan.Bushy)
	a, err := Run(l.db, l.pkfk, g, root, Config{Rehash: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(l.db, l.pkfk, g, root, Config{Rehash: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Work != b.Work || a.Rows != b.Rows {
		t.Fatalf("non-deterministic execution: %+v vs %+v", a, b)
	}
	if a.Duration <= 0 {
		t.Fatal("no duration measured")
	}
}

// TestMissingIndexError: executing an INL plan without the index fails
// loudly instead of silently scanning.
func TestMissingIndexError(t *testing.T) {
	l := lab(t)
	g, root := l.planFor(t, "13d", plan.Bushy)
	var hasINL func(n *plan.Node) bool
	hasINL = func(n *plan.Node) bool {
		if n == nil || n.IsLeaf() {
			return false
		}
		return n.Algo == plan.IndexNLJoin || hasINL(n.Left) || hasINL(n.Right)
	}
	if !hasINL(root) {
		t.Skip("optimizer chose no INL for 13d at this scale")
	}
	if _, err := Run(l.db, index.NewSet(), g, root, Config{}); err == nil {
		t.Fatal("INL executed without indexes")
	}
}

// TestRunSubtree: a plan subtree executes exactly as it would inside the
// full plan — its row count is the true cardinality of its relation set,
// and repeated runs meter identical work. This is the contract adaptive
// re-optimization (internal/reopt) probes rely on.
func TestRunSubtree(t *testing.T) {
	l := lab(t)
	for _, qid := range []string{"13d", "3b", "17e"} {
		g, root := l.planFor(t, qid, plan.Bushy)
		if root.IsLeaf() {
			t.Fatalf("%s: plan has no joins", qid)
		}
		st, err := truecard.Compute(l.db, g, truecard.Options{})
		if err != nil {
			t.Fatalf("%s: %v", qid, err)
		}
		r := NewRunner()
		// The root is itself a subtree: RunSubtree must agree with Run.
		full, err := r.Run(l.db, l.pkfk, g, root, Config{Rehash: true})
		if err != nil {
			t.Fatalf("%s: %v", qid, err)
		}
		asSub, err := r.RunSubtree(l.db, l.pkfk, g, root, Config{Rehash: true})
		if err != nil {
			t.Fatalf("%s: %v", qid, err)
		}
		if asSub.Rows != full.Rows || asSub.Work != full.Work {
			t.Errorf("%s: RunSubtree(root) = %d rows/%d work, Run = %d/%d",
				qid, asSub.Rows, asSub.Work, full.Rows, full.Work)
		}
		// Every proper join subtree reports its true intermediate
		// cardinality for work strictly below the full plan's.
		var walk func(n *plan.Node)
		walk = func(n *plan.Node) {
			if n == nil || n.IsLeaf() {
				return
			}
			res, err := r.RunSubtree(l.db, l.pkfk, g, n, Config{Rehash: true})
			if err != nil {
				t.Fatalf("%s %v: %v", qid, n.S, err)
			}
			want, _ := st.Card(n.S)
			if res.Rows != int64(want) {
				t.Errorf("%s subtree %v: %d rows, true cardinality %.0f", qid, n.S, res.Rows, want)
			}
			if n != root && res.Work >= full.Work {
				t.Errorf("%s subtree %v: work %d not below full plan's %d", qid, n.S, res.Work, full.Work)
			}
			again, err := r.RunSubtree(l.db, l.pkfk, g, n, Config{Rehash: true})
			if err != nil {
				t.Fatalf("%s %v: %v", qid, n.S, err)
			}
			if again.Work != res.Work || again.Rows != res.Rows {
				t.Errorf("%s subtree %v: non-deterministic (%d/%d vs %d/%d)",
					qid, n.S, res.Rows, res.Work, again.Rows, again.Work)
			}
			walk(n.Left)
			walk(n.Right)
		}
		walk(root)
	}
}
