package engine

import (
	"testing"
	"testing/quick"
)

func TestHashTableProbeAndChains(t *testing.T) {
	// A table sized for 4 entries receiving 4000 forces long chains.
	ht := newHashTable(4)
	for i := int32(0); i < 4000; i++ {
		ht.insert(int64(i%100), i, false)
	}
	out, walked := ht.probe(7, nil)
	if len(out) != 40 {
		t.Fatalf("probe(7) found %d entries, want 40", len(out))
	}
	// The bucket holds ~1000 entries (4000 over 4 buckets): long chains.
	if walked < 100 {
		t.Fatalf("walked only %d entries; expected long collision chains", walked)
	}

	// The same data in a rehashing table: short chains.
	ht2 := newHashTable(4)
	for i := int32(0); i < 4000; i++ {
		ht2.insert(int64(i%100), i, true)
	}
	out2, walked2 := ht2.probe(7, nil)
	if len(out2) != 40 {
		t.Fatalf("rehash probe found %d", len(out2))
	}
	if walked2 >= walked/2 {
		t.Fatalf("rehash chains (%d) not much shorter than fixed (%d)", walked2, walked)
	}
}

func TestHashTableSizing(t *testing.T) {
	for _, tc := range []struct {
		est  float64
		want uint64
	}{
		{0, 4}, {1, 4}, {4, 4}, {5, 8}, {1000, 1024}, {-3, 4},
	} {
		ht := newHashTable(tc.est)
		if got := uint64(len(ht.buckets)); got != tc.want {
			t.Errorf("newHashTable(%g): %d buckets, want %d", tc.est, got, tc.want)
		}
	}
	if testing.Short() {
		// The cap check below allocates (and the kernel zeroes) the full
		// 1<<28-bucket table — tens of seconds of wall clock.
		t.Skip("skipping huge-allocation cap check in -short mode")
	}
	// NaN and absurd estimates must not blow up the allocation.
	huge := newHashTable(1e30)
	if len(huge.buckets) > 1<<28 {
		t.Fatal("estimate cap not applied")
	}
}

// Property: probe returns exactly the rows inserted under a key, regardless
// of rehashing.
func TestHashTableCorrectnessProperty(t *testing.T) {
	f := func(keys []int8, rehash bool) bool {
		ht := newHashTable(2)
		want := make(map[int64][]int32)
		for i, k := range keys {
			ht.insert(int64(k), int32(i), rehash)
			want[int64(k)] = append(want[int64(k)], int32(i))
		}
		for k, rows := range want {
			got, _ := ht.probe(k, nil)
			if len(got) != len(rows) {
				return false
			}
			seen := make(map[int32]bool, len(got))
			for _, r := range got {
				seen[r] = true
			}
			for _, r := range rows {
				if !seen[r] {
					return false
				}
			}
		}
		got, _ := ht.probe(999, nil)
		return len(got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRels(t *testing.T) {
	cases := []struct{ a, b, want []int }{
		{[]int{0, 2}, []int{1}, []int{0, 1, 2}},
		{[]int{1}, []int{0, 2}, []int{0, 1, 2}},
		{[]int{0}, []int{1}, []int{0, 1}},
		{nil, []int{3}, []int{3}},
	}
	for _, c := range cases {
		got := mergeRels(c.a, c.b)
		if len(got) != len(c.want) {
			t.Fatalf("mergeRels(%v,%v) = %v", c.a, c.b, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("mergeRels(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}
