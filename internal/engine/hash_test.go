package engine

import (
	"math"
	"testing"
)

// The hash-table unit and property tests (probe/chain lengths, sizing,
// metering equivalence against the old chained layout) live with the table
// in internal/hashtab; this file covers the engine-side helpers.

func TestMergeRels(t *testing.T) {
	cases := []struct{ a, b, want []int }{
		{[]int{0, 2}, []int{1}, []int{0, 1, 2}},
		{[]int{1}, []int{0, 2}, []int{0, 1, 2}},
		{[]int{0}, []int{1}, []int{0, 1}},
		{nil, []int{3}, []int{3}},
	}
	for _, c := range cases {
		got := mergeRels(c.a, c.b)
		if len(got) != len(c.want) {
			t.Fatalf("mergeRels(%v,%v) = %v", c.a, c.b, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("mergeRels(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

func TestEmitCap(t *testing.T) {
	for _, tc := range []struct {
		ecard float64
		want  int
	}{
		{-1, 0}, {0, 0}, {42.9, 42}, {float64(emitCapMax) * 10, emitCapMax},
	} {
		if got := emitCap(tc.ecard); got != tc.want {
			t.Errorf("emitCap(%g) = %d, want %d", tc.ecard, got, tc.want)
		}
	}
	if got := emitCap(math.NaN()); got != 0 {
		t.Errorf("emitCap(NaN) = %d, want 0", got)
	}
}
