package engine

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"jobench/internal/hashtab"
	"jobench/internal/plan"
	"jobench/internal/query"
	"jobench/internal/storage"
)

// hashJoin builds on the left child (§6.2 convention), probes with the
// right child. The table is hashtab's flat open-layout table; its bucket
// count comes from the optimizer's estimate, which is the §4.1 mechanism:
// an underestimated build side yields long collision chains whose
// traversal costs real work. With rehash enabled the table doubles once
// the load factor exceeds 3 (the PostgreSQL 9.5 behaviour), paying the
// reinsertion work instead.
func (ex *executor) hashJoin(n *plan.Node, live query.BitSet, id int) (*batch, error) {
	jc, err := ex.condition(n)
	if err != nil {
		return nil, err
	}
	leftLive, rightLive := childLive(jc, live)
	left, err := ex.exec(n.Left, leftLive, plan.LeftChildID(id))
	if err != nil {
		return nil, err
	}
	right, err := ex.exec(n.Right, rightLive, n.RightChildID(id))
	if err != nil {
		return nil, err
	}
	// The hash table is sized by the optimizer's estimate of the build
	// side, NOT its true size: that is the whole point. The entry arena,
	// whose size is no part of the §4.1 model, is reserved at the true
	// build size — an allocation saving with no metering effect.
	ht := hashtab.New(n.Left.ECard)
	buildRows := left.colOf(jc.buildRel)
	ht.Reserve(len(buildRows))
	bCol := jc.buildCol
	for base := 0; base < len(buildRows); base += ex.block {
		end := min(base+ex.block, len(buildRows))
		var w int64
		for i := base; i < end; i++ {
			row := buildRows[i]
			if bCol.IsNull(int(row)) {
				continue
			}
			w += HashBuildFactor + ht.Insert(bCol.Ints[row], int32(i), ex.cfg.Rehash)
		}
		if err := ex.charge(id, w); err != nil {
			return nil, err
		}
	}

	em := newEmitter(ex.sc, left, right, live, n.ECard)
	res := bindResiduals(jc, left, right)
	probeRows := right.colOf(jc.probeRel)
	pCol := jc.probeCol
	matches := ex.sc.matches[:0]
	lIdx, rIdx := ex.sc.lIdx[:0], ex.sc.rIdx[:0]
	for base := 0; base < len(probeRows); base += ex.block {
		end := min(base+ex.block, len(probeRows))
		var w int64
		lIdx, rIdx = lIdx[:0], rIdx[:0]
		for ri := base; ri < end; ri++ {
			row := probeRows[ri]
			if pCol.IsNull(int(row)) {
				w++
				continue
			}
			// The chain walk is metered in full (the §4.1 penalty Fig. 6c
			// removes by rehashing), matches or not.
			var walked int64
			matches, walked = ht.Probe(pCol.Ints[row], matches[:0])
			w += 1 + walked
			for _, li := range matches {
				if !checkResiduals(res, int(li), ri) {
					continue
				}
				lIdx = append(lIdx, li)
				rIdx = append(rIdx, int32(ri))
				w++
			}
		}
		em.emitBlock(left, right, lIdx, rIdx)
		if err := ex.charge(id, w); err != nil {
			return nil, err
		}
	}
	ex.sc.matches, ex.sc.lIdx, ex.sc.rIdx = matches[:0], lIdx[:0], rIdx[:0]
	ex.release(left)
	ex.release(right)
	return em.batch(), nil
}

// indexJoin looks up each left tuple in the index on the right base
// relation; the right relation's selection applies only *after* the fetch
// (§2.4), which is also why its cost uses the unfiltered intermediate.
func (ex *executor) indexJoin(n *plan.Node, live query.BitSet, id int) (*batch, error) {
	if !n.Right.IsLeaf() {
		return nil, fmt.Errorf("engine: IndexNLJoin with non-leaf inner")
	}
	rRel := n.Right.Rel
	table, col := n.RightKeyColumn(ex.g)
	idx := ex.idx.Get(table, col)
	if idx == nil {
		return nil, fmt.Errorf("engine: no index on %s.%s", table, col)
	}
	t := ex.table(rRel)
	filter, err := ex.compileFilter(rRel, t)
	if err != nil {
		return nil, err
	}
	jc, err := ex.condition(n)
	if err != nil {
		return nil, err
	}
	if jc.probeRel != rRel {
		// condition() puts the left side as build; for INL we probe the
		// index with left values, so the "probe" side here must be r.
		return nil, fmt.Errorf("engine: index join condition inverted")
	}
	leftLive, _ := childLive(jc, live)
	left, err := ex.exec(n.Left, leftLive, plan.LeftChildID(id))
	if err != nil {
		return nil, err
	}

	em := newIndexEmitter(ex.sc, left, rRel, live, n.ECard)
	res := bindResiduals(jc, left, nil)
	outerRows := left.colOf(jc.buildRel)
	oCol := jc.buildCol
	lIdx, rRows := ex.sc.lIdx[:0], ex.sc.rIdx[:0]
	for base := 0; base < len(outerRows); base += ex.block {
		end := min(base+ex.block, len(outerRows))
		var w int64
		lIdx, rRows = lIdx[:0], rRows[:0]
		for li := base; li < end; li++ {
			row := outerRows[li]
			if oCol.IsNull(int(row)) {
				w++
				continue
			}
			// Random access into the index.
			w += RandomAccessFactor
			for _, rRow := range idx.Lookup(oCol.Ints[row]) {
				// Fetch + selection check after the fetch.
				w++
				if !filter(int(rRow)) {
					continue
				}
				if !checkResiduals(res, li, int(rRow)) {
					continue
				}
				lIdx = append(lIdx, int32(li))
				rRows = append(rRows, rRow)
				w++
			}
		}
		em.emitIndexBlock(left, lIdx, rRows)
		if err := ex.charge(id, w); err != nil {
			return nil, err
		}
	}
	ex.sc.lIdx, ex.sc.rIdx = lIdx[:0], rRows[:0]
	ex.release(left)
	return em.batch(), nil
}

// nestedLoop is the classic O(n*m) join the optimizer can disable. The
// inner side's key values and NULL flags are gathered once into flat
// vectors, so the quadratic pair loop compares registers instead of
// chasing row ids through the column — the metered work (every pair is
// compared: this loop is the risk of §4.1) is unchanged.
func (ex *executor) nestedLoop(n *plan.Node, live query.BitSet, id int) (*batch, error) {
	jc, err := ex.condition(n)
	if err != nil {
		return nil, err
	}
	leftLive, rightLive := childLive(jc, live)
	left, err := ex.exec(n.Left, leftLive, plan.LeftChildID(id))
	if err != nil {
		return nil, err
	}
	right, err := ex.exec(n.Right, rightLive, n.RightChildID(id))
	if err != nil {
		return nil, err
	}
	em := newEmitter(ex.sc, left, right, live, n.ECard)
	res := bindResiduals(jc, left, right)
	lRows := left.colOf(jc.buildRel)
	rRows := right.colOf(jc.probeRel)

	innerV := ex.sc.innerV[:0]
	innerN := ex.sc.innerN[:0]
	pCol := jc.probeCol
	for _, row := range rRows {
		innerV = append(innerV, pCol.Ints[row])
		innerN = append(innerN, pCol.IsNull(int(row)))
	}

	lIdx, rIdx := ex.sc.lIdx[:0], ex.sc.rIdx[:0]
	bCol := jc.buildCol
	m := int64(len(rRows))
	for base := 0; base < len(lRows); base += ex.block {
		end := min(base+ex.block, len(lRows))
		var w int64
		lIdx, rIdx = lIdx[:0], rIdx[:0]
		for li := base; li < end; li++ {
			row := lRows[li]
			// Every pair is compared.
			w += m
			if bCol.IsNull(int(row)) {
				continue
			}
			lVal := bCol.Ints[row]
			for ri := range innerV {
				if innerN[ri] || innerV[ri] != lVal {
					continue
				}
				if !checkResiduals(res, li, ri) {
					continue
				}
				lIdx = append(lIdx, int32(li))
				rIdx = append(rIdx, int32(ri))
				w++
			}
		}
		em.emitBlock(left, right, lIdx, rIdx)
		if err := ex.charge(id, w); err != nil {
			return nil, err
		}
	}
	ex.sc.innerV, ex.sc.innerN = innerV[:0], innerN[:0]
	ex.sc.lIdx, ex.sc.rIdx = lIdx[:0], rIdx[:0]
	ex.release(left)
	ex.release(right)
	return em.batch(), nil
}

// sortMerge sorts both inputs on the key and merges.
func (ex *executor) sortMerge(n *plan.Node, live query.BitSet, id int) (*batch, error) {
	jc, err := ex.condition(n)
	if err != nil {
		return nil, err
	}
	leftLive, rightLive := childLive(jc, live)
	left, err := ex.exec(n.Left, leftLive, plan.LeftChildID(id))
	if err != nil {
		return nil, err
	}
	right, err := ex.exec(n.Right, rightLive, n.RightChildID(id))
	if err != nil {
		return nil, err
	}

	sortSide := func(buf []keyed, b *batch, rel int, col *storage.Column) ([]keyed, error) {
		rows := b.colOf(rel)
		ks := buf[:0]
		for i, row := range rows {
			if col.IsNull(int(row)) {
				continue
			}
			ks = append(ks, keyed{col.Ints[row], int32(i)})
		}
		n := len(ks)
		if n > 1 {
			if err := ex.charge(id, int64(float64(n)*math.Log2(float64(n)))); err != nil {
				return nil, err
			}
		}
		slices.SortFunc(ks, func(a, b keyed) int { return cmp.Compare(a.key, b.key) })
		return ks, nil
	}
	lk, err := sortSide(ex.sc.keysL, left, jc.buildRel, jc.buildCol)
	if err != nil {
		return nil, err
	}
	rk, err := sortSide(ex.sc.keysR, right, jc.probeRel, jc.probeCol)
	if err != nil {
		return nil, err
	}
	if err := ex.charge(id, int64(len(lk)+len(rk))); err != nil {
		return nil, err
	}

	em := newEmitter(ex.sc, left, right, live, n.ECard)
	res := bindResiduals(jc, left, right)
	lIdx, rIdx := ex.sc.lIdx[:0], ex.sc.rIdx[:0]
	var w int64
	flush := func() error {
		em.emitBlock(left, right, lIdx, rIdx)
		lIdx, rIdx = lIdx[:0], rIdx[:0]
		err := ex.charge(id, w)
		w = 0
		return err
	}
	i, j := 0, 0
	for i < len(lk) && j < len(rk) {
		switch {
		case lk[i].key < rk[j].key:
			i++
		case lk[i].key > rk[j].key:
			j++
		default:
			key := lk[i].key
			i2 := i
			for i2 < len(lk) && lk[i2].key == key {
				i2++
			}
			j2 := j
			for j2 < len(rk) && rk[j2].key == key {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					w++
					if !checkResiduals(res, int(lk[a].i), int(rk[b].i)) {
						continue
					}
					lIdx = append(lIdx, lk[a].i)
					rIdx = append(rIdx, rk[b].i)
				}
				// Settle per block of compared pairs, not per pair: the
				// group cross product is where merge work concentrates.
				if len(lIdx) >= ex.block || w >= int64(ex.block) {
					if err := flush(); err != nil {
						return nil, err
					}
				}
			}
			i, j = i2, j2
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	ex.sc.keysL, ex.sc.keysR = lk[:0], rk[:0]
	ex.sc.lIdx, ex.sc.rIdx = lIdx[:0], rIdx[:0]
	ex.release(left)
	ex.release(right)
	return em.batch(), nil
}
