package engine

import (
	"fmt"
	"math"
	"sort"

	"jobench/internal/plan"
	"jobench/internal/query"
	"jobench/internal/storage"
)

// hashTable is a real chained hash table over int64 keys. Its bucket count
// comes from the optimizer's estimate, which is the §4.1 mechanism: an
// underestimated build side yields long collision chains whose traversal
// costs real work. With rehash enabled the table doubles once the load
// factor exceeds 3 (the PostgreSQL 9.5 behaviour), paying the reinsertion
// work instead.
type hashTable struct {
	buckets [][]hashEntry
	mask    uint64
	n       int
}

type hashEntry struct {
	key int64
	row int32 // index into the build batch
}

func nextPow2(v uint64) uint64 {
	if v < 4 {
		return 4
	}
	p := uint64(4)
	for p < v {
		p <<= 1
	}
	return p
}

func newHashTable(estimate float64) *hashTable {
	if math.IsNaN(estimate) || estimate < 1 {
		estimate = 1
	}
	if estimate > 1<<28 {
		estimate = 1 << 28
	}
	nb := nextPow2(uint64(estimate))
	return &hashTable{buckets: make([][]hashEntry, nb), mask: nb - 1}
}

func hash64(v int64) uint64 {
	x := uint64(v)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// insert adds an entry and returns the work units spent (including any
// rehash triggered by it).
func (h *hashTable) insert(key int64, row int32, rehash bool) int64 {
	work := int64(HashBuildFactor)
	b := hash64(key) & h.mask
	h.buckets[b] = append(h.buckets[b], hashEntry{key, row})
	h.n++
	if rehash && uint64(h.n) > 3*uint64(len(h.buckets)) {
		work += h.grow()
	}
	return work
}

func (h *hashTable) grow() int64 {
	old := h.buckets
	nb := uint64(len(old)) * 2
	h.buckets = make([][]hashEntry, nb)
	h.mask = nb - 1
	var work int64
	for _, bucket := range old {
		for _, e := range bucket {
			b := hash64(e.key) & h.mask
			h.buckets[b] = append(h.buckets[b], e)
			work++
		}
	}
	return work
}

// probe returns the matching rows for key and the number of entries
// examined (the chain walk the paper's Fig. 6c removes by rehashing).
func (h *hashTable) probe(key int64, out []int32) ([]int32, int64) {
	b := hash64(key) & h.mask
	bucket := h.buckets[b]
	for _, e := range bucket {
		if e.key == key {
			out = append(out, e.row)
		}
	}
	return out, int64(len(bucket))
}

// hashJoin builds on the left child (§6.2 convention), probes with the
// right child.
func (ex *executor) hashJoin(n *plan.Node) (*batch, error) {
	left, err := ex.exec(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := ex.exec(n.Right)
	if err != nil {
		return nil, err
	}
	jc, err := ex.condition(n)
	if err != nil {
		return nil, err
	}
	// The hash table is sized by the optimizer's estimate of the build
	// side, NOT its true size: that is the whole point.
	ht := newHashTable(n.Left.ECard)
	buildCol := left.colOf(jc.buildRel)
	for i, row := range buildCol {
		if jc.buildCol.IsNull(int(row)) {
			continue
		}
		w := ht.insert(jc.buildCol.Ints[row], int32(i), ex.cfg.Rehash)
		if err := ex.charge(w); err != nil {
			return nil, err
		}
	}
	em := newEmitter(left, right)
	probeCol := right.colOf(jc.probeRel)
	var matches []int32
	for ri, row := range probeCol {
		if jc.probeCol.IsNull(int(row)) {
			if err := ex.charge(1); err != nil {
				return nil, err
			}
			continue
		}
		var walked int64
		matches, walked = ht.probe(jc.probeCol.Ints[row], matches[:0])
		if err := ex.charge(1 + walked); err != nil {
			return nil, err
		}
		for _, li := range matches {
			if !checkResiduals(jc, left, int(li), right, ri) {
				continue
			}
			em.emit(left, int(li), right, ri)
			if err := ex.charge(1); err != nil {
				return nil, err
			}
		}
	}
	return em.batch(), nil
}

// indexJoin looks up each left tuple in the index on the right base
// relation; the right relation's selection applies only *after* the fetch
// (§2.4), which is also why its cost uses the unfiltered intermediate.
func (ex *executor) indexJoin(n *plan.Node) (*batch, error) {
	if !n.Right.IsLeaf() {
		return nil, fmt.Errorf("engine: IndexNLJoin with non-leaf inner")
	}
	left, err := ex.exec(n.Left)
	if err != nil {
		return nil, err
	}
	rRel := n.Right.Rel
	table, col := n.RightKeyColumn(ex.g)
	idx := ex.idx.Get(table, col)
	if idx == nil {
		return nil, fmt.Errorf("engine: no index on %s.%s", table, col)
	}
	t := ex.table(rRel)
	filter, err := query.CompileAll(ex.g.Q.Rels[rRel].Preds, t)
	if err != nil {
		return nil, err
	}
	jc, err := ex.condition(n)
	if err != nil {
		return nil, err
	}
	if jc.probeRel != rRel {
		// condition() puts the left side as build; for INL we probe the
		// index with left values, so the "probe" side here must be r.
		return nil, fmt.Errorf("engine: index join condition inverted")
	}

	// A single-row pseudo batch for the inner side keeps the emitter
	// machinery uniform.
	inner := &batch{rels: []int{rRel}, cols: [][]int32{{0}}}
	em := newEmitter(left, inner)
	outerCol := left.colOf(jc.buildRel)
	for li, row := range outerCol {
		if jc.buildCol.IsNull(int(row)) {
			if err := ex.charge(1); err != nil {
				return nil, err
			}
			continue
		}
		// Random access into the index.
		if err := ex.charge(RandomAccessFactor); err != nil {
			return nil, err
		}
		for _, rRow := range idx.Lookup(jc.buildCol.Ints[row]) {
			// Fetch + selection check after the fetch.
			if err := ex.charge(1); err != nil {
				return nil, err
			}
			if !filter(int(rRow)) {
				continue
			}
			inner.cols[0][0] = rRow
			if !checkResiduals(jc, left, li, inner, 0) {
				continue
			}
			em.emit(left, li, inner, 0)
			if err := ex.charge(1); err != nil {
				return nil, err
			}
		}
	}
	return em.batch(), nil
}

// nestedLoop is the classic O(n*m) join the optimizer can disable.
func (ex *executor) nestedLoop(n *plan.Node) (*batch, error) {
	left, err := ex.exec(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := ex.exec(n.Right)
	if err != nil {
		return nil, err
	}
	jc, err := ex.condition(n)
	if err != nil {
		return nil, err
	}
	em := newEmitter(left, right)
	lCol := left.colOf(jc.buildRel)
	rCol := right.colOf(jc.probeRel)
	for li, lRow := range lCol {
		lNull := jc.buildCol.IsNull(int(lRow))
		lVal := jc.buildCol.Ints[lRow]
		// Every pair is compared: this loop is the risk of §4.1.
		if err := ex.charge(int64(len(rCol))); err != nil {
			return nil, err
		}
		if lNull {
			continue
		}
		for ri, rRow := range rCol {
			if jc.probeCol.IsNull(int(rRow)) || jc.probeCol.Ints[rRow] != lVal {
				continue
			}
			if !checkResiduals(jc, left, li, right, ri) {
				continue
			}
			em.emit(left, li, right, ri)
			if err := ex.charge(1); err != nil {
				return nil, err
			}
		}
	}
	return em.batch(), nil
}

// sortMerge sorts both inputs on the key and merges.
func (ex *executor) sortMerge(n *plan.Node) (*batch, error) {
	left, err := ex.exec(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := ex.exec(n.Right)
	if err != nil {
		return nil, err
	}
	jc, err := ex.condition(n)
	if err != nil {
		return nil, err
	}

	type keyed struct {
		key int64
		i   int
	}
	sortSide := func(b *batch, rel int, col *storage.Column) ([]keyed, error) {
		rows := b.colOf(rel)
		ks := make([]keyed, 0, len(rows))
		for i, row := range rows {
			if col.IsNull(int(row)) {
				continue
			}
			ks = append(ks, keyed{col.Ints[row], i})
		}
		n := len(ks)
		if n > 1 {
			if err := ex.charge(int64(float64(n) * math.Log2(float64(n)))); err != nil {
				return nil, err
			}
		}
		sort.Slice(ks, func(a, b int) bool { return ks[a].key < ks[b].key })
		return ks, nil
	}
	lk, err := sortSide(left, jc.buildRel, jc.buildCol)
	if err != nil {
		return nil, err
	}
	rk, err := sortSide(right, jc.probeRel, jc.probeCol)
	if err != nil {
		return nil, err
	}
	if err := ex.charge(int64(len(lk) + len(rk))); err != nil {
		return nil, err
	}

	em := newEmitter(left, right)
	i, j := 0, 0
	for i < len(lk) && j < len(rk) {
		switch {
		case lk[i].key < rk[j].key:
			i++
		case lk[i].key > rk[j].key:
			j++
		default:
			key := lk[i].key
			i2 := i
			for i2 < len(lk) && lk[i2].key == key {
				i2++
			}
			j2 := j
			for j2 < len(rk) && rk[j2].key == key {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					if err := ex.charge(1); err != nil {
						return nil, err
					}
					if !checkResiduals(jc, left, lk[a].i, right, rk[b].i) {
						continue
					}
					em.emit(left, lk[a].i, right, rk[b].i)
				}
			}
			i, j = i2, j2
		}
	}
	return em.batch(), nil
}
