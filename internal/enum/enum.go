// Package enum implements the plan-space enumeration algorithms of §6:
// exhaustive dynamic programming over connected subgraphs without cross
// products (DPccp, Moerkotte & Neumann), an O(3^n) DPsub used as a test
// oracle, shape-restricted DP (left-deep / right-deep / zig-zag), the
// randomized QuickPick algorithm (and its best-of-1000 variant), and Greedy
// Operator Ordering (GOO).
package enum

import (
	"fmt"
	"math"
	"math/rand"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/plan"
	"jobench/internal/query"
	"jobench/internal/storage"
)

// Space bundles everything a plan enumeration needs: the join graph, a
// cardinality provider (estimates, injected values or truth), a cost model,
// the physical design, and engine-level rules (the §4.1 nested-loop switch
// and the §6.2 shape restriction).
type Space struct {
	G          *query.Graph
	DB         *storage.Database
	Cards      cardest.Provider
	Model      costmodel.Model
	Indexes    plan.IndexChecker
	DisableNLJ bool
	Shape      plan.Shape
}

func (sp *Space) indexes() plan.IndexChecker {
	if sp.Indexes == nil {
		return plan.NoIndexes{}
	}
	return sp.Indexes
}

// leafFor builds an annotated scan node.
func (sp *Space) leafFor(r int) *plan.Node {
	n := plan.Leaf(r)
	t := sp.DB.MustTable(sp.G.Q.Rels[r].Table)
	n.ECard = sp.Cards.Card(n.S)
	n.ECost = sp.Model.ScanCost(sp.Cards.SansSelection(n.S, r), float64(t.TupleWidth()))
	return n
}

// joinOf builds the cheapest join of (left, right) in this orientation, or
// nil if the shape restriction or available algorithms rule it out. Both
// orientations must be tried by the caller.
func (sp *Space) joinOf(left, right *plan.Node) *plan.Node {
	if !sp.Shape.Allows(left, right) {
		return nil
	}
	edges := sp.G.EdgesBetween(left.S, right.S)
	if len(edges) == 0 {
		return nil
	}
	s := left.S.Union(right.S)
	out := sp.Cards.Card(s)

	best := math.Inf(1)
	var bestAlgo plan.JoinAlgo
	found := false

	try := func(a plan.JoinAlgo, local float64) {
		cost := left.ECost + local
		if a != plan.IndexNLJoin {
			cost += right.ECost
		}
		if cost < best {
			best, bestAlgo, found = cost, a, true
		}
	}

	try(plan.HashJoin, sp.Model.HashJoinCost(left.ECard, right.ECard, out))
	try(plan.SortMergeJoin, sp.Model.SortMergeJoinCost(left.ECard, right.ECard, out))
	if !sp.DisableNLJ {
		try(plan.NestedLoopJoin, sp.Model.NestedLoopJoinCost(left.ECard, right.ECard, out))
	}
	if right.IsLeaf() {
		n := &plan.Node{S: s, Rel: -1, Left: left, Right: right, EdgeIdxs: edges}
		table, col := n.RightKeyColumn(sp.G)
		if sp.indexes().Has(table, col) {
			r := right.Rel
			t := sp.DB.MustTable(table)
			lookups := sp.Cards.SansSelection(s, r)
			innerRows := sp.Cards.SansSelection(right.S, r)
			try(plan.IndexNLJoin, sp.Model.IndexJoinCost(left.ECard, lookups, out, innerRows, float64(t.TupleWidth())))
		}
	}
	if !found {
		return nil
	}
	return &plan.Node{
		S: s, Rel: -1, Algo: bestAlgo, Left: left, Right: right,
		EdgeIdxs: edges, ECard: out, ECost: best,
	}
}

// emit offers a (S1, S2) pair to the DP table in both orientations.
func (sp *Space) emit(table map[query.BitSet]*plan.Node, s1, s2 query.BitSet) {
	l, r := table[s1], table[s2]
	if l == nil || r == nil {
		return
	}
	s := s1.Union(s2)
	cur := table[s]
	if n := sp.joinOf(l, r); n != nil && (cur == nil || n.ECost < cur.ECost) {
		table[s] = n
		cur = n
	}
	if n := sp.joinOf(r, l); n != nil && (cur == nil || n.ECost < cur.ECost) {
		table[s] = n
	}
}

// DPccp enumerates all connected-subgraph/complement pairs of the join
// graph and returns the optimal plan for the full query under the space's
// provider, model and restrictions.
func DPccp(sp *Space) (*plan.Node, error) {
	g := sp.G
	table := make(map[query.BitSet]*plan.Node, 1<<uint(g.N))
	for r := 0; r < g.N; r++ {
		table[query.Bit(r)] = sp.leafFor(r)
	}

	// Process csg-cmp pairs in an order where smaller unions come first:
	// enumerate connected subsets ascending by size is not sufficient for
	// DPccp's pairing, so we follow the classic emit order: for each csg S1
	// (enumerated so that all its subsets were seen), for each cmp S2.
	// Collect pairs and sort by union size to fill the table bottom-up.
	type pair struct{ s1, s2 query.BitSet }
	var pairs []pair
	emitPair := func(s1, s2 query.BitSet) {
		pairs = append(pairs, pair{s1, s2})
	}
	enumerateCsgCmpPairs(g, emitPair)

	// Sort by union cardinality (stable counting sort over sizes).
	bySize := make([][]pair, g.N+1)
	for _, p := range pairs {
		c := p.s1.Union(p.s2).Count()
		bySize[c] = append(bySize[c], p)
	}
	for _, list := range bySize {
		for _, p := range list {
			sp.emit(table, p.s1, p.s2)
		}
	}

	full := query.FullSet(g.N)
	n := table[full]
	if n == nil {
		return nil, fmt.Errorf("enum: no plan for %s (shape %v too restrictive?)", g.Q.ID, sp.Shape)
	}
	return n, nil
}

// enumerateCsgCmpPairs implements the canonical Moerkotte/Neumann DPccp
// enumeration: every connected subgraph S1 is paired with every connected
// subgraph S2 of its complement that is reachable through at least one edge;
// each unordered pair is emitted exactly once.
func enumerateCsgCmpPairs(g *query.Graph, emit func(s1, s2 query.BitSet)) {
	for i := g.N - 1; i >= 0; i-- {
		v := query.Bit(i)
		emitCsg(g, v, emit)
		enumerateCsgRec(g, v, lowSet(i+1), emit)
	}
}

// lowSet returns {0, .., i-1}.
func lowSet(i int) query.BitSet { return query.BitSet(1)<<uint(i) - 1 }

// enumerateCsgRec grows the connected subgraph S by non-empty subsets of its
// neighbourhood excluding X, emitting each grown csg's complements first.
func enumerateCsgRec(g *query.Graph, s, x query.BitSet, emit func(s1, s2 query.BitSet)) {
	n := g.Neighborhood(s).Minus(x)
	if n.Empty() {
		return
	}
	forAllSubsets(n, func(sub query.BitSet) {
		emitCsg(g, s.Union(sub), emit)
	})
	forAllSubsets(n, func(sub query.BitSet) {
		enumerateCsgRec(g, s.Union(sub), x.Union(n), emit)
	})
}

// emitCsg enumerates all connected complements of the csg S1.
func emitCsg(g *query.Graph, s1 query.BitSet, emit func(a, b query.BitSet)) {
	x := s1.Union(lowSet(s1.First() + 1)) // B_min(S1) ∪ S1
	n := g.Neighborhood(s1).Minus(x)
	if n.Empty() {
		return
	}
	elems := n.Elems()
	for idx := len(elems) - 1; idx >= 0; idx-- {
		v := elems[idx]
		s2 := query.Bit(v)
		emit(s1, s2)
		// Grow S2 within the complement, excluding smaller neighbours of
		// S1 (B_v ∩ N) which later iterations of this loop handle.
		enumerateCmpRec(g, s1, s2, x.Union(n.Intersect(lowSet(v+1))), emit)
	}
}

func enumerateCmpRec(g *query.Graph, s1, s2, x query.BitSet, emit func(a, b query.BitSet)) {
	n := g.Neighborhood(s2).Minus(x)
	if n.Empty() {
		return
	}
	forAllSubsets(n, func(sub query.BitSet) {
		emit(s1, s2.Union(sub))
	})
	forAllSubsets(n, func(sub query.BitSet) {
		enumerateCmpRec(g, s1, s2.Union(sub), x.Union(n), emit)
	})
}

// forAllSubsets calls f on every non-empty subset of s (including s).
func forAllSubsets(s query.BitSet, f func(sub query.BitSet)) {
	if s.Empty() {
		return
	}
	f(s)
	s.SubsetsProper(f)
}

// DP is the exhaustive dynamic program over connected subgraphs: for every
// connected relation set (ascending by size) it considers every split into
// two connected, edge-linked parts. It is correct by construction and fast
// enough for every JOB query; DPccp is the asymptotically better enumerator
// and is tested to produce plans of identical cost.
func DP(sp *Space) (*plan.Node, error) {
	g := sp.G
	full := query.FullSet(g.N)
	table := make(map[query.BitSet]*plan.Node, 1<<uint(g.N))
	for r := 0; r < g.N; r++ {
		table[query.Bit(r)] = sp.leafFor(r)
	}
	g.ConnectedSubsets(func(s query.BitSet) {
		if s.Single() {
			return
		}
		s.SubsetsProper(func(s1 query.BitSet) {
			s2 := s.Minus(s1)
			// Each unordered split appears twice; visit it once. emit
			// checks both orientations and that both halves have plans
			// (i.e. are connected).
			if s1 < s2 {
				sp.emit(table, s1, s2)
			}
		})
	})
	n := table[full]
	if n == nil {
		return nil, fmt.Errorf("enum: no plan for %s", g.Q.ID)
	}
	return n, nil
}

// QuickPick builds one random cross-product-free plan by picking join edges
// uniformly at random until all relations are connected (§6.1, [40]). Join
// algorithms are chosen cheapest-first per join.
func QuickPick(sp *Space, rng *rand.Rand) (*plan.Node, error) {
	return quickPickFrom(sp, rng, sp.leaves())
}

// leaves builds the annotated scan node of every relation once; leaf nodes
// are immutable (joins allocate fresh nodes), so repeated QuickPick runs
// share them instead of re-deriving cardinalities and scan costs per run.
func (sp *Space) leaves() []*plan.Node {
	ls := make([]*plan.Node, sp.G.N)
	for r := range ls {
		ls[r] = sp.leafFor(r)
	}
	return ls
}

func quickPickFrom(sp *Space, rng *rand.Rand, leaves []*plan.Node) (*plan.Node, error) {
	g := sp.G
	comp := make([]*plan.Node, g.N) // component plan per relation (by root)
	find := make([]int, g.N)
	for r := 0; r < g.N; r++ {
		comp[r] = leaves[r]
		find[r] = r
	}
	root := func(r int) int {
		for find[r] != r {
			r = find[r]
		}
		return r
	}
	remaining := g.N
	edgeOrder := rng.Perm(len(g.Edges))
	// A random permutation of edges yields a random spanning sequence; we
	// re-shuffle through the permutation until connected.
	for _, ei := range edgeOrder {
		if remaining == 1 {
			break
		}
		e := g.Edges[ei]
		ru, rv := root(e.U), root(e.V)
		if ru == rv {
			continue
		}
		l, r := comp[ru], comp[rv]
		// Random orientation, cheapest algorithm.
		if rng.Intn(2) == 0 {
			l, r = r, l
		}
		n := sp.joinOf(l, r)
		if n == nil {
			n = sp.joinOf(r, l)
		}
		if n == nil {
			return nil, fmt.Errorf("enum: quickpick could not join %v and %v", l.S, r.S)
		}
		find[ru] = rv
		comp[rv] = n
		remaining--
	}
	if remaining != 1 {
		return nil, fmt.Errorf("enum: quickpick did not connect %s", g.Q.ID)
	}
	return comp[root(0)], nil
}

// QuickPickBest runs QuickPick k times and keeps the cheapest plan under the
// space's own (estimated) costs — the paper's "QuickPick-1000" heuristic.
// Leaf construction is hoisted out of the loop: all k runs share one set of
// annotated scan nodes.
func QuickPickBest(sp *Space, k int, seed int64) (*plan.Node, error) {
	rng := rand.New(rand.NewSource(seed))
	leaves := sp.leaves()
	var best *plan.Node
	for i := 0; i < k; i++ {
		n, err := quickPickFrom(sp, rng, leaves)
		if err != nil {
			return nil, err
		}
		if best == nil || n.ECost < best.ECost {
			best = n
		}
	}
	return best, nil
}

// GOO is Greedy Operator Ordering [11]: start from one join tree per base
// relation and repeatedly combine the connected pair whose join result has
// the smallest estimated cardinality (ties broken by cost), producing a
// bushy plan in O(n^3) combines.
func GOO(sp *Space) (*plan.Node, error) {
	g := sp.G
	var trees []*plan.Node
	for r := 0; r < g.N; r++ {
		trees = append(trees, sp.leafFor(r))
	}
	for len(trees) > 1 {
		bestI, bestJ := -1, -1
		bestCard := math.Inf(1)
		bestCost := math.Inf(1)
		var bestNode *plan.Node
		for i := 0; i < len(trees); i++ {
			for j := i + 1; j < len(trees); j++ {
				if !g.ConnectedPair(trees[i].S, trees[j].S) {
					continue
				}
				card := sp.Cards.Card(trees[i].S.Union(trees[j].S))
				if card > bestCard {
					continue
				}
				n := sp.joinOf(trees[i], trees[j])
				if m := sp.joinOf(trees[j], trees[i]); m != nil && (n == nil || m.ECost < n.ECost) {
					n = m
				}
				if n == nil {
					continue
				}
				if card < bestCard || n.ECost < bestCost {
					bestCard, bestCost, bestI, bestJ, bestNode = card, n.ECost, i, j, n
				}
			}
		}
		if bestNode == nil {
			return nil, fmt.Errorf("enum: GOO stuck on %s", g.Q.ID)
		}
		trees[bestI] = bestNode
		trees = append(trees[:bestJ], trees[bestJ+1:]...)
	}
	return trees[0], nil
}
