package enum

import (
	"math"
	"math/rand"
	"testing"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/imdb"
	"jobench/internal/index"
	"jobench/internal/job"
	"jobench/internal/plan"
	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/storage"
)

// testLab caches a small database + stats for all tests in this package.
type testLab struct {
	db   *storage.Database
	sdb  *stats.DB
	pg   cardest.Estimator
	pkfk *index.Set
	pk   *index.Set
}

var sharedLab *testLab

func lab(t *testing.T) *testLab {
	t.Helper()
	if sharedLab != nil {
		return sharedLab
	}
	db := imdb.Generate(imdb.Config{Scale: 0.05, Seed: 11})
	sdb := stats.AnalyzeDatabase(db, stats.Options{SampleSize: 2000, Seed: 1})
	pkfk, err := imdb.BuildIndexes(db, imdb.PKFK)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := imdb.BuildIndexes(db, imdb.PKOnly)
	if err != nil {
		t.Fatal(err)
	}
	sharedLab = &testLab{db: db, sdb: sdb, pg: cardest.NewPostgres(db, sdb), pkfk: pkfk, pk: pk}
	return sharedLab
}

func (l *testLab) space(t *testing.T, qid string, shape plan.Shape) *Space {
	t.Helper()
	q := job.ByID(qid)
	if q == nil {
		t.Fatalf("no query %s", qid)
	}
	g := query.MustBuildGraph(q)
	return &Space{
		G:          g,
		DB:         l.db,
		Cards:      l.pg.ForQuery(g),
		Model:      costmodel.NewSimple(),
		Indexes:    l.pkfk,
		DisableNLJ: true,
		Shape:      shape,
	}
}

func TestDPProducesValidOptimalPlans(t *testing.T) {
	l := lab(t)
	for _, qid := range []string{"1a", "3b", "6a", "13d", "17b", "25c", "29a", "33a"} {
		sp := l.space(t, qid, plan.Bushy)
		root, err := DP(sp)
		if err != nil {
			t.Fatalf("%s: %v", qid, err)
		}
		if err := plan.Validate(root, sp.G, query.FullSet(sp.G.N)); err != nil {
			t.Fatalf("%s: invalid plan: %v", qid, err)
		}
		if root.ECost <= 0 || math.IsInf(root.ECost, 0) {
			t.Fatalf("%s: cost %g", qid, root.ECost)
		}
	}
}

func TestDPccpMatchesDPOnAllJOBQueries(t *testing.T) {
	l := lab(t)
	for _, q := range job.Workload() {
		g := query.MustBuildGraph(q)
		sp := &Space{
			G: g, DB: l.db, Cards: l.pg.ForQuery(g),
			Model: costmodel.NewSimple(), Indexes: l.pkfk, DisableNLJ: true,
		}
		a, err := DP(sp)
		if err != nil {
			t.Fatalf("%s: DP: %v", q.ID, err)
		}
		b, err := DPccp(sp)
		if err != nil {
			t.Fatalf("%s: DPccp: %v", q.ID, err)
		}
		if err := plan.Validate(b, g, query.FullSet(g.N)); err != nil {
			t.Fatalf("%s: DPccp invalid: %v", q.ID, err)
		}
		if math.Abs(a.ECost-b.ECost) > 1e-6*math.Max(1, a.ECost) {
			t.Errorf("%s: DP cost %.4f != DPccp cost %.4f", q.ID, a.ECost, b.ECost)
		}
	}
}

func TestShapeRestrictionsConformAndOrder(t *testing.T) {
	l := lab(t)
	for _, qid := range []string{"13d", "25c", "6a", "17b"} {
		costs := map[plan.Shape]float64{}
		for _, shape := range []plan.Shape{plan.Bushy, plan.ZigZag, plan.LeftDeep, plan.RightDeep} {
			sp := l.space(t, qid, shape)
			root, err := DP(sp)
			if err != nil {
				t.Fatalf("%s/%v: %v", qid, shape, err)
			}
			if !plan.Conforms(root, shape) {
				t.Fatalf("%s: plan does not conform to %v", qid, shape)
			}
			costs[shape] = root.ECost
		}
		// Bushy <= ZigZag <= LeftDeep (supersets can only be cheaper);
		// right-deep is not comparable to left-deep but >= bushy.
		if costs[plan.Bushy] > costs[plan.ZigZag]+1e-9 {
			t.Errorf("%s: bushy (%g) worse than zig-zag (%g)", qid, costs[plan.Bushy], costs[plan.ZigZag])
		}
		if costs[plan.ZigZag] > costs[plan.LeftDeep]+1e-9 {
			t.Errorf("%s: zig-zag (%g) worse than left-deep (%g)", qid, costs[plan.ZigZag], costs[plan.LeftDeep])
		}
		if costs[plan.Bushy] > costs[plan.RightDeep]+1e-9 {
			t.Errorf("%s: bushy (%g) worse than right-deep (%g)", qid, costs[plan.Bushy], costs[plan.RightDeep])
		}
	}
}

func TestDPIsOptimalAgainstExhaustiveSearch(t *testing.T) {
	// On a small query, DP's plan must be at least as cheap as any plan
	// QuickPick ever generates.
	l := lab(t)
	sp := l.space(t, "3a", plan.Bushy)
	best, err := DP(sp)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 500; i++ {
		p, err := QuickPick(sp, rng)
		if err != nil {
			t.Fatal(err)
		}
		if p.ECost < best.ECost-1e-9 {
			t.Fatalf("QuickPick found cheaper plan (%g < %g): DP not optimal", p.ECost, best.ECost)
		}
	}
}

func TestQuickPickValidAndSeeded(t *testing.T) {
	l := lab(t)
	sp := l.space(t, "13d", plan.Bushy)
	rng := rand.New(rand.NewSource(5))
	seen := map[float64]bool{}
	for i := 0; i < 50; i++ {
		p, err := QuickPick(sp, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(p, sp.G, query.FullSet(sp.G.N)); err != nil {
			t.Fatalf("invalid quickpick plan: %v", err)
		}
		seen[p.ECost] = true
	}
	if len(seen) < 5 {
		t.Fatalf("only %d distinct plan costs in 50 random plans", len(seen))
	}
	// Determinism for equal seeds.
	a, _ := QuickPickBest(sp, 100, 3)
	b, _ := QuickPickBest(sp, 100, 3)
	if a.ECost != b.ECost {
		t.Fatal("QuickPickBest not deterministic")
	}
	// Best-of-1000 is at least as good as best-of-10.
	c, _ := QuickPickBest(sp, 10, 3)
	if a.ECost > c.ECost+1e-9 {
		t.Fatalf("best-of-100 (%g) worse than best-of-10 (%g)", a.ECost, c.ECost)
	}
}

func TestGOOValidAndBetterThanWorstRandom(t *testing.T) {
	l := lab(t)
	for _, qid := range []string{"6a", "13d", "25c", "29a"} {
		sp := l.space(t, qid, plan.Bushy)
		g, err := GOO(sp)
		if err != nil {
			t.Fatalf("%s: %v", qid, err)
		}
		if err := plan.Validate(g, sp.G, query.FullSet(sp.G.N)); err != nil {
			t.Fatalf("%s: invalid GOO plan: %v", qid, err)
		}
		dp, err := DP(sp)
		if err != nil {
			t.Fatal(err)
		}
		if g.ECost < dp.ECost-1e-9 {
			t.Fatalf("%s: GOO (%g) beat DP (%g): DP not optimal", qid, g.ECost, dp.ECost)
		}
	}
}

func TestIndexAvailabilityGatesINL(t *testing.T) {
	l := lab(t)
	// Without indexes, no plan may contain an IndexNLJoin; with PK+FK
	// indexes on this workload, DP should use some.
	var countINL func(n *plan.Node) int
	countINL = func(n *plan.Node) int {
		if n == nil || n.IsLeaf() {
			return 0
		}
		c := 0
		if n.Algo == plan.IndexNLJoin {
			c = 1
		}
		return c + countINL(n.Left) + countINL(n.Right)
	}
	sawINL := false
	for _, qid := range []string{"13d", "25c", "17b", "6a", "29a"} {
		sp := l.space(t, qid, plan.Bushy)
		sp.Indexes = nil // no indexes
		root, err := DP(sp)
		if err != nil {
			t.Fatal(err)
		}
		if countINL(root) != 0 {
			t.Fatalf("%s: INL join without any index", qid)
		}
		sp = l.space(t, qid, plan.Bushy)
		root, err = DP(sp)
		if err != nil {
			t.Fatal(err)
		}
		if countINL(root) > 0 {
			sawINL = true
		}
	}
	if !sawINL {
		t.Error("no query used an index-nested-loop join under PK+FK indexes")
	}
}

func TestDisableNLJ(t *testing.T) {
	l := lab(t)
	var countNL func(n *plan.Node) int
	countNL = func(n *plan.Node) int {
		if n == nil || n.IsLeaf() {
			return 0
		}
		c := 0
		if n.Algo == plan.NestedLoopJoin {
			c = 1
		}
		return c + countNL(n.Left) + countNL(n.Right)
	}
	for _, qid := range []string{"13d", "29a"} {
		sp := l.space(t, qid, plan.Bushy)
		sp.DisableNLJ = true
		root, err := DP(sp)
		if err != nil {
			t.Fatal(err)
		}
		if countNL(root) != 0 {
			t.Fatalf("%s: nested-loop join despite DisableNLJ", qid)
		}
	}
}

func TestRightDeepCannotUseUpperIndexes(t *testing.T) {
	l := lab(t)
	// In a right-deep plan, only the bottom join may be an INL (§6.2).
	sp := l.space(t, "13d", plan.RightDeep)
	root, err := DP(sp)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *plan.Node, isBottom bool)
	walk = func(n *plan.Node, isBottom bool) {
		if n == nil || n.IsLeaf() {
			return
		}
		if n.Algo == plan.IndexNLJoin && !n.Right.IsLeaf() {
			t.Fatal("INL with non-leaf right child in right-deep plan")
		}
		walk(n.Right, false)
	}
	walk(root, true)
	if !plan.Conforms(root, plan.RightDeep) {
		t.Fatal("plan not right-deep")
	}
}
