package experiments

import (
	"context"
	"fmt"
	"strings"

	"jobench/internal/cardest"
	"jobench/internal/metrics"
	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/tpch"
	"jobench/internal/truecard"
)

// maxFigure3Joins is the deepest subexpression size the estimation-quality
// experiments measure (the paper's Fig. 3 x-axis runs from 0 to 6 joins).
const maxFigure3Joins = 6

// Table1Result holds the q-error percentiles for base-table selections.
type Table1Result struct {
	Selections int
	Rows       []Table1Row
}

// Table1Row is one system's row of Table 1.
type Table1Row struct {
	System                    string
	Median, P90, P95, Maximum float64
}

// Table1 measures base-table selection q-errors for all five systems
// (paper Table 1).
func (l *Lab) Table1() (*Table1Result, error) {
	return l.Table1Context(context.Background())
}

// Table1Context is Table1 under a caller-controlled context.
func (l *Lab) Table1Context(ctx context.Context) (*Table1Result, error) {
	res := &Table1Result{}
	for _, q := range l.Queries {
		for _, r := range q.Rels {
			if len(r.Preds) > 0 {
				res.Selections++
			}
		}
	}
	for _, est := range l.Systems() {
		// One cell per query: q-errors of every predicated base table.
		perQuery, err := runQueries(ctx, l, func(ctx context.Context, qi int, q *query.Query) ([]float64, error) {
			st, err := l.truthCtx(ctx, q.ID)
			if err != nil {
				return nil, err
			}
			prov := est.ForQuery(l.Graphs[q.ID])
			var qerrs []float64
			for i, r := range q.Rels {
				if len(r.Preds) == 0 {
					continue
				}
				truth, _ := st.Card(query.Bit(i))
				qerrs = append(qerrs, metrics.QError(prov.Card(query.Bit(i)), truth))
			}
			return qerrs, nil
		})
		if err != nil {
			return nil, err
		}
		var qerrs []float64
		for _, qs := range perQuery {
			qerrs = append(qerrs, qs...)
		}
		res.Rows = append(res.Rows, Table1Row{
			System:  est.Name(),
			Median:  metrics.Median(qerrs),
			P90:     metrics.Percentile(qerrs, 90),
			P95:     metrics.Percentile(qerrs, 95),
			Maximum: metrics.Max(qerrs),
		})
	}
	return res, nil
}

// Render formats Table 1 like the paper.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: q-errors for %d base table selections\n", r.Selections)
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s\n", "", "median", "90th", "95th", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %8.2f %8.1f %8.1f %8.0f\n",
			row.System, row.Median, row.P90, row.P95, row.Maximum)
	}
	return b.String()
}

// Figure3Result holds, per system and per join count, the boxplot of signed
// estimation errors, plus the §3.2 "off by >10x" percentages.
type Figure3Result struct {
	Systems []Figure3System
}

// Figure3System is one panel of Fig. 3.
type Figure3System struct {
	System string
	// ByJoins[k] summarises the signed errors (est/true; <1 means
	// underestimation) of all subexpressions with k joins.
	ByJoins []metrics.Boxplot
	// FracOffBy10[k] is the fraction of estimates at k joins wrong by a
	// factor >= 10 in either direction.
	FracOffBy10 []float64
}

// Figure3 computes the join estimation error distributions of Fig. 3.
func (l *Lab) Figure3() (*Figure3Result, error) {
	return l.Figure3Context(context.Background())
}

// Figure3Context is Figure3 under a caller-controlled context.
func (l *Lab) Figure3Context(ctx context.Context) (*Figure3Result, error) {
	// One cell per query: the signed errors of every connected
	// subexpression, per system and join count.
	perQuery, err := runQueries(ctx, l, func(ctx context.Context, qi int, q *query.Query) ([][][]float64, error) {
		g := l.Graphs[q.ID]
		st, err := l.truthCtx(ctx, q.ID)
		if err != nil {
			return nil, err
		}
		provs := make([]cardest.Provider, len(l.Systems()))
		for i, est := range l.Systems() {
			provs[i] = est.ForQuery(g)
		}
		errs := make([][][]float64, len(provs))
		for i := range errs {
			errs[i] = make([][]float64, maxFigure3Joins+1)
		}
		g.ConnectedSubsets(func(s query.BitSet) {
			nj := len(g.EdgesWithin(s))
			if nj > maxFigure3Joins {
				return
			}
			truth, ok := st.Card(s)
			if !ok {
				return
			}
			for i, p := range provs {
				errs[i][nj] = append(errs[i][nj], metrics.SignedError(p.Card(s), truth))
			}
		})
		return errs, nil
	})
	if err != nil {
		return nil, err
	}
	errsBySystem := make([][][]float64, len(l.Systems()))
	for i := range errsBySystem {
		errsBySystem[i] = make([][]float64, maxFigure3Joins+1)
	}
	for _, errs := range perQuery {
		for i := range errs {
			for nj := range errs[i] {
				errsBySystem[i][nj] = append(errsBySystem[i][nj], errs[i][nj]...)
			}
		}
	}
	res := &Figure3Result{}
	for i, est := range l.Systems() {
		sys := Figure3System{System: est.Name()}
		for nj := 0; nj <= maxFigure3Joins; nj++ {
			xs := errsBySystem[i][nj]
			sys.ByJoins = append(sys.ByJoins, metrics.NewBoxplot(xs))
			off := 0
			for _, x := range xs {
				if x >= 10 || x <= 0.1 {
					off++
				}
			}
			frac := 0.0
			if len(xs) > 0 {
				frac = float64(off) / float64(len(xs))
			}
			sys.FracOffBy10 = append(sys.FracOffBy10, frac)
		}
		res.Systems = append(res.Systems, sys)
	}
	return res, nil
}

// Render formats the Fig. 3 panels as text boxplots.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: signed estimation error (est/true) by number of joins\n")
	for _, sys := range r.Systems {
		fmt.Fprintf(&b, "\n%s\n", sys.System)
		fmt.Fprintf(&b, "%6s %9s %9s %9s %9s %9s %7s %7s\n",
			"joins", "p5", "p25", "median", "p75", "p95", "n", ">10x")
		for nj, box := range sys.ByJoins {
			if box.N == 0 {
				continue
			}
			fmt.Fprintf(&b, "%6d %9.3g %9.3g %9.3g %9.3g %9.3g %7d %6.0f%%\n",
				nj, box.P5, box.P25, box.P50, box.P75, box.P95, box.N, 100*sys.FracOffBy10[nj])
		}
	}
	return b.String()
}

// Figure4Result compares PostgreSQL estimation errors on individual JOB
// queries against TPC-H queries.
type Figure4Result struct {
	Panels []Figure4Panel
}

// Figure4Panel is one per-query boxplot column group.
type Figure4Panel struct {
	Query   string
	ByJoins []metrics.Boxplot
}

// Figure4 runs the PostgreSQL estimator over 4 JOB queries and the 3 mini
// TPC-H queries (generated uniform and independent), reproducing the
// contrast of Fig. 4: TPC-H is easy, JOB is not.
func (l *Lab) Figure4() (*Figure4Result, error) {
	return l.Figure4Context(context.Background())
}

// Figure4Context is Figure4 under a caller-controlled context.
func (l *Lab) Figure4Context(ctx context.Context) (*Figure4Result, error) {
	var jobIDs []string
	for _, qid := range []string{"6a", "16d", "17b", "25c"} {
		if _, ok := l.Graphs[qid]; ok {
			jobIDs = append(jobIDs, qid)
		}
	}
	jobPanels, err := RunCells(ctx, l.Cfg.Parallel, jobIDs,
		func(ctx context.Context, qid string) (Figure4Panel, error) {
			g := l.Graphs[qid]
			st, err := l.truthCtx(ctx, qid)
			if err != nil {
				return Figure4Panel{}, err
			}
			return figure4Panel("JOB "+qid, g, l.Postgres.ForQuery(g), st), nil
		})
	if err != nil {
		return nil, err
	}

	// The TPC-H side gets its own little lab.
	tdb := tpch.Generate(tpch.Config{Scale: l.Cfg.Scale, Seed: l.Cfg.Seed})
	tstats := stats.AnalyzeDatabase(tdb, stats.Options{SampleSize: 30000, Seed: l.Cfg.Seed})
	tpg := cardest.NewPostgres(tdb, tstats)
	tpchPanels, err := RunCells(ctx, l.Cfg.Parallel, tpch.Fig4Queries(),
		func(ctx context.Context, q *query.Query) (Figure4Panel, error) {
			g := query.MustBuildGraph(q)
			st, err := truecard.ComputeContext(ctx, tdb, g, truecard.Options{Parallel: l.Cfg.Parallel})
			if err != nil {
				return Figure4Panel{}, err
			}
			return figure4Panel("TPC-H "+strings.TrimPrefix(q.ID, "tpch"), g, tpg.ForQuery(g), st), nil
		})
	if err != nil {
		return nil, err
	}
	return &Figure4Result{Panels: append(jobPanels, tpchPanels...)}, nil
}

func figure4Panel(label string, g *query.Graph, prov cardest.Provider, st *truecard.Store) Figure4Panel {
	byJoins := make([][]float64, maxFigure3Joins+1)
	g.ConnectedSubsets(func(s query.BitSet) {
		nj := len(g.EdgesWithin(s))
		if nj > maxFigure3Joins {
			return
		}
		truth, ok := st.Card(s)
		if !ok {
			return
		}
		byJoins[nj] = append(byJoins[nj], metrics.SignedError(prov.Card(s), truth))
	})
	p := Figure4Panel{Query: label}
	for _, xs := range byJoins {
		p.ByJoins = append(p.ByJoins, metrics.NewBoxplot(xs))
	}
	return p
}

// MaxQError returns the worst q-error over all subexpressions of a panel.
func (p Figure4Panel) MaxQError() float64 {
	worst := 1.0
	for _, box := range p.ByJoins {
		if box.N == 0 {
			continue
		}
		for _, v := range []float64{box.MinValue, box.MaxValue} {
			q := v
			if q < 1 {
				q = 1 / q
			}
			if q > worst {
				worst = q
			}
		}
	}
	return worst
}

// Render formats Fig. 4.
func (r *Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: PostgreSQL estimation errors, JOB vs TPC-H (est/true)\n")
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "\n%s (worst q-error %.1f)\n", p.Query, p.MaxQError())
		fmt.Fprintf(&b, "%6s %9s %9s %9s %7s\n", "joins", "p5", "median", "p95", "n")
		for nj, box := range p.ByJoins {
			if box.N == 0 {
				continue
			}
			fmt.Fprintf(&b, "%6d %9.3g %9.3g %9.3g %7d\n", nj, box.P5, box.P50, box.P95, box.N)
		}
	}
	return b.String()
}

// Figure5Result contrasts PostgreSQL with estimated vs true distinct counts.
type Figure5Result struct {
	Default      []metrics.Boxplot // by join count
	TrueDistinct []metrics.Boxplot
}

// Figure5 reproduces the paper's §3.4 experiment: replacing the sampled
// distinct counts with exact ones changes the estimates — and makes the
// underestimation trend *worse*, the "two wrongs make a right" effect.
func (l *Lab) Figure5() (*Figure5Result, error) {
	return l.Figure5Context(context.Background())
}

// Figure5Context is Figure5 under a caller-controlled context.
func (l *Lab) Figure5Context(ctx context.Context) (*Figure5Result, error) {
	type cellResult struct {
		def, td [][]float64
	}
	perQuery, err := runQueries(ctx, l, func(ctx context.Context, qi int, q *query.Query) (cellResult, error) {
		g := l.Graphs[q.ID]
		st, err := l.truthCtx(ctx, q.ID)
		if err != nil {
			return cellResult{}, err
		}
		pDef := l.Postgres.ForQuery(g)
		pTD := l.PostgresTD.ForQuery(g)
		out := cellResult{
			def: make([][]float64, maxFigure3Joins+1),
			td:  make([][]float64, maxFigure3Joins+1),
		}
		g.ConnectedSubsets(func(s query.BitSet) {
			nj := len(g.EdgesWithin(s))
			if nj > maxFigure3Joins {
				return
			}
			truth, ok := st.Card(s)
			if !ok {
				return
			}
			out.def[nj] = append(out.def[nj], metrics.SignedError(pDef.Card(s), truth))
			out.td[nj] = append(out.td[nj], metrics.SignedError(pTD.Card(s), truth))
		})
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	def := make([][]float64, maxFigure3Joins+1)
	td := make([][]float64, maxFigure3Joins+1)
	for _, c := range perQuery {
		for nj := 0; nj <= maxFigure3Joins; nj++ {
			def[nj] = append(def[nj], c.def[nj]...)
			td[nj] = append(td[nj], c.td[nj]...)
		}
	}
	res := &Figure5Result{}
	for nj := 0; nj <= maxFigure3Joins; nj++ {
		res.Default = append(res.Default, metrics.NewBoxplot(def[nj]))
		res.TrueDistinct = append(res.TrueDistinct, metrics.NewBoxplot(td[nj]))
	}
	return res, nil
}

// Render formats Fig. 5.
func (r *Figure5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: PostgreSQL estimates with default vs true distinct counts (est/true medians)\n")
	fmt.Fprintf(&b, "%6s %16s %16s\n", "joins", "default", "true distinct")
	for nj := range r.Default {
		if r.Default[nj].N == 0 {
			continue
		}
		fmt.Fprintf(&b, "%6d %16.3g %16.3g\n", nj, r.Default[nj].P50, r.TrueDistinct[nj].P50)
	}
	return b.String()
}
