package experiments

import (
	"strings"
	"sync"
	"testing"

	"jobench/internal/plan"
)

var (
	labOnce sync.Once
	testLab *Lab
	labErr  error
)

// skipSlowInShort guards the tests that execute the full workload through
// the engine (the multi-second sweeps); `go test -short` keeps only the
// estimation-quality tests, which still exercise every layer above it.
func skipSlowInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("slow full-workload sweep; run without -short")
	}
}

// sharedLab builds one small lab for the whole test package and warms the
// true-cardinality cache in parallel.
func sharedLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		testLab, labErr = NewLab(QuickConfig())
		if labErr == nil {
			labErr = testLab.Warmup()
		}
	})
	if labErr != nil {
		t.Fatal(labErr)
	}
	return testLab
}

func TestTable1ShapesLikePaper(t *testing.T) {
	l := sharedLab(t)
	res, err := l.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d systems, want 5", len(res.Rows))
	}
	if res.Selections < 200 {
		t.Fatalf("only %d base selections", res.Selections)
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.System] = r
		// Medians near 1 for all systems (paper: 1.00-1.06).
		if r.Median > 5 {
			t.Errorf("%s: median base q-error %.2f, want near 1", r.System, r.Median)
		}
		if r.Maximum < r.P95 || r.P95 < r.P90 || r.P90 < r.Median {
			t.Errorf("%s: percentiles not monotone: %+v", r.System, r)
		}
	}
	// DBMS C's magic constants must give it by far the worst tail among
	// histogram-based systems (paper: 95th percentile 5367 vs 2-30).
	if byName["DBMS C"].P95 < byName["PostgreSQL"].P95 {
		t.Errorf("DBMS C 95th (%.1f) not above PostgreSQL (%.1f)",
			byName["DBMS C"].P95, byName["PostgreSQL"].P95)
	}
	if !strings.Contains(res.Render(), "Table 1") {
		t.Fatal("render broken")
	}
}

func TestFigure3UnderestimationGrows(t *testing.T) {
	l := sharedLab(t)
	res, err := l.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 5 {
		t.Fatalf("%d systems", len(res.Systems))
	}
	for _, sys := range res.Systems {
		if sys.ByJoins[0].N == 0 || sys.ByJoins[3].N == 0 {
			t.Fatalf("%s: missing error populations", sys.System)
		}
	}
	pg := res.Systems[0]
	// The paper's central finding: the median drifts into underestimation
	// as joins increase, and the spread (p95-p5) widens.
	if pg.ByJoins[4].P50 >= pg.ByJoins[0].P50 {
		t.Errorf("PostgreSQL median at 4 joins (%.3g) not below 0 joins (%.3g)",
			pg.ByJoins[4].P50, pg.ByJoins[0].P50)
	}
	spread0 := pg.ByJoins[0].P95 / pg.ByJoins[0].P5
	spread4 := pg.ByJoins[4].P95 / pg.ByJoins[4].P5
	if spread4 < spread0 {
		t.Errorf("error spread at 4 joins (%.3g) not wider than at 0 (%.3g)", spread4, spread0)
	}
	// §3.2: the fraction off by >10x grows with the join count.
	if pg.FracOffBy10[3] <= pg.FracOffBy10[1]/2 {
		t.Errorf(">10x fraction at 3 joins (%.2f) not above 1 join (%.2f)",
			pg.FracOffBy10[3], pg.FracOffBy10[1])
	}
	// DBMS A's damping keeps deep medians above PostgreSQL's.
	var a Figure3System
	for _, sys := range res.Systems {
		if sys.System == "DBMS A" {
			a = sys
		}
	}
	if a.ByJoins[4].P50 < pg.ByJoins[4].P50 {
		t.Errorf("DBMS A deep median (%.3g) below PostgreSQL (%.3g): damping not visible",
			a.ByJoins[4].P50, pg.ByJoins[4].P50)
	}
	if !strings.Contains(res.Render(), "Figure 3") {
		t.Fatal("render broken")
	}
}

func TestFigure4TPCHIsEasy(t *testing.T) {
	l := sharedLab(t)
	res, err := l.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 7 {
		t.Fatalf("%d panels, want 7 (4 JOB + 3 TPC-H)", len(res.Panels))
	}
	worstJOB, worstTPCH := 1.0, 1.0
	for _, p := range res.Panels {
		if strings.HasPrefix(p.Query, "JOB") {
			if q := p.MaxQError(); q > worstJOB {
				worstJOB = q
			}
		} else {
			if q := p.MaxQError(); q > worstTPCH {
				worstTPCH = q
			}
		}
	}
	// The paper's contrast: JOB errors dwarf TPC-H errors.
	if worstJOB < 5*worstTPCH {
		t.Errorf("JOB worst q-error (%.1f) not far above TPC-H (%.1f)", worstJOB, worstTPCH)
	}
	if !strings.Contains(res.Render(), "TPC-H") {
		t.Fatal("render broken")
	}
}

func TestFigure5TrueDistinctWorsensUnderestimation(t *testing.T) {
	l := sharedLab(t)
	res, err := l.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	// The paradox of §3.4: exact distinct counts push the medians further
	// down (the sampled, underestimated counts inflated the estimates,
	// accidentally cancelling the independence error). Verify at >= 3
	// joins where the effect compounds.
	worse := 0
	checked := 0
	for nj := 3; nj < len(res.Default); nj++ {
		if res.Default[nj].N == 0 {
			continue
		}
		checked++
		if res.TrueDistinct[nj].P50 <= res.Default[nj].P50 {
			worse++
		}
	}
	if checked == 0 {
		t.Fatal("no deep subexpressions")
	}
	if worse == 0 {
		t.Error("true distinct counts never deepened underestimation")
	}
	if !strings.Contains(res.Render(), "Figure 5") {
		t.Fatal("render broken")
	}
}

func TestSection41SlowdownTable(t *testing.T) {
	skipSlowInShort(t)
	l := sharedLab(t)
	res, err := l.Section41()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		sum := 0.0
		for _, f := range row.Buckets {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: bucket fractions sum to %f", row.System, sum)
		}
		// With the robust engine most queries stay within 10x (paper:
		// >=78% under 2x for the best estimator; we only require the bulk
		// to be sane at test scale).
		within10 := row.Buckets[0] + row.Buckets[1] + row.Buckets[2] + row.Buckets[3]
		if within10 < 0.5 {
			t.Errorf("%s: only %.0f%% of queries within 10x of optimal", row.System, 100*within10)
		}
	}
	if !strings.Contains(res.Render(), "Section 4.1") {
		t.Fatal("render broken")
	}
}

func TestFigure6EngineHardeningHelps(t *testing.T) {
	skipSlowInShort(t)
	l := sharedLab(t)
	res, err := l.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 3 {
		t.Fatalf("%d variants", len(res.Variants))
	}
	badFrac := func(v Figure6Variant) float64 { return v.Buckets[4] + v.Buckets[5] }
	a, c := res.Variants[0], res.Variants[2]
	// Hardening must not make things worse, and usually strictly helps.
	if badFrac(c) > badFrac(a)+1e-9 {
		t.Errorf("hardened engine has more >=10x queries (%.2f) than default (%.2f)", badFrac(c), badFrac(a))
	}
	if c.Timeouts > a.Timeouts {
		t.Errorf("hardened engine times out more (%d) than default (%d)", c.Timeouts, a.Timeouts)
	}
	if !strings.Contains(res.Render(), "Figure 6") {
		t.Fatal("render broken")
	}
}

func TestFigure7MoreIndexesHarderProblem(t *testing.T) {
	skipSlowInShort(t)
	l := sharedLab(t)
	res, err := l.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 2 {
		t.Fatalf("%d variants", len(res.Variants))
	}
	slowFrac := func(v Figure6Variant) float64 {
		return v.Buckets[3] + v.Buckets[4] + v.Buckets[5] // >= 2x
	}
	pk, fk := res.Variants[0], res.Variants[1]
	// Paper Fig. 7: with FK indexes, far more queries are >= 2x off.
	if slowFrac(fk) < slowFrac(pk) {
		t.Errorf("FK config (%.2f >=2x) not harder than PK (%.2f)", slowFrac(fk), slowFrac(pk))
	}
}

func TestFigure8CostModels(t *testing.T) {
	skipSlowInShort(t)
	l := sharedLab(t)
	res, err := l.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 6 {
		t.Fatalf("%d panels, want 6", len(res.Panels))
	}
	byKey := map[string]Figure8Panel{}
	for _, p := range res.Panels {
		key := p.Model
		if p.TrueCards {
			key += "/true"
		} else {
			key += "/est"
		}
		byKey[key] = p
	}
	// True cardinalities make every model a better runtime predictor than
	// estimates (paper Fig. 8 a vs b).
	for _, m := range []string{"postgres", "tuned postgres", "simple (C_mm)"} {
		est, tr := byKey[m+"/est"], byKey[m+"/true"]
		if tr.Fit.Pearson < est.Fit.Pearson-0.05 {
			t.Errorf("%s: correlation under truth (%.3f) worse than under estimates (%.3f)",
				m, tr.Fit.Pearson, est.Fit.Pearson)
		}
		if tr.Fit.Pearson < 0.5 {
			t.Errorf("%s: correlation under truth only %.3f", m, tr.Fit.Pearson)
		}
	}
	if len(res.GeoMeanRuntime) != 3 {
		t.Fatalf("geo means: %v", res.GeoMeanRuntime)
	}
	if !strings.Contains(res.Render(), "Figure 8") {
		t.Fatal("render broken")
	}
}

func TestFigure9AndSection61(t *testing.T) {
	skipSlowInShort(t)
	l := sharedLab(t)
	res, err := l.Figure9(400)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 15 {
		t.Fatalf("%d panels, want 5 queries x 3 configs", len(res.Panels))
	}
	for _, p := range res.Panels {
		if p.Box.MinValue < p.Optimal-1e-9 {
			t.Errorf("%s/%s: random plan (%.3g) beat the optimal plan (%.3g)",
				p.Query, p.Config, p.Box.MinValue, p.Optimal)
		}
	}
	// §6.1: good plans get rarer as indexes are added; the cost spread
	// explodes with FK indexes.
	if res.Frac15["PK + FK indexes"] > res.Frac15["no indexes"] {
		t.Errorf("good plans more common with FK indexes (%.2f) than without (%.2f)",
			res.Frac15["PK + FK indexes"], res.Frac15["no indexes"])
	}
	if res.MeanWorstBest["PK + FK indexes"] < res.MeanWorstBest["PK indexes"] {
		t.Errorf("worst/best ratio with FK (%.0f) below PK (%.0f)",
			res.MeanWorstBest["PK + FK indexes"], res.MeanWorstBest["PK indexes"])
	}
	if !strings.Contains(res.Render(), "Section 6.1") {
		t.Fatal("render broken")
	}
}

func TestTable2TreeShapes(t *testing.T) {
	skipSlowInShort(t)
	l := sharedLab(t)
	res, err := l.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(res.Rows))
	}
	get := func(shape plan.Shape, cfg string) Table2Row {
		for _, r := range res.Rows {
			if r.Shape == shape && r.Config == cfg {
				return r
			}
		}
		t.Fatalf("missing row %v/%s", shape, cfg)
		return Table2Row{}
	}
	for _, r := range res.Rows {
		if r.Median < 1-1e-9 {
			t.Errorf("%v/%s: median %.2f < 1 (restriction cannot beat bushy)", r.Shape, r.Config, r.Median)
		}
	}
	// Paper Table 2's ordering under FK indexes: zig-zag <= left-deep <<
	// right-deep.
	fkZ, fkL, fkR := get(plan.ZigZag, "PK + FK indexes"), get(plan.LeftDeep, "PK + FK indexes"), get(plan.RightDeep, "PK + FK indexes")
	if fkZ.Median > fkL.Median+1e-9 {
		t.Errorf("zig-zag median (%.2f) above left-deep (%.2f)", fkZ.Median, fkL.Median)
	}
	if fkR.Median < fkL.Median {
		t.Errorf("right-deep median (%.2f) below left-deep (%.2f)", fkR.Median, fkL.Median)
	}
	if fkR.Max < 10 {
		t.Errorf("right-deep max only %.1fx with FK indexes; paper reports catastrophic factors", fkR.Max)
	}
	if !strings.Contains(res.Render(), "Table 2") {
		t.Fatal("render broken")
	}
}

func TestTable3HeuristicsLeavePerformance(t *testing.T) {
	skipSlowInShort(t)
	l := sharedLab(t)
	res, err := l.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("%d rows, want 12", len(res.Rows))
	}
	get := func(alg, cards, cfg string) Table3Row {
		for _, r := range res.Rows {
			if r.Algorithm == alg && strings.HasPrefix(r.Cards, cards) && r.Config == cfg {
				return r
			}
		}
		t.Fatalf("missing row %s/%s/%s", alg, cards, cfg)
		return Table3Row{}
	}
	// DP with true cardinalities is optimal by definition.
	for _, cfg := range []string{"PK indexes", "PK + FK indexes"} {
		dpTrue := get("Dynamic Programming", "true", cfg)
		if dpTrue.Median != 1 || dpTrue.Max > 1+1e-6 {
			t.Errorf("%s: DP under truth not optimal: %+v", cfg, dpTrue)
		}
		// Heuristics never beat DP under the same provider.
		for _, alg := range []string{"Quickpick-1000", "Greedy Operator Ordering"} {
			h := get(alg, "true", cfg)
			if h.Median < dpTrue.Median-1e-9 {
				t.Errorf("%s/%s: heuristic median %.2f beats DP", alg, cfg, h.Median)
			}
		}
		dpEst := get("Dynamic Programming", "PostgreSQL", cfg)
		if dpEst.Median < 1-1e-9 {
			t.Errorf("%s: DP under estimates median %.3f < 1", cfg, dpEst.Median)
		}
	}
	if !strings.Contains(res.Render(), "Table 3") {
		t.Fatal("render broken")
	}
}

func TestPlanSpaceSize(t *testing.T) {
	l := sharedLab(t)
	sizes := l.PlanSpaceSize()
	if len(sizes) != len(l.Queries) {
		t.Fatalf("%d sizes", len(sizes))
	}
	if sizes["13d"] < 20 {
		t.Errorf("13d search space suspiciously small: %d", sizes["13d"])
	}
}

func TestLabBasics(t *testing.T) {
	l := sharedLab(t)
	if len(l.QueryIDs()) != len(l.Queries) {
		t.Fatal("QueryIDs mismatch")
	}
	if _, err := l.Truth("nonexistent"); err == nil {
		t.Fatal("Truth accepted unknown query")
	}
	if len(l.Systems()) != 5 {
		t.Fatal("want 5 systems")
	}
}
