package experiments

import (
	"context"
	"fmt"
	"strings"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/engine"
	"jobench/internal/enum"
	"jobench/internal/metrics"
	"jobench/internal/plan"
	"jobench/internal/query"
)

// This file holds the extension studies beyond the paper's figures (see
// DESIGN.md §5): a damping-exponent ablation for the DBMS A profile, a
// hash-table rehashing ablation across underestimation factors, and an
// evaluation of the risk-hedging ("pessimistic") plan selection the paper
// proposes as future work in §8.

// DampingAblationResult sweeps the damping exponent of the DBMS A profile.
type DampingAblationResult struct {
	Rows []DampingAblationRow
}

// DampingAblationRow reports per-exponent medians of the signed error at
// selected join depths, plus the fraction off by more than 10x.
type DampingAblationRow struct {
	Exponent    float64
	MedianAt    map[int]float64
	FracOffBy10 float64
}

// DampingAblation explains the DBMS A reverse-engineering: exponent 1.0 is
// plain independence (systematic underestimation), small exponents
// overshoot into overestimation, and the profile's default sits in between.
func (l *Lab) DampingAblation(exponents []float64) (*DampingAblationResult, error) {
	return l.DampingAblationContext(context.Background(), exponents)
}

// DampingAblationContext is DampingAblation under a caller-controlled
// context.
func (l *Lab) DampingAblationContext(ctx context.Context, exponents []float64) (*DampingAblationResult, error) {
	if len(exponents) == 0 {
		exponents = []float64{1.0, 0.9, 0.82, 0.7, 0.5}
	}
	res := &DampingAblationResult{}
	for _, exp := range exponents {
		est := cardest.NewDamped(l.DB, l.Stats, exp)
		type cellResult struct {
			byJoins    map[int][]float64
			off, total int
		}
		perQuery, err := runQueries(ctx, l, func(ctx context.Context, qi int, q *query.Query) (cellResult, error) {
			g := l.Graphs[q.ID]
			st, err := l.truthCtx(ctx, q.ID)
			if err != nil {
				return cellResult{}, err
			}
			prov := est.ForQuery(g)
			out := cellResult{byJoins: make(map[int][]float64)}
			g.ConnectedSubsets(func(s query.BitSet) {
				nj := len(g.EdgesWithin(s))
				if nj == 0 || nj > maxFigure3Joins {
					return
				}
				truth, ok := st.Card(s)
				if !ok {
					return
				}
				e := metrics.SignedError(prov.Card(s), truth)
				out.byJoins[nj] = append(out.byJoins[nj], e)
				out.total++
				if e >= 10 || e <= 0.1 {
					out.off++
				}
			})
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		byJoins := make(map[int][]float64)
		off, total := 0, 0
		for _, c := range perQuery {
			for nj, es := range c.byJoins {
				byJoins[nj] = append(byJoins[nj], es...)
			}
			off += c.off
			total += c.total
		}
		row := DampingAblationRow{Exponent: exp, MedianAt: make(map[int]float64)}
		for _, nj := range []int{2, 4, 6} {
			row.MedianAt[nj] = metrics.Median(byJoins[nj])
		}
		if total > 0 {
			row.FracOffBy10 = float64(off) / float64(total)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the damping ablation.
func (r *DampingAblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: DBMS A damping exponent (median est/true by join count)\n")
	fmt.Fprintf(&b, "%10s %12s %12s %12s %10s\n", "exponent", "2 joins", "4 joins", "6 joins", ">10x off")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10.2f %12.3g %12.3g %12.3g %9.0f%%\n",
			row.Exponent, row.MedianAt[2], row.MedianAt[4], row.MedianAt[6], 100*row.FracOffBy10)
	}
	return b.String()
}

// RehashAblationResult measures hash-join work as a function of how badly
// the build side was underestimated, with and without runtime rehashing.
type RehashAblationResult struct {
	Rows []RehashAblationRow
}

// RehashAblationRow is one underestimation factor.
type RehashAblationRow struct {
	UnderestimationFactor float64
	WorkFixed             int64
	WorkRehash            int64
}

// RehashAblation isolates the §4.1 hash-table mechanism on one query: the
// plan is fixed; only the build-side estimates fed to the executor change.
func (l *Lab) RehashAblation(qid string, factors []float64) (*RehashAblationResult, error) {
	return l.RehashAblationContext(context.Background(), qid, factors)
}

// RehashAblationContext is RehashAblation under a caller-controlled
// context.
func (l *Lab) RehashAblationContext(ctx context.Context, qid string, factors []float64) (*RehashAblationResult, error) {
	if len(factors) == 0 {
		factors = []float64{1, 10, 100, 1000}
	}
	g := l.Graphs[qid]
	if g == nil {
		return nil, fmt.Errorf("experiments: unknown query %s", qid)
	}
	st, err := l.truthCtx(ctx, qid)
	if err != nil {
		return nil, err
	}
	truth := cardest.True{Store: st}
	sp := &enum.Space{
		G: g, DB: l.DB, Cards: truth, Model: costmodel.NewSimple(),
		Indexes: l.IdxPK, DisableNLJ: true,
	}
	optimal, err := enum.DP(sp)
	if err != nil {
		return nil, err
	}
	// Force hash joins so every join exercises the mechanism.
	var force func(n *plan.Node)
	force = func(n *plan.Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		n.Algo = plan.HashJoin
		force(n.Left)
		force(n.Right)
	}
	force(optimal)

	res := &RehashAblationResult{}
	for _, f := range factors {
		var scale func(n *plan.Node)
		scale = func(n *plan.Node) {
			if n == nil {
				return
			}
			n.ECard = truth.Card(n.S) / f
			if n.ECard < 1 {
				n.ECard = 1
			}
			scale(n.Left)
			scale(n.Right)
		}
		scale(optimal)
		fixed, err := engine.Run(l.DB, l.IdxPK, g, optimal, engine.Config{Rehash: false})
		if err != nil {
			return nil, err
		}
		rehash, err := engine.Run(l.DB, l.IdxPK, g, optimal, engine.Config{Rehash: true})
		if err != nil {
			return nil, err
		}
		if fixed.Rows != rehash.Rows {
			return nil, fmt.Errorf("rehash changed result: %d vs %d", fixed.Rows, rehash.Rows)
		}
		res.Rows = append(res.Rows, RehashAblationRow{
			UnderestimationFactor: f,
			WorkFixed:             fixed.Work,
			WorkRehash:            rehash.Work,
		})
	}
	return res, nil
}

// Render formats the rehash ablation.
func (r *RehashAblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: hash-join work vs build-side underestimation (fixed plan)\n")
	fmt.Fprintf(&b, "%14s %14s %14s %10s\n", "underest.", "fixed table", "with rehash", "penalty")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%13.0fx %14d %14d %9.1fx\n",
			row.UnderestimationFactor, row.WorkFixed, row.WorkRehash,
			float64(row.WorkFixed)/float64(row.WorkRehash))
	}
	return b.String()
}

// HedgingResult evaluates pessimistic (risk-hedging) plan selection.
type HedgingResult struct {
	Rows []HedgingRow
}

// HedgingRow compares one configuration on the §4.1 harness.
type HedgingRow struct {
	Label    string
	Buckets  []float64
	Timeouts int
}

// Hedging runs the §4.1 experiment (PK+FK indexes, where misestimates hurt
// most) with plain PostgreSQL estimates and with the same estimates
// inflated by several per-join risk factors — the paper's §8 suggestion of
// not trusting the cheapest expected plan. The sweep doubles as an
// ablation: gentle hedging tends to remove disasters, while aggressive
// inflation distorts join-order choices and can backfire.
func (l *Lab) Hedging(factors ...float64) (*HedgingResult, error) {
	return l.HedgingContext(context.Background(), factors...)
}

// HedgingContext is Hedging under a caller-controlled context.
func (l *Lab) HedgingContext(ctx context.Context, factors ...float64) (*HedgingResult, error) {
	if len(factors) == 0 {
		factors = []float64{1.1, 1.5, 2.0}
	}
	model := costmodel.NewTuned()
	rules := engineRules{DisableNLJ: true, Rehash: true}
	res := &HedgingResult{}
	run := func(label string, factor float64) error {
		slowdowns, timeouts, err := l.runWorkload(ctx, func(q *query.Query) cardest.Provider {
			g := l.Graphs[q.ID]
			var prov cardest.Provider = l.Postgres.ForQuery(g)
			if factor > 0 {
				prov = &cardest.Pessimistic{Base: prov, G: g, Factor: factor}
			}
			return prov
		}, l.IdxPKFK, rules, model)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, HedgingRow{
			Label: label, Buckets: metrics.BucketSlowdowns(slowdowns), Timeouts: timeouts,
		})
		return nil
	}
	if err := run("PostgreSQL estimates", 0); err != nil {
		return nil, err
	}
	for _, f := range factors {
		if err := run(fmt.Sprintf("pessimistic (%.1fx per join)", f), f); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Render formats the hedging comparison.
func (r *HedgingResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension (§8): risk-hedging plan selection, PK+FK indexes\n")
	fmt.Fprintf(&b, "%-30s", "")
	for _, lbl := range metrics.BucketLabels() {
		fmt.Fprintf(&b, "%11s", lbl)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-30s", row.Label)
		for _, f := range row.Buckets {
			fmt.Fprintf(&b, "%10.1f%%", 100*f)
		}
		if row.Timeouts > 0 {
			fmt.Fprintf(&b, "  (%d timeouts)", row.Timeouts)
		}
		b.WriteString("\n")
	}
	return b.String()
}
