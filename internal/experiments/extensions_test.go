package experiments

import (
	"strings"
	"testing"
)

func TestDampingAblation(t *testing.T) {
	l := sharedLab(t)
	res, err := l.DampingAblation([]float64{1.0, 0.82, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Exponent 1.0 = plain independence: deepest underestimation. Smaller
	// exponents lift the medians monotonically.
	get := func(exp float64) DampingAblationRow {
		for _, r := range res.Rows {
			if r.Exponent == exp {
				return r
			}
		}
		t.Fatalf("missing exponent %g", exp)
		return DampingAblationRow{}
	}
	plain, def, strong := get(1.0), get(0.82), get(0.5)
	if def.MedianAt[4] < plain.MedianAt[4] {
		t.Errorf("damping 0.82 median at 4 joins (%.3g) below independence (%.3g)",
			def.MedianAt[4], plain.MedianAt[4])
	}
	if strong.MedianAt[4] < def.MedianAt[4] {
		t.Errorf("stronger damping (%.3g) did not lift estimates above 0.82 (%.3g)",
			strong.MedianAt[4], def.MedianAt[4])
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Fatal("render broken")
	}
}

func TestRehashAblation(t *testing.T) {
	l := sharedLab(t)
	res, err := l.RehashAblation("17e", []float64{1, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// At factor 1 the fixed table is fine; at factor 1000 the collision
	// chains must dominate, and rehashing must bound the damage.
	first, last := res.Rows[0], res.Rows[2]
	penalty := func(r RehashAblationRow) float64 {
		return float64(r.WorkFixed) / float64(r.WorkRehash)
	}
	if penalty(first) > 1.6 {
		t.Errorf("penalty %.2fx at factor 1; expected near parity", penalty(first))
	}
	if penalty(last) < 2 {
		t.Errorf("penalty only %.2fx at factor 1000; chains should dominate", penalty(last))
	}
	if last.WorkFixed <= first.WorkFixed {
		t.Error("fixed-table work did not grow with underestimation")
	}
	if !strings.Contains(res.Render(), "rehash") {
		t.Fatal("render broken")
	}
}

func TestHedgingSweep(t *testing.T) {
	skipSlowInShort(t)
	l := sharedLab(t)
	res, err := l.Hedging(1.1, 1.5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows, want baseline + 3 factors", len(res.Rows))
	}
	disasters := func(r HedgingRow) float64 { return r.Buckets[4] + r.Buckets[5] }
	base := res.Rows[0]
	best := disasters(res.Rows[1])
	for _, r := range res.Rows[1:] {
		sum := 0.0
		for _, f := range r.Buckets {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: buckets sum to %f", r.Label, sum)
		}
		if d := disasters(r); d < best {
			best = d
		}
	}
	// The harness evaluates the paper's §8 proposal; whether hedging pays
	// off depends on data scale and statistics quality (and at this test
	// scale it often does not — a finding in itself, recorded in
	// EXPERIMENTS.md). The test verifies the harness, not the hypothesis.
	t.Logf("disasters: baseline %.3f, best hedged %.3f", disasters(base), best)
	if !strings.Contains(res.Render(), "risk-hedging") {
		t.Fatal("render broken")
	}
}
