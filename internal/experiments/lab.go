// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a pure function of a Lab (the shared
// setup: data, statistics, indexes, workload, true cardinalities) returning
// a typed result with a text rendering; cmd/jobench and the root benchmark
// suite drive them.
package experiments

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	"jobench/internal/cardest"
	"jobench/internal/index"
	"jobench/internal/parallel"
	"jobench/internal/query"
	"jobench/internal/snapshot"
	"jobench/internal/stats"
	"jobench/internal/storage"
	"jobench/internal/truecard"
	"jobench/internal/workload"
)

// Config controls the experimental setup.
type Config struct {
	// Workload names the benchmark world ("imdb", "tpch", "imdb-skew");
	// empty selects the default IMDB/JOB world. See internal/workload.
	Workload string
	// Scale is the data scale (for IMDB, 1.0 ~ 10k titles, ~450k rows).
	Scale float64
	// Seed drives all generation and sampling. Zero defaults to 42.
	Seed int64
	// MaxQueries truncates the workload for quick runs (0 = all 113).
	MaxQueries int
	// Parallel is the worker-pool size for every experiment sweep (lab
	// setup, Warmup, all drivers, and the per-subset fan-out inside each
	// true-cardinality computation). 0 means GOMAXPROCS; 1 runs the
	// serial code path. Reports are byte-identical at any setting.
	Parallel int
	// CacheDir enables the persistent snapshot store: the generated
	// database, both ANALYZE passes, and every computed truth store are
	// persisted there and reloaded by the next NewLab with the same Scale
	// and Seed. Corrupted or version-bumped snapshots are regenerated with
	// a logged warning. Empty disables caching.
	CacheDir string
	// Logf receives cache diagnostics (snapshot load/save warnings).
	// Nil means the standard library's log.Printf.
	Logf func(format string, args ...any)
}

// DefaultConfig is the scale the experiment CLI uses.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Seed: 42}
}

// QuickConfig is small enough for tests and benchmarks.
func QuickConfig() Config {
	return Config{Scale: 0.08, Seed: 42}
}

// Lab bundles everything the experiments share.
type Lab struct {
	Cfg Config

	DB      *storage.Database
	Stats   *stats.DB
	StatsTD *stats.DB // ANALYZE with true distinct counts (Fig. 5)
	Queries []*query.Query
	Graphs  map[string]*query.Graph
	IdxNone *index.Set
	IdxPK   *index.Set
	IdxPKFK *index.Set

	// Estimators in the paper's presentation order.
	Postgres   cardest.Estimator
	PostgresTD cardest.Estimator
	DBMSA      cardest.Estimator
	DBMSB      cardest.Estimator
	DBMSC      cardest.Estimator
	HyPer      cardest.Estimator

	snap *snapshot.Store // nil when Config.CacheDir was empty
	logf func(format string, args ...any)

	mu    sync.Mutex
	truth map[string]*truecard.Store
}

// NewLab builds the shared setup, loading the database, statistics, and
// (lazily, through Truth) true cardinalities from the snapshot store when
// Config.CacheDir names one.
func NewLab(cfg Config) (*Lab, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	wl, err := workload.Get(cfg.Workload)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	cfg.Workload = wl.Name()
	world := workload.NewKey(wl.Name(), cfg.Seed, cfg.Scale)
	qs := wl.Queries()
	var snap *snapshot.Store
	if cfg.CacheDir != "" {
		// The cache key hashes the full workload even when MaxQueries
		// truncates this run: truth files are per-query, so runs at
		// different MaxQueries share one fingerprint directory.
		snap = snapshot.New(cfg.CacheDir, snapshot.Key{
			World:     world,
			QueryHash: snapshot.WorkloadHash(qs),
		}, cfg.Parallel)
	}
	if cfg.MaxQueries > 0 && cfg.MaxQueries < len(qs) {
		qs = qs[:cfg.MaxQueries]
	}

	var db *storage.Database
	if snap != nil {
		db, _ = snapshot.Load(logf, "experiments: snapshot database", snap.LoadDatabase)
	}
	if db == nil {
		db = wl.Generate(world.Config())
		if snap != nil {
			snapshot.Save(logf, "experiments: snapshot save database", func() error {
				return snap.SaveDatabase(db)
			})
		}
	}

	// The ANALYZE sample must be small relative to the big tables, like
	// PostgreSQL's 30,000 rows against IMDB's 36M-row cast_info (~0.1%):
	// sample-based distinct counts (Duj1) must underestimate on skewed
	// columns for the paper's §3.4/Fig. 5 effect to exist. We keep the
	// ratio, not the absolute number.
	sampleSize := 600 + int(4000*cfg.Scale)
	sopts := stats.Options{SampleSize: sampleSize, MCVTarget: 100, HistBuckets: 100, Seed: cfg.Seed}
	topts := sopts
	topts.TrueDistinct = true

	// The two ANALYZE passes and the three index builds only read the
	// generated database, so they fan out across the worker pool; each task
	// writes its own destination and is deterministic on its own seed.
	var (
		sdb, sdbTD              *stats.DB
		idxNone, idxPK, idxPKFK *index.Set
	)
	if snap != nil {
		for _, v := range []struct {
			opts stats.Options
			dst  **stats.DB
		}{{sopts, &sdb}, {topts, &sdbTD}} {
			*v.dst, _ = snapshot.Load(logf, "experiments: snapshot stats", func() (*stats.DB, error) {
				return snap.LoadStats(v.opts)
			})
		}
	}
	sdbCached, sdbTDCached := sdb != nil, sdbTD != nil
	loadOrBuild := func(dst **index.Set, icfg index.Config) func() error {
		return func() (err error) {
			*dst, err = snapshot.LoadOrBuildIndexes(snap, logf, "experiments", db, icfg, wl.BuildIndexes)
			return err
		}
	}
	tasks := []func() error{
		loadOrBuild(&idxNone, index.NoIndexes),
		loadOrBuild(&idxPK, index.PKOnly),
		loadOrBuild(&idxPKFK, index.PKFK),
	}
	if !sdbCached {
		tasks = append(tasks, func() error { sdb = stats.AnalyzeDatabase(db, sopts); return nil })
	}
	if !sdbTDCached {
		tasks = append(tasks, func() error { sdbTD = stats.AnalyzeDatabase(db, topts); return nil })
	}
	if err := parallel.Do(context.Background(), cfg.Parallel, tasks...); err != nil {
		return nil, err
	}
	if snap != nil {
		if !sdbCached {
			snapshot.Save(logf, "experiments: snapshot save stats", func() error {
				return snap.SaveStats(sopts, sdb)
			})
		}
		if !sdbTDCached {
			snapshot.Save(logf, "experiments: snapshot save stats", func() error {
				return snap.SaveStats(topts, sdbTD)
			})
		}
	}

	graphs := make(map[string]*query.Graph, len(qs))
	for _, q := range qs {
		graphs[q.ID] = query.MustBuildGraph(q)
	}
	return &Lab{
		Cfg:        cfg,
		DB:         db,
		Stats:      sdb,
		StatsTD:    sdbTD,
		Queries:    qs,
		Graphs:     graphs,
		IdxNone:    idxNone,
		IdxPK:      idxPK,
		IdxPKFK:    idxPKFK,
		Postgres:   cardest.NewPostgres(db, sdb),
		PostgresTD: cardest.NewPostgres(db, sdbTD),
		DBMSA:      cardest.NewDBMSA(db, sdb),
		DBMSB:      cardest.NewDBMSB(db, sdb),
		DBMSC:      cardest.NewDBMSC(db, sdb),
		HyPer:      cardest.NewSample(db, sdb),
		snap:       snap,
		logf:       logf,
		truth:      make(map[string]*truecard.Store),
	}, nil
}

// Systems returns the five estimators in the paper's order.
func (l *Lab) Systems() []cardest.Estimator {
	return []cardest.Estimator{l.Postgres, l.DBMSA, l.DBMSB, l.DBMSC, l.HyPer}
}

// Truth returns (computing and caching on first use) the full true-
// cardinality store of a query. With a snapshot store configured,
// previously persisted stores load from disk and fresh computations are
// persisted for the next lab.
func (l *Lab) Truth(qid string) (*truecard.Store, error) {
	return l.truthCtx(context.Background(), qid)
}

func (l *Lab) truthCtx(ctx context.Context, qid string) (*truecard.Store, error) {
	l.mu.Lock()
	st, ok := l.truth[qid]
	l.mu.Unlock()
	if ok {
		return st, nil
	}
	g := l.Graphs[qid]
	if g == nil {
		return nil, fmt.Errorf("experiments: unknown query %s", qid)
	}
	if l.snap != nil {
		cached, ok := snapshot.Load(l.logf, "experiments: snapshot truth "+qid,
			func() (*truecard.Store, error) { return l.snap.LoadTruth(g) })
		if ok {
			l.mu.Lock()
			l.truth[qid] = cached
			l.mu.Unlock()
			return cached, nil
		}
	}
	st, err := truecard.ComputeContext(ctx, l.DB, g, truecard.Options{Parallel: l.Cfg.Parallel})
	if err != nil {
		return nil, fmt.Errorf("experiments: true cardinalities for %s (row limit %d): %w",
			qid, truecard.DefaultMaxRows, err)
	}
	if l.snap != nil {
		snapshot.Save(l.logf, "experiments: snapshot save truth "+qid, func() error {
			return l.snap.SaveTruth(st)
		})
	}
	l.mu.Lock()
	l.truth[qid] = st
	l.mu.Unlock()
	return st, nil
}

// Warmup computes the true cardinalities of every workload query in
// parallel. All experiments call Truth lazily; warming up front makes a
// full experiment run dramatically faster on multi-core machines. Each
// query's DP nests the same worker count (see System.Warmup for why the
// deliberate Parallel^2 over-subscription is the right trade).
func (l *Lab) Warmup() error {
	return l.WarmupContext(context.Background())
}

// WarmupContext is Warmup with cancellation: a cancelled warmup (service
// shutdown, client disconnect) aborts the in-flight DPs instead of
// finishing them orphaned.
func (l *Lab) WarmupContext(ctx context.Context) error {
	_, err := runQueries(ctx, l, func(ctx context.Context, qi int, q *query.Query) (struct{}, error) {
		if _, err := l.truthCtx(ctx, q.ID); err != nil {
			return struct{}{}, fmt.Errorf("%s: %w", q.ID, err)
		}
		return struct{}{}, nil
	})
	return err
}

// QueryIDs returns the workload's query ids in order.
func (l *Lab) QueryIDs() []string {
	ids := make([]string, len(l.Queries))
	for i, q := range l.Queries {
		ids[i] = q.ID
	}
	return ids
}

// sortedKeys is a rendering helper.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
