// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a pure function of a Lab (the shared
// setup: data, statistics, indexes, workload, true cardinalities) returning
// a typed result with a text rendering; cmd/jobench and the root benchmark
// suite drive them.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"jobench/internal/cardest"
	"jobench/internal/imdb"
	"jobench/internal/index"
	"jobench/internal/job"
	"jobench/internal/parallel"
	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/storage"
	"jobench/internal/truecard"
)

// Config controls the experimental setup.
type Config struct {
	// Scale is the IMDB data scale (1.0 ~ 10k titles, ~450k rows).
	Scale float64
	// Seed drives all generation and sampling.
	Seed int64
	// MaxQueries truncates the workload for quick runs (0 = all 113).
	MaxQueries int
	// Parallel is the worker-pool size for every experiment sweep (lab
	// setup, Warmup, and all drivers). 0 means GOMAXPROCS; 1 runs the
	// serial code path. Reports are byte-identical at any setting.
	Parallel int
}

// DefaultConfig is the scale the experiment CLI uses.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Seed: 42}
}

// QuickConfig is small enough for tests and benchmarks.
func QuickConfig() Config {
	return Config{Scale: 0.08, Seed: 42}
}

// Lab bundles everything the experiments share.
type Lab struct {
	Cfg Config

	DB      *storage.Database
	Stats   *stats.DB
	StatsTD *stats.DB // ANALYZE with true distinct counts (Fig. 5)
	Queries []*query.Query
	Graphs  map[string]*query.Graph
	IdxNone *index.Set
	IdxPK   *index.Set
	IdxPKFK *index.Set

	// Estimators in the paper's presentation order.
	Postgres   cardest.Estimator
	PostgresTD cardest.Estimator
	DBMSA      cardest.Estimator
	DBMSB      cardest.Estimator
	DBMSC      cardest.Estimator
	HyPer      cardest.Estimator

	mu    sync.Mutex
	truth map[string]*truecard.Store
}

// NewLab builds the shared setup.
func NewLab(cfg Config) (*Lab, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	db := imdb.Generate(imdb.Config{Scale: cfg.Scale, Seed: cfg.Seed})
	// The ANALYZE sample must be small relative to the big tables, like
	// PostgreSQL's 30,000 rows against IMDB's 36M-row cast_info (~0.1%):
	// sample-based distinct counts (Duj1) must underestimate on skewed
	// columns for the paper's §3.4/Fig. 5 effect to exist. We keep the
	// ratio, not the absolute number.
	sampleSize := 600 + int(4000*cfg.Scale)
	sopts := stats.Options{SampleSize: sampleSize, MCVTarget: 100, HistBuckets: 100, Seed: cfg.Seed}

	// The two ANALYZE passes and the three index builds only read the
	// generated database, so they fan out across the worker pool; each task
	// writes its own destination and is deterministic on its own seed.
	var (
		sdb, sdbTD              *stats.DB
		idxNone, idxPK, idxPKFK *index.Set
	)
	err := parallel.Do(context.Background(), cfg.Parallel,
		func() error { sdb = stats.AnalyzeDatabase(db, sopts); return nil },
		func() error {
			topts := sopts
			topts.TrueDistinct = true
			sdbTD = stats.AnalyzeDatabase(db, topts)
			return nil
		},
		func() (err error) { idxNone, err = imdb.BuildIndexes(db, imdb.NoIndexes); return err },
		func() (err error) { idxPK, err = imdb.BuildIndexes(db, imdb.PKOnly); return err },
		func() (err error) { idxPKFK, err = imdb.BuildIndexes(db, imdb.PKFK); return err },
	)
	if err != nil {
		return nil, err
	}

	qs := job.Workload()
	if cfg.MaxQueries > 0 && cfg.MaxQueries < len(qs) {
		qs = qs[:cfg.MaxQueries]
	}
	graphs := make(map[string]*query.Graph, len(qs))
	for _, q := range qs {
		graphs[q.ID] = query.MustBuildGraph(q)
	}
	return &Lab{
		Cfg:        cfg,
		DB:         db,
		Stats:      sdb,
		StatsTD:    sdbTD,
		Queries:    qs,
		Graphs:     graphs,
		IdxNone:    idxNone,
		IdxPK:      idxPK,
		IdxPKFK:    idxPKFK,
		Postgres:   cardest.NewPostgres(db, sdb),
		PostgresTD: cardest.NewPostgres(db, sdbTD),
		DBMSA:      cardest.NewDBMSA(db, sdb),
		DBMSB:      cardest.NewDBMSB(db, sdb),
		DBMSC:      cardest.NewDBMSC(db, sdb),
		HyPer:      cardest.NewSample(db, sdb),
		truth:      make(map[string]*truecard.Store),
	}, nil
}

// Systems returns the five estimators in the paper's order.
func (l *Lab) Systems() []cardest.Estimator {
	return []cardest.Estimator{l.Postgres, l.DBMSA, l.DBMSB, l.DBMSC, l.HyPer}
}

// Truth returns (computing and caching on first use) the full true-
// cardinality store of a query.
func (l *Lab) Truth(qid string) (*truecard.Store, error) {
	l.mu.Lock()
	st, ok := l.truth[qid]
	l.mu.Unlock()
	if ok {
		return st, nil
	}
	g := l.Graphs[qid]
	if g == nil {
		return nil, fmt.Errorf("experiments: unknown query %s", qid)
	}
	st, err := truecard.Compute(l.DB, g, truecard.Options{})
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.truth[qid] = st
	l.mu.Unlock()
	return st, nil
}

// Warmup computes the true cardinalities of every workload query in
// parallel. All experiments call Truth lazily; warming up front makes a
// full experiment run dramatically faster on multi-core machines.
func (l *Lab) Warmup() error {
	_, err := runQueries(l, func(qi int, q *query.Query) (struct{}, error) {
		if _, err := l.Truth(q.ID); err != nil {
			return struct{}{}, fmt.Errorf("%s: %w", q.ID, err)
		}
		return struct{}{}, nil
	})
	return err
}

// QueryIDs returns the workload's query ids in order.
func (l *Lab) QueryIDs() []string {
	ids := make([]string, len(l.Queries))
	for i, q := range l.Queries {
		ids[i] = q.ID
	}
	return ids
}

// sortedKeys is a rendering helper.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
