package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/enum"
	"jobench/internal/index"
	"jobench/internal/metrics"
	"jobench/internal/optimizer"
	"jobench/internal/plan"
	"jobench/internal/query"
)

// figure9Queries are the five representative queries of Fig. 9.
var figure9Queries = []string{"6a", "13a", "16d", "17b", "25c"}

// indexConfigs enumerates the paper's three physical designs in order.
func (l *Lab) indexConfigs() []struct {
	Label string
	Idx   *index.Set
} {
	return []struct {
		Label string
		Idx   *index.Set
	}{
		{"no indexes", l.IdxNone},
		{"PK indexes", l.IdxPK},
		{"PK + FK indexes", l.IdxPKFK},
	}
}

// spaceFor builds the §6 standalone-optimizer space: true cardinalities,
// the simple cost model, nested-loop joins disabled.
func (l *Lab) spaceFor(qid string, idx *index.Set, prov cardest.Provider, shape plan.Shape) *enum.Space {
	return &enum.Space{
		G:          l.Graphs[qid],
		DB:         l.DB,
		Cards:      prov,
		Model:      costmodel.NewSimple(),
		Indexes:    idx,
		DisableNLJ: true,
		Shape:      shape,
	}
}

// Figure9Result holds the random-plan cost distributions.
type Figure9Result struct {
	Samples int
	Panels  []Figure9Panel

	// The §6.1 workload-wide aggregates, per index configuration:
	// fraction of random plans within 1.5x of the configuration's optimal
	// plan, and the mean worst/best cost ratio per query.
	Frac15        map[string]float64
	MeanWorstBest map[string]float64
}

// Figure9Panel is one density plot: a query under one index configuration.
type Figure9Panel struct {
	Query  string
	Config string
	// Costs are normalised by the optimal plan with FK indexes.
	Box     metrics.Boxplot
	Optimal float64 // this configuration's optimum / FK optimum
}

// Figure9 samples QuickPick plans for the five representative queries under
// all three index configurations, and computes the §6.1 workload aggregates
// from a smaller per-query sample.
func (l *Lab) Figure9(samples int) (*Figure9Result, error) {
	return l.Figure9Context(context.Background(), samples)
}

// Figure9Context is Figure9 under a caller-controlled context.
func (l *Lab) Figure9Context(ctx context.Context, samples int) (*Figure9Result, error) {
	if samples <= 0 {
		samples = 10000
	}
	res := &Figure9Result{
		Samples:       samples,
		Frac15:        make(map[string]float64),
		MeanWorstBest: make(map[string]float64),
	}
	var qids []string
	for _, qid := range figure9Queries {
		if _, ok := l.Graphs[qid]; ok {
			qids = append(qids, qid)
		}
	}
	// The normaliser of every panel is the query's optimal plan with FK
	// indexes; compute it once per query, not once per (query, config).
	fkOpts, err := RunCells(ctx, l.Cfg.Parallel, qids,
		func(ctx context.Context, qid string) (*plan.Node, error) {
			st, err := l.truthCtx(ctx, qid)
			if err != nil {
				return nil, err
			}
			return enum.DP(l.spaceFor(qid, l.IdxPKFK, cardest.True{Store: st}, plan.Bushy))
		})
	if err != nil {
		return nil, err
	}
	// One cell per (query, config) panel. The QuickPick RNG is seeded from
	// the cell's position in the sweep (the panel index, exactly as the
	// serial loop numbered them), never from shared state, so the sampled
	// plans do not depend on worker interleaving.
	type panelCell struct {
		qid    string
		qIdx   int
		cfgIdx int
	}
	var cells []panelCell
	for qi, qid := range qids {
		for ci := range l.indexConfigs() {
			cells = append(cells, panelCell{qid: qid, qIdx: qi, cfgIdx: ci})
		}
	}
	panels, err := RunCells(ctx, l.Cfg.Parallel, cells,
		func(ctx context.Context, c panelCell) (Figure9Panel, error) {
			st, err := l.truthCtx(ctx, c.qid)
			if err != nil {
				return Figure9Panel{}, err
			}
			truth := cardest.True{Store: st}
			fkOpt := fkOpts[c.qIdx]
			cfg := l.indexConfigs()[c.cfgIdx]
			sp := l.spaceFor(c.qid, cfg.Idx, truth, plan.Bushy)
			opt, err := enum.DP(sp)
			if err != nil {
				return Figure9Panel{}, err
			}
			rng := rand.New(rand.NewSource(l.Cfg.Seed + int64(c.qIdx*len(l.indexConfigs())+c.cfgIdx)))
			costs := make([]float64, 0, samples)
			for i := 0; i < samples; i++ {
				p, err := enum.QuickPick(sp, rng)
				if err != nil {
					return Figure9Panel{}, err
				}
				costs = append(costs, p.ECost/fkOpt.ECost)
			}
			return Figure9Panel{
				Query: c.qid, Config: cfg.Label,
				Box:     metrics.NewBoxplot(costs),
				Optimal: opt.ECost / fkOpt.ECost,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	res.Panels = panels

	// Workload-wide §6.1 aggregates with a smaller sample per query.
	wlSamples := samples / 10
	if wlSamples < 200 {
		wlSamples = 200
	}
	for _, cfg := range l.indexConfigs() {
		type aggCell struct {
			within, total int
			ratio         float64
		}
		perQuery, err := runQueries(ctx, l, func(ctx context.Context, qi int, q *query.Query) (aggCell, error) {
			st, err := l.truthCtx(ctx, q.ID)
			if err != nil {
				return aggCell{}, err
			}
			truth := cardest.True{Store: st}
			sp := l.spaceFor(q.ID, cfg.Idx, truth, plan.Bushy)
			opt, err := enum.DP(sp)
			if err != nil {
				return aggCell{}, err
			}
			rng := rand.New(rand.NewSource(l.Cfg.Seed ^ int64(qi+1)))
			var out aggCell
			best, worst := math.Inf(1), 0.0
			for i := 0; i < wlSamples; i++ {
				p, err := enum.QuickPick(sp, rng)
				if err != nil {
					return aggCell{}, err
				}
				rel := p.ECost / opt.ECost
				if rel <= 1.5 {
					out.within++
				}
				out.total++
				if p.ECost < best {
					best = p.ECost
				}
				if p.ECost > worst {
					worst = p.ECost
				}
			}
			out.ratio = worst / best
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		within, total := 0, 0
		ratios := make([]float64, len(perQuery))
		for i, c := range perQuery {
			within += c.within
			total += c.total
			ratios[i] = c.ratio
		}
		res.Frac15[cfg.Label] = float64(within) / float64(total)
		res.MeanWorstBest[cfg.Label] = metrics.Mean(ratios)
	}
	return res, nil
}

// Render formats Fig. 9 plus the §6.1 aggregates.
func (r *Figure9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: cost of %d random plans relative to the optimal PK+FK plan\n", r.Samples)
	fmt.Fprintf(&b, "%-6s %-18s %9s %9s %9s %9s %9s %10s\n",
		"query", "config", "min", "p5", "median", "p95", "max", "optimal")
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "%-6s %-18s %9.3g %9.3g %9.3g %9.3g %9.3g %10.3g\n",
			p.Query, p.Config, p.Box.MinValue, p.Box.P5, p.Box.P50, p.Box.P95, p.Box.MaxValue, p.Optimal)
	}
	b.WriteString("\nSection 6.1 workload aggregates:\n")
	for _, cfg := range []string{"no indexes", "PK indexes", "PK + FK indexes"} {
		fmt.Fprintf(&b, "  %-18s %5.1f%% of random plans within 1.5x of optimal; mean worst/best ratio %.0fx\n",
			cfg, 100*r.Frac15[cfg], r.MeanWorstBest[cfg])
	}
	return b.String()
}

// Table2Result holds the restricted-tree-shape slowdowns.
type Table2Result struct {
	Rows []Table2Row
}

// Table2Row is one (shape, index config) aggregate.
type Table2Row struct {
	Shape            plan.Shape
	Config           string
	Median, P95, Max float64
}

// Table2 measures how much performance the tree-shape restrictions cost
// (true cardinalities, both index configurations), like the paper's Table 2.
func (l *Lab) Table2() (*Table2Result, error) {
	return l.Table2Context(context.Background())
}

// Table2Context is Table2 under a caller-controlled context.
func (l *Lab) Table2Context(ctx context.Context) (*Table2Result, error) {
	res := &Table2Result{}
	configs := l.indexConfigs()[1:] // PK, PK+FK
	for _, shape := range []plan.Shape{plan.ZigZag, plan.LeftDeep, plan.RightDeep} {
		for _, cfg := range configs {
			slowdowns, err := runQueries(ctx, l, func(ctx context.Context, qi int, q *query.Query) (float64, error) {
				st, err := l.truthCtx(ctx, q.ID)
				if err != nil {
					return 0, err
				}
				truth := cardest.True{Store: st}
				bushy, err := enum.DP(l.spaceFor(q.ID, cfg.Idx, truth, plan.Bushy))
				if err != nil {
					return 0, err
				}
				restricted, err := enum.DP(l.spaceFor(q.ID, cfg.Idx, truth, shape))
				if err != nil {
					return 0, err
				}
				return restricted.ECost / bushy.ECost, nil
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Table2Row{
				Shape:  shape,
				Config: cfg.Label,
				Median: metrics.Median(slowdowns),
				P95:    metrics.Percentile(slowdowns, 95),
				Max:    metrics.Max(slowdowns),
			})
		}
	}
	return res, nil
}

// Render formats Table 2.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: slowdown of restricted tree shapes vs optimal bushy plan (true cardinalities)\n")
	fmt.Fprintf(&b, "%-12s %-18s %10s %10s %12s\n", "shape", "config", "median", "95%", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-18s %10.2f %10.2f %12.2f\n",
			row.Shape, row.Config, row.Median, row.P95, row.Max)
	}
	return b.String()
}

// Table3Result compares DP against the heuristics.
type Table3Result struct {
	Rows []Table3Row
}

// Table3Row is one (algorithm, provider, config) aggregate of true costs
// normalised by the configuration's optimal plan.
type Table3Row struct {
	Algorithm        string
	Cards            string
	Config           string
	Median, P95, Max float64
}

// Table3 reproduces the enumeration comparison: exhaustive DP vs
// QuickPick-1000 vs GOO, planning under PostgreSQL estimates and under true
// cardinalities, evaluated by re-costing every plan with the truth.
func (l *Lab) Table3() (*Table3Result, error) {
	return l.Table3Context(context.Background())
}

// Table3Context is Table3 under a caller-controlled context.
func (l *Lab) Table3Context(ctx context.Context) (*Table3Result, error) {
	res := &Table3Result{}
	algos := []optimizer.Algorithm{optimizer.DP, optimizer.QuickPick1000, optimizer.GOO}
	for _, cfg := range l.indexConfigs()[1:] { // PK, PK+FK
		for _, useTrue := range []bool{false, true} {
			cardsLabel := "PostgreSQL estimates"
			if useTrue {
				cardsLabel = "true cardinalities"
			}
			for _, alg := range algos {
				factors, err := runQueries(ctx, l, func(ctx context.Context, qi int, q *query.Query) (float64, error) {
					g := l.Graphs[q.ID]
					st, err := l.truthCtx(ctx, q.ID)
					if err != nil {
						return 0, err
					}
					truth := cardest.True{Store: st}
					var prov cardest.Provider = truth
					if !useTrue {
						prov = l.Postgres.ForQuery(g)
					}
					opt := &optimizer.Optimizer{
						DB: l.DB, Model: costmodel.NewSimple(), Indexes: cfg.Idx,
						DisableNLJ: true, Algorithm: alg, Seed: l.Cfg.Seed,
					}
					p, err := opt.Optimize(g, prov)
					if err != nil {
						return 0, err
					}
					baseline, err := enum.DP(l.spaceFor(q.ID, cfg.Idx, truth, plan.Bushy))
					if err != nil {
						return 0, err
					}
					return opt.TrueCost(p, g, truth) / baseline.ECost, nil
				})
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, Table3Row{
					Algorithm: alg.String(),
					Cards:     cardsLabel,
					Config:    cfg.Label,
					Median:    metrics.Median(factors),
					P95:       metrics.Percentile(factors, 95),
					Max:       metrics.Max(factors),
				})
			}
		}
	}
	return res, nil
}

// Render formats Table 3.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: true cost relative to the optimal plan of each index configuration\n")
	fmt.Fprintf(&b, "%-26s %-22s %-18s %8s %10s %12s\n",
		"algorithm", "cardinalities", "config", "median", "95%", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-26s %-22s %-18s %8.2f %10.2f %12.2f\n",
			row.Algorithm, row.Cards, row.Config, row.Median, row.P95, row.Max)
	}
	return b.String()
}

// PlanSpaceSize reports connected-subset counts per query (a search-space
// diagnostic used by the documentation and the CLI).
func (l *Lab) PlanSpaceSize() map[string]int {
	// CountConnectedSubsets cannot fail, so the runner's error is nil.
	counts, _ := runQueries(context.Background(), l, func(ctx context.Context, qi int, q *query.Query) (int, error) {
		return l.Graphs[q.ID].CountConnectedSubsets(), nil
	})
	out := make(map[string]int, len(l.Queries))
	for i, q := range l.Queries {
		out[q.ID] = counts[i]
	}
	return out
}
