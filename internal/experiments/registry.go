package experiments

import (
	"context"
	"fmt"
	"strings"
)

// This file is the shared experiment registry: the single mapping from an
// experiment name ("table1", "fig3", ...) to its driver and rendering.
// Both cmd/jobench and the service layer resolve names here, which is what
// makes `jobench experiment -name table1` and GET /v1/experiment/table1
// byte-identical by construction — there is exactly one code path that
// renders each report.

// Renderer is the common surface of every experiment result.
type Renderer interface{ Render() string }

// Params carries the per-request knobs an experiment accepts beyond the
// lab's own configuration.
type Params struct {
	// Samples is fig9's random-plans-per-query count; <= 0 means the
	// driver default (10000).
	Samples int
}

// Experiment is one named, runnable experiment.
type Experiment struct {
	Name string
	Run  func(ctx context.Context, l *Lab, p Params) (Renderer, error)
}

// Registry returns every experiment in the CLI's presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) { return l.Table1Context(ctx) }},
		{"fig3", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) { return l.Figure3Context(ctx) }},
		{"fig4", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) { return l.Figure4Context(ctx) }},
		{"fig5", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) { return l.Figure5Context(ctx) }},
		{"sec41", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) { return l.Section41Context(ctx) }},
		{"fig6", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) { return l.Figure6Context(ctx) }},
		{"fig7", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) {
			r, err := l.Figure7Context(ctx)
			if err != nil {
				return nil, err
			}
			// Figure 7 reuses Figure 6's result type; swap the heading.
			return retitled{"Figure 7: PK vs PK+FK indexes (PostgreSQL estimates)\n", r}, nil
		}},
		{"fig8", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) { return l.Figure8Context(ctx) }},
		{"fig9", func(ctx context.Context, l *Lab, p Params) (Renderer, error) { return l.Figure9Context(ctx, p.Samples) }},
		{"table2", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) { return l.Table2Context(ctx) }},
		{"table3", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) { return l.Table3Context(ctx) }},
		{"ablation-damping", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) {
			return l.DampingAblationContext(ctx, nil)
		}},
		{"ablation-rehash", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) {
			return l.RehashAblationContext(ctx, "17e", nil)
		}},
		{"hedging", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) { return l.HedgingContext(ctx) }},
		{"reopt", func(ctx context.Context, l *Lab, _ Params) (Renderer, error) { return l.ReoptContext(ctx) }},
	}
}

// Names lists the registered experiment names in presentation order.
func Names() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, e := range reg {
		out[i] = e.Name
	}
	return out
}

// RunExperiment resolves name in the registry, runs it under ctx, and
// returns the rendered report.
func RunExperiment(ctx context.Context, l *Lab, name string, p Params) (string, error) {
	for _, e := range Registry() {
		if e.Name == name {
			r, err := e.Run(ctx, l, p)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}
	}
	return "", fmt.Errorf("experiments: unknown experiment %q (%s)", name, strings.Join(Names(), "|"))
}

// retitled swaps the heading of a reused result type.
type retitled struct {
	prefix string
	inner  Renderer
}

func (w retitled) Render() string {
	s := w.inner.Render()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return w.prefix + s[i+1:]
	}
	return w.prefix + s
}
