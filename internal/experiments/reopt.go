package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/engine"
	"jobench/internal/metrics"
	"jobench/internal/optimizer"
	"jobench/internal/query"
	"jobench/internal/reopt"
)

// ReoptResult compares three planning regimes on every JOB query, all in
// work units relative to the true-cardinality plan: static (PostgreSQL
// estimates, the paper's baseline), re-optimized (adaptive execution with
// probe work charged unless the probed intermediate survives into the final
// plan), and feedback-warm (planned once with the adaptive run's observed
// cardinalities pinned — what a repeat request through the feedback cache
// pays).
type ReoptResult struct {
	// Families aggregates per query family in workload order.
	Families []ReoptFamily
	// GeoStatic, GeoAdaptive and GeoWarm are workload geometric-mean
	// slowdowns.
	GeoStatic   float64
	GeoAdaptive float64
	GeoWarm     float64
	// Replans and Probes total over the workload.
	Replans int
	Probes  int
	// TimeoutsStatic, TimeoutsAdaptive and TimeoutsWarm count executions
	// cut off at timeoutFactor x the optimal plan's work.
	TimeoutsStatic   int
	TimeoutsAdaptive int
	TimeoutsWarm     int
	// Improved counts families whose geometric mean the re-optimizer beat.
	Improved int
}

// ReoptFamily is one JOB query family's aggregate.
type ReoptFamily struct {
	// Family is the numeric family prefix of the query ids ("13" for
	// 13a-13d).
	Family string
	// Queries is the family size.
	Queries int
	// GeoStatic, GeoAdaptive and GeoWarm are family geometric-mean
	// slowdowns.
	GeoStatic   float64
	GeoAdaptive float64
	GeoWarm     float64
	// Replans totals the family's re-optimizations.
	Replans int
}

type reoptCell struct {
	family                       string
	static, adaptive, warm       float64
	replans, probes              int
	toStatic, toAdaptive, toWarm bool
}

// Reopt runs the adaptive re-optimization experiment; see ReoptResult.
func (l *Lab) Reopt() (*ReoptResult, error) {
	return l.ReoptContext(context.Background())
}

// ReoptContext is Reopt under a caller-controlled context.
func (l *Lab) ReoptContext(ctx context.Context) (*ReoptResult, error) {
	// The robust runtime configuration of §4.1: main-memory-tuned cost
	// model, PK indexes, no non-indexed nested loops, runtime rehashing.
	model := costmodel.NewTuned()
	rules := engineRules{DisableNLJ: true, Rehash: true}
	idx := l.IdxPK
	perQuery, err := runQueries(ctx, l, func(ctx context.Context, qi int, q *query.Query) (reoptCell, error) {
		g := l.Graphs[q.ID]
		st, err := l.truthCtx(ctx, q.ID)
		if err != nil {
			return reoptCell{}, err
		}
		truth := cardest.True{Store: st}
		opt := &optimizer.Optimizer{DB: l.DB, Model: model, Indexes: idx, DisableNLJ: rules.DisableNLJ}
		basePlan, err := opt.Optimize(g, truth)
		if err != nil {
			return reoptCell{}, err
		}
		runner := runnerPool.Get().(*engine.Runner)
		defer runnerPool.Put(runner)
		baseRes, err := runner.Run(l.DB, idx, g, basePlan, engine.Config{Rehash: rules.Rehash})
		if err != nil {
			return reoptCell{}, fmt.Errorf("%s baseline: %w", q.ID, err)
		}
		baseWork := baseRes.Work
		if baseWork == 0 {
			baseWork = 1
		}
		limit := int64(timeoutFactor) * baseWork
		prov := l.Postgres.ForQuery(g)
		cell := reoptCell{family: familyOf(q.ID)}

		// Static: the paper's baseline — plan once on estimates, run to the
		// timeout.
		staticPlan, err := opt.Optimize(g, prov)
		if err != nil {
			return reoptCell{}, err
		}
		staticRes, err := runner.Run(l.DB, idx, g, staticPlan, engine.Config{Rehash: rules.Rehash, WorkLimit: limit})
		switch {
		case err != nil && errors.Is(err, engine.ErrWorkLimit):
			cell.static, cell.toStatic = timeoutFactor, true
		case err != nil:
			return reoptCell{}, fmt.Errorf("%s static: %w", q.ID, err)
		default:
			cell.static = slowdownOf(staticRes.Work, baseWork)
		}

		// Re-optimized: adaptive execution from a cold start. The adaptive
		// work accounting (final plan + non-reused probes) maps onto the
		// same timeout rule: past the limit it counts exactly like a static
		// timeout.
		rres, err := reopt.Run(ctx, g, prov, nil, reopt.Config{
			DB: l.DB, Indexes: idx, Model: model,
			DisableNLJ: rules.DisableNLJ, Rehash: rules.Rehash,
			WorkLimit: limit, Runner: runner,
		})
		if err != nil {
			return reoptCell{}, fmt.Errorf("%s adaptive: %w", q.ID, err)
		}
		cell.replans, cell.probes = rres.Replans, len(rres.Steps)
		if rres.TimedOut || rres.Work >= limit {
			cell.adaptive, cell.toAdaptive = timeoutFactor, true
		} else {
			if rres.Rows != baseRes.Rows {
				return reoptCell{}, fmt.Errorf("%s adaptive: returned %d rows, baseline %d", q.ID, rres.Rows, baseRes.Rows)
			}
			cell.adaptive = slowdownOf(rres.Work, baseWork)
		}

		// Feedback-warm: plan once with the adaptive run's observations
		// pinned and propagated (a feedback-cache hit), execute statically.
		warmProv := reopt.NewPropagator(prov, rres.Observed)
		warmPlan, err := opt.Optimize(g, warmProv)
		if err != nil {
			return reoptCell{}, err
		}
		warmRes, err := runner.Run(l.DB, idx, g, warmPlan, engine.Config{Rehash: rules.Rehash, WorkLimit: limit})
		switch {
		case err != nil && errors.Is(err, engine.ErrWorkLimit):
			cell.warm, cell.toWarm = timeoutFactor, true
		case err != nil:
			return reoptCell{}, fmt.Errorf("%s warm: %w", q.ID, err)
		default:
			if warmRes.Rows != baseRes.Rows {
				return reoptCell{}, fmt.Errorf("%s warm: returned %d rows, baseline %d", q.ID, warmRes.Rows, baseRes.Rows)
			}
			cell.warm = slowdownOf(warmRes.Work, baseWork)
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}

	res := &ReoptResult{}
	var statics, adaptives, warms []float64
	type famAgg struct {
		idx                       int
		statics, adaptives, warms []float64
		replans                   int
	}
	fams := make(map[string]*famAgg)
	var famOrder []string
	for _, c := range perQuery {
		statics = append(statics, c.static)
		adaptives = append(adaptives, c.adaptive)
		warms = append(warms, c.warm)
		res.Replans += c.replans
		res.Probes += c.probes
		if c.toStatic {
			res.TimeoutsStatic++
		}
		if c.toAdaptive {
			res.TimeoutsAdaptive++
		}
		if c.toWarm {
			res.TimeoutsWarm++
		}
		f := fams[c.family]
		if f == nil {
			f = &famAgg{}
			fams[c.family] = f
			famOrder = append(famOrder, c.family)
		}
		f.statics = append(f.statics, c.static)
		f.adaptives = append(f.adaptives, c.adaptive)
		f.warms = append(f.warms, c.warm)
		f.replans += c.replans
	}
	res.GeoStatic = metrics.GeoMean(statics)
	res.GeoAdaptive = metrics.GeoMean(adaptives)
	res.GeoWarm = metrics.GeoMean(warms)
	for _, name := range famOrder {
		f := fams[name]
		fam := ReoptFamily{
			Family:      name,
			Queries:     len(f.statics),
			GeoStatic:   metrics.GeoMean(f.statics),
			GeoAdaptive: metrics.GeoMean(f.adaptives),
			GeoWarm:     metrics.GeoMean(f.warms),
			Replans:     f.replans,
		}
		if fam.GeoAdaptive < fam.GeoStatic {
			res.Improved++
		}
		res.Families = append(res.Families, fam)
	}
	return res, nil
}

// slowdownOf clamps work into [1, ...) before dividing so zero-work plans
// cannot produce zero slowdowns (GeoMean needs positive inputs).
func slowdownOf(work, base int64) float64 {
	return math.Max(1, float64(work)) / float64(base)
}

// familyOf extracts the numeric family prefix of a JOB query id ("13d" ->
// "13").
func familyOf(id string) string {
	i := 0
	for i < len(id) && id[i] >= '0' && id[i] <= '9' {
		i++
	}
	return id[:i]
}

// Render formats the reopt report.
func (r *ReoptResult) Render() string {
	var b strings.Builder
	b.WriteString("Adaptive re-optimization: work-unit slowdown vs true-cardinality plan\n")
	b.WriteString("(PostgreSQL estimates, PK indexes, no NLJ, rehash on; probe work charged unless the intermediate is reused)\n\n")
	fmt.Fprintf(&b, "%-24s %10s %10s %10s\n", "", "static", "re-opt", "warm")
	fmt.Fprintf(&b, "%-24s %10.2f %10.2f %10.2f\n", "geometric-mean slowdown", r.GeoStatic, r.GeoAdaptive, r.GeoWarm)
	fmt.Fprintf(&b, "%-24s %10d %10d %10d\n", "timeouts", r.TimeoutsStatic, r.TimeoutsAdaptive, r.TimeoutsWarm)
	fmt.Fprintf(&b, "\nreplans: %d, probes: %d; families improved by re-optimization: %d of %d\n\n",
		r.Replans, r.Probes, r.Improved, len(r.Families))
	fmt.Fprintf(&b, "%-8s %8s %10s %10s %10s %9s\n", "family", "queries", "static", "re-opt", "warm", "replans")
	for _, f := range r.Families {
		fmt.Fprintf(&b, "%-8s %8d %10.2f %10.2f %10.2f %9d\n",
			f.Family, f.Queries, f.GeoStatic, f.GeoAdaptive, f.GeoWarm, f.Replans)
	}
	return b.String()
}
