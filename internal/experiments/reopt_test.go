package experiments

import (
	"strings"
	"testing"
)

func TestReoptExperiment(t *testing.T) {
	skipSlowInShort(t)
	l := sharedLab(t)
	res, err := l.Reopt()
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance bar: mid-execution re-optimization must not cost more
	// than static planning in the aggregate, and at least one query family
	// must actually improve.
	if res.GeoAdaptive > res.GeoStatic+1e-9 {
		t.Errorf("geomean re-optimized %.3f worse than static %.3f", res.GeoAdaptive, res.GeoStatic)
	}
	if res.Improved < 1 {
		t.Errorf("no family improved by re-optimization")
	}
	// Feedback-warm planning starts from observed truth and must beat cold
	// static planning in the aggregate — that is the feedback cache's whole
	// claim. (It may trail the adaptive run itself: adaptive both picks its
	// plan with more observations and reuses materialized intermediates.)
	if res.GeoWarm > res.GeoStatic+1e-9 {
		t.Errorf("geomean warm %.3f worse than static %.3f", res.GeoWarm, res.GeoStatic)
	}
	if len(res.Families) < 30 {
		t.Errorf("%d families, want the full workload's 33", len(res.Families))
	}
	if res.Probes == 0 {
		t.Error("no probes recorded")
	}
	out := res.Render()
	if !strings.Contains(out, "Adaptive re-optimization") || !strings.Contains(out, "family") {
		t.Fatalf("render broken:\n%s", out)
	}
	t.Logf("reopt: static %.3f re-opt %.3f warm %.3f, replans %d, probes %d, improved %d/%d",
		res.GeoStatic, res.GeoAdaptive, res.GeoWarm, res.Replans, res.Probes, res.Improved, len(res.Families))
}
