package experiments

import (
	"context"

	"jobench/internal/parallel"
	"jobench/internal/query"
)

// This file is the shared parallel experiment runner. Every driver in this
// package sweeps a grid of independent cells — (estimator, query),
// (cost model, query), (index config, query) — and the paper's full
// 113-query workload makes those sweeps the dominant cost of reproducing
// its tables and figures. RunCells fans a cell slice out across a bounded
// worker pool while keeping the assembled results in input order, so a
// parallel run renders byte-identical reports to a serial one. Randomized
// cells (QuickPick sampling) derive their seed from the cell's position in
// the sweep, never from shared RNG state, which keeps every report
// independent of worker interleaving.

// RunCells evaluates fn over every cell on up to workers goroutines and
// returns the results in input order; see parallel.RunCells for the full
// contract (inline serial path, worker defaulting, error joining,
// cancellation). Drivers pass Config.Parallel straight through — the
// <=0-means-GOMAXPROCS policy lives in one place, inside parallel.RunCells.
func RunCells[C, R any](ctx context.Context, workers int, cells []C, fn func(ctx context.Context, cell C) (R, error)) ([]R, error) {
	return parallel.RunCells(ctx, workers, cells, fn)
}

// runQueries fans fn out over the workload, one cell per query, and returns
// the per-query results in workload order. It is the shape almost every
// driver needs: the per-query work (truth lookups, estimation, planning,
// execution) is independent, and the driver folds the ordered slice into
// its result exactly as the old serial loop did. The caller's ctx bounds
// the whole sweep (the service cancels it on shutdown or client
// disconnect), and the pool's derived cancellable ctx is forwarded so fn
// can hand it to truthCtx (one query's failure then aborts the sibling
// computations still in flight).
func runQueries[R any](ctx context.Context, l *Lab, fn func(ctx context.Context, qi int, q *query.Query) (R, error)) ([]R, error) {
	cells := make([]int, len(l.Queries))
	for i := range cells {
		cells[i] = i
	}
	return RunCells(ctx, l.Cfg.Parallel, cells, func(ctx context.Context, qi int) (R, error) {
		return fn(ctx, qi, l.Queries[qi])
	})
}
