package experiments

import (
	"context"
	"errors"
	"testing"

	"jobench/internal/query"
)

// withParallel runs f with the shared lab's worker-pool size forced to n,
// restoring the previous setting afterwards. The experiments tests run
// sequentially within the package, so mutating the shared lab's config here
// is safe.
func withParallel(l *Lab, n int, f func()) {
	old := l.Cfg.Parallel
	l.Cfg.Parallel = n
	defer func() { l.Cfg.Parallel = old }()
	f()
}

// TestParallelReportsAreByteIdentical is the runner's core contract: every
// driver must render exactly the same report with one worker as with many,
// including the randomized QuickPick sweeps (whose seeds derive from cell
// positions, not worker interleaving).
func TestParallelReportsAreByteIdentical(t *testing.T) {
	l := sharedLab(t)
	drivers := map[string]func() (string, error){
		"table1": func() (string, error) {
			r, err := l.Table1()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"fig3": func() (string, error) {
			r, err := l.Figure3()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"fig5": func() (string, error) {
			r, err := l.Figure5()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"fig9": func() (string, error) {
			r, err := l.Figure9(150)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"ablation-damping": func() (string, error) {
			r, err := l.DampingAblation([]float64{1.0, 0.82})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"reopt": func() (string, error) {
			r, err := l.Reopt()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	}
	for name, run := range drivers {
		var serial, parallel string
		var serialErr, parallelErr error
		withParallel(l, 1, func() { serial, serialErr = run() })
		if serialErr != nil {
			t.Fatalf("%s serial: %v", name, serialErr)
		}
		withParallel(l, 8, func() { parallel, parallelErr = run() })
		if parallelErr != nil {
			t.Fatalf("%s parallel: %v", name, parallelErr)
		}
		if serial != parallel {
			t.Errorf("%s: parallel report differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				name, serial, parallel)
		}
	}
}

func TestRunQueriesPreservesWorkloadOrder(t *testing.T) {
	l := sharedLab(t)
	withParallel(l, 8, func() {
		ids, err := runQueries(context.Background(), l, func(ctx context.Context, qi int, q *query.Query) (string, error) {
			return q.ID, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range l.Queries {
			if ids[i] != q.ID {
				t.Fatalf("ids[%d] = %s, want %s", i, ids[i], q.ID)
			}
		}
	})
}

func TestRunCellsSurfacesDriverErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := RunCells(context.Background(), 4, []int{1, 2, 3}, func(_ context.Context, c int) (int, error) {
		if c == 2 {
			return 0, boom
		}
		return c, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("driver error lost: %v", err)
	}
}
