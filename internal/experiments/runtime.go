package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/engine"
	"jobench/internal/index"
	"jobench/internal/metrics"
	"jobench/internal/optimizer"
	"jobench/internal/plan"
	"jobench/internal/query"
)

// runnerPool recycles engine.Runners across the per-query cells of the
// runtime sweeps: a Runner's scratch buffers (emit vectors, row-id pool)
// grow to a sweep's working set once, instead of once per executed plan.
// A sync.Pool keeps the reuse worker-local under the parallel runner
// without tying cells to workers.
var runnerPool = sync.Pool{New: func() any { return engine.NewRunner() }}

// engineRules captures the engine/optimizer switches of §4.1.
type engineRules struct {
	DisableNLJ bool
	Rehash     bool
}

// timeoutFactor: executions are cut off at this multiple of the optimal
// plan's work, and counted in the >100 slowdown bucket like the paper's
// timeouts.
const timeoutFactor = 500

// runOne optimizes a query under the given provider and executes it,
// returning the slowdown relative to the true-cardinality plan's work.
func (l *Lab) runOne(ctx context.Context, qid string, prov cardest.Provider, idx *index.Set, rules engineRules, model costmodel.Model) (slowdown float64, timedOut bool, err error) {
	g := l.Graphs[qid]
	st, err := l.truthCtx(ctx, qid)
	if err != nil {
		return 0, false, err
	}
	truth := cardest.True{Store: st}
	opt := &optimizer.Optimizer{
		DB: l.DB, Model: model, Indexes: idx, DisableNLJ: rules.DisableNLJ,
	}
	optPlan, err := opt.Optimize(g, truth)
	if err != nil {
		return 0, false, err
	}
	runner := runnerPool.Get().(*engine.Runner)
	defer runnerPool.Put(runner)
	baseRes, err := runner.Run(l.DB, idx, g, optPlan, engine.Config{Rehash: rules.Rehash})
	if err != nil {
		return 0, false, fmt.Errorf("%s baseline: %w", qid, err)
	}
	baseWork := baseRes.Work
	if baseWork == 0 {
		baseWork = 1
	}

	estPlan, err := opt.Optimize(g, prov)
	if err != nil {
		return 0, false, err
	}
	res, err := runner.Run(l.DB, idx, g, estPlan, engine.Config{
		Rehash:    rules.Rehash,
		WorkLimit: timeoutFactor * baseWork,
	})
	if err != nil {
		if errors.Is(err, engine.ErrWorkLimit) {
			return timeoutFactor, true, nil
		}
		return 0, false, err
	}
	if res.Rows != baseRes.Rows {
		return 0, false, fmt.Errorf("%s: estimate plan returned %d rows, baseline %d", qid, res.Rows, baseRes.Rows)
	}
	return float64(res.Work) / float64(baseWork), false, nil
}

// Section41Result is the §4.1 table: slowdown distribution per estimator.
type Section41Result struct {
	Rows []Section41Row
}

// Section41Row is one estimator's slowdown bucket distribution.
type Section41Row struct {
	System   string
	Buckets  []float64 // fractions in the six paper buckets
	Timeouts int
}

// Section41 injects each system's estimates into the optimizer and executes
// the resulting plans (PK indexes, nested-loop joins disabled, rehashing
// on — the paper's robust configuration for this table).
func (l *Lab) Section41() (*Section41Result, error) {
	return l.Section41Context(context.Background())
}

// Section41Context is Section41 under a caller-controlled context.
func (l *Lab) Section41Context(ctx context.Context) (*Section41Result, error) {
	rules := engineRules{DisableNLJ: true, Rehash: true}
	// The engine is a main-memory executor, so the faithful optimizer for
	// the runtime experiments is the main-memory-tuned model (§5.3); the
	// disk-oriented default would bias both plans against index joins.
	model := costmodel.NewTuned()
	res := &Section41Result{}
	for _, est := range l.Systems() {
		slowdowns, timeouts, err := l.runWorkload(ctx, func(q *query.Query) cardest.Provider {
			return est.ForQuery(l.Graphs[q.ID])
		}, l.IdxPK, rules, model)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Section41Row{
			System:   est.Name(),
			Buckets:  metrics.BucketSlowdowns(slowdowns),
			Timeouts: timeouts,
		})
	}
	return res, nil
}

// runWorkload executes every workload query with runOne in parallel,
// returning the slowdowns in workload order plus the timeout count. It is
// the shared sweep of §4.1, Fig. 6, Fig. 7 and the hedging extension.
func (l *Lab) runWorkload(ctx context.Context, provFor func(q *query.Query) cardest.Provider, idx *index.Set, rules engineRules, model costmodel.Model) ([]float64, int, error) {
	type cellResult struct {
		slowdown float64
		timedOut bool
	}
	perQuery, err := runQueries(ctx, l, func(ctx context.Context, qi int, q *query.Query) (cellResult, error) {
		s, timedOut, err := l.runOne(ctx, q.ID, provFor(q), idx, rules, model)
		return cellResult{s, timedOut}, err
	})
	if err != nil {
		return nil, 0, err
	}
	slowdowns := make([]float64, len(perQuery))
	timeouts := 0
	for i, r := range perQuery {
		slowdowns[i] = r.slowdown
		if r.timedOut {
			timeouts++
		}
	}
	return slowdowns, timeouts, nil
}

// Render formats the §4.1 table.
func (r *Section41Result) Render() string {
	var b strings.Builder
	b.WriteString("Section 4.1: slowdown vs true-cardinality plan (PK indexes, no NLJ, rehash on)\n")
	fmt.Fprintf(&b, "%-12s", "")
	for _, lbl := range metrics.BucketLabels() {
		fmt.Fprintf(&b, "%11s", lbl)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s", row.System)
		for _, f := range row.Buckets {
			fmt.Fprintf(&b, "%10.1f%%", 100*f)
		}
		if row.Timeouts > 0 {
			fmt.Fprintf(&b, "  (%d timeouts)", row.Timeouts)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure6Result holds the three engine-hardening steps of Fig. 6.
type Figure6Result struct {
	Variants []Figure6Variant
}

// Figure6Variant is one subplot: a slowdown histogram.
type Figure6Variant struct {
	Label    string
	Buckets  []float64
	Timeouts int
}

// Figure6 reproduces the risky-plan experiment: PostgreSQL estimates with
// PK indexes under (a) the default engine, (b) nested-loop joins disabled,
// (c) additionally runtime-resized hash tables.
func (l *Lab) Figure6() (*Figure6Result, error) {
	return l.Figure6Context(context.Background())
}

// Figure6Context is Figure6 under a caller-controlled context.
func (l *Lab) Figure6Context(ctx context.Context) (*Figure6Result, error) {
	model := costmodel.NewTuned()
	variants := []struct {
		label string
		rules engineRules
	}{
		{"(a) default", engineRules{DisableNLJ: false, Rehash: false}},
		{"(b) + no nested-loop join", engineRules{DisableNLJ: true, Rehash: false}},
		{"(c) + rehashing", engineRules{DisableNLJ: true, Rehash: true}},
	}
	res := &Figure6Result{}
	for _, v := range variants {
		slowdowns, timeouts, err := l.runWorkload(ctx, func(q *query.Query) cardest.Provider {
			return l.Postgres.ForQuery(l.Graphs[q.ID])
		}, l.IdxPK, v.rules, model)
		if err != nil {
			return nil, err
		}
		res.Variants = append(res.Variants, Figure6Variant{
			Label: v.label, Buckets: metrics.BucketSlowdowns(slowdowns), Timeouts: timeouts,
		})
	}
	return res, nil
}

// Render formats Fig. 6.
func (r *Figure6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: slowdown with PostgreSQL estimates (PK indexes)\n")
	renderBucketRows(&b, r.Variants)
	return b.String()
}

func renderBucketRows(b *strings.Builder, vs []Figure6Variant) {
	fmt.Fprintf(b, "%-28s", "")
	for _, lbl := range metrics.BucketLabels() {
		fmt.Fprintf(b, "%11s", lbl)
	}
	b.WriteString("\n")
	for _, v := range vs {
		fmt.Fprintf(b, "%-28s", v.Label)
		for _, f := range v.Buckets {
			fmt.Fprintf(b, "%10.1f%%", 100*f)
		}
		if v.Timeouts > 0 {
			fmt.Fprintf(b, "  (%d timeouts)", v.Timeouts)
		}
		b.WriteString("\n")
	}
}

// Figure7 compares PK-only against PK+FK indexes (robust engine settings):
// richer physical designs make the optimizer's job harder.
func (l *Lab) Figure7() (*Figure6Result, error) {
	return l.Figure7Context(context.Background())
}

// Figure7Context is Figure7 under a caller-controlled context.
func (l *Lab) Figure7Context(ctx context.Context) (*Figure6Result, error) {
	model := costmodel.NewTuned()
	rules := engineRules{DisableNLJ: true, Rehash: true}
	res := &Figure6Result{}
	for _, v := range []struct {
		label string
		idx   *index.Set
	}{
		{"(a) PK indexes", l.IdxPK},
		{"(b) PK + FK indexes", l.IdxPKFK},
	} {
		slowdowns, timeouts, err := l.runWorkload(ctx, func(q *query.Query) cardest.Provider {
			return l.Postgres.ForQuery(l.Graphs[q.ID])
		}, v.idx, rules, model)
		if err != nil {
			return nil, err
		}
		res.Variants = append(res.Variants, Figure6Variant{
			Label: v.label, Buckets: metrics.BucketSlowdowns(slowdowns), Timeouts: timeouts,
		})
	}
	return res, nil
}

// Figure8Result holds the cost/runtime correlation of the three cost models
// under estimated and true cardinalities.
type Figure8Result struct {
	Panels []Figure8Panel
	// GeoMeanRuntime (workload geometric mean, work units) of the plans
	// each model picks under TRUE cardinalities — the §5.4 comparison
	// (tuned 41% and simple 34% faster than standard in the paper).
	GeoMeanRuntime map[string]float64
}

// Figure8Panel is one subplot: points and the regression summary.
type Figure8Panel struct {
	Model     string
	TrueCards bool
	Cost      []float64
	Runtime   []float64
	Fit       metrics.Regression
}

// Figure8 optimizes and executes every query under {3 cost models} x
// {PostgreSQL estimates, true cardinalities} with PK+FK indexes, recording
// predicted cost vs measured runtime (work units).
func (l *Lab) Figure8() (*Figure8Result, error) {
	return l.Figure8Context(context.Background())
}

// Figure8Context is Figure8 under a caller-controlled context.
func (l *Lab) Figure8Context(ctx context.Context) (*Figure8Result, error) {
	models := []costmodel.Model{costmodel.NewPostgres(), costmodel.NewTuned(), costmodel.NewSimple()}
	res := &Figure8Result{GeoMeanRuntime: make(map[string]float64)}
	rules := engineRules{DisableNLJ: true, Rehash: true}
	for _, m := range models {
		for _, useTrue := range []bool{false, true} {
			type cellResult struct {
				cost, work float64
			}
			perQuery, err := runQueries(ctx, l, func(ctx context.Context, qi int, q *query.Query) (cellResult, error) {
				g := l.Graphs[q.ID]
				st, err := l.truthCtx(ctx, q.ID)
				if err != nil {
					return cellResult{}, err
				}
				var prov cardest.Provider = cardest.True{Store: st}
				if !useTrue {
					prov = l.Postgres.ForQuery(g)
				}
				opt := &optimizer.Optimizer{DB: l.DB, Model: m, Indexes: l.IdxPKFK, DisableNLJ: rules.DisableNLJ}
				p, err := opt.Optimize(g, prov)
				if err != nil {
					return cellResult{}, err
				}
				runner := runnerPool.Get().(*engine.Runner)
				defer runnerPool.Put(runner)
				r, err := runner.Run(l.DB, l.IdxPKFK, g, p, engine.Config{Rehash: rules.Rehash})
				if err != nil {
					return cellResult{}, err
				}
				return cellResult{cost: p.ECost, work: float64(r.Work)}, nil
			})
			if err != nil {
				return nil, err
			}
			panel := Figure8Panel{Model: m.Name(), TrueCards: useTrue}
			var runtimes []float64
			for _, c := range perQuery {
				panel.Cost = append(panel.Cost, c.cost)
				panel.Runtime = append(panel.Runtime, c.work)
				runtimes = append(runtimes, math.Max(1, c.work))
			}
			panel.Fit = metrics.FitRegression(panel.Cost, panel.Runtime)
			res.Panels = append(res.Panels, panel)
			if useTrue {
				res.GeoMeanRuntime[m.Name()] = metrics.GeoMean(runtimes)
			}
		}
	}
	return res, nil
}

// Render formats Fig. 8.
func (r *Figure8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: predicted cost vs measured runtime (PK+FK indexes)\n")
	fmt.Fprintf(&b, "%-18s %-16s %9s %9s %12s\n", "cost model", "cardinalities", "pearson", "R^2", "med |err| %")
	for _, p := range r.Panels {
		cards := "PostgreSQL"
		if p.TrueCards {
			cards = "true"
		}
		fmt.Fprintf(&b, "%-18s %-16s %9.3f %9.3f %11.0f%%\n",
			p.Model, cards, p.Fit.Pearson, p.Fit.R2, 100*p.Fit.MedianAbsPctErr)
	}
	b.WriteString("\nGeometric-mean runtime of plans chosen under true cardinalities (work units):\n")
	for _, name := range sortedKeys(r.GeoMeanRuntime) {
		fmt.Fprintf(&b, "  %-18s %12.0f\n", name, r.GeoMeanRuntime[name])
	}
	return b.String()
}

// CountAlgo counts join operators by algorithm in a plan (reporting helper).
func CountAlgo(n *plan.Node) map[plan.JoinAlgo]int {
	out := make(map[plan.JoinAlgo]int)
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		out[n.Algo]++
		walk(n.Left)
		walk(n.Right)
	}
	walk(n)
	return out
}
