// Package fault is a deterministic, seed-driven fault-injection layer for
// the distributed tier: an HTTP middleware that — per matched route —
// injects latency (with jitter), error responses, hangs that last until
// the client gives up, TCP connection resets, and a one-shot replica
// "crash" after which every request (health probes included) sees its
// connection severed, exactly as if the process had died.
//
// The package exists so the chaos suite (internal/chaos, `make chaos`)
// can drive the router's retries, circuit breakers, deadline propagation
// and the replicas' load shedding against *reproducible* misbehavior: all
// randomness comes from one seeded generator, so a chaos run is replayable
// given the same spec, seed and request order.
//
// Production safety is structural, not conventional: a nil *Injector is
// the off state, its Wrap returns the wrapped handler unchanged (same
// pointer, no closure, no allocation on the request path), and the only
// way to obtain a non-nil Injector is an explicit non-empty spec — the
// `-fault-spec` flag or the test API.
package fault

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Header marks an injected fault on the response so clients (and the chaos
// assertions) can tell injected errors from organic ones.
const Header = "X-Jobench-Fault"

// Rule is one route's fault configuration. All probabilities are in
// [0, 1] and are drawn independently per matched request, in a fixed
// order (hang, reset, error, latency), from the injector's seeded
// generator — which is what makes a run reproducible.
type Rule struct {
	// Route is a URL path prefix the rule applies to; "" and "*" match
	// every path.
	Route string
	// Latency is the injected delay; Jitter adds a uniform random extra
	// on top of it. The delay is bounded by the request context, so a
	// cancelled (or deadline-exceeded) request never keeps sleeping.
	Latency time.Duration
	Jitter  time.Duration
	// LatencyP is the probability a matched request is delayed; 0 with a
	// non-zero Latency or Jitter means 1 (always).
	LatencyP float64
	// ErrorRate is the probability of an injected 500 (body and the
	// X-Jobench-Fault header say "injected").
	ErrorRate float64
	// HangRate is the probability the handler blocks until the client
	// gives up (request context done) and writes nothing.
	HangRate float64
	// ResetRate is the probability the TCP connection is severed before a
	// response line is written — the client observes a connection reset,
	// not an HTTP status.
	ResetRate float64
	// CrashAfter, when positive, "crashes" the replica after this many
	// requests matched the rule: every later request on any route —
	// health probes included — has its connection severed, exactly like a
	// dead process, until Revive is called.
	CrashAfter int
}

// validate bounds-checks the rule's probabilities and durations.
func (r Rule) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"latency_p", r.LatencyP}, {"error", r.ErrorRate}, {"hang", r.HangRate}, {"reset", r.ResetRate}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s=%g out of [0,1]", p.name, p.v)
		}
	}
	if r.Latency < 0 || r.Jitter < 0 {
		return fmt.Errorf("fault: negative latency/jitter")
	}
	if r.CrashAfter < 0 {
		return fmt.Errorf("fault: negative crash_after")
	}
	return nil
}

// Spec is a parsed fault specification: a seed and an ordered rule list
// (first matching route wins).
type Spec struct {
	// Seed drives every probability draw and jitter choice (default 1).
	Seed int64
	// Rules are matched in order; the first rule whose Route prefixes the
	// request path applies.
	Rules []Rule
}

// ParseSpec parses the -fault-spec grammar: rules separated by ';', each
// rule a comma-separated list of key=value pairs. Keys: route (path
// prefix, default "*"), latency (duration), jitter (duration), latency_p,
// error, hang, reset (probabilities in [0,1]), crash_after (request
// count), and seed (spec-wide, settable in any rule). An empty spec
// returns (nil, nil) — fault injection off.
//
//	latency on the execute path, 10% errors everywhere else:
//	  "route=/v1/execute,latency=200ms,jitter=100ms,latency_p=0.5;route=*,error=0.1"
//	crash after 500 requests:
//	  "route=*,crash_after=500"
func ParseSpec(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	spec := &Spec{Seed: 1}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rule := Rule{Route: "*"}
		for _, kv := range strings.Split(part, ",") {
			kv = strings.TrimSpace(kv)
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: %q is not key=value", kv)
			}
			var err error
			switch key {
			case "route":
				rule.Route = val
			case "latency":
				rule.Latency, err = time.ParseDuration(val)
			case "jitter":
				rule.Jitter, err = time.ParseDuration(val)
			case "latency_p":
				rule.LatencyP, err = strconv.ParseFloat(val, 64)
			case "error":
				rule.ErrorRate, err = strconv.ParseFloat(val, 64)
			case "hang":
				rule.HangRate, err = strconv.ParseFloat(val, 64)
			case "reset":
				rule.ResetRate, err = strconv.ParseFloat(val, 64)
			case "crash_after":
				rule.CrashAfter, err = strconv.Atoi(val)
			case "seed":
				spec.Seed, err = strconv.ParseInt(val, 10, 64)
			default:
				return nil, fmt.Errorf("fault: unknown key %q (route|latency|jitter|latency_p|error|hang|reset|crash_after|seed)", key)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: invalid %s=%q: %w", key, val, err)
			}
		}
		if err := rule.validate(); err != nil {
			return nil, err
		}
		spec.Rules = append(spec.Rules, rule)
	}
	if len(spec.Rules) == 0 {
		return nil, nil
	}
	return spec, nil
}

// Stats counts injected faults by kind, for /metrics and the chaos
// accounting assertions.
type Stats struct {
	// Delays, Errors, Hangs and Resets count injected faults of each kind.
	Delays int64
	Errors int64
	Hangs  int64
	Resets int64
	// Crashed reports whether the one-shot crash has fired.
	Crashed bool
}

// Injector applies a Spec to an HTTP handler. A nil *Injector is the off
// state: every method is a no-op and Wrap returns its argument unchanged.
// A non-nil Injector is safe for concurrent use; its draws are serialized
// behind a mutex so a single seed reproduces a run.
type Injector struct {
	rules []Rule

	mu      sync.Mutex
	rng     *rand.Rand
	matched []int // per-rule matched-request counts (for crash_after)

	delays  atomic.Int64
	errors  atomic.Int64
	hangs   atomic.Int64
	resets  atomic.Int64
	crashed atomic.Bool
}

// New builds an Injector from spec; a nil spec yields a nil Injector
// (fault injection off).
func New(spec *Spec) *Injector {
	if spec == nil || len(spec.Rules) == 0 {
		return nil
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		rules:   spec.Rules,
		rng:     rand.New(rand.NewSource(seed)),
		matched: make([]int, len(spec.Rules)),
	}
}

// Stats returns the injected-fault counters; the zero Stats on a nil
// Injector.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Delays:  in.delays.Load(),
		Errors:  in.errors.Load(),
		Hangs:   in.hangs.Load(),
		Resets:  in.resets.Load(),
		Crashed: in.crashed.Load(),
	}
}

// Revive clears the one-shot crash state and resets the per-rule match
// counters, so a chaos script can model a replica restart without
// restarting the process: the revived replica serves again and any
// crash_after clock starts over, exactly as a fresh process's would.
func (in *Injector) Revive() {
	if in == nil {
		return
	}
	in.mu.Lock()
	for i := range in.matched {
		in.matched[i] = 0
	}
	in.mu.Unlock()
	in.crashed.Store(false)
}

// decision is one request's drawn faults, computed under the mutex so the
// draw order (and therefore the whole run) is deterministic in the seed.
type decision struct {
	hang  bool
	reset bool
	fail  bool
	delay time.Duration
}

// decide matches path against the rules and draws the request's faults.
func (in *Injector) decide(path string) decision {
	var d decision
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range in.rules {
		if r.Route != "" && r.Route != "*" && !strings.HasPrefix(path, r.Route) {
			continue
		}
		in.matched[i]++
		if r.CrashAfter > 0 && in.matched[i] > r.CrashAfter {
			// The tripping request is the first casualty: sever it too.
			in.crashed.Store(true)
			d.reset = true
			return d
		}
		// Fixed draw order: hang, reset, error, latency. Every configured
		// probability draws exactly once whether or not an earlier fault
		// already fired, so one request consumes a spec-determined number
		// of variates and the stream stays aligned across runs.
		if r.HangRate > 0 && in.rng.Float64() < r.HangRate {
			d.hang = true
		}
		if r.ResetRate > 0 && in.rng.Float64() < r.ResetRate {
			d.reset = true
		}
		if r.ErrorRate > 0 && in.rng.Float64() < r.ErrorRate {
			d.fail = true
		}
		if r.Latency > 0 || r.Jitter > 0 {
			p := r.LatencyP
			if p == 0 {
				p = 1
			}
			if p >= 1 || in.rng.Float64() < p {
				d.delay = r.Latency
				if r.Jitter > 0 {
					d.delay += time.Duration(in.rng.Int63n(int64(r.Jitter)))
				}
			}
		}
		break
	}
	return d
}

// Wrap returns h decorated with the injector's faults. On a nil Injector
// it returns h itself — the production path carries no wrapper, no
// closure, and no per-request allocation.
func (in *Injector) Wrap(h http.Handler) http.Handler {
	if in == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A crashed replica is indistinguishable from a dead process:
		// every connection — /healthz probes included — is severed.
		if in.crashed.Load() {
			in.resets.Add(1)
			abort(w)
			return
		}
		d := in.decide(r.URL.Path)
		if d.hang {
			in.hangs.Add(1)
			// Hold the request open until the client gives up (deadline,
			// disconnect, or server shutdown); write nothing.
			<-r.Context().Done()
			return
		}
		if d.reset {
			in.resets.Add(1)
			abort(w)
			return
		}
		if d.delay > 0 {
			in.delays.Add(1)
			t := time.NewTimer(d.delay)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				return
			}
		}
		if d.fail {
			in.errors.Add(1)
			w.Header().Set(Header, "injected")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			_, _ = w.Write([]byte(`{"error":"injected fault"}` + "\n"))
			return
		}
		h.ServeHTTP(w, r)
	})
}

// abort severs the client's TCP connection without writing a response
// line: hijack and close when the server supports it, otherwise panic
// with http.ErrAbortHandler (net/http's sanctioned mid-request abort).
func abort(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}
