package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("route=/v1/execute,latency=200ms,jitter=100ms,latency_p=0.5;route=*,error=0.1,seed=7")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Seed != 7 {
		t.Fatalf("seed = %d, want 7", spec.Seed)
	}
	if len(spec.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(spec.Rules))
	}
	r := spec.Rules[0]
	if r.Route != "/v1/execute" || r.Latency != 200*time.Millisecond || r.Jitter != 100*time.Millisecond || r.LatencyP != 0.5 {
		t.Fatalf("rule 0 = %+v", r)
	}
	if spec.Rules[1].Route != "*" || spec.Rules[1].ErrorRate != 0.1 {
		t.Fatalf("rule 1 = %+v", spec.Rules[1])
	}
}

func TestParseSpecEmpty(t *testing.T) {
	for _, s := range []string{"", "   ", ";"} {
		spec, err := ParseSpec(s)
		if err != nil || spec != nil {
			t.Fatalf("ParseSpec(%q) = %v, %v; want nil, nil", s, spec, err)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"error=1.5",          // probability out of range
		"latency=oops",       // bad duration
		"frobnicate=1",       // unknown key
		"route",              // not key=value
		"crash_after=-1",     // negative count
		"error=0.1,hang=-.2", // negative probability
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q): want error, got nil", s)
		}
	}
}

func TestNilInjectorIsIdentity(t *testing.T) {
	var in *Injector
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	wrapped := in.Wrap(h)
	// Must be the identical function value — no wrapper on the production
	// path (func values aren't ==-comparable, so compare code pointers).
	if reflect.ValueOf(wrapped).Pointer() != reflect.ValueOf(h).Pointer() {
		t.Fatalf("nil injector Wrap changed the handler: %T", wrapped)
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector Stats = %+v, want zero", s)
	}
	in.Revive() // must not panic
}

func TestNilInjectorNoAllocations(t *testing.T) {
	var in *Injector
	h := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	allocs := testing.AllocsPerRun(100, func() {
		_ = in.Wrap(h)
		_ = in.Stats()
	})
	if allocs != 0 {
		t.Fatalf("nil injector allocates %v per wrap+stats, want 0", allocs)
	}
}

func TestDeterministicDraws(t *testing.T) {
	spec := &Spec{Seed: 42, Rules: []Rule{{Route: "*", ErrorRate: 0.3}}}
	run := func() []bool {
		in := New(spec)
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.decide("/v1/optimize").fail
		}
		return out
	}
	a, b := run(), run()
	errs := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical seeds", i)
		}
		if a[i] {
			errs++
		}
	}
	// 200 draws at p=0.3: expect ~60; a wide band guards the plumbing,
	// not the RNG.
	if errs < 30 || errs > 100 {
		t.Fatalf("injected %d/200 errors at p=0.3; draw stream looks wrong", errs)
	}
}

func TestInjectedError(t *testing.T) {
	in := New(&Spec{Seed: 1, Rules: []Rule{{Route: "/v1/", ErrorRate: 1}}})
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(in.Wrap(ok))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/optimize")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if resp.Header.Get(Header) != "injected" {
		t.Fatalf("missing %s header; body %q", Header, body)
	}
	if !strings.Contains(string(body), "injected fault") {
		t.Fatalf("body = %q", body)
	}

	// Unmatched route passes through untouched.
	resp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("get healthz: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp2.StatusCode)
	}

	if s := in.Stats(); s.Errors != 1 || s.Delays != 0 || s.Resets != 0 || s.Hangs != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectedLatencyBoundedByContext(t *testing.T) {
	in := New(&Spec{Seed: 1, Rules: []Rule{{Route: "*", Latency: time.Hour}}})
	srv := httptest.NewServer(in.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/x", nil)
	start := time.Now()
	_, err := http.DefaultClient.Do(req)
	if err == nil {
		t.Fatal("expected context-deadline error through injected latency")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("injected sleep ignored the context (took %v)", elapsed)
	}
	if s := in.Stats(); s.Delays != 1 {
		t.Fatalf("stats = %+v, want 1 delay", s)
	}
}

func TestInjectedReset(t *testing.T) {
	in := New(&Spec{Seed: 1, Rules: []Rule{{Route: "*", ResetRate: 1}}})
	srv := httptest.NewServer(in.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})))
	defer srv.Close()

	_, err := http.Get(srv.URL + "/x")
	if err == nil {
		t.Fatal("expected transport error from injected reset")
	}
	if s := in.Stats(); s.Resets != 1 {
		t.Fatalf("stats = %+v, want 1 reset", s)
	}
}

func TestInjectedHangEndsWithClient(t *testing.T) {
	in := New(&Spec{Seed: 1, Rules: []Rule{{Route: "*", HangRate: 1}}})
	srv := httptest.NewServer(in.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/x", nil)
	_, err := http.DefaultClient.Do(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if s := in.Stats(); s.Hangs != 1 {
		t.Fatalf("stats = %+v, want 1 hang", s)
	}
}

func TestCrashAfterSeversEverything(t *testing.T) {
	in := New(&Spec{Seed: 1, Rules: []Rule{{Route: "/v1/", CrashAfter: 2}}})
	srv := httptest.NewServer(in.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})))
	defer srv.Close()

	get := func(path string) (*http.Response, error) {
		resp, err := http.Get(srv.URL + path)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return resp, err
	}

	// First two matched requests survive.
	for i := 0; i < 2; i++ {
		if resp, err := get("/v1/optimize"); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d before crash: %v / %v", i, resp, err)
		}
	}
	// Third matched request trips the crash.
	if _, err := get("/v1/optimize"); err == nil {
		t.Fatal("expected reset on crash-tripping request")
	}
	// After the crash even unmatched routes (health probes) are severed.
	if _, err := get("/healthz"); err == nil {
		t.Fatal("expected reset on /healthz after crash")
	}
	if s := in.Stats(); !s.Crashed || s.Resets < 2 {
		t.Fatalf("stats = %+v, want crashed with >=2 resets", s)
	}

	// Revive restores service, like a restarted replica.
	in.Revive()
	if resp, err := get("/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("after revive: %v / %v", resp, err)
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	in := New(&Spec{Seed: 1, Rules: []Rule{
		{Route: "/v1/execute", ErrorRate: 1},
		{Route: "*", ErrorRate: 0},
	}})
	srv := httptest.NewServer(in.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/optimize")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize should fall through to the catch-all: %v / %v", resp, err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/v1/execute")
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("execute status = %d, want injected 500", resp.StatusCode)
	}
}
