// Package hashtab provides the flat, open-layout hash structures shared by
// the execution engine and the true-cardinality DP.
//
// Both replace pointer-chasing designs — the engine's chained
// [][]hashEntry buckets and truecard's map[int64][]int32 postings — with
// contiguous arenas chained by int32 indices: one allocation per table
// instead of one per bucket, sequential memory instead of scattered slice
// headers, and no per-insert append growth on hot paths.
//
// Table keeps the §4.1 metering contract of the chained table it replaces
// bit-for-bit: the bucket count is still derived from the optimizer's
// cardinality estimate, a probe still reports the full collision-chain
// length it walked, and a rehash still costs one work unit per reinserted
// entry at exactly the same load-factor trigger. Only the memory layout
// changed; every metered quantity is identical.
package hashtab

import (
	"math"
	"slices"
)

// GatherAppend appends src[idx[0]], src[idx[1]], ... to dst — the block
// emit primitive of the vectorized executors (the engine's emitter,
// truecard's join): capacity is ensured once per block, then the gather
// runs as a straight indexed fill with no per-element append bookkeeping.
func GatherAppend(dst, src []int32, idx []int32) []int32 {
	n := len(dst)
	dst = slices.Grow(dst, len(idx))[:n+len(idx)]
	out := dst[n:]
	for i, ix := range idx {
		out[i] = src[ix]
	}
	return dst
}

// MaxBuckets caps the bucket count so absurd estimates (NaN guards, 1e30)
// cannot blow up the allocation.
const MaxBuckets = 1 << 28

// Hash64 is the 64-bit finalizer of MurmurHash3, the shared hash function
// of every structure in this package.
func Hash64(v int64) uint64 {
	x := uint64(v)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NextPow2 rounds v up to a power of two, with a floor of 4.
func NextPow2(v uint64) uint64 {
	if v < 4 {
		return 4
	}
	p := uint64(4)
	for p < v {
		p <<= 1
	}
	return p
}

// Table is a flat chained hash table over int64 keys with int32 values.
// Entries live in one contiguous arena (keys/vals/next); buckets are int32
// head indices chained through next. Duplicate keys are kept; a probe
// returns all of them.
//
// Sizing from a cardinality *estimate* is the §4.1 mechanism: an
// underestimated build side yields long collision chains whose traversal
// costs real, metered work. With rehashing enabled the table doubles once
// the load factor exceeds 3 (the PostgreSQL 9.5 behaviour), paying the
// reinsertion work instead.
type Table struct {
	heads []int32 // bucket heads; -1 = empty
	keys  []int64 // entry arena, insertion order
	vals  []int32
	next  []int32 // collision chain links into the arena; -1 terminates
	mask  uint64
}

// New sizes a table from the optimizer's cardinality estimate of the build
// side (NOT its true size — that is the whole point). NaN and sub-1
// estimates clamp to 1; the bucket count is capped at MaxBuckets.
func New(estimate float64) *Table {
	if math.IsNaN(estimate) || estimate < 1 {
		estimate = 1
	}
	if estimate > MaxBuckets {
		estimate = MaxBuckets
	}
	nb := NextPow2(uint64(estimate))
	t := &Table{heads: make([]int32, nb), mask: nb - 1}
	for i := range t.heads {
		t.heads[i] = -1
	}
	return t
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.keys) }

// NumBuckets returns the current bucket count.
func (t *Table) NumBuckets() int { return len(t.heads) }

// Reserve pre-grows the entry arena to hold n entries without reallocation.
// It does not change the bucket count (which is the estimate's job).
func (t *Table) Reserve(n int) {
	if cap(t.keys) >= n {
		return
	}
	keys := make([]int64, len(t.keys), n)
	copy(keys, t.keys)
	t.keys = keys
	vals := make([]int32, len(t.vals), n)
	copy(vals, t.vals)
	t.vals = vals
	next := make([]int32, len(t.next), n)
	copy(next, t.next)
	t.next = next
}

// Insert appends (key, val) and returns the rehash work performed: zero
// normally, or the number of reinserted entries when the insert pushed the
// load factor past 3 with rehashing enabled. The caller owns the per-insert
// build cost; Insert only reports the extra metered work it triggered.
func (t *Table) Insert(key int64, val int32, rehash bool) int64 {
	i := int32(len(t.keys))
	b := Hash64(key) & t.mask
	t.keys = append(t.keys, key)
	t.vals = append(t.vals, val)
	t.next = append(t.next, t.heads[b])
	t.heads[b] = i
	if rehash && uint64(len(t.keys)) > 3*uint64(len(t.heads)) {
		return t.grow()
	}
	return 0
}

// grow doubles the bucket count and rechains every arena entry, returning
// one work unit per entry moved (the metered reinsertion cost of the 9.5
// behaviour).
func (t *Table) grow() int64 {
	nb := uint64(len(t.heads)) * 2
	if cap(t.heads) >= int(nb) {
		t.heads = t.heads[:nb]
	} else {
		t.heads = make([]int32, nb)
	}
	t.mask = nb - 1
	for i := range t.heads {
		t.heads[i] = -1
	}
	for i := range t.keys {
		b := Hash64(t.keys[i]) & t.mask
		t.next[i] = t.heads[b]
		t.heads[b] = int32(i)
	}
	return int64(len(t.keys))
}

// Probe appends the values stored under key to out and returns it, plus the
// number of entries examined: the full collision-chain length, matching or
// not — the chain walk §4.1's undersized tables pay for and Fig. 6c's
// rehashing removes. Values of a duplicated key come back in reverse
// insertion order (head insertion); all engine-metered quantities are
// order-independent.
func (t *Table) Probe(key int64, out []int32) ([]int32, int64) {
	var walked int64
	for i := t.heads[Hash64(key)&t.mask]; i >= 0; i = t.next[i] {
		walked++
		if t.keys[i] == key {
			out = append(out, t.vals[i])
		}
	}
	return out, walked
}
