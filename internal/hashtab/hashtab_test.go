package hashtab

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableProbeAndChains(t *testing.T) {
	// A table sized for 4 entries receiving 4000 forces long chains.
	ht := New(4)
	for i := int32(0); i < 4000; i++ {
		ht.Insert(int64(i%100), i, false)
	}
	out, walked := ht.Probe(7, nil)
	if len(out) != 40 {
		t.Fatalf("Probe(7) found %d entries, want 40", len(out))
	}
	// The bucket holds ~1000 entries (4000 over 4 buckets): long chains.
	if walked < 100 {
		t.Fatalf("walked only %d entries; expected long collision chains", walked)
	}

	// The same data in a rehashing table: short chains.
	ht2 := New(4)
	for i := int32(0); i < 4000; i++ {
		ht2.Insert(int64(i%100), i, true)
	}
	out2, walked2 := ht2.Probe(7, nil)
	if len(out2) != 40 {
		t.Fatalf("rehash Probe found %d", len(out2))
	}
	if walked2 >= walked/2 {
		t.Fatalf("rehash chains (%d) not much shorter than fixed (%d)", walked2, walked)
	}
}

func TestTableSizing(t *testing.T) {
	for _, tc := range []struct {
		est  float64
		want int
	}{
		{0, 4}, {1, 4}, {4, 4}, {5, 8}, {1000, 1024}, {-3, 4},
	} {
		ht := New(tc.est)
		if got := ht.NumBuckets(); got != tc.want {
			t.Errorf("New(%g): %d buckets, want %d", tc.est, got, tc.want)
		}
	}
	if testing.Short() {
		// The cap check below allocates the full 1<<28-bucket table —
		// seconds of wall clock.
		t.Skip("skipping huge-allocation cap check in -short mode")
	}
	// NaN and absurd estimates must not blow up the allocation.
	huge := New(1e30)
	if huge.NumBuckets() > MaxBuckets {
		t.Fatal("estimate cap not applied")
	}
}

// chainedRef is the old [][]hashEntry design, kept as the metering oracle:
// the flat table must report identical walk lengths and rehash work for any
// insertion sequence.
type chainedRef struct {
	buckets [][]refEntry
	mask    uint64
	n       int
}

type refEntry struct {
	key int64
	row int32
}

func newChainedRef(buckets uint64) *chainedRef {
	return &chainedRef{buckets: make([][]refEntry, buckets), mask: buckets - 1}
}

func (h *chainedRef) insert(key int64, row int32, rehash bool) int64 {
	b := Hash64(key) & h.mask
	h.buckets[b] = append(h.buckets[b], refEntry{key, row})
	h.n++
	if rehash && uint64(h.n) > 3*uint64(len(h.buckets)) {
		old := h.buckets
		nb := uint64(len(old)) * 2
		h.buckets = make([][]refEntry, nb)
		h.mask = nb - 1
		var work int64
		for _, bucket := range old {
			for _, e := range bucket {
				nb := Hash64(e.key) & h.mask
				h.buckets[nb] = append(h.buckets[nb], e)
				work++
			}
		}
		return work
	}
	return 0
}

func (h *chainedRef) probe(key int64) (matches []int32, walked int64) {
	bucket := h.buckets[Hash64(key)&h.mask]
	for _, e := range bucket {
		if e.key == key {
			matches = append(matches, e.row)
		}
	}
	return matches, int64(len(bucket))
}

// TestTableMeteringMatchesChainedReference: for random workloads, with and
// without rehashing, every metered quantity (walk length per probe, rehash
// work per insert) and every match set is identical between the flat table
// and the chained reference it replaced. This is the §4.1 invariance
// contract of the vectorized engine.
func TestTableMeteringMatchesChainedReference(t *testing.T) {
	f := func(keys []int16, probes []int16, rehash bool) bool {
		ht := New(2)
		ref := newChainedRef(uint64(ht.NumBuckets()))
		for i, k := range keys {
			if ht.Insert(int64(k), int32(i), rehash) != ref.insert(int64(k), int32(i), rehash) {
				return false
			}
		}
		if ht.Len() != ref.n {
			return false
		}
		for _, k := range probes {
			got, walked := ht.Probe(int64(k), nil)
			want, refWalked := ref.probe(int64(k))
			if walked != refWalked || len(got) != len(want) {
				return false
			}
			seen := make(map[int32]bool, len(got))
			for _, v := range got {
				seen[v] = true
			}
			for _, v := range want {
				if !seen[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Probe returns exactly the rows inserted under a key, regardless
// of rehashing.
func TestTableCorrectnessProperty(t *testing.T) {
	f := func(keys []int8, rehash bool) bool {
		ht := New(2)
		want := make(map[int64][]int32)
		for i, k := range keys {
			ht.Insert(int64(k), int32(i), rehash)
			want[int64(k)] = append(want[int64(k)], int32(i))
		}
		for k, rows := range want {
			got, _ := ht.Probe(k, nil)
			if len(got) != len(rows) {
				return false
			}
			seen := make(map[int32]bool, len(got))
			for _, r := range got {
				seen[r] = true
			}
			for _, r := range rows {
				if !seen[r] {
					return false
				}
			}
		}
		got, _ := ht.Probe(999, nil)
		return len(got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableReserve(t *testing.T) {
	ht := New(8)
	ht.Insert(1, 10, false)
	ht.Reserve(100)
	ht.Insert(1, 11, false)
	ht.Insert(2, 20, false)
	if got, _ := ht.Probe(1, nil); len(got) != 2 {
		t.Fatalf("Probe(1) after Reserve: %v", got)
	}
	if got, _ := ht.Probe(2, nil); len(got) != 1 || got[0] != 20 {
		t.Fatalf("Probe(2) after Reserve: %v", got)
	}
	if ht.NumBuckets() != 8 {
		t.Fatalf("Reserve changed bucket count to %d", ht.NumBuckets())
	}
}

func TestPostingsMatchesMap(t *testing.T) {
	// spread=1 exercises the dense offset-table resolution, the large
	// prime spread forces the sparse flat-hash path.
	for _, spread := range []int64{1, 2_000_003} {
		postingsMatchesMap(t, spread)
	}
}

func postingsMatchesMap(t *testing.T, spread int64) {
	t.Helper()
	f := func(pairs []int16) bool {
		keys := make([]int64, len(pairs))
		vals := make([]int32, len(pairs))
		want := make(map[int64][]int32)
		for i, k := range pairs {
			keys[i] = int64(k%50) * spread
			vals[i] = int32(i)
			want[keys[i]] = append(want[keys[i]], vals[i])
		}
		p := BuildPostings(keys, vals)
		if p.Len() != len(pairs) || p.Keys() != len(want) {
			return false
		}
		for k, rows := range want {
			got := p.Lookup(k)
			if len(got) != len(rows) {
				return false
			}
			// Order must match the map-of-appends it replaced: input order.
			for i := range got {
				if got[i] != rows[i] {
					return false
				}
			}
		}
		return p.Lookup(-12345) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("spread %d: %v", spread, err)
	}
}

func TestPostingsEmpty(t *testing.T) {
	p := BuildPostings(nil, nil)
	if p.Len() != 0 || p.Keys() != 0 || p.Lookup(0) != nil {
		t.Fatalf("empty postings misbehave: len=%d keys=%d", p.Len(), p.Keys())
	}
}

// Keys spanning the full int64 range must not wrap the dense-range check
// (span+1 overflows to 0) — this input used to panic.
func TestPostingsExtremeKeyRange(t *testing.T) {
	p := BuildPostings([]int64{math.MinInt64, math.MaxInt64}, []int32{1, 2})
	if got := p.Lookup(math.MinInt64); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Lookup(MinInt64) = %v", got)
	}
	if got := p.Lookup(math.MaxInt64); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Lookup(MaxInt64) = %v", got)
	}
	if p.Lookup(0) != nil {
		t.Fatal("Lookup(0) found a phantom group")
	}
}
