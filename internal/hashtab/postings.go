package hashtab

// Postings is a read-only multimap from int64 keys to []int32 value lists,
// the flat replacement for map[int64][]int32: all values live in one
// contiguous arena grouped by key, with per-group offsets, and keys resolve
// to groups through a flat chained hash — or, when the key domain is dense
// (surrogate keys almost always are), through a direct offset table with no
// hashing at all. Building performs no per-key slice growth — group sizes
// are counted first, then every value is placed exactly once — so a build
// is two passes over the input and a constant number of allocations
// regardless of key skew.
//
// Per-key value order is input order, exactly as successive appends to a
// map's slices would have produced, and group numbering is first-seen
// order in both resolution modes.
type Postings struct {
	// Sparse resolution: flat chained hash over group keys.
	heads []int32 // group hash buckets; -1 = empty
	gnext []int32 // group collision chains
	mask  uint64

	// Dense resolution: key-min indexes straight into a group table.
	dense []int32 // key - min -> group+1; 0 = no group
	min   int64

	gkeys []int64 // key of each group, first-seen order
	offs  []int32 // per group: start of its values in vals; len = groups+1
	vals  []int32 // all values, grouped, input order within a group
}

// denseFactor is the maximum key-range-to-key-count ratio for the dense
// offset table: up to this sparsity the table costs at most denseFactor
// int32s per input key, cheaper than hashing every probe.
const denseFactor = 4

// denseMax caps the offset table outright, whatever the ratio promises.
const denseMax = 1 << 27

// BuildPostings groups vals by their parallel keys. Both slices must have
// equal length; the result references neither.
func BuildPostings(keys []int64, vals []int32) *Postings {
	n := len(keys)
	p := &Postings{}

	var counts []int32
	gids := make([]int32, n)

	if n > 0 {
		lo, hi := keys[0], keys[0]
		for _, k := range keys {
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		// hi >= lo, so the uint64 span never wraps — but span+1 would when
		// the keys cover the whole int64 range, so compare the span itself
		// and only then size the table at span+1.
		if span := uint64(hi) - uint64(lo); span < uint64(max(denseFactor*n, 16)) && span < denseMax {
			p.min = lo
			p.dense = make([]int32, span+1)
			for i, k := range keys {
				slot := k - p.min
				g := p.dense[slot] - 1
				if g < 0 {
					g = int32(len(p.gkeys))
					p.gkeys = append(p.gkeys, k)
					p.dense[slot] = g + 1
					counts = append(counts, 0)
				}
				gids[i] = g
				counts[g]++
			}
		}
	}
	if p.dense == nil {
		// Sparse path: assign each input to a group through the flat hash,
		// creating groups in first-seen order, and count group sizes.
		nb := NextPow2(uint64(n))
		if nb > MaxBuckets {
			nb = MaxBuckets
		}
		p.heads = make([]int32, nb)
		p.mask = nb - 1
		for i := range p.heads {
			p.heads[i] = -1
		}
		for i, k := range keys {
			b := Hash64(k) & p.mask
			g := int32(-1)
			for j := p.heads[b]; j >= 0; j = p.gnext[j] {
				if p.gkeys[j] == k {
					g = j
					break
				}
			}
			if g < 0 {
				g = int32(len(p.gkeys))
				p.gkeys = append(p.gkeys, k)
				p.gnext = append(p.gnext, p.heads[b])
				p.heads[b] = g
				counts = append(counts, 0)
			}
			gids[i] = g
			counts[g]++
		}
	}

	// Prefix sums give each group its slot range; pass 2 places values.
	p.offs = make([]int32, len(counts)+1)
	for g, c := range counts {
		p.offs[g+1] = p.offs[g] + c
	}
	p.vals = make([]int32, n)
	cursor := make([]int32, len(counts))
	copy(cursor, p.offs[:len(counts)])
	for i, g := range gids {
		p.vals[cursor[g]] = vals[i]
		cursor[g]++
	}
	return p
}

// Lookup returns the values stored under key, in input order. The returned
// slice aliases the arena and must not be modified. The dense path stays
// within the inlining budget (the probe loops of truecard and the engine's
// index joins call this once per tuple); the sparse walk is a separate
// function so it does not weigh the common case down.
func (p *Postings) Lookup(key int64) []int32 {
	if p.dense != nil {
		slot := uint64(key) - uint64(p.min)
		if slot >= uint64(len(p.dense)) {
			return nil
		}
		g := p.dense[slot]
		if g == 0 {
			return nil
		}
		return p.vals[p.offs[g-1]:p.offs[g]]
	}
	return p.lookupSparse(key)
}

func (p *Postings) lookupSparse(key int64) []int32 {
	if p.heads == nil {
		return nil
	}
	for j := p.heads[Hash64(key)&p.mask]; j >= 0; j = p.gnext[j] {
		if p.gkeys[j] == key {
			return p.vals[p.offs[j]:p.offs[j+1]]
		}
	}
	return nil
}

// DenseView exposes the dense resolution arrays so that probe loops hot
// enough to care can perform the three-instruction lookup inline (the
// combined Lookup exceeds the compiler's inlining budget). ok reports
// whether this Postings resolves densely; when false, use Lookup.
//
//	slot := uint64(key) - uint64(v.Min)
//	if slot < uint64(len(v.Dense)) {
//		if g := v.Dense[slot]; g != 0 {
//			matches = v.Vals[v.Offs[g-1]:v.Offs[g]]
//		}
//	}
type DenseView struct {
	Dense []int32 // key - Min -> group+1; 0 = no group
	Min   int64
	Offs  []int32
	Vals  []int32
}

// DenseView returns the dense arrays, or ok=false for sparse postings.
// The slices alias the arena and must not be modified.
func (p *Postings) DenseView() (DenseView, bool) {
	if p.dense == nil {
		return DenseView{}, false
	}
	return DenseView{Dense: p.dense, Min: p.min, Offs: p.offs, Vals: p.vals}, true
}

// Keys returns the number of distinct keys.
func (p *Postings) Keys() int { return len(p.gkeys) }

// Group returns the g-th key (groups are numbered in first-seen order) and
// its values. The values alias the arena and must not be modified.
func (p *Postings) Group(g int) (int64, []int32) {
	return p.gkeys[g], p.vals[p.offs[g]:p.offs[g+1]]
}

// Len returns the total number of values.
func (p *Postings) Len() int { return len(p.vals) }
