package imdb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"jobench/internal/storage"
)

// Config controls data generation.
type Config struct {
	// Scale scales every table; 1.0 produces ~10,000 titles and ~450,000
	// rows total, preserving the real data set's relative table sizes
	// (cast_info ~14x title, movie_info ~6x, ...).
	Scale float64
	// Seed makes generation fully deterministic.
	Seed int64
	// Skew multiplies the Zipf-style exponent of the per-title popularity
	// weight that drives every FK fan-out. 0 (or 1.0) is the baseline —
	// byte-identical to the generator before the knob existed; >1 makes the
	// heavy tail heavier, <1 flattens it toward uniformity.
	Skew float64
	// Correlation scales the join-crossing correlations: the probability
	// that a movie_companies row draws its company from the title's
	// country-local pool (baseline 0.70) and that a cast_info row draws its
	// person locally (baseline 0.65). 0 (or 1.0) is the baseline; >1
	// tightens the correlation (probabilities are clamped below 0.99), <1
	// loosens it toward the independence that estimators assume.
	Correlation float64
}

// DefaultConfig is the scale used by the experiment harness.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 42} }

// gen carries the generator state: one RNG and the latent per-entity
// variables that create the correlations the paper's estimators miss.
type gen struct {
	rng *rand.Rand
	cfg Config

	// Effective knob values (Config.Skew/Correlation applied to the
	// baseline constants). At the default knobs these equal the historical
	// constants bit-for-bit, so default generation is byte-identical.
	skewExp      float64 // popularity-weight exponent (baseline 1.05)
	companyLocal float64 // P(company from title's country pool), baseline 0.70
	personLocal  float64 // P(person from title's country pool), baseline 0.65

	nTitle, nCompany, nKeyword, nPerson, nChar int

	// Per-title latents.
	titlePop     []float64 // popularity drives every fan-out (correlated!)
	titleKind    []int     // index into kindTypes
	titleYear    []int64   // 0 = NULL
	titleCountry []int     // index into countries
	titleGenres  [][]int   // indexes into genres
	titleRating  []int64   // rating*10, 0 = absent
	titleVotes   []int64
	titleSequel  []bool

	// Per-company latents.
	companyCountry []int

	// Per-person latents.
	personPop     []float64
	personGender  []int // 0 male, 1 female, 2 NULL
	personCountry []int

	// Weighted sampling pools: persons by country, companies by country.
	personPool  map[int]*pool
	companyPool map[int]*pool
}

// pool supports weighted sampling (popular entities drawn more often).
type pool struct {
	ids []int64
	cum []float64 // cumulative weights
}

func (p *pool) add(id int64, w float64) {
	total := 0.0
	if len(p.cum) > 0 {
		total = p.cum[len(p.cum)-1]
	}
	p.ids = append(p.ids, id)
	p.cum = append(p.cum, total+w)
}

func (p *pool) sample(rng *rand.Rand) int64 {
	if len(p.ids) == 0 {
		return 0
	}
	u := rng.Float64() * p.cum[len(p.cum)-1]
	i := sort.SearchFloat64s(p.cum, u)
	if i >= len(p.ids) {
		i = len(p.ids) - 1
	}
	return p.ids[i]
}

// Generate builds the full 21-table database.
func Generate(cfg Config) *storage.Database {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	skew := cfg.Skew
	if skew <= 0 {
		skew = 1.0
	}
	corr := cfg.Correlation
	if corr <= 0 {
		corr = 1.0
	}
	g := &gen{
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		cfg:          cfg,
		skewExp:      1.05 * skew,
		companyLocal: math.Min(0.70*corr, 0.99),
		personLocal:  math.Min(0.65*corr, 0.99),
	}
	g.nTitle = max(300, int(10000*cfg.Scale))
	g.nCompany = max(60, g.nTitle/10)
	g.nKeyword = len(specialKeywords) + max(80, g.nTitle/8)
	g.nPerson = max(250, g.nTitle)
	g.nChar = max(150, g.nTitle/2)

	db := storage.NewDatabase()
	g.dimensionTables(db)
	g.titleTable(db)
	g.companyTable(db)
	g.keywordTable(db)
	g.personTables(db)
	g.movieCompanies(db)
	g.movieInfo(db)
	g.movieInfoIdx(db)
	g.movieKeyword(db)
	g.castInfo(db)
	g.movieLink(db)
	g.personInfo(db)
	g.completeCast(db)
	if err := db.Check(); err != nil {
		panic(fmt.Sprintf("imdb: generated inconsistent database: %v", err))
	}
	return db
}

// popWeight draws a heavy-tailed (Pareto-like) popularity weight >= 1.
// The same weight multiplies the fan-out of *every* satellite table of a
// title, which is exactly the positive correlation that makes independence-
// based join estimates systematically too low (paper §3.2). The exponent is
// the Skew knob (baseline 1.05).
func (g *gen) popWeight() float64 {
	w := math.Exp(g.rng.ExpFloat64() * g.skewExp)
	if w > 120 {
		w = 120
	}
	return w
}

// weightedPick selects an index from shares (which need not sum to 1).
func (g *gen) weightedPick(shares []float64) int {
	total := 0.0
	for _, s := range shares {
		total += s
	}
	u := g.rng.Float64() * total
	acc := 0.0
	for i, s := range shares {
		acc += s
		if u < acc {
			return i
		}
	}
	return len(shares) - 1
}

// poisson draws a Poisson variate (Knuth's method; our lambdas are small).
func (g *gen) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= g.rng.Float64()
	}
	return k - 1
}

func (g *gen) pickCountry() int {
	shares := make([]float64, len(countries))
	for i, c := range countries {
		shares[i] = c.share
	}
	return g.weightedPick(shares)
}

// dimensionTables fills the six small fixed dimension tables.
func (g *gen) dimensionTables(db *storage.Database) {
	add := func(name, valCol string, vals []string) {
		id := storage.NewIntColumn("id")
		v := storage.NewStringColumn(valCol)
		for i, s := range vals {
			id.AppendInt(int64(i + 1))
			v.AppendString(s)
		}
		db.Add(storage.NewTable(name, id, v))
	}
	add("kind_type", "kind", kindTypes)
	add("info_type", "info", infoTypes)
	add("company_type", "kind", companyTypes)
	add("role_type", "role", roleTypes)
	add("link_type", "link", linkTypes)
	add("comp_cast_type", "kind", compCastTypes)
}

func (g *gen) titleTable(db *storage.Database) {
	n := g.nTitle
	g.titlePop = make([]float64, n)
	g.titleKind = make([]int, n)
	g.titleYear = make([]int64, n)
	g.titleCountry = make([]int, n)
	g.titleGenres = make([][]int, n)
	g.titleRating = make([]int64, n)
	g.titleVotes = make([]int64, n)
	g.titleSequel = make([]bool, n)

	id := storage.NewIntColumn("id")
	title := storage.NewStringColumn("title")
	kindID := storage.NewIntColumn("kind_id")
	year := storage.NewIntColumn("production_year")
	season := storage.NewIntColumn("season_nr")
	episode := storage.NewIntColumn("episode_nr")

	genreIdx := make(map[string]int, len(genres))
	for i, s := range genres {
		genreIdx[s] = i
	}

	for i := 0; i < n; i++ {
		pop := g.popWeight()
		kind := g.weightedPick(kindShare)
		// Movies and tv series are more popular than episodes on average.
		if kind == 6 {
			pop = 1 + (pop-1)*0.4
		}
		g.titlePop[i] = pop
		g.titleKind[i] = kind

		// Year: skewed towards the present; episodes exist only after 1950.
		var y int64
		switch kind {
		case 6: // episode
			y = 2013 - int64(g.rng.ExpFloat64()*9)
			if y < 1950 {
				y = 1950 + int64(g.rng.Intn(20))
			}
		case 5: // video game
			y = 2013 - int64(g.rng.ExpFloat64()*7)
			if y < 1975 {
				y = 1975
			}
		default:
			y = 2013 - int64(g.rng.ExpFloat64()*22)
			if y < 1894 {
				y = 1894
			}
		}
		if g.rng.Float64() < 0.04 {
			y = 0 // NULL
		}
		g.titleYear[i] = y

		g.titleCountry[i] = g.pickCountry()

		// 1-3 genres; kind biases the primary genre.
		ng := 1 + g.poisson(0.6)
		if ng > 3 {
			ng = 3
		}
		seen := map[int]bool{}
		for k := 0; k < ng; k++ {
			var gi int
			if biased, ok := genreByKind[kind]; ok && g.rng.Float64() < 0.6 {
				gi = genreIdx[biased[g.rng.Intn(len(biased))]]
			} else {
				gi = g.weightedPick(genreShare)
			}
			if !seen[gi] {
				seen[gi] = true
				g.titleGenres[i] = append(g.titleGenres[i], gi)
			}
		}

		// Rating: present mostly for popular / US titles; value correlates
		// with popularity and genre.
		isUS := g.titleCountry[i] == 0
		pRated := 0.06 + 0.05*math.Min(pop, 10) + 0.10*b2f(isUS)
		if kind == 6 {
			pRated *= 0.35
		}
		if g.rng.Float64() < math.Min(0.95, pRated) {
			r := 6.3 + 0.45*math.Log(pop) + g.rng.NormFloat64()*1.1
			primary := g.titleGenres[i][0]
			if genres[primary] == "Horror" {
				r -= 0.8
			}
			if genres[primary] == "Documentary" || genres[primary] == "Biography" {
				r += 0.5
			}
			if r < 1 {
				r = 1
			}
			if r > 10 {
				r = 10
			}
			g.titleRating[i] = int64(math.Round(r * 10))
			g.titleVotes[i] = int64(5 + 12*pop*pop*math.Exp(g.rng.NormFloat64()*0.7))
		}
		g.titleSequel[i] = g.rng.Float64() < 0.05 && i > 10

		id.AppendInt(int64(i + 1))
		title.AppendString(g.makeTitle(i))
		kindID.AppendInt(int64(kind + 1))
		if y == 0 {
			year.AppendNull()
		} else {
			year.AppendInt(y)
		}
		if kind == 6 {
			season.AppendInt(int64(1 + g.rng.Intn(12)))
			episode.AppendInt(int64(1 + g.rng.Intn(24)))
		} else {
			season.AppendNull()
			episode.AppendNull()
		}
	}
	db.Add(storage.NewTable("title", id, title, kindID, year, season, episode))
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (g *gen) makeTitle(i int) string {
	adj := titleAdjectives[g.rng.Intn(len(titleAdjectives))]
	noun := titleNouns[g.rng.Intn(len(titleNouns))]
	var s string
	switch g.rng.Intn(4) {
	case 0:
		s = "The " + adj + " " + noun
	case 1:
		s = noun + " of the " + adj
	case 2:
		s = adj + " " + noun
	default:
		s = noun + " & " + titleNouns[g.rng.Intn(len(titleNouns))]
	}
	if g.titleSequel[i] {
		s += fmt.Sprintf(" %d", 2+g.rng.Intn(3))
	}
	if g.titleKind[i] == 6 {
		s += fmt.Sprintf(" (#%d.%d)", 1+g.rng.Intn(9), 1+g.rng.Intn(24))
	}
	return s
}

func (g *gen) companyTable(db *storage.Database) {
	n := g.nCompany
	g.companyCountry = make([]int, n)
	g.companyPool = make(map[int]*pool)

	id := storage.NewIntColumn("id")
	name := storage.NewStringColumn("name")
	code := storage.NewStringColumn("country_code")

	for i := 0; i < n; i++ {
		ci := g.pickCountry()
		g.companyCountry[i] = ci
		c := countries[ci]
		tokens := companyTokens[c.code]
		if tokens == nil || g.rng.Float64() < 0.35 {
			tokens = companyTokensDefault
		}
		nm := tokens[g.rng.Intn(len(tokens))] + " " + companySuffixes[g.rng.Intn(len(companySuffixes))]
		if g.rng.Float64() < 0.2 {
			nm += fmt.Sprintf(" %c", 'A'+rune(g.rng.Intn(26)))
		}
		id.AppendInt(int64(i + 1))
		name.AppendString(nm)
		if g.rng.Float64() < 0.03 {
			code.AppendNull()
		} else {
			code.AppendString(c.code)
		}
		p := g.companyPool[ci]
		if p == nil {
			p = &pool{}
			g.companyPool[ci] = p
		}
		// Company size is itself heavy-tailed: big studios get most movies.
		p.add(int64(i+1), g.popWeight())
	}
	db.Add(storage.NewTable("company_name", id, name, code))
}

func (g *gen) keywordTable(db *storage.Database) {
	id := storage.NewIntColumn("id")
	kw := storage.NewStringColumn("keyword")
	for i, s := range specialKeywords {
		id.AppendInt(int64(i + 1))
		kw.AppendString(s)
	}
	for i := len(specialKeywords); i < g.nKeyword; i++ {
		id.AppendInt(int64(i + 1))
		kw.AppendString(fmt.Sprintf("%s-%s-%d",
			titleAdjectives[g.rng.Intn(len(titleAdjectives))],
			titleNouns[g.rng.Intn(len(titleNouns))], i))
	}
	db.Add(storage.NewTable("keyword", id, kw))
}

func (g *gen) personTables(db *storage.Database) {
	n := g.nPerson
	g.personPop = make([]float64, n)
	g.personGender = make([]int, n)
	g.personCountry = make([]int, n)
	g.personPool = make(map[int]*pool)

	id := storage.NewIntColumn("id")
	name := storage.NewStringColumn("name")
	gender := storage.NewStringColumn("gender")

	for i := 0; i < n; i++ {
		pw := g.popWeight()
		g.personPop[i] = pw
		ci := g.pickCountry()
		g.personCountry[i] = ci
		gd := 0
		switch {
		case g.rng.Float64() < 0.38:
			gd = 1
		case g.rng.Float64() < 0.03:
			gd = 2
		}
		g.personGender[i] = gd
		var first string
		switch gd {
		case 1:
			first = firstNamesF[g.rng.Intn(len(firstNamesF))]
		default:
			first = firstNamesM[g.rng.Intn(len(firstNamesM))]
		}
		last := lastNames[g.rng.Intn(len(lastNames))]
		id.AppendInt(int64(i + 1))
		// IMDB stores names as "Last, First".
		name.AppendString(last + ", " + first)
		switch gd {
		case 0:
			gender.AppendString("m")
		case 1:
			gender.AppendString("f")
		default:
			gender.AppendNull()
		}
		p := g.personPool[ci]
		if p == nil {
			p = &pool{}
			g.personPool[ci] = p
		}
		p.add(int64(i+1), pw)
	}
	db.Add(storage.NewTable("name", id, name, gender))

	cid := storage.NewIntColumn("id")
	cname := storage.NewStringColumn("name")
	for i := 0; i < g.nChar; i++ {
		first := firstNamesM[g.rng.Intn(len(firstNamesM))]
		if g.rng.Float64() < 0.4 {
			first = firstNamesF[g.rng.Intn(len(firstNamesF))]
		}
		cid.AppendInt(int64(i + 1))
		if g.rng.Float64() < 0.3 {
			cname.AppendString(first)
		} else {
			cname.AppendString(first + " " + lastNames[g.rng.Intn(len(lastNames))])
		}
	}
	db.Add(storage.NewTable("char_name", cid, cname))
}

// globalPool builds a cross-country pool lazily.
func globalPool(pools map[int]*pool) *pool {
	gp := &pool{}
	keys := make([]int, 0, len(pools))
	for k := range pools {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		p := pools[k]
		base := 0.0
		for i, id := range p.ids {
			w := p.cum[i] - base
			base = p.cum[i]
			gp.add(id, w)
		}
	}
	return gp
}

func (g *gen) movieCompanies(db *storage.Database) {
	id := storage.NewIntColumn("id")
	movieID := storage.NewIntColumn("movie_id")
	companyID := storage.NewIntColumn("company_id")
	typeID := storage.NewIntColumn("company_type_id")
	note := storage.NewStringColumn("note")

	global := globalPool(g.companyPool)
	row := int64(1)
	for t := 0; t < g.nTitle; t++ {
		nc := g.poisson(0.6 + 0.45*g.titlePop[t])
		if g.titleKind[t] == 6 { // episodes carry few company rows
			nc = g.poisson(0.3)
		}
		for k := 0; k < nc; k++ {
			// The company's country correlates strongly with the title's
			// latent country: this is the join-crossing correlation behind
			// predicates like cn.country_code='[de]' AND mi.info='German'.
			pool := g.companyPool[g.titleCountry[t]]
			if pool == nil || g.rng.Float64() > g.companyLocal {
				pool = global
			}
			cid := pool.sample(g.rng)
			if cid == 0 {
				continue
			}
			ctype := g.weightedPick([]float64{0.55, 0.35, 0.04, 0.06})
			id.AppendInt(row)
			movieID.AppendInt(int64(t + 1))
			companyID.AppendInt(cid)
			typeID.AppendInt(int64(ctype + 1))
			if g.rng.Float64() < 0.35 {
				note.AppendNull()
			} else {
				cn := countries[g.companyCountry[cid-1]].name
				s := fmt.Sprintf("(%s)", cn)
				if y := g.titleYear[t]; y != 0 && g.rng.Float64() < 0.5 {
					s = fmt.Sprintf("(%d) %s", y, s)
				}
				if g.rng.Float64() < 0.25 {
					s += " " + mcNoteMedia[g.rng.Intn(len(mcNoteMedia))]
				}
				if g.rng.Float64() < 0.08 {
					s += " (co-production)"
				}
				if g.rng.Float64() < 0.05 {
					s += " (presents)"
				}
				note.AppendString(s)
			}
			row++
		}
	}
	db.Add(storage.NewTable("movie_companies", id, movieID, companyID, typeID, note))
}

var months = []string{
	"January", "February", "March", "April", "May", "June", "July",
	"August", "September", "October", "November", "December",
}

func (g *gen) movieInfo(db *storage.Database) {
	id := storage.NewIntColumn("id")
	movieID := storage.NewIntColumn("movie_id")
	typeID := storage.NewIntColumn("info_type_id")
	info := storage.NewStringColumn("info")
	note := storage.NewStringColumn("note")

	row := int64(1)
	emit := func(t int, it int, val, noteVal string) {
		id.AppendInt(row)
		movieID.AppendInt(int64(t + 1))
		typeID.AppendInt(int64(it))
		info.AppendString(val)
		if noteVal == "" {
			note.AppendNull()
		} else {
			note.AppendString(noteVal)
		}
		row++
	}

	for t := 0; t < g.nTitle; t++ {
		pop := g.titlePop[t]
		c := countries[g.titleCountry[t]]
		// Genres.
		for _, gi := range g.titleGenres[t] {
			emit(t, itGenres, genres[gi], "")
		}
		// Countries: primary plus sometimes a co-production country.
		emit(t, itCountries, c.name, "")
		if g.rng.Float64() < 0.22 {
			emit(t, itCountries, countries[g.pickCountry()].name, "")
		}
		// Languages.
		emit(t, itLanguages, c.lang, "")
		if c.lang != "English" && g.rng.Float64() < 0.25 {
			emit(t, itLanguages, "English", "")
		}
		// Release dates: popular titles are released in more countries.
		nr := 1 + g.poisson(0.35*math.Min(pop, 20))
		if nr > 8 {
			nr = 8
		}
		for k := 0; k < nr; k++ {
			rc := c
			if k > 0 {
				rc = countries[g.pickCountry()]
			}
			y := g.titleYear[t]
			if y == 0 {
				y = 1990 + int64(g.rng.Intn(23))
			}
			val := fmt.Sprintf("%s:%d %s %d", rc.name, 1+g.rng.Intn(28),
				months[g.rng.Intn(12)], y)
			nt := ""
			if k == 0 && g.rng.Float64() < 0.2 {
				nt = fmt.Sprintf("(%s) (premiere)", rc.name)
			}
			emit(t, itReleaseDates, val, nt)
		}
		// Runtimes.
		if g.rng.Float64() < 0.8 {
			mins := 75 + g.rng.Intn(90)
			if g.titleKind[t] == 6 {
				mins = 18 + g.rng.Intn(45)
			}
			emit(t, itRuntimes, fmt.Sprintf("%d", mins), "")
		}
		// Budget: mostly popular/US productions publish one.
		if g.rng.Float64() < 0.05+0.04*math.Min(pop, 10)+0.08*b2f(c.code == "[us]") {
			emit(t, itBudget, fmt.Sprintf("$%d,000,000", 1+g.rng.Intn(200)), "")
		}
		// Color info.
		if g.rng.Float64() < 0.75 {
			v := "Color"
			if y := g.titleYear[t]; y != 0 && y < 1950 && g.rng.Float64() < 0.85 {
				v = "Black and White"
			}
			emit(t, 11, v, "")
		}
		// Sound mix, certificates, tech info: sparse token rows.
		if g.rng.Float64() < 0.3 {
			emit(t, 12, []string{"Stereo", "Dolby Digital", "Mono", "DTS"}[g.rng.Intn(4)], "")
		}
		if g.rng.Float64() < 0.25 {
			emit(t, 13, fmt.Sprintf("%s:%s", c.name, []string{"PG", "R", "12", "16", "G"}[g.rng.Intn(5)]), "")
		}
		// Trivia rows grow with popularity.
		ntr := g.poisson(0.12 * math.Min(pop, 25))
		for k := 0; k < ntr; k++ {
			emit(t, 20, fmt.Sprintf("trivia-%d-%d", t, k), "")
		}
	}
	db.Add(storage.NewTable("movie_info", id, movieID, typeID, info, note))
}

func (g *gen) movieInfoIdx(db *storage.Database) {
	id := storage.NewIntColumn("id")
	movieID := storage.NewIntColumn("movie_id")
	typeID := storage.NewIntColumn("info_type_id")
	info := storage.NewStringColumn("info")
	infoNum := storage.NewIntColumn("info_num")

	// Top-250 / bottom-10 ranks go to the best/worst rated movies
	// (kind = movie only), creating the rank <-> rating <-> popularity
	// correlation chain.
	type rated struct {
		t      int
		rating int64
		votes  int64
	}
	var movies []rated
	for t := 0; t < g.nTitle; t++ {
		if g.titleKind[t] == 0 && g.titleRating[t] > 0 {
			movies = append(movies, rated{t, g.titleRating[t], g.titleVotes[t]})
		}
	}
	sort.Slice(movies, func(i, j int) bool {
		if movies[i].rating != movies[j].rating {
			return movies[i].rating > movies[j].rating
		}
		return movies[i].votes > movies[j].votes
	})
	nTop := max(5, int(250*g.cfg.Scale))
	if nTop > len(movies) {
		nTop = len(movies)
	}
	nBottom := max(2, int(10*g.cfg.Scale))
	if nBottom > len(movies)-nTop {
		nBottom = max(0, len(movies)-nTop)
	}
	topRank := make(map[int]int)
	bottomRank := make(map[int]int)
	for i := 0; i < nTop; i++ {
		topRank[movies[i].t] = i + 1
	}
	for i := 0; i < nBottom; i++ {
		bottomRank[movies[len(movies)-1-i].t] = i + 1
	}

	row := int64(1)
	emit := func(t, it int, val string, num int64) {
		id.AppendInt(row)
		movieID.AppendInt(int64(t + 1))
		typeID.AppendInt(int64(it))
		info.AppendString(val)
		infoNum.AppendInt(num)
		row++
	}
	for t := 0; t < g.nTitle; t++ {
		if r := g.titleRating[t]; r > 0 {
			emit(t, itRating, fmt.Sprintf("%d.%d", r/10, r%10), r)
			emit(t, itVotes, fmt.Sprintf("%d", g.titleVotes[t]), g.titleVotes[t])
		}
		if rk, ok := topRank[t]; ok {
			emit(t, itTop250, fmt.Sprintf("%d", rk), int64(rk))
		}
		if rk, ok := bottomRank[t]; ok {
			emit(t, itBottom10, fmt.Sprintf("%d", rk), int64(rk))
		}
	}
	db.Add(storage.NewTable("movie_info_idx", id, movieID, typeID, info, infoNum))
}

func (g *gen) movieKeyword(db *storage.Database) {
	id := storage.NewIntColumn("id")
	movieID := storage.NewIntColumn("movie_id")
	keywordID := storage.NewIntColumn("keyword_id")

	kwIdx := make(map[string]int64, len(specialKeywords))
	for i, s := range specialKeywords {
		kwIdx[s] = int64(i + 1)
	}

	row := int64(1)
	emit := func(t int, kw int64) {
		id.AppendInt(row)
		movieID.AppendInt(int64(t + 1))
		keywordID.AppendInt(kw)
		row++
	}
	for t := 0; t < g.nTitle; t++ {
		nk := g.poisson(0.3 + 0.35*g.titlePop[t])
		if nk > 25 {
			nk = 25
		}
		seen := make(map[int64]bool, nk+2)
		add := func(kw int64) {
			if kw > 0 && !seen[kw] {
				seen[kw] = true
				emit(t, kw)
			}
		}
		if g.titleSequel[t] {
			add(kwIdx["sequel"])
			if g.rng.Float64() < 0.4 {
				add(kwIdx["second-part"])
			}
		}
		for k := 0; k < nk; k++ {
			// Keywords correlate with genre through per-genre pools.
			gi := g.titleGenres[t][g.rng.Intn(len(g.titleGenres[t]))]
			if pool := keywordGenrePool[genres[gi]]; pool != nil && g.rng.Float64() < 0.5 {
				add(kwIdx[pool[g.rng.Intn(len(pool))]])
				continue
			}
			// Zipf over the whole keyword table: low ids are hot.
			u := g.rng.Float64()
			kw := int64(float64(g.nKeyword)*math.Pow(u, 2.5)) + 1
			if kw > int64(g.nKeyword) {
				kw = int64(g.nKeyword)
			}
			add(kw)
		}
	}
	db.Add(storage.NewTable("movie_keyword", id, movieID, keywordID))
}

func (g *gen) castInfo(db *storage.Database) {
	id := storage.NewIntColumn("id")
	personID := storage.NewIntColumn("person_id")
	movieID := storage.NewIntColumn("movie_id")
	roleCharID := storage.NewIntColumn("person_role_id")
	note := storage.NewStringColumn("note")
	nrOrder := storage.NewIntColumn("nr_order")
	roleID := storage.NewIntColumn("role_id")

	global := globalPool(g.personPool)
	roleIdx := make(map[string]int64, len(roleTypes))
	for i, s := range roleTypes {
		roleIdx[s] = int64(i + 1)
	}

	row := int64(1)
	for t := 0; t < g.nTitle; t++ {
		pop := g.titlePop[t]
		lam := 0.5 + 2.8*pop
		if g.titleKind[t] == 6 {
			lam = 0.5 + 1.2*pop
		}
		nc := g.poisson(math.Min(lam, 90))
		primaryGenre := genres[g.titleGenres[t][0]]
		for k := 0; k < nc; k++ {
			// Actors cluster by country: a French movie casts French actors
			// with high probability (the paper's §4.4 example of a
			// join-crossing correlation).
			pool := g.personPool[g.titleCountry[t]]
			if pool == nil || g.rng.Float64() > g.personLocal {
				pool = global
			}
			pid := pool.sample(g.rng)
			if pid == 0 {
				continue
			}
			gender := g.personGender[pid-1]
			var role string
			r := g.rng.Float64()
			switch {
			case r < 0.55:
				if gender == 1 {
					role = "actress"
				} else {
					role = "actor"
				}
			case r < 0.63:
				role = "producer"
			case r < 0.71:
				role = "writer"
			case r < 0.77:
				role = "director"
			case r < 0.82:
				role = "composer"
			case r < 0.87:
				role = "editor"
			case r < 0.91:
				role = "cinematographer"
			case r < 0.94:
				role = "costume designer"
			case r < 0.97:
				role = "miscellaneous crew"
			case r < 0.99:
				role = "production designer"
			default:
				role = "guest"
			}
			id.AppendInt(row)
			personID.AppendInt(pid)
			movieID.AppendInt(int64(t + 1))
			isActing := role == "actor" || role == "actress"
			if isActing && g.rng.Float64() < 0.55 {
				roleCharID.AppendInt(int64(1 + g.rng.Intn(g.nChar)))
			} else {
				roleCharID.AppendNull()
			}
			// Notes: "(voice)" is strongly boosted for Animation.
			voiceBoost := 0.0
			if primaryGenre == "Animation" {
				voiceBoost = 0.45
			}
			u := g.rng.Float64()
			switch {
			case isActing && u < ciNoteShare[0]+voiceBoost:
				note.AppendString("(voice)")
			case u < 0.40:
				ni := g.weightedPick(ciNoteShare)
				note.AppendString(ciNotes[ni])
			default:
				note.AppendNull()
			}
			if isActing {
				nrOrder.AppendInt(int64(k + 1))
			} else {
				nrOrder.AppendNull()
			}
			roleID.AppendInt(roleIdx[role])
			row++
		}
	}
	db.Add(storage.NewTable("cast_info", id, personID, movieID, roleCharID, note, nrOrder, roleID))
}

func (g *gen) movieLink(db *storage.Database) {
	id := storage.NewIntColumn("id")
	movieID := storage.NewIntColumn("movie_id")
	linkedID := storage.NewIntColumn("linked_movie_id")
	typeID := storage.NewIntColumn("link_type_id")

	linkIdx := make(map[string]int64, len(linkTypes))
	for i, s := range linkTypes {
		linkIdx[s] = int64(i + 1)
	}
	row := int64(1)
	emit := func(a, b int, lt string) {
		id.AppendInt(row)
		movieID.AppendInt(int64(a + 1))
		linkedID.AppendInt(int64(b + 1))
		typeID.AppendInt(linkIdx[lt])
		row++
	}
	for t := 0; t < g.nTitle; t++ {
		// Sequels link back to an earlier title: keyword 'sequel' and
		// link_type 'follows' are correlated.
		if g.titleSequel[t] {
			prev := g.rng.Intn(t)
			emit(t, prev, "follows")
			emit(prev, t, "followed by")
		}
		// Popular titles attract references.
		if g.rng.Float64() < 0.004*math.Min(g.titlePop[t], 40) && t > 0 {
			other := g.rng.Intn(g.nTitle)
			if other != t {
				lt := []string{"references", "spoofs", "features", "remake of", "version of", "similar to"}[g.rng.Intn(6)]
				emit(t, other, lt)
			}
		}
	}
	db.Add(storage.NewTable("movie_link", id, movieID, linkedID, typeID))
}

func (g *gen) personInfo(db *storage.Database) {
	id := storage.NewIntColumn("id")
	personID := storage.NewIntColumn("person_id")
	typeID := storage.NewIntColumn("info_type_id")
	info := storage.NewStringColumn("info")
	note := storage.NewStringColumn("note")

	row := int64(1)
	emit := func(p, it int, val, nt string) {
		id.AppendInt(row)
		personID.AppendInt(int64(p + 1))
		typeID.AppendInt(int64(it))
		info.AppendString(val)
		if nt == "" {
			note.AppendNull()
		} else {
			note.AppendString(nt)
		}
		row++
	}
	for p := 0; p < g.nPerson; p++ {
		pw := g.personPop[p]
		c := countries[g.personCountry[p]]
		if g.rng.Float64() < 0.10+0.03*math.Min(pw, 15) {
			nt := ""
			if g.rng.Float64() < 0.25 {
				nt = "Volker Boehm" // the contributor JOB's query 7 filters on
			}
			emit(p, itMiniBio, fmt.Sprintf("bio-%d", p), nt)
		}
		if g.rng.Float64() < 0.12 {
			emit(p, itBirthNotes, fmt.Sprintf("%s, %s", c.name, c.lang), "")
		}
		if g.rng.Float64() < 0.3 {
			emit(p, itBirthDate, fmt.Sprintf("%d", 1920+g.rng.Intn(80)), "")
		}
		if g.rng.Float64() < 0.06 {
			emit(p, itHeight, fmt.Sprintf("%d cm", 150+g.rng.Intn(55)), "")
		}
	}
	db.Add(storage.NewTable("person_info", id, personID, typeID, info, note))

	// aka_name and aka_title ride along here to keep generation order tidy.
	aid := storage.NewIntColumn("id")
	apid := storage.NewIntColumn("person_id")
	aname := storage.NewStringColumn("name")
	arow := int64(1)
	for p := 0; p < g.nPerson; p++ {
		n := g.poisson(0.15 + 0.05*math.Min(g.personPop[p], 20))
		for k := 0; k < n; k++ {
			first := firstNamesM[g.rng.Intn(len(firstNamesM))]
			if g.personGender[p] == 1 {
				first = firstNamesF[g.rng.Intn(len(firstNamesF))]
			}
			aid.AppendInt(arow)
			apid.AppendInt(int64(p + 1))
			aname.AppendString(first + " " + lastNames[g.rng.Intn(len(lastNames))])
			arow++
		}
	}
	db.Add(storage.NewTable("aka_name", aid, apid, aname))

	tid := storage.NewIntColumn("id")
	tmid := storage.NewIntColumn("movie_id")
	ttitle := storage.NewStringColumn("title")
	trow := int64(1)
	for t := 0; t < g.nTitle; t++ {
		if g.rng.Float64() < 0.02+0.01*math.Min(g.titlePop[t], 12) {
			tid.AppendInt(trow)
			tmid.AppendInt(int64(t + 1))
			ttitle.AppendString(fmt.Sprintf("%s (%s title)",
				g.makeTitle(t), countries[g.pickCountry()].name))
			trow++
		}
	}
	db.Add(storage.NewTable("aka_title", tid, tmid, ttitle))
}

func (g *gen) completeCast(db *storage.Database) {
	id := storage.NewIntColumn("id")
	movieID := storage.NewIntColumn("movie_id")
	subjectID := storage.NewIntColumn("subject_id")
	statusID := storage.NewIntColumn("status_id")
	row := int64(1)
	for t := 0; t < g.nTitle; t++ {
		if g.titleKind[t] != 0 && g.titleKind[t] != 1 {
			continue
		}
		if g.rng.Float64() > 0.04+0.01*math.Min(g.titlePop[t], 10) {
			continue
		}
		// subject: cast or crew; status: complete or complete+verified.
		id.AppendInt(row)
		movieID.AppendInt(int64(t + 1))
		subjectID.AppendInt(int64(1 + g.rng.Intn(2)))
		statusID.AppendInt(int64(3 + g.rng.Intn(2)))
		row++
	}
	db.Add(storage.NewTable("complete_cast", id, movieID, subjectID, statusID))
}
