package imdb

import (
	"math"
	"testing"

	"jobench/internal/storage"
)

func small() *storage.Database {
	return Generate(Config{Scale: 0.05, Seed: 7})
}

func TestAllTablesPresent(t *testing.T) {
	db := small()
	for _, name := range TableNames() {
		tbl := db.Table(name)
		if tbl == nil {
			t.Fatalf("missing table %q", name)
		}
		if tbl.NumRows() == 0 {
			t.Errorf("table %q is empty", name)
		}
	}
	if len(TableNames()) != 21 {
		t.Fatalf("schema has %d tables, want 21", len(TableNames()))
	}
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Scale: 0.05, Seed: 9})
	b := Generate(Config{Scale: 0.05, Seed: 9})
	for _, name := range TableNames() {
		ta, tb := a.Table(name), b.Table(name)
		if ta.NumRows() != tb.NumRows() {
			t.Fatalf("%s: %d vs %d rows", name, ta.NumRows(), tb.NumRows())
		}
		for ci, ca := range ta.Cols {
			cb := tb.Cols[ci]
			for i := 0; i < ta.NumRows(); i++ {
				if ca.IsNull(i) != cb.IsNull(i) {
					t.Fatalf("%s.%s row %d: null mismatch", name, ca.Name, i)
				}
				if !ca.IsNull(i) && ca.Ints[i] != cb.Ints[i] {
					t.Fatalf("%s.%s row %d: %d vs %d", name, ca.Name, i, ca.Ints[i], cb.Ints[i])
				}
			}
		}
	}
	c := Generate(Config{Scale: 0.05, Seed: 10})
	if c.Table("cast_info").NumRows() == a.Table("cast_info").NumRows() &&
		c.Table("movie_info").NumRows() == a.Table("movie_info").NumRows() {
		t.Error("different seeds produced identical fanouts; generator ignores seed?")
	}
}

func TestForeignKeyIntegrity(t *testing.T) {
	db := small()
	for _, fk := range ForeignKeys() {
		child := db.MustTable(fk.Table).MustColumn(fk.Column)
		parent := db.MustTable(fk.RefTable).MustColumn(fk.RefColumn)
		valid := make(map[int64]bool, parent.Len())
		for i, v := range parent.Ints {
			if !parent.IsNull(i) {
				valid[v] = true
			}
		}
		for i, v := range child.Ints {
			if child.IsNull(i) {
				if !fk.Nullable {
					t.Errorf("%s.%s row %d: NULL in non-nullable FK", fk.Table, fk.Column, i)
				}
				continue
			}
			if !valid[v] {
				t.Fatalf("%s.%s row %d: dangling reference %d -> %s", fk.Table, fk.Column, i, v, fk.RefTable)
			}
		}
	}
}

func TestPrimaryKeysDense(t *testing.T) {
	db := small()
	for _, name := range TableNames() {
		id := db.MustTable(name).MustColumn("id")
		for i := 0; i < id.Len(); i++ {
			if id.Ints[i] != int64(i+1) {
				t.Fatalf("%s: id at row %d is %d, want %d", name, i, id.Ints[i], i+1)
			}
		}
	}
}

func TestScalePreservesRatios(t *testing.T) {
	db := Generate(Config{Scale: 0.5, Seed: 42})
	title := float64(db.Table("title").NumRows())
	ratios := map[string][2]float64{
		"cast_info":       {4, 16},
		"movie_info":      {4, 14},
		"movie_keyword":   {0.8, 3.5},
		"movie_companies": {0.8, 3},
		"movie_info_idx":  {0.1, 1},
		"name":            {0.9, 1.1},
	}
	for name, bounds := range ratios {
		r := float64(db.Table(name).NumRows()) / title
		if r < bounds[0] || r > bounds[1] {
			t.Errorf("%s/title ratio = %.2f, want in [%g,%g]", name, r, bounds[0], bounds[1])
		}
	}
}

// TestFanoutSkew verifies the heavy-tailed fan-outs that break the uniform
// fan-out assumption: the busiest movie must have far more cast rows than
// the average movie.
func TestFanoutSkew(t *testing.T) {
	db := Generate(Config{Scale: 0.3, Seed: 42})
	ci := db.MustTable("cast_info").MustColumn("movie_id")
	counts := make(map[int64]int)
	for _, v := range ci.Ints {
		counts[v]++
	}
	maxC, sum := 0, 0
	for _, c := range counts {
		sum += c
		if c > maxC {
			maxC = c
		}
	}
	avg := float64(sum) / float64(db.Table("title").NumRows())
	if float64(maxC) < 6*avg {
		t.Errorf("cast fanout max %d vs avg %.1f: not skewed enough", maxC, avg)
	}
}

// TestCorrelatedFanouts verifies the core correlation: titles with many cast
// rows also have many info rows (driven by the shared popularity latent).
// Independence-based estimators cannot see this, which is what produces the
// paper's systematic underestimation.
func TestCorrelatedFanouts(t *testing.T) {
	db := Generate(Config{Scale: 0.3, Seed: 42})
	n := db.Table("title").NumRows()
	cast := make([]float64, n+1)
	info := make([]float64, n+1)
	for _, v := range db.MustTable("cast_info").MustColumn("movie_id").Ints {
		cast[v]++
	}
	for _, v := range db.MustTable("movie_info").MustColumn("movie_id").Ints {
		info[v]++
	}
	// Pearson correlation between the two fanout vectors.
	var sx, sy, sxx, syy, sxy float64
	for i := 1; i <= n; i++ {
		sx += cast[i]
		sy += info[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	for i := 1; i <= n; i++ {
		dx, dy := cast[i]-mx, info[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	r := sxy / math.Sqrt(sxx*syy)
	if r < 0.35 {
		t.Errorf("cast/info fanout correlation = %.2f, want strong positive", r)
	}
}

// TestJoinCrossingCorrelation verifies the §4.4-style correlation: German
// companies produce German-language movies far more often than independence
// would predict.
func TestJoinCrossingCorrelation(t *testing.T) {
	db := Generate(Config{Scale: 0.5, Seed: 42})
	// Movies with a [de] company.
	cn := db.MustTable("company_name")
	code := cn.MustColumn("country_code")
	deCompanies := make(map[int64]bool)
	for i := 0; i < cn.NumRows(); i++ {
		if !code.IsNull(i) && code.StringAt(i) == "[de]" {
			deCompanies[cn.MustColumn("id").Ints[i]] = true
		}
	}
	mc := db.MustTable("movie_companies")
	deMovies := make(map[int64]bool)
	allMovies := make(map[int64]bool)
	for i := 0; i < mc.NumRows(); i++ {
		mid := mc.MustColumn("movie_id").Ints[i]
		allMovies[mid] = true
		if deCompanies[mc.MustColumn("company_id").Ints[i]] {
			deMovies[mid] = true
		}
	}
	// Movies with a 'German' language row.
	mi := db.MustTable("movie_info")
	infoCol := mi.MustColumn("info")
	germanMovies := make(map[int64]bool)
	for i := 0; i < mi.NumRows(); i++ {
		if !infoCol.IsNull(i) && infoCol.StringAt(i) == "German" {
			germanMovies[mi.MustColumn("movie_id").Ints[i]] = true
		}
	}
	// P(german | de-company) must far exceed P(german | any company).
	both, base := 0, 0
	for m := range deMovies {
		if germanMovies[m] {
			both++
		}
	}
	for m := range allMovies {
		if germanMovies[m] {
			base++
		}
	}
	pCond := float64(both) / float64(len(deMovies))
	pBase := float64(base) / float64(len(allMovies))
	if pCond < 3*pBase {
		t.Errorf("P(German|de company)=%.3f vs P(German)=%.3f: correlation too weak", pCond, pBase)
	}
}

func TestIndexConfigs(t *testing.T) {
	db := small()
	none, err := BuildIndexes(db, NoIndexes)
	if err != nil || none.Size() != 0 {
		t.Fatalf("NoIndexes: size=%d err=%v", none.Size(), err)
	}
	pk, err := BuildIndexes(db, PKOnly)
	if err != nil {
		t.Fatal(err)
	}
	if pk.Size() != 21 {
		t.Fatalf("PKOnly size = %d, want 21", pk.Size())
	}
	if !pk.Has("title", "id") || pk.Has("movie_info", "movie_id") {
		t.Fatal("PKOnly content wrong")
	}
	pkfk, err := BuildIndexes(db, PKFK)
	if err != nil {
		t.Fatal(err)
	}
	want := 21 + len(ForeignKeys())
	if pkfk.Size() != want {
		t.Fatalf("PKFK size = %d, want %d", pkfk.Size(), want)
	}
	if !pkfk.Has("movie_info", "movie_id") || !pkfk.Has("cast_info", "person_id") {
		t.Fatal("FK indexes missing")
	}
	for _, cfg := range []IndexConfig{NoIndexes, PKOnly, PKFK} {
		if cfg.String() == "" {
			t.Fatal("empty IndexConfig string")
		}
	}
}

func TestRatingCorrelatesWithRank(t *testing.T) {
	// top 250 rank rows must belong to rated movies (info_num correlation).
	db := small()
	mi := db.MustTable("movie_info_idx")
	typeCol := mi.MustColumn("info_type_id")
	movieCol := mi.MustColumn("movie_id")
	rated := make(map[int64]bool)
	var tops []int64
	for i := 0; i < mi.NumRows(); i++ {
		switch typeCol.Ints[i] {
		case 3: // rating
			rated[movieCol.Ints[i]] = true
		case 1: // top 250 rank
			tops = append(tops, movieCol.Ints[i])
		}
	}
	if len(tops) == 0 {
		t.Fatal("no top 250 rows generated")
	}
	for _, m := range tops {
		if !rated[m] {
			t.Fatalf("movie %d has top-250 rank but no rating", m)
		}
	}
}
