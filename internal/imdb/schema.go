// Package imdb builds a synthetic, deterministically generated instance of
// the 21-table IMDB schema used by the Join Order Benchmark. The real IMDB
// dump is not redistributable; what matters for the paper's experiments is
// that the data is *skewed* and *correlated*, within tables and across
// joins. The generator plants those properties deliberately (see gen.go),
// at a configurable scale.
package imdb

import (
	"jobench/internal/index"
	"jobench/internal/storage"
)

// FK describes one foreign-key relationship of the schema.
type FK struct {
	Table    string
	Column   string
	RefTable string
	// RefColumn is always "id" in this star-shaped schema.
	RefColumn string
	// Nullable FKs (e.g. cast_info.person_role_id) may contain NULLs,
	// which join predicates never match.
	Nullable bool
}

// ForeignKeys returns every FK of the schema. It drives both the PK+FK
// index configuration and the generator's integrity tests.
func ForeignKeys() []FK {
	return []FK{
		{"title", "kind_id", "kind_type", "id", false},
		{"movie_companies", "movie_id", "title", "id", false},
		{"movie_companies", "company_id", "company_name", "id", false},
		{"movie_companies", "company_type_id", "company_type", "id", false},
		{"movie_info", "movie_id", "title", "id", false},
		{"movie_info", "info_type_id", "info_type", "id", false},
		{"movie_info_idx", "movie_id", "title", "id", false},
		{"movie_info_idx", "info_type_id", "info_type", "id", false},
		{"movie_keyword", "movie_id", "title", "id", false},
		{"movie_keyword", "keyword_id", "keyword", "id", false},
		{"cast_info", "movie_id", "title", "id", false},
		{"cast_info", "person_id", "name", "id", false},
		{"cast_info", "person_role_id", "char_name", "id", true},
		{"cast_info", "role_id", "role_type", "id", false},
		{"aka_name", "person_id", "name", "id", false},
		{"aka_title", "movie_id", "title", "id", false},
		{"movie_link", "movie_id", "title", "id", false},
		{"movie_link", "linked_movie_id", "title", "id", false},
		{"movie_link", "link_type_id", "link_type", "id", false},
		{"person_info", "person_id", "name", "id", false},
		{"person_info", "info_type_id", "info_type", "id", false},
		{"complete_cast", "movie_id", "title", "id", false},
		{"complete_cast", "subject_id", "comp_cast_type", "id", false},
		{"complete_cast", "status_id", "comp_cast_type", "id", false},
	}
}

// TableNames lists the 21 tables of the schema.
func TableNames() []string {
	return []string{
		"kind_type", "info_type", "company_type", "role_type", "link_type",
		"comp_cast_type", "title", "company_name", "keyword", "name",
		"char_name", "movie_companies", "movie_info", "movie_info_idx",
		"movie_keyword", "cast_info", "aka_name", "aka_title", "movie_link",
		"person_info", "complete_cast",
	}
}

// IndexConfig selects one of the paper's three physical designs (§4, §6.1).
// The enum itself lives in internal/index so every workload shares it; the
// alias (and the re-exported constants below) keep this package's historical
// surface intact.
type IndexConfig = index.Config

const (
	// NoIndexes has no indexes at all.
	NoIndexes = index.NoIndexes
	// PKOnly indexes the primary key (id) of every table.
	PKOnly = index.PKOnly
	// PKFK additionally indexes every foreign-key column.
	PKFK = index.PKFK
)

// BuildIndexes constructs the index set for the chosen physical design.
func BuildIndexes(db *storage.Database, cfg IndexConfig) (*index.Set, error) {
	set := index.NewSet()
	if cfg == NoIndexes {
		return set, nil
	}
	for _, name := range TableNames() {
		if err := set.BuildHashOn(db, name, "id", true); err != nil {
			return nil, err
		}
	}
	if cfg == PKOnly {
		return set, nil
	}
	for _, fk := range ForeignKeys() {
		if err := set.BuildHashOn(db, fk.Table, fk.Column, false); err != nil {
			return nil, err
		}
	}
	return set, nil
}
