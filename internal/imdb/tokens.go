package imdb

// Token vocabularies for the synthetic IMDB generator. The specific strings
// matter: JOB queries select on them (country codes, genres, info types,
// keywords, LIKE-able name fragments), so they are chosen to mirror the real
// data set's vocabulary closely enough that the workload reads like JOB.

// kindTypes are the 7 title kinds of IMDB.
var kindTypes = []string{
	"movie", "tv series", "tv movie", "video movie", "tv mini series",
	"video game", "episode",
}

// kindShare is the approximate share of each kind among titles. Episodes
// dominate the real title table.
var kindShare = []float64{0.25, 0.04, 0.03, 0.06, 0.005, 0.015, 0.60}

// companyTypes are the 4 IMDB company roles.
var companyTypes = []string{
	"production companies", "distributors", "special effects companies",
	"miscellaneous companies",
}

// roleTypes are the 12 IMDB cast roles.
var roleTypes = []string{
	"actor", "actress", "producer", "writer", "cinematographer", "composer",
	"costume designer", "director", "editor", "miscellaneous crew",
	"production designer", "guest",
}

// linkTypes are the 18 IMDB movie-link kinds.
var linkTypes = []string{
	"follows", "followed by", "remake of", "remade as", "references",
	"referenced in", "spoofs", "spoofed in", "features", "featured in",
	"spin off from", "spin off", "version of", "similar to", "edited into",
	"edited from", "alternate language version of", "unknown link",
}

// compCastTypes are the 4 complete_cast subject/status kinds.
var compCastTypes = []string{"cast", "crew", "complete", "complete+verified"}

// infoTypes is our info_type dimension. The first block is used by
// movie_info_idx, the middle by movie_info, the last by person_info.
var infoTypes = []string{
	// movie_info_idx types (0-3)
	"top 250 rank", "bottom 10 rank", "rating", "votes",
	// movie_info types (4-19)
	"genres", "countries", "languages", "budget", "release dates",
	"runtimes", "color info", "sound mix", "certificates", "gross",
	"production dates", "filming dates", "tech info", "copyright holder",
	"camera", "trivia",
	// person_info types (20-27)
	"mini biography", "birth notes", "birth date", "death date", "height",
	"spouse", "trade mark", "other works",
}

const (
	itTop250       = 1 // info_type ids are 1-based
	itBottom10     = 2
	itRating       = 3
	itVotes        = 4
	itGenres       = 5
	itCountries    = 6
	itLanguages    = 7
	itBudget       = 8
	itReleaseDates = 9
	itRuntimes     = 10
	itMiniBio      = 21
	itBirthNotes   = 22
	itBirthDate    = 23
	itHeight       = 25
)

// countries drive a three-way correlation: company country codes
// (company_name.country_code), movie production countries
// (movie_info 'countries') and release-date notes all derive from the same
// latent per-title country. Shares are Zipf-ish with the US dominant, as in
// IMDB.
type country struct {
	code  string // company_name.country_code
	name  string // movie_info 'countries' value
	lang  string // dominant language
	share float64
}

var countries = []country{
	{"[us]", "USA", "English", 0.36},
	{"[gb]", "UK", "English", 0.10},
	{"[de]", "Germany", "German", 0.08},
	{"[fr]", "France", "French", 0.07},
	{"[it]", "Italy", "Italian", 0.05},
	{"[jp]", "Japan", "Japanese", 0.05},
	{"[in]", "India", "Hindi", 0.04},
	{"[ca]", "Canada", "English", 0.04},
	{"[es]", "Spain", "Spanish", 0.03},
	{"[nl]", "Netherlands", "Dutch", 0.02},
	{"[se]", "Sweden", "Swedish", 0.02},
	{"[au]", "Australia", "English", 0.02},
	{"[dk]", "Denmark", "Danish", 0.015},
	{"[mx]", "Mexico", "Spanish", 0.015},
	{"[br]", "Brazil", "Portuguese", 0.015},
	{"[ar]", "Argentina", "Spanish", 0.01},
	{"[pl]", "Poland", "Polish", 0.01},
	{"[ru]", "Russia", "Russian", 0.01},
	{"[fi]", "Finland", "Finnish", 0.01},
	{"[no]", "Norway", "Norwegian", 0.01},
	{"[at]", "Austria", "German", 0.008},
	{"[ch]", "Switzerland", "German", 0.008},
	{"[be]", "Belgium", "French", 0.008},
	{"[cn]", "China", "Chinese", 0.008},
	{"[kr]", "South Korea", "Korean", 0.008},
	{"[hk]", "Hong Kong", "Chinese", 0.006},
	{"[ie]", "Ireland", "English", 0.006},
	{"[cz]", "Czech Republic", "Czech", 0.005},
	{"[hu]", "Hungary", "Hungarian", 0.005},
	{"[gr]", "Greece", "Greek", 0.005},
	{"[pt]", "Portugal", "Portuguese", 0.004},
	{"[tr]", "Turkey", "Turkish", 0.004},
	{"[il]", "Israel", "Hebrew", 0.004},
	{"[ir]", "Iran", "Persian", 0.003},
	{"[eg]", "Egypt", "Arabic", 0.003},
	{"[ng]", "Nigeria", "English", 0.003},
	{"[ph]", "Philippines", "Filipino", 0.003},
	{"[th]", "Thailand", "Thai", 0.002},
	{"[ro]", "Romania", "Romanian", 0.002},
	{"[bg]", "Bulgaria", "Bulgarian", 0.002},
}

// genres with skewed shares, as found in movie_info 'genres' rows.
var genres = []string{
	"Drama", "Comedy", "Documentary", "Short", "Romance", "Action",
	"Thriller", "Horror", "Crime", "Adventure", "Family", "Animation",
	"Sci-Fi", "Fantasy", "Mystery", "Music", "War", "Western", "Musical",
	"Sport", "Biography", "History", "News", "Reality-TV", "Talk-Show",
	"Game-Show", "Adult",
}

var genreShare = []float64{
	0.18, 0.14, 0.10, 0.09, 0.06, 0.06, 0.05, 0.045, 0.04, 0.035, 0.03,
	0.025, 0.02, 0.02, 0.018, 0.015, 0.012, 0.01, 0.008, 0.008, 0.012,
	0.01, 0.012, 0.02, 0.025, 0.015, 0.01,
}

// genreByKind biases genre choice per title kind (index into kindTypes).
// Episodes skew towards talk/reality/drama; video games towards action.
var genreByKind = map[int][]string{
	5: {"Action", "Adventure", "Sci-Fi", "Fantasy", "Sport"},       // video game
	6: {"Drama", "Comedy", "Talk-Show", "Reality-TV", "Game-Show"}, // episode
}

// specialKeywords are keywords JOB queries select on; they occupy the first
// rows of the keyword table and are assigned with genre correlation.
var specialKeywords = []string{
	"character-name-in-title", "sequel", "based-on-novel", "number-in-title",
	"murder", "blood", "violence", "gore", "revenge", "marvel-cinematic-universe",
	"superhero", "based-on-comic", "fight", "magnet", "web", "flying",
	"nerd", "hospital", "female-nudity", "love", "death", "friendship",
	"police", "independent-film", "martial-arts", "kung-fu-master",
	"tv-special", "new-york-city", "second-part", "alien", "vampire",
	"zombie", "dystopia", "time-travel", "prison", "escape", "heist",
	"serial-killer", "hero", "villain",
}

// keywordGenrePool maps genres to the special keywords they favour.
var keywordGenrePool = map[string][]string{
	"Horror":    {"blood", "gore", "murder", "vampire", "zombie", "violence", "serial-killer"},
	"Thriller":  {"murder", "revenge", "violence", "serial-killer", "police", "heist"},
	"Crime":     {"murder", "police", "violence", "prison", "heist", "revenge"},
	"Action":    {"fight", "violence", "superhero", "martial-arts", "kung-fu-master", "hero", "villain"},
	"Sci-Fi":    {"alien", "dystopia", "time-travel", "flying", "web"},
	"Adventure": {"hero", "escape", "flying", "fight"},
	"Romance":   {"love", "friendship"},
	"Drama":     {"love", "death", "friendship", "hospital"},
	"Fantasy":   {"superhero", "hero", "villain", "magnet"},
	"Animation": {"superhero", "based-on-comic", "flying", "hero"},
}

// adjectives / nouns for synthetic movie titles. Several tokens are targets
// of LIKE predicates in the workload.
var titleAdjectives = []string{
	"Dark", "Silent", "Golden", "Lost", "Hidden", "Broken", "Eternal",
	"Crimson", "Savage", "Gentle", "Iron", "Burning", "Frozen", "Secret",
	"Wild", "Ancient", "Final", "Little", "Great", "Shadow",
}

var titleNouns = []string{
	"Champion", "Murder", "King", "Love", "Dream", "River", "Mountain",
	"City", "Money", "Glory", "Justice", "Storm", "Garden", "Empire",
	"Voyage", "Promise", "Harvest", "Kingdom", "Affair", "Witness",
	"Honor", "Freedom", "Legacy", "Destiny", "Fortune",
}

// firstNamesF / firstNamesM drive the gender column of name and the
// actor/actress role correlation in cast_info. Many contain the substrings
// JOB's LIKE predicates search for ("%An%", "%Bert%", "B%").
var firstNamesF = []string{
	"Anna", "Angela", "Andrea", "Maria", "Julia", "Sophie", "Emma",
	"Laura", "Nina", "Carla", "Diane", "Grace", "Helen", "Irene", "Jane",
	"Karen", "Linda", "Mona", "Nora", "Olivia", "Paula", "Rita", "Sara",
	"Tina", "Ursula", "Vera", "Wendy", "Yvonne", "Zoe", "Bertha",
}

var firstNamesM = []string{
	"Andrew", "Anton", "Bernard", "Albert", "Bert", "Carl", "David",
	"Erik", "Frank", "George", "Henry", "Ivan", "James", "Kevin", "Louis",
	"Martin", "Niels", "Oscar", "Peter", "Quentin", "Robert", "Samuel",
	"Thomas", "Victor", "Walter", "Xavier", "Yusuf", "Zachary", "Hugo",
	"Viktor",
}

var lastNames = []string{
	"Anderson", "Baker", "Carter", "Dawson", "Ellis", "Fischer", "Garcia",
	"Hoffman", "Ivanov", "Jansen", "Keller", "Lambert", "Miller", "Novak",
	"Olsen", "Petrov", "Quinn", "Rossi", "Schmidt", "Tanaka", "Umarov",
	"Vogel", "Weber", "Xu", "Yamamoto", "Zimmermann", "Boehm", "Downey",
	"Kaurismaeki", "Moreno",
}

// companyTokens per country bias company names so that LIKE predicates on
// company names correlate with country codes.
var companyTokens = map[string][]string{
	"[us]": {"Universal", "Warner", "Paramount", "Columbia", "Fox", "Lion", "Summit", "Marvel", "Liberty", "Apex"},
	"[gb]": {"Ealing", "Pinewood", "Albion", "Crown", "Thames"},
	"[de]": {"Constantin", "Bavaria", "UFA", "Rhein", "Berlin"},
	"[fr]": {"Gaumont", "Pathe", "Lumiere", "Seine", "Riviera"},
	"[it]": {"Cinecitta", "Roma", "Titanus", "Venezia"},
	"[jp]": {"Toho", "Shochiku", "Nikkatsu", "Sakura"},
	"[in]": {"Bollywood", "Chennai", "Ganges", "Mumbai"},
}

var companyTokensDefault = []string{
	"Northern", "Central", "Global", "Royal", "Pacific", "Atlantic",
	"Meridian", "Pioneer", "Horizon", "Capital",
}

var companySuffixes = []string{
	"Pictures", "Film", "Entertainment", "Studios", "Productions",
	"Media", "Television", "International", "Releasing", "Home Video",
}

// mcNoteTokens generates movie_companies.note values such as
// "(2004) (USA) (TV)"; the presentation country correlates with the
// company's country.
var mcNoteMedia = []string{"(TV)", "(video)", "(theatrical)", "(VHS)", "(DVD)", "(worldwide)"}

// ciNotes are cast_info note values with their base shares; "(voice)" is
// boosted for Animation titles (a join-crossing correlation the estimators
// cannot see).
var ciNotes = []string{
	"(voice)", "(uncredited)", "(archive footage)", "(as himself)",
	"(voice) (uncredited)", "(singing voice)", "(credit only)",
}

var ciNoteShare = []float64{0.08, 0.07, 0.03, 0.05, 0.02, 0.01, 0.01}
