package index

import "fmt"

// Config selects one of the paper's three physical designs (§4, §6.1).
// It lives in the index package so every workload (IMDB, TPC-H, ...) can
// share the same configuration vocabulary without importing each other.
type Config int

const (
	// NoIndexes has no indexes at all.
	NoIndexes Config = iota
	// PKOnly indexes the primary key (id) of every table.
	PKOnly
	// PKFK additionally indexes every foreign-key column.
	PKFK
)

// Label returns the short filename-safe name of the configuration, used by
// the snapshot store and the CLI/service flag surface.
func (c Config) Label() string {
	switch c {
	case NoIndexes:
		return "none"
	case PKOnly:
		return "pk"
	case PKFK:
		return "pkfk"
	default:
		return fmt.Sprintf("cfg%d", int(c))
	}
}

// String renders the configuration the way the reports caption it.
func (c Config) String() string {
	switch c {
	case NoIndexes:
		return "no indexes"
	case PKOnly:
		return "PK indexes"
	case PKFK:
		return "PK + FK indexes"
	default:
		return fmt.Sprintf("Config(%d)", int(c))
	}
}
