// Package index provides the unclustered secondary indexes used by the
// execution engine and the optimizer: hash indexes for equality lookups and
// a sorted index (binary-search based, standing in for an unclustered
// B+Tree) as an alternative access path. An index maps a key value to the
// row ids holding it.
package index

import (
	"fmt"
	"slices"
	"sort"

	"jobench/internal/hashtab"
	"jobench/internal/storage"
)

// Index is the lookup interface shared by all index kinds. NULL rows are
// never indexed, matching SQL semantics for equi-joins.
type Index interface {
	// Lookup returns the row ids whose key equals v. The returned slice
	// must not be modified.
	Lookup(v int64) []int32
	// Len returns the number of indexed (non-NULL) rows.
	Len() int
	// Unique reports whether the index was declared unique (primary key).
	Unique() bool
}

// Hash is a hash-based index, backed by the flat grouped postings of
// internal/hashtab: all row ids live in one contiguous arena grouped by
// key, and a lookup is one flat-hash probe instead of a Go map access —
// the single hottest operation of the engine's index-nested-loop joins.
type Hash struct {
	p      *hashtab.Postings
	unique bool
}

// BuildHash builds a hash index over col. If unique is true, duplicate keys
// cause an error (primary key violation).
func BuildHash(col *storage.Column, unique bool) (*Hash, error) {
	keys := make([]int64, 0, col.Len())
	rows := make([]int32, 0, col.Len())
	for i, v := range col.Ints {
		if col.IsNull(i) {
			continue
		}
		keys = append(keys, v)
		rows = append(rows, int32(i))
	}
	h := &Hash{p: hashtab.BuildPostings(keys, rows), unique: unique}
	if unique && h.p.Keys() != h.p.Len() {
		for g := 0; g < h.p.Keys(); g++ {
			if k, vs := h.p.Group(g); len(vs) > 1 {
				return nil, fmt.Errorf("index: duplicate key %d in unique index on %q", k, col.Name)
			}
		}
	}
	return h, nil
}

// Lookup implements Index.
func (h *Hash) Lookup(v int64) []int32 { return h.p.Lookup(v) }

// Len implements Index.
func (h *Hash) Len() int { return h.p.Len() }

// Unique implements Index.
func (h *Hash) Unique() bool { return h.unique }

// DistinctKeys returns the number of distinct keys in the index.
func (h *Hash) DistinctKeys() int { return h.p.Keys() }

// Postings returns the index contents in deterministic order: keys
// ascending, each with its row-id list (rows within a key are in insertion
// order, i.e. ascending, since BuildHash scans the column front to back).
// It is the serialization surface of the snapshot store.
func (h *Hash) Postings() (keys []int64, rows [][]int32) {
	n := h.p.Keys()
	keys = make([]int64, 0, n)
	for g := 0; g < n; g++ {
		k, _ := h.p.Group(g)
		keys = append(keys, k)
	}
	slices.Sort(keys)
	rows = make([][]int32, len(keys))
	for i, k := range keys {
		rows[i] = h.p.Lookup(k)
	}
	return keys, rows
}

// RestoreHash rebuilds a hash index from Postings-shaped input (the inverse
// of Postings, used when loading an index snapshot). It validates the
// structural invariants BuildHash would have established: keys strictly
// ascending (no duplicates), every key holding at least one row, and at
// most one row per key for unique indexes. Row-id bounds are the caller's
// to check — the index does not know its table.
func RestoreHash(keys []int64, rows [][]int32, unique bool) (*Hash, error) {
	if len(keys) != len(rows) {
		return nil, fmt.Errorf("index: %d keys but %d posting lists", len(keys), len(rows))
	}
	total := 0
	for i, k := range keys {
		if i > 0 && keys[i-1] >= k {
			return nil, fmt.Errorf("index: keys not strictly ascending at %d (%d after %d)", i, k, keys[i-1])
		}
		if len(rows[i]) == 0 {
			return nil, fmt.Errorf("index: key %d has no rows", k)
		}
		if unique && len(rows[i]) > 1 {
			return nil, fmt.Errorf("index: duplicate key %d in unique index", k)
		}
		total += len(rows[i])
	}
	flatKeys := make([]int64, 0, total)
	flatRows := make([]int32, 0, total)
	for i, k := range keys {
		for _, r := range rows[i] {
			flatKeys = append(flatKeys, k)
			flatRows = append(flatRows, r)
		}
	}
	return &Hash{p: hashtab.BuildPostings(flatKeys, flatRows), unique: unique}, nil
}

// Sorted is a sorted (key, row) index supporting equality and range lookups
// via binary search. It models an unclustered B+Tree leaf level.
type Sorted struct {
	keys   []int64
	rows   []int32
	unique bool
}

// BuildSorted builds a sorted index over col.
func BuildSorted(col *storage.Column, unique bool) (*Sorted, error) {
	s := &Sorted{unique: unique}
	for i, v := range col.Ints {
		if col.IsNull(i) {
			continue
		}
		s.keys = append(s.keys, v)
		s.rows = append(s.rows, int32(i))
	}
	sort.Sort(byKey{s})
	if unique {
		for i := 1; i < len(s.keys); i++ {
			if s.keys[i] == s.keys[i-1] {
				return nil, fmt.Errorf("index: duplicate key %d in unique index on %q", s.keys[i], col.Name)
			}
		}
	}
	return s, nil
}

type byKey struct{ s *Sorted }

func (b byKey) Len() int { return len(b.s.keys) }
func (b byKey) Less(i, j int) bool {
	if b.s.keys[i] != b.s.keys[j] {
		return b.s.keys[i] < b.s.keys[j]
	}
	return b.s.rows[i] < b.s.rows[j]
}
func (b byKey) Swap(i, j int) {
	b.s.keys[i], b.s.keys[j] = b.s.keys[j], b.s.keys[i]
	b.s.rows[i], b.s.rows[j] = b.s.rows[j], b.s.rows[i]
}

// Lookup implements Index.
func (s *Sorted) Lookup(v int64) []int32 {
	lo := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= v })
	hi := lo
	for hi < len(s.keys) && s.keys[hi] == v {
		hi++
	}
	return s.rows[lo:hi]
}

// Range returns the row ids with lo <= key <= hi.
func (s *Sorted) Range(lo, hi int64) []int32 {
	a := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= lo })
	b := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] > hi })
	if a >= b {
		return nil
	}
	return s.rows[a:b]
}

// Len implements Index.
func (s *Sorted) Len() int { return len(s.keys) }

// Unique implements Index.
func (s *Sorted) Unique() bool { return s.unique }
