package index

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"jobench/internal/storage"
)

func intCol(vals ...int64) *storage.Column {
	c := storage.NewIntColumn("k")
	for _, v := range vals {
		c.AppendInt(v)
	}
	return c
}

func TestHashLookup(t *testing.T) {
	col := intCol(5, 3, 5, 7, 3, 5)
	h, err := BuildHash(col, false)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 6 {
		t.Fatalf("Len = %d", h.Len())
	}
	if got := h.Lookup(5); !reflect.DeepEqual(got, []int32{0, 2, 5}) {
		t.Fatalf("Lookup(5) = %v", got)
	}
	if got := h.Lookup(42); got != nil {
		t.Fatalf("Lookup(42) = %v, want nil", got)
	}
	if h.DistinctKeys() != 3 {
		t.Fatalf("DistinctKeys = %d", h.DistinctKeys())
	}
}

func TestUniqueHashRejectsDuplicates(t *testing.T) {
	if _, err := BuildHash(intCol(1, 2, 1), true); err == nil {
		t.Fatal("unique index accepted duplicate key")
	}
	h, err := BuildHash(intCol(1, 2, 3), true)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Unique() {
		t.Fatal("Unique() = false")
	}
}

func TestNullsNotIndexed(t *testing.T) {
	col := storage.NewIntColumn("k")
	col.AppendInt(1)
	col.AppendNull()
	col.AppendInt(1)
	h, err := BuildHash(col, false)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (NULL skipped)", h.Len())
	}
	if got := h.Lookup(0); len(got) != 0 {
		t.Fatalf("NULL sentinel leaked into index: %v", got)
	}
}

func TestSortedLookupAndRange(t *testing.T) {
	col := intCol(10, 5, 7, 5, 12, 7, 7)
	s, err := BuildSorted(col, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Lookup(7); !reflect.DeepEqual(got, []int32{2, 5, 6}) {
		t.Fatalf("Lookup(7) = %v", got)
	}
	got := s.Range(6, 10)
	want := []int32{2, 5, 6, 0}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Range(6,10) = %v, want %v", got, want)
	}
	if got := s.Range(100, 50); got != nil {
		t.Fatalf("inverted range returned %v", got)
	}
}

func TestUniqueSortedRejectsDuplicates(t *testing.T) {
	if _, err := BuildSorted(intCol(4, 4), true); err == nil {
		t.Fatal("unique sorted index accepted duplicate")
	}
}

// Property: both index kinds agree with a linear scan on random data.
func TestIndexMatchesScanProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		col := storage.NewIntColumn("k")
		for i := 0; i < int(n)+1; i++ {
			col.AppendInt(int64(rng.Intn(16)))
		}
		h, err1 := BuildHash(col, false)
		s, err2 := BuildSorted(col, false)
		if err1 != nil || err2 != nil {
			return false
		}
		for key := int64(-1); key <= 16; key++ {
			var want []int32
			for i, v := range col.Ints {
				if v == key {
					want = append(want, int32(i))
				}
			}
			hg := append([]int32(nil), h.Lookup(key)...)
			sg := append([]int32(nil), s.Lookup(key)...)
			sort.Slice(sg, func(i, j int) bool { return sg[i] < sg[j] })
			if !reflect.DeepEqual(hg, want) && !(len(hg) == 0 && len(want) == 0) {
				return false
			}
			if !reflect.DeepEqual(sg, want) && !(len(sg) == 0 && len(want) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSet(t *testing.T) {
	db := storage.NewDatabase()
	tbl := storage.NewTable("t", intCol(1, 2, 3))
	db.Add(tbl)

	s := NewSet()
	if s.Has("t", "k") {
		t.Fatal("empty set claims index")
	}
	if err := s.BuildHashOn(db, "t", "k", true); err != nil {
		t.Fatal(err)
	}
	if !s.Has("t", "k") || s.Get("t", "k") == nil || s.Size() != 1 {
		t.Fatal("index not registered")
	}
	if err := s.BuildHashOn(db, "missing", "k", false); err == nil {
		t.Fatal("no error for missing table")
	}
	if err := s.BuildHashOn(db, "t", "missing", false); err == nil {
		t.Fatal("no error for missing column")
	}
	if d := s.Describe(); len(d) != 1 {
		t.Fatalf("Describe = %v", d)
	}
}
