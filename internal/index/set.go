package index

import (
	"fmt"
	"sort"

	"jobench/internal/storage"
)

// Set is a registry of indexes keyed by (table, column). It doubles as the
// optimizer's physical-design oracle: a join side can use an index-nested-
// loop join only if Has(table, column) is true, which is how the paper's
// three index configurations (none / PK / PK+FK) are expressed.
type Set struct {
	m map[setKey]Index
}

type setKey struct{ table, column string }

// NewSet returns an empty index set (the "no indexes" configuration).
func NewSet() *Set { return &Set{m: make(map[setKey]Index)} }

// Add registers an index for (table, column), replacing any previous one.
func (s *Set) Add(table, column string, idx Index) {
	s.m[setKey{table, column}] = idx
}

// Get returns the index on (table, column), or nil.
func (s *Set) Get(table, column string) Index {
	return s.m[setKey{table, column}]
}

// Has reports whether an index exists on (table, column). It implements the
// optimizer's IndexChecker interface.
func (s *Set) Has(table, column string) bool {
	_, ok := s.m[setKey{table, column}]
	return ok
}

// Size returns the number of registered indexes.
func (s *Set) Size() int { return len(s.m) }

// Item is one registered index with its (table, column) key.
type Item struct {
	Table  string
	Column string
	Index  Index
}

// Items returns the registered indexes sorted by (table, column), the
// deterministic iteration order the snapshot store serializes in.
func (s *Set) Items() []Item {
	out := make([]Item, 0, len(s.m))
	for k, idx := range s.m {
		out = append(out, Item{Table: k.table, Column: k.column, Index: idx})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Column < out[j].Column
	})
	return out
}

// Describe returns a sorted human-readable list of indexed columns.
func (s *Set) Describe() []string {
	out := make([]string, 0, len(s.m))
	for k, idx := range s.m {
		kind := "non-unique"
		if idx.Unique() {
			kind = "unique"
		}
		out = append(out, fmt.Sprintf("%s.%s (%s, %d entries)", k.table, k.column, kind, idx.Len()))
	}
	sort.Strings(out)
	return out
}

// BuildHashOn builds and registers a hash index on table.column of db.
func (s *Set) BuildHashOn(db *storage.Database, table, column string, unique bool) error {
	t := db.Table(table)
	if t == nil {
		return fmt.Errorf("index: no table %q", table)
	}
	col := t.Column(column)
	if col == nil {
		return fmt.Errorf("index: no column %q.%q", table, column)
	}
	idx, err := BuildHash(col, unique)
	if err != nil {
		return err
	}
	s.Add(table, column, idx)
	return nil
}
