// Package job defines the Join Order Benchmark workload over the synthetic
// IMDB schema: 33 query families, each with 2-6 variants that differ only in
// their selection predicates, 113 queries in total (the same family/variant
// structure as the original JOB). Queries have between 4 and 16 join
// predicates with an average of about 8, are pure select-project-join
// blocks, and include the transitive join predicates (n:m "dotted edges" of
// the paper's Fig. 2) that the original queries carry.
package job

import (
	"fmt"
	"strings"

	"jobench/internal/query"
)

// Workload returns all 113 JOB queries in family order (1a, 1b, ..., 33c).
func Workload() []*query.Query {
	var qs []*query.Query
	for _, fam := range families {
		qs = append(qs, fam()...)
	}
	return qs
}

// ByID returns the query with the given id (e.g. "13d"), or nil.
func ByID(id string) *query.Query {
	for _, q := range Workload() {
		if q.ID == id {
			return q
		}
	}
	return nil
}

// FamilyOf returns the family number of a query id like "17c".
func FamilyOf(id string) string {
	return strings.TrimRight(id, "abcdef")
}

var families = []func() []*query.Query{
	family1, family2, family3, family4, family5, family6, family7, family8,
	family9, family10, family11, family12, family13, family14, family15,
	family16, family17, family18, family19, family20, family21, family22,
	family23, family24, family25, family26, family27, family28, family29,
	family30, family31, family32, family33,
}

// --- tiny construction DSL -------------------------------------------------

type qb struct{ q *query.Query }

func newQ(id string) *qb { return &qb{q: &query.Query{ID: id}} }

func (b *qb) rel(alias, table string, preds ...*query.Pred) *qb {
	b.q.Rels = append(b.q.Rels, query.Rel{Alias: alias, Table: table, Preds: preds})
	return b
}

// on adds join predicates given as "a.col = b.col" specs.
func (b *qb) on(specs ...string) *qb {
	for _, s := range specs {
		parts := strings.Split(s, "=")
		if len(parts) != 2 {
			panic(fmt.Sprintf("job: bad join spec %q", s))
		}
		l := strings.Split(strings.TrimSpace(parts[0]), ".")
		r := strings.Split(strings.TrimSpace(parts[1]), ".")
		if len(l) != 2 || len(r) != 2 {
			panic(fmt.Sprintf("job: bad join spec %q", s))
		}
		b.q.Joins = append(b.q.Joins, query.Join{
			LeftAlias: l[0], LeftCol: l[1], RightAlias: r[0], RightCol: r[1],
		})
	}
	return b
}

func (b *qb) build() *query.Query { return b.q }

// Shorthands for the predicate constructors used throughout the workload.
var (
	eqS   = query.EqStr
	neS   = query.NeStr
	inS   = query.InStr
	like  = query.Like
	nlike = query.NotLike
	eqI   = query.EqInt
	gtI   = query.GtInt
	ltI   = query.LtInt
	geI   = query.GeInt
	btw   = query.Between
	null  = query.IsNull
	nn    = query.NotNull
	or    = query.Or
)

// europeanCountries is a reusable IN-list (cf. JOB 3a).
var europeanCountries = []string{
	"Sweden", "Norway", "Germany", "Denmark", "Netherlands", "Finland",
}

// --- family 1: company type x top-250 rank (5 rels, 5 joins) ---------------

func family1() []*query.Query {
	mk := func(id string, itInfo string, mcNote, tYear *query.Pred) *query.Query {
		b := newQ(id).
			rel("ct", "company_type", eqS("kind", "production companies")).
			rel("it", "info_type", eqS("info", itInfo)).
			rel("mc", "movie_companies", mcNote).
			rel("mi_idx", "movie_info_idx").
			rel("t", "title", tYear).
			on("ct.id = mc.company_type_id",
				"t.id = mc.movie_id",
				"t.id = mi_idx.movie_id",
				"mc.movie_id = mi_idx.movie_id",
				"it.id = mi_idx.info_type_id")
		return b.build()
	}
	return []*query.Query{
		mk("1a", "top 250 rank", nlike("note", "%(TV)%"), btw("production_year", 2005, 2010)),
		mk("1b", "bottom 10 rank", nlike("note", "%(TV)%"), btw("production_year", 2005, 2010)),
		mk("1c", "top 250 rank", like("note", "%(co-production)%"), gtI("production_year", 2010)),
		mk("1d", "bottom 10 rank", like("note", "%(co-production)%"), gtI("production_year", 2000)),
	}
}

// --- family 2: keyword x company country (5 rels, 5 joins) ------------------

func family2() []*query.Query {
	mk := func(id, code string) *query.Query {
		return newQ(id).
			rel("cn", "company_name", eqS("country_code", code)).
			rel("k", "keyword", eqS("keyword", "character-name-in-title")).
			rel("mc", "movie_companies").
			rel("mk", "movie_keyword").
			rel("t", "title").
			on("cn.id = mc.company_id",
				"mc.movie_id = t.id",
				"t.id = mk.movie_id",
				"mk.keyword_id = k.id",
				"mc.movie_id = mk.movie_id").
			build()
	}
	return []*query.Query{
		mk("2a", "[de]"), mk("2b", "[nl]"), mk("2c", "[se]"), mk("2d", "[us]"),
	}
}

// --- family 3: sequels in northern Europe (4 rels, 4 joins) -----------------

func family3() []*query.Query {
	mk := func(id string, miIn []string, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("k", "keyword", like("keyword", "%sequel%")).
			rel("mi", "movie_info", inS("info", miIn...)).
			rel("mk", "movie_keyword").
			rel("t", "title", tYear).
			on("k.id = mk.keyword_id",
				"mk.movie_id = t.id",
				"t.id = mi.movie_id",
				"mi.movie_id = mk.movie_id").
			build()
	}
	big := append(append([]string{}, europeanCountries...),
		"German", "Swedish", "Danish", "Norwegian", "USA", "American")
	return []*query.Query{
		mk("3a", append(append([]string{}, europeanCountries...), "German", "Swedish", "Danish", "Norwegian"), gtI("production_year", 2005)),
		mk("3b", []string{"Bulgaria"}, gtI("production_year", 2010)),
		mk("3c", big, gtI("production_year", 1990)),
	}
}

// --- family 4: sequel ratings (5 rels, 5 joins) -----------------------------

func family4() []*query.Query {
	mk := func(id string, rating int64, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("it", "info_type", eqS("info", "rating")).
			rel("k", "keyword", like("keyword", "%sequel%")).
			rel("mi_idx", "movie_info_idx", gtI("info_num", rating)).
			rel("mk", "movie_keyword").
			rel("t", "title", tYear).
			on("t.id = mi_idx.movie_id",
				"t.id = mk.movie_id",
				"mk.movie_id = mi_idx.movie_id",
				"k.id = mk.keyword_id",
				"it.id = mi_idx.info_type_id").
			build()
	}
	return []*query.Query{
		mk("4a", 50, gtI("production_year", 2005)),
		mk("4b", 80, gtI("production_year", 2010)),
		mk("4c", 20, gtI("production_year", 1990)),
	}
}

// --- family 5: production companies x languages (5 rels, 5 joins) ----------

func family5() []*query.Query {
	mk := func(id string, mcNote *query.Pred, miIn []string, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("ct", "company_type", eqS("kind", "production companies")).
			rel("it", "info_type").
			rel("mc", "movie_companies", mcNote).
			rel("mi", "movie_info", inS("info", miIn...)).
			rel("t", "title", tYear).
			on("t.id = mc.movie_id",
				"mc.movie_id = mi.movie_id",
				"t.id = mi.movie_id",
				"ct.id = mc.company_type_id",
				"it.id = mi.info_type_id").
			build()
	}
	return []*query.Query{
		mk("5a", like("note", "%(theatrical)%"), []string{"English", "German", "French"}, gtI("production_year", 2000)),
		mk("5b", like("note", "%(VHS)%"), []string{"USA", "Germany"}, gtI("production_year", 2010)),
		mk("5c", like("note", "%(TV)%"), []string{"Horror", "Drama", "Comedy"}, gtI("production_year", 1990)),
	}
}

// --- family 6: actors of keyword-tagged movies (5 rels, 5 joins) -----------

func family6() []*query.Query {
	mk := func(id, kw string, nName *query.Pred, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("ci", "cast_info").
			rel("k", "keyword", eqS("keyword", kw)).
			rel("mk", "movie_keyword").
			rel("n", "name", nName).
			rel("t", "title", tYear).
			on("k.id = mk.keyword_id",
				"mk.movie_id = t.id",
				"t.id = ci.movie_id",
				"ci.movie_id = mk.movie_id",
				"n.id = ci.person_id").
			build()
	}
	return []*query.Query{
		mk("6a", "superhero", like("name", "Downey%"), gtI("production_year", 2005)),
		mk("6b", "superhero", like("name", "%Robert%"), gtI("production_year", 2010)),
		mk("6c", "marvel-cinematic-universe", like("name", "Downey%"), gtI("production_year", 2010)),
		mk("6d", "sequel", like("name", "%Bert%"), gtI("production_year", 1990)),
		mk("6e", "sequel", like("name", "%B%"), gtI("production_year", 1950)),
		mk("6f", "sequel", nn("name"), gtI("production_year", 1950)),
	}
}

// --- family 7: biographies of linked-movie cast (8 rels, 9 joins) ----------

func family7() []*query.Query {
	mk := func(id string, anName, nPred *query.Pred, piNote *query.Pred, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("an", "aka_name", anName).
			rel("ci", "cast_info").
			rel("it", "info_type", eqS("info", "mini biography")).
			rel("lt", "link_type", eqS("link", "features")).
			rel("ml", "movie_link").
			rel("n", "name", nPred).
			rel("pi", "person_info", piNote).
			rel("t", "title", tYear).
			on("an.person_id = n.id",
				"n.id = pi.person_id",
				"ci.person_id = n.id",
				"t.id = ci.movie_id",
				"ml.linked_movie_id = t.id",
				"lt.id = ml.link_type_id",
				"it.id = pi.info_type_id",
				"pi.person_id = an.person_id",
				"pi.person_id = ci.person_id").
			build()
	}
	return []*query.Query{
		mk("7a", like("name", "%An%"), eqS("gender", "m"), eqS("note", "Volker Boehm"), btw("production_year", 1980, 1995)),
		mk("7b", like("name", "%A%"), eqS("gender", "m"), eqS("note", "Volker Boehm"), btw("production_year", 1980, 2013)),
		mk("7c", nn("name"), or(eqS("gender", "m"), eqS("gender", "f")), nn("note"), btw("production_year", 1950, 2013)),
	}
}

// --- family 8: voice roles for foreign productions (7 rels, 8 joins) -------

func family8() []*query.Query {
	mk := func(id string, ciNote *query.Pred, code string, mcNote *query.Pred, rtRole string, nName *query.Pred) *query.Query {
		return newQ(id).
			rel("an", "aka_name").
			rel("ci", "cast_info", ciNote).
			rel("cn", "company_name", eqS("country_code", code)).
			rel("mc", "movie_companies", mcNote).
			rel("n", "name", nName).
			rel("rt", "role_type", eqS("role", rtRole)).
			rel("t", "title").
			on("an.person_id = n.id",
				"ci.person_id = n.id",
				"ci.movie_id = t.id",
				"mc.movie_id = t.id",
				"mc.company_id = cn.id",
				"ci.role_id = rt.id",
				"an.person_id = ci.person_id",
				"ci.movie_id = mc.movie_id").
			build()
	}
	return []*query.Query{
		mk("8a", eqS("note", "(voice)"), "[jp]", like("note", "%(Japan)%"), "actress", like("name", "%Yamamoto%")),
		mk("8b", eqS("note", "(voice)"), "[jp]", nlike("note", "%(USA)%"), "actress", like("name", "%Yo%")),
		mk("8c", nn("note"), "[us]", nn("note"), "writer", nn("name")),
		mk("8d", nn("note"), "[us]", nn("note"), "costume designer", nn("name")),
	}
}

// --- family 9: US voice actresses with characters (8 rels, 9 joins) --------

func family9() []*query.Query {
	mk := func(id string, ciNote *query.Pred, nName *query.Pred, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("an", "aka_name").
			rel("chn", "char_name").
			rel("ci", "cast_info", ciNote).
			rel("cn", "company_name", eqS("country_code", "[us]")).
			rel("mc", "movie_companies").
			rel("n", "name", eqS("gender", "f"), nName).
			rel("rt", "role_type", eqS("role", "actress")).
			rel("t", "title", tYear).
			on("ci.movie_id = t.id",
				"mc.movie_id = t.id",
				"ci.movie_id = mc.movie_id",
				"mc.company_id = cn.id",
				"ci.role_id = rt.id",
				"n.id = ci.person_id",
				"chn.id = ci.person_role_id",
				"an.person_id = n.id",
				"an.person_id = ci.person_id").
			build()
	}
	return []*query.Query{
		mk("9a", inS("note", "(voice)", "(voice) (uncredited)"), like("name", "%Ang%"), btw("production_year", 2005, 2013)),
		mk("9b", eqS("note", "(voice)"), like("name", "%Ang%"), btw("production_year", 2007, 2010)),
		mk("9c", inS("note", "(voice)", "(voice) (uncredited)", "(singing voice)"), like("name", "%An%"), gtI("production_year", 1990)),
		mk("9d", inS("note", "(voice)", "(voice) (uncredited)", "(singing voice)"), nn("name"), gtI("production_year", 1950)),
	}
}

// --- family 10: Russian voice-over actors (7 rels, 7 joins) -----------------

func family10() []*query.Query {
	mk := func(id string, ciNote *query.Pred, code, rtRole string, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("chn", "char_name").
			rel("ci", "cast_info", ciNote).
			rel("cn", "company_name", eqS("country_code", code)).
			rel("ct", "company_type").
			rel("mc", "movie_companies").
			rel("rt", "role_type", eqS("role", rtRole)).
			rel("t", "title", tYear).
			on("t.id = mc.movie_id",
				"t.id = ci.movie_id",
				"ci.movie_id = mc.movie_id",
				"chn.id = ci.person_role_id",
				"rt.id = ci.role_id",
				"cn.id = mc.company_id",
				"ct.id = mc.company_type_id").
			build()
	}
	return []*query.Query{
		mk("10a", like("note", "%(voice)%"), "[ru]", "actor", gtI("production_year", 2005)),
		mk("10b", like("note", "%(voice)%"), "[ru]", "actor", gtI("production_year", 2010)),
		mk("10c", nn("note"), "[us]", "producer", gtI("production_year", 1990)),
	}
}

// --- family 11: sequel distribution chains (8 rels, 8 joins) ----------------

func family11() []*query.Query {
	mk := func(id string, cnPred []*query.Pred, ltLink *query.Pred, tYear *query.Pred) *query.Query {
		b := newQ(id).
			rel("cn", "company_name", cnPred...).
			rel("ct", "company_type", eqS("kind", "production companies")).
			rel("k", "keyword", eqS("keyword", "sequel")).
			rel("lt", "link_type", ltLink).
			rel("mc", "movie_companies", null("note")).
			rel("mk", "movie_keyword").
			rel("ml", "movie_link").
			rel("t", "title", tYear).
			on("t.id = mc.movie_id",
				"mc.company_id = cn.id",
				"mc.company_type_id = ct.id",
				"t.id = mk.movie_id",
				"mk.keyword_id = k.id",
				"mc.movie_id = mk.movie_id",
				"ml.movie_id = t.id",
				"ml.link_type_id = lt.id")
		return b.build()
	}
	return []*query.Query{
		mk("11a", []*query.Pred{neS("country_code", "[pl]"), like("name", "%Film%")}, like("link", "%follow%"), btw("production_year", 1950, 2000)),
		mk("11b", []*query.Pred{neS("country_code", "[pl]"), like("name", "%Warner%")}, eqS("link", "follows"), eqI("production_year", 2007)),
		mk("11c", []*query.Pred{neS("country_code", "[pl]"), like("name", "%Film%")}, nn("link"), btw("production_year", 1950, 2013)),
		mk("11d", []*query.Pred{neS("country_code", "[pl]")}, nn("link"), btw("production_year", 1950, 2013)),
	}
}

// --- family 12: rated US drama/horror productions (8 rels, 10 joins) -------

func family12() []*query.Query {
	mk := func(id string, genreIn []string, rating int64, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("cn", "company_name", eqS("country_code", "[us]")).
			rel("ct", "company_type", eqS("kind", "production companies")).
			rel("it1", "info_type", eqS("info", "genres")).
			rel("it2", "info_type", eqS("info", "rating")).
			rel("mc", "movie_companies").
			rel("mi", "movie_info", inS("info", genreIn...)).
			rel("mi_idx", "movie_info_idx", gtI("info_num", rating)).
			rel("t", "title", tYear).
			on("t.id = mi.movie_id",
				"t.id = mi_idx.movie_id",
				"mi.info_type_id = it1.id",
				"mi_idx.info_type_id = it2.id",
				"t.id = mc.movie_id",
				"mc.company_id = cn.id",
				"mc.company_type_id = ct.id",
				"mc.movie_id = mi.movie_id",
				"mc.movie_id = mi_idx.movie_id",
				"mi.movie_id = mi_idx.movie_id").
			build()
	}
	return []*query.Query{
		mk("12a", []string{"Drama", "Horror"}, 80, btw("production_year", 2005, 2008)),
		mk("12b", []string{"Drama", "Horror", "Western", "Family"}, 70, btw("production_year", 2000, 2010)),
		mk("12c", []string{"Drama", "Horror", "Comedy"}, 20, gtI("production_year", 2000)),
	}
}

// --- family 13: ratings and release dates of company movies (9 rels,
// 11 joins — the paper's running example 13d) --------------------------------

func family13() []*query.Query {
	mk := func(id, code, ktKind string, tYear *query.Pred) *query.Query {
		b := newQ(id).
			rel("cn", "company_name", eqS("country_code", code)).
			rel("ct", "company_type", eqS("kind", "production companies")).
			rel("it", "info_type", eqS("info", "rating")).
			rel("it2", "info_type", eqS("info", "release dates")).
			rel("kt", "kind_type", eqS("kind", ktKind)).
			rel("mc", "movie_companies").
			rel("mi", "movie_info").
			rel("mi_idx", "movie_info_idx").
			rel("t", "title")
		if tYear != nil {
			b.q.Rels[8].Preds = append(b.q.Rels[8].Preds, tYear)
		}
		return b.on(
			"mi.movie_id = t.id",
			"it2.id = mi.info_type_id",
			"kt.id = t.kind_id",
			"mc.movie_id = t.id",
			"cn.id = mc.company_id",
			"ct.id = mc.company_type_id",
			"mi_idx.movie_id = t.id",
			"it.id = mi_idx.info_type_id",
			"mi.movie_id = mi_idx.movie_id",
			"mc.movie_id = mi.movie_id",
			"mc.movie_id = mi_idx.movie_id").build()
	}
	return []*query.Query{
		mk("13a", "[de]", "movie", nil),
		mk("13b", "[us]", "movie", gtI("production_year", 2010)),
		mk("13c", "[us]", "movie", btw("production_year", 1990, 2000)),
		mk("13d", "[us]", "movie", nil),
	}
}

// --- family 14: violent-keyword countries with low ratings (8 rels,
// 10 joins) ------------------------------------------------------------------

func family14() []*query.Query {
	mk := func(id string, kwIn []string, miIn []string, rating int64, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("it1", "info_type", eqS("info", "countries")).
			rel("it2", "info_type", eqS("info", "rating")).
			rel("k", "keyword", inS("keyword", kwIn...)).
			rel("kt", "kind_type", eqS("kind", "movie")).
			rel("mi", "movie_info", inS("info", miIn...)).
			rel("mi_idx", "movie_info_idx", ltI("info_num", rating)).
			rel("mk", "movie_keyword").
			rel("t", "title", tYear).
			on("t.id = mi.movie_id",
				"t.id = mi_idx.movie_id",
				"t.id = mk.movie_id",
				"mi.movie_id = mi_idx.movie_id",
				"mi.movie_id = mk.movie_id",
				"mi_idx.movie_id = mk.movie_id",
				"k.id = mk.keyword_id",
				"it1.id = mi.info_type_id",
				"it2.id = mi_idx.info_type_id",
				"kt.id = t.kind_id").
			build()
	}
	violent := []string{"murder", "blood", "gore", "violence"}
	return []*query.Query{
		mk("14a", violent, []string{"Germany", "Sweden", "USA"}, 85, gtI("production_year", 2005)),
		mk("14b", []string{"murder", "blood"}, []string{"USA"}, 70, gtI("production_year", 2010)),
		mk("14c", violent, append([]string{"USA"}, europeanCountries...), 95, gtI("production_year", 1990)),
	}
}

// --- family 15: worldwide releases with aka titles (9 rels, 11 joins) -------

func family15() []*query.Query {
	mk := func(id, code string, mcNote, miNote *query.Pred, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("at", "aka_title").
			rel("cn", "company_name", eqS("country_code", code)).
			rel("ct", "company_type", eqS("kind", "production companies")).
			rel("it1", "info_type", eqS("info", "release dates")).
			rel("k", "keyword").
			rel("mc", "movie_companies", mcNote).
			rel("mi", "movie_info", miNote).
			rel("mk", "movie_keyword").
			rel("t", "title", tYear).
			on("t.id = at.movie_id",
				"t.id = mc.movie_id",
				"cn.id = mc.company_id",
				"ct.id = mc.company_type_id",
				"t.id = mi.movie_id",
				"it1.id = mi.info_type_id",
				"t.id = mk.movie_id",
				"k.id = mk.keyword_id",
				"mc.movie_id = mi.movie_id",
				"mi.movie_id = mk.movie_id",
				"at.movie_id = mi.movie_id").
			build()
	}
	return []*query.Query{
		mk("15a", "[us]", like("note", "%(worldwide)%"), like("note", "%(premiere)%"), gtI("production_year", 2000)),
		mk("15b", "[us]", like("note", "%(worldwide)%"), like("note", "%(premiere)%"), gtI("production_year", 2010)),
		mk("15c", "[us]", nn("note"), like("info", "USA:%"), gtI("production_year", 1990)),
		mk("15d", "[us]", nn("note"), like("info", "USA:%"), gtI("production_year", 1950)),
	}
}

// --- family 16: episodes with character names in title (8 rels, 10 joins) --

func family16() []*query.Query {
	mk := func(id, code string, eps *query.Pred) *query.Query {
		b := newQ(id).
			rel("an", "aka_name").
			rel("ci", "cast_info").
			rel("cn", "company_name", eqS("country_code", code)).
			rel("k", "keyword", eqS("keyword", "character-name-in-title")).
			rel("mc", "movie_companies").
			rel("mk", "movie_keyword").
			rel("n", "name").
			rel("t", "title")
		if eps != nil {
			b.q.Rels[7].Preds = append(b.q.Rels[7].Preds, eps)
		}
		return b.on(
			"an.person_id = n.id",
			"n.id = ci.person_id",
			"ci.movie_id = t.id",
			"t.id = mk.movie_id",
			"mk.keyword_id = k.id",
			"t.id = mc.movie_id",
			"mc.company_id = cn.id",
			"ci.movie_id = mc.movie_id",
			"ci.movie_id = mk.movie_id",
			"mc.movie_id = mk.movie_id").build()
	}
	return []*query.Query{
		mk("16a", "[us]", btw("episode_nr", 5, 100)),
		mk("16b", "[us]", nil),
		mk("16c", "[us]", ltI("episode_nr", 10)),
		mk("16d", "[us]", geI("episode_nr", 5)),
	}
}

// --- family 17: actors by initial in US character-name movies (7 rels,
// 9 joins) --------------------------------------------------------------------

func family17() []*query.Query {
	mk := func(id string, nName *query.Pred, code *query.Pred) *query.Query {
		cn := []*query.Pred{}
		if code != nil {
			cn = append(cn, code)
		}
		return newQ(id).
			rel("ci", "cast_info").
			rel("cn", "company_name", cn...).
			rel("k", "keyword", eqS("keyword", "character-name-in-title")).
			rel("mc", "movie_companies").
			rel("mk", "movie_keyword").
			rel("n", "name", nName).
			rel("t", "title").
			on("n.id = ci.person_id",
				"ci.movie_id = t.id",
				"t.id = mk.movie_id",
				"mk.keyword_id = k.id",
				"t.id = mc.movie_id",
				"mc.company_id = cn.id",
				"ci.movie_id = mc.movie_id",
				"ci.movie_id = mk.movie_id",
				"mc.movie_id = mk.movie_id").
			build()
	}
	return []*query.Query{
		mk("17a", like("name", "B%"), eqS("country_code", "[us]")),
		mk("17b", like("name", "Z%"), nil),
		mk("17c", like("name", "X%"), nil),
		mk("17d", like("name", "%Bert%"), nil),
		mk("17e", nn("name"), eqS("country_code", "[us]")),
		mk("17f", like("name", "%B%"), nil),
	}
}

// --- family 18: budgets and votes of male-cast movies (7 rels, 9 joins) ----

func family18() []*query.Query {
	mk := func(id string, ciNote *query.Pred, nPred []*query.Pred) *query.Query {
		return newQ(id).
			rel("ci", "cast_info", ciNote).
			rel("it1", "info_type", eqS("info", "budget")).
			rel("it2", "info_type", eqS("info", "votes")).
			rel("mi", "movie_info").
			rel("mi_idx", "movie_info_idx").
			rel("n", "name", nPred...).
			rel("t", "title").
			on("t.id = mi.movie_id",
				"t.id = mi_idx.movie_id",
				"t.id = ci.movie_id",
				"ci.movie_id = mi.movie_id",
				"ci.movie_id = mi_idx.movie_id",
				"mi.movie_id = mi_idx.movie_id",
				"n.id = ci.person_id",
				"it1.id = mi.info_type_id",
				"it2.id = mi_idx.info_type_id").
			build()
	}
	return []*query.Query{
		mk("18a", inS("note", "(credit only)", "(uncredited)"), []*query.Pred{eqS("gender", "m"), like("name", "%Tim%")}),
		mk("18b", eqS("note", "(uncredited)"), []*query.Pred{eqS("gender", "m")}),
		mk("18c", nn("note"), []*query.Pred{eqS("gender", "m")}),
	}
}

// --- family 19: US voice actresses in dated releases (10 rels, 12 joins) ---

func family19() []*query.Query {
	mk := func(id string, ciNote *query.Pred, miLike *query.Pred, nName *query.Pred, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("an", "aka_name").
			rel("chn", "char_name").
			rel("ci", "cast_info", ciNote).
			rel("cn", "company_name", eqS("country_code", "[us]")).
			rel("it", "info_type", eqS("info", "release dates")).
			rel("mc", "movie_companies").
			rel("mi", "movie_info", miLike).
			rel("n", "name", eqS("gender", "f"), nName).
			rel("rt", "role_type", eqS("role", "actress")).
			rel("t", "title", tYear).
			on("t.id = mi.movie_id",
				"it.id = mi.info_type_id",
				"t.id = mc.movie_id",
				"cn.id = mc.company_id",
				"t.id = ci.movie_id",
				"n.id = ci.person_id",
				"rt.id = ci.role_id",
				"chn.id = ci.person_role_id",
				"an.person_id = n.id",
				"ci.movie_id = mc.movie_id",
				"ci.movie_id = mi.movie_id",
				"mc.movie_id = mi.movie_id").
			build()
	}
	return []*query.Query{
		mk("19a", eqS("note", "(voice)"), like("info", "Japan:%"), like("name", "%Ang%"), btw("production_year", 2005, 2009)),
		mk("19b", eqS("note", "(voice)"), like("info", "USA:%"), like("name", "%Ang%"), eqI("production_year", 2007)),
		mk("19c", inS("note", "(voice)", "(voice) (uncredited)", "(singing voice)"), like("info", "USA:%"), like("name", "%An%"), gtI("production_year", 2000)),
		mk("19d", inS("note", "(voice)", "(voice) (uncredited)", "(singing voice)"), nn("info"), nn("name"), gtI("production_year", 1990)),
	}
}

// --- family 20: complete-cast superhero movies (10 rels, 12 joins) ----------

func family20() []*query.Query {
	mk := func(id string, cct2Kind *query.Pred, kwIn []string, chnName *query.Pred, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("cct1", "comp_cast_type", eqS("kind", "cast")).
			rel("cct2", "comp_cast_type", cct2Kind).
			rel("chn", "char_name", chnName).
			rel("ci", "cast_info").
			rel("cc", "complete_cast").
			rel("k", "keyword", inS("keyword", kwIn...)).
			rel("kt", "kind_type", eqS("kind", "movie")).
			rel("mk", "movie_keyword").
			rel("n", "name").
			rel("t", "title", tYear).
			on("t.id = mk.movie_id",
				"mk.keyword_id = k.id",
				"t.id = ci.movie_id",
				"ci.person_role_id = chn.id",
				"n.id = ci.person_id",
				"kt.id = t.kind_id",
				"cc.movie_id = t.id",
				"cc.subject_id = cct1.id",
				"cc.status_id = cct2.id",
				"ci.movie_id = mk.movie_id",
				"ci.movie_id = cc.movie_id",
				"mk.movie_id = cc.movie_id").
			build()
	}
	hero := []string{"superhero", "fight", "violence", "hero", "based-on-comic"}
	return []*query.Query{
		mk("20a", like("kind", "%complete%"), hero, nlike("name", "%Anna%"), gtI("production_year", 1950)),
		mk("20b", like("kind", "%complete%"), hero, like("name", "%Viktor%"), gtI("production_year", 2000)),
		mk("20c", eqS("kind", "complete+verified"), hero, nn("name"), gtI("production_year", 1990)),
	}
}

// --- family 21: European sequel co-productions (9 rels, 10 joins) -----------

func family21() []*query.Query {
	mk := func(id string, cnName *query.Pred, miIn []string, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("cn", "company_name", neS("country_code", "[pl]"), cnName).
			rel("ct", "company_type", eqS("kind", "production companies")).
			rel("k", "keyword", eqS("keyword", "sequel")).
			rel("lt", "link_type", like("link", "%follow%")).
			rel("mc", "movie_companies", null("note")).
			rel("mi", "movie_info", inS("info", miIn...)).
			rel("mk", "movie_keyword").
			rel("ml", "movie_link").
			rel("t", "title", tYear).
			on("t.id = mc.movie_id",
				"cn.id = mc.company_id",
				"ct.id = mc.company_type_id",
				"t.id = mk.movie_id",
				"k.id = mk.keyword_id",
				"t.id = mi.movie_id",
				"t.id = ml.movie_id",
				"lt.id = ml.link_type_id",
				"mc.movie_id = mi.movie_id",
				"mi.movie_id = mk.movie_id").
			build()
	}
	return []*query.Query{
		mk("21a", like("name", "%Film%"), europeanCountries, btw("production_year", 1950, 2000)),
		mk("21b", like("name", "%Film%"), []string{"Germany", "German"}, btw("production_year", 2000, 2010)),
		mk("21c", like("name", "%Film%"), append([]string{"USA"}, europeanCountries...), btw("production_year", 1950, 2013)),
	}
}

// --- family 22: violent western-world movies (11 rels, 13 joins) -----------

func family22() []*query.Query {
	mk := func(id string, kwIn []string, mcNote *query.Pred, rating int64, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("cn", "company_name", neS("country_code", "[us]")).
			rel("ct", "company_type").
			rel("it1", "info_type", eqS("info", "countries")).
			rel("it2", "info_type", eqS("info", "rating")).
			rel("k", "keyword", inS("keyword", kwIn...)).
			rel("kt", "kind_type", inS("kind", "movie", "episode")).
			rel("mc", "movie_companies", mcNote).
			rel("mi", "movie_info", inS("info", append([]string{"Germany", "USA"}, europeanCountries...)...)).
			rel("mi_idx", "movie_info_idx", ltI("info_num", rating)).
			rel("mk", "movie_keyword").
			rel("t", "title", tYear).
			on("kt.id = t.kind_id",
				"t.id = mi.movie_id",
				"it1.id = mi.info_type_id",
				"t.id = mi_idx.movie_id",
				"it2.id = mi_idx.info_type_id",
				"t.id = mk.movie_id",
				"k.id = mk.keyword_id",
				"t.id = mc.movie_id",
				"cn.id = mc.company_id",
				"ct.id = mc.company_type_id",
				"mi.movie_id = mi_idx.movie_id",
				"mk.movie_id = mi.movie_id",
				"mc.movie_id = mi.movie_id").
			build()
	}
	violent := []string{"murder", "blood", "gore", "violence"}
	return []*query.Query{
		mk("22a", violent, nlike("note", "%(USA)%"), 70, gtI("production_year", 2008)),
		mk("22b", violent, nlike("note", "%(USA)%"), 70, gtI("production_year", 2009)),
		mk("22c", append(violent, "fight", "revenge"), nn("note"), 85, gtI("production_year", 2005)),
		mk("22d", append(violent, "fight", "revenge"), nn("note"), 95, gtI("production_year", 1990)),
	}
}

// --- family 23: verified complete casts of US releases (11 rels, 12 joins) --

func family23() []*query.Query {
	mk := func(id string, cctKind string, ktKind *query.Pred, miNote *query.Pred, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("cct1", "comp_cast_type", eqS("kind", cctKind)).
			rel("cn", "company_name", eqS("country_code", "[us]")).
			rel("ct", "company_type").
			rel("it1", "info_type", eqS("info", "release dates")).
			rel("k", "keyword").
			rel("kt", "kind_type", ktKind).
			rel("mc", "movie_companies").
			rel("mi", "movie_info", miNote).
			rel("mk", "movie_keyword").
			rel("t", "title", tYear).
			rel("cc", "complete_cast").
			on("kt.id = t.kind_id",
				"t.id = mi.movie_id",
				"it1.id = mi.info_type_id",
				"t.id = mk.movie_id",
				"k.id = mk.keyword_id",
				"t.id = mc.movie_id",
				"cn.id = mc.company_id",
				"ct.id = mc.company_type_id",
				"cc.movie_id = t.id",
				"cct1.id = cc.status_id",
				"mi.movie_id = mk.movie_id",
				"mi.movie_id = mc.movie_id").
			build()
	}
	return []*query.Query{
		mk("23a", "complete+verified", eqS("kind", "movie"), like("note", "%(premiere)%"), gtI("production_year", 2000)),
		mk("23b", "complete", eqS("kind", "movie"), like("note", "%(premiere)%"), gtI("production_year", 2000)),
		mk("23c", "complete+verified", inS("kind", "movie", "tv movie", "video movie"), nn("note"), gtI("production_year", 1990)),
	}
}

// --- family 24: martial-arts voice actresses (12 rels, 14 joins) ------------

func family24() []*query.Query {
	mk := func(id string, kwIn []string, nName *query.Pred, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("an", "aka_name").
			rel("chn", "char_name").
			rel("ci", "cast_info", inS("note", "(voice)", "(voice) (uncredited)", "(singing voice)")).
			rel("cn", "company_name", eqS("country_code", "[us]")).
			rel("it", "info_type", eqS("info", "release dates")).
			rel("k", "keyword", inS("keyword", kwIn...)).
			rel("mc", "movie_companies").
			rel("mi", "movie_info", like("info", "USA:%")).
			rel("mk", "movie_keyword").
			rel("n", "name", eqS("gender", "f"), nName).
			rel("rt", "role_type", eqS("role", "actress")).
			rel("t", "title", tYear).
			on("t.id = mi.movie_id",
				"it.id = mi.info_type_id",
				"t.id = mk.movie_id",
				"k.id = mk.keyword_id",
				"t.id = mc.movie_id",
				"cn.id = mc.company_id",
				"t.id = ci.movie_id",
				"n.id = ci.person_id",
				"rt.id = ci.role_id",
				"chn.id = ci.person_role_id",
				"an.person_id = n.id",
				"ci.movie_id = mc.movie_id",
				"ci.movie_id = mi.movie_id",
				"ci.movie_id = mk.movie_id").
			build()
	}
	return []*query.Query{
		mk("24a", []string{"hero", "martial-arts", "fight"}, like("name", "%An%"), gtI("production_year", 2010)),
		mk("24b", []string{"hero", "martial-arts", "fight", "kung-fu-master"}, nn("name"), gtI("production_year", 1990)),
	}
}

// --- family 25: male cast of gory horror movies (9 rels, 12 joins) ----------

func family25() []*query.Query {
	mk := func(id string, kwIn []string, miVal []string) *query.Query {
		return newQ(id).
			rel("ci", "cast_info").
			rel("it1", "info_type", eqS("info", "genres")).
			rel("it2", "info_type", eqS("info", "votes")).
			rel("k", "keyword", inS("keyword", kwIn...)).
			rel("mi", "movie_info", inS("info", miVal...)).
			rel("mi_idx", "movie_info_idx").
			rel("mk", "movie_keyword").
			rel("n", "name", eqS("gender", "m")).
			rel("t", "title").
			on("t.id = mi.movie_id",
				"it1.id = mi.info_type_id",
				"t.id = mi_idx.movie_id",
				"it2.id = mi_idx.info_type_id",
				"t.id = ci.movie_id",
				"n.id = ci.person_id",
				"t.id = mk.movie_id",
				"k.id = mk.keyword_id",
				"ci.movie_id = mi.movie_id",
				"ci.movie_id = mi_idx.movie_id",
				"ci.movie_id = mk.movie_id",
				"mi.movie_id = mi_idx.movie_id").
			build()
	}
	return []*query.Query{
		mk("25a", []string{"murder", "blood", "gore"}, []string{"Horror"}),
		mk("25b", []string{"murder", "blood", "gore", "violence"}, []string{"Horror", "Thriller"}),
		mk("25c", []string{"murder", "violence", "blood", "gore", "fight", "revenge"}, []string{"Horror", "Action", "Thriller", "Crime", "War"}),
	}
}

// --- family 26: complete-cast superhero ratings (11 rels, 13 joins) ---------

func family26() []*query.Query {
	mk := func(id string, kwIn []string, rating int64, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("cct1", "comp_cast_type", eqS("kind", "cast")).
			rel("chn", "char_name").
			rel("ci", "cast_info").
			rel("cc", "complete_cast").
			rel("it2", "info_type", eqS("info", "rating")).
			rel("k", "keyword", inS("keyword", kwIn...)).
			rel("kt", "kind_type", eqS("kind", "movie")).
			rel("mi_idx", "movie_info_idx", gtI("info_num", rating)).
			rel("mk", "movie_keyword").
			rel("n", "name").
			rel("t", "title", tYear).
			on("t.id = mk.movie_id",
				"k.id = mk.keyword_id",
				"t.id = ci.movie_id",
				"chn.id = ci.person_role_id",
				"n.id = ci.person_id",
				"kt.id = t.kind_id",
				"cc.movie_id = t.id",
				"cct1.id = cc.subject_id",
				"t.id = mi_idx.movie_id",
				"it2.id = mi_idx.info_type_id",
				"ci.movie_id = mk.movie_id",
				"ci.movie_id = mi_idx.movie_id",
				"mk.movie_id = mi_idx.movie_id").
			build()
	}
	hero := []string{"superhero", "fight", "based-on-comic", "hero"}
	return []*query.Query{
		mk("26a", hero, 70, gtI("production_year", 2000)),
		mk("26b", hero, 80, gtI("production_year", 2005)),
		mk("26c", append(hero, "violence", "magnet", "web"), 20, gtI("production_year", 1990)),
	}
}

// --- family 27: complete-cast sequel co-productions (12 rels, 14 joins) -----

func family27() []*query.Query {
	mk := func(id string, cct2Kind *query.Pred, miIn []string, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("cct1", "comp_cast_type", eqS("kind", "cast")).
			rel("cct2", "comp_cast_type", cct2Kind).
			rel("cc", "complete_cast").
			rel("cn", "company_name", neS("country_code", "[pl]"), like("name", "%Film%")).
			rel("ct", "company_type", eqS("kind", "production companies")).
			rel("k", "keyword", eqS("keyword", "sequel")).
			rel("lt", "link_type", like("link", "%follow%")).
			rel("mc", "movie_companies", null("note")).
			rel("mi", "movie_info", inS("info", miIn...)).
			rel("mk", "movie_keyword").
			rel("ml", "movie_link").
			rel("t", "title", tYear).
			on("t.id = mc.movie_id",
				"cn.id = mc.company_id",
				"ct.id = mc.company_type_id",
				"t.id = mk.movie_id",
				"k.id = mk.keyword_id",
				"t.id = mi.movie_id",
				"t.id = ml.movie_id",
				"lt.id = ml.link_type_id",
				"cc.movie_id = t.id",
				"cct1.id = cc.subject_id",
				"cct2.id = cc.status_id",
				"mc.movie_id = mi.movie_id",
				"mi.movie_id = mk.movie_id",
				"ml.movie_id = mk.movie_id").
			build()
	}
	return []*query.Query{
		mk("27a", like("kind", "%complete%"), europeanCountries, btw("production_year", 1950, 2000)),
		mk("27b", eqS("kind", "complete"), []string{"Germany", "Sweden"}, btw("production_year", 1950, 2010)),
		mk("27c", like("kind", "complete%"), append([]string{"USA"}, europeanCountries...), btw("production_year", 1950, 2013)),
	}
}

// --- family 28: the 16-join family (14 rels) ---------------------------------

func family28() []*query.Query {
	mk := func(id string, cct2Kind *query.Pred, kwIn []string, rating int64, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("cct1", "comp_cast_type", eqS("kind", "crew")).
			rel("cct2", "comp_cast_type", cct2Kind).
			rel("cc", "complete_cast").
			rel("cn", "company_name", neS("country_code", "[us]")).
			rel("ct", "company_type").
			rel("it1", "info_type", eqS("info", "countries")).
			rel("it2", "info_type", eqS("info", "rating")).
			rel("k", "keyword", inS("keyword", kwIn...)).
			rel("kt", "kind_type", inS("kind", "movie", "episode")).
			rel("mc", "movie_companies", nlike("note", "%(USA)%")).
			rel("mi", "movie_info", inS("info", append([]string{"Germany", "USA"}, europeanCountries...)...)).
			rel("mi_idx", "movie_info_idx", ltI("info_num", rating)).
			rel("mk", "movie_keyword").
			rel("t", "title", tYear).
			on("kt.id = t.kind_id",
				"mi.movie_id = t.id",
				"it1.id = mi.info_type_id",
				"mi_idx.movie_id = t.id",
				"it2.id = mi_idx.info_type_id",
				"mk.movie_id = t.id",
				"k.id = mk.keyword_id",
				"mc.movie_id = t.id",
				"cn.id = mc.company_id",
				"ct.id = mc.company_type_id",
				"cc.movie_id = t.id",
				"cct1.id = cc.subject_id",
				"cct2.id = cc.status_id",
				"mi.movie_id = mi_idx.movie_id",
				"mi.movie_id = mk.movie_id",
				"mc.movie_id = mi_idx.movie_id").
			build()
	}
	violent := []string{"murder", "violence", "blood"}
	return []*query.Query{
		mk("28a", neS("kind", "complete+verified"), violent, 85, gtI("production_year", 2000)),
		mk("28b", like("kind", "%complete%"), violent, 70, gtI("production_year", 2005)),
		mk("28c", eqS("kind", "complete"), append(violent, "gore", "fight"), 95, gtI("production_year", 1990)),
	}
}

// --- family 29: the 17-relation, 16-join flagship ---------------------------

func family29() []*query.Query {
	mk := func(id string, chnName *query.Pred, tTitle *query.Pred, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("an", "aka_name").
			rel("cct1", "comp_cast_type", eqS("kind", "cast")).
			rel("cct2", "comp_cast_type", eqS("kind", "complete+verified")).
			rel("cc", "complete_cast").
			rel("chn", "char_name", chnName).
			rel("ci", "cast_info", eqS("note", "(voice)")).
			rel("cn", "company_name", eqS("country_code", "[us]")).
			rel("it", "info_type", eqS("info", "release dates")).
			rel("it3", "info_type", eqS("info", "mini biography")).
			rel("k", "keyword", eqS("keyword", "superhero")).
			rel("mc", "movie_companies").
			rel("mi", "movie_info", like("info", "USA:%")).
			rel("mk", "movie_keyword").
			rel("n", "name", eqS("gender", "f")).
			rel("pi", "person_info", eqS("note", "Volker Boehm")).
			rel("rt", "role_type", eqS("role", "actress")).
			rel("t", "title", tTitle, tYear).
			on("t.id = mi.movie_id",
				"it.id = mi.info_type_id",
				"t.id = mk.movie_id",
				"k.id = mk.keyword_id",
				"t.id = mc.movie_id",
				"cn.id = mc.company_id",
				"t.id = ci.movie_id",
				"n.id = ci.person_id",
				"rt.id = ci.role_id",
				"chn.id = ci.person_role_id",
				"cc.movie_id = t.id",
				"cct1.id = cc.subject_id",
				"cct2.id = cc.status_id",
				"an.person_id = n.id",
				"pi.person_id = n.id",
				"it3.id = pi.info_type_id").
			build()
	}
	return []*query.Query{
		mk("29a", like("name", "%Anna%"), like("title", "%Champion%"), btw("production_year", 2000, 2010)),
		mk("29b", like("name", "%Anna%"), like("title", "%Champion%"), gtI("production_year", 2005)),
		mk("29c", nn("name"), nn("title"), gtI("production_year", 1990)),
	}
}

// --- family 30: complete-cast horror votes (12 rels, 14 joins) --------------

func family30() []*query.Query {
	mk := func(id string, ciNote *query.Pred, kwIn []string, tYear *query.Pred) *query.Query {
		return newQ(id).
			rel("cct1", "comp_cast_type", eqS("kind", "cast")).
			rel("cct2", "comp_cast_type", eqS("kind", "complete+verified")).
			rel("cc", "complete_cast").
			rel("ci", "cast_info", ciNote).
			rel("it1", "info_type", eqS("info", "genres")).
			rel("it2", "info_type", eqS("info", "votes")).
			rel("k", "keyword", inS("keyword", kwIn...)).
			rel("mi", "movie_info", inS("info", "Horror", "Thriller")).
			rel("mi_idx", "movie_info_idx").
			rel("mk", "movie_keyword").
			rel("n", "name", eqS("gender", "m")).
			rel("t", "title", tYear).
			on("t.id = mi.movie_id",
				"it1.id = mi.info_type_id",
				"t.id = mi_idx.movie_id",
				"it2.id = mi_idx.info_type_id",
				"t.id = ci.movie_id",
				"n.id = ci.person_id",
				"t.id = mk.movie_id",
				"k.id = mk.keyword_id",
				"cc.movie_id = t.id",
				"cct1.id = cc.subject_id",
				"cct2.id = cc.status_id",
				"ci.movie_id = cc.movie_id",
				"mi.movie_id = mk.movie_id",
				"mi.movie_id = mi_idx.movie_id").
			build()
	}
	violent := []string{"murder", "violence", "blood", "gore"}
	return []*query.Query{
		mk("30a", inS("note", "(uncredited)", "(credit only)"), violent, gtI("production_year", 2000)),
		mk("30b", nn("note"), violent, gtI("production_year", 2000)),
		mk("30c", nn("note"), append(violent, "fight", "revenge"), gtI("production_year", 1990)),
	}
}

// --- family 31: studio horror votes (11 rels, 13 joins) ---------------------

func family31() []*query.Query {
	mk := func(id string, cnName *query.Pred, kwIn []string, miIn []string) *query.Query {
		return newQ(id).
			rel("ci", "cast_info").
			rel("cn", "company_name", cnName).
			rel("it1", "info_type", eqS("info", "genres")).
			rel("it2", "info_type", eqS("info", "votes")).
			rel("k", "keyword", inS("keyword", kwIn...)).
			rel("mc", "movie_companies").
			rel("mi", "movie_info", inS("info", miIn...)).
			rel("mi_idx", "movie_info_idx").
			rel("mk", "movie_keyword").
			rel("n", "name", eqS("gender", "m")).
			rel("t", "title").
			on("t.id = mi.movie_id",
				"it1.id = mi.info_type_id",
				"t.id = mi_idx.movie_id",
				"it2.id = mi_idx.info_type_id",
				"t.id = ci.movie_id",
				"n.id = ci.person_id",
				"t.id = mk.movie_id",
				"k.id = mk.keyword_id",
				"t.id = mc.movie_id",
				"cn.id = mc.company_id",
				"ci.movie_id = mi.movie_id",
				"mi.movie_id = mi_idx.movie_id",
				"mc.movie_id = mi.movie_id").
			build()
	}
	violent := []string{"murder", "violence", "blood", "gore"}
	return []*query.Query{
		mk("31a", like("name", "Lion%"), violent, []string{"Horror"}),
		mk("31b", like("name", "Lion%"), violent, []string{"Horror", "Thriller", "Crime"}),
		mk("31c", nn("name"), append(violent, "fight"), []string{"Horror", "Action", "Thriller", "Crime"}),
	}
}

// --- family 32: linked keyword movies (6 rels, 5 joins) ---------------------

func family32() []*query.Query {
	mk := func(id, kw string) *query.Query {
		return newQ(id).
			rel("k", "keyword", eqS("keyword", kw)).
			rel("lt", "link_type").
			rel("mk", "movie_keyword").
			rel("ml", "movie_link").
			rel("t1", "title").
			rel("t2", "title").
			on("mk.keyword_id = k.id",
				"t1.id = mk.movie_id",
				"ml.movie_id = t1.id",
				"ml.linked_movie_id = t2.id",
				"lt.id = ml.link_type_id").
			build()
	}
	return []*query.Query{mk("32a", "second-part"), mk("32b", "character-name-in-title")}
}

// --- family 33: linked tv-series self-join (14 rels, 13 joins) --------------

func family33() []*query.Query {
	mk := func(id string, ltIn []string, rating int64, t2Year *query.Pred) *query.Query {
		return newQ(id).
			rel("cn1", "company_name", neS("country_code", "[us]")).
			rel("cn2", "company_name").
			rel("it1", "info_type", eqS("info", "rating")).
			rel("it2", "info_type", eqS("info", "rating")).
			rel("kt1", "kind_type", eqS("kind", "tv series")).
			rel("kt2", "kind_type", eqS("kind", "tv series")).
			rel("lt", "link_type", inS("link", ltIn...)).
			rel("mc1", "movie_companies").
			rel("mc2", "movie_companies").
			rel("mi_idx1", "movie_info_idx").
			rel("mi_idx2", "movie_info_idx", ltI("info_num", rating)).
			rel("ml", "movie_link").
			rel("t1", "title").
			rel("t2", "title", t2Year).
			on("lt.id = ml.link_type_id",
				"t1.id = ml.movie_id",
				"t2.id = ml.linked_movie_id",
				"it1.id = mi_idx1.info_type_id",
				"t1.id = mi_idx1.movie_id",
				"kt1.id = t1.kind_id",
				"cn1.id = mc1.company_id",
				"t1.id = mc1.movie_id",
				"it2.id = mi_idx2.info_type_id",
				"t2.id = mi_idx2.movie_id",
				"kt2.id = t2.kind_id",
				"cn2.id = mc2.company_id",
				"t2.id = mc2.movie_id").
			build()
	}
	return []*query.Query{
		mk("33a", []string{"follows", "followed by"}, 35, eqI("production_year", 2005)),
		mk("33b", []string{"follows", "followed by"}, 35, eqI("production_year", 2007)),
		mk("33c", []string{"follows", "followed by", "remake of", "remade as"}, 85, btw("production_year", 2000, 2010)),
	}
}
