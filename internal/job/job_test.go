package job

import (
	"testing"

	"jobench/internal/imdb"
	"jobench/internal/query"
)

func TestWorkloadShape(t *testing.T) {
	qs := Workload()
	if len(qs) != 113 {
		t.Fatalf("workload has %d queries, want 113 (like JOB)", len(qs))
	}
	families := make(map[string]int)
	ids := make(map[string]bool)
	totalJoins, minJoins, maxJoins := 0, 1<<30, 0
	for _, q := range qs {
		if ids[q.ID] {
			t.Fatalf("duplicate query id %s", q.ID)
		}
		ids[q.ID] = true
		families[FamilyOf(q.ID)]++
		nj := q.NumJoins()
		totalJoins += nj
		if nj < minJoins {
			minJoins = nj
		}
		if nj > maxJoins {
			maxJoins = nj
		}
	}
	if len(families) != 33 {
		t.Fatalf("%d families, want 33", len(families))
	}
	for fam, n := range families {
		if n < 2 || n > 6 {
			t.Errorf("family %s has %d variants, want 2-6", fam, n)
		}
	}
	avg := float64(totalJoins) / float64(len(qs))
	if avg < 7 || avg > 11 {
		t.Errorf("average join count = %.1f, want ~8-10 (paper: 8)", avg)
	}
	if minJoins < 3 || minJoins > 5 {
		t.Errorf("min joins = %d, want small (paper: 3)", minJoins)
	}
	if maxJoins < 14 || maxJoins > 17 {
		t.Errorf("max joins = %d, want ~16 (paper: 16)", maxJoins)
	}
}

func TestWorkloadValidatesAgainstSchema(t *testing.T) {
	db := imdb.Generate(imdb.Config{Scale: 0.05, Seed: 1})
	for _, q := range Workload() {
		if err := q.Validate(db); err != nil {
			t.Errorf("query %s invalid: %v", q.ID, err)
		}
	}
}

func TestVariantsShareStructure(t *testing.T) {
	// All variants of a family must have the same relations and joins;
	// only selections may differ (paper §2.2).
	byFam := make(map[string][]*query.Query)
	for _, q := range Workload() {
		fam := FamilyOf(q.ID)
		byFam[fam] = append(byFam[fam], q)
	}
	for fam, qs := range byFam {
		first := qs[0]
		for _, q := range qs[1:] {
			if len(q.Rels) != len(first.Rels) {
				t.Errorf("family %s: variant %s has %d rels, %s has %d",
					fam, q.ID, len(q.Rels), first.ID, len(first.Rels))
				continue
			}
			for i := range q.Rels {
				if q.Rels[i].Alias != first.Rels[i].Alias || q.Rels[i].Table != first.Rels[i].Table {
					t.Errorf("family %s: relation %d differs between %s and %s", fam, i, first.ID, q.ID)
				}
			}
			if len(q.Joins) != len(first.Joins) {
				t.Errorf("family %s: %s has %d joins, %s has %d", fam, q.ID, len(q.Joins), first.ID, len(first.Joins))
			}
		}
	}
}

func TestByID(t *testing.T) {
	q := ByID("13d")
	if q == nil {
		t.Fatal("13d not found")
	}
	// 13d is the paper's running example: 9 relations, 11 join predicates.
	if len(q.Rels) != 9 {
		t.Fatalf("13d has %d relations, want 9", len(q.Rels))
	}
	if q.NumJoins() != 11 {
		t.Fatalf("13d has %d join predicates, want 11", q.NumJoins())
	}
	if ByID("nonexistent") != nil {
		t.Fatal("found nonexistent query")
	}
}

func TestSearchSpaceSizes(t *testing.T) {
	// Every query's join graph must be enumerable: connected subset counts
	// stay in a range that DP and true-cardinality computation can handle.
	for _, q := range Workload() {
		g := query.MustBuildGraph(q)
		n := g.CountConnectedSubsets()
		if n < len(q.Rels) {
			t.Errorf("%s: %d connected subsets < %d relations", q.ID, n, len(q.Rels))
		}
		if n > 60000 {
			t.Errorf("%s: %d connected subsets, too many for the DP", q.ID, n)
		}
	}
}

func TestQueriesReturnResultsAtScale(t *testing.T) {
	// Queries should not be trivially empty on the synthetic data: base
	// predicates must match rows. (Join results may still be empty for a
	// few highly selective variants, which is realistic; base selections
	// that match nothing would indicate a vocabulary mismatch.)
	db := imdb.Generate(imdb.Config{Scale: 0.2, Seed: 42})
	empties := 0
	checked := 0
	for _, q := range Workload() {
		for _, r := range q.Rels {
			if len(r.Preds) == 0 {
				continue
			}
			tbl := db.MustTable(r.Table)
			f, err := query.CompileAll(r.Preds, tbl)
			if err != nil {
				t.Fatalf("%s: %v", q.ID, err)
			}
			n := 0
			for i := 0; i < tbl.NumRows(); i++ {
				if f(i) {
					n++
				}
			}
			checked++
			if n == 0 {
				empties++
				t.Logf("%s: selection on %s (%s) matches 0 rows", q.ID, r.Alias, r.Table)
			}
		}
	}
	if checked < 250 {
		t.Errorf("only %d base selections in workload, want at least 250", checked)
	}
	if float64(empties) > 0.1*float64(checked) {
		t.Errorf("%d/%d base selections empty; vocabulary mismatch with generator", empties, checked)
	}
}

func TestWorkloadSQLRoundTrip(t *testing.T) {
	// Every JOB query must survive rendering to SQL and parsing back: the
	// workload is fully expressible in the text dialect users write.
	for _, q := range Workload() {
		parsed, err := query.ParseSQL(q.ID, q.SQL())
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", q.ID, err, q.SQL())
		}
		if len(parsed.Rels) != len(q.Rels) || len(parsed.Joins) != len(q.Joins) {
			t.Fatalf("%s: shape mismatch after round trip", q.ID)
		}
		for i := range q.Rels {
			if parsed.Rels[i].Alias != q.Rels[i].Alias || parsed.Rels[i].Table != q.Rels[i].Table {
				t.Fatalf("%s: relation %d mismatch", q.ID, i)
			}
			if len(parsed.Rels[i].Preds) != len(q.Rels[i].Preds) {
				t.Fatalf("%s: rel %s has %d preds after parse, want %d",
					q.ID, q.Rels[i].Alias, len(parsed.Rels[i].Preds), len(q.Rels[i].Preds))
			}
			for k := range q.Rels[i].Preds {
				if parsed.Rels[i].Preds[k].String() != q.Rels[i].Preds[k].String() {
					t.Fatalf("%s: pred mismatch: %s vs %s",
						q.ID, parsed.Rels[i].Preds[k], q.Rels[i].Preds[k])
				}
			}
		}
		for i := range q.Joins {
			if parsed.Joins[i] != q.Joins[i] {
				t.Fatalf("%s: join %d mismatch", q.ID, i)
			}
		}
	}
}
