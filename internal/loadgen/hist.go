package loadgen

import (
	"math/bits"
	"time"
)

// Histogram is an HDR-style log-linear latency histogram: bucket widths
// double every 2^subBits buckets, so relative quantization error is
// bounded at 1/2^subBits (6.25%) across the whole range while the bucket
// array stays tiny. Values are recorded in microseconds; anything from
// 1µs to ~73000s lands in a distinct bucket without allocation.
//
// Record is not safe for concurrent use — each load worker owns one
// histogram and the results are combined with Merge, which avoids a
// shared-counter hot spot entirely.
type Histogram struct {
	counts [numBuckets]int64
	total  int64
	sum    int64 // of recorded microsecond values, for Mean
	max    int64
}

// subBits fixes the sub-bucket resolution: 2^subBits buckets per octave,
// giving a worst-case relative error of 1/2^subBits = 6.25% per recorded
// value.
const subBits = 4

const subCount = 1 << subBits // 16

// numBuckets covers every value below 2^47 µs (~4.5 years); larger values
// clamp into the last bucket.
const numBuckets = (46 - subBits + 1) * subCount

// bucketIndex maps a non-negative microsecond value to its bucket. Values
// 0..15 get exact width-1 buckets; beyond that, each octave [2^k, 2^(k+1))
// splits into 16 equal sub-buckets.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subCount {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= subBits
	idx := (k-subBits+1)*subCount + int((v>>(k-subBits))&(subCount-1))
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketUpper returns the largest value mapping into bucket i — the value
// a quantile query reports, so the reported quantile never understates
// the true one by more than the bucket width.
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	k := i/subCount - 1 + subBits // octave
	sub := int64(i % subCount)
	base := int64(1) << k
	width := base / subCount
	return base + (sub+1)*width - 1
}

// Record adds one observed duration.
func (h *Histogram) Record(d time.Duration) {
	us := d.Microseconds()
	h.counts[bucketIndex(us)]++
	h.total++
	h.sum += us
	if us > h.max {
		h.max = us
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count reports the number of recorded values.
func (h *Histogram) Count() int64 { return h.total }

// Max reports the largest recorded value (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) * time.Microsecond }

// Mean reports the arithmetic mean of the recorded values (exact).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum/h.total) * time.Microsecond
}

// Quantile returns the smallest bucket upper bound v such that at least
// q*Count() recorded values are <= v. q is clamped to [0, 1]; a q of 0.5
// is the median, 0.999 the p999. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank as a count: ceil(q * total), at least 1.
	rank := int64(q*float64(h.total) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketUpper(i)
			// Never report past the true maximum: the top bucket's upper
			// bound can overshoot a sparse tail by its whole width.
			if v > h.max {
				v = h.max
			}
			return time.Duration(v) * time.Microsecond
		}
	}
	return time.Duration(h.max) * time.Microsecond
}
