package loadgen

import (
	"testing"
	"time"
)

// TestBucketBoundaries pins the log-linear bucketing: exact width-1
// buckets below 16µs, then 16 sub-buckets per octave. These constants are
// the histogram's contract — a change here silently re-buckets every
// recorded artifact.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64 // microseconds
		idx  int
		uppr int64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{15, 15, 15},
		{16, 16, 16}, // first octave bucket, still width 1
		{31, 31, 31},
		{32, 32, 33}, // width-2 buckets start
		{33, 32, 33},
		{34, 33, 35},
		{63, 47, 63},
		{64, 48, 67}, // width-4
		{100, 57, 103},
		{1000, 111, 1023},    // ~1ms
		{1024, 112, 1087},    // width-64 buckets start
		{10_000, 163, 10239}, // ~10ms
		{1_000_000, 270, 1015807},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.idx {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.idx)
		}
		if got := bucketUpper(c.idx); got != c.uppr {
			t.Errorf("bucketUpper(%d) = %d, want %d", c.idx, got, c.uppr)
		}
	}
	// Negative values clamp to bucket 0; absurd values clamp into the last
	// bucket instead of indexing out of range.
	if got := bucketIndex(-5); got != 0 {
		t.Errorf("bucketIndex(-5) = %d, want 0", got)
	}
	if got := bucketIndex(1 << 62); got != numBuckets-1 {
		t.Errorf("bucketIndex(1<<62) = %d, want %d", got, numBuckets-1)
	}
}

// TestBucketMonotone: every value maps into a bucket whose bounds contain
// it, and indices are monotone in the value.
func TestBucketMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1_000_000; v += 7 {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		if up := bucketUpper(i); v > up {
			t.Fatalf("value %d exceeds its bucket %d's upper bound %d", v, i, up)
		}
	}
}

// TestQuantileKnownInputs pins the percentile math against a distribution
// small enough to verify by hand: 100 values of 1ms, then 10 of 10ms,
// then 1 of 100ms.
func TestQuantileKnownInputs(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(10 * time.Millisecond)
	}
	h.Record(100 * time.Millisecond)

	if h.Count() != 111 {
		t.Fatalf("Count = %d, want 111", h.Count())
	}
	// 1ms lands in the bucket with upper bound 1023µs; 10ms in 10239µs.
	if got := h.Quantile(0.5); got != 1023*time.Microsecond {
		t.Errorf("p50 = %v, want 1.023ms", got)
	}
	// rank(0.90) = ceil(99.9) = 100 → still the 1ms bucket.
	if got := h.Quantile(0.90); got != 1023*time.Microsecond {
		t.Errorf("p90 = %v, want 1.023ms", got)
	}
	// rank(0.99) = ceil(109.89) = 110 → the 10ms bucket.
	if got := h.Quantile(0.99); got != 10239*time.Microsecond {
		t.Errorf("p99 = %v, want 10.239ms", got)
	}
	// rank(0.999) = ceil(110.889) = 111 → the max; clamped to the exact
	// max rather than the bucket bound.
	if got := h.Quantile(0.999); got != 100*time.Millisecond {
		t.Errorf("p999 = %v, want 100ms", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", got)
	}
	// Mean: (100*1000 + 10*10000 + 100000) / 111 = 2702.7 → 2.702ms.
	if got := h.Mean(); got != 2702*time.Microsecond {
		t.Errorf("Mean = %v, want 2.702ms", got)
	}
}

// TestQuantileRelativeError: for any single recorded value, every
// quantile reports within the bucketing's 6.25% relative error.
func TestQuantileRelativeError(t *testing.T) {
	for _, us := range []int64{1, 17, 999, 12345, 1_000_000, 87_654_321} {
		h := &Histogram{}
		h.Record(time.Duration(us) * time.Microsecond)
		got := h.Quantile(0.5).Microseconds()
		if got < us || float64(got) > float64(us)*1.0625+1 {
			t.Errorf("value %dµs: p50 = %dµs, outside [v, 1.0625v]", us, got)
		}
	}
}

// TestMerge: merging worker histograms is equivalent to recording
// everything into one.
func TestMerge(t *testing.T) {
	a, b, both := &Histogram{}, &Histogram{}, &Histogram{}
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i*i) * time.Microsecond
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		both.Record(d)
	}
	a.Merge(b)
	if a.Count() != both.Count() || a.Max() != both.Max() || a.Mean() != both.Mean() {
		t.Fatal("merged aggregates differ from single-histogram recording")
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("Quantile(%g): merged %v != direct %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}
