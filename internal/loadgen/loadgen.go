// Package loadgen replays mixed jobench traffic — optimize, execute,
// estimate, and experiment requests at configurable ratios — against a
// router or a single serve replica, from a fixed number of concurrent
// workers for a fixed duration. Each worker records per-class latencies
// into its own log-bucketed Histogram (no shared counters on the hot
// path); the merged result reports throughput and p50/p90/p99/p999 per
// request class and overall, and marshals to the BENCH_service.json
// artifact CI archives.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"jobench/internal/deadline"
	"jobench/internal/trace"
)

// Class names accepted in a Mix.
const (
	ClassOptimize   = "optimize"
	ClassExecute    = "execute"
	ClassEstimate   = "estimate"
	ClassExperiment = "experiment"
	// ClassReopt is an adaptive execution (/v1/execute with adaptive:true):
	// mid-run re-optimization plus plan-feedback cache traffic, so its
	// latency distribution shows what the feedback cache converges to under
	// repeat traffic.
	ClassReopt = "reopt"
)

// Failure class names in ClassResult.Failures. Lumping everything into
// one error count hides exactly the distinction chaos runs exist to make:
// a 429 is the system protecting itself (correct behavior under overload),
// a timeout is a deadline doing its job, and a transport error or stray
// 5xx is an actual failure.
const (
	FailTimeout   = "timeout"      // client deadline expired, or a 504 from the target
	FailShed      = "shed"         // 429: load shed by admission control
	FailServer    = "server_error" // other 5xx
	FailClient    = "client_error" // 4xx other than 429
	FailTransport = "transport"    // connection-level error, no HTTP response
)

// classifyFailure buckets one request outcome; "" means success.
func classifyFailure(status int, err error) string {
	switch {
	case err != nil:
		if errors.Is(err, context.DeadlineExceeded) {
			return FailTimeout
		}
		return FailTransport
	case status == http.StatusTooManyRequests:
		return FailShed
	case status == http.StatusGatewayTimeout:
		return FailTimeout
	case status >= 500:
		return FailServer
	case status >= 400:
		return FailClient
	}
	return ""
}

// Config configures one load run.
type Config struct {
	// Target is the base URL the traffic is aimed at — a router or a
	// single replica; the generator does not care which.
	Target string
	// Duration is how long the workers fire (default 10s).
	Duration time.Duration
	// Concurrency is the number of workers, each running one synchronous
	// request loop (default 8).
	Concurrency int
	// Mix maps class name to relative weight; classes absent or weighted 0
	// are never issued. Empty means the DefaultMix.
	Mix map[string]int
	// Seed drives every random choice (class and query selection), so a
	// run is reproducible given the same config (default 1).
	Seed int64
	// Workloads are the workload names the requests ask for; empty means
	// one workload, the target's default. With more than one, each request
	// draws a workload uniformly — mixed-workload traffic that exercises a
	// fleet's per-workload pools — except the experiment class, which pins
	// to the first name (its sweeps want the primed snapshots).
	Workloads []string
	// WorldSeed and Scale select the (seed, scale) world the requests ask
	// for; they ride in every request body, so the router's affinity key
	// is the same for the whole run. Zero values let the server defaults
	// apply.
	WorldSeed int64
	Scale     float64
	// WorldSeeds, when set, spreads the load across several worlds (each
	// at Scale): per request one seed is drawn uniformly, which is what
	// makes a consistent-hash router distribute the run across replicas —
	// a single world by construction all lands on its one owner. The
	// experiment class always uses WorldSeeds[0] (or WorldSeed), so the
	// paper-grade sweeps stay on the world whose snapshots are primed.
	WorldSeeds []int64
	// Queries are the query ids optimize/execute/estimate pick from, used
	// for every configured workload. Empty means fetch each workload's own
	// list from Target's /v1/queries before the clock starts (which also
	// warms the target's system pool).
	Queries []string
	// Experiments are the names the experiment class picks from (default
	// fig3, the cheapest estimation sweep).
	Experiments []string
	// RequestTimeout, when positive, bounds every request client-side AND
	// rides along as an absolute X-Jobench-Deadline header, so the target
	// tier can enforce the same deadline internally. Latencies beyond
	// RequestTimeout+DeadlineGrace count as deadline overruns — the
	// deadline-enforcement check a chaos run asserts on.
	RequestTimeout time.Duration
	// DeadlineGrace is the slack allowed over RequestTimeout before a
	// request counts as a deadline overrun (default 500ms).
	DeadlineGrace time.Duration
	// Client is the HTTP client used for every request (default: one
	// client with sensible connection reuse).
	Client *http.Client
	// Logger receives progress diagnostics (default: discard).
	Logger *slog.Logger
}

// DefaultMix is the standing traffic shape: mostly plan-only requests,
// some executions and estimates, the occasional full experiment report.
var DefaultMix = map[string]int{
	ClassOptimize:   4,
	ClassExecute:    2,
	ClassEstimate:   3,
	ClassExperiment: 1,
}

// ClassResult is the measured outcome for one request class.
type ClassResult struct {
	Requests      int64     `json:"requests"`
	Errors        int64     `json:"errors"`
	ThroughputRPS float64   `json:"throughput_rps"`
	Latency       LatencyMS `json:"latency_ms"`
	// ErrorRate is Errors/Requests (0 when no requests ran).
	ErrorRate float64 `json:"error_rate"`
	// Failures breaks Errors down by failure class (timeout, shed,
	// server_error, client_error, transport); absent when everything
	// succeeded.
	Failures map[string]int64 `json:"failures,omitempty"`
	// DeadlineOverruns counts requests observed to take longer than
	// Config.RequestTimeout+DeadlineGrace — each one is a deadline the
	// serving tier failed to enforce (always 0 without a RequestTimeout).
	DeadlineOverruns int64 `json:"deadline_overruns"`
	// SlowTraces are the class's slowest requests with the trace IDs the
	// generator stamped on them (X-Jobench-Trace) — p99 exemplars to look
	// up in the target's /v1/traces.
	SlowTraces []TraceExemplar `json:"slow_traces,omitempty"`
}

// TraceExemplar pairs one request's trace ID with its measured latency.
type TraceExemplar struct {
	TraceID   string  `json:"trace_id"`
	LatencyMS float64 `json:"latency_ms"`
}

// exemplarsPerClass bounds the slow-trace exemplars kept per class.
const exemplarsPerClass = 4

// recordExemplar keeps the top exemplarsPerClass slowest entries, sorted
// slowest first.
func recordExemplar(list []TraceExemplar, e TraceExemplar) []TraceExemplar {
	i := sort.Search(len(list), func(i int) bool { return list[i].LatencyMS < e.LatencyMS })
	if i >= exemplarsPerClass {
		return list
	}
	list = append(list, TraceExemplar{})
	copy(list[i+1:], list[i:])
	list[i] = e
	if len(list) > exemplarsPerClass {
		list = list[:exemplarsPerClass]
	}
	return list
}

// LatencyMS is a latency summary in milliseconds.
type LatencyMS struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// Result is one load run's report — the BENCH_service.json shape.
type Result struct {
	Schema          string                 `json:"schema"`
	Target          string                 `json:"target"`
	DurationSeconds float64                `json:"duration_seconds"`
	Concurrency     int                    `json:"concurrency"`
	Mix             map[string]int         `json:"mix"`
	Workloads       []string               `json:"workloads"`
	WorldSeeds      []int64                `json:"world_seeds"`
	Scale           float64                `json:"scale"`
	Total           ClassResult            `json:"total"`
	Classes         map[string]ClassResult `json:"classes"`
}

// Schema identifies the Result JSON layout; bump when fields change
// incompatibly so downstream tooling can tell artifacts apart.
const Schema = "jobench-loadgen/v1"

// Run fires the configured load and reports the merged result. It returns
// an error only when the run could not start (bad config, unreachable
// target while fetching the workload); request failures during the run are
// counted per class, not fatal.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("loadgen: no target")
	}
	cfg.Target = strings.TrimRight(cfg.Target, "/")
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = DefaultMix
	}
	if len(cfg.Experiments) == 0 {
		cfg.Experiments = []string{"fig3"}
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if len(cfg.WorldSeeds) == 0 {
		cfg.WorldSeeds = []int64{cfg.WorldSeed}
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []string{""}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	logf := func(format string, args ...any) {
		logger.Info(fmt.Sprintf(format, args...))
	}

	classes, weights, totalWeight := normalizeMix(cfg.Mix)
	if totalWeight == 0 {
		return nil, fmt.Errorf("loadgen: mix has no positive weights")
	}
	needQueries := false
	for _, c := range classes {
		if c != ClassExperiment {
			needQueries = true
		}
	}
	// Query ids are workload-specific ("13d" vs "tpch5"), so the picker
	// keys its lists by workload name; an explicit Queries list applies to
	// every configured workload.
	queries := make(map[string][]string, len(cfg.Workloads))
	for _, w := range cfg.Workloads {
		queries[w] = cfg.Queries
	}
	if needQueries && len(cfg.Queries) == 0 {
		var err error
		queries, err = fetchQueries(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("loadgen: fetching workload from %s: %w", cfg.Target, err)
		}
		for _, w := range cfg.Workloads {
			logf("loadgen: fetched %d queries for workload %q from %s", len(queries[w]), w, cfg.Target)
		}
	}

	if cfg.DeadlineGrace <= 0 {
		cfg.DeadlineGrace = 500 * time.Millisecond
	}

	type workerState struct {
		hists     map[string]*Histogram
		errors    map[string]int64
		failures  map[string]map[string]int64
		overruns  map[string]int64
		exemplars map[string][]TraceExemplar
	}
	states := make([]workerState, cfg.Concurrency)
	for i := range states {
		states[i].hists = make(map[string]*Histogram, len(classes))
		states[i].errors = make(map[string]int64, len(classes))
		states[i].failures = make(map[string]map[string]int64, len(classes))
		states[i].overruns = make(map[string]int64, len(classes))
		states[i].exemplars = make(map[string][]TraceExemplar, len(classes))
		for _, c := range classes {
			states[i].hists[c] = &Histogram{}
			states[i].failures[c] = make(map[string]int64)
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	logf("loadgen: %d workers x %v against %s (mix %v)",
		cfg.Concurrency, cfg.Duration, cfg.Target, cfg.Mix)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			st := &states[w]
			for runCtx.Err() == nil {
				class := pickClass(rng, classes, weights, totalWeight)
				// Each request gets its own deadline inside the run window;
				// the absolute header tells the serving tier to enforce it
				// end-to-end, and the client-side ctx is the backstop.
				reqCtx, reqCancel := runCtx, context.CancelFunc(func() {})
				if cfg.RequestTimeout > 0 {
					reqCtx, reqCancel = context.WithTimeout(runCtx, cfg.RequestTimeout)
				}
				req, err := buildRequest(reqCtx, cfg, queries, rng, class)
				if err != nil {
					reqCancel()
					return // only fails on a broken config; don't spin
				}
				if cfg.RequestTimeout > 0 {
					deadline.Set(req.Header, time.Now().Add(cfg.RequestTimeout))
				}
				// Stamp a trace ID on every request so slow outliers can be
				// looked up in the target's /v1/traces afterwards.
				tid := trace.NewID()
				req.Header.Set(trace.Header, tid.String())
				t0 := time.Now()
				resp, err := cfg.Client.Do(req)
				elapsed := time.Since(t0)
				status := 0
				if err == nil {
					status = resp.StatusCode
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				} else if runCtx.Err() != nil {
					reqCancel()
					return // run window closed mid-request, not a real failure
				}
				reqCancel()
				if fail := classifyFailure(status, err); fail != "" {
					st.errors[class]++
					st.failures[class][fail]++
				}
				if cfg.RequestTimeout > 0 && elapsed > cfg.RequestTimeout+cfg.DeadlineGrace {
					st.overruns[class]++
				}
				st.hists[class].Record(elapsed)
				if err == nil {
					st.exemplars[class] = recordExemplar(st.exemplars[class], TraceExemplar{
						TraceID:   tid.String(),
						LatencyMS: float64(elapsed.Microseconds()) / 1000,
					})
				}
			}
		}(i)
	}
	wg.Wait()
	// Requests in flight at the deadline are allowed to finish; throughput
	// divides by the real window, not the nominal duration.
	elapsed := time.Since(start)

	res := &Result{
		Schema:          Schema,
		Target:          cfg.Target,
		DurationSeconds: elapsed.Seconds(),
		Concurrency:     cfg.Concurrency,
		Mix:             cfg.Mix,
		Workloads:       cfg.Workloads,
		WorldSeeds:      cfg.WorldSeeds,
		Scale:           cfg.Scale,
		Classes:         make(map[string]ClassResult, len(classes)),
	}
	total := &Histogram{}
	var totalErrs, totalOverruns int64
	totalFails := make(map[string]int64)
	for _, c := range classes {
		h := &Histogram{}
		var errs, overruns int64
		fails := make(map[string]int64)
		var slow []TraceExemplar
		for i := range states {
			h.Merge(states[i].hists[c])
			errs += states[i].errors[c]
			overruns += states[i].overruns[c]
			for k, n := range states[i].failures[c] {
				fails[k] += n
			}
			for _, e := range states[i].exemplars[c] {
				slow = recordExemplar(slow, e)
			}
		}
		cr := classResult(h, errs, overruns, fails, elapsed)
		cr.SlowTraces = slow
		res.Classes[c] = cr
		total.Merge(h)
		totalErrs += errs
		totalOverruns += overruns
		for k, n := range fails {
			totalFails[k] += n
		}
	}
	res.Total = classResult(total, totalErrs, totalOverruns, totalFails, elapsed)
	return res, nil
}

func classResult(h *Histogram, errs, overruns int64, fails map[string]int64, window time.Duration) ClassResult {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	var rate float64
	if h.Count() > 0 {
		rate = float64(errs) / float64(h.Count())
	}
	if len(fails) == 0 {
		fails = nil
	}
	return ClassResult{
		Requests:         h.Count(),
		Errors:           errs,
		ErrorRate:        rate,
		Failures:         fails,
		DeadlineOverruns: overruns,
		ThroughputRPS:    float64(h.Count()) / window.Seconds(),
		Latency: LatencyMS{
			P50:  ms(h.Quantile(0.50)),
			P90:  ms(h.Quantile(0.90)),
			P99:  ms(h.Quantile(0.99)),
			P999: ms(h.Quantile(0.999)),
			Mean: ms(h.Mean()),
			Max:  ms(h.Max()),
		},
	}
}

// normalizeMix returns the positively-weighted classes in deterministic
// (sorted) order with their weights and the weight sum.
func normalizeMix(mix map[string]int) (classes []string, weights []int, total int) {
	for c, w := range mix {
		if w > 0 {
			classes = append(classes, c)
		}
	}
	sort.Strings(classes)
	weights = make([]int, len(classes))
	for i, c := range classes {
		weights[i] = mix[c]
		total += mix[c]
	}
	return classes, weights, total
}

func pickClass(rng *rand.Rand, classes []string, weights []int, total int) string {
	n := rng.Intn(total)
	for i, w := range weights {
		if n < w {
			return classes[i]
		}
		n -= w
	}
	return classes[len(classes)-1]
}

// buildRequest constructs one request of the given class against the
// target, with the world's (workload, seed, scale) in the body or query
// string so the router's affinity hashing sees it.
func buildRequest(ctx context.Context, cfg Config, queries map[string][]string, rng *rand.Rand, class string) (*http.Request, error) {
	// The experiment class pins to the first world (its sweeps want the
	// primed snapshots); everything else spreads uniformly.
	wl := cfg.Workloads[0]
	seed := cfg.WorldSeeds[0]
	if class != ClassExperiment {
		if len(cfg.Workloads) > 1 {
			wl = cfg.Workloads[rng.Intn(len(cfg.Workloads))]
		}
		if len(cfg.WorldSeeds) > 1 {
			seed = cfg.WorldSeeds[rng.Intn(len(cfg.WorldSeeds))]
		}
	}
	world := func(m map[string]any) map[string]any {
		if wl != "" {
			m["workload"] = wl
		}
		if seed != 0 {
			m["seed"] = seed
		}
		if cfg.Scale > 0 {
			m["scale"] = cfg.Scale
		}
		return m
	}
	post := func(path string, body map[string]any) (*http.Request, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.Target+path, bytes.NewReader(buf))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}
	pickQuery := func() (string, error) {
		qs := queries[wl]
		if len(qs) == 0 {
			return "", fmt.Errorf("loadgen: class %q needs a query list for workload %q", class, wl)
		}
		return qs[rng.Intn(len(qs))], nil
	}
	switch class {
	case ClassOptimize:
		q, err := pickQuery()
		if err != nil {
			return nil, err
		}
		return post("/v1/optimize", world(map[string]any{"query": q}))
	case ClassExecute:
		q, err := pickQuery()
		if err != nil {
			return nil, err
		}
		return post("/v1/execute", world(map[string]any{"query": q}))
	case ClassReopt:
		q, err := pickQuery()
		if err != nil {
			return nil, err
		}
		return post("/v1/execute", world(map[string]any{"query": q, "adaptive": true}))
	case ClassEstimate:
		q, err := pickQuery()
		if err != nil {
			return nil, err
		}
		return post("/v1/estimate", world(map[string]any{"query": q}))
	case ClassExperiment:
		name := cfg.Experiments[rng.Intn(len(cfg.Experiments))]
		url := cfg.Target + "/v1/experiment/" + name + worldQuery(wl, seed, cfg.Scale)
		return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	default:
		return nil, fmt.Errorf("loadgen: unknown class %q", class)
	}
}

func worldQuery(wl string, seed int64, scale float64) string {
	var parts []string
	if wl != "" {
		parts = append(parts, "workload="+url.QueryEscape(wl))
	}
	if seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", seed))
	}
	if scale > 0 {
		parts = append(parts, fmt.Sprintf("scale=%g", scale))
	}
	if len(parts) == 0 {
		return ""
	}
	return "?" + strings.Join(parts, "&")
}

// fetchQueries asks the target for each workload's query ids (GET
// /v1/queries), once per configured (workload, world) pair, concurrently —
// this happens before the measured window opens, so it doubles as a warmup
// of every world's system pool (each on its owning replica when a router
// is the target). The query list depends only on the workload, not the
// seed; each workload's first world supplies its list.
func fetchQueries(ctx context.Context, cfg Config) (map[string][]string, error) {
	fctx, cancel := context.WithTimeout(ctx, 5*time.Minute)
	defer cancel()
	type pair struct {
		wl   string
		seed int64
	}
	var pairs []pair
	for _, w := range cfg.Workloads {
		for _, seed := range cfg.WorldSeeds {
			pairs = append(pairs, pair{w, seed})
		}
	}
	results := make([][]string, len(pairs))
	errs := make([]error, len(pairs))
	var wg sync.WaitGroup
	for i, pr := range pairs {
		wg.Add(1)
		go func(i int, pr pair) {
			defer wg.Done()
			results[i], errs[i] = fetchQueriesWorld(fctx, cfg, pr.wl, pr.seed)
		}(i, pr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make(map[string][]string, len(cfg.Workloads))
	for i, pr := range pairs {
		if _, ok := out[pr.wl]; !ok {
			out[pr.wl] = results[i]
		}
	}
	return out, nil
}

func fetchQueriesWorld(ctx context.Context, cfg Config, wl string, seed int64) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.Target+"/v1/queries"+worldQuery(wl, seed, cfg.Scale), nil)
	if err != nil {
		return nil, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var out struct {
		Queries []string `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if len(out.Queries) == 0 {
		return nil, fmt.Errorf("target reported an empty workload")
	}
	return out.Queries, nil
}
