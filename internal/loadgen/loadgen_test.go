package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"jobench/internal/deadline"
	"jobench/internal/trace"
)

// testLogger routes loadgen diagnostics into the test log.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{t}, nil))
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// fakeService mimics the /v1 surface well enough to load-test: it lists a
// workload, answers every class, and counts requests per path.
func fakeService(t *testing.T) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var posts, experiments atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/queries":
			_ = json.NewEncoder(w).Encode(map[string]any{
				"count": 3, "queries": []string{"1a", "13d", "6f"},
			})
		case r.URL.Path == "/v1/optimize", r.URL.Path == "/v1/execute", r.URL.Path == "/v1/estimate":
			var body struct {
				Query string `json:"query"`
			}
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Query == "" {
				http.Error(w, "bad body", http.StatusBadRequest)
				return
			}
			posts.Add(1)
			fmt.Fprint(w, `{"ok":true}`)
		default: // /v1/experiment/{name}
			experiments.Add(1)
			fmt.Fprint(w, "report text")
		}
	}))
	t.Cleanup(srv.Close)
	return srv, &posts, &experiments
}

// TestRunMixedLoad drives a short real run: every weighted class is
// issued, results aggregate, and the class counts sum to the total.
func TestRunMixedLoad(t *testing.T) {
	srv, posts, experiments := fakeService(t)
	res, err := Run(context.Background(), Config{
		Target:      srv.URL,
		Duration:    300 * time.Millisecond,
		Concurrency: 4,
		Seed:        7,
		Mix: map[string]int{
			ClassOptimize: 3, ClassExecute: 1, ClassEstimate: 2, ClassExperiment: 1,
		},
		Logger: testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != Schema {
		t.Fatalf("schema %q, want %q", res.Schema, Schema)
	}
	if res.Total.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if res.Total.Errors != 0 {
		t.Fatalf("%d errors against a healthy backend", res.Total.Errors)
	}
	var sum int64
	for class, cr := range res.Classes {
		if cr.Requests == 0 {
			t.Errorf("class %s: zero requests despite positive weight", class)
		}
		if cr.Latency.P50 <= 0 || cr.Latency.P99 < cr.Latency.P50 {
			t.Errorf("class %s: implausible latencies %+v", class, cr.Latency)
		}
		// Every class with traffic carries slow-trace exemplars: valid
		// trace IDs, slowest first.
		if len(cr.SlowTraces) == 0 || len(cr.SlowTraces) > exemplarsPerClass {
			t.Errorf("class %s: %d slow-trace exemplars", class, len(cr.SlowTraces))
		}
		for i, e := range cr.SlowTraces {
			if _, ok := trace.ParseID(e.TraceID); !ok {
				t.Errorf("class %s: exemplar %d has invalid trace id %q", class, i, e.TraceID)
			}
			if i > 0 && e.LatencyMS > cr.SlowTraces[i-1].LatencyMS {
				t.Errorf("class %s: exemplars not sorted slowest-first: %+v", class, cr.SlowTraces)
			}
		}
		sum += cr.Requests
	}
	if sum != res.Total.Requests {
		t.Fatalf("class requests sum %d != total %d", sum, res.Total.Requests)
	}
	if posts.Load() == 0 || experiments.Load() == 0 {
		t.Fatalf("backend saw posts=%d experiments=%d; every class must fire",
			posts.Load(), experiments.Load())
	}
	if res.Total.ThroughputRPS <= 0 {
		t.Fatal("throughput not computed")
	}
	// The report must marshal (it becomes BENCH_service.json).
	if _, err := json.Marshal(res); err != nil {
		t.Fatal(err)
	}
}

// TestRunCountsErrors: 4xx/5xx responses count as errors but still record
// latency.
func TestRunCountsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/queries" {
			_ = json.NewEncoder(w).Encode(map[string]any{"queries": []string{"1a"}})
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		Target:      srv.URL,
		Duration:    100 * time.Millisecond,
		Concurrency: 2,
		Mix:         map[string]int{ClassOptimize: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Requests == 0 || res.Total.Errors != res.Total.Requests {
		t.Fatalf("requests=%d errors=%d: every 500 must count as an error",
			res.Total.Requests, res.Total.Errors)
	}
}

// TestRunDeterministicChoices: the same seed produces the same class
// sequence (pickClass is driven only by the seeded rng).
func TestRunDeterministicChoices(t *testing.T) {
	classes, weights, total := normalizeMix(DefaultMix)
	seq := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		out := make([]string, 50)
		for i := range out {
			out[i] = pickClass(rng, classes, weights, total)
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("choice %d differs for equal seeds: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestRunRejectsBadConfig: no target and an all-zero mix are startup
// errors, not runtime surprises.
func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("empty target must fail")
	}
	srv, _, _ := fakeService(t)
	if _, err := Run(context.Background(), Config{
		Target: srv.URL, Mix: map[string]int{ClassOptimize: 0},
	}); err == nil {
		t.Fatal("zero-weight mix must fail")
	}
}

// TestReoptClass: the reopt class hits /v1/execute with adaptive:true set,
// and its latencies land in their own histogram.
func TestReoptClass(t *testing.T) {
	var adaptive, plain atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/queries" {
			_ = json.NewEncoder(w).Encode(map[string]any{"count": 1, "queries": []string{"13d"}})
			return
		}
		if r.URL.Path != "/v1/execute" {
			http.Error(w, "unexpected path "+r.URL.Path, http.StatusNotFound)
			return
		}
		var body struct {
			Query    string `json:"query"`
			Adaptive bool   `json:"adaptive"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		if body.Adaptive {
			adaptive.Add(1)
		} else {
			plain.Add(1)
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	t.Cleanup(srv.Close)
	res, err := Run(context.Background(), Config{
		Target:      srv.URL,
		Duration:    200 * time.Millisecond,
		Concurrency: 2,
		Seed:        3,
		Mix:         map[string]int{ClassReopt: 1, ClassExecute: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Errors != 0 {
		t.Fatalf("%d errors", res.Total.Errors)
	}
	if adaptive.Load() == 0 || plain.Load() == 0 {
		t.Fatalf("backend saw %d adaptive / %d plain executes; both classes must fire",
			adaptive.Load(), plain.Load())
	}
	// A request in flight at the deadline is counted by the backend but
	// dropped by its worker, so the backend may be ahead by up to one
	// request per worker.
	cr, ok := res.Classes[ClassReopt]
	if !ok || cr.Requests == 0 || adaptive.Load() < cr.Requests ||
		adaptive.Load()-cr.Requests > 2 {
		t.Fatalf("reopt class result %+v, backend counted %d", cr, adaptive.Load())
	}
	if cr.Latency.P50 <= 0 {
		t.Fatalf("reopt histogram empty: %+v", cr.Latency)
	}
}

// TestFailureClassification: timeouts, sheds, server errors and deadline
// overruns land in their own buckets (with the deadline header stamped on
// every request), so a chaos run can assert on each class separately.
func TestFailureClassification(t *testing.T) {
	var n atomic.Int64
	var sawDeadline atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/queries" {
			_ = json.NewEncoder(w).Encode(map[string]any{"queries": []string{"1a"}})
			return
		}
		if r.Header.Get(deadline.Header) != "" {
			sawDeadline.Store(true)
		}
		io.Copy(io.Discard, r.Body)
		switch n.Add(1) % 4 {
		case 0: // success
			fmt.Fprint(w, `{"ok":true}`)
		case 1: // shed
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case 2: // server error
			w.WriteHeader(http.StatusInternalServerError)
		case 3: // hang past the request deadline -> client-side timeout + overrun
			select {
			case <-time.After(2 * time.Second):
			case <-r.Context().Done():
			}
		}
	}))
	t.Cleanup(srv.Close)

	res, err := Run(context.Background(), Config{
		Target:         srv.URL,
		Duration:       900 * time.Millisecond,
		Concurrency:    4,
		Seed:           11,
		Mix:            map[string]int{ClassOptimize: 1},
		RequestTimeout: 150 * time.Millisecond,
		DeadlineGrace:  50 * time.Millisecond,
		Logger:         testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawDeadline.Load() {
		t.Fatal("no request carried the deadline header")
	}
	f := res.Total.Failures
	if f[FailShed] == 0 || f[FailServer] == 0 || f[FailTimeout] == 0 {
		t.Fatalf("failure classes not all populated: %v", f)
	}
	var sum int64
	for _, v := range f {
		sum += v
	}
	if sum != res.Total.Errors {
		t.Fatalf("failure classes sum to %d, errors = %d", sum, res.Total.Errors)
	}
	if res.Total.ErrorRate <= 0 || res.Total.ErrorRate > 1 {
		t.Fatalf("error rate %v out of range", res.Total.ErrorRate)
	}
	// The hung responses are cut client-side at RequestTimeout, well inside
	// the grace window — they count as timeouts, NOT as overruns (an
	// overrun means the latency itself escaped the deadline).
	if res.Total.DeadlineOverruns != 0 {
		t.Fatalf("deadline overruns = %d, want 0: the client enforces its own deadline", res.Total.DeadlineOverruns)
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatal(err)
	}
}
