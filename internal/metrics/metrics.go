// Package metrics implements the statistical machinery the paper's analysis
// uses: q-errors, percentiles, boxplot summaries (Fig. 3-5), slowdown
// buckets (Fig. 6-7 and the §4.1 table), geometric means (§5.4), and the
// linear cost/runtime regression of Fig. 8.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// QError returns the q-error of an estimate: the factor by which it differs
// from the true value, always >= 1 (paper §3.1). Zero values are smoothed to
// one row, matching how the paper's systems round estimates up.
func QError(estimate, truth float64) float64 {
	e := math.Max(estimate, 1)
	t := math.Max(truth, 1)
	if e > t {
		return e / t
	}
	return t / e
}

// SignedError returns estimate/truth with both values floored at one row:
// values > 1 are overestimates, < 1 underestimates. It is the quantity the
// paper plots on Fig. 3's log axis.
func SignedError(estimate, truth float64) float64 {
	e := math.Max(estimate, 1)
	t := math.Max(truth, 1)
	return e / t
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Max returns the maximum of xs, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of strictly positive xs, or NaN for
// empty input. The paper uses it to compare cost-model runtimes (§5.4).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// FracAtMost returns the fraction of xs that are <= bound.
func FracAtMost(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if x <= bound {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FracGreater returns the fraction of xs that are > bound.
func FracGreater(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return 1 - FracAtMost(xs, bound)
}

// Boxplot summarises a distribution with the five percentiles the paper's
// boxplots display (Fig. 3): 5th, 25th, median, 75th, 95th.
type Boxplot struct {
	N                      int
	P5, P25, P50, P75, P95 float64
	MinValue, MaxValue     float64
}

// NewBoxplot computes the summary of xs.
func NewBoxplot(xs []float64) Boxplot {
	return Boxplot{
		N:        len(xs),
		P5:       Percentile(xs, 5),
		P25:      Percentile(xs, 25),
		P50:      Percentile(xs, 50),
		P75:      Percentile(xs, 75),
		P95:      Percentile(xs, 95),
		MinValue: Min(xs),
		MaxValue: Max(xs),
	}
}

// String renders the boxplot as a compact log-scale summary.
func (b Boxplot) String() string {
	return fmt.Sprintf("n=%d p5=%.3g p25=%.3g median=%.3g p75=%.3g p95=%.3g",
		b.N, b.P5, b.P25, b.P50, b.P75, b.P95)
}

// SlowdownBuckets are the histogram bucket boundaries of Fig. 6/7 and the
// §4.1 table: [0.3,0.9) [0.9,1.1) [1.1,2) [2,10) [10,100) >=100.
var SlowdownBuckets = []float64{0.3, 0.9, 1.1, 2, 10, 100}

// BucketLabels returns human-readable labels for SlowdownBuckets.
func BucketLabels() []string {
	return []string{"<0.9", "[0.9,1.1)", "[1.1,2)", "[2,10)", "[10,100)", ">100"}
}

// BucketSlowdowns assigns each slowdown to one of the six paper buckets and
// returns per-bucket fractions (summing to 1 for non-empty input).
func BucketSlowdowns(xs []float64) []float64 {
	counts := make([]float64, 6)
	for _, x := range xs {
		switch {
		case x < 0.9:
			counts[0]++
		case x < 1.1:
			counts[1]++
		case x < 2:
			counts[2]++
		case x < 10:
			counts[3]++
		case x < 100:
			counts[4]++
		default:
			counts[5]++
		}
	}
	if len(xs) > 0 {
		for i := range counts {
			counts[i] /= float64(len(xs))
		}
	}
	return counts
}

// Regression holds an ordinary-least-squares fit y = a + b*x together with
// goodness-of-fit measures, used for the Fig. 8 cost/runtime correlation.
type Regression struct {
	N         int
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination

	// MedianAbsPctErr is the median of |y - yhat| / y, the paper's
	// "prediction error of the cost model" (§5.2, 38% for the default
	// model under true cardinalities).
	MedianAbsPctErr float64

	// Pearson is the linear correlation coefficient of (x, y).
	Pearson float64
}

// FitRegression fits y = a + b*x by least squares. It returns a zero-value
// Regression for fewer than two points.
func FitRegression(x, y []float64) Regression {
	if len(x) != len(y) || len(x) < 2 {
		return Regression{N: len(x)}
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	r := Regression{N: len(x)}
	if sxx == 0 {
		return r
	}
	r.Slope = sxy / sxx
	r.Intercept = my - r.Slope*mx
	if syy > 0 {
		r.Pearson = sxy / math.Sqrt(sxx*syy)
		var ssRes float64
		for i := range x {
			e := y[i] - (r.Intercept + r.Slope*x[i])
			ssRes += e * e
		}
		r.R2 = 1 - ssRes/syy
	}
	errs := make([]float64, 0, len(x))
	for i := range x {
		if y[i] <= 0 {
			continue
		}
		yhat := r.Intercept + r.Slope*x[i]
		errs = append(errs, math.Abs(y[i]-yhat)/y[i])
	}
	r.MedianAbsPctErr = Median(errs)
	return r
}
