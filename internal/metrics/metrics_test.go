package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQError(t *testing.T) {
	cases := []struct {
		est, truth, want float64
	}{
		{100, 100, 1},
		{10, 100, 10},
		{1000, 100, 10}, // paper's example: both 10 and 1000 have q-error 10
		{0, 100, 100},   // zero estimates are floored at one row
		{100, 0, 100},
		{0.5, 1, 1},
	}
	for _, c := range cases {
		if got := QError(c.est, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("QError(%g,%g) = %g, want %g", c.est, c.truth, got, c.want)
		}
	}
}

func TestSignedError(t *testing.T) {
	if got := SignedError(10, 100); got != 0.1 {
		t.Fatalf("under: %g", got)
	}
	if got := SignedError(1000, 100); got != 10 {
		t.Fatalf("over: %g", got)
	}
}

// Property: q-error is symmetric in over/under direction and always >= 1.
func TestQErrorProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		e, tr := float64(a%1_000_000)+1, float64(b%1_000_000)+1
		q := QError(e, tr)
		return q >= 1 && math.Abs(q-QError(tr, e)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("median = %g", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %g", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %g", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Fatalf("interpolated median = %g", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 uint8) bool {
		xs := raw[:0:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		va, vb := Percentile(xs, a), Percentile(xs, b)
		return va <= vb && va >= Min(xs) && vb <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregates(t *testing.T) {
	xs := []float64{1, 4, 16}
	if got := Mean(xs); got != 7 {
		t.Fatalf("Mean = %g", got)
	}
	if got := GeoMean(xs); math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean = %g, want 4", got)
	}
	if Min(xs) != 1 || Max(xs) != 16 {
		t.Fatal("min/max broken")
	}
	if got := FracAtMost(xs, 4); got != 2.0/3 {
		t.Fatalf("FracAtMost = %g", got)
	}
	if got := FracGreater(xs, 4); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("FracGreater = %g", got)
	}
}

func TestBoxplot(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	b := NewBoxplot(xs)
	if b.N != 101 || b.P50 != 50 || b.P5 != 5 || b.P95 != 95 || b.P25 != 25 || b.P75 != 75 {
		t.Fatalf("boxplot = %+v", b)
	}
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBucketSlowdowns(t *testing.T) {
	xs := []float64{0.5, 1.0, 1.5, 5, 50, 500}
	fr := BucketSlowdowns(xs)
	for i, f := range fr {
		if math.Abs(f-1.0/6) > 1e-12 {
			t.Fatalf("bucket %d frac = %g", i, f)
		}
	}
	if len(BucketLabels()) != 6 {
		t.Fatal("want 6 bucket labels")
	}
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %g", sum)
	}
}

func TestRegressionPerfectFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	r := FitRegression(x, y)
	if math.Abs(r.Slope-2) > 1e-9 || math.Abs(r.Intercept-1) > 1e-9 {
		t.Fatalf("fit = %+v", r)
	}
	if math.Abs(r.R2-1) > 1e-9 || math.Abs(r.Pearson-1) > 1e-9 {
		t.Fatalf("R2/Pearson = %g/%g", r.R2, r.Pearson)
	}
	if r.MedianAbsPctErr > 1e-9 {
		t.Fatalf("MedianAbsPctErr = %g", r.MedianAbsPctErr)
	}
}

func TestRegressionDegenerate(t *testing.T) {
	r := FitRegression([]float64{1}, []float64{2})
	if r.N != 1 || r.Slope != 0 {
		t.Fatalf("degenerate fit = %+v", r)
	}
	r = FitRegression([]float64{2, 2, 2}, []float64{1, 5, 9})
	if r.Slope != 0 {
		t.Fatalf("constant-x fit slope = %g", r.Slope)
	}
}

func TestRegressionNoisyCorrelation(t *testing.T) {
	var x, y []float64
	for i := 0; i < 100; i++ {
		x = append(x, float64(i))
		noise := float64(i%7) - 3
		y = append(y, 10+3*float64(i)+noise)
	}
	r := FitRegression(x, y)
	if r.Pearson < 0.99 {
		t.Fatalf("Pearson = %g, want near 1", r.Pearson)
	}
	if math.Abs(r.Slope-3) > 0.1 {
		t.Fatalf("Slope = %g, want ~3", r.Slope)
	}
}
