// Package optimizer is the facade tying the query optimizer together:
// given a join graph, a cardinality provider (an estimator, injected
// values, or the truth), a cost model, a physical design and an enumeration
// algorithm, it produces a physical plan. It is the programmatic equivalent
// of the paper's modified PostgreSQL plus its standalone optimizer (§2.4,
// §6).
package optimizer

import (
	"fmt"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/enum"
	"jobench/internal/plan"
	"jobench/internal/query"
	"jobench/internal/storage"
)

// Algorithm selects the plan enumeration strategy.
type Algorithm int

const (
	// DP is exhaustive dynamic programming over connected subgraphs.
	DP Algorithm = iota
	// DPccp is the csg-cmp-pair enumerator (same plans, faster on sparse
	// graphs).
	DPccp
	// QuickPick1000 keeps the cheapest of 1000 random plans.
	QuickPick1000
	// GOO is Greedy Operator Ordering.
	GOO
)

func (a Algorithm) String() string {
	switch a {
	case DP:
		return "Dynamic Programming"
	case DPccp:
		return "Dynamic Programming (ccp)"
	case QuickPick1000:
		return "Quickpick-1000"
	case GOO:
		return "Greedy Operator Ordering"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Optimizer holds the fixed configuration; Optimize may be called for many
// queries.
type Optimizer struct {
	DB      *storage.Database
	Model   costmodel.Model
	Indexes plan.IndexChecker

	// DisableNLJ removes the risky non-indexed nested-loop joins (§4.1).
	DisableNLJ bool
	// Shape restricts the tree shapes enumerated (§6.2); DP only.
	Shape plan.Shape
	// Algorithm selects the enumerator.
	Algorithm Algorithm
	// Seed drives QuickPick; QuickPickPlans defaults to 1000.
	Seed           int64
	QuickPickPlans int
}

// Optimize computes a plan for g using the given cardinality provider.
func (o *Optimizer) Optimize(g *query.Graph, cards cardest.Provider) (*plan.Node, error) {
	if o.Model == nil {
		return nil, fmt.Errorf("optimizer: no cost model")
	}
	sp := &enum.Space{
		G:          g,
		DB:         o.DB,
		Cards:      cards,
		Model:      o.Model,
		Indexes:    o.Indexes,
		DisableNLJ: o.DisableNLJ,
		Shape:      o.Shape,
	}
	var (
		root *plan.Node
		err  error
	)
	switch o.Algorithm {
	case DP:
		root, err = enum.DP(sp)
	case DPccp:
		root, err = enum.DPccp(sp)
	case QuickPick1000:
		k := o.QuickPickPlans
		if k <= 0 {
			k = 1000
		}
		root, err = enum.QuickPickBest(sp, k, o.Seed)
	case GOO:
		root, err = enum.GOO(sp)
	default:
		return nil, fmt.Errorf("optimizer: unknown algorithm %v", o.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(root, g, query.FullSet(g.N)); err != nil {
		return nil, fmt.Errorf("optimizer: produced invalid plan: %w", err)
	}
	return root, nil
}

// TrueCost re-prices a plan under a different provider (typically the true
// cardinalities), the §6 methodology for comparing plans without executing
// them.
func (o *Optimizer) TrueCost(root *plan.Node, g *query.Graph, truth cardest.Provider) float64 {
	return plan.Cost(root, g, o.DB, truth, o.Model)
}
