package optimizer

import (
	"strings"
	"testing"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/imdb"
	"jobench/internal/job"
	"jobench/internal/plan"
	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/storage"
	"jobench/internal/truecard"
)

type olab struct {
	db   *storage.Database
	sdb  *stats.DB
	pg   cardest.Estimator
	pkfk plan.IndexChecker
}

var cached *olab

func lab(t *testing.T) *olab {
	t.Helper()
	if cached != nil {
		return cached
	}
	db := imdb.Generate(imdb.Config{Scale: 0.05, Seed: 31})
	sdb := stats.AnalyzeDatabase(db, stats.Options{SampleSize: 2000, Seed: 1})
	pkfk, err := imdb.BuildIndexes(db, imdb.PKFK)
	if err != nil {
		t.Fatal(err)
	}
	cached = &olab{db: db, sdb: sdb, pg: cardest.NewPostgres(db, sdb), pkfk: pkfk}
	return cached
}

func TestOptimizeAllAlgorithms(t *testing.T) {
	l := lab(t)
	g := query.MustBuildGraph(job.ByID("13d"))
	cards := l.pg.ForQuery(g)
	var dpCost float64
	for _, alg := range []Algorithm{DP, DPccp, QuickPick1000, GOO} {
		o := &Optimizer{
			DB: l.db, Model: costmodel.NewSimple(), Indexes: l.pkfk,
			DisableNLJ: true, Algorithm: alg, Seed: 1,
		}
		root, err := o.Optimize(g, cards)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := plan.Validate(root, g, query.FullSet(g.N)); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		switch alg {
		case DP:
			dpCost = root.ECost
		default:
			if root.ECost < dpCost-1e-9 {
				t.Errorf("%v produced cheaper plan (%g) than DP (%g)", alg, root.ECost, dpCost)
			}
		}
		if alg.String() == "" || strings.HasPrefix(alg.String(), "Algorithm(") {
			t.Errorf("bad algorithm name for %d", alg)
		}
	}
}

func TestTrueCostRecosting(t *testing.T) {
	// The §6 methodology: optimize under estimates, re-cost under truth.
	// The estimate-driven plan can never have a lower true cost than the
	// plan optimized under true cardinalities.
	l := lab(t)
	for _, qid := range []string{"3b", "1a", "13a"} {
		g := query.MustBuildGraph(job.ByID(qid))
		st, err := truecard.Compute(l.db, g, truecard.Options{})
		if err != nil {
			t.Fatal(err)
		}
		truth := cardest.True{Store: st}
		o := &Optimizer{DB: l.db, Model: costmodel.NewSimple(), Indexes: l.pkfk, DisableNLJ: true}

		estPlan, err := o.Optimize(g, l.pg.ForQuery(g))
		if err != nil {
			t.Fatal(err)
		}
		truePlan, err := o.Optimize(g, truth)
		if err != nil {
			t.Fatal(err)
		}
		estCost := o.TrueCost(estPlan, g, truth)
		optCost := o.TrueCost(truePlan, g, truth)
		if optCost > estCost+1e-9 {
			t.Errorf("%s: true-card plan (%g) worse than estimate plan (%g)", qid, optCost, estCost)
		}
		if optCost <= 0 {
			t.Errorf("%s: non-positive cost %g", qid, optCost)
		}
	}
}

func TestQuickPickPlansKnob(t *testing.T) {
	l := lab(t)
	g := query.MustBuildGraph(job.ByID("6a"))
	cards := l.pg.ForQuery(g)
	o := &Optimizer{DB: l.db, Model: costmodel.NewSimple(), Indexes: l.pkfk,
		Algorithm: QuickPick1000, QuickPickPlans: 5, Seed: 9}
	few, err := o.Optimize(g, cards)
	if err != nil {
		t.Fatal(err)
	}
	o.QuickPickPlans = 500
	many, err := o.Optimize(g, cards)
	if err != nil {
		t.Fatal(err)
	}
	if many.ECost > few.ECost+1e-9 {
		t.Errorf("more random plans produced a worse best (%g > %g)", many.ECost, few.ECost)
	}
}

func TestShapeRestrictionRespected(t *testing.T) {
	l := lab(t)
	g := query.MustBuildGraph(job.ByID("13d"))
	for _, shape := range []plan.Shape{plan.LeftDeep, plan.RightDeep, plan.ZigZag} {
		o := &Optimizer{DB: l.db, Model: costmodel.NewSimple(), Indexes: l.pkfk,
			DisableNLJ: true, Shape: shape}
		root, err := o.Optimize(g, l.pg.ForQuery(g))
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if !plan.Conforms(root, shape) {
			t.Errorf("plan violates %v", shape)
		}
	}
}

func TestMissingModelError(t *testing.T) {
	o := &Optimizer{DB: lab(t).db}
	g := query.MustBuildGraph(job.ByID("1a"))
	if _, err := o.Optimize(g, lab(t).pg.ForQuery(g)); err == nil {
		t.Fatal("no error without a cost model")
	}
}
