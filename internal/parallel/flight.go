package parallel

import (
	"context"
	"sync"
)

// Flight is a generic single-flight group: concurrent Do calls for one key
// collapse into a single execution of fn, whose result every waiter shares.
// Unlike KeyedOnce, results are NOT cached — once the winning call returns,
// the key is forgotten, so a later Do runs fn again. That makes Flight the
// right shape for expensive fallible work guarded by an external cache (the
// service's system pool, the facade's truth stores): a thundering herd of
// cold requests performs the work exactly once, while a failure (or a
// context cancellation surfaced as an error) never poisons future attempts.
//
// The zero value is ready to use.
type Flight[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	v    V
	err  error
}

// Do returns the result of fn for key, executing fn itself only if no other
// call for key is in flight; otherwise it blocks until the in-flight call
// finishes and returns its result. shared reports whether the result came
// from another caller's execution. fn runs outside the group's lock, so
// flights of distinct keys proceed in parallel.
//
// fn must not panic: a panicking fn would leave every waiter for the key
// blocked forever.
func (f *Flight[K, V]) Do(key K, fn func() (V, error)) (v V, err error, shared bool) {
	f.mu.Lock()
	if f.m == nil {
		f.m = make(map[K]*flightCall[V])
	}
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.v, c.err, true
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.m[key] = c
	f.mu.Unlock()

	c.v, c.err = fn()

	f.mu.Lock()
	delete(f.m, key)
	f.mu.Unlock()
	close(c.done)
	return c.v, c.err, false
}

// DoContext is Do with a bounded wait: if ctx ends before the flight for
// key finishes, DoContext returns ctx.Err() immediately — but the flight
// itself keeps running to completion. That asymmetry is deliberate: the
// winning fn typically populates an external cache (system pool, report
// cache), and abandoning it halfway because one requester's deadline
// fired would waste the work every other waiter — and the next request —
// could have reused. fn receives a context that is NOT the caller's: it
// stays live until fn returns, so a deadline-bounded requester leaving
// early never cancels construction out from under later joiners.
//
// Unlike Do, fn runs on its own goroutine even for the initiating caller.
func (f *Flight[K, V]) DoContext(ctx context.Context, key K, fn func() (V, error)) (v V, err error, shared bool) {
	f.mu.Lock()
	if f.m == nil {
		f.m = make(map[K]*flightCall[V])
	}
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		select {
		case <-c.done:
			return c.v, c.err, true
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err(), true
		}
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.m[key] = c
	f.mu.Unlock()

	go func() {
		c.v, c.err = fn()
		f.mu.Lock()
		delete(f.m, key)
		f.mu.Unlock()
		close(c.done)
	}()

	select {
	case <-c.done:
		return c.v, c.err, false
	case <-ctx.Done():
		var zero V
		return zero, ctx.Err(), false
	}
}
