package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightCollapsesConcurrentCalls(t *testing.T) {
	var f Flight[string, int]
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]int, waiters)
	sharedCount := new(atomic.Int64)

	// One caller enters first and blocks inside fn so the rest pile up
	// behind the in-flight call.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, _ := f.Do("k", func() (int, error) {
			calls.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Errorf("leader: got (%d, %v)", v, err)
		}
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := f.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
			if shared {
				sharedCount.Add(1)
			}
		}(i)
	}
	// Let every waiter reach the in-flight wait before the leader finishes:
	// they are all runnable and this sleep yields the scheduler to them;
	// nothing else can block them on the way into Do.
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d", i, v)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1 (every waiter shares the leader's flight)", got)
	}
	if got := sharedCount.Load(); got != waiters {
		t.Fatalf("%d of %d waiters shared the in-flight result", got, waiters)
	}
}

func TestFlightDoesNotCacheResultsOrErrors(t *testing.T) {
	var f Flight[string, int]
	boom := errors.New("boom")
	if _, err, _ := f.Do("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("first call: %v", err)
	}
	// The failed flight must not latch: the next call runs fn again and can
	// succeed.
	v, err, shared := f.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 || shared {
		t.Fatalf("second call: (%d, %v, shared=%v)", v, err, shared)
	}
	// And a successful result is not cached either.
	v, _, _ = f.Do("k", func() (int, error) { return 8, nil })
	if v != 8 {
		t.Fatalf("third call returned stale value %d", v)
	}
}

func TestFlightDoContextReturnsOnDeadline(t *testing.T) {
	var f Flight[string, int]
	release := make(chan struct{})
	started := make(chan struct{})
	fnDone := make(chan struct{})

	// Initiator with an already-short deadline: it must give up promptly,
	// while fn keeps running to completion.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err, _ := f.DoContext(ctx, "k", func() (int, error) {
		close(started)
		<-release
		close(fnDone)
		return 42, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("initiator err = %v, want deadline exceeded", err)
	}

	// A joiner with its own expired context also leaves immediately.
	<-started
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	_, err, shared := f.DoContext(expired, "k", func() (int, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) || !shared {
		t.Fatalf("joiner = (%v, shared=%v), want canceled + shared", err, shared)
	}

	// The abandoned flight still completes, and a patient joiner gets its
	// value — the work was not cancelled out from under the cache.
	got := make(chan int, 1)
	go func() {
		v, err, _ := f.DoContext(context.Background(), "k", func() (int, error) { return -1, nil })
		if err != nil {
			t.Errorf("patient joiner: %v", err)
		}
		got <- v
	}()
	// Give the patient joiner time to register on the in-flight call (it is
	// runnable and nothing else blocks it on the way into DoContext).
	time.Sleep(300 * time.Millisecond)
	close(release)
	<-fnDone
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("patient joiner got %d, want the original flight's 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("patient joiner never returned")
	}
}

func TestFlightDoContextCompletesWithoutDeadline(t *testing.T) {
	var f Flight[string, int]
	v, err, shared := f.DoContext(context.Background(), "k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 || shared {
		t.Fatalf("DoContext = (%d, %v, shared=%v)", v, err, shared)
	}
}

func TestFlightDistinctKeysDoNotBlock(t *testing.T) {
	var f Flight[int, int]
	blockA := make(chan struct{})
	startedA := make(chan struct{})
	go f.Do(1, func() (int, error) { close(startedA); <-blockA; return 1, nil })
	<-startedA
	// Key 2 must proceed while key 1 is in flight.
	v, err, _ := f.Do(2, func() (int, error) { return 2, nil })
	if err != nil || v != 2 {
		t.Fatalf("key 2 blocked or failed: (%d, %v)", v, err)
	}
	close(blockA)
}
