package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightCollapsesConcurrentCalls(t *testing.T) {
	var f Flight[string, int]
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]int, waiters)
	sharedCount := new(atomic.Int64)

	// One caller enters first and blocks inside fn so the rest pile up
	// behind the in-flight call.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, _ := f.Do("k", func() (int, error) {
			calls.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Errorf("leader: got (%d, %v)", v, err)
		}
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := f.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
			if shared {
				sharedCount.Add(1)
			}
		}(i)
	}
	// Let every waiter reach the in-flight wait before the leader finishes:
	// they are all runnable and this sleep yields the scheduler to them;
	// nothing else can block them on the way into Do.
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d", i, v)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1 (every waiter shares the leader's flight)", got)
	}
	if got := sharedCount.Load(); got != waiters {
		t.Fatalf("%d of %d waiters shared the in-flight result", got, waiters)
	}
}

func TestFlightDoesNotCacheResultsOrErrors(t *testing.T) {
	var f Flight[string, int]
	boom := errors.New("boom")
	if _, err, _ := f.Do("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("first call: %v", err)
	}
	// The failed flight must not latch: the next call runs fn again and can
	// succeed.
	v, err, shared := f.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 || shared {
		t.Fatalf("second call: (%d, %v, shared=%v)", v, err, shared)
	}
	// And a successful result is not cached either.
	v, _, _ = f.Do("k", func() (int, error) { return 8, nil })
	if v != 8 {
		t.Fatalf("third call returned stale value %d", v)
	}
}

func TestFlightDistinctKeysDoNotBlock(t *testing.T) {
	var f Flight[int, int]
	blockA := make(chan struct{})
	startedA := make(chan struct{})
	go f.Do(1, func() (int, error) { close(startedA); <-blockA; return 1, nil })
	<-startedA
	// Key 2 must proceed while key 1 is in flight.
	v, err, _ := f.Do(2, func() (int, error) { return 2, nil })
	if err != nil || v != 2 {
		t.Fatalf("key 2 blocked or failed: (%d, %v)", v, err)
	}
	close(blockA)
}
