// Package parallel provides the bounded worker pool underneath the
// experiment runner and the facade's warmup paths. It is deliberately
// minimal: fan a slice of independent cells out across N workers, keep the
// results in input order, aggregate errors, and honor context cancellation.
// Order-preserving assembly is the property that lets parallel experiment
// runs render byte-identical reports to serial ones.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// RunCells evaluates fn over every cell on up to workers goroutines and
// returns the results in input order. workers <= 0 means GOMAXPROCS;
// workers == 1 (or a single cell) runs inline with no goroutines, so a
// serial run is exactly the plain loop. The first error cancels the context
// handed to fn; cells already started still finish, unstarted cells are
// abandoned. All errors observed are joined into the returned error,
// except that errors wrapping context.Canceled/DeadlineExceeded are
// treated as echoes of the pool's cancellation and dropped whenever a real
// error explains them — an fn with a private deadline of its own should
// translate it into a domain error before returning, or it will be
// filtered alongside the echoes.
func RunCells[C, R any](ctx context.Context, workers int, cells []C, fn func(ctx context.Context, cell C) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	results := make([]R, len(cells))
	if workers <= 1 {
		for i, c := range cells {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			r, err := fn(ctx, c)
			if err != nil {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r, err := fn(ctx, cells[i])
				if err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					cancel()
					continue
				}
				results[i] = r
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	// The first real error cancelled the context, so cells that poll it
	// (e.g. truecard's probe loops) come back with context.Canceled. Those
	// are echoes of the cancellation, not failures in their own right —
	// joining them would bury the actual error under worker-count-dependent
	// noise. They only count when no real error explains them.
	var real, cancels []error
	for _, e := range errs {
		if errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded) {
			cancels = append(cancels, e)
			continue
		}
		real = append(real, e)
	}
	if err := errors.Join(real...); err != nil {
		return results, err
	}
	if err := errors.Join(cancels...); err != nil {
		return results, err
	}
	// The caller's context was cancelled externally (no fn error): the
	// abandoned cells hold zero values, so the sweep must not look
	// successful.
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// Do runs the given independent tasks across up to workers goroutines and
// joins their errors. It is RunCells for setup work that produces results
// by side effect (each task writing its own destination).
func Do(ctx context.Context, workers int, tasks ...func() error) error {
	_, err := RunCells(ctx, workers, tasks, func(_ context.Context, task func() error) (struct{}, error) {
		return struct{}{}, task()
	})
	return err
}

// KeyedOnce is a concurrency-safe, lazily populated map with per-key
// once-semantics: Get builds each key's value exactly once even when many
// goroutines request it simultaneously; later callers block until the
// winning build finishes and then share its value. The zero value is ready
// to use. Workers fanned out by RunCells use it for shared caches that the
// serial code path built lazily (e.g. truecard's join-side hash tables).
type KeyedOnce[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*onceCell[V]
}

type onceCell[V any] struct {
	once sync.Once
	v    V
}

// Get returns the value for key, calling build to produce it if no other
// caller has (or is currently doing so). build runs outside the map lock,
// so builds of distinct keys proceed in parallel. build must not panic:
// like sync.Once, a panicking build marks the key done, and later Gets
// would return the zero value for it — don't recover around Get.
func (ko *KeyedOnce[K, V]) Get(key K, build func() V) V {
	ko.mu.Lock()
	if ko.m == nil {
		ko.m = make(map[K]*onceCell[V])
	}
	cell, ok := ko.m[key]
	if !ok {
		cell = &onceCell[V]{}
		ko.m[key] = cell
	}
	ko.mu.Unlock()
	cell.once.Do(func() { cell.v = build() })
	return cell.v
}
