// Package parallel provides the bounded worker pool underneath the
// experiment runner and the facade's warmup paths. It is deliberately
// minimal: fan a slice of independent cells out across N workers, keep the
// results in input order, aggregate errors, and honor context cancellation.
// Order-preserving assembly is the property that lets parallel experiment
// runs render byte-identical reports to serial ones.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// RunCells evaluates fn over every cell on up to workers goroutines and
// returns the results in input order. workers <= 0 means GOMAXPROCS;
// workers == 1 (or a single cell) runs inline with no goroutines, so a
// serial run is exactly the plain loop. The first error cancels the context
// handed to fn; cells already started still finish, unstarted cells are
// abandoned. All errors observed are joined into the returned error.
func RunCells[C, R any](ctx context.Context, workers int, cells []C, fn func(ctx context.Context, cell C) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	results := make([]R, len(cells))
	if workers <= 1 {
		for i, c := range cells {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			r, err := fn(ctx, c)
			if err != nil {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r, err := fn(ctx, cells[i])
				if err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					cancel()
					continue
				}
				results[i] = r
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return results, err
	}
	// The caller's context was cancelled externally (no fn error): the
	// abandoned cells hold zero values, so the sweep must not look
	// successful.
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// Do runs the given independent tasks across up to workers goroutines and
// joins their errors. It is RunCells for setup work that produces results
// by side effect (each task writing its own destination).
func Do(ctx context.Context, workers int, tasks ...func() error) error {
	_, err := RunCells(ctx, workers, tasks, func(_ context.Context, task func() error) (struct{}, error) {
		return struct{}{}, task()
	})
	return err
}
