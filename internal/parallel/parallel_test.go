package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCellsPreservesOrder(t *testing.T) {
	cells := make([]int, 100)
	for i := range cells {
		cells[i] = i
	}
	for _, workers := range []int{1, 2, 7, 100} {
		got, err := RunCells(context.Background(), workers, cells, func(_ context.Context, c int) (int, error) {
			// Sleep inversely to the index so later cells finish first and
			// any assembly-order bug shows up.
			time.Sleep(time.Duration((99-c)%7) * time.Millisecond)
			return c * c, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunCellsSerialAndParallelAgree(t *testing.T) {
	cells := []string{"a", "bb", "ccc", "dddd"}
	fn := func(_ context.Context, c string) (int, error) { return len(c), nil }
	serial, err := RunCells(context.Background(), 1, cells, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCells(context.Background(), 4, cells, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, serial[i], par[i])
		}
	}
}

func TestRunCellsJoinsErrors(t *testing.T) {
	cells := []int{0, 1, 2, 3}
	boom := errors.New("boom")
	_, err := RunCells(context.Background(), 4, cells, func(_ context.Context, c int) (int, error) {
		if c%2 == 1 {
			return 0, fmt.Errorf("cell %d: %w", c, boom)
		}
		return c, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestRunCellsStopsAfterError(t *testing.T) {
	cells := make([]int, 1000)
	for i := range cells {
		cells[i] = i
	}
	var ran atomic.Int64
	_, err := RunCells(context.Background(), 2, cells, func(_ context.Context, c int) (int, error) {
		ran.Add(1)
		if c == 0 {
			return 0, errors.New("early failure")
		}
		time.Sleep(time.Millisecond)
		return c, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if n := ran.Load(); n == int64(len(cells)) {
		t.Fatalf("all %d cells ran despite early failure", n)
	}
}

func TestRunCellsHonorsCancelledContext(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := RunCells(ctx, workers, []int{1, 2, 3}, func(_ context.Context, c int) (int, error) {
			return c, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
	}
}

func TestRunCellsExternalCancelMidRunIsAnError(t *testing.T) {
	// Cancellation from outside (not via an fn error) abandons unstarted
	// cells; the zero-filled partial results must not look like success.
	ctx, cancel := context.WithCancel(context.Background())
	cells := make([]int, 100)
	for i := range cells {
		cells[i] = i
	}
	_, err := RunCells(ctx, 2, cells, func(_ context.Context, c int) (int, error) {
		if c == 0 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return c, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("external mid-run cancel returned %v, want context.Canceled", err)
	}
}

func TestRunCellsEmpty(t *testing.T) {
	got, err := RunCells(context.Background(), 8, nil, func(_ context.Context, c int) (int, error) {
		return c, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v, %v", got, err)
	}
}

func TestDoRunsAllTasks(t *testing.T) {
	var a, b, c int
	err := Do(context.Background(), 3,
		func() error { a = 1; return nil },
		func() error { b = 2; return nil },
		func() error { c = 3; return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("tasks incomplete: %d %d %d", a, b, c)
	}
}

func TestDoPropagatesError(t *testing.T) {
	err := Do(context.Background(), 2,
		func() error { return nil },
		func() error { return errors.New("task failed") },
	)
	if err == nil || !strings.Contains(err.Error(), "task failed") {
		t.Fatalf("error lost: %v", err)
	}
}
