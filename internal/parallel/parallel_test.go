package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCellsPreservesOrder(t *testing.T) {
	cells := make([]int, 100)
	for i := range cells {
		cells[i] = i
	}
	for _, workers := range []int{1, 2, 7, 100} {
		got, err := RunCells(context.Background(), workers, cells, func(_ context.Context, c int) (int, error) {
			// Sleep inversely to the index so later cells finish first and
			// any assembly-order bug shows up.
			time.Sleep(time.Duration((99-c)%7) * time.Millisecond)
			return c * c, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunCellsSerialAndParallelAgree(t *testing.T) {
	cells := []string{"a", "bb", "ccc", "dddd"}
	fn := func(_ context.Context, c string) (int, error) { return len(c), nil }
	serial, err := RunCells(context.Background(), 1, cells, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCells(context.Background(), 4, cells, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, serial[i], par[i])
		}
	}
}

func TestRunCellsJoinsErrors(t *testing.T) {
	cells := []int{0, 1, 2, 3}
	boom := errors.New("boom")
	_, err := RunCells(context.Background(), 4, cells, func(_ context.Context, c int) (int, error) {
		if c%2 == 1 {
			return 0, fmt.Errorf("cell %d: %w", c, boom)
		}
		return c, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestRunCellsStopsAfterError(t *testing.T) {
	cells := make([]int, 1000)
	for i := range cells {
		cells[i] = i
	}
	var ran atomic.Int64
	_, err := RunCells(context.Background(), 2, cells, func(_ context.Context, c int) (int, error) {
		ran.Add(1)
		if c == 0 {
			return 0, errors.New("early failure")
		}
		time.Sleep(time.Millisecond)
		return c, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if n := ran.Load(); n == int64(len(cells)) {
		t.Fatalf("all %d cells ran despite early failure", n)
	}
}

func TestRunCellsErrorNotPollutedByCancelEchoes(t *testing.T) {
	// Workers that poll the context after a sibling's failure return
	// context.Canceled; those echoes must not drown out the real error or
	// make the error message depend on worker timing.
	cells := make([]int, 64)
	for i := range cells {
		cells[i] = i
	}
	boom := errors.New("real failure")
	_, err := RunCells(context.Background(), 8, cells, func(ctx context.Context, c int) (int, error) {
		if c == 0 {
			return 0, boom
		}
		for ctx.Err() == nil {
			time.Sleep(100 * time.Microsecond)
		}
		return 0, ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("real error lost: %v", err)
	}
	if strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("cancellation echoes joined into the error: %v", err)
	}
}

func TestRunCellsHonorsCancelledContext(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := RunCells(ctx, workers, []int{1, 2, 3}, func(_ context.Context, c int) (int, error) {
			return c, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
	}
}

func TestRunCellsExternalCancelMidRunIsAnError(t *testing.T) {
	// Cancellation from outside (not via an fn error) abandons unstarted
	// cells; the zero-filled partial results must not look like success.
	ctx, cancel := context.WithCancel(context.Background())
	cells := make([]int, 100)
	for i := range cells {
		cells[i] = i
	}
	_, err := RunCells(ctx, 2, cells, func(_ context.Context, c int) (int, error) {
		if c == 0 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return c, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("external mid-run cancel returned %v, want context.Canceled", err)
	}
}

func TestRunCellsEmpty(t *testing.T) {
	got, err := RunCells(context.Background(), 8, nil, func(_ context.Context, c int) (int, error) {
		return c, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v, %v", got, err)
	}
}

func TestDoRunsAllTasks(t *testing.T) {
	var a, b, c int
	err := Do(context.Background(), 3,
		func() error { a = 1; return nil },
		func() error { b = 2; return nil },
		func() error { c = 3; return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("tasks incomplete: %d %d %d", a, b, c)
	}
}

func TestDoPropagatesError(t *testing.T) {
	err := Do(context.Background(), 2,
		func() error { return nil },
		func() error { return errors.New("task failed") },
	)
	if err == nil || !strings.Contains(err.Error(), "task failed") {
		t.Fatalf("error lost: %v", err)
	}
}

func TestKeyedOnceBuildsEachKeyExactlyOnce(t *testing.T) {
	var ko KeyedOnce[int, int]
	var builds atomic.Int64
	const goroutines, keys = 32, 5
	results := make([][]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]int, keys)
			for k := 0; k < keys; k++ {
				out[k] = ko.Get(k, func() int {
					builds.Add(1)
					time.Sleep(time.Millisecond) // widen the race window
					return k * 100
				})
			}
			results[g] = out
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != keys {
		t.Fatalf("built %d values for %d keys", n, keys)
	}
	for g, out := range results {
		for k, v := range out {
			if v != k*100 {
				t.Fatalf("goroutine %d saw Get(%d) = %d, want %d", g, k, v, k*100)
			}
		}
	}
}

func TestKeyedOnceDistinctKeysBuildConcurrently(t *testing.T) {
	// Two builds that each wait for the other to start can only finish if
	// Get runs builds outside the map lock.
	var ko KeyedOnce[string, int]
	aStarted := make(chan struct{})
	bStarted := make(chan struct{})
	done := make(chan int, 2)
	go func() {
		done <- ko.Get("a", func() int { close(aStarted); <-bStarted; return 1 })
	}()
	go func() {
		done <- ko.Get("b", func() int { close(bStarted); <-aStarted; return 2 })
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("builds of distinct keys serialized (deadlock)")
		}
	}
}
