package plan

import (
	"fmt"
	"math"
	"strings"
	"time"

	"jobench/internal/query"
)

// NodeStats holds the per-operator actuals the engine collects during an
// instrumented execution, indexed by preorder node id (see NodeID).
// RowsOut is the operator's output cardinality, Blocks the number of
// work-settlement blocks it processed, WorkUnits the deterministic work
// charged at this node, and WallNanos the inclusive wall-clock time of
// the subtree rooted here.
type NodeStats struct {
	RowsOut   int64
	Blocks    int64
	WorkUnits int64
	WallNanos int64
}

// NumNodes returns the number of operators in the tree: callers size a
// []NodeStats slice with it before an instrumented execution.
func NumNodes(n *Node) int {
	if n == nil {
		return 0
	}
	// Binary join trees over k relations always have 2k-1 nodes.
	return 2*n.S.Count() - 1
}

// NodeID arithmetic: plans are shared across concurrent executions, so
// nodes carry no mutable id field. Ids are preorder positions derived on
// the fly — the root is 0, a node's left child is id+1, and its right
// child is id + 2*|left subtree relations| (a binary tree over k
// relations has 2k-1 nodes). The engine and the renderers below compute
// the same numbering independently.

// LeftChildID returns the preorder id of n's left child given n's id.
func LeftChildID(id int) int { return id + 1 }

// RightChildID returns the preorder id of n's right child given n's id.
func (n *Node) RightChildID(id int) int { return id + 2*n.Left.S.Count() }

// QError is the paper's q-error: max(est/actual, actual/est), with both
// sides clamped to 1 row so empty intermediates stay finite (§3.1).
func QError(est float64, actual float64) float64 {
	e := math.Max(est, 1)
	a := math.Max(actual, 1)
	return math.Max(e/a, a/e)
}

// AnalyzedNode pairs one operator with its planning-time estimate and
// its executed actuals, in preorder (ID is both the slice position and
// the NodeStats index).
type AnalyzedNode struct {
	ID    int
	Depth int
	// Set is the relation set this operator's subtree joins.
	Set query.BitSet
	// Op is the operator label: "Scan <table> <alias>" or the join
	// algorithm name.
	Op string
	// Cond renders the scan selection or the join predicates.
	Cond       string
	EstRows    float64
	ActualRows int64
	QError     float64
	WorkUnits  int64
	Blocks     int64
	WallNanos  int64
}

// Analyze flattens the plan into preorder AnalyzedNodes, joining each
// operator with its stats (stats may be shorter or nil: missing entries
// yield zero actuals — the node never ran, e.g. past a work-limit abort).
func Analyze(n *Node, g *query.Graph, stats []NodeStats) []AnalyzedNode {
	out := make([]AnalyzedNode, 0, NumNodes(n))
	analyze(&out, n, g, stats, 0, 0)
	return out
}

func analyze(out *[]AnalyzedNode, n *Node, g *query.Graph, stats []NodeStats, id, depth int) {
	an := AnalyzedNode{ID: id, Depth: depth, Set: n.S, EstRows: n.ECard}
	if id < len(stats) {
		st := stats[id]
		an.ActualRows = st.RowsOut
		an.Blocks = st.Blocks
		an.WorkUnits = st.WorkUnits
		an.WallNanos = st.WallNanos
	}
	an.QError = QError(n.ECard, float64(an.ActualRows))
	if n.IsLeaf() {
		rel := g.Q.Rels[n.Rel]
		an.Op = fmt.Sprintf("Scan %s %s", rel.Table, rel.Alias)
		if len(rel.Preds) > 0 {
			preds := make([]string, len(rel.Preds))
			for i, p := range rel.Preds {
				preds[i] = p.String()
			}
			an.Cond = strings.Join(preds, " AND ")
		}
		*out = append(*out, an)
		return
	}
	an.Op = n.Algo.String()
	conds := make([]string, 0, len(n.EdgeIdxs))
	for _, ei := range n.EdgeIdxs {
		for _, j := range g.Edges[ei].Preds {
			conds = append(conds, fmt.Sprintf("%s.%s=%s.%s", j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol))
		}
	}
	an.Cond = strings.Join(conds, " AND ")
	*out = append(*out, an)
	analyze(out, n.Left, g, stats, LeftChildID(id), depth+1)
	analyze(out, n.Right, g, stats, n.RightChildID(id), depth+1)
}

// ExplainAnalyze renders the plan as an indented tree with estimated vs
// actual rows, per-node q-error, work units, and wall time — the
// EXPLAIN ANALYZE view of the paper's estimated-vs-true comparison.
func ExplainAnalyze(n *Node, g *query.Graph, stats []NodeStats) string {
	var b strings.Builder
	for _, an := range Analyze(n, g, stats) {
		indent := strings.Repeat("  ", an.Depth)
		fmt.Fprintf(&b, "%s%s", indent, an.Op)
		if an.Cond != "" {
			fmt.Fprintf(&b, " [%s]", an.Cond)
		}
		fmt.Fprintf(&b, "  (est %.0f rows, actual %d rows, q-err %s, work %d, %.2fms)\n",
			an.EstRows, an.ActualRows, fmtQErr(an.QError), an.WorkUnits,
			float64(an.WallNanos)/float64(time.Millisecond))
	}
	return b.String()
}

func fmtQErr(q float64) string {
	if q >= 100 {
		return fmt.Sprintf("%.0f", q)
	}
	return fmt.Sprintf("%.1f", q)
}
