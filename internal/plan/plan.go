// Package plan defines physical operator trees: scans and joins annotated
// with join algorithms, the tree-shape taxonomy of the paper's §6.2
// (left-deep / right-deep / zig-zag / bushy), and the cost walker that
// prices a plan under any cardinality provider and cost model — the
// mechanism behind the paper's "optimize with estimates, cost with truth"
// methodology.
package plan

import (
	"fmt"
	"strings"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/query"
	"jobench/internal/storage"
)

// JoinAlgo enumerates the physical join operators of the engine.
type JoinAlgo uint8

const (
	// HashJoin builds a hash table from the LEFT child and probes with the
	// right child (the textbook convention adopted in §6.2: left-deep
	// trees build a new table from each join result, right-deep trees
	// build from each base relation).
	HashJoin JoinAlgo = iota
	// IndexNLJoin looks each left-child tuple up in an index on the right
	// child, which must be a base relation.
	IndexNLJoin
	// NestedLoopJoin is the classic non-indexed nested loop (the risky
	// operator §4.1 disables).
	NestedLoopJoin
	// SortMergeJoin sorts both inputs and merges.
	SortMergeJoin
)

func (a JoinAlgo) String() string {
	switch a {
	case HashJoin:
		return "HashJoin"
	case IndexNLJoin:
		return "IndexNLJoin"
	case NestedLoopJoin:
		return "NestedLoop"
	case SortMergeJoin:
		return "SortMerge"
	default:
		return fmt.Sprintf("JoinAlgo(%d)", uint8(a))
	}
}

// Node is one operator of a physical plan.
type Node struct {
	// S is the set of relations this subtree joins.
	S query.BitSet
	// Rel is the relation index for leaves, -1 for joins.
	Rel int
	// Algo, Left, Right and EdgeIdxs describe join nodes: EdgeIdxs are the
	// join-graph edges applied here (the first predicate of the first edge
	// is the physical key; the rest are residual filters).
	Algo     JoinAlgo
	Left     *Node
	Right    *Node
	EdgeIdxs []int

	// ECard and ECost are the optimizer's estimates at planning time.
	ECard float64
	ECost float64
}

// Leaf returns a scan node for relation r.
func Leaf(r int) *Node { return &Node{S: query.Bit(r), Rel: r} }

// IsLeaf reports whether n is a base-relation scan.
func (n *Node) IsLeaf() bool { return n.Rel >= 0 }

// Relations returns the number of relations joined by this subtree.
func (n *Node) Relations() int { return n.S.Count() }

// Shape classifies join trees (§6.2).
type Shape uint8

const (
	// Bushy allows arbitrary trees.
	Bushy Shape = iota
	// LeftDeep requires every join's right child to be a base relation.
	LeftDeep
	// RightDeep requires every join's left child to be a base relation.
	RightDeep
	// ZigZag requires at least one base-relation child per join.
	ZigZag
)

func (s Shape) String() string {
	switch s {
	case Bushy:
		return "bushy"
	case LeftDeep:
		return "left-deep"
	case RightDeep:
		return "right-deep"
	case ZigZag:
		return "zig-zag"
	default:
		return fmt.Sprintf("Shape(%d)", uint8(s))
	}
}

// Allows reports whether a join of (left, right) children conforms to the
// shape restriction.
func (s Shape) Allows(left, right *Node) bool {
	switch s {
	case LeftDeep:
		return right.IsLeaf()
	case RightDeep:
		return left.IsLeaf()
	case ZigZag:
		return left.IsLeaf() || right.IsLeaf()
	default:
		return true
	}
}

// Conforms reports whether an entire tree satisfies the shape.
func Conforms(n *Node, s Shape) bool {
	if n == nil || n.IsLeaf() {
		return true
	}
	return s.Allows(n.Left, n.Right) && Conforms(n.Left, s) && Conforms(n.Right, s)
}

// IndexChecker answers whether an index exists on (table, column); the
// index.Set type implements it. It is how physical design (§4.3) reaches
// the optimizer.
type IndexChecker interface {
	Has(table, column string) bool
}

// NoIndexes is an IndexChecker with no indexes.
type NoIndexes struct{}

// Has implements IndexChecker.
func (NoIndexes) Has(string, string) bool { return false }

// RightKeyColumn returns the table and column of the physical join key on
// the right child (the index side for IndexNLJoin).
func (n *Node) RightKeyColumn(g *query.Graph) (table, col string) {
	if len(n.EdgeIdxs) == 0 {
		panic("plan: join node without edges")
	}
	e := g.Edges[n.EdgeIdxs[0]]
	j := e.Preds[0]
	// The right child is a single relation for INL.
	r := n.Right.S.First()
	rel := g.Q.Rels[r]
	if g.Q.RelIndex(j.LeftAlias) == r {
		return rel.Table, j.LeftCol
	}
	return rel.Table, j.RightCol
}

// Cost prices the plan under the given cardinality provider and cost model.
// Widths come from the database schema; sizes of base relations come from
// the provider so that the same walker serves both estimated costs (during
// optimization) and "true costs" (the §6 methodology of re-costing a plan
// with true cardinalities).
func Cost(n *Node, g *query.Graph, db *storage.Database, cards cardest.Provider, m costmodel.Model) float64 {
	cost, _ := costAndCard(n, g, db, cards, m)
	return cost
}

func costAndCard(n *Node, g *query.Graph, db *storage.Database, cards cardest.Provider, m costmodel.Model) (cost, card float64) {
	if n.IsLeaf() {
		t := db.MustTable(g.Q.Rels[n.Rel].Table)
		rows := cards.SansSelection(n.S, n.Rel) // |R| (full scan reads everything)
		return m.ScanCost(rows, float64(t.TupleWidth())), cards.Card(n.S)
	}
	out := cards.Card(n.S)
	lCost, lCard := costAndCard(n.Left, g, db, cards, m)
	switch n.Algo {
	case IndexNLJoin:
		// The right child is read through the index: no scan cost for it.
		r := n.Right.Rel
		t := db.MustTable(g.Q.Rels[r].Table)
		lookups := cards.SansSelection(n.S, r)
		innerRows := cards.SansSelection(n.Right.S, r)
		return lCost + m.IndexJoinCost(lCard, lookups, out, innerRows, float64(t.TupleWidth())), out
	case HashJoin:
		rCost, rCard := costAndCard(n.Right, g, db, cards, m)
		return lCost + rCost + m.HashJoinCost(lCard, rCard, out), out
	case SortMergeJoin:
		rCost, rCard := costAndCard(n.Right, g, db, cards, m)
		return lCost + rCost + m.SortMergeJoinCost(lCard, rCard, out), out
	case NestedLoopJoin:
		rCost, rCard := costAndCard(n.Right, g, db, cards, m)
		return lCost + rCost + m.NestedLoopJoinCost(lCard, rCard, out), out
	default:
		panic(fmt.Sprintf("plan: unknown join algorithm %v", n.Algo))
	}
}

// Annotate fills ECard/ECost on every node from the given provider/model.
func Annotate(n *Node, g *query.Graph, db *storage.Database, cards cardest.Provider, m costmodel.Model) {
	if n == nil {
		return
	}
	Annotate(n.Left, g, db, cards, m)
	Annotate(n.Right, g, db, cards, m)
	cost, card := costAndCard(n, g, db, cards, m)
	n.ECost, n.ECard = cost, card
}

// Explain renders the plan as an indented EXPLAIN-style tree.
func Explain(n *Node, g *query.Graph) string {
	var b strings.Builder
	explain(&b, n, g, 0)
	return b.String()
}

func explain(b *strings.Builder, n *Node, g *query.Graph, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsLeaf() {
		rel := g.Q.Rels[n.Rel]
		fmt.Fprintf(b, "%sScan %s %s", indent, rel.Table, rel.Alias)
		if len(rel.Preds) > 0 {
			preds := make([]string, len(rel.Preds))
			for i, p := range rel.Preds {
				preds[i] = p.String()
			}
			fmt.Fprintf(b, " [%s]", strings.Join(preds, " AND "))
		}
		fmt.Fprintf(b, "  (est %.0f rows)\n", n.ECard)
		return
	}
	conds := make([]string, 0, len(n.EdgeIdxs))
	for _, ei := range n.EdgeIdxs {
		for _, j := range g.Edges[ei].Preds {
			conds = append(conds, fmt.Sprintf("%s.%s=%s.%s", j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol))
		}
	}
	fmt.Fprintf(b, "%s%s on %s  (est %.0f rows, cost %.1f)\n",
		indent, n.Algo, strings.Join(conds, " AND "), n.ECard, n.ECost)
	explain(b, n.Left, g, depth+1)
	explain(b, n.Right, g, depth+1)
}

// Validate checks structural invariants of a plan for the given graph: the
// root covers exactly the relation set, children partition parents, edges
// connect the two sides, INL right children are leaves, and every leaf
// appears once.
func Validate(n *Node, g *query.Graph, want query.BitSet) error {
	if n == nil {
		return fmt.Errorf("plan: nil node")
	}
	if n.S != want {
		return fmt.Errorf("plan: node covers %v, want %v", n.S, want)
	}
	if n.IsLeaf() {
		if !n.S.Single() || n.S.First() != n.Rel {
			return fmt.Errorf("plan: leaf %d covers %v", n.Rel, n.S)
		}
		return nil
	}
	if n.Left == nil || n.Right == nil {
		return fmt.Errorf("plan: join with missing child")
	}
	if n.Left.S.Overlaps(n.Right.S) || n.Left.S.Union(n.Right.S) != n.S {
		return fmt.Errorf("plan: children %v/%v do not partition %v", n.Left.S, n.Right.S, n.S)
	}
	if len(n.EdgeIdxs) == 0 {
		return fmt.Errorf("plan: cross product at %v", n.S)
	}
	for _, ei := range n.EdgeIdxs {
		e := g.Edges[ei]
		u, v := query.Bit(e.U), query.Bit(e.V)
		ok := (n.Left.S.Contains(u) && n.Right.S.Contains(v)) ||
			(n.Left.S.Contains(v) && n.Right.S.Contains(u))
		if !ok {
			return fmt.Errorf("plan: edge %d does not span the children of %v", ei, n.S)
		}
	}
	if n.Algo == IndexNLJoin && !n.Right.IsLeaf() {
		return fmt.Errorf("plan: IndexNLJoin with non-leaf right child at %v", n.S)
	}
	if err := Validate(n.Left, g, n.Left.S); err != nil {
		return err
	}
	return Validate(n.Right, g, n.Right.S)
}
