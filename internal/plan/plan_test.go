package plan

import (
	"strings"
	"testing"

	"jobench/internal/costmodel"
	"jobench/internal/query"
	"jobench/internal/storage"
)

// fakeCards is a stub provider with explicit cardinalities.
type fakeCards struct {
	cards map[query.BitSet]float64
	base  map[int]float64 // raw table sizes
}

func (f fakeCards) Name() string { return "fake" }
func (f fakeCards) Card(s query.BitSet) float64 {
	if v, ok := f.cards[s]; ok {
		return v
	}
	return 1
}
func (f fakeCards) SansSelection(s query.BitSet, r int) float64 {
	if s.Single() {
		if v, ok := f.base[r]; ok {
			return v
		}
	}
	return f.Card(s) * 2
}

func chainSetup() (*query.Graph, *storage.Database) {
	db := storage.NewDatabase()
	for _, name := range []string{"A", "B", "C"} {
		id := storage.NewIntColumn("id")
		fk := storage.NewIntColumn("fk")
		for i := int64(0); i < 10; i++ {
			id.AppendInt(i)
			fk.AppendInt(i % 5)
		}
		db.Add(storage.NewTable(name, id, fk))
	}
	q := &query.Query{
		ID: "chain",
		Rels: []query.Rel{
			{Alias: "a", Table: "A", Preds: []*query.Pred{query.LtInt("id", 5)}},
			{Alias: "b", Table: "B"},
			{Alias: "c", Table: "C"},
		},
		Joins: []query.Join{
			{LeftAlias: "a", LeftCol: "id", RightAlias: "b", RightCol: "fk"},
			{LeftAlias: "b", LeftCol: "id", RightAlias: "c", RightCol: "fk"},
		},
	}
	return query.MustBuildGraph(q), db
}

func linearPlan(algo JoinAlgo) *Node {
	j1 := &Node{S: query.NewBitSet(0, 1), Rel: -1, Algo: algo,
		Left: Leaf(0), Right: Leaf(1), EdgeIdxs: []int{0}}
	return &Node{S: query.NewBitSet(0, 1, 2), Rel: -1, Algo: algo,
		Left: j1, Right: Leaf(2), EdgeIdxs: []int{1}}
}

func TestShapeClassification(t *testing.T) {
	leftDeep := linearPlan(HashJoin)
	if !Conforms(leftDeep, LeftDeep) || !Conforms(leftDeep, ZigZag) || !Conforms(leftDeep, Bushy) {
		t.Fatal("left-deep plan misclassified")
	}
	if Conforms(leftDeep, RightDeep) {
		t.Fatal("left-deep plan accepted as right-deep")
	}
	rightDeep := &Node{S: query.NewBitSet(0, 1, 2), Rel: -1, Algo: HashJoin,
		Left: Leaf(2), EdgeIdxs: []int{1},
		Right: &Node{S: query.NewBitSet(0, 1), Rel: -1, Algo: HashJoin,
			Left: Leaf(0), Right: Leaf(1), EdgeIdxs: []int{0}}}
	if !Conforms(rightDeep, RightDeep) || Conforms(rightDeep, LeftDeep) {
		t.Fatal("right-deep plan misclassified")
	}
	if !Conforms(rightDeep, ZigZag) {
		t.Fatal("right-deep is a zig-zag")
	}
	// A one-leaf tree conforms to everything.
	if !Conforms(Leaf(0), LeftDeep) || !Conforms(Leaf(0), RightDeep) {
		t.Fatal("leaf misclassified")
	}
}

func TestShapeAllows(t *testing.T) {
	joined := &Node{S: query.NewBitSet(0, 1), Rel: -1}
	leaf := Leaf(2)
	if !LeftDeep.Allows(joined, leaf) || LeftDeep.Allows(leaf, joined) {
		t.Fatal("LeftDeep.Allows wrong")
	}
	if !RightDeep.Allows(leaf, joined) || RightDeep.Allows(joined, leaf) {
		t.Fatal("RightDeep.Allows wrong")
	}
	if !ZigZag.Allows(leaf, joined) || !ZigZag.Allows(joined, leaf) || ZigZag.Allows(joined, joined) {
		t.Fatal("ZigZag.Allows wrong")
	}
	if !Bushy.Allows(joined, joined) {
		t.Fatal("Bushy.Allows wrong")
	}
}

func TestValidate(t *testing.T) {
	g, _ := chainSetup()
	good := linearPlan(HashJoin)
	if err := Validate(good, g, query.FullSet(3)); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	// Wrong coverage.
	if err := Validate(good, g, query.FullSet(2)); err == nil {
		t.Fatal("wrong coverage accepted")
	}
	// Cross product: join of a and c has no edge.
	cross := &Node{S: query.NewBitSet(0, 2), Rel: -1, Algo: HashJoin,
		Left: Leaf(0), Right: Leaf(2)}
	if err := Validate(cross, g, query.NewBitSet(0, 2)); err == nil {
		t.Fatal("cross product accepted")
	}
	// INL with non-leaf right child.
	bad := linearPlan(HashJoin)
	badRoot := &Node{S: query.FullSet(3), Rel: -1, Algo: IndexNLJoin,
		Left: Leaf(2), Right: bad.Left, EdgeIdxs: []int{1}}
	if err := Validate(badRoot, g, query.FullSet(3)); err == nil {
		t.Fatal("INL with join right child accepted")
	}
	// Overlapping children.
	overlap := &Node{S: query.NewBitSet(0, 1), Rel: -1, Algo: HashJoin,
		Left: Leaf(0), Right: &Node{S: query.NewBitSet(0, 1), Rel: -1, Algo: HashJoin, Left: Leaf(0), Right: Leaf(1), EdgeIdxs: []int{0}},
		EdgeIdxs: []int{0}}
	if err := Validate(overlap, g, query.NewBitSet(0, 1)); err == nil {
		t.Fatal("overlapping children accepted")
	}
}

func TestCostWalker(t *testing.T) {
	g, db := chainSetup()
	cards := fakeCards{
		cards: map[query.BitSet]float64{
			query.Bit(0): 5, query.Bit(1): 10, query.Bit(2): 10,
			query.NewBitSet(0, 1): 10, query.FullSet(3): 20,
		},
		base: map[int]float64{0: 10, 1: 10, 2: 10},
	}
	m := costmodel.NewSimple()
	p := linearPlan(HashJoin)
	got := Cost(p, g, db, cards, m)
	// Scans: 3 tables * τ*10 = 6. HJ1 out=10, HJ2 out=20. Total 36.
	if got != 36 {
		t.Fatalf("cost = %g, want 36", got)
	}

	// INL at the top: right leaf scan is not charged; cost adds
	// λ*max(lookups, outer) with lookups = SansSelection = 2*out = 40.
	inl := linearPlan(HashJoin)
	inl.Algo = IndexNLJoin
	got = Cost(inl, g, db, cards, m)
	// a scan 2 + b scan 2 + HJ1 10 + INL 2*40=80 -> 94.
	if got != 94 {
		t.Fatalf("INL cost = %g, want 94", got)
	}

	// Annotate fills estimates on every node.
	Annotate(p, g, db, cards, m)
	if p.ECard != 20 || p.ECost != 36 {
		t.Fatalf("annotation = (%g, %g)", p.ECard, p.ECost)
	}
	if p.Left.ECard != 10 {
		t.Fatalf("child annotation = %g", p.Left.ECard)
	}
}

func TestCostOrderingAcrossAlgorithms(t *testing.T) {
	g, db := chainSetup()
	cards := fakeCards{
		cards: map[query.BitSet]float64{
			query.Bit(0): 1000, query.Bit(1): 1000, query.Bit(2): 1000,
			query.NewBitSet(0, 1): 1000, query.FullSet(3): 1000,
		},
		base: map[int]float64{0: 1000, 1: 1000, 2: 1000},
	}
	for _, m := range []costmodel.Model{costmodel.NewPostgres(), costmodel.NewSimple()} {
		hj := Cost(linearPlan(HashJoin), g, db, cards, m)
		nl := Cost(linearPlan(NestedLoopJoin), g, db, cards, m)
		if nl <= hj {
			t.Errorf("%s: NLJ (%g) not more expensive than HJ (%g) at 1000x1000", m.Name(), nl, hj)
		}
	}
}

func TestExplain(t *testing.T) {
	g, _ := chainSetup()
	p := linearPlan(HashJoin)
	out := Explain(p, g)
	for _, want := range []string{"HashJoin", "Scan A a", "Scan B b", "Scan C c", "b.id=c.fk", "id < 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestRightKeyColumn(t *testing.T) {
	g, _ := chainSetup()
	j1 := &Node{S: query.NewBitSet(0, 1), Rel: -1, Algo: IndexNLJoin,
		Left: Leaf(0), Right: Leaf(1), EdgeIdxs: []int{0}}
	table, col := j1.RightKeyColumn(g)
	if table != "B" || col != "fk" {
		t.Fatalf("RightKeyColumn = %s.%s, want B.fk", table, col)
	}
	// Mirror orientation.
	j2 := &Node{S: query.NewBitSet(0, 1), Rel: -1, Algo: IndexNLJoin,
		Left: Leaf(1), Right: Leaf(0), EdgeIdxs: []int{0}}
	table, col = j2.RightKeyColumn(g)
	if table != "A" || col != "id" {
		t.Fatalf("RightKeyColumn = %s.%s, want A.id", table, col)
	}
}

func TestAlgoAndShapeStrings(t *testing.T) {
	for _, a := range []JoinAlgo{HashJoin, IndexNLJoin, NestedLoopJoin, SortMergeJoin} {
		if a.String() == "" || strings.HasPrefix(a.String(), "JoinAlgo") {
			t.Errorf("bad algo string %q", a.String())
		}
	}
	for _, s := range []Shape{Bushy, LeftDeep, RightDeep, ZigZag} {
		if s.String() == "" || strings.HasPrefix(s.String(), "Shape(") {
			t.Errorf("bad shape string %q", s.String())
		}
	}
}
