// Package query defines the logical query model of the benchmark:
// select-project-join queries over aliased relations with base-table
// predicates and equi-join predicates, and the join graph derived from
// them. Relations of a query are numbered 0..n-1 and sets of relations are
// represented as 64-bit bitsets, which is what the optimizer's dynamic
// programming, the true-cardinality store, and all cardinality providers
// key on.
package query

import (
	"math/bits"
	"strconv"
	"strings"
)

// BitSet is a set of relation indexes (up to 64 relations per query; JOB
// queries have at most 17).
type BitSet uint64

// NewBitSet returns the set containing the given relation indexes.
func NewBitSet(rels ...int) BitSet {
	var s BitSet
	for _, r := range rels {
		s |= 1 << uint(r)
	}
	return s
}

// Bit returns the singleton set {r}.
func Bit(r int) BitSet { return 1 << uint(r) }

// Has reports whether r is in the set.
func (s BitSet) Has(r int) bool { return s&(1<<uint(r)) != 0 }

// Add returns s with r added.
func (s BitSet) Add(r int) BitSet { return s | 1<<uint(r) }

// Remove returns s with r removed.
func (s BitSet) Remove(r int) BitSet { return s &^ (1 << uint(r)) }

// Union returns the set union.
func (s BitSet) Union(o BitSet) BitSet { return s | o }

// Intersect returns the set intersection.
func (s BitSet) Intersect(o BitSet) BitSet { return s & o }

// Minus returns the set difference s \ o.
func (s BitSet) Minus(o BitSet) BitSet { return s &^ o }

// Overlaps reports whether the sets share an element.
func (s BitSet) Overlaps(o BitSet) bool { return s&o != 0 }

// Contains reports whether o is a subset of s.
func (s BitSet) Contains(o BitSet) bool { return s&o == o }

// Empty reports whether the set is empty.
func (s BitSet) Empty() bool { return s == 0 }

// Count returns the number of elements.
func (s BitSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Single reports whether the set has exactly one element.
func (s BitSet) Single() bool { return s != 0 && s&(s-1) == 0 }

// First returns the smallest element of a non-empty set.
func (s BitSet) First() int { return bits.TrailingZeros64(uint64(s)) }

// Elems returns the elements in ascending order.
func (s BitSet) Elems() []int {
	out := make([]int, 0, s.Count())
	for t := s; t != 0; t &= t - 1 {
		out = append(out, bits.TrailingZeros64(uint64(t)))
	}
	return out
}

// ForEach calls f for every element in ascending order.
func (s BitSet) ForEach(f func(r int)) {
	for t := s; t != 0; t &= t - 1 {
		f(bits.TrailingZeros64(uint64(t)))
	}
}

// SubsetsProper calls f for every non-empty proper subset of s. It uses the
// standard descending-subset enumeration trick.
func (s BitSet) SubsetsProper(f func(sub BitSet)) {
	for sub := (s - 1) & s; sub != 0; sub = (sub - 1) & s {
		f(sub)
	}
}

// FullSet returns the set {0, .., n-1}.
func FullSet(n int) BitSet {
	if n >= 64 {
		panic("query: bitset overflow")
	}
	return BitSet(1)<<uint(n) - 1
}

// String renders the set as {0,2,5}.
func (s BitSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(r int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(r))
	})
	b.WriteByte('}')
	return b.String()
}
