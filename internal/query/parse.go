package query

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSQL parses a select-project-join query in the JOB dialect back into a
// Query. The grammar covers exactly the workload's SQL surface:
//
//	SELECT <ignored> FROM tbl alias [, tbl alias]...
//	WHERE cond [AND cond]... [;]
//
//	cond := a.c = a2.c2                  (equi-join)
//	      | a.c <op> <int>               (op: = != <> < <= > >=)
//	      | a.c = '<str>' | a.c != '<str>' | a.c <> '<str>'
//	      | a.c BETWEEN <int> AND <int>
//	      | a.c IN (<int|str list>)
//	      | a.c [NOT] LIKE '<pattern>'
//	      | a.c IS [NOT] NULL
//	      | (cond OR cond [OR cond]...)
//
// Keywords are case-insensitive; strings use single quotes with ” escaping.
// Together with Query.SQL it round-trips the entire JOB workload, so users
// can define their own queries as text.
func ParseSQL(id, sql string) (*Query, error) {
	p := &parser{toks: tokenize(sql)}
	q := &Query{ID: id}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	// Skip the projection list: everything up to FROM.
	for !p.atKeyword("FROM") {
		if p.eof() {
			return nil, fmt.Errorf("query %s: missing FROM", id)
		}
		p.next()
	}
	p.next() // FROM
	// Relation list.
	for {
		table, err := p.ident()
		if err != nil {
			return nil, fmt.Errorf("query %s: table name: %v", id, err)
		}
		alias := table
		if p.peekKind() == tokIdent && !p.atKeyword("WHERE") {
			alias, _ = p.ident()
		}
		q.Rels = append(q.Rels, Rel{Alias: alias, Table: table})
		if p.atPunct(",") {
			p.next()
			continue
		}
		break
	}
	if p.eof() || p.atPunct(";") {
		return q, nil
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	for {
		if err := p.condition(q); err != nil {
			return nil, fmt.Errorf("query %s: %v", id, err)
		}
		if p.atKeyword("AND") {
			p.next()
			continue
		}
		break
	}
	if p.atPunct(";") {
		p.next()
	}
	if !p.eof() {
		return nil, fmt.Errorf("query %s: trailing input near %q", id, p.peekText())
	}
	return q, nil
}

// --- tokenizer ---------------------------------------------------------------

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokOp    // = != <> < <= > >=
	tokPunct // ( ) , . ;
)

type token struct {
	kind tokKind
	text string
}

func tokenize(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			// String literal with '' escaping.
			j := i + 1
			var b strings.Builder
			for j < len(s) {
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' {
						b.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				b.WriteByte(s[j])
				j++
			}
			toks = append(toks, token{tokString, b.String()})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9'):
			j := i + 1
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j]})
			i = j
		case isIdentChar(c):
			j := i
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		case c == '<' || c == '>' || c == '=' || c == '!':
			j := i + 1
			if j < len(s) && (s[j] == '=' || (c == '<' && s[j] == '>')) {
				j++
			}
			toks = append(toks, token{tokOp, s[i:j]})
			i = j
		case c == '(' || c == ')' || c == ',' || c == '.' || c == ';':
			toks = append(toks, token{tokPunct, string(c)})
			i++
		default:
			// Unknown byte: emit as punct so the parser reports it.
			toks = append(toks, token{tokPunct, string(c)})
			i++
		}
	}
	return toks
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// --- parser ------------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() (token, bool) {
	if p.eof() {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) peekKind() tokKind {
	t, ok := p.peek()
	if !ok {
		return tokPunct
	}
	return t.kind
}

func (p *parser) peekText() string {
	t, ok := p.peek()
	if !ok {
		return "<eof>"
	}
	return t.text
}

func (p *parser) next() token {
	t, _ := p.peek()
	p.pos++
	return t
}

func (p *parser) atKeyword(kw string) bool {
	t, ok := p.peek()
	return ok && t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) atPunct(s string) bool {
	t, ok := p.peek()
	return ok && t.kind == tokPunct && t.text == s
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return fmt.Errorf("expected %s, found %q", kw, p.peekText())
	}
	p.next()
	return nil
}

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return fmt.Errorf("expected %q, found %q", s, p.peekText())
	}
	p.next()
	return nil
}

func (p *parser) ident() (string, error) {
	t, ok := p.peek()
	if !ok || t.kind != tokIdent {
		return "", fmt.Errorf("expected identifier, found %q", p.peekText())
	}
	p.next()
	return t.text, nil
}

// colRef parses alias.column.
func (p *parser) colRef() (alias, col string, err error) {
	alias, err = p.ident()
	if err != nil {
		return "", "", err
	}
	if err := p.expectPunct("."); err != nil {
		return "", "", err
	}
	col, err = p.ident()
	if err != nil {
		return "", "", err
	}
	return alias, col, nil
}

// condition parses one WHERE conjunct into either a join or a predicate and
// attaches it to q.
func (p *parser) condition(q *Query) error {
	if p.atPunct("(") {
		// Parenthesised disjunction.
		p.next()
		alias, pred, err := p.orChain()
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		return attachPred(q, alias, pred)
	}
	alias, col, err := p.colRef()
	if err != nil {
		return err
	}
	// Join predicate: a.c = a2.c2 (right side is a column reference).
	if t, ok := p.peek(); ok && t.kind == tokOp && t.text == "=" {
		if p.pos+2 < len(p.toks) &&
			p.toks[p.pos+1].kind == tokIdent &&
			p.toks[p.pos+2].kind == tokPunct && p.toks[p.pos+2].text == "." {
			p.next() // =
			a2, c2, err := p.colRef()
			if err != nil {
				return err
			}
			q.Joins = append(q.Joins, Join{LeftAlias: alias, LeftCol: col, RightAlias: a2, RightCol: c2})
			return nil
		}
	}
	pred, err := p.predTail(col)
	if err != nil {
		return err
	}
	return attachPred(q, alias, pred)
}

// orChain parses cond OR cond [OR cond]... where all conds are predicates on
// the same alias.
func (p *parser) orChain() (string, *Pred, error) {
	alias, col, err := p.colRef()
	if err != nil {
		return "", nil, err
	}
	first, err := p.predTail(col)
	if err != nil {
		return "", nil, err
	}
	preds := []*Pred{first}
	for p.atKeyword("OR") {
		p.next()
		a2, c2, err := p.colRef()
		if err != nil {
			return "", nil, err
		}
		if a2 != alias {
			return "", nil, fmt.Errorf("OR across aliases %s/%s not supported", alias, a2)
		}
		next, err := p.predTail(c2)
		if err != nil {
			return "", nil, err
		}
		preds = append(preds, next)
	}
	if len(preds) == 1 {
		return alias, preds[0], nil
	}
	return alias, Or(preds...), nil
}

// predTail parses the operator and operands of a base-table predicate whose
// column has already been consumed.
func (p *parser) predTail(col string) (*Pred, error) {
	switch {
	case p.atKeyword("BETWEEN"):
		p.next()
		lo, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.number()
		if err != nil {
			return nil, err
		}
		return Between(col, lo, hi), nil
	case p.atKeyword("IN"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var ints []int64
		var strs []string
		for {
			t, ok := p.peek()
			if !ok {
				return nil, fmt.Errorf("unterminated IN list")
			}
			switch t.kind {
			case tokNumber:
				v, _ := strconv.ParseInt(t.text, 10, 64)
				ints = append(ints, v)
			case tokString:
				strs = append(strs, t.text)
			default:
				return nil, fmt.Errorf("bad IN element %q", t.text)
			}
			p.next()
			if p.atPunct(",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if len(strs) > 0 && len(ints) > 0 {
			return nil, fmt.Errorf("mixed-type IN list on %s", col)
		}
		if len(strs) > 0 {
			return InStr(col, strs...), nil
		}
		return InInt(col, ints...), nil
	case p.atKeyword("LIKE"):
		p.next()
		s, err := p.str()
		if err != nil {
			return nil, err
		}
		return Like(col, s), nil
	case p.atKeyword("NOT"):
		p.next()
		if !p.atKeyword("LIKE") {
			return nil, fmt.Errorf("expected LIKE after NOT, found %q", p.peekText())
		}
		p.next()
		s, err := p.str()
		if err != nil {
			return nil, err
		}
		return NotLike(col, s), nil
	case p.atKeyword("IS"):
		p.next()
		if p.atKeyword("NOT") {
			p.next()
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			return NotNull(col), nil
		}
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return IsNull(col), nil
	}
	t, ok := p.peek()
	if !ok || t.kind != tokOp {
		return nil, fmt.Errorf("expected operator after %s, found %q", col, p.peekText())
	}
	op := t.text
	p.next()
	// String or integer operand.
	if v, ok := p.peek(); ok && v.kind == tokString {
		p.next()
		switch op {
		case "=":
			return EqStr(col, v.text), nil
		case "!=", "<>":
			return NeStr(col, v.text), nil
		default:
			return nil, fmt.Errorf("operator %q not supported on strings", op)
		}
	}
	n, err := p.number()
	if err != nil {
		return nil, err
	}
	switch op {
	case "=":
		return EqInt(col, n), nil
	case "!=", "<>":
		return NeInt(col, n), nil
	case "<":
		return LtInt(col, n), nil
	case "<=":
		return LeInt(col, n), nil
	case ">":
		return GtInt(col, n), nil
	case ">=":
		return GeInt(col, n), nil
	default:
		return nil, fmt.Errorf("unknown operator %q", op)
	}
}

func (p *parser) number() (int64, error) {
	t, ok := p.peek()
	if !ok || t.kind != tokNumber {
		return 0, fmt.Errorf("expected number, found %q", p.peekText())
	}
	p.next()
	return strconv.ParseInt(t.text, 10, 64)
}

func (p *parser) str() (string, error) {
	t, ok := p.peek()
	if !ok || t.kind != tokString {
		return "", fmt.Errorf("expected string literal, found %q", p.peekText())
	}
	p.next()
	return t.text, nil
}

func attachPred(q *Query, alias string, pred *Pred) error {
	i := q.RelIndex(alias)
	if i < 0 {
		return fmt.Errorf("predicate on unknown alias %q", alias)
	}
	q.Rels[i].Preds = append(q.Rels[i].Preds, pred)
	return nil
}
