package query

import (
	"reflect"
	"testing"

	"jobench/internal/storage"
)

func TestParseSimpleQuery(t *testing.T) {
	q, err := ParseSQL("t1", `
		SELECT COUNT(*)
		FROM title t, movie_info mi
		WHERE t.production_year > 2000
		  AND mi.info = 'Horror'
		  AND mi.movie_id = t.id;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rels) != 2 || q.Rels[0].Alias != "t" || q.Rels[1].Table != "movie_info" {
		t.Fatalf("rels = %+v", q.Rels)
	}
	if len(q.Joins) != 1 || q.Joins[0].LeftAlias != "mi" || q.Joins[0].RightCol != "id" {
		t.Fatalf("joins = %+v", q.Joins)
	}
	if len(q.Rels[0].Preds) != 1 || q.Rels[0].Preds[0].Kind != PredGtInt {
		t.Fatalf("t preds = %+v", q.Rels[0].Preds)
	}
	if len(q.Rels[1].Preds) != 1 || q.Rels[1].Preds[0].Str != "Horror" {
		t.Fatalf("mi preds = %+v", q.Rels[1].Preds)
	}
}

func TestParsePredicateForms(t *testing.T) {
	q, err := ParseSQL("forms", `
		SELECT *
		FROM t a
		WHERE a.x BETWEEN 3 AND 7
		  AND a.y IN (1, 2, 3)
		  AND a.z IN ('u', 'v')
		  AND a.s LIKE '%foo%'
		  AND a.s NOT LIKE 'bar%'
		  AND a.n IS NULL
		  AND a.m IS NOT NULL
		  AND a.p != 5
		  AND a.q <> 'str'
		  AND a.r <= 9
		  AND (a.g = 'f' OR a.g = 'm' OR a.g IS NULL)`)
	if err != nil {
		t.Fatal(err)
	}
	preds := q.Rels[0].Preds
	if len(preds) != 11 {
		t.Fatalf("%d predicates, want 11", len(preds))
	}
	kinds := []PredKind{
		PredBetween, PredInInt, PredInStr, PredLike, PredNotLike,
		PredIsNull, PredNotNull, PredNeInt, PredNeStr, PredLeInt, PredOr,
	}
	for i, k := range kinds {
		if preds[i].Kind != k {
			t.Errorf("pred %d kind = %d, want %d (%s)", i, preds[i].Kind, k, preds[i])
		}
	}
	or := preds[10]
	if len(or.Disj) != 3 || or.Disj[2].Kind != PredIsNull {
		t.Fatalf("OR = %+v", or)
	}
	if got := preds[0]; got.Val != 3 || got.Val2 != 7 {
		t.Fatalf("BETWEEN bounds = %d/%d", got.Val, got.Val2)
	}
}

func TestParseNoWhere(t *testing.T) {
	q, err := ParseSQL("nw", "SELECT * FROM t a, u b")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rels) != 2 || len(q.Joins) != 0 {
		t.Fatalf("%+v", q)
	}
}

func TestParseDefaultAlias(t *testing.T) {
	q, err := ParseSQL("da", "SELECT * FROM title WHERE title.production_year > 1990")
	if err != nil {
		t.Fatal(err)
	}
	if q.Rels[0].Alias != "title" {
		t.Fatalf("alias = %q", q.Rels[0].Alias)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q, err := ParseSQL("esc", `SELECT * FROM t a WHERE a.s = 'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Rels[0].Preds[0].Str; got != "it's" {
		t.Fatalf("unescaped = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"FROM t a",                                     // no SELECT
		"SELECT * WHERE a.x = 1",                       // no FROM
		"SELECT * FROM t a WHERE a.x ~ 3",              // bad operator
		"SELECT * FROM t a WHERE a.x BETWEEN 1 OR 2",   // bad BETWEEN
		"SELECT * FROM t a WHERE a.x IN (1, 'two')",    // mixed IN
		"SELECT * FROM t a WHERE b.x = 1",              // unknown alias
		"SELECT * FROM t a WHERE (a.x = 1 OR b.y = 2)", // OR across aliases
		"SELECT * FROM t a WHERE a.x NOT NULL",         // NOT without LIKE
		"SELECT * FROM t a WHERE a.x = 1 garbage",      // trailing tokens
		"SELECT * FROM t a WHERE a.x > 'str'",          // range op on string
		"SELECT * FROM t a WHERE a.x IS 3",             // IS non-null
	}
	for _, sql := range cases {
		if _, err := ParseSQL("bad", sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

// TestWorkloadRoundTrip is the headline property: rendering any JOB query to
// SQL and parsing it back reproduces the query structurally. The workload
// lives in a higher-level package, so the check here uses a painstaking
// structural comparison on a hand-built query; the full 113-query round trip
// lives in the job package's tests.
func TestRoundTripStructural(t *testing.T) {
	orig := &Query{
		ID: "rt",
		Rels: []Rel{
			{Alias: "a", Table: "t1", Preds: []*Pred{
				Between("x", 1, 5),
				Or(EqStr("s", "p"), Like("s", "%q%")),
				InInt("y", 7, 8),
			}},
			{Alias: "b", Table: "t2", Preds: []*Pred{NotNull("z")}},
		},
		Joins: []Join{{LeftAlias: "a", LeftCol: "id", RightAlias: "b", RightCol: "a_id"}},
	}
	parsed, err := ParseSQL("rt", orig.SQL())
	if err != nil {
		t.Fatalf("parse failed: %v\nSQL:\n%s", err, orig.SQL())
	}
	if !reflect.DeepEqual(normalize(orig), normalize(parsed)) {
		t.Fatalf("round trip mismatch:\norig:   %#v\nparsed: %#v", normalize(orig), normalize(parsed))
	}
}

// normalize renders a query in a canonical comparable form.
func normalize(q *Query) []string {
	var out []string
	for _, r := range q.Rels {
		out = append(out, r.Table+" "+r.Alias)
		for _, p := range r.Preds {
			out = append(out, r.Alias+"|"+p.String())
		}
	}
	for _, j := range q.Joins {
		out = append(out, j.LeftAlias+"."+j.LeftCol+"="+j.RightAlias+"."+j.RightCol)
	}
	return out
}

func TestParsedQueryExecutesLikeOriginal(t *testing.T) {
	// Build a small table, filter through an original and a parsed
	// predicate set, and require identical row sets.
	id := storage.NewIntColumn("id")
	val := storage.NewStringColumn("kind")
	for i := int64(0); i < 50; i++ {
		id.AppendInt(i)
		if i%5 == 0 {
			val.AppendString("movie")
		} else {
			val.AppendString("episode")
		}
	}
	tbl := storage.NewTable("title", id, val)

	orig := &Query{ID: "x", Rels: []Rel{{Alias: "t", Table: "title", Preds: []*Pred{
		EqStr("kind", "movie"), LtInt("id", 30),
	}}}}
	parsed, err := ParseSQL("x", orig.SQL())
	if err != nil {
		t.Fatal(err)
	}
	f1, err := CompileAll(orig.Rels[0].Preds, tbl)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := CompileAll(parsed.Rels[0].Preds, tbl)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tbl.NumRows(); i++ {
		if f1(i) != f2(i) {
			t.Fatalf("row %d: original %v, parsed %v", i, f1(i), f2(i))
		}
	}
}
