package query

import (
	"fmt"
	"strings"

	"jobench/internal/storage"
)

// PredKind enumerates the base-table predicate forms JOB uses: surrogate-key
// and categorical equality, ranges on numeric attributes, IN lists,
// substring search with LIKE, disjunctions, and NULL tests.
type PredKind uint8

const (
	// PredEqInt is col = <int>.
	PredEqInt PredKind = iota
	// PredNeInt is col <> <int>.
	PredNeInt
	// PredLtInt is col < <int>.
	PredLtInt
	// PredLeInt is col <= <int>.
	PredLeInt
	// PredGtInt is col > <int>.
	PredGtInt
	// PredGeInt is col >= <int>.
	PredGeInt
	// PredBetween is <lo> <= col <= <hi>.
	PredBetween
	// PredInInt is col IN (<ints>).
	PredInInt
	// PredEqStr is col = '<str>'.
	PredEqStr
	// PredNeStr is col <> '<str>'.
	PredNeStr
	// PredInStr is col IN ('<strs>').
	PredInStr
	// PredLike is col LIKE '<pattern>' with % wildcards.
	PredLike
	// PredNotLike is col NOT LIKE '<pattern>'.
	PredNotLike
	// PredIsNull is col IS NULL.
	PredIsNull
	// PredNotNull is col IS NOT NULL.
	PredNotNull
	// PredOr is a disjunction of sub-predicates on the same relation.
	PredOr
)

// Pred is one base-table predicate applied to a single relation.
type Pred struct {
	Kind PredKind
	Col  string

	Val  int64   // EqInt/NeInt/Lt/Le/Gt/Ge and Between low bound
	Val2 int64   // Between high bound
	Vals []int64 // InInt

	Str  string   // EqStr/NeStr and Like pattern
	Strs []string // InStr

	Disj []*Pred // Or
}

// Convenience constructors keep workload definitions terse and readable.

// EqInt returns col = v.
func EqInt(col string, v int64) *Pred { return &Pred{Kind: PredEqInt, Col: col, Val: v} }

// NeInt returns col <> v.
func NeInt(col string, v int64) *Pred { return &Pred{Kind: PredNeInt, Col: col, Val: v} }

// LtInt returns col < v.
func LtInt(col string, v int64) *Pred { return &Pred{Kind: PredLtInt, Col: col, Val: v} }

// LeInt returns col <= v.
func LeInt(col string, v int64) *Pred { return &Pred{Kind: PredLeInt, Col: col, Val: v} }

// GtInt returns col > v.
func GtInt(col string, v int64) *Pred { return &Pred{Kind: PredGtInt, Col: col, Val: v} }

// GeInt returns col >= v.
func GeInt(col string, v int64) *Pred { return &Pred{Kind: PredGeInt, Col: col, Val: v} }

// Between returns lo <= col <= hi.
func Between(col string, lo, hi int64) *Pred {
	return &Pred{Kind: PredBetween, Col: col, Val: lo, Val2: hi}
}

// InInt returns col IN (vs).
func InInt(col string, vs ...int64) *Pred { return &Pred{Kind: PredInInt, Col: col, Vals: vs} }

// EqStr returns col = s.
func EqStr(col, s string) *Pred { return &Pred{Kind: PredEqStr, Col: col, Str: s} }

// NeStr returns col <> s.
func NeStr(col, s string) *Pred { return &Pred{Kind: PredNeStr, Col: col, Str: s} }

// InStr returns col IN (ss).
func InStr(col string, ss ...string) *Pred { return &Pred{Kind: PredInStr, Col: col, Strs: ss} }

// Like returns col LIKE pattern ('%' wildcards only, as in JOB).
func Like(col, pattern string) *Pred { return &Pred{Kind: PredLike, Col: col, Str: pattern} }

// NotLike returns col NOT LIKE pattern.
func NotLike(col, pattern string) *Pred { return &Pred{Kind: PredNotLike, Col: col, Str: pattern} }

// IsNull returns col IS NULL.
func IsNull(col string) *Pred { return &Pred{Kind: PredIsNull, Col: col} }

// NotNull returns col IS NOT NULL.
func NotNull(col string) *Pred { return &Pred{Kind: PredNotNull, Col: col} }

// Or returns a disjunction. All sub-predicates must be on the same relation.
func Or(ps ...*Pred) *Pred { return &Pred{Kind: PredOr, Disj: ps} }

// String renders the predicate as SQL-ish text.
func (p *Pred) String() string {
	switch p.Kind {
	case PredEqInt:
		return fmt.Sprintf("%s = %d", p.Col, p.Val)
	case PredNeInt:
		return fmt.Sprintf("%s <> %d", p.Col, p.Val)
	case PredLtInt:
		return fmt.Sprintf("%s < %d", p.Col, p.Val)
	case PredLeInt:
		return fmt.Sprintf("%s <= %d", p.Col, p.Val)
	case PredGtInt:
		return fmt.Sprintf("%s > %d", p.Col, p.Val)
	case PredGeInt:
		return fmt.Sprintf("%s >= %d", p.Col, p.Val)
	case PredBetween:
		return fmt.Sprintf("%s BETWEEN %d AND %d", p.Col, p.Val, p.Val2)
	case PredInInt:
		parts := make([]string, len(p.Vals))
		for i, v := range p.Vals {
			parts[i] = fmt.Sprintf("%d", v)
		}
		return fmt.Sprintf("%s IN (%s)", p.Col, strings.Join(parts, ", "))
	case PredEqStr:
		return fmt.Sprintf("%s = '%s'", p.Col, p.Str)
	case PredNeStr:
		return fmt.Sprintf("%s <> '%s'", p.Col, p.Str)
	case PredInStr:
		return fmt.Sprintf("%s IN ('%s')", p.Col, strings.Join(p.Strs, "','"))
	case PredLike:
		return fmt.Sprintf("%s LIKE '%s'", p.Col, p.Str)
	case PredNotLike:
		return fmt.Sprintf("%s NOT LIKE '%s'", p.Col, p.Str)
	case PredIsNull:
		return fmt.Sprintf("%s IS NULL", p.Col)
	case PredNotNull:
		return fmt.Sprintf("%s IS NOT NULL", p.Col)
	case PredOr:
		parts := make([]string, len(p.Disj))
		for i, d := range p.Disj {
			parts[i] = d.String()
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	default:
		return fmt.Sprintf("pred(%d)", p.Kind)
	}
}

// LikeMatch reports whether s matches a SQL LIKE pattern restricted to '%'
// wildcards (JOB uses no '_' wildcards).
func LikeMatch(s, pattern string) bool {
	parts := strings.Split(pattern, "%")
	// No wildcard: exact match.
	if len(parts) == 1 {
		return s == pattern
	}
	// Anchored prefix.
	if parts[0] != "" {
		if !strings.HasPrefix(s, parts[0]) {
			return false
		}
		s = s[len(parts[0]):]
	}
	// Anchored suffix; middle parts must appear in order.
	last := parts[len(parts)-1]
	middle := parts[1 : len(parts)-1]
	for _, m := range middle {
		if m == "" {
			continue
		}
		i := strings.Index(s, m)
		if i < 0 {
			return false
		}
		s = s[i+len(m):]
	}
	if last == "" {
		return true
	}
	return strings.HasSuffix(s, last)
}

// Compile resolves the predicate against a table and returns a fast row
// filter. NULL rows never satisfy any predicate except IS NULL, matching
// SQL three-valued logic for our predicate forms.
func (p *Pred) Compile(t *storage.Table) (func(row int) bool, error) {
	if p.Kind == PredOr {
		subs := make([]func(int) bool, len(p.Disj))
		for i, d := range p.Disj {
			f, err := d.Compile(t)
			if err != nil {
				return nil, err
			}
			subs[i] = f
		}
		return func(row int) bool {
			for _, f := range subs {
				if f(row) {
					return true
				}
			}
			return false
		}, nil
	}
	col := t.Column(p.Col)
	if col == nil {
		return nil, fmt.Errorf("query: table %q has no column %q", t.Name, p.Col)
	}
	notNull := func(row int) bool { return !col.IsNull(row) }
	switch p.Kind {
	case PredEqInt:
		v := p.Val
		return func(row int) bool { return notNull(row) && col.Ints[row] == v }, nil
	case PredNeInt:
		v := p.Val
		return func(row int) bool { return notNull(row) && col.Ints[row] != v }, nil
	case PredLtInt:
		v := p.Val
		return func(row int) bool { return notNull(row) && col.Ints[row] < v }, nil
	case PredLeInt:
		v := p.Val
		return func(row int) bool { return notNull(row) && col.Ints[row] <= v }, nil
	case PredGtInt:
		v := p.Val
		return func(row int) bool { return notNull(row) && col.Ints[row] > v }, nil
	case PredGeInt:
		v := p.Val
		return func(row int) bool { return notNull(row) && col.Ints[row] >= v }, nil
	case PredBetween:
		lo, hi := p.Val, p.Val2
		return func(row int) bool {
			return notNull(row) && col.Ints[row] >= lo && col.Ints[row] <= hi
		}, nil
	case PredInInt:
		set := make(map[int64]struct{}, len(p.Vals))
		for _, v := range p.Vals {
			set[v] = struct{}{}
		}
		return func(row int) bool {
			if !notNull(row) {
				return false
			}
			_, ok := set[col.Ints[row]]
			return ok
		}, nil
	case PredEqStr:
		if col.Kind != storage.KindString {
			return nil, fmt.Errorf("query: string predicate on %s column %q", col.Kind, p.Col)
		}
		code, ok := col.Code(p.Str)
		if !ok {
			return func(int) bool { return false }, nil
		}
		return func(row int) bool { return notNull(row) && col.Ints[row] == code }, nil
	case PredNeStr:
		if col.Kind != storage.KindString {
			return nil, fmt.Errorf("query: string predicate on %s column %q", col.Kind, p.Col)
		}
		code, ok := col.Code(p.Str)
		if !ok {
			return notNull, nil
		}
		return func(row int) bool { return notNull(row) && col.Ints[row] != code }, nil
	case PredInStr:
		if col.Kind != storage.KindString {
			return nil, fmt.Errorf("query: string predicate on %s column %q", col.Kind, p.Col)
		}
		// Dictionary codes are dense [0, DictSize), so the match set is a
		// flat bool vector: one bounds-checked load per row instead of a
		// hash probe — this filter runs once per fetched tuple on the
		// engine's index-join path.
		member := make([]bool, col.DictSize())
		for _, s := range p.Strs {
			if code, ok := col.Code(s); ok {
				member[code] = true
			}
		}
		return func(row int) bool {
			return notNull(row) && member[col.Ints[row]]
		}, nil
	case PredLike, PredNotLike:
		if col.Kind != storage.KindString {
			return nil, fmt.Errorf("query: LIKE on %s column %q", col.Kind, p.Col)
		}
		pattern := p.Str
		member := make([]bool, col.DictSize())
		for _, code := range col.SortedDictCodes(func(s string) bool { return LikeMatch(s, pattern) }) {
			member[code] = true
		}
		neg := p.Kind == PredNotLike
		return func(row int) bool {
			if !notNull(row) {
				return false
			}
			return member[col.Ints[row]] != neg
		}, nil
	case PredIsNull:
		return func(row int) bool { return col.IsNull(row) }, nil
	case PredNotNull:
		return notNull, nil
	default:
		return nil, fmt.Errorf("query: unknown predicate kind %d", p.Kind)
	}
}

// CompileAll compiles a conjunction of predicates against a table into a
// single filter. An empty slice compiles to an always-true filter.
func CompileAll(preds []*Pred, t *storage.Table) (func(row int) bool, error) {
	if len(preds) == 0 {
		return func(int) bool { return true }, nil
	}
	fs := make([]func(int) bool, len(preds))
	for i, p := range preds {
		f, err := p.Compile(t)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return func(row int) bool {
		for _, f := range fs {
			if !f(row) {
				return false
			}
		}
		return true
	}, nil
}
