package query

import (
	"fmt"
	"sort"
	"strings"

	"jobench/internal/storage"
)

// Rel is one aliased relation of a query, with its base-table predicates.
// The same table may appear under several aliases (e.g. JOB's it/it2).
type Rel struct {
	Alias string
	Table string
	Preds []*Pred
}

// Join is one equi-join predicate between two aliased relations.
type Join struct {
	LeftAlias  string
	LeftCol    string
	RightAlias string
	RightCol   string
}

// Query is a select-project-join block: relations, their base-table
// predicates, and the join predicates connecting them. Projections are
// omitted deliberately — like the paper (footnote 4), we evaluate queries as
// MIN-wrapped joins, so only counts matter.
type Query struct {
	ID    string
	Rels  []Rel
	Joins []Join
}

// NumJoins returns the number of join predicates.
func (q *Query) NumJoins() int { return len(q.Joins) }

// RelIndex returns the index of the relation with the given alias, or -1.
func (q *Query) RelIndex(alias string) int {
	for i, r := range q.Rels {
		if r.Alias == alias {
			return i
		}
	}
	return -1
}

// NumPreds returns the total number of base-table predicates.
func (q *Query) NumPreds() int {
	n := 0
	for _, r := range q.Rels {
		n += len(r.Preds)
	}
	return n
}

// SQL renders the query as SQL text (for documentation and EXPLAIN output).
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT COUNT(*)\nFROM ")
	for i, r := range q.Rels {
		if i > 0 {
			b.WriteString(",\n     ")
		}
		fmt.Fprintf(&b, "%s %s", r.Table, r.Alias)
	}
	b.WriteString("\nWHERE ")
	first := true
	for _, r := range q.Rels {
		for _, p := range r.Preds {
			if !first {
				b.WriteString("\n  AND ")
			}
			first = false
			b.WriteString(renderPred(r.Alias, p))
		}
	}
	for _, j := range q.Joins {
		if !first {
			b.WriteString("\n  AND ")
		}
		first = false
		fmt.Fprintf(&b, "%s.%s = %s.%s", j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol)
	}
	b.WriteString(";")
	return b.String()
}

// renderPred renders one predicate with its alias prefix; disjunctions
// prefix every branch so the output is valid SQL.
func renderPred(alias string, p *Pred) string {
	if p.Kind == PredOr {
		parts := make([]string, len(p.Disj))
		for i, d := range p.Disj {
			parts[i] = renderPred(alias, d)
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	}
	return alias + "." + p.String()
}

// Validate checks the query against a database schema: tables and columns
// exist, aliases are unique and resolvable, and the join graph is connected
// (the paper's queries never contain cross products).
func (q *Query) Validate(db *storage.Database) error {
	if len(q.Rels) == 0 {
		return fmt.Errorf("query %s: no relations", q.ID)
	}
	seen := make(map[string]bool, len(q.Rels))
	for _, r := range q.Rels {
		if seen[r.Alias] {
			return fmt.Errorf("query %s: duplicate alias %q", q.ID, r.Alias)
		}
		seen[r.Alias] = true
		t := db.Table(r.Table)
		if t == nil {
			return fmt.Errorf("query %s: unknown table %q", q.ID, r.Table)
		}
		for _, p := range r.Preds {
			if _, err := p.Compile(t); err != nil {
				return fmt.Errorf("query %s: %v", q.ID, err)
			}
		}
	}
	for _, j := range q.Joins {
		li, ri := q.RelIndex(j.LeftAlias), q.RelIndex(j.RightAlias)
		if li < 0 || ri < 0 {
			return fmt.Errorf("query %s: join references unknown alias %q/%q", q.ID, j.LeftAlias, j.RightAlias)
		}
		if li == ri {
			return fmt.Errorf("query %s: self-join predicate on alias %q", q.ID, j.LeftAlias)
		}
		for _, side := range []struct{ alias, col string }{
			{j.LeftAlias, j.LeftCol}, {j.RightAlias, j.RightCol},
		} {
			rel := q.Rels[q.RelIndex(side.alias)]
			if db.MustTable(rel.Table).Column(side.col) == nil {
				return fmt.Errorf("query %s: join column %s.%s not found", q.ID, side.alias, side.col)
			}
		}
	}
	g, err := BuildGraph(q)
	if err != nil {
		return fmt.Errorf("query %s: %v", q.ID, err)
	}
	if !g.Connected(FullSet(len(q.Rels))) {
		return fmt.Errorf("query %s: join graph is disconnected", q.ID)
	}
	return nil
}

// Edge is one join-graph edge. Several query-level join predicates between
// the same pair of relations collapse into one edge carrying all of them;
// the first predicate is the physical join key, the rest become residual
// filters.
type Edge struct {
	U, V  int // relation indexes with U < V
	Preds []Join
}

// Other returns the endpoint of e that is not r.
func (e Edge) Other(r int) int {
	if e.U == r {
		return e.V
	}
	return e.U
}

// ColFor returns the join column of the primary predicate on the side of
// relation r.
func (e Edge) ColFor(q *Query, r int) string {
	j := e.Preds[0]
	if q.RelIndex(j.LeftAlias) == r {
		return j.LeftCol
	}
	return j.RightCol
}

// Graph is the join graph of a query: nodes are relation indexes, edges are
// (possibly bundled) equi-join predicates. It provides the connectivity and
// neighbourhood operations that plan enumeration and true-cardinality
// computation rely on.
type Graph struct {
	Q     *Query
	N     int
	Edges []Edge

	neighbors []BitSet // per relation
	edgesOf   [][]int  // edge indexes incident to each relation
}

// BuildGraph derives the join graph from a query.
func BuildGraph(q *Query) (*Graph, error) {
	n := len(q.Rels)
	if n == 0 {
		return nil, fmt.Errorf("empty query")
	}
	if n > 64 {
		return nil, fmt.Errorf("too many relations (%d > 64)", n)
	}
	g := &Graph{
		Q:         q,
		N:         n,
		neighbors: make([]BitSet, n),
		edgesOf:   make([][]int, n),
	}
	byPair := make(map[[2]int]int)
	for _, j := range q.Joins {
		u, v := q.RelIndex(j.LeftAlias), q.RelIndex(j.RightAlias)
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("join references unknown alias %q/%q", j.LeftAlias, j.RightAlias)
		}
		// Normalise the predicate so LeftAlias corresponds to edge.U.
		if u > v {
			u, v = v, u
			j = Join{LeftAlias: j.RightAlias, LeftCol: j.RightCol, RightAlias: j.LeftAlias, RightCol: j.LeftCol}
		}
		key := [2]int{u, v}
		if ei, ok := byPair[key]; ok {
			g.Edges[ei].Preds = append(g.Edges[ei].Preds, j)
			continue
		}
		byPair[key] = len(g.Edges)
		g.Edges = append(g.Edges, Edge{U: u, V: v, Preds: []Join{j}})
	}
	for ei, e := range g.Edges {
		g.neighbors[e.U] = g.neighbors[e.U].Add(e.V)
		g.neighbors[e.V] = g.neighbors[e.V].Add(e.U)
		g.edgesOf[e.U] = append(g.edgesOf[e.U], ei)
		g.edgesOf[e.V] = append(g.edgesOf[e.V], ei)
	}
	return g, nil
}

// MustBuildGraph is BuildGraph for statically known-good queries.
func MustBuildGraph(q *Query) *Graph {
	g, err := BuildGraph(q)
	if err != nil {
		panic(err)
	}
	return g
}

// NeighborsOf returns the neighbour set of one relation.
func (g *Graph) NeighborsOf(r int) BitSet { return g.neighbors[r] }

// Neighborhood returns all relations outside s adjacent to some relation
// in s.
func (g *Graph) Neighborhood(s BitSet) BitSet {
	var nb BitSet
	s.ForEach(func(r int) { nb |= g.neighbors[r] })
	return nb.Minus(s)
}

// Connected reports whether the relations in s form a connected subgraph.
func (g *Graph) Connected(s BitSet) bool {
	if s.Empty() {
		return false
	}
	if s.Single() {
		return true
	}
	frontier := BitSet(1) << uint(s.First())
	reached := frontier
	for !frontier.Empty() {
		var next BitSet
		frontier.ForEach(func(r int) { next |= g.neighbors[r] })
		next = next.Intersect(s).Minus(reached)
		reached |= next
		frontier = next
	}
	return reached == s
}

// ConnectedPair reports whether at least one edge links s1 and s2.
func (g *Graph) ConnectedPair(s1, s2 BitSet) bool {
	return g.Neighborhood(s1).Overlaps(s2)
}

// EdgesBetween returns the indexes of all edges with one endpoint in s1 and
// the other in s2.
func (g *Graph) EdgesBetween(s1, s2 BitSet) []int {
	var out []int
	seen := make(map[int]bool)
	s1.ForEach(func(r int) {
		for _, ei := range g.edgesOf[r] {
			if seen[ei] {
				continue
			}
			e := g.Edges[ei]
			o := e.Other(r)
			if s2.Has(o) {
				seen[ei] = true
				out = append(out, ei)
			}
		}
	})
	sort.Ints(out)
	return out
}

// EdgesWithin returns the indexes of all edges with both endpoints in s.
func (g *Graph) EdgesWithin(s BitSet) []int {
	var out []int
	for ei, e := range g.Edges {
		if s.Has(e.U) && s.Has(e.V) {
			out = append(out, ei)
		}
	}
	return out
}

// ConnectedSubsets enumerates every connected subset of the graph's
// relations in ascending cardinality order and calls f on each. For JOB-size
// graphs (n <= 17) the 2^n scan is instantaneous.
func (g *Graph) ConnectedSubsets(f func(s BitSet)) {
	full := uint64(1)<<uint(g.N) - 1
	byCount := make([][]BitSet, g.N+1)
	for raw := uint64(1); raw <= full; raw++ {
		s := BitSet(raw)
		if g.Connected(s) {
			byCount[s.Count()] = append(byCount[s.Count()], s)
		}
	}
	for _, list := range byCount[1:] {
		for _, s := range list {
			f(s)
		}
	}
}

// CountConnectedSubsets returns the number of connected subsets, a measure
// of optimizer search-space size.
func (g *Graph) CountConnectedSubsets() int {
	n := 0
	g.ConnectedSubsets(func(BitSet) { n++ })
	return n
}

// Dot renders the join graph in Graphviz dot syntax (cf. paper Fig. 2).
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", g.Q.ID)
	for _, r := range g.Q.Rels {
		fmt.Fprintf(&b, "  %s [label=%q];\n", r.Alias, r.Table+" "+r.Alias)
	}
	for _, e := range g.Edges {
		j := e.Preds[0]
		fmt.Fprintf(&b, "  %s -- %s [label=%q];\n", g.Q.Rels[e.U].Alias, g.Q.Rels[e.V].Alias,
			fmt.Sprintf("%s.%s = %s.%s", j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol))
	}
	b.WriteString("}\n")
	return b.String()
}
