package query

import (
	"math/bits"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"jobench/internal/storage"
)

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(0, 3, 5)
	if !s.Has(0) || !s.Has(3) || !s.Has(5) || s.Has(1) {
		t.Fatal("membership broken")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.First() != 0 {
		t.Fatalf("First = %d", s.First())
	}
	if got := s.Remove(3); got.Has(3) || got.Count() != 2 {
		t.Fatal("Remove broken")
	}
	if got := s.Add(1); !got.Has(1) {
		t.Fatal("Add broken")
	}
	if s.String() != "{0,3,5}" {
		t.Fatalf("String = %s", s.String())
	}
	if !FullSet(4).Contains(NewBitSet(1, 2)) {
		t.Fatal("Contains broken")
	}
	if !NewBitSet(2).Single() || NewBitSet(1, 2).Single() || BitSet(0).Single() {
		t.Fatal("Single broken")
	}
	if got := NewBitSet(1, 2).Elems(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Elems = %v", got)
	}
}

// Property: set algebra agrees with bit arithmetic.
func TestBitSetAlgebraProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := BitSet(a), BitSet(b)
		if x.Union(y) != BitSet(a|b) || x.Intersect(y) != BitSet(a&b) || x.Minus(y) != BitSet(a&^b) {
			return false
		}
		if x.Count() != bits.OnesCount64(a) {
			return false
		}
		return x.Overlaps(y) == (a&b != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SubsetsProper enumerates exactly 2^k - 2 subsets for a k-element
// set, all proper, non-empty and contained.
func TestSubsetEnumerationProperty(t *testing.T) {
	f := func(raw uint16) bool {
		s := BitSet(raw)
		if s == 0 {
			return true
		}
		count := 0
		ok := true
		s.SubsetsProper(func(sub BitSet) {
			count++
			if sub == 0 || sub == s || !s.Contains(sub) {
				ok = false
			}
		})
		want := 1<<uint(s.Count()) - 2
		return ok && count == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "hell", false},
		{"hello", "%ell%", true},
		{"hello", "h%o", true},
		{"hello", "h%x", false},
		{"hello", "%o", true},
		{"hello", "h%", true},
		{"hello", "%", true},
		{"", "%", true},
		{"abcabc", "a%b%c", true},
		{"character-name-in-title", "%character%", true},
		{"top 250 rank", "top%rank", true},
		{"bottom 10 rank", "top%rank", false},
	}
	for _, c := range cases {
		if got := LikeMatch(c.s, c.p); got != c.want {
			t.Errorf("LikeMatch(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func testTable() *storage.Table {
	id := storage.NewIntColumn("id")
	year := storage.NewIntColumn("year")
	kind := storage.NewStringColumn("kind")
	kinds := []string{"movie", "tv series", "video movie", "episode"}
	for i := int64(0); i < 40; i++ {
		id.AppendInt(i)
		if i%10 == 9 {
			year.AppendNull()
		} else {
			year.AppendInt(1980 + i%40)
		}
		kind.AppendString(kinds[i%4])
	}
	return storage.NewTable("title", id, year, kind)
}

func TestPredicateCompileAndEval(t *testing.T) {
	tbl := testTable()
	count := func(p *Pred) int {
		f, err := p.Compile(tbl)
		if err != nil {
			t.Fatalf("compile %s: %v", p, err)
		}
		n := 0
		for i := 0; i < tbl.NumRows(); i++ {
			if f(i) {
				n++
			}
		}
		return n
	}
	if got := count(EqStr("kind", "movie")); got != 10 {
		t.Fatalf("EqStr = %d, want 10", got)
	}
	if got := count(EqStr("kind", "nonexistent")); got != 0 {
		t.Fatalf("EqStr missing = %d", got)
	}
	if got := count(NeStr("kind", "movie")); got != 30 {
		t.Fatalf("NeStr = %d, want 30", got)
	}
	if got := count(Like("kind", "%movie%")); got != 20 {
		t.Fatalf("Like = %d, want 20 (movie + video movie)", got)
	}
	if got := count(NotLike("kind", "%movie%")); got != 20 {
		t.Fatalf("NotLike = %d", got)
	}
	if got := count(IsNull("year")); got != 4 {
		t.Fatalf("IsNull = %d, want 4", got)
	}
	if got := count(NotNull("year")); got != 36 {
		t.Fatalf("NotNull = %d", got)
	}
	// year 2009, 2019 are NULLed out (i = 29 -> year 2009 ... wait i%10==9).
	if got := count(Between("year", 1990, 1999)); got != 9 {
		t.Fatalf("Between = %d, want 9 (one NULLed)", got)
	}
	// Years 2016..2019 minus the NULLed 2019 leave three matches.
	if got := count(GtInt("year", 2015)); got != 3 {
		t.Fatalf("GtInt = %d, want 3", got)
	}
	if got := count(InStr("kind", "movie", "episode")); got != 20 {
		t.Fatalf("InStr = %d", got)
	}
	if got := count(Or(EqStr("kind", "movie"), EqStr("kind", "episode"))); got != 20 {
		t.Fatalf("Or = %d", got)
	}
	if got := count(EqInt("id", 7)); got != 1 {
		t.Fatalf("EqInt = %d", got)
	}
	if got := count(InInt("id", 1, 2, 3, 100)); got != 3 {
		t.Fatalf("InInt = %d", got)
	}
}

func TestPredicateErrors(t *testing.T) {
	tbl := testTable()
	if _, err := EqInt("missing", 1).Compile(tbl); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := Like("year", "%x%").Compile(tbl); err == nil {
		t.Fatal("LIKE on int column accepted")
	}
	if _, err := EqStr("year", "x").Compile(tbl); err == nil {
		t.Fatal("string eq on int column accepted")
	}
	if _, err := Or(EqInt("id", 1), EqInt("missing", 2)).Compile(tbl); err == nil {
		t.Fatal("OR with bad sub-predicate accepted")
	}
}

func TestCompileAllConjunction(t *testing.T) {
	tbl := testTable()
	f, err := CompileAll([]*Pred{EqStr("kind", "movie"), LtInt("id", 20)}, tbl)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < tbl.NumRows(); i++ {
		if f(i) {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("conjunction = %d, want 5", n)
	}
	// Empty conjunction accepts everything.
	all, err := CompileAll(nil, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !all(0) {
		t.Fatal("empty conjunction rejected row")
	}
}

// chainQuery builds r0 - r1 - ... - r(n-1).
func chainQuery(n int) *Query {
	q := &Query{ID: "chain"}
	for i := 0; i < n; i++ {
		q.Rels = append(q.Rels, Rel{Alias: alias(i), Table: "t"})
	}
	for i := 0; i+1 < n; i++ {
		q.Joins = append(q.Joins, Join{LeftAlias: alias(i), LeftCol: "a", RightAlias: alias(i + 1), RightCol: "b"})
	}
	return q
}

func alias(i int) string { return string(rune('a' + i)) }

func TestGraphChain(t *testing.T) {
	g := MustBuildGraph(chainQuery(5))
	if g.N != 5 || len(g.Edges) != 4 {
		t.Fatalf("N=%d edges=%d", g.N, len(g.Edges))
	}
	if !g.Connected(FullSet(5)) {
		t.Fatal("chain not connected")
	}
	if g.Connected(NewBitSet(0, 2)) {
		t.Fatal("{0,2} should be disconnected in a chain")
	}
	if !g.Connected(NewBitSet(1, 2, 3)) {
		t.Fatal("{1,2,3} should be connected")
	}
	if got := g.Neighborhood(NewBitSet(1, 2)); got != NewBitSet(0, 3) {
		t.Fatalf("Neighborhood = %v", got)
	}
	if !g.ConnectedPair(NewBitSet(0, 1), NewBitSet(2, 3)) {
		t.Fatal("ConnectedPair broken")
	}
	if g.ConnectedPair(NewBitSet(0), NewBitSet(2)) {
		t.Fatal("non-adjacent pair reported connected")
	}
	// Chain of n has n*(n+1)/2 connected subsets.
	if got := g.CountConnectedSubsets(); got != 15 {
		t.Fatalf("CountConnectedSubsets = %d, want 15", got)
	}
}

func TestGraphBundlesParallelEdges(t *testing.T) {
	q := chainQuery(2)
	q.Joins = append(q.Joins, Join{LeftAlias: "b", LeftCol: "c", RightAlias: "a", RightCol: "d"})
	g := MustBuildGraph(q)
	if len(g.Edges) != 1 {
		t.Fatalf("parallel edges not bundled: %d", len(g.Edges))
	}
	if len(g.Edges[0].Preds) != 2 {
		t.Fatalf("bundle has %d preds", len(g.Edges[0].Preds))
	}
	// The second predicate was normalised so that LeftAlias is rel U.
	second := g.Edges[0].Preds[1]
	if second.LeftAlias != "a" || second.LeftCol != "d" {
		t.Fatalf("predicate not normalised: %+v", second)
	}
	if g.Edges[0].ColFor(q, 0) != "a" || g.Edges[0].ColFor(q, 1) != "b" {
		t.Fatal("ColFor broken")
	}
	if g.Edges[0].Other(0) != 1 || g.Edges[0].Other(1) != 0 {
		t.Fatal("Other broken")
	}
}

func TestEdgesBetweenAndWithin(t *testing.T) {
	g := MustBuildGraph(chainQuery(4))
	if got := g.EdgesBetween(NewBitSet(0, 1), NewBitSet(2, 3)); len(got) != 1 || g.Edges[got[0]].U != 1 {
		t.Fatalf("EdgesBetween = %v", got)
	}
	if got := g.EdgesWithin(NewBitSet(0, 1, 2)); len(got) != 2 {
		t.Fatalf("EdgesWithin = %v", got)
	}
}

// Property: ConnectedSubsets yields sets that are connected, unique, and
// ascending in cardinality; and on random graphs Connected agrees with a
// BFS reference implementation.
func TestConnectedSubsetsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		q := &Query{ID: "rnd"}
		for i := 0; i < n; i++ {
			q.Rels = append(q.Rels, Rel{Alias: alias(i), Table: "t"})
		}
		// Random spanning tree plus extra random edges.
		for i := 1; i < n; i++ {
			p := rng.Intn(i)
			q.Joins = append(q.Joins, Join{LeftAlias: alias(p), LeftCol: "a", RightAlias: alias(i), RightCol: "b"})
		}
		for k := 0; k < rng.Intn(3); k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				q.Joins = append(q.Joins, Join{LeftAlias: alias(u), LeftCol: "a", RightAlias: alias(v), RightCol: "b"})
			}
		}
		g := MustBuildGraph(q)
		seen := make(map[BitSet]bool)
		prev := 0
		ok := true
		g.ConnectedSubsets(func(s BitSet) {
			if seen[s] || !g.Connected(s) || s.Count() < prev {
				ok = false
			}
			seen[s] = true
			prev = s.Count()
		})
		// Reference connectivity check on a few random subsets.
		for k := 0; k < 20; k++ {
			s := BitSet(rng.Int63n(1<<uint(n)-1) + 1)
			if g.Connected(s) != bfsConnected(g, s) {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func bfsConnected(g *Graph, s BitSet) bool {
	elems := s.Elems()
	if len(elems) == 0 {
		return false
	}
	visited := map[int]bool{elems[0]: true}
	queue := []int{elems[0]}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		g.NeighborsOf(r).ForEach(func(o int) {
			if s.Has(o) && !visited[o] {
				visited[o] = true
				queue = append(queue, o)
			}
		})
	}
	return len(visited) == len(elems)
}

func TestQueryValidate(t *testing.T) {
	db := storage.NewDatabase()
	db.Add(testTable())
	info := storage.NewTable("info",
		storage.NewIntColumn("id"), storage.NewIntColumn("movie_id"))
	db.Add(info)

	good := &Query{
		ID: "q1",
		Rels: []Rel{
			{Alias: "t", Table: "title", Preds: []*Pred{EqStr("kind", "movie")}},
			{Alias: "mi", Table: "info"},
		},
		Joins: []Join{{LeftAlias: "mi", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"}},
	}
	if err := good.Validate(db); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	if got := good.NumJoins(); got != 1 {
		t.Fatalf("NumJoins = %d", got)
	}
	if got := good.NumPreds(); got != 1 {
		t.Fatalf("NumPreds = %d", got)
	}
	if !strings.Contains(good.SQL(), "mi.movie_id = t.id") {
		t.Fatalf("SQL rendering broken:\n%s", good.SQL())
	}

	bad := *good
	bad.Rels = append([]Rel(nil), good.Rels...)
	bad.Rels[1].Table = "nope"
	if err := bad.Validate(db); err == nil {
		t.Fatal("unknown table accepted")
	}

	disconnected := &Query{
		ID: "q2",
		Rels: []Rel{
			{Alias: "a", Table: "title"},
			{Alias: "b", Table: "info"},
		},
	}
	if err := disconnected.Validate(db); err == nil {
		t.Fatal("disconnected query accepted")
	}

	dupAlias := &Query{
		ID:   "q3",
		Rels: []Rel{{Alias: "t", Table: "title"}, {Alias: "t", Table: "info"}},
	}
	if err := dupAlias.Validate(db); err == nil {
		t.Fatal("duplicate alias accepted")
	}
}

func TestGraphDot(t *testing.T) {
	g := MustBuildGraph(chainQuery(3))
	dot := g.Dot()
	if !strings.Contains(dot, "a -- b") || !strings.Contains(dot, "b -- c") {
		t.Fatalf("dot output missing edges:\n%s", dot)
	}
}
