package reopt

import (
	"sync"

	"jobench/internal/query"
)

// DefaultBudgetBytes is the feedback-cache byte budget used when a
// non-positive budget is configured (1 MiB — roughly two thousand JOB-sized
// entries).
const DefaultBudgetBytes = 1 << 20

// Accounting constants for entry sizing. An entry is charged for its
// fingerprint string, a fixed per-entry overhead (map bucket, list node,
// struct headers), and a per-observation slot (BitSet key + float64 value +
// map bucket share). The numbers are deliberately round: the contract is
// "bounded and proportional", not "exact to the allocator byte".
const (
	entryOverheadBytes = 96
	slotBytes          = 24
)

// Stats is a point-in-time snapshot of feedback-cache counters.
type Stats struct {
	// Hits counts Get calls that found an entry.
	Hits int64
	// Misses counts Get calls that found nothing.
	Misses int64
	// Entries is the current number of cached fingerprints.
	Entries int64
	// Bytes is the current accounted size of all entries.
	Bytes int64
	// Evictions counts entries removed to make room under the budget.
	Evictions int64
}

// FeedbackCache is a concurrency-safe, memory-bounded LRU of observed
// cardinalities keyed by canonical query fingerprint. Sizes are accounted
// in bytes (see entryOverheadBytes/slotBytes); the cache never holds more
// than its budget. Observations for one fingerprint merge into a single
// entry (latest value wins), and a merged entry that alone would exceed
// the whole budget is rejected rather than evicting everything else.
type FeedbackCache struct {
	mu        sync.Mutex
	budget    int64
	bytes     int64
	entries   map[string]*feedbackEntry
	head      *feedbackEntry // most recently used
	tail      *feedbackEntry // least recently used
	hits      int64
	misses    int64
	evictions int64
}

type feedbackEntry struct {
	fp         string
	cards      map[query.BitSet]float64
	bytes      int64
	prev, next *feedbackEntry
}

func entrySize(fp string, slots int) int64 {
	return entryOverheadBytes + int64(len(fp)) + int64(slots)*slotBytes
}

// NewFeedbackCache returns a cache bounded by budget bytes; a non-positive
// budget selects DefaultBudgetBytes.
func NewFeedbackCache(budget int64) *FeedbackCache {
	if budget <= 0 {
		budget = DefaultBudgetBytes
	}
	return &FeedbackCache{budget: budget, entries: make(map[string]*feedbackEntry)}
}

// Budget reports the configured byte budget.
func (c *FeedbackCache) Budget() int64 { return c.budget }

// Get returns a copy of the observed cardinalities recorded for fp, or nil
// on a miss. A hit marks the entry most recently used.
func (c *FeedbackCache) Get(fp string) map[query.BitSet]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.unlink(e)
	c.pushFront(e)
	out := make(map[query.BitSet]float64, len(e.cards))
	for s, v := range e.cards {
		out[s] = v
	}
	return out
}

// Put merges cards into the entry for fp (new observations win), marks it
// most recently used, and evicts least-recently-used entries until the
// cache fits its budget again. A merged entry that alone would exceed the
// budget leaves the cache unchanged.
func (c *FeedbackCache) Put(fp string, cards map[query.BitSet]float64) {
	if len(cards) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	merged := make(map[query.BitSet]float64, len(cards))
	if ok {
		for s, v := range e.cards {
			merged[s] = v
		}
	}
	for s, v := range cards {
		merged[s] = v
	}
	size := entrySize(fp, len(merged))
	if size > c.budget {
		return
	}
	if ok {
		c.bytes += size - e.bytes
		e.cards, e.bytes = merged, size
		c.unlink(e)
		c.pushFront(e)
	} else {
		e = &feedbackEntry{fp: fp, cards: merged, bytes: size}
		c.entries[fp] = e
		c.bytes += size
		c.pushFront(e)
	}
	for c.bytes > c.budget && c.tail != nil {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.fp)
		c.bytes -= victim.bytes
		c.evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *FeedbackCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Entries:   int64(len(c.entries)),
		Bytes:     c.bytes,
		Evictions: c.evictions,
	}
}

func (c *FeedbackCache) pushFront(e *feedbackEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *FeedbackCache) unlink(e *feedbackEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
