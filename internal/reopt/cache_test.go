package reopt

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"jobench/internal/query"
)

func bs(rels ...int) query.BitSet {
	var s query.BitSet
	for _, r := range rels {
		s = s.Add(r)
	}
	return s
}

// checkAccounting recomputes the cache's byte counter from its entries and
// asserts both internal consistency and the budget bound.
func checkAccounting(t *testing.T, c *FeedbackCache) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for fp, e := range c.entries {
		want := entrySize(fp, len(e.cards))
		if e.bytes != want {
			t.Fatalf("entry %q accounted %d bytes, want %d", fp, e.bytes, want)
		}
		sum += e.bytes
	}
	if sum != c.bytes {
		t.Fatalf("cache counts %d bytes, entries sum to %d", c.bytes, sum)
	}
	if c.bytes > c.budget {
		t.Fatalf("cache holds %d bytes over budget %d", c.bytes, c.budget)
	}
}

func TestFeedbackCacheBudgetChurn(t *testing.T) {
	const budget = 4096
	c := NewFeedbackCache(budget)
	rng := rand.New(rand.NewSource(7))
	fps := make([]string, 40)
	for i := range fps {
		fps[i] = fmt.Sprintf("fp-%02d", i)
	}
	for i := 0; i < 5000; i++ {
		fp := fps[rng.Intn(len(fps))]
		if rng.Intn(4) == 0 {
			c.Get(fp)
			continue
		}
		cards := make(map[query.BitSet]float64)
		for n := rng.Intn(12) + 1; n > 0; n-- {
			cards[bs(rng.Intn(10), rng.Intn(10))] = float64(rng.Intn(1000) + 1)
		}
		c.Put(fp, cards)
		if i%97 == 0 {
			checkAccounting(t, c)
		}
	}
	checkAccounting(t, c)
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("churn at 4 KiB never evicted — budget not binding, test is vacuous")
	}
	if st.Bytes > budget {
		t.Errorf("final bytes %d over budget %d", st.Bytes, budget)
	}
}

func TestFeedbackCacheOversizedRejected(t *testing.T) {
	c := NewFeedbackCache(entrySize("keep", 2) + entrySize("big", 1))
	c.Put("keep", map[query.BitSet]float64{bs(0): 1, bs(1): 2})
	before := c.Stats()

	huge := make(map[query.BitSet]float64)
	for i := 0; i < 64; i++ {
		huge[bs(i)] = float64(i)
	}
	c.Put("big", huge)
	after := c.Stats()
	if after.Entries != before.Entries || after.Bytes != before.Bytes || after.Evictions != 0 {
		t.Errorf("oversized Put changed the cache: before %+v after %+v", before, after)
	}
	if c.Get("keep") == nil {
		t.Error("oversized Put evicted an unrelated entry")
	}

	// Merging into an existing entry can also overflow the budget; the
	// existing entry must survive with its old observations.
	c.Put("keep", huge)
	if got := c.Get("keep"); len(got) != 2 || got[bs(0)] != 1 {
		t.Errorf("over-budget merge corrupted the entry: %v", got)
	}
}

func TestFeedbackCacheMergeLatestWins(t *testing.T) {
	c := NewFeedbackCache(0)
	c.Put("q", map[query.BitSet]float64{bs(0, 1): 10})
	c.Put("q", map[query.BitSet]float64{bs(0, 1): 20, bs(1, 2): 5})
	got := c.Get("q")
	if len(got) != 2 || got[bs(0, 1)] != 20 || got[bs(1, 2)] != 5 {
		t.Errorf("merged entry = %v, want {01:20, 12:5}", got)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("merge created %d entries, want 1", st.Entries)
	}
}

func TestFeedbackCacheGetReturnsCopy(t *testing.T) {
	c := NewFeedbackCache(0)
	c.Put("q", map[query.BitSet]float64{bs(0): 7})
	got := c.Get("q")
	got[bs(0)] = 999
	got[bs(5)] = 1
	if again := c.Get("q"); len(again) != 1 || again[bs(0)] != 7 {
		t.Errorf("mutating a Get result changed the cache: %v", again)
	}
}

func TestFeedbackCacheLRUEvictionOrder(t *testing.T) {
	one := entrySize("aaaa", 1) // all fingerprints same length -> same size
	c := NewFeedbackCache(2 * one)
	obs := map[query.BitSet]float64{bs(0): 1}
	c.Put("aaaa", obs)
	c.Put("bbbb", obs)
	// Touch "aaaa" so "bbbb" is LRU when "cccc" needs the space.
	if c.Get("aaaa") == nil {
		t.Fatal("warm entry missing")
	}
	c.Put("cccc", obs)
	if c.Get("bbbb") != nil {
		t.Error("LRU entry survived eviction")
	}
	if c.Get("aaaa") == nil || c.Get("cccc") == nil {
		t.Error("recently used entries evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats after eviction: %+v", st)
	}
}

func TestFeedbackCacheConcurrent(t *testing.T) {
	c := NewFeedbackCache(8192)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				fp := fmt.Sprintf("fp-%d", rng.Intn(30))
				if rng.Intn(2) == 0 {
					c.Put(fp, map[query.BitSet]float64{bs(rng.Intn(8)): float64(i + 1)})
				} else {
					c.Get(fp)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	checkAccounting(t, c)
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no gets recorded")
	}
}
