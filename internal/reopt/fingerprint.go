// Package reopt implements adaptive re-optimization — the paper's "use
// observed cardinalities instead of estimates" endgame — and the
// plan-feedback cache that lets a service remember what it paid to learn.
//
// The execution loop (Run) executes prefixes of the chosen plan through the
// block engine, compares each observed intermediate cardinality against the
// optimizer's estimate, and when the q-error exceeds a threshold re-enters
// plan enumeration over the whole query with the observation pinned and
// propagated to supersets (a Propagator over the original provider). Work
// is accounted the way a materializing executor would pay it: each probe is
// charged incrementally over the intermediates it reuses, subtrees that
// survive into the final plan are refunded from the final execution, and
// intermediates invalidated by a replan stay charged.
//
// The FeedbackCache is a memory-bounded, byte-accounted LRU keyed by a
// canonical query fingerprint, so repeat requests plan with previously
// observed cardinalities before executing at all.
package reopt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"jobench/internal/query"
)

// Canon is the canonical identity of a query: a fingerprint that is stable
// under reordering of the FROM list, the WHERE conjuncts, and the two sides
// of each join predicate, plus the relation permutation that maps the
// query's relation indexes onto canonical positions. Feedback is stored in
// canonical coordinates, so two spellings of the same query share one cache
// entry — and the pinned cardinalities land on the right subexpressions in
// either spelling.
type Canon struct {
	// FP is the canonical fingerprint (hex, 32 chars).
	FP string

	toCanon   []int // relation index -> canonical position
	fromCanon []int // canonical position -> relation index
}

// Canonical computes the canonical identity of a query graph.
func Canonical(g *query.Graph) Canon {
	n := g.N
	// Each relation's canonical key: table, alias, and its predicates in
	// sorted rendered form. Sorting the predicate strings is what makes two
	// WHERE orderings of the same conjunction collide.
	keys := make([]string, n)
	for i, rel := range g.Q.Rels {
		preds := make([]string, len(rel.Preds))
		for j, p := range rel.Preds {
			preds[j] = p.String()
		}
		sort.Strings(preds)
		keys[i] = rel.Table + "|" + rel.Alias + "|" + strings.Join(preds, "&")
	}
	ord := make([]int, n) // canonical position -> relation index
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool { return keys[ord[a]] < keys[ord[b]] })
	toCanon := make([]int, n)
	for pos, i := range ord {
		toCanon[i] = pos
	}

	var b strings.Builder
	for pos, i := range ord {
		fmt.Fprintf(&b, "R%d=%s\n", pos, keys[i])
	}
	// Join predicates in canonical coordinates, smaller side first, sorted:
	// stable under both edge ordering and predicate side-swaps.
	var joins []string
	for _, e := range g.Edges {
		for _, j := range e.Preds {
			l := fmt.Sprintf("%d.%s", toCanon[g.Q.RelIndex(j.LeftAlias)], j.LeftCol)
			r := fmt.Sprintf("%d.%s", toCanon[g.Q.RelIndex(j.RightAlias)], j.RightCol)
			if r < l {
				l, r = r, l
			}
			joins = append(joins, l+"="+r)
		}
	}
	sort.Strings(joins)
	b.WriteString(strings.Join(joins, "\n"))

	sum := sha256.Sum256([]byte(b.String()))
	return Canon{FP: hex.EncodeToString(sum[:16]), toCanon: toCanon, fromCanon: ord}
}

// ToCanon maps a relation set from the query's coordinates into canonical
// coordinates.
func (c Canon) ToCanon(s query.BitSet) query.BitSet {
	var out query.BitSet
	s.ForEach(func(r int) { out = out.Add(c.toCanon[r]) })
	return out
}

// FromCanon maps a canonical relation set back into the query's
// coordinates.
func (c Canon) FromCanon(s query.BitSet) query.BitSet {
	var out query.BitSet
	s.ForEach(func(r int) { out = out.Add(c.fromCanon[r]) })
	return out
}

// MapToCanon translates a feedback map into canonical coordinates.
func (c Canon) MapToCanon(m map[query.BitSet]float64) map[query.BitSet]float64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[query.BitSet]float64, len(m))
	for s, v := range m {
		out[c.ToCanon(s)] = v
	}
	return out
}

// MapFromCanon translates a canonical feedback map into the query's
// coordinates.
func (c Canon) MapFromCanon(m map[query.BitSet]float64) map[query.BitSet]float64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[query.BitSet]float64, len(m))
	for s, v := range m {
		out[c.FromCanon(s)] = v
	}
	return out
}
