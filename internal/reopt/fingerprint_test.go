package reopt

import (
	"testing"

	"jobench/internal/query"
)

// spellingA and spellingB are the same three-way join written in different
// orders: FROM list shuffled, WHERE conjuncts shuffled, join predicate sides
// swapped. Canonicalization must collapse them onto one fingerprint.
func spellingA() *query.Graph {
	return query.MustBuildGraph(&query.Query{
		ID: "fp-a",
		Rels: []query.Rel{
			{Alias: "a", Table: "t1", Preds: []*query.Pred{query.EqInt("kind", 3), query.LtInt("year", 2000)}},
			{Alias: "b", Table: "t2"},
			{Alias: "c", Table: "t3", Preds: []*query.Pred{query.EqStr("name", "x")}},
		},
		Joins: []query.Join{
			{LeftAlias: "a", LeftCol: "id", RightAlias: "b", RightCol: "aid"},
			{LeftAlias: "b", LeftCol: "id", RightAlias: "c", RightCol: "bid"},
		},
	})
}

func spellingB() *query.Graph {
	return query.MustBuildGraph(&query.Query{
		ID: "fp-b",
		Rels: []query.Rel{
			{Alias: "c", Table: "t3", Preds: []*query.Pred{query.EqStr("name", "x")}},
			{Alias: "b", Table: "t2"},
			{Alias: "a", Table: "t1", Preds: []*query.Pred{query.LtInt("year", 2000), query.EqInt("kind", 3)}},
		},
		Joins: []query.Join{
			{LeftAlias: "c", LeftCol: "bid", RightAlias: "b", RightCol: "id"},
			{LeftAlias: "b", LeftCol: "aid", RightAlias: "a", RightCol: "id"},
		},
	})
}

func TestFingerprintStableUnderReordering(t *testing.T) {
	ga, gb := spellingA(), spellingB()
	ca, cb := Canonical(ga), Canonical(gb)
	if ca.FP != cb.FP {
		t.Fatalf("equivalent spellings fingerprint differently: %s vs %s", ca.FP, cb.FP)
	}
	if len(ca.FP) != 32 {
		t.Errorf("fingerprint %q not 32 hex chars", ca.FP)
	}
	// The canonical coordinates of each relation must agree across
	// spellings, so feedback stored by one spelling lands on the right
	// subexpression of the other.
	for _, alias := range []string{"a", "b", "c"} {
		sa := ca.ToCanon(bs(ga.Q.RelIndex(alias)))
		sb := cb.ToCanon(bs(gb.Q.RelIndex(alias)))
		if sa != sb {
			t.Errorf("alias %s canonicalizes to %v in A but %v in B", alias, sa, sb)
		}
	}
}

func TestFingerprintDistinguishesQueries(t *testing.T) {
	base := Canonical(spellingA())
	// A different constant in one predicate is a different query.
	q := spellingA().Q
	q.Rels[0].Preds[0] = query.EqInt("kind", 4)
	changedPred := Canonical(query.MustBuildGraph(q))
	if changedPred.FP == base.FP {
		t.Error("changing a predicate constant kept the fingerprint")
	}
	// A different join column is a different query.
	q2 := spellingA().Q
	q2.Joins[1].RightCol = "other"
	changedJoin := Canonical(query.MustBuildGraph(q2))
	if changedJoin.FP == base.FP {
		t.Error("changing a join column kept the fingerprint")
	}
}

func TestCanonRoundTrip(t *testing.T) {
	g := spellingB()
	c := Canonical(g)
	for _, s := range []query.BitSet{bs(0), bs(1, 2), bs(0, 1, 2)} {
		if got := c.FromCanon(c.ToCanon(s)); got != s {
			t.Errorf("FromCanon(ToCanon(%v)) = %v", s, got)
		}
	}
	if c.MapToCanon(nil) != nil || c.MapFromCanon(map[query.BitSet]float64{}) != nil {
		t.Error("empty maps must translate to nil")
	}
}

func TestFeedbackTranslatesAcrossSpellings(t *testing.T) {
	ga, gb := spellingA(), spellingB()
	ca, cb := Canonical(ga), Canonical(gb)
	// Observe the (a ⋈ b) intermediate in spelling A's coordinates, store
	// canonically, and read it back in spelling B's coordinates.
	obsA := map[query.BitSet]float64{
		bs(ga.Q.RelIndex("a"), ga.Q.RelIndex("b")): 12345,
	}
	stored := ca.MapToCanon(obsA)
	gotB := cb.MapFromCanon(stored)
	wantSet := bs(gb.Q.RelIndex("a"), gb.Q.RelIndex("b"))
	if v, ok := gotB[wantSet]; !ok || v != 12345 {
		t.Fatalf("observation did not survive the spelling change: %v", gotB)
	}
}
