package reopt

import (
	"math"
	"sort"

	"jobench/internal/cardest"
	"jobench/internal/query"
)

// Propagator wraps a cardest.Provider with observed true cardinalities.
// Observed sets return their truth directly; every other set's estimate is
// scaled by the correction ratios (observed / estimated) of a greedy
// disjoint cover of observed subsets. The base estimator derived the
// superset's estimate from the very sub-estimates the observations
// correct, so the same multiplicative error applies up the tree — the
// adjustment-factor idea behind IBM's LEO learning optimizer. Without the
// propagation a replan re-enters enumeration with every unprobed estimate
// exactly as broken as before and can rarely exploit what execution just
// learned.
type Propagator struct {
	base  cardest.Provider
	obs   []obsEntry
	bySet map[query.BitSet]float64
}

// obsEntry is one observation with its precomputed correction ratio,
// sorted larger-set-first so the greedy cover prefers the most specific
// correction.
type obsEntry struct {
	s     query.BitSet
	ratio float64
}

// NewPropagator wraps base with the observations in obs (set -> true
// cardinality). An empty obs returns base unchanged; obs is copied and may
// be mutated by the caller afterwards.
func NewPropagator(base cardest.Provider, obs map[query.BitSet]float64) cardest.Provider {
	if len(obs) == 0 {
		return base
	}
	p := &Propagator{base: base, bySet: make(map[query.BitSet]float64, len(obs))}
	for s, v := range obs {
		est := math.Max(1, base.Card(s))
		p.obs = append(p.obs, obsEntry{s: s, ratio: math.Max(1, v) / est})
		p.bySet[s] = v
	}
	sort.Slice(p.obs, func(i, j int) bool {
		ci, cj := p.obs[i].s.Count(), p.obs[j].s.Count()
		if ci != cj {
			return ci > cj
		}
		return p.obs[i].s < p.obs[j].s
	})
	return p
}

// Card implements cardest.Provider.
func (p *Propagator) Card(s query.BitSet) float64 {
	if v, ok := p.bySet[s]; ok {
		return math.Max(1, v)
	}
	est := p.base.Card(s)
	ratio := 1.0
	remaining := s
	for _, o := range p.obs {
		if remaining.Contains(o.s) {
			ratio *= o.ratio
			remaining = remaining.Minus(o.s)
		}
	}
	return math.Max(1, est*ratio)
}

// SansSelection implements cardest.Provider by falling through to the base
// estimator: observations carry all selections applied, so they say
// nothing about the selection-free intermediate.
func (p *Propagator) SansSelection(s query.BitSet, r int) float64 {
	return p.base.SansSelection(s, r)
}

// Name implements cardest.Provider.
func (p *Propagator) Name() string {
	return p.base.Name() + " + feedback"
}
