package reopt

import (
	"testing"

	"jobench/internal/query"
)

// stubProv is a fixed table of estimates for Propagator tests.
type stubProv struct{ cards map[query.BitSet]float64 }

func (p stubProv) Card(s query.BitSet) float64 { return p.cards[s] }
func (p stubProv) SansSelection(s query.BitSet, r int) float64 {
	return p.cards[s] * 1000 // recognizable: only reachable via fallthrough
}
func (p stubProv) Name() string { return "stub" }

func TestPropagatorEmptyObsIsIdentity(t *testing.T) {
	base := stubProv{cards: map[query.BitSet]float64{bs(0): 5}}
	if _, wrapped := NewPropagator(base, nil).(*Propagator); wrapped {
		t.Error("empty observations must return the base provider unchanged")
	}
}

func TestPropagatorObservedAndScaled(t *testing.T) {
	base := stubProv{cards: map[query.BitSet]float64{
		bs(0):       10,
		bs(0, 1):    100,
		bs(1, 2):    70,
		bs(0, 1, 2): 1000,
	}}
	p := NewPropagator(base, map[query.BitSet]float64{
		bs(0):    40,  // ratio 4
		bs(0, 1): 500, // ratio 5
	})

	// Observed sets return their truth directly.
	if got := p.Card(bs(0)); got != 40 {
		t.Errorf("Card(observed {0}) = %v, want 40", got)
	}
	if got := p.Card(bs(0, 1)); got != 500 {
		t.Errorf("Card(observed {0,1}) = %v, want 500", got)
	}

	// A superset scales by the ratios of a greedy disjoint cover that
	// prefers larger sets: {0,1,2} is covered by {0,1} (ratio 5), after
	// which {0} no longer fits — est 1000 x 5, not 1000 x 4 or x 20.
	if got := p.Card(bs(0, 1, 2)); got != 5000 {
		t.Errorf("Card({0,1,2}) = %v, want 5000 (ratio of the largest covering observation)", got)
	}

	// A set containing no observation keeps the base estimate.
	if got := p.Card(bs(1, 2)); got != 70 {
		t.Errorf("Card({1,2}) = %v, want untouched 70", got)
	}

	// SansSelection falls through to the base estimator.
	if got := p.SansSelection(bs(0), 0); got != 10000 {
		t.Errorf("SansSelection = %v, want base's 10000", got)
	}
	if got := p.Name(); got != "stub + feedback" {
		t.Errorf("Name() = %q", got)
	}
}

func TestPropagatorDisjointRatiosMultiply(t *testing.T) {
	base := stubProv{cards: map[query.BitSet]float64{
		bs(0):       10,
		bs(1):       20,
		bs(0, 1, 2): 1000,
	}}
	p := NewPropagator(base, map[query.BitSet]float64{
		bs(0): 30, // ratio 3
		bs(1): 40, // ratio 2
	})
	// Both singletons fit disjointly under {0,1,2}: 1000 x 3 x 2.
	if got := p.Card(bs(0, 1, 2)); got != 6000 {
		t.Errorf("Card({0,1,2}) = %v, want 6000 (both corrections applied)", got)
	}
}

func TestPropagatorClampsToOne(t *testing.T) {
	base := stubProv{cards: map[query.BitSet]float64{bs(0): 100, bs(0, 1): 0.5}}
	p := NewPropagator(base, map[query.BitSet]float64{bs(0): 0})
	if got := p.Card(bs(0)); got != 1 {
		t.Errorf("observed zero must clamp to 1, got %v", got)
	}
	if got := p.Card(bs(0, 1)); got < 1 {
		t.Errorf("scaled estimate %v below 1", got)
	}
}
