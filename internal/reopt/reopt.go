package reopt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"jobench/internal/cardest"
	"jobench/internal/costmodel"
	"jobench/internal/engine"
	"jobench/internal/index"
	"jobench/internal/optimizer"
	"jobench/internal/plan"
	"jobench/internal/query"
	"jobench/internal/storage"
	"jobench/internal/trace"
)

// DefaultQErrThreshold is the q-error above which an observed intermediate
// triggers re-optimization. 2 is deliberately tight: the paper's Figure 3
// shows estimates degrading by orders of magnitude per join level, so a
// factor-2 surprise at the bottom of the tree is already a strong signal.
const DefaultQErrThreshold = 2

// DefaultMaxReplans bounds how many times one query may re-enter the
// enumerator.
const DefaultMaxReplans = 4

// DefaultMaxProbeRels bounds how far up the plan the executor probes: only
// subtrees joining at most this many relations are executed for
// observation. The first joins are where the paper shows estimates start
// to degrade, and they are cheap to materialize; probing high subtrees
// risks invalidating expensive intermediates on every replan for
// observations the enumerator can rarely exploit.
const DefaultMaxProbeRels = 3

// probeOverrunFactor bounds each probe's work budget at this multiple of
// the subtree's expected work (the sum of its estimated cardinalities). A
// probe that overruns the budget has already proven the estimate wrong —
// a mid-query re-optimizer aborts it there instead of materializing the
// full explosion, charges only the work done, and replans with the
// overrun pinned as a lower-bound correction.
const probeOverrunFactor = 10

// probeBudgetFloor keeps probe budgets above engine block granularity so
// small accurate probes never trip the overrun abort.
const probeBudgetFloor = 4096

// replanMargin scales the current plan's cost in the replan gate. Both
// sides of the gate are priced under the same feedback-corrected estimates
// and net of the materialized intermediates each plan can reuse, which
// makes invalidation a first-class cost: a candidate that abandons every
// intermediate must predict enough of a win to pay for rebuilding from
// scratch, while one that keeps them switches almost for free. With the
// netting in place no extra safety margin is needed — 1.0 switches on any
// genuine predicted win.
const replanMargin = 1.0

// Config fixes the environment for an adaptive execution: the same
// database, physical design, cost model and enumeration configuration the
// static optimizer would use, plus the re-optimization policy.
type Config struct {
	// DB is the database to execute against.
	DB *storage.Database
	// Indexes is the physical design, used both for index-nested-loop
	// execution and as the optimizer's index checker.
	Indexes *index.Set
	// Model is the cost model used by every (re-)optimization.
	Model costmodel.Model

	// DisableNLJ, Shape, Algorithm and Seed configure the enumerator
	// exactly as optimizer.Optimizer does.
	DisableNLJ bool
	Shape      plan.Shape
	Algorithm  optimizer.Algorithm
	Seed       int64

	// Rehash and WorkLimit configure execution (probes and the final plan
	// alike) exactly as engine.Config does.
	Rehash    bool
	WorkLimit int64

	// QErrThreshold is the q-error above which a probe triggers a replan
	// (non-positive selects DefaultQErrThreshold).
	QErrThreshold float64
	// MaxReplans bounds re-optimizations per query (non-positive selects
	// DefaultMaxReplans).
	MaxReplans int
	// MaxProbeRels bounds probed subtrees to at most this many relations
	// (non-positive selects DefaultMaxProbeRels).
	MaxProbeRels int

	// Runner optionally supplies a scratch-owning engine runner to reuse
	// across calls; nil uses a private one.
	Runner *engine.Runner
}

// Step records one probe: a plan subtree executed to observe its true
// cardinality.
type Step struct {
	// S is the relation set of the probed subtree.
	S query.BitSet
	// Estimate is the optimizer's cardinality estimate for S.
	Estimate float64
	// Observed is the materialized row count.
	Observed float64
	// QError is the q-error between the two.
	QError float64
	// Aborted reports that the probe overran its work budget and was cut
	// off; Observed is then a lower-bound correction, not truth.
	Aborted bool
	// PredictedGain is the re-optimized candidate's estimated cost over the
	// current plan's (both priced under the feedback-corrected estimates)
	// when a replan was considered; 0 when the q-error stayed under the
	// threshold.
	PredictedGain float64
	// Replanned reports whether this probe triggered re-optimization.
	Replanned bool
}

// Result reports an adaptive execution.
type Result struct {
	// Rows is the final result cardinality.
	Rows int64
	// Work is the adaptive cost in engine work units, modelling an executor
	// that materializes probe intermediates bottom-up and reuses them:
	// each probe is charged incrementally (its subtree work minus the
	// already-materialized children it would reuse), and subtrees that
	// survive verbatim into the final plan are refunded from the final
	// execution (the executor reuses the intermediate instead of
	// recomputing it). When no replan occurs the charges and refunds cancel
	// exactly and Work equals what static execution of the same plan
	// costs; every replan's invalidated intermediates stay charged.
	Work int64
	// FinalWork is the final plan's execution alone.
	FinalWork int64
	// ProbeWork is the total work spent probing (reused or not).
	ProbeWork int64
	// TimedOut reports that a probe or the final execution exceeded the
	// work limit.
	TimedOut bool
	// Replans counts re-optimizations triggered.
	Replans int
	// Steps lists the probes in execution order.
	Steps []Step
	// Observed maps each probed relation set to its true cardinality —
	// this is what feeds the plan-feedback cache.
	Observed map[query.BitSet]float64
	// Plan is the plan the execution ended on.
	Plan *plan.Node
}

// Run executes g adaptively: optimize under prov (with pinned observed
// cardinalities injected on top), execute plan subtrees bottom-up, and
// whenever an observed intermediate's q-error exceeds the threshold,
// re-enter plan enumeration over the whole query with the observation
// pinned. Pinned carries prior knowledge (e.g. a feedback-cache hit) and
// may be nil; it is not mutated. ctx carries an optional trace (each
// probe and each replan decision records a span, so /v1/traces shows
// *why* an adaptive execution replanned) and bounds execution: a
// cancelled or deadline-exceeded ctx aborts the current probe or final
// execution at the next block boundary with ctx's error.
func Run(ctx context.Context, g *query.Graph, prov cardest.Provider, pinned map[query.BitSet]float64, cfg Config) (Result, error) {
	threshold := cfg.QErrThreshold
	if threshold <= 0 {
		threshold = DefaultQErrThreshold
	}
	maxReplans := cfg.MaxReplans
	if maxReplans <= 0 {
		maxReplans = DefaultMaxReplans
	}
	maxProbeRels := cfg.MaxProbeRels
	if maxProbeRels <= 0 {
		maxProbeRels = DefaultMaxProbeRels
	}
	runner := cfg.Runner
	if runner == nil {
		runner = engine.NewRunner()
	}

	overrides := make(map[query.BitSet]float64, len(pinned))
	for s, v := range pinned {
		overrides[s] = v
	}
	opt := &optimizer.Optimizer{
		DB:         cfg.DB,
		Model:      cfg.Model,
		Indexes:    cfg.Indexes,
		DisableNLJ: cfg.DisableNLJ,
		Shape:      cfg.Shape,
		Algorithm:  cfg.Algorithm,
		Seed:       cfg.Seed,
	}
	ecfg := engine.Config{Rehash: cfg.Rehash, WorkLimit: cfg.WorkLimit, Ctx: ctx}

	res := Result{Observed: make(map[query.BitSet]float64)}
	cur, err := opt.Optimize(g, NewPropagator(prov, overrides))
	if err != nil {
		return res, fmt.Errorf("reopt: initial plan: %w", err)
	}

	type probeRec struct {
		work    int64 // full subtree work as executed
		incr    int64 // incremental charge after reusing materialized children
		sig     string
		aborted bool
	}
	probes := make(map[query.BitSet]probeRec)
	// charged accumulates the incremental probe charges: firstUnprobed
	// works post-order, so when a node is probed its join children are
	// already materialized and a materializing executor only pays the
	// node's own work on top of them.
	var charged int64
	// reusableCost prices the maximal materialized subtrees of a plan under
	// the given provider, in the same cost-model units as the plan's total:
	// work the executor skips by reusing intermediates instead of
	// recomputing them. Pricing both sides of the replan gate net of reuse
	// is what makes invalidation a first-class cost — a candidate that
	// abandons every materialized intermediate must predict enough of a win
	// to pay for rebuilding from scratch.
	reusableCost := func(root *plan.Node, inj cardest.Provider) float64 {
		total := 0.0
		var walk func(n *plan.Node)
		walk = func(n *plan.Node) {
			if n == nil || n.IsLeaf() {
				return
			}
			if n != root {
				if rec, ok := probes[n.S]; ok && !rec.aborted {
					total += plan.Cost(n, g, cfg.DB, inj, cfg.Model)
					return
				}
			}
			walk(n.Left)
			walk(n.Right)
		}
		walk(root)
		return total
	}
	for {
		node := firstUnprobed(cur, maxProbeRels, func(s query.BitSet) bool { _, ok := probes[s]; return ok })
		if node == nil {
			break
		}
		// A probe gets its own work budget scaled off the subtree's expected
		// work; overrunning it is itself the observation.
		expected := expectedWork(node, g, cfg.DB)
		budget := probeOverrunFactor * expected
		if budget < probeBudgetFloor {
			budget = probeBudgetFloor
		}
		pcfg := ecfg
		if pcfg.WorkLimit == 0 || budget < pcfg.WorkLimit {
			pcfg.WorkLimit = budget
		}
		probeSpan := trace.StartSpan(ctx, "reopt.probe")
		pr, perr := runner.RunSubtree(cfg.DB, cfg.Indexes, g, node, pcfg)
		probeSpan.End(trace.Int64("rels", int64(node.S.Count())),
			trace.Int64("work", pr.Work), trace.Int64("rows", pr.Rows),
			trace.Bool("aborted", perr != nil))
		res.ProbeWork += pr.Work
		incr := pr.Work
		for _, child := range []*plan.Node{node.Left, node.Right} {
			if child == nil || child.IsLeaf() {
				continue
			}
			// A materialized intermediate is the same multiset of rows
			// whatever join order produced it, so reuse is keyed on the
			// relation set alone.
			if rec, ok := probes[child.S]; ok && !rec.aborted {
				incr -= rec.work
			}
		}
		if incr < 0 {
			incr = 0
		}
		charged += incr
		aborted := false
		if perr != nil {
			if !errors.Is(perr, engine.ErrWorkLimit) {
				return res, perr
			}
			if cfg.WorkLimit > 0 && (pr.Work >= cfg.WorkLimit || charged >= cfg.WorkLimit) {
				// The overall limit is gone: the query is out of time
				// whatever we replan to. Charge everything spent.
				res.TimedOut = true
				res.Work = charged
				res.Plan = cur
				return res, nil
			}
			aborted = true
		}
		est := math.Max(1, node.ECard)
		var obs float64
		if aborted {
			// No materialized intermediate, only a lower bound: the subtree
			// produced at least overrun-factor times its expected work, so
			// pin the estimate scaled by the observed overrun and let the
			// replan gate decide. Lower bounds are not truth — they stay out
			// of Observed (and hence the feedback cache).
			f := float64(pr.Work) / math.Max(1, float64(expected))
			if f <= threshold {
				f = threshold + 1
			}
			obs = est * f
		} else {
			obs = float64(pr.Rows)
			res.Observed[node.S] = obs
		}
		q := qError(est, obs)
		step := Step{S: node.S, Estimate: node.ECard, Observed: obs, QError: q, Aborted: aborted}
		overrides[node.S] = obs
		// An aborted probe materialized nothing: it stays recorded so the
		// loop does not retry it, but is never reused or refunded.
		probes[node.S] = probeRec{work: pr.Work, incr: incr, sig: signature(node), aborted: aborted}
		if q > threshold && res.Replans < maxReplans {
			replanSpan := trace.StartSpan(ctx, "reopt.replan")
			inj := NewPropagator(prov, overrides)
			cand, err := opt.Optimize(g, inj)
			if err != nil {
				return res, fmt.Errorf("reopt: replan %d: %w", res.Replans+1, err)
			}
			// Price both plans under the same feedback-corrected estimates,
			// net of the materialized intermediates each can reuse, and
			// switch only on a clear predicted win.
			curCost := plan.Cost(cur, g, cfg.DB, inj, cfg.Model) - reusableCost(cur, inj)
			candCost := cand.ECost - reusableCost(cand, inj)
			step.PredictedGain = candCost / math.Max(1, curCost)
			if candCost < replanMargin*curCost {
				res.Replans++
				step.Replanned = true
				cur = cand
			}
			replanSpan.End(trace.Int64("qerr", int64(q)),
				trace.Bool("replanned", step.Replanned))
		}
		res.Steps = append(res.Steps, step)
	}

	final, ferr := runner.Run(cfg.DB, cfg.Indexes, g, cur, ecfg)
	res.FinalWork = final.Work
	res.Rows = final.Rows
	res.Plan = cur
	res.Work = charged + final.Work
	if ferr != nil {
		if errors.Is(ferr, engine.ErrWorkLimit) {
			res.TimedOut = true
			return res, nil
		}
		return res, ferr
	}
	// Refund the maximal final-plan subtrees whose relation set is
	// materialized: the executor reuses those intermediates instead of
	// recomputing them, which is work the final execution's total otherwise
	// includes. When the probe's structure matches, its recorded work IS
	// that recomputation cost; when a replan reshaped the subtree over the
	// same set, the recomputation cost is measured directly (the engine is
	// deterministic, so an uncharged re-run of the subtree reads off the
	// exact work the full execution spent there). In the no-replan case the
	// refunds cancel the charges and Work collapses to the static cost of
	// the same plan.
	var rerr error
	var refund func(n *plan.Node) int64
	refund = func(n *plan.Node) int64 {
		if n == nil || n.IsLeaf() || rerr != nil {
			return 0
		}
		if n != cur {
			if rec, ok := probes[n.S]; ok && !rec.aborted {
				if rec.sig == signature(n) {
					return rec.work
				}
				m, err := runner.RunSubtree(cfg.DB, cfg.Indexes, g, n, engine.Config{Rehash: cfg.Rehash, Ctx: ctx})
				if err != nil {
					rerr = err
					return 0
				}
				return m.Work
			}
		}
		return refund(n.Left) + refund(n.Right)
	}
	res.Work = charged + final.Work - refund(cur)
	if rerr != nil {
		return res, fmt.Errorf("reopt: measuring reused subtree: %w", rerr)
	}
	if res.Work < 1 {
		res.Work = 1
	}
	return res, nil
}

// firstUnprobed returns the deepest, leftmost join subtree below the root
// that joins at most maxRels relations and has not been probed yet, or nil
// when every such prefix join has. Bottom-up probing of small prefixes is
// the point: two- and three-relation misestimates are cheap to observe and
// are exactly where the paper shows estimates start to degrade.
func firstUnprobed(root *plan.Node, maxRels int, probed func(query.BitSet) bool) *plan.Node {
	var found *plan.Node
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if n == nil || n.IsLeaf() || found != nil {
			return
		}
		walk(n.Left)
		walk(n.Right)
		if found == nil && n != root && n.S.Count() <= maxRels && !probed(n.S) {
			found = n
		}
	}
	walk(root)
	return found
}

// signature serializes a subtree's structure (algorithms and leaf order):
// two probes produce interchangeable intermediates exactly when their
// signatures and relation sets match.
func signature(n *plan.Node) string {
	var b strings.Builder
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if n.IsLeaf() {
			fmt.Fprintf(&b, "L%d", n.Rel)
			return
		}
		fmt.Fprintf(&b, "(%d ", int(n.Algo))
		walk(n.Left)
		b.WriteByte(' ')
		walk(n.Right)
		b.WriteByte(')')
	}
	walk(n)
	return b.String()
}

// expectedWork estimates a subtree's execution work from its planned
// cardinalities, mirroring the engine's metering: a leaf scan charges one
// unit per base tuple plus one per emitted tuple, and each join roughly
// one per output tuple on top of the inputs it consumes.
func expectedWork(n *plan.Node, g *query.Graph, db *storage.Database) int64 {
	if n == nil {
		return 0
	}
	w := int64(math.Max(1, n.ECard))
	if n.IsLeaf() {
		if t := db.Table(g.Q.Rels[n.Rel].Table); t != nil {
			w += int64(t.NumRows())
		}
		return w
	}
	return w + expectedWork(n.Left, g, db) + expectedWork(n.Right, g, db)
}

func collectSignatures(n *plan.Node, out map[query.BitSet]string) {
	if n == nil || n.IsLeaf() {
		return
	}
	out[n.S] = signature(n)
	collectSignatures(n.Left, out)
	collectSignatures(n.Right, out)
}

func qError(est, actual float64) float64 {
	if est < 1 {
		est = 1
	}
	if actual < 1 {
		actual = 1
	}
	if est > actual {
		return est / actual
	}
	return actual / est
}
