package router

import (
	"hash/fnv"
	"slices"
	"sort"
	"strconv"
)

// vnodes is the number of ring points each replica contributes. More
// points smooth the key distribution (each replica owns many small arcs
// instead of one big one) and shrink the fraction of keys that move when
// membership changes toward the ideal 1/N.
const vnodes = 64

// AffinityKey canonicalizes a request's (workload, seed, scale) into the
// string the ring hashes. The router and every replica's peer-fill MUST
// derive owners from this same encoding, or affinity silently breaks: 'g'
// formatting is the same rendering service.Key uses, so 0.1 and 0.10
// collapse to one key. Requests that omit workload/seed/scale hash as
// ("", 0, 0) — the router does not know the replicas' defaults, but all
// default-world requests still agree on one owner, which is all affinity
// needs. The workload name is a plain string here on purpose: the router
// stays ignorant of the workload registry and routes names it has never
// heard of.
func AffinityKey(workload string, seed int64, scale float64) string {
	return workload + "/" + strconv.FormatInt(seed, 10) + "/" + strconv.FormatFloat(scale, 'g', -1, 64)
}

// Ring is a consistent-hash ring over replica base URLs. Each replica is
// hashed onto the ring at vnodes points; a key is owned by the first
// replica point at or clockwise after the key's hash. Adding or removing
// one replica therefore only reassigns the arcs that replica's points
// bounded — about 1/N of the key space — while every other key keeps its
// owner, which is what keeps the replicas' LRU system pools hot across
// membership changes.
//
// A Ring is immutable after New; lookups are safe for concurrent use.
type Ring struct {
	points   []ringPoint
	replicas []string
}

type ringPoint struct {
	hash    uint64
	replica int // index into replicas
}

// NewRing builds a ring over the given replica identifiers (base URLs).
// Duplicates are collapsed; order does not matter (two rings over the
// same set agree on every owner).
func NewRing(replicas []string) *Ring {
	uniq := slices.Clone(replicas)
	slices.Sort(uniq)
	uniq = slices.Compact(uniq)
	r := &Ring{replicas: uniq}
	for i, rep := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(rep + "#" + strconv.Itoa(v)),
				replica: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on replica index so owner choice is deterministic even
		// in the astronomically unlikely event of a 64-bit hash collision.
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// Replicas returns the ring's members (deduplicated, sorted).
func (r *Ring) Replicas() []string { return r.replicas }

// Owner returns the replica owning key, ignoring liveness ("" on an empty
// ring).
func (r *Ring) Owner(key string) string {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// OwnerLive returns the first replica clockwise from key's hash for which
// live returns true — the failover contract: every router and replica
// agreeing on the same live set picks the same owner, and when a replica
// is marked down only its keys move (to their next-clockwise neighbor).
// Returns "" if no replica is live.
func (r *Ring) OwnerLive(key string, live func(string) bool) string {
	for _, rep := range r.Sequence(key) {
		if live(rep) {
			return rep
		}
	}
	return ""
}

// Sequence returns all replicas in clockwise order from key's hash, each
// exactly once: the preference order for forwarding (owner first, then
// failover candidates).
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seq := make([]string, 0, len(r.replicas))
	seen := make([]bool, len(r.replicas))
	for i := 0; i < len(r.points) && len(seq) < len(r.replicas); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			seq = append(seq, r.replicas[p.replica])
		}
	}
	return seq
}

// hash64 hashes a string onto the ring. FNV-64a alone clusters badly on
// the near-identical strings this package feeds it (vnode labels differing
// in one digit), so the result is passed through a splitmix64 finalizer
// for full avalanche — without it one replica can own 10x less than its
// fair share.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
