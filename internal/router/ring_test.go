package router

import (
	"fmt"
	"testing"
)

// keys returns nKeys distinct affinity keys spanning many (seed, scale)
// worlds.
func testKeys(n int) []string {
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, AffinityKey("imdb", int64(i%97), float64(i)/8))
	}
	return keys
}

func replicaURLs(n int) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return urls
}

// TestRingStability is the consistent-hashing property test: growing the
// ring from N to N+1 replicas may move only the keys the new replica now
// owns — roughly 1/(N+1) of them — and every moved key must have moved TO
// the new replica, never between old ones.
func TestRingStability(t *testing.T) {
	const nKeys = 4000
	keys := testKeys(nKeys)
	for _, n := range []int{2, 3, 5, 8} {
		urls := replicaURLs(n + 1)
		before := NewRing(urls[:n])
		after := NewRing(urls)
		newcomer := urls[n]

		moved := 0
		for _, k := range keys {
			oldOwner, newOwner := before.Owner(k), after.Owner(k)
			if oldOwner == newOwner {
				continue
			}
			moved++
			if newOwner != newcomer {
				t.Fatalf("n=%d: key %q moved %s -> %s, not to the new replica %s",
					n, k, oldOwner, newOwner, newcomer)
			}
		}
		ideal := float64(nKeys) / float64(n+1)
		// vnodes=64 per replica keeps the arc sizes close to ideal; 2.5x is
		// a generous bound that still catches a broken ring (which moves
		// either ~0 or ~all keys).
		if f := float64(moved); f == 0 || f > 2.5*ideal {
			t.Fatalf("n=%d: %d of %d keys moved (ideal %.0f): not consistent",
				n, moved, nKeys, ideal)
		}
	}
}

// TestRingDeterminism: the same key always lands on the same replica, and
// the ring is insensitive to member order and duplicates.
func TestRingDeterminism(t *testing.T) {
	urls := replicaURLs(4)
	a := NewRing(urls)
	b := NewRing([]string{urls[2], urls[0], urls[3], urls[1], urls[0]})
	for _, k := range testKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %q: owner differs by construction order: %s vs %s",
				k, a.Owner(k), b.Owner(k))
		}
		if a.Owner(k) != a.Owner(k) {
			t.Fatalf("key %q: owner not stable", k)
		}
	}
}

// TestRingOwnerLive: marking one replica down moves exactly its keys (to
// their next-clockwise candidate); every other key keeps its owner. A key
// whose owner is down lands on the second replica of its Sequence.
func TestRingOwnerLive(t *testing.T) {
	urls := replicaURLs(4)
	r := NewRing(urls)
	down := urls[1]
	live := func(u string) bool { return u != down }

	for _, k := range testKeys(1000) {
		owner := r.Owner(k)
		got := r.OwnerLive(k, live)
		if owner != down {
			if got != owner {
				t.Fatalf("key %q: owner %s is live but OwnerLive returned %s", k, owner, got)
			}
			continue
		}
		seq := r.Sequence(k)
		if len(seq) < 2 || got != seq[1] {
			t.Fatalf("key %q: down owner should fail over to %v[1], got %s", k, seq, got)
		}
	}
	if got := r.OwnerLive("anything", func(string) bool { return false }); got != "" {
		t.Fatalf("OwnerLive with nothing live = %q, want \"\"", got)
	}
}

// TestRingSequence: Sequence lists every replica exactly once.
func TestRingSequence(t *testing.T) {
	r := NewRing(replicaURLs(5))
	for _, k := range testKeys(100) {
		seq := r.Sequence(k)
		if len(seq) != 5 {
			t.Fatalf("Sequence(%q) has %d entries, want 5", k, len(seq))
		}
		seen := map[string]bool{}
		for _, u := range seq {
			if seen[u] {
				t.Fatalf("Sequence(%q) repeats %s", k, u)
			}
			seen[u] = true
		}
	}
}

// TestRingBalance: with vnodes smoothing, no replica owns a wildly
// disproportionate share of the key space.
func TestRingBalance(t *testing.T) {
	const nKeys = 8000
	r := NewRing(replicaURLs(4))
	counts := map[string]int{}
	for _, k := range testKeys(nKeys) {
		counts[r.Owner(k)]++
	}
	ideal := nKeys / 4
	for u, c := range counts {
		if c < ideal/3 || c > ideal*3 {
			t.Fatalf("replica %s owns %d of %d keys (ideal %d): ring is unbalanced",
				u, c, nKeys, ideal)
		}
	}
}

func TestAffinityKeyCanonical(t *testing.T) {
	if AffinityKey("imdb", 42, 0.1) != AffinityKey("imdb", 42, 0.10) {
		t.Fatal("equal scales must canonicalize to one key")
	}
	if AffinityKey("imdb", 42, 0.1) == AffinityKey("imdb", 42, 0.3) {
		t.Fatal("distinct scales must not collide")
	}
	if AffinityKey("imdb", 42, 0.1) == AffinityKey("tpch", 42, 0.1) {
		t.Fatal("different workloads must hash to different affinity keys")
	}
	if got, want := AffinityKey("imdb", 42, 0.1), "imdb/42/0.1"; got != want {
		t.Fatalf(`AffinityKey("imdb", 42, 0.1) = %q, want %q`, got, want)
	}
}
