// Package router fronts N jobench serve replicas with consistent hashing
// on (seed, scale): every request for one world lands on the same replica,
// so that replica's LRU system pool stays hot while the others never pay
// for it. The router health-checks each replica's /healthz on an interval,
// marks a replica down after consecutive failures (its keys move to the
// next-clockwise neighbor; everyone else's keys stay put) and back up on
// recovery, bounds per-replica in-flight forwards, and exposes its own
// /healthz and /metrics (per-replica request counts, latencies, retries,
// mark-downs, breaker state).
//
// The router is also the resilience boundary of the distributed tier. It
// mints an absolute end-to-end deadline (X-Jobench-Deadline) that replicas
// enforce as context deadlines all the way into engine execution; it
// retries transport errors and retryable 5xx on the next candidate with
// exponential backoff and jitter, but only on idempotent routes, only
// within the remaining deadline, and only while the client's retry budget
// (a token bucket refilled as a fraction of its request rate) has tokens —
// so a correlated outage degrades to pass-through instead of a retry
// storm. A per-replica circuit breaker over a sliding outcome window
// routes half the traffic around a replica that answers but fails, the
// step between healthy and probe-driven mark-down. On shutdown the router
// drains: in-flight forwards get ShutdownGrace to finish before their
// contexts are cancelled.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jobench/internal/deadline"
	"jobench/internal/trace"
)

// Config configures a router Server.
type Config struct {
	// Addr is the listen address for ListenAndServe (":8070").
	Addr string
	// Replicas are the base URLs of the jobench serve backends
	// ("http://127.0.0.1:8081"). At least one is required.
	Replicas []string
	// HealthInterval is the period of the per-replica /healthz probe
	// (default 2s).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 1s).
	HealthTimeout time.Duration
	// MarkDownAfter is the number of consecutive probe or forward failures
	// that marks a replica down (default 2). One success marks it back up.
	MarkDownAfter int
	// InFlightPerReplica bounds concurrent forwards per replica; excess
	// requests queue (default 32).
	InFlightPerReplica int
	// ForwardTimeout bounds one forwarded request, queueing included
	// (default 5m — experiment sweeps are legitimately slow).
	ForwardTimeout time.Duration
	// RequestTimeout is the end-to-end deadline the router mints for every
	// forwarded request as an absolute X-Jobench-Deadline header, honored
	// by replicas as a context deadline all the way into engine execution.
	// A client-supplied earlier deadline wins; a later one is clamped to
	// this policy. Default: ForwardTimeout.
	RequestTimeout time.Duration
	// AttemptTimeout bounds ONE forward attempt, so a hung replica burns
	// one attempt's worth of budget instead of the whole deadline — the
	// remaining budget funds a retry on the next candidate. Default:
	// RequestTimeout (one attempt may use the full budget).
	AttemptTimeout time.Duration
	// MaxRetries bounds re-attempts after the first forward (transport
	// errors and retryable 5xx alike; default 2).
	MaxRetries int
	// RetryBudget is the per-client retry allowance as a fraction of its
	// request rate: each initial request earns this many retry tokens
	// (bucket capped at 10), each retry spends one, and an empty bucket
	// means the failure is served as-is — no retry storms under correlated
	// failure (default 0.2).
	RetryBudget float64
	// ShutdownGrace bounds how long a cancelled router waits for in-flight
	// forwards to drain — undisturbed — before cancelling the stragglers
	// (default 5s).
	ShutdownGrace time.Duration
	// TraceCapacity bounds the ring buffer of recently finished request
	// traces served by the router's own /v1/traces (non-positive selects
	// trace.DefaultStoreCapacity).
	TraceCapacity int
	// SlowQuery logs a span summary for every forwarded request at least
	// this slow (0 disables outlier logging).
	SlowQuery time.Duration
	// Logger receives router diagnostics (default slog.Default()).
	// Request-scoped lines carry trace_id and route attrs.
	Logger *slog.Logger
}

func (c Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.Default()
}

// logf adapts the structured logger for the router's non-request lines.
func (c Config) logf() func(format string, args ...any) {
	lg := c.logger()
	return func(format string, args ...any) {
		lg.Info(fmt.Sprintf(format, args...))
	}
}

// Circuit-breaker tuning. The breaker watches a sliding window of forward
// outcomes per replica and sits BETWEEN healthy and marked-down: a replica
// that still answers probes but fails half its real requests gets half its
// traffic routed around it (hysteresis keeps it from flapping), while the
// probe-driven mark-down still handles the fully dead case.
const (
	breakerWindow     = 32  // outcomes remembered per replica
	breakerMinSamples = 16  // don't judge a replica on fewer outcomes
	breakerOnFrac     = 0.5 // failure fraction that starts throttling
	breakerOffFrac    = 0.2 // failure fraction that ends it
)

// replica is one backend and its router-side state.
type replica struct {
	url string

	up        atomic.Bool
	consecNow atomic.Int64 // consecutive failures (probe or forward)

	slots chan struct{} // in-flight limiter, capacity InFlightPerReplica

	// Breaker state: throttled/throttleTick are read on the hot path
	// lock-free; the outcome window is folded into the mu section the
	// per-request bookkeeping already takes.
	throttled    atomic.Bool
	throttleTick atomic.Int64 // alternates admit/defer while throttled

	mu          sync.Mutex
	requests    map[int]int64 // status code -> count (0 = transport error)
	seconds     float64       // cumulative forward latency
	retries     int64         // re-attempts that landed on this replica
	markDowns   int64         // up -> down transitions
	outcomes    [breakerWindow]bool
	outcomeIdx  int
	outcomeN    int
	transitions int64 // breaker state flips (both directions)
}

// Server is the consistent-hash router.
type Server struct {
	cfg      Config
	ring     *Ring
	replicas map[string]*replica
	mux      *http.ServeMux
	client   *http.Client
	traces   *trace.Store
	budget   *budgetPool

	noReplica       atomic.Int64 // requests refused because no replica was live
	deadlineExpired atomic.Int64 // requests that ran out their end-to-end deadline here
	budgetDenied    atomic.Int64 // retries suppressed by an empty client budget
}

// New builds a router Server (without binding a socket).
func New(cfg Config) (*Server, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	if cfg.MarkDownAfter <= 0 {
		cfg.MarkDownAfter = 2
	}
	if cfg.InFlightPerReplica <= 0 {
		cfg.InFlightPerReplica = 32
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 5 * time.Minute
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = cfg.ForwardTimeout
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = cfg.RequestTimeout
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 2
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 0.2
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = 5 * time.Second
	}
	ring := NewRingFromConfig(cfg.Replicas)
	// Tuned transport: the stdlib default of 2 idle conns per host forces
	// reconnect churn the moment fan-out exceeds 2, and an unbounded dial
	// lets a black-holed replica eat a whole attempt. Size the keep-alive
	// pool to the in-flight bound so steady state never redials; the
	// per-attempt timeout still comes from request contexts.
	transport := &http.Transport{
		DialContext:         (&net.Dialer{Timeout: 2 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
		MaxIdleConns:        len(cfg.Replicas) * cfg.InFlightPerReplica,
		MaxIdleConnsPerHost: cfg.InFlightPerReplica,
		IdleConnTimeout:     90 * time.Second,
	}
	s := &Server{
		cfg:      cfg,
		ring:     ring,
		replicas: make(map[string]*replica, len(ring.Replicas())),
		mux:      http.NewServeMux(),
		client:   &http.Client{Transport: transport},
		traces:   trace.NewStore(cfg.TraceCapacity),
		budget:   newBudgetPool(cfg.RetryBudget),
	}
	for _, u := range ring.Replicas() {
		rep := &replica{
			url:      u,
			slots:    make(chan struct{}, cfg.InFlightPerReplica),
			requests: make(map[int]int64),
		}
		// Replicas start marked up: the first failed probe or forward flips
		// them, and starting optimistic means a router booted alongside its
		// replicas serves as soon as anything answers instead of rejecting
		// until the first probe cycle completes.
		rep.up.Store(true)
		s.replicas[u] = rep
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// More specific than the forward catch-all: the router answers
	// /v1/traces itself (its view of recent forwards); each replica still
	// serves its own ring directly.
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("/v1/", s.handleForward)
	return s, nil
}

// Traces exposes the router's trace ring (for tests and embedding).
func (s *Server) Traces() *trace.Store { return s.traces }

// NewRingFromConfig builds the ring the router uses; exported so replicas
// (service peer-fill) and tests derive owners from the identical ring.
func NewRingFromConfig(replicas []string) *Ring {
	trimmed := make([]string, 0, len(replicas))
	for _, r := range replicas {
		r = strings.TrimRight(strings.TrimSpace(r), "/")
		if r != "" {
			trimmed = append(trimmed, r)
		}
	}
	return NewRing(trimmed)
}

// Handler returns the router's HTTP handler (also useful under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds cfg.Addr and serves until ctx is cancelled, running
// the health-check loop alongside; see service.Server.ListenAndServe for
// the shutdown contract it mirrors.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.cfg.logf()("jobench router: listening on %s, %d replicas (%s)",
		ln.Addr(), len(s.replicas), strings.Join(s.ring.Replicas(), ", "))
	return s.Serve(ctx, ln)
}

// Serve runs the router on an existing listener until ctx is cancelled,
// then drains: it stops accepting, lets in-flight forwards finish
// undisturbed for up to ShutdownGrace, and only then cancels the
// stragglers — a deploy-time SIGTERM doesn't fail requests that were
// about to succeed.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	go s.healthLoop(hctx)

	// Request contexts are detached from the serve ctx (WithoutCancel) so
	// cancellation reaches them only via cancelRequests, after the grace
	// window — not the instant SIGTERM lands.
	reqCtx, cancelRequests := context.WithCancel(context.WithoutCancel(ctx))
	defer cancelRequests()

	srv := &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return reqCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.cfg.logf()("jobench router: draining in-flight forwards (%v)", context.Cause(ctx))
		shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		err := srv.Shutdown(shutCtx)
		cancelRequests() // grace spent: cut off whatever is still running
		<-errc
		if err != nil {
			// Shutdown gave up waiting; close the remaining conns now that
			// their handlers have lost their contexts.
			_ = srv.Close()
		}
		return err
	}
}

// --- health checking --------------------------------------------------------

// healthLoop probes every replica immediately and then on HealthInterval
// until ctx is cancelled.
func (s *Server) healthLoop(ctx context.Context) {
	t := time.NewTicker(s.cfg.HealthInterval)
	defer t.Stop()
	for {
		var wg sync.WaitGroup
		for _, rep := range s.replicas {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				s.probe(ctx, rep)
			}(rep)
		}
		wg.Wait()
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (s *Server) probe(ctx context.Context, rep *replica) {
	pctx, cancel := context.WithTimeout(ctx, s.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		s.noteFailure(rep)
		return
	}
	resp, err := s.client.Do(req)
	if err != nil {
		s.noteFailure(rep)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.noteFailure(rep)
		return
	}
	s.noteSuccess(rep)
}

// noteFailure records one failed probe or forward; MarkDownAfter
// consecutive failures flip the replica down (counted once per
// transition).
func (s *Server) noteFailure(rep *replica) {
	n := rep.consecNow.Add(1)
	if n >= int64(s.cfg.MarkDownAfter) && rep.up.CompareAndSwap(true, false) {
		rep.mu.Lock()
		rep.markDowns++
		rep.mu.Unlock()
		s.cfg.logf()("jobench router: replica %s marked down after %d consecutive failures", rep.url, n)
	}
}

// noteSuccess resets the failure streak and marks the replica up.
func (s *Server) noteSuccess(rep *replica) {
	rep.consecNow.Store(0)
	if rep.up.CompareAndSwap(false, true) {
		s.cfg.logf()("jobench router: replica %s back up", rep.url)
	}
}

func (s *Server) isLive(url string) bool {
	rep := s.replicas[url]
	return rep != nil && rep.up.Load()
}

// recordOutcome feeds one forward result into rep's breaker window and
// flips the breaker with hysteresis: throttling starts at breakerOnFrac
// over at least breakerMinSamples and ends only below breakerOffFrac, so
// a replica hovering around the threshold doesn't flap.
func (s *Server) recordOutcome(rep *replica, failure bool) {
	rep.mu.Lock()
	rep.outcomes[rep.outcomeIdx] = failure
	rep.outcomeIdx = (rep.outcomeIdx + 1) % breakerWindow
	if rep.outcomeN < breakerWindow {
		rep.outcomeN++
	}
	fails := 0
	for i := 0; i < rep.outcomeN; i++ {
		if rep.outcomes[i] {
			fails++
		}
	}
	frac := float64(fails) / float64(rep.outcomeN)
	var flip string
	switch {
	case !rep.throttled.Load() && rep.outcomeN >= breakerMinSamples && frac >= breakerOnFrac:
		rep.throttled.Store(true)
		rep.transitions++
		flip = "throttling"
	case rep.throttled.Load() && frac < breakerOffFrac:
		rep.throttled.Store(false)
		rep.transitions++
		flip = "restored"
	}
	n := rep.outcomeN
	rep.mu.Unlock()
	if flip != "" {
		s.cfg.logf()("jobench router: breaker %s replica %s (failure fraction %.2f over %d outcomes)",
			flip, rep.url, frac, n)
	}
}

// --- retry budget -----------------------------------------------------------

const (
	budgetBurst      = 10   // max banked retry tokens per client
	budgetMaxClients = 1024 // bound on tracked clients (arbitrary eviction past it)
)

// budgetPool is the per-client retry-token store: each initial request
// earns ratio tokens, each retry spends one, and a new client starts with
// a full bucket so cold-start failovers aren't penalized. Under sustained
// correlated failure the bucket drains and retries stop — the router
// amplifies load by at most (1 + ratio) instead of (1 + MaxRetries).
type budgetPool struct {
	ratio float64
	mu    sync.Mutex
	m     map[string]float64
}

func newBudgetPool(ratio float64) *budgetPool {
	return &budgetPool{ratio: ratio, m: make(map[string]float64)}
}

// earn credits one initial request from client.
func (p *budgetPool) earn(client string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.m[client]
	if !ok {
		if len(p.m) >= budgetMaxClients {
			for k := range p.m { // bound the map; precision isn't the point
				delete(p.m, k)
				break
			}
		}
		v = budgetBurst
	} else if v += p.ratio; v > budgetBurst {
		v = budgetBurst
	}
	p.m[client] = v
}

// spend takes one retry token; false means the budget is exhausted.
func (p *budgetPool) spend(client string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m[client] < 1 {
		return false
	}
	p.m[client]--
	return true
}

// clientHost is the budget key: the peer address without the ephemeral
// port, so one misbehaving host shares one bucket across connections.
func clientHost(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}

// retryableRoute reports whether a request is safe to re-send after a
// failed attempt. Every route here is a deterministic read over immutable
// snapshots (replaying cannot double-apply anything); unknown POSTs get no
// retries, only the response they earned.
func retryableRoute(r *http.Request) bool {
	if r.Method == http.MethodGet {
		return true
	}
	if r.Method != http.MethodPost {
		return false
	}
	switch r.URL.Path {
	case "/v1/optimize", "/v1/estimate", "/v1/explain", "/v1/execute":
		return true
	}
	return false
}

// retryableStatus reports whether a replica response is worth re-sending
// elsewhere: 500/502/503 are replica-local failures another candidate may
// not share. 429 is load shedding — retrying defeats it — and 504 means
// the shared deadline budget ran out, which no retry can beat.
func retryableStatus(code int) bool {
	return code == http.StatusInternalServerError ||
		code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable
}

// mayRetry decides (and charges for) one more attempt: the route must be
// replayable, attempts must remain, enough deadline must be left to be
// worth spending, and the client's budget must have a token.
func (s *Server) mayRetry(ctx context.Context, client string, tried int, dl time.Time, routeOK bool) bool {
	if !routeOK || tried > s.cfg.MaxRetries || ctx.Err() != nil {
		return false
	}
	if time.Until(dl) < 10*time.Millisecond {
		return false
	}
	if !s.budget.spend(client) {
		s.budgetDenied.Add(1)
		trace.Annotate(ctx, "retry.budget_exhausted")
		return false
	}
	return true
}

// backoff sleeps before retry number n (1-based): 25ms·2^(n-1) with ±50%
// jitter, capped at 1s and bounded by ctx; false means the deadline won.
func backoff(ctx context.Context, n int) bool {
	d := 25 * time.Millisecond << (n - 1)
	if d > time.Second {
		d = time.Second
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d))) // [d/2, 3d/2)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// --- forwarding -------------------------------------------------------------

// maxBodyBytes bounds a forwarded request body; the /v1 bodies are small
// JSON documents, so anything past this is abusive, not legitimate.
const maxBodyBytes = 1 << 20

// worldFields is the partial body decode used only for affinity: every
// field except workload/seed/scale is opaque to the router.
type worldFields struct {
	Workload string  `json:"workload"`
	Seed     int64   `json:"seed"`
	Scale    float64 `json:"scale"`
}

func (s *Server) handleForward(w http.ResponseWriter, r *http.Request) {
	// The router is the usual origin of a request's trace: mint an ID
	// (or continue a caller-supplied one), stamp it on the response and
	// on every forward attempt, and keep the trace in the router's ring.
	id, ok := trace.ParseID(r.Header.Get(trace.Header))
	if !ok {
		id = trace.NewID()
	}
	tr := trace.New(id, r.URL.Path)
	r = r.WithContext(trace.NewContext(r.Context(), tr))
	w.Header().Set(trace.Header, id.String())
	defer func() {
		d := tr.Finish()
		s.traces.Add(tr)
		if s.cfg.SlowQuery > 0 && d >= s.cfg.SlowQuery {
			s.cfg.logger().Warn("slow request",
				"trace_id", id.String(),
				"route", r.URL.Path,
				"duration_ms", float64(d)/float64(time.Millisecond))
		}
	}()

	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", maxBodyBytes))
		return
	}

	var ss worldFields
	if len(body) > 0 {
		// Affinity only: an undecodable body still forwards (the replica
		// owns the real validation and its error message), hashed as the
		// default world.
		_ = json.Unmarshal(body, &ss)
	} else {
		q := r.URL.Query()
		ss.Workload = q.Get("workload")
		ss.Seed, _ = strconv.ParseInt(q.Get("seed"), 10, 64)
		ss.Scale, _ = strconv.ParseFloat(q.Get("scale"), 64)
	}
	key := AffinityKey(ss.Workload, ss.Seed, ss.Scale)

	// End-to-end deadline: honor a client-supplied X-Jobench-Deadline when
	// it is earlier than the router's own policy, otherwise mint one from
	// RequestTimeout. The ABSOLUTE header travels with every attempt, so
	// replica-side queueing and router-side retries consume one shared
	// budget instead of each resetting the clock.
	dl := time.Now().Add(s.cfg.RequestTimeout)
	if cdl, ok := deadline.FromRequest(r); ok && cdl.Before(dl) {
		dl = cdl
	}
	ctx, cancel := context.WithDeadline(r.Context(), dl)
	defer cancel()

	clientKey := clientHost(r.RemoteAddr)
	s.budget.earn(clientKey)
	routeOK := retryableRoute(r)

	// Owner first, then clockwise failover candidates. Down replicas are
	// skipped entirely; breaker-throttled replicas serve every other
	// request and are demoted to last resort on the rest, so a half-broken
	// replica sheds half its load without losing cache affinity (and still
	// gets tried when it is all that's left).
	var candidates, throttledLast []*replica
	for _, url := range s.ring.Sequence(key) {
		rep := s.replicas[url]
		if !rep.up.Load() {
			continue
		}
		if rep.throttled.Load() && rep.throttleTick.Add(1)%2 == 0 {
			throttledLast = append(throttledLast, rep)
			continue
		}
		candidates = append(candidates, rep)
	}
	candidates = append(candidates, throttledLast...)

	tried := 0
	var lastErr error
	for i, rep := range candidates {
		// A spent deadline is the client's answer, not the replica's fault:
		// don't burn an attempt (or a failure mark) on it.
		if ctx.Err() != nil {
			s.deadlineExpired.Add(1)
			httpError(w, http.StatusGatewayTimeout, ctx.Err())
			return
		}
		if tried > 0 {
			rep.mu.Lock()
			// Counted on the replica that receives the re-attempt: the
			// metric answers "how much retry traffic landed here".
			rep.retries++
			rep.mu.Unlock()
		}
		tried++
		pr, err := s.forwardOnce(ctx, rep, r, body, dl)
		if err != nil {
			lastErr = err
			s.noteFailure(rep)
			s.recordOutcome(rep, true)
			if ctx.Err() != nil {
				s.deadlineExpired.Add(1)
				httpError(w, http.StatusGatewayTimeout, ctx.Err())
				return
			}
			s.cfg.logger().Warn("forward failed, trying next replica",
				"replica", rep.url, "err", err,
				"trace_id", tr.ID().String(), "route", r.URL.Path)
			if i+1 < len(candidates) && s.mayRetry(ctx, clientKey, tried, dl, routeOK) {
				trace.Annotate(ctx, "retry",
					trace.String("from", rep.url), trace.String("reason", "transport"))
				if !backoff(ctx, tried) {
					s.deadlineExpired.Add(1)
					httpError(w, http.StatusGatewayTimeout, ctx.Err())
					return
				}
				continue
			}
			break
		}
		// A response arrived: the replica is alive even if unhappy.
		s.noteSuccess(rep)
		s.recordOutcome(rep, pr.status >= http.StatusInternalServerError)
		if retryableStatus(pr.status) && i+1 < len(candidates) &&
			s.mayRetry(ctx, clientKey, tried, dl, routeOK) {
			lastErr = fmt.Errorf("replica %s answered %d", rep.url, pr.status)
			trace.Annotate(ctx, "retry",
				trace.String("from", rep.url), trace.Int64("status", int64(pr.status)))
			s.cfg.logger().Warn("retryable status, trying next replica",
				"replica", rep.url, "status", pr.status,
				"trace_id", tr.ID().String(), "route", r.URL.Path)
			if !backoff(ctx, tried) {
				s.deadlineExpired.Add(1)
				httpError(w, http.StatusGatewayTimeout, ctx.Err())
				return
			}
			continue
		}
		pr.commit(w)
		return
	}
	if lastErr != nil {
		httpError(w, http.StatusBadGateway, fmt.Errorf("all forward attempts failed: %w", lastErr))
		return
	}
	s.noReplica.Add(1)
	httpError(w, http.StatusServiceUnavailable, fmt.Errorf("no live replica for key %s", key))
}

// proxyResponse is one fully buffered replica response: buffering is what
// lets the router inspect the status and retry BEFORE committing a byte
// downstream (after WriteHeader there is no failing over).
type proxyResponse struct {
	status  int
	header  http.Header
	body    []byte
	replica string
}

func (pr *proxyResponse) commit(w http.ResponseWriter) {
	if ct := pr.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := pr.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Jobench-Replica", pr.replica)
	w.WriteHeader(pr.status)
	_, _ = w.Write(pr.body)
}

// forwardOnce proxies one attempt to rep and returns the buffered
// response. The attempt — slot wait excluded — is bounded by
// AttemptTimeout inside the request's overall deadline, so a hung replica
// burns one attempt's budget, not all of it; dl rides along as the
// deadline header the replica enforces on its side.
func (s *Server) forwardOnce(ctx context.Context, rep *replica, r *http.Request, body []byte, dl time.Time) (*proxyResponse, error) {
	// Per-replica in-flight bound: queue for a slot rather than piling
	// unbounded concurrency onto one backend.
	select {
	case rep.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-rep.slots }()

	actx, acancel := context.WithTimeout(ctx, s.cfg.AttemptTimeout)
	defer acancel()
	req, err := http.NewRequestWithContext(actx, r.Method, rep.url+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if accept := r.Header.Get("Accept"); accept != "" {
		req.Header.Set("Accept", accept)
	}
	deadline.Set(req.Header, dl)
	// Propagate the trace ID so the replica's spans land under the same
	// trace the router records.
	if id := trace.IDFromContext(ctx); id != 0 {
		req.Header.Set(trace.Header, id.String())
	}

	sp := trace.StartSpan(ctx, "forward")
	start := time.Now()
	resp, err := s.client.Do(req)
	if err != nil {
		elapsed := time.Since(start).Seconds()
		sp.End(trace.String("replica", rep.url), trace.String("err", err.Error()))
		rep.mu.Lock()
		rep.requests[0]++
		rep.seconds += elapsed
		rep.mu.Unlock()
		return nil, err
	}
	respBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start).Seconds()
	if err != nil {
		// A truncated body is a transport failure, not a servable response.
		sp.End(trace.String("replica", rep.url), trace.String("err", err.Error()))
		rep.mu.Lock()
		rep.requests[0]++
		rep.seconds += elapsed
		rep.mu.Unlock()
		return nil, fmt.Errorf("reading replica response: %w", err)
	}
	sp.End(trace.String("replica", rep.url), trace.Int64("status", int64(resp.StatusCode)))

	rep.mu.Lock()
	rep.requests[resp.StatusCode]++
	rep.seconds += elapsed
	rep.mu.Unlock()
	return &proxyResponse{
		status: resp.StatusCode, header: resp.Header,
		body: respBody, replica: rep.url,
	}, nil
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// --- ops surface ------------------------------------------------------------

// handleTraces serves the router's ring of recently forwarded request
// traces, newest first; ?min_ms=N and ?route=/v1/execute filter like the
// replica endpoint.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("invalid min_ms %q", v))
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	recs := s.traces.Snapshot(minDur, q.Get("route"))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"count": len(recs), "traces": recs})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	live := 0
	for _, rep := range s.replicas {
		if rep.up.Load() {
			live++
		}
	}
	status := http.StatusOK
	state := "ok"
	if live == 0 {
		status = http.StatusServiceUnavailable
		state = "no live replicas"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": state, "live": live, "replicas": len(s.replicas),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.renderMetrics()))
}

// renderMetrics produces the Prometheus text exposition, replicas and
// status codes sorted for a stable (diffable, testable) rendering.
func (s *Server) renderMetrics() string {
	urls := s.ring.Replicas() // already sorted

	var b strings.Builder
	b.WriteString("# HELP jobench_router_replica_up Replica liveness as seen by the router (1 = up).\n")
	b.WriteString("# TYPE jobench_router_replica_up gauge\n")
	for _, u := range urls {
		up := 0
		if s.replicas[u].up.Load() {
			up = 1
		}
		fmt.Fprintf(&b, "jobench_router_replica_up{replica=%q} %d\n", u, up)
	}
	b.WriteString("# HELP jobench_router_replica_requests_total Forward attempts by replica and status code (code 0 = transport error).\n")
	b.WriteString("# TYPE jobench_router_replica_requests_total counter\n")
	for _, u := range urls {
		rep := s.replicas[u]
		rep.mu.Lock()
		codes := make([]int, 0, len(rep.requests))
		for c := range rep.requests {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(&b, "jobench_router_replica_requests_total{replica=%q,code=\"%d\"} %d\n", u, c, rep.requests[c])
		}
		rep.mu.Unlock()
	}
	b.WriteString("# HELP jobench_router_replica_request_seconds_total Cumulative forward latency by replica.\n")
	b.WriteString("# TYPE jobench_router_replica_request_seconds_total counter\n")
	for _, u := range urls {
		rep := s.replicas[u]
		rep.mu.Lock()
		fmt.Fprintf(&b, "jobench_router_replica_request_seconds_total{replica=%q} %g\n", u, rep.seconds)
		rep.mu.Unlock()
	}
	b.WriteString("# HELP jobench_router_replica_retries_total Re-attempts (transport failover or retryable 5xx) that landed on this replica.\n")
	b.WriteString("# TYPE jobench_router_replica_retries_total counter\n")
	for _, u := range urls {
		rep := s.replicas[u]
		rep.mu.Lock()
		fmt.Fprintf(&b, "jobench_router_replica_retries_total{replica=%q} %d\n", u, rep.retries)
		rep.mu.Unlock()
	}
	b.WriteString("# HELP jobench_router_replica_markdowns_total Up-to-down transitions per replica.\n")
	b.WriteString("# TYPE jobench_router_replica_markdowns_total counter\n")
	for _, u := range urls {
		rep := s.replicas[u]
		rep.mu.Lock()
		fmt.Fprintf(&b, "jobench_router_replica_markdowns_total{replica=%q} %d\n", u, rep.markDowns)
		rep.mu.Unlock()
	}
	b.WriteString("# HELP jobench_router_replica_inflight Forwards currently in flight per replica.\n")
	b.WriteString("# TYPE jobench_router_replica_inflight gauge\n")
	for _, u := range urls {
		fmt.Fprintf(&b, "jobench_router_replica_inflight{replica=%q} %d\n", u, len(s.replicas[u].slots))
	}
	b.WriteString("# HELP jobench_router_breaker_throttled Circuit-breaker state per replica (1 = half of its traffic is routed around it).\n")
	b.WriteString("# TYPE jobench_router_breaker_throttled gauge\n")
	for _, u := range urls {
		throttled := 0
		if s.replicas[u].throttled.Load() {
			throttled = 1
		}
		fmt.Fprintf(&b, "jobench_router_breaker_throttled{replica=%q} %d\n", u, throttled)
	}
	b.WriteString("# HELP jobench_router_breaker_transitions_total Circuit-breaker state flips per replica (both directions).\n")
	b.WriteString("# TYPE jobench_router_breaker_transitions_total counter\n")
	for _, u := range urls {
		rep := s.replicas[u]
		rep.mu.Lock()
		fmt.Fprintf(&b, "jobench_router_breaker_transitions_total{replica=%q} %d\n", u, rep.transitions)
		rep.mu.Unlock()
	}
	b.WriteString("# HELP jobench_router_no_replica_total Requests refused because no replica was live.\n")
	b.WriteString("# TYPE jobench_router_no_replica_total counter\n")
	fmt.Fprintf(&b, "jobench_router_no_replica_total %d\n", s.noReplica.Load())
	b.WriteString("# HELP jobench_router_deadline_expired_total Requests whose end-to-end deadline expired at the router.\n")
	b.WriteString("# TYPE jobench_router_deadline_expired_total counter\n")
	fmt.Fprintf(&b, "jobench_router_deadline_expired_total %d\n", s.deadlineExpired.Load())
	b.WriteString("# HELP jobench_router_retry_budget_exhausted_total Retries suppressed because the client's retry budget was empty.\n")
	b.WriteString("# TYPE jobench_router_retry_budget_exhausted_total counter\n")
	fmt.Fprintf(&b, "jobench_router_retry_budget_exhausted_total %d\n", s.budgetDenied.Load())
	return b.String()
}
