// Package router fronts N jobench serve replicas with consistent hashing
// on (seed, scale): every request for one world lands on the same replica,
// so that replica's LRU system pool stays hot while the others never pay
// for it. The router health-checks each replica's /healthz on an interval,
// marks a replica down after consecutive failures (its keys move to the
// next-clockwise neighbor; everyone else's keys stay put) and back up on
// recovery, bounds per-replica in-flight forwards, fails a transport error
// over to the next live candidate, and exposes its own /healthz and
// /metrics (per-replica request counts, latencies, retries, mark-downs).
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jobench/internal/trace"
)

// Config configures a router Server.
type Config struct {
	// Addr is the listen address for ListenAndServe (":8070").
	Addr string
	// Replicas are the base URLs of the jobench serve backends
	// ("http://127.0.0.1:8081"). At least one is required.
	Replicas []string
	// HealthInterval is the period of the per-replica /healthz probe
	// (default 2s).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 1s).
	HealthTimeout time.Duration
	// MarkDownAfter is the number of consecutive probe or forward failures
	// that marks a replica down (default 2). One success marks it back up.
	MarkDownAfter int
	// InFlightPerReplica bounds concurrent forwards per replica; excess
	// requests queue (default 32).
	InFlightPerReplica int
	// ForwardTimeout bounds one forwarded request, queueing included
	// (default 5m — experiment sweeps are legitimately slow).
	ForwardTimeout time.Duration
	// ShutdownGrace bounds how long a cancelled router waits for in-flight
	// forwards to flush (default 5s).
	ShutdownGrace time.Duration
	// TraceCapacity bounds the ring buffer of recently finished request
	// traces served by the router's own /v1/traces (non-positive selects
	// trace.DefaultStoreCapacity).
	TraceCapacity int
	// SlowQuery logs a span summary for every forwarded request at least
	// this slow (0 disables outlier logging).
	SlowQuery time.Duration
	// Logger receives router diagnostics (default slog.Default()).
	// Request-scoped lines carry trace_id and route attrs.
	Logger *slog.Logger
}

func (c Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.Default()
}

// logf adapts the structured logger for the router's non-request lines.
func (c Config) logf() func(format string, args ...any) {
	lg := c.logger()
	return func(format string, args ...any) {
		lg.Info(fmt.Sprintf(format, args...))
	}
}

// replica is one backend and its router-side state.
type replica struct {
	url string

	up        atomic.Bool
	consecNow atomic.Int64 // consecutive failures (probe or forward)

	slots chan struct{} // in-flight limiter, capacity InFlightPerReplica

	mu        sync.Mutex
	requests  map[int]int64 // status code -> count (0 = transport error)
	seconds   float64       // cumulative forward latency
	retries   int64         // transport errors that triggered failover
	markDowns int64         // up -> down transitions
}

// Server is the consistent-hash router.
type Server struct {
	cfg      Config
	ring     *Ring
	replicas map[string]*replica
	mux      *http.ServeMux
	client   *http.Client
	traces   *trace.Store

	noReplica atomic.Int64 // requests refused because no replica was live
}

// New builds a router Server (without binding a socket).
func New(cfg Config) (*Server, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	if cfg.MarkDownAfter <= 0 {
		cfg.MarkDownAfter = 2
	}
	if cfg.InFlightPerReplica <= 0 {
		cfg.InFlightPerReplica = 32
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 5 * time.Minute
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = 5 * time.Second
	}
	ring := NewRingFromConfig(cfg.Replicas)
	s := &Server{
		cfg:      cfg,
		ring:     ring,
		replicas: make(map[string]*replica, len(ring.Replicas())),
		mux:      http.NewServeMux(),
		client:   &http.Client{}, // per-attempt timeouts come from request contexts
		traces:   trace.NewStore(cfg.TraceCapacity),
	}
	for _, u := range ring.Replicas() {
		rep := &replica{
			url:      u,
			slots:    make(chan struct{}, cfg.InFlightPerReplica),
			requests: make(map[int]int64),
		}
		// Replicas start marked up: the first failed probe or forward flips
		// them, and starting optimistic means a router booted alongside its
		// replicas serves as soon as anything answers instead of rejecting
		// until the first probe cycle completes.
		rep.up.Store(true)
		s.replicas[u] = rep
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// More specific than the forward catch-all: the router answers
	// /v1/traces itself (its view of recent forwards); each replica still
	// serves its own ring directly.
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("/v1/", s.handleForward)
	return s, nil
}

// Traces exposes the router's trace ring (for tests and embedding).
func (s *Server) Traces() *trace.Store { return s.traces }

// NewRingFromConfig builds the ring the router uses; exported so replicas
// (service peer-fill) and tests derive owners from the identical ring.
func NewRingFromConfig(replicas []string) *Ring {
	trimmed := make([]string, 0, len(replicas))
	for _, r := range replicas {
		r = strings.TrimRight(strings.TrimSpace(r), "/")
		if r != "" {
			trimmed = append(trimmed, r)
		}
	}
	return NewRing(trimmed)
}

// Handler returns the router's HTTP handler (also useful under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds cfg.Addr and serves until ctx is cancelled, running
// the health-check loop alongside; see service.Server.ListenAndServe for
// the shutdown contract it mirrors.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.cfg.logf()("jobench router: listening on %s, %d replicas (%s)",
		ln.Addr(), len(s.replicas), strings.Join(s.ring.Replicas(), ", "))
	return s.Serve(ctx, ln)
}

// Serve runs the router on an existing listener until ctx is cancelled.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	go s.healthLoop(hctx)

	srv := &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.cfg.logf()("jobench router: shutting down (%v)", context.Cause(ctx))
		shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		err := srv.Shutdown(shutCtx)
		<-errc
		return err
	}
}

// --- health checking --------------------------------------------------------

// healthLoop probes every replica immediately and then on HealthInterval
// until ctx is cancelled.
func (s *Server) healthLoop(ctx context.Context) {
	t := time.NewTicker(s.cfg.HealthInterval)
	defer t.Stop()
	for {
		var wg sync.WaitGroup
		for _, rep := range s.replicas {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				s.probe(ctx, rep)
			}(rep)
		}
		wg.Wait()
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (s *Server) probe(ctx context.Context, rep *replica) {
	pctx, cancel := context.WithTimeout(ctx, s.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		s.noteFailure(rep)
		return
	}
	resp, err := s.client.Do(req)
	if err != nil {
		s.noteFailure(rep)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.noteFailure(rep)
		return
	}
	s.noteSuccess(rep)
}

// noteFailure records one failed probe or forward; MarkDownAfter
// consecutive failures flip the replica down (counted once per
// transition).
func (s *Server) noteFailure(rep *replica) {
	n := rep.consecNow.Add(1)
	if n >= int64(s.cfg.MarkDownAfter) && rep.up.CompareAndSwap(true, false) {
		rep.mu.Lock()
		rep.markDowns++
		rep.mu.Unlock()
		s.cfg.logf()("jobench router: replica %s marked down after %d consecutive failures", rep.url, n)
	}
}

// noteSuccess resets the failure streak and marks the replica up.
func (s *Server) noteSuccess(rep *replica) {
	rep.consecNow.Store(0)
	if rep.up.CompareAndSwap(false, true) {
		s.cfg.logf()("jobench router: replica %s back up", rep.url)
	}
}

func (s *Server) isLive(url string) bool {
	rep := s.replicas[url]
	return rep != nil && rep.up.Load()
}

// --- forwarding -------------------------------------------------------------

// maxBodyBytes bounds a forwarded request body; the /v1 bodies are small
// JSON documents, so anything past this is abusive, not legitimate.
const maxBodyBytes = 1 << 20

// worldFields is the partial body decode used only for affinity: every
// field except workload/seed/scale is opaque to the router.
type worldFields struct {
	Workload string  `json:"workload"`
	Seed     int64   `json:"seed"`
	Scale    float64 `json:"scale"`
}

func (s *Server) handleForward(w http.ResponseWriter, r *http.Request) {
	// The router is the usual origin of a request's trace: mint an ID
	// (or continue a caller-supplied one), stamp it on the response and
	// on every forward attempt, and keep the trace in the router's ring.
	id, ok := trace.ParseID(r.Header.Get(trace.Header))
	if !ok {
		id = trace.NewID()
	}
	tr := trace.New(id, r.URL.Path)
	r = r.WithContext(trace.NewContext(r.Context(), tr))
	w.Header().Set(trace.Header, id.String())
	defer func() {
		d := tr.Finish()
		s.traces.Add(tr)
		if s.cfg.SlowQuery > 0 && d >= s.cfg.SlowQuery {
			s.cfg.logger().Warn("slow request",
				"trace_id", id.String(),
				"route", r.URL.Path,
				"duration_ms", float64(d)/float64(time.Millisecond))
		}
	}()

	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", maxBodyBytes))
		return
	}

	var ss worldFields
	if len(body) > 0 {
		// Affinity only: an undecodable body still forwards (the replica
		// owns the real validation and its error message), hashed as the
		// default world.
		_ = json.Unmarshal(body, &ss)
	} else {
		q := r.URL.Query()
		ss.Workload = q.Get("workload")
		ss.Seed, _ = strconv.ParseInt(q.Get("seed"), 10, 64)
		ss.Scale, _ = strconv.ParseFloat(q.Get("scale"), 64)
	}
	key := AffinityKey(ss.Workload, ss.Seed, ss.Scale)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ForwardTimeout)
	defer cancel()

	// Owner first, then clockwise failover candidates; skip replicas that
	// are marked down, and treat a transport error as both a failure signal
	// and a reason to try the next candidate.
	tried := 0
	for _, url := range s.ring.Sequence(key) {
		rep := s.replicas[url]
		if !rep.up.Load() {
			continue
		}
		if tried > 0 {
			rep.mu.Lock()
			// Counted on the replica that receives the retried request: the
			// metric answers "how much failover traffic landed here".
			rep.retries++
			rep.mu.Unlock()
		}
		tried++
		done, err := s.forwardOnce(ctx, rep, r, body, w)
		if done {
			return
		}
		s.noteFailure(rep)
		if ctx.Err() != nil {
			httpError(w, http.StatusGatewayTimeout, ctx.Err())
			return
		}
		s.cfg.logger().Warn("forward failed, trying next replica",
			"replica", url, "err", err,
			"trace_id", tr.ID().String(), "route", r.URL.Path)
	}
	s.noReplica.Add(1)
	httpError(w, http.StatusServiceUnavailable, fmt.Errorf("no live replica for key %s", key))
}

// forwardOnce proxies one attempt to rep. done reports whether a response
// (of any status) was written to w — after the first byte is committed
// there is no failing over.
func (s *Server) forwardOnce(ctx context.Context, rep *replica, r *http.Request, body []byte, w http.ResponseWriter) (done bool, err error) {
	// Per-replica in-flight bound: queue for a slot rather than piling
	// unbounded concurrency onto one backend.
	select {
	case rep.slots <- struct{}{}:
	case <-ctx.Done():
		return false, ctx.Err()
	}
	defer func() { <-rep.slots }()

	req, err := http.NewRequestWithContext(ctx, r.Method, rep.url+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if accept := r.Header.Get("Accept"); accept != "" {
		req.Header.Set("Accept", accept)
	}
	// Propagate the trace ID so the replica's spans land under the same
	// trace the router records.
	if id := trace.IDFromContext(ctx); id != 0 {
		req.Header.Set(trace.Header, id.String())
	}

	sp := trace.StartSpan(ctx, "forward")
	start := time.Now()
	resp, err := s.client.Do(req)
	elapsed := time.Since(start).Seconds()
	if err != nil {
		sp.End(trace.String("replica", rep.url), trace.String("err", err.Error()))
		rep.mu.Lock()
		rep.requests[0]++
		rep.seconds += elapsed
		rep.mu.Unlock()
		return false, err
	}
	defer resp.Body.Close()
	sp.End(trace.String("replica", rep.url), trace.Int64("status", int64(resp.StatusCode)))

	rep.mu.Lock()
	rep.requests[resp.StatusCode]++
	rep.seconds += elapsed
	rep.mu.Unlock()

	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Jobench-Replica", rep.url)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true, nil
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// --- ops surface ------------------------------------------------------------

// handleTraces serves the router's ring of recently forwarded request
// traces, newest first; ?min_ms=N and ?route=/v1/execute filter like the
// replica endpoint.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("invalid min_ms %q", v))
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	recs := s.traces.Snapshot(minDur, q.Get("route"))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"count": len(recs), "traces": recs})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	live := 0
	for _, rep := range s.replicas {
		if rep.up.Load() {
			live++
		}
	}
	status := http.StatusOK
	state := "ok"
	if live == 0 {
		status = http.StatusServiceUnavailable
		state = "no live replicas"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": state, "live": live, "replicas": len(s.replicas),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.renderMetrics()))
}

// renderMetrics produces the Prometheus text exposition, replicas and
// status codes sorted for a stable (diffable, testable) rendering.
func (s *Server) renderMetrics() string {
	urls := s.ring.Replicas() // already sorted

	var b strings.Builder
	b.WriteString("# HELP jobench_router_replica_up Replica liveness as seen by the router (1 = up).\n")
	b.WriteString("# TYPE jobench_router_replica_up gauge\n")
	for _, u := range urls {
		up := 0
		if s.replicas[u].up.Load() {
			up = 1
		}
		fmt.Fprintf(&b, "jobench_router_replica_up{replica=%q} %d\n", u, up)
	}
	b.WriteString("# HELP jobench_router_replica_requests_total Forward attempts by replica and status code (code 0 = transport error).\n")
	b.WriteString("# TYPE jobench_router_replica_requests_total counter\n")
	for _, u := range urls {
		rep := s.replicas[u]
		rep.mu.Lock()
		codes := make([]int, 0, len(rep.requests))
		for c := range rep.requests {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(&b, "jobench_router_replica_requests_total{replica=%q,code=\"%d\"} %d\n", u, c, rep.requests[c])
		}
		rep.mu.Unlock()
	}
	b.WriteString("# HELP jobench_router_replica_request_seconds_total Cumulative forward latency by replica.\n")
	b.WriteString("# TYPE jobench_router_replica_request_seconds_total counter\n")
	for _, u := range urls {
		rep := s.replicas[u]
		rep.mu.Lock()
		fmt.Fprintf(&b, "jobench_router_replica_request_seconds_total{replica=%q} %g\n", u, rep.seconds)
		rep.mu.Unlock()
	}
	b.WriteString("# HELP jobench_router_replica_retries_total Failover requests that landed on this replica after another replica's transport error.\n")
	b.WriteString("# TYPE jobench_router_replica_retries_total counter\n")
	for _, u := range urls {
		rep := s.replicas[u]
		rep.mu.Lock()
		fmt.Fprintf(&b, "jobench_router_replica_retries_total{replica=%q} %d\n", u, rep.retries)
		rep.mu.Unlock()
	}
	b.WriteString("# HELP jobench_router_replica_markdowns_total Up-to-down transitions per replica.\n")
	b.WriteString("# TYPE jobench_router_replica_markdowns_total counter\n")
	for _, u := range urls {
		rep := s.replicas[u]
		rep.mu.Lock()
		fmt.Fprintf(&b, "jobench_router_replica_markdowns_total{replica=%q} %d\n", u, rep.markDowns)
		rep.mu.Unlock()
	}
	b.WriteString("# HELP jobench_router_replica_inflight Forwards currently in flight per replica.\n")
	b.WriteString("# TYPE jobench_router_replica_inflight gauge\n")
	for _, u := range urls {
		fmt.Fprintf(&b, "jobench_router_replica_inflight{replica=%q} %d\n", u, len(s.replicas[u].slots))
	}
	b.WriteString("# HELP jobench_router_no_replica_total Requests refused because no replica was live.\n")
	b.WriteString("# TYPE jobench_router_no_replica_total counter\n")
	fmt.Fprintf(&b, "jobench_router_no_replica_total %d\n", s.noReplica.Load())
	return b.String()
}
