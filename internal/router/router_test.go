package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"jobench/internal/deadline"
	"jobench/internal/trace"
)

// testLogger routes router diagnostics into the test log.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{t}, nil))
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// echoBackend answers every /v1/* request with its own id plus the body it
// saw, and /healthz with 200.
func echoBackend(t *testing.T, id string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"backend": id, "path": r.URL.Path, "body": string(body)})
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func newTestRouter(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestForwardAffinity: requests for one (workload, seed, scale) world
// always land on the ring owner, across both POST bodies and GET query
// params.
func TestForwardAffinity(t *testing.T) {
	a, _ := echoBackend(t, "a")
	b, _ := echoBackend(t, "b")
	c, _ := echoBackend(t, "c")
	urls := []string{a.URL, b.URL, c.URL}
	s := newTestRouter(t, Config{Addr: ":0", Replicas: urls})
	front := httptest.NewServer(s.Handler())
	defer front.Close()

	ring := NewRingFromConfig(urls)
	for seed := int64(1); seed <= 20; seed++ {
		key := AffinityKey("imdb", seed, 0.1)
		wantURL := ring.Owner(key)

		body := fmt.Sprintf(`{"query":"13d","workload":"imdb","seed":%d,"scale":0.1}`, seed)
		resp, err := http.Post(front.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("X-Jobench-Replica"); got != wantURL {
			t.Fatalf("seed %d: POST landed on %s, ring owner is %s", seed, got, wantURL)
		}
		resp.Body.Close()

		resp, err = http.Get(fmt.Sprintf("%s/v1/queries?workload=imdb&seed=%d&scale=0.1", front.URL, seed))
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("X-Jobench-Replica"); got != wantURL {
			t.Fatalf("seed %d: GET landed on %s, ring owner is %s", seed, got, wantURL)
		}
		resp.Body.Close()
	}
}

// TestFailoverAndMarkDown: a dead owner's requests fail over to the next
// live candidate; after MarkDownAfter transport errors the replica is
// marked down (visible in /healthz and /metrics) and stops being tried.
func TestFailoverAndMarkDown(t *testing.T) {
	a, _ := echoBackend(t, "a")
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // nothing listens here anymore

	urls := []string{a.URL, deadURL}
	s := newTestRouter(t, Config{
		Addr: ":0", Replicas: urls, MarkDownAfter: 2,
		Logger: testLogger(t),
	})
	front := httptest.NewServer(s.Handler())
	defer front.Close()

	// Find a seed the dead replica owns, so forwards must fail over.
	ring := NewRingFromConfig(urls)
	seed := int64(-1)
	for i := int64(0); i < 1000; i++ {
		if ring.Owner(AffinityKey("imdb", i, 0.1)) == strings.TrimRight(deadURL, "/") {
			seed = i
			break
		}
	}
	if seed < 0 {
		t.Fatal("no key owned by the dead replica in 1000 tries")
	}

	for i := 0; i < 3; i++ {
		resp, err := http.Post(front.URL+"/v1/optimize", "application/json",
			strings.NewReader(fmt.Sprintf(`{"workload":"imdb","seed":%d,"scale":0.1}`, seed)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 via failover", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Jobench-Replica"); got != a.URL {
			t.Fatalf("request %d: landed on %s, want failover to %s", i, got, a.URL)
		}
		resp.Body.Close()
	}

	if s.isLive(deadURL) {
		t.Fatal("dead replica still marked live after repeated transport errors")
	}
	metrics := s.renderMetrics()
	if want := fmt.Sprintf("jobench_router_replica_up{replica=%q} 0", deadURL); !strings.Contains(metrics, want) {
		t.Fatalf("metrics missing %q:\n%s", want, metrics)
	}
	if want := fmt.Sprintf("jobench_router_replica_markdowns_total{replica=%q} 1", deadURL); !strings.Contains(metrics, want) {
		t.Fatalf("metrics missing %q (mark-down must count once per transition):\n%s", want, metrics)
	}
	// Retries landed on the survivor.
	if want := fmt.Sprintf("jobench_router_replica_retries_total{replica=%q}", a.URL); !strings.Contains(metrics, want) {
		t.Fatalf("metrics missing retry counter for %s:\n%s", a.URL, metrics)
	}
}

// TestHealthLoopRecovery: the probe loop marks a failing replica down and
// a recovered one back up.
func TestHealthLoopRecovery(t *testing.T) {
	var healthy atomic.Bool
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer backend.Close()

	s := newTestRouter(t, Config{
		Addr: ":0", Replicas: []string{backend.URL},
		HealthInterval: 10 * time.Millisecond, HealthTimeout: time.Second,
		MarkDownAfter: 2, Logger: testLogger(t),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.healthLoop(ctx)

	waitFor(t, "mark-down", func() bool { return !s.isLive(backend.URL) })
	healthy.Store(true)
	waitFor(t, "recovery", func() bool { return s.isLive(backend.URL) })
}

// TestNoLiveReplica: with everything down the router answers 503 and
// counts it.
func TestNoLiveReplica(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	s := newTestRouter(t, Config{Addr: ":0", Replicas: []string{deadURL}, MarkDownAfter: 1, Logger: testLogger(t)})
	front := httptest.NewServer(s.Handler())
	defer front.Close()

	// First request: transport error marks the only replica down.
	resp, err := http.Post(front.URL+"/v1/optimize", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Second request: no live replica at all.
	resp, err = http.Post(front.URL+"/v1/optimize", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 with no live replicas", resp.StatusCode)
	}
	if s.noReplica.Load() == 0 {
		t.Fatal("no-replica refusals not counted")
	}

	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz status %d, want 503 with no live replicas", hresp.StatusCode)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestForwardPropagatesTraceID: the router mints a trace ID, stamps it on
// the response and the forwarded request (so router and replica record
// spans under the same trace), honors a caller-supplied ID, and keeps the
// finished trace in its /v1/traces ring.
func TestForwardPropagatesTraceID(t *testing.T) {
	var seen atomic.Value // trace header the backend received
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		seen.Store(r.Header.Get(trace.Header))
		fmt.Fprint(w, `{}`)
	}))
	defer backend.Close()

	s := newTestRouter(t, Config{Addr: ":0", Replicas: []string{backend.URL}, Logger: testLogger(t)})
	front := httptest.NewServer(s.Handler())
	defer front.Close()

	// Router-minted ID: response header, backend header and the trace
	// ring must all agree.
	resp, err := http.Post(front.URL+"/v1/optimize", "application/json",
		strings.NewReader(`{"query":"1a"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get(trace.Header)
	if _, ok := trace.ParseID(id); !ok {
		t.Fatalf("response trace header %q is not a valid ID", id)
	}
	if got := seen.Load(); got != id {
		t.Fatalf("backend saw trace %q, response says %q", got, id)
	}
	recs := s.Traces().Snapshot(0, "")
	if len(recs) != 1 || recs[0].TraceID != id {
		t.Fatalf("trace ring = %+v, want one record with id %s", recs, id)
	}
	if len(recs[0].Spans) == 0 || recs[0].Spans[0].Name != "forward" {
		t.Fatalf("trace record lacks the forward span: %+v", recs[0].Spans)
	}

	// Caller-supplied ID: continued, not replaced.
	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/optimize",
		strings.NewReader(`{"query":"1a"}`))
	if err != nil {
		t.Fatal(err)
	}
	const want = "00000000deadbeef"
	req.Header.Set(trace.Header, want)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(trace.Header); got != want {
		t.Fatalf("caller-supplied trace %q came back as %q", want, got)
	}
	if got := seen.Load(); got != want {
		t.Fatalf("backend saw trace %q, want %q", got, want)
	}
}

// flakyBackend answers /v1/* with the configured status while failing is
// true and 200 otherwise; /healthz is always 200 so only the breaker (not
// the probe loop) reacts to the failures.
func flakyBackend(t *testing.T, status int) (*httptest.Server, *atomic.Bool, *atomic.Int64) {
	t.Helper()
	var failing atomic.Bool
	var hits atomic.Int64
	failing.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		hits.Add(1)
		if failing.Load() {
			w.WriteHeader(status)
			fmt.Fprint(w, `{"error":"injected"}`)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	t.Cleanup(srv.Close)
	return srv, &failing, &hits
}

// ownedSeed finds a seed whose ring owner is url.
func ownedSeed(t *testing.T, urls []string, url string) int64 {
	t.Helper()
	ring := NewRingFromConfig(urls)
	for i := int64(0); i < 1000; i++ {
		if ring.Owner(AffinityKey("imdb", i, 0.1)) == strings.TrimRight(url, "/") {
			return i
		}
	}
	t.Fatalf("no key owned by %s in 1000 tries", url)
	return -1
}

// TestRetryOn5xx: a retryable 500 from the owner is retried (with backoff,
// within budget) on the next candidate BEFORE anything is committed to the
// client, who sees only the eventual 200; the retry is visible in the
// trace and the retries counter.
func TestRetryOn5xx(t *testing.T) {
	bad, _, badHits := flakyBackend(t, http.StatusInternalServerError)
	good, _ := echoBackend(t, "good")
	urls := []string{bad.URL, good.URL}
	s := newTestRouter(t, Config{Addr: ":0", Replicas: urls, Logger: testLogger(t)})
	front := httptest.NewServer(s.Handler())
	defer front.Close()

	seed := ownedSeed(t, urls, bad.URL)
	resp, err := http.Post(front.URL+"/v1/optimize", "application/json",
		strings.NewReader(fmt.Sprintf(`{"workload":"imdb","seed":%d,"scale":0.1}`, seed)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via retry", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Jobench-Replica"); got != good.URL {
		t.Fatalf("landed on %s, want retry to %s", got, good.URL)
	}
	if badHits.Load() == 0 {
		t.Fatal("failing owner was never tried")
	}
	recs := s.Traces().Snapshot(0, "")
	var sawRetry bool
	for _, sp := range recs[0].Spans {
		if sp.Name == "retry" {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatalf("trace lacks a retry annotation: %+v", recs[0].Spans)
	}
	if want := fmt.Sprintf("jobench_router_replica_retries_total{replica=%q} 1", good.URL); !strings.Contains(s.renderMetrics(), want) {
		t.Fatalf("metrics missing %q", want)
	}
}

// TestRetryBudgetExhausted: sustained failure drains the per-client token
// bucket, after which 500s are served as-is instead of amplified into
// retries — and the suppression is counted.
func TestRetryBudgetExhausted(t *testing.T) {
	bad, _, _ := flakyBackend(t, http.StatusInternalServerError)
	good, _ := echoBackend(t, "good")
	urls := []string{bad.URL, good.URL}
	s := newTestRouter(t, Config{Addr: ":0", Replicas: urls, Logger: testLogger(t)})
	front := httptest.NewServer(s.Handler())
	defer front.Close()

	seed := ownedSeed(t, urls, bad.URL)
	body := fmt.Sprintf(`{"workload":"imdb","seed":%d,"scale":0.1}`, seed)
	got500 := 0
	for i := 0; i < 20; i++ {
		resp, err := http.Post(front.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusInternalServerError {
			got500++
		}
		resp.Body.Close()
	}
	if got500 == 0 {
		t.Fatal("budget never ran out: every 500 was retried away")
	}
	if s.budgetDenied.Load() == 0 {
		t.Fatal("suppressed retries not counted")
	}
	if !strings.Contains(s.renderMetrics(), "jobench_router_retry_budget_exhausted_total") {
		t.Fatal("metrics missing jobench_router_retry_budget_exhausted_total")
	}
}

// TestBreakerThrottleAndRecovery: a replica that answers its probes but
// fails its requests gets throttled (half its traffic routed around it)
// once the outcome window condemns it, and is restored with hysteresis
// after it heals — no mark-down involved at any point.
func TestBreakerThrottleAndRecovery(t *testing.T) {
	bad, failing, _ := flakyBackend(t, http.StatusInternalServerError)
	good, _ := echoBackend(t, "good")
	urls := []string{bad.URL, good.URL}
	s := newTestRouter(t, Config{Addr: ":0", Replicas: urls, Logger: testLogger(t)})
	front := httptest.NewServer(s.Handler())
	defer front.Close()

	seed := ownedSeed(t, urls, bad.URL)
	body := fmt.Sprintf(`{"workload":"imdb","seed":%d,"scale":0.1}`, seed)
	post := func() {
		resp, err := http.Post(front.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	rep := s.replicas[strings.TrimRight(bad.URL, "/")]
	for i := 0; i < 2*breakerWindow && !rep.throttled.Load(); i++ {
		post()
	}
	if !rep.throttled.Load() {
		t.Fatal("breaker never throttled a replica failing every request")
	}
	if want := fmt.Sprintf("jobench_router_breaker_throttled{replica=%q} 1", strings.TrimRight(bad.URL, "/")); !strings.Contains(s.renderMetrics(), want) {
		t.Fatalf("metrics missing %q", want)
	}
	if s.isLive(bad.URL) != true {
		t.Fatal("breaker must throttle, not mark down")
	}

	// Heal it: successes wash the failures out of the window (the throttle
	// still admits every other request, which is how it observes recovery).
	failing.Store(false)
	for i := 0; i < 4*breakerWindow && rep.throttled.Load(); i++ {
		post()
	}
	if rep.throttled.Load() {
		t.Fatal("breaker never restored a healed replica")
	}
	rep.mu.Lock()
	transitions := rep.transitions
	rep.mu.Unlock()
	if transitions != 2 {
		t.Fatalf("breaker transitions = %d, want 2 (throttle + restore)", transitions)
	}
}

// TestDeadlineMintedAndPropagated: the router stamps an absolute
// X-Jobench-Deadline derived from RequestTimeout on every forward, honors
// an earlier client-supplied one, and answers 504 itself when the deadline
// is already spent — without charging a replica for it.
func TestDeadlineMintedAndPropagated(t *testing.T) {
	var seen atomic.Value // deadline header the backend received
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		seen.Store(r.Header.Get(deadline.Header))
		fmt.Fprint(w, `{}`)
	}))
	defer backend.Close()

	s := newTestRouter(t, Config{
		Addr: ":0", Replicas: []string{backend.URL},
		RequestTimeout: 5 * time.Second, Logger: testLogger(t),
	})
	front := httptest.NewServer(s.Handler())
	defer front.Close()

	// Minted: absolute, within (now, now+RequestTimeout].
	before := time.Now()
	resp, err := http.Post(front.URL+"/v1/optimize", "application/json", strings.NewReader(`{"query":"1a"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	dl, ok := deadline.Parse(seen.Load().(string))
	if !ok {
		t.Fatalf("backend saw no parseable deadline header, got %q", seen.Load())
	}
	if dl.Before(before) || dl.After(before.Add(6*time.Second)) {
		t.Fatalf("minted deadline %v outside (now, now+5s]", dl.Sub(before))
	}

	// Client-supplied earlier deadline wins.
	req, _ := http.NewRequest(http.MethodPost, front.URL+"/v1/optimize", strings.NewReader(`{"query":"1a"}`))
	want := time.Now().Add(time.Second)
	deadline.Set(req.Header, want)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	dl, ok = deadline.Parse(seen.Load().(string))
	if !ok || !dl.Equal(want.Truncate(time.Millisecond)) {
		t.Fatalf("client deadline %v not honored: backend saw %v", want, dl)
	}

	// Already-expired deadline: 504 from the router, replica untouched.
	req, _ = http.NewRequest(http.MethodPost, front.URL+"/v1/optimize", strings.NewReader(`{"query":"1a"}`))
	deadline.Set(req.Header, time.Now().Add(-time.Second))
	seen.Store("")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline got %d, want 504", resp.StatusCode)
	}
	if seen.Load() != "" {
		t.Fatal("expired-deadline request still reached the replica")
	}
	if s.deadlineExpired.Load() == 0 {
		t.Fatal("router-side deadline expiry not counted")
	}
}

// TestAttemptTimeoutRetriesHungReplica: a hung replica burns one
// AttemptTimeout, not the whole deadline — the remaining budget funds a
// retry that succeeds on the next candidate.
func TestAttemptTimeoutRetriesHungReplica(t *testing.T) {
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		// Drain the body so the server watches the connection: that is how
		// it notices the router abandoning the attempt (context cancel).
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // hang until the router gives up on the attempt
	}))
	defer hung.Close()
	good, _ := echoBackend(t, "good")
	urls := []string{hung.URL, good.URL}
	s := newTestRouter(t, Config{
		Addr: ":0", Replicas: urls,
		RequestTimeout: 5 * time.Second, AttemptTimeout: 100 * time.Millisecond,
		Logger: testLogger(t),
	})
	front := httptest.NewServer(s.Handler())
	defer front.Close()

	seed := ownedSeed(t, urls, hung.URL)
	start := time.Now()
	resp, err := http.Post(front.URL+"/v1/optimize", "application/json",
		strings.NewReader(fmt.Sprintf(`{"workload":"imdb","seed":%d,"scale":0.1}`, seed)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via attempt-timeout retry", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Jobench-Replica"); got != good.URL {
		t.Fatalf("landed on %s, want %s", got, good.URL)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("took %v; the hung attempt must be cut at ~100ms", elapsed)
	}
}

// TestGracefulDrain: SIGTERM (ctx cancel) stops accepting but lets an
// in-flight forward finish within ShutdownGrace; the client sees its 200,
// not a reset.
func TestGracefulDrain(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		select {
		case <-time.After(300 * time.Millisecond):
		case <-r.Context().Done():
			return
		}
		fmt.Fprint(w, `{"slow":true}`)
	}))
	defer slow.Close()

	s := newTestRouter(t, Config{
		Addr: ":0", Replicas: []string{slow.URL},
		ShutdownGrace: 3 * time.Second, Logger: testLogger(t),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	type result struct {
		status int
		err    error
	}
	results := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/optimize",
			"application/json", strings.NewReader(`{"query":"1a"}`))
		if err != nil {
			results <- result{err: err}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		results <- result{status: resp.StatusCode}
	}()

	time.Sleep(100 * time.Millisecond) // request is in flight at the backend
	cancel()                           // "SIGTERM"

	r := <-results
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request got %d during drain, want 200", r.status)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve never returned after drain")
	}
}

// TestDrainCancelsStragglers: a forward still running when ShutdownGrace
// expires is cancelled rather than held forever — Serve returns promptly
// with the shutdown context's error.
func TestDrainCancelsStragglers(t *testing.T) {
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	defer stuck.Close()

	s := newTestRouter(t, Config{
		Addr: ":0", Replicas: []string{stuck.URL},
		ShutdownGrace: 200 * time.Millisecond, Logger: testLogger(t),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/optimize",
			"application/json", strings.NewReader(`{"query":"1a"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()

	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case <-served:
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("drain of a stuck forward took %v, grace is 200ms", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve never returned with a stuck in-flight forward")
	}
}
