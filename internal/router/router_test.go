package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"jobench/internal/trace"
)

// testLogger routes router diagnostics into the test log.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{t}, nil))
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// echoBackend answers every /v1/* request with its own id plus the body it
// saw, and /healthz with 200.
func echoBackend(t *testing.T, id string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"backend": id, "path": r.URL.Path, "body": string(body)})
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func newTestRouter(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestForwardAffinity: requests for one (workload, seed, scale) world
// always land on the ring owner, across both POST bodies and GET query
// params.
func TestForwardAffinity(t *testing.T) {
	a, _ := echoBackend(t, "a")
	b, _ := echoBackend(t, "b")
	c, _ := echoBackend(t, "c")
	urls := []string{a.URL, b.URL, c.URL}
	s := newTestRouter(t, Config{Addr: ":0", Replicas: urls})
	front := httptest.NewServer(s.Handler())
	defer front.Close()

	ring := NewRingFromConfig(urls)
	for seed := int64(1); seed <= 20; seed++ {
		key := AffinityKey("imdb", seed, 0.1)
		wantURL := ring.Owner(key)

		body := fmt.Sprintf(`{"query":"13d","workload":"imdb","seed":%d,"scale":0.1}`, seed)
		resp, err := http.Post(front.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("X-Jobench-Replica"); got != wantURL {
			t.Fatalf("seed %d: POST landed on %s, ring owner is %s", seed, got, wantURL)
		}
		resp.Body.Close()

		resp, err = http.Get(fmt.Sprintf("%s/v1/queries?workload=imdb&seed=%d&scale=0.1", front.URL, seed))
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("X-Jobench-Replica"); got != wantURL {
			t.Fatalf("seed %d: GET landed on %s, ring owner is %s", seed, got, wantURL)
		}
		resp.Body.Close()
	}
}

// TestFailoverAndMarkDown: a dead owner's requests fail over to the next
// live candidate; after MarkDownAfter transport errors the replica is
// marked down (visible in /healthz and /metrics) and stops being tried.
func TestFailoverAndMarkDown(t *testing.T) {
	a, _ := echoBackend(t, "a")
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // nothing listens here anymore

	urls := []string{a.URL, deadURL}
	s := newTestRouter(t, Config{
		Addr: ":0", Replicas: urls, MarkDownAfter: 2,
		Logger: testLogger(t),
	})
	front := httptest.NewServer(s.Handler())
	defer front.Close()

	// Find a seed the dead replica owns, so forwards must fail over.
	ring := NewRingFromConfig(urls)
	seed := int64(-1)
	for i := int64(0); i < 1000; i++ {
		if ring.Owner(AffinityKey("imdb", i, 0.1)) == strings.TrimRight(deadURL, "/") {
			seed = i
			break
		}
	}
	if seed < 0 {
		t.Fatal("no key owned by the dead replica in 1000 tries")
	}

	for i := 0; i < 3; i++ {
		resp, err := http.Post(front.URL+"/v1/optimize", "application/json",
			strings.NewReader(fmt.Sprintf(`{"workload":"imdb","seed":%d,"scale":0.1}`, seed)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 via failover", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Jobench-Replica"); got != a.URL {
			t.Fatalf("request %d: landed on %s, want failover to %s", i, got, a.URL)
		}
		resp.Body.Close()
	}

	if s.isLive(deadURL) {
		t.Fatal("dead replica still marked live after repeated transport errors")
	}
	metrics := s.renderMetrics()
	if want := fmt.Sprintf("jobench_router_replica_up{replica=%q} 0", deadURL); !strings.Contains(metrics, want) {
		t.Fatalf("metrics missing %q:\n%s", want, metrics)
	}
	if want := fmt.Sprintf("jobench_router_replica_markdowns_total{replica=%q} 1", deadURL); !strings.Contains(metrics, want) {
		t.Fatalf("metrics missing %q (mark-down must count once per transition):\n%s", want, metrics)
	}
	// Retries landed on the survivor.
	if want := fmt.Sprintf("jobench_router_replica_retries_total{replica=%q}", a.URL); !strings.Contains(metrics, want) {
		t.Fatalf("metrics missing retry counter for %s:\n%s", a.URL, metrics)
	}
}

// TestHealthLoopRecovery: the probe loop marks a failing replica down and
// a recovered one back up.
func TestHealthLoopRecovery(t *testing.T) {
	var healthy atomic.Bool
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer backend.Close()

	s := newTestRouter(t, Config{
		Addr: ":0", Replicas: []string{backend.URL},
		HealthInterval: 10 * time.Millisecond, HealthTimeout: time.Second,
		MarkDownAfter: 2, Logger: testLogger(t),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.healthLoop(ctx)

	waitFor(t, "mark-down", func() bool { return !s.isLive(backend.URL) })
	healthy.Store(true)
	waitFor(t, "recovery", func() bool { return s.isLive(backend.URL) })
}

// TestNoLiveReplica: with everything down the router answers 503 and
// counts it.
func TestNoLiveReplica(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	s := newTestRouter(t, Config{Addr: ":0", Replicas: []string{deadURL}, MarkDownAfter: 1, Logger: testLogger(t)})
	front := httptest.NewServer(s.Handler())
	defer front.Close()

	// First request: transport error marks the only replica down.
	resp, err := http.Post(front.URL+"/v1/optimize", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Second request: no live replica at all.
	resp, err = http.Post(front.URL+"/v1/optimize", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 with no live replicas", resp.StatusCode)
	}
	if s.noReplica.Load() == 0 {
		t.Fatal("no-replica refusals not counted")
	}

	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz status %d, want 503 with no live replicas", hresp.StatusCode)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestForwardPropagatesTraceID: the router mints a trace ID, stamps it on
// the response and the forwarded request (so router and replica record
// spans under the same trace), honors a caller-supplied ID, and keeps the
// finished trace in its /v1/traces ring.
func TestForwardPropagatesTraceID(t *testing.T) {
	var seen atomic.Value // trace header the backend received
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		seen.Store(r.Header.Get(trace.Header))
		fmt.Fprint(w, `{}`)
	}))
	defer backend.Close()

	s := newTestRouter(t, Config{Addr: ":0", Replicas: []string{backend.URL}, Logger: testLogger(t)})
	front := httptest.NewServer(s.Handler())
	defer front.Close()

	// Router-minted ID: response header, backend header and the trace
	// ring must all agree.
	resp, err := http.Post(front.URL+"/v1/optimize", "application/json",
		strings.NewReader(`{"query":"1a"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get(trace.Header)
	if _, ok := trace.ParseID(id); !ok {
		t.Fatalf("response trace header %q is not a valid ID", id)
	}
	if got := seen.Load(); got != id {
		t.Fatalf("backend saw trace %q, response says %q", got, id)
	}
	recs := s.Traces().Snapshot(0, "")
	if len(recs) != 1 || recs[0].TraceID != id {
		t.Fatalf("trace ring = %+v, want one record with id %s", recs, id)
	}
	if len(recs[0].Spans) == 0 || recs[0].Spans[0].Name != "forward" {
		t.Fatalf("trace record lacks the forward span: %+v", recs[0].Spans)
	}

	// Caller-supplied ID: continued, not replaced.
	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/optimize",
		strings.NewReader(`{"query":"1a"}`))
	if err != nil {
		t.Fatal(err)
	}
	const want = "00000000deadbeef"
	req.Header.Set(trace.Header, want)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(trace.Header); got != want {
		t.Fatalf("caller-supplied trace %q came back as %q", want, got)
	}
	if got := seen.Load(); got != want {
		t.Fatalf("backend saw trace %q, want %q", got, want)
	}
}
