package service

import (
	"context"
	"errors"
	"sync"
)

// errShed is returned by acquire when the admission queue is already at
// its waiter cap: the request is rejected immediately (the handler maps it
// to 429 + Retry-After) instead of joining an unbounded line. Shedding at
// the queue, not at capacity, is deliberate — a full queue means the
// backlog already covers several multiples of the service time, so a new
// waiter would only time out more expensively later.
var errShed = errors.New("admission queue full")

// admission is the weighted semaphore in front of the experiment report
// flight: a burst of distinct uncached reports must queue for capacity
// units instead of oversubscribing the box with concurrent full-grid
// sweeps. Waiters are granted strictly FIFO — a stream of light requests
// cannot starve a heavy one — and acquisition is context-aware, so
// shutdown (or a client giving up, where the caller passes a request
// context) unblocks the queue.
//
// Report cache hits and piled-up waiters of an in-flight computation never
// touch the semaphore: only the single goroutine actually computing a
// report acquires.
type admission struct {
	mu         sync.Mutex
	cap        int64
	maxWaiting int
	used       int64
	waiters    []*admitWaiter

	admitted int64 // total grants, for /metrics
	shed     int64 // total queue-full rejections, for /metrics
}

type admitWaiter struct {
	weight  int64
	ready   chan struct{}
	granted bool
}

// newAdmission builds a semaphore with capacity weight units and at most
// maxWaiting queued acquirers (non-positive selects the default of 16);
// an acquire beyond that cap is shed with errShed instead of queued.
func newAdmission(capacity int64, maxWaiting int) *admission {
	if capacity < 1 {
		capacity = 1
	}
	if maxWaiting <= 0 {
		maxWaiting = 16
	}
	return &admission{cap: capacity, maxWaiting: maxWaiting}
}

// acquire blocks until weight units are available (or ctx is cancelled),
// returning errShed without blocking when the waiter queue is full.
// Weights above the total capacity clamp to it, so an over-weighted
// request degrades to "the only thing running" instead of deadlocking.
func (a *admission) acquire(ctx context.Context, weight int64) error {
	if weight < 1 {
		weight = 1
	}
	if weight > a.cap {
		weight = a.cap
	}
	a.mu.Lock()
	if len(a.waiters) == 0 && a.used+weight <= a.cap {
		a.used += weight
		a.admitted++
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.maxWaiting {
		a.shed++
		a.mu.Unlock()
		return errShed
	}
	w := &admitWaiter{weight: weight, ready: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// Lost the race: the grant happened as ctx fired. Hand the
			// units straight back (and wake whoever they now fit).
			a.used -= w.weight
			a.admitted--
			a.grantLocked()
		} else {
			for i, q := range a.waiters {
				if q == w {
					a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
					break
				}
			}
		}
		a.mu.Unlock()
		return ctx.Err()
	}
}

// release returns weight units (clamped like acquire) and wakes waiters.
func (a *admission) release(weight int64) {
	if weight < 1 {
		weight = 1
	}
	if weight > a.cap {
		weight = a.cap
	}
	a.mu.Lock()
	a.used -= weight
	if a.used < 0 {
		a.used = 0
	}
	a.grantLocked()
	a.mu.Unlock()
}

// grantLocked admits queued waiters FIFO while capacity lasts.
func (a *admission) grantLocked() {
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if a.used+w.weight > a.cap {
			return
		}
		a.used += w.weight
		a.admitted++
		w.granted = true
		a.waiters = a.waiters[1:]
		close(w.ready)
	}
}

// stats reports (current waiters, units in use, total admissions, total
// sheds).
func (a *admission) stats() (waiting int, inUse, admitted, shed int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters), a.used, a.admitted, a.shed
}

// experimentWeight prices an experiment in admission units: the full
// execute-or-enumerate workload sweeps weigh 2, everything else (estimation
// sweeps, single-query ablations) weighs 1. With the default capacity of 4
// a server runs at most two heavy grids at once.
func experimentWeight(name string) int64 {
	switch name {
	case "sec41", "fig6", "fig7", "fig8", "fig9", "table2", "table3", "hedging":
		return 2
	default:
		return 1
	}
}
