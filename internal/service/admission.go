package service

import (
	"context"
	"sync"
)

// admission is the weighted semaphore in front of the experiment report
// flight: a burst of distinct uncached reports must queue for capacity
// units instead of oversubscribing the box with concurrent full-grid
// sweeps. Waiters are granted strictly FIFO — a stream of light requests
// cannot starve a heavy one — and acquisition is context-aware, so
// shutdown (or a client giving up, where the caller passes a request
// context) unblocks the queue.
//
// Report cache hits and piled-up waiters of an in-flight computation never
// touch the semaphore: only the single goroutine actually computing a
// report acquires.
type admission struct {
	mu      sync.Mutex
	cap     int64
	used    int64
	waiters []*admitWaiter

	admitted int64 // total grants, for /metrics
}

type admitWaiter struct {
	weight  int64
	ready   chan struct{}
	granted bool
}

func newAdmission(capacity int64) *admission {
	if capacity < 1 {
		capacity = 1
	}
	return &admission{cap: capacity}
}

// acquire blocks until weight units are available (or ctx is cancelled).
// Weights above the total capacity clamp to it, so an over-weighted
// request degrades to "the only thing running" instead of deadlocking.
func (a *admission) acquire(ctx context.Context, weight int64) error {
	if weight < 1 {
		weight = 1
	}
	if weight > a.cap {
		weight = a.cap
	}
	a.mu.Lock()
	if len(a.waiters) == 0 && a.used+weight <= a.cap {
		a.used += weight
		a.admitted++
		a.mu.Unlock()
		return nil
	}
	w := &admitWaiter{weight: weight, ready: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// Lost the race: the grant happened as ctx fired. Hand the
			// units straight back (and wake whoever they now fit).
			a.used -= w.weight
			a.admitted--
			a.grantLocked()
		} else {
			for i, q := range a.waiters {
				if q == w {
					a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
					break
				}
			}
		}
		a.mu.Unlock()
		return ctx.Err()
	}
}

// release returns weight units (clamped like acquire) and wakes waiters.
func (a *admission) release(weight int64) {
	if weight < 1 {
		weight = 1
	}
	if weight > a.cap {
		weight = a.cap
	}
	a.mu.Lock()
	a.used -= weight
	if a.used < 0 {
		a.used = 0
	}
	a.grantLocked()
	a.mu.Unlock()
}

// grantLocked admits queued waiters FIFO while capacity lasts.
func (a *admission) grantLocked() {
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if a.used+w.weight > a.cap {
			return
		}
		a.used += w.weight
		a.admitted++
		w.granted = true
		a.waiters = a.waiters[1:]
		close(w.ready)
	}
}

// stats reports (current waiters, units in use, total admissions).
func (a *admission) stats() (waiting int, inUse, admitted int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters), a.used, a.admitted
}

// experimentWeight prices an experiment in admission units: the full
// execute-or-enumerate workload sweeps weigh 2, everything else (estimation
// sweeps, single-query ablations) weighs 1. With the default capacity of 4
// a server runs at most two heavy grids at once.
func experimentWeight(name string) int64 {
	switch name {
	case "sec41", "fig6", "fig7", "fig8", "fig9", "table2", "table3", "hedging":
		return 2
	default:
		return 1
	}
}
