package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestAdmissionWeightsAndFIFO(t *testing.T) {
	a := newAdmission(4, 0)
	ctx := context.Background()

	// Two heavy sweeps fill the capacity.
	if err := a.acquire(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(ctx, 2); err != nil {
		t.Fatal(err)
	}

	// A light request must queue behind them...
	order := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	started := make(chan struct{}, 2)
	go func() {
		defer wg.Done()
		started <- struct{}{}
		if err := a.acquire(ctx, 1); err != nil {
			t.Error(err)
			return
		}
		order <- 1
	}()
	// Give the first waiter time to enqueue so FIFO order is deterministic.
	<-started
	waitForWaiters(t, a, 1)
	go func() {
		defer wg.Done()
		started <- struct{}{}
		if err := a.acquire(ctx, 1); err != nil {
			t.Error(err)
			return
		}
		order <- 2
	}()
	<-started
	waitForWaiters(t, a, 2)

	if w, inUse, admitted, _ := a.stats(); w != 2 || inUse != 4 || admitted != 2 {
		t.Fatalf("stats = (%d, %d, %d), want (2, 4, 2)", w, inUse, admitted)
	}

	// ...and be admitted FIFO as units free up, one at a time so the grant
	// order is observable.
	a.release(1)
	if first := <-order; first != 1 {
		t.Fatalf("first admission was waiter %d, want 1", first)
	}
	if w, _, _, _ := a.stats(); w != 1 {
		t.Fatalf("%d waiters after first grant, want 1", w)
	}
	a.release(1)
	if second := <-order; second != 2 {
		t.Fatalf("second admission was waiter %d, want 2", second)
	}
	wg.Wait()
	if w, inUse, admitted, _ := a.stats(); w != 0 || inUse != 4 || admitted != 4 {
		t.Fatalf("stats after grants = (%d, %d, %d), want (0, 4, 4)", w, inUse, admitted)
	}
}

func waitForWaiters(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if w, _, _, _ := a.stats(); w >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionCancelledWaiterLeavesQueue(t *testing.T) {
	a := newAdmission(1, 0)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.acquire(ctx, 1) }()
	waitForWaiters(t, a, 1)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled acquire returned %v", err)
	}
	if w, _, _, _ := a.stats(); w != 0 {
		t.Fatalf("cancelled waiter still queued (%d)", w)
	}
	// The capacity it never got must still be grantable.
	a.release(1)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionOverweightClampsToCapacity(t *testing.T) {
	a := newAdmission(2, 0)
	// Weight 5 > capacity 2 clamps: it must be admissible at all.
	done := make(chan error, 1)
	go func() { done <- a.acquire(context.Background(), 5) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("over-weighted acquire deadlocked")
	}
	a.release(5)
	if _, inUse, _, _ := a.stats(); inUse != 0 {
		t.Fatalf("in-use %d after clamped release, want 0", inUse)
	}
}

// TestAdmissionQueueOverflowSheds: concurrent heavy experiments beyond
// capacity get bounded waits, and one past the queue cap is shed
// immediately with errShed; after the backlog drains the waiting gauge
// returns to zero.
func TestAdmissionQueueOverflowSheds(t *testing.T) {
	a := newAdmission(2, 2)
	ctx := context.Background()

	// One heavy sweep fills the capacity; two more fill the queue.
	if err := a.acquire(ctx, 2); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { errs <- a.acquire(ctx, 2) }()
	}
	waitForWaiters(t, a, 2)

	// A fourth heavy experiment must be rejected without blocking.
	start := time.Now()
	err := a.acquire(ctx, 2)
	if !errors.Is(err, errShed) {
		t.Fatalf("overflow acquire = %v, want errShed", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("shed took %v; must be immediate", elapsed)
	}
	if _, _, _, shed := a.stats(); shed != 1 {
		t.Fatalf("shed counter = %d, want 1", shed)
	}

	// Drain the backlog: both queued waiters get bounded (FIFO) grants and
	// the waiting gauge returns to zero.
	a.release(2)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	a.release(2)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	a.release(2)
	if w, inUse, _, _ := a.stats(); w != 0 || inUse != 0 {
		t.Fatalf("after drain: waiting=%d inUse=%d, want 0/0", w, inUse)
	}
}

// TestExperimentShedReturns429: the HTTP surface of shedding — with the
// admission capacity and queue both held, /v1/experiment returns a clean
// 429 with Retry-After, and never touches the pool.
func TestExperimentShedReturns429(t *testing.T) {
	srv := New(Config{DefaultScale: 0.05, ReportCapacity: 1, MaxQueue: 1})
	// Occupy the capacity and the whole waiter queue directly.
	if err := srv.admit.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	queued := make(chan error, 1)
	go func() {
		err := srv.admit.acquire(context.Background(), 1)
		<-release
		queued <- err
	}()
	waitForWaiters(t, srv.admit, 1)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/experiment/table1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	if _, _, _, shed := srv.admit.stats(); shed != 1 {
		t.Fatalf("shed counter = %d, want 1", shed)
	}

	srv.admit.release(1) // grants the queued waiter
	close(release)
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	srv.admit.release(1)
	if w, inUse, _, _ := srv.admit.stats(); w != 0 || inUse != 0 {
		t.Fatalf("after drain: waiting=%d inUse=%d, want 0/0", w, inUse)
	}
}

func TestExperimentWeights(t *testing.T) {
	if w := experimentWeight("sec41"); w != 2 {
		t.Fatalf("sec41 weight %d, want 2", w)
	}
	if w := experimentWeight("table1"); w != 1 {
		t.Fatalf("table1 weight %d, want 1", w)
	}
}
