package service

import "jobench/internal/trace"

// The JSON bodies of the /v1 endpoints. Field vocabulary deliberately
// mirrors jobench.Options and the CLI's plan flags — the same strings the
// flags accept ("postgres", "pkfk", "bushy", "dp", ...) are valid here, and
// zero values select the same defaults the CLI uses.

// PlanRequest selects a world (workload, seed, scale → pool key) and one
// optimization's knobs. Omitted workload/seed/scale fall back to the
// server's defaults.
type PlanRequest struct {
	// Workload names the benchmark world ("imdb", "tpch", "imdb-skew");
	// omitted falls back to the server's default workload.
	Workload string  `json:"workload,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Scale    float64 `json:"scale,omitempty"`

	// Query is a workload query id ("1a".."33c" for imdb, "tpch3".."tpch19"
	// for tpch).
	Query string `json:"query"`
	// Estimator: postgres|dbms-a|dbms-b|dbms-c|hyper|true (default postgres).
	Estimator string `json:"estimator,omitempty"`
	// CostModel: simple|postgres|tuned (default simple).
	CostModel string `json:"cost_model,omitempty"`
	// Indexes: none|pk|pkfk (default pkfk).
	Indexes string `json:"indexes,omitempty"`
	// DisableNestedLoops omits non-indexed nested-loop joins; omitted means
	// true, the CLI's default.
	DisableNestedLoops *bool `json:"disable_nested_loops,omitempty"`
	// Shape: bushy|leftdeep|rightdeep|zigzag (default bushy).
	Shape string `json:"shape,omitempty"`
	// Algorithm: dp|dpccp|quickpick|goo (default dp).
	Algorithm string `json:"algorithm,omitempty"`
	// PlanSeed drives randomized enumerators (quickpick).
	PlanSeed int64 `json:"plan_seed,omitempty"`
	// Adaptive consults the plan-feedback cache before planning: observed
	// cardinalities from earlier adaptive executions of the same query
	// fingerprint are pinned over the estimator. On /v1/execute it also
	// enables mid-execution re-optimization.
	Adaptive bool `json:"adaptive,omitempty"`
}

// OptimizeResponse is one planned query. FeedbackHit and Pinned are present
// exactly when the request was adaptive.
type OptimizeResponse struct {
	// Workload echoes the resolved workload the plan was built against.
	Workload string  `json:"workload"`
	Query    string  `json:"query"`
	Plan     string  `json:"plan"`
	Cost     float64 `json:"cost"`
	// FeedbackHit reports whether the plan-feedback cache held observations
	// for this query.
	FeedbackHit *bool `json:"feedback_hit,omitempty"`
	// Pinned is the number of observed cardinalities injected over the
	// estimator.
	Pinned *int `json:"pinned,omitempty"`
}

// ExecuteRequest is PlanRequest plus the engine knobs.
type ExecuteRequest struct {
	PlanRequest
	// Rehash lets hash joins grow at runtime; omitted means true, the
	// CLI's default.
	Rehash *bool `json:"rehash,omitempty"`
	// WorkLimit aborts after this many work units (0 = unlimited).
	WorkLimit int64 `json:"work_limit,omitempty"`
	// QErrThreshold is the q-error above which an adaptive execution
	// replans (0 = the reopt default of 2). Ignored unless adaptive.
	QErrThreshold float64 `json:"qerr_threshold,omitempty"`
	// MaxReplans bounds re-optimizations per adaptive execution (0 = the
	// reopt default of 4). Ignored unless adaptive.
	MaxReplans int `json:"max_replans,omitempty"`
	// Explain selects an instrumented execution: "analyze" collects
	// per-operator actuals and adds the analyze/nodes fields to the
	// response. Incompatible with adaptive.
	Explain string `json:"explain,omitempty"`
}

// ExecuteResponse is one executed query. Replans, FeedbackHit and Pinned
// are present exactly when the request was adaptive.
type ExecuteResponse struct {
	// Workload echoes the resolved workload the query ran against.
	Workload string `json:"workload"`
	Query    string `json:"query"`
	Rows     int64  `json:"rows"`
	Work     int64  `json:"work"`
	TimedOut bool   `json:"timed_out"`
	Plan     string `json:"plan"`
	// Replans counts mid-execution re-optimizations.
	Replans *int `json:"replans,omitempty"`
	// FeedbackHit reports whether planning started from cached
	// observations.
	FeedbackHit *bool `json:"feedback_hit,omitempty"`
	// Pinned is the number of cached cardinalities injected before the
	// first plan.
	Pinned *int `json:"pinned,omitempty"`
	// Analyze and Nodes are present exactly when the request asked for
	// "explain": "analyze": the EXPLAIN ANALYZE rendering and the
	// structured per-operator actuals behind it.
	Analyze string        `json:"analyze,omitempty"`
	Nodes   []ExplainNode `json:"nodes,omitempty"`
}

// ExplainNode is one operator of an instrumented execution: the
// optimizer's estimate next to the engine's measured actuals.
type ExplainNode struct {
	// ID is the operator's preorder position; Depth its tree depth.
	ID    int    `json:"id"`
	Depth int    `json:"depth"`
	Op    string `json:"op"`
	// Cond renders the scan selection or join predicates.
	Cond string `json:"cond,omitempty"`
	// EstRows is the optimizer's cardinality estimate; ActualRows the
	// measured output cardinality; QError max(est/actual, actual/est).
	EstRows    float64 `json:"est_rows"`
	ActualRows int64   `json:"actual_rows"`
	QError     float64 `json:"q_error"`
	// WorkUnits is the deterministic work charged at this operator;
	// WallMS the inclusive wall-clock milliseconds of its subtree.
	WorkUnits int64   `json:"work_units"`
	WallMS    float64 `json:"wall_ms"`
}

// ExplainResponse is one EXPLAIN ANALYZE execution (POST /v1/explain).
type ExplainResponse struct {
	// Workload echoes the resolved workload the query ran against.
	Workload string `json:"workload"`
	Query    string `json:"query"`
	// Text is the rendered tree with estimated vs actual rows and
	// per-node q-error.
	Text string `json:"text"`
	// Nodes lists every operator in preorder.
	Nodes    []ExplainNode `json:"nodes"`
	Rows     int64         `json:"rows"`
	Work     int64         `json:"work"`
	TimedOut bool          `json:"timed_out"`
}

// TracesResponse lists recently finished request traces, newest first
// (GET /v1/traces?min_ms=N&route=/v1/execute).
type TracesResponse struct {
	Count  int            `json:"count"`
	Traces []trace.Record `json:"traces"`
}

// EstimateRequest asks one estimator for a query's result size.
type EstimateRequest struct {
	// Workload names the benchmark world; omitted falls back to the
	// server's default workload.
	Workload  string  `json:"workload,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
	Query     string  `json:"query"`
	Estimator string  `json:"estimator,omitempty"`
}

// EstimateResponse is the predicted result cardinality.
type EstimateResponse struct {
	// Workload echoes the resolved workload.
	Workload    string  `json:"workload"`
	Query       string  `json:"query"`
	Estimator   string  `json:"estimator"`
	Cardinality float64 `json:"cardinality"`
}

// QueriesResponse lists one workload's query set.
type QueriesResponse struct {
	// Workload echoes the resolved workload the queries belong to.
	Workload string   `json:"workload"`
	Count    int      `json:"count"`
	Queries  []string `json:"queries"`
}

// ExperimentResponse wraps one experiment report with its resolved world
// (format=json on /v1/experiment/{name}); the default rendering stays the
// raw text report, byte-identical to the CLI's.
type ExperimentResponse struct {
	Experiment string  `json:"experiment"`
	Workload   string  `json:"workload"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	Report     string  `json:"report"`
}

// ErrorResponse is every endpoint's failure body.
type ErrorResponse struct {
	Error string `json:"error"`
}
