package service

import (
	"sync"

	"jobench"
)

// lruMap is the pool's resident-instance store: a mutex-guarded map plus a
// recency list, evicting the least-recently-used entry once the map grows
// past its capacity. An evicted instance is simply dropped — systems are
// immutable and requests that already hold a reference keep it alive until
// they finish.
type lruMap struct {
	mu      sync.Mutex
	cap     int
	m       map[Key]*entry
	order   []Key // least-recently-used first
	metrics *Metrics
}

func newLRUMap(capacity int, metrics *Metrics) *lruMap {
	return &lruMap{cap: capacity, m: make(map[Key]*entry), metrics: metrics}
}

// get returns a copy of the entry for key (nil if absent) and marks it
// most-recently-used. Returning a copy keeps callers from reading the
// entry's fields while a concurrent setSys/setLab writes them.
func (l *lruMap) get(key Key) *entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.m[key]
	if !ok {
		return nil
	}
	l.touch(key)
	cp := *e
	return &cp
}

// set updates one field of key's entry (creating it if needed), marks it
// most-recently-used, and evicts the LRU entry if the map outgrew its
// capacity.
func (l *lruMap) set(key Key, update func(*entry)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.m[key]
	if !ok {
		e = &entry{}
		l.m[key] = e
	}
	update(e)
	l.touch(key)
	// The order-list bound keeps a map/order mismatch (impossible while
	// keys stay comparable-sane) from turning into an index panic.
	for len(l.m) > l.cap && len(l.order) > 0 {
		victim := l.order[0]
		l.order = l.order[1:]
		delete(l.m, victim)
		l.metrics.PoolEvictions.Add(1)
	}
}

// touch moves key to the most-recently-used end of the order list.
func (l *lruMap) touch(key Key) {
	for i, k := range l.order {
		if k == key {
			l.order = append(append(l.order[:i:i], l.order[i+1:]...), key)
			return
		}
	}
	l.order = append(l.order, key)
}

func (l *lruMap) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}

// systems snapshots the resident Systems (recency order, least recent
// first) so pool-wide metric aggregation can run outside the lock.
func (l *lruMap) systems() []*jobench.System {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*jobench.System, 0, len(l.m))
	for _, k := range l.order {
		if e := l.m[k]; e != nil && e.sys != nil {
			out = append(out, e.sys)
		}
	}
	return out
}
