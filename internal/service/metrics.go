package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jobench/internal/fault"
	"jobench/internal/reopt"
)

// Metrics is the service's ops counters, rendered at /metrics in the
// Prometheus text exposition format. It is dependency-free on purpose: the
// container bakes in no Prometheus client, and the handful of counters the
// service needs — request counts and latencies per route, pool
// hits/misses/evictions, in-flight warmups, report-cache hits — fit in a
// mutex-guarded map plus a few atomics.
type Metrics struct {
	mu        sync.Mutex
	requests  map[routeCode]*routeStats
	workloads map[string]*workloadStats

	PoolHits        atomic.Int64
	PoolMisses      atomic.Int64
	PoolEvictions   atomic.Int64
	WarmupsInFlight atomic.Int64
	ReportHits      atomic.Int64
	ReportMisses    atomic.Int64
	PeerFillHits    atomic.Int64
	PeerFillMisses  atomic.Int64
	Replans         atomic.Int64
	Panics          atomic.Int64

	// feedbackStats, when set, aggregates the plan-feedback cache counters
	// across the pool's resident systems for the feedback_cache_* series.
	feedbackStats func() reopt.Stats

	// admission, when set, contributes the report admission-control gauges
	// (waiting, units in use, total admitted).
	admission *admission

	// replicaID, when set, is exported as jobench_replica_info{replica=...}
	// so a fleet's scraped series are tellable apart.
	replicaID string

	// faultStats, when set, contributes the injected-fault counters
	// (jobench_fault_injected_total{kind=...}) so a chaos run can account
	// for every fault it injected; nil (production) renders nothing.
	faultStats func() fault.Stats
}

type routeCode struct {
	route string
	code  int
}

type routeStats struct {
	count   int64
	seconds float64
}

// workloadStats counts pool and report-cache traffic for one workload, the
// jobench_pool_requests_total / jobench_report_cache_requests_total label
// sets.
type workloadStats struct {
	poolHits, poolMisses     int64
	reportHits, reportMisses int64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:  make(map[routeCode]*routeStats),
		workloads: make(map[string]*workloadStats),
	}
}

func (m *Metrics) wstats(workload string) *workloadStats {
	ws := m.workloads[workload]
	if ws == nil {
		ws = &workloadStats{}
		m.workloads[workload] = ws
	}
	return ws
}

// PoolObserve records one pool lookup for a workload: the unlabeled
// totals plus the per-workload series.
func (m *Metrics) PoolObserve(workload string, hit bool) {
	if hit {
		m.PoolHits.Add(1)
	} else {
		m.PoolMisses.Add(1)
	}
	m.mu.Lock()
	ws := m.wstats(workload)
	if hit {
		ws.poolHits++
	} else {
		ws.poolMisses++
	}
	m.mu.Unlock()
}

// ReportObserve records one report-cache lookup for a workload: the
// unlabeled totals plus the per-workload series.
func (m *Metrics) ReportObserve(workload string, hit bool) {
	if hit {
		m.ReportHits.Add(1)
	} else {
		m.ReportMisses.Add(1)
	}
	m.mu.Lock()
	ws := m.wstats(workload)
	if hit {
		ws.reportHits++
	} else {
		ws.reportMisses++
	}
	m.mu.Unlock()
}

// Observe records one completed request.
func (m *Metrics) Observe(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := routeCode{route, code}
	st := m.requests[k]
	if st == nil {
		st = &routeStats{}
		m.requests[k] = st
	}
	st.count++
	st.seconds += d.Seconds()
}

// Render produces the Prometheus text format, keys sorted for a stable
// (diffable, testable) exposition.
func (m *Metrics) Render() string {
	m.mu.Lock()
	keys := make([]routeCode, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	type row struct {
		k  routeCode
		st routeStats
	}
	rows := make([]row, len(keys))
	for i, k := range keys {
		rows[i] = row{k, *m.requests[k]}
	}
	wnames := make([]string, 0, len(m.workloads))
	for w := range m.workloads {
		wnames = append(wnames, w)
	}
	sort.Strings(wnames)
	type wrow struct {
		name string
		st   workloadStats
	}
	wrows := make([]wrow, len(wnames))
	for i, w := range wnames {
		wrows[i] = wrow{w, *m.workloads[w]}
	}
	m.mu.Unlock()

	var b strings.Builder
	b.WriteString("# HELP jobench_requests_total Completed HTTP requests by route and status code.\n")
	b.WriteString("# TYPE jobench_requests_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "jobench_requests_total{route=%q,code=\"%d\"} %d\n", r.k.route, r.k.code, r.st.count)
	}
	b.WriteString("# HELP jobench_request_seconds_total Cumulative request latency by route and status code.\n")
	b.WriteString("# TYPE jobench_request_seconds_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "jobench_request_seconds_total{route=%q,code=\"%d\"} %g\n", r.k.route, r.k.code, r.st.seconds)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\njobench_%s %d\n",
			"jobench_"+name, help, "jobench_"+name, kindOf(name), name, v)
	}
	if len(wrows) > 0 {
		b.WriteString("# HELP jobench_pool_requests_total Pool lookups by workload and outcome.\n")
		b.WriteString("# TYPE jobench_pool_requests_total counter\n")
		for _, r := range wrows {
			fmt.Fprintf(&b, "jobench_pool_requests_total{workload=%q,outcome=\"hit\"} %d\n", r.name, r.st.poolHits)
			fmt.Fprintf(&b, "jobench_pool_requests_total{workload=%q,outcome=\"miss\"} %d\n", r.name, r.st.poolMisses)
		}
		b.WriteString("# HELP jobench_report_cache_requests_total Report-cache lookups by workload and outcome.\n")
		b.WriteString("# TYPE jobench_report_cache_requests_total counter\n")
		for _, r := range wrows {
			fmt.Fprintf(&b, "jobench_report_cache_requests_total{workload=%q,outcome=\"hit\"} %d\n", r.name, r.st.reportHits)
			fmt.Fprintf(&b, "jobench_report_cache_requests_total{workload=%q,outcome=\"miss\"} %d\n", r.name, r.st.reportMisses)
		}
	}
	gauge("pool_hits_total", "System pool lookups served by a resident instance.", m.PoolHits.Load())
	gauge("pool_misses_total", "System pool lookups that required construction.", m.PoolMisses.Load())
	gauge("pool_evictions_total", "Instances evicted from the system pool.", m.PoolEvictions.Load())
	gauge("pool_warmups_inflight", "System or lab constructions currently running.", m.WarmupsInFlight.Load())
	gauge("report_cache_hits_total", "Experiment reports served from the report cache.", m.ReportHits.Load())
	gauge("report_cache_misses_total", "Experiment reports that had to be computed.", m.ReportMisses.Load())
	gauge("peer_fill_hits_total", "Report misses satisfied by the owning replica's cache.", m.PeerFillHits.Load())
	gauge("peer_fill_misses_total", "Peer-fill peeks that found the owner cold or unreachable.", m.PeerFillMisses.Load())
	gauge("replans_total", "Mid-execution re-optimizations triggered by adaptive requests.", m.Replans.Load())
	gauge("panics_total", "Handler panics recovered into 500 responses.", m.Panics.Load())
	if m.feedbackStats != nil {
		fs := m.feedbackStats()
		gauge("feedback_cache_hits_total", "Plan-feedback cache lookups that found observations.", fs.Hits)
		gauge("feedback_cache_misses_total", "Plan-feedback cache lookups that found nothing.", fs.Misses)
		gauge("feedback_cache_evictions_total", "Plan-feedback entries evicted under the byte budget.", fs.Evictions)
		gauge("feedback_cache_entries", "Resident plan-feedback entries across the system pool.", fs.Entries)
		gauge("feedback_cache_bytes", "Accounted bytes held by the plan-feedback caches.", fs.Bytes)
	}
	if m.replicaID != "" {
		fmt.Fprintf(&b, "# HELP jobench_replica_info Identity of this replica (constant 1).\n# TYPE jobench_replica_info gauge\njobench_replica_info{replica=%q} 1\n", m.replicaID)
	}
	if m.admission != nil {
		waiting, inUse, admitted, shed := m.admission.stats()
		gauge("report_admission_waiting", "Report computations queued for admission units.", int64(waiting))
		gauge("report_admission_in_use", "Admission units held by running report computations.", inUse)
		gauge("report_admission_admitted_total", "Report computations admitted since start.", admitted)
		gauge("report_shed_total", "Report requests rejected with 429 because the admission queue was full.", shed)
	}
	if m.faultStats != nil {
		fs := m.faultStats()
		b.WriteString("# HELP jobench_fault_injected_total Faults injected by kind (chaos testing only).\n")
		b.WriteString("# TYPE jobench_fault_injected_total counter\n")
		fmt.Fprintf(&b, "jobench_fault_injected_total{kind=\"delay\"} %d\n", fs.Delays)
		fmt.Fprintf(&b, "jobench_fault_injected_total{kind=\"error\"} %d\n", fs.Errors)
		fmt.Fprintf(&b, "jobench_fault_injected_total{kind=\"hang\"} %d\n", fs.Hangs)
		fmt.Fprintf(&b, "jobench_fault_injected_total{kind=\"reset\"} %d\n", fs.Resets)
		crashed := int64(0)
		if fs.Crashed {
			crashed = 1
		}
		gauge("fault_crashed", "Whether the injected one-shot crash has fired.", crashed)
	}
	return b.String()
}

func kindOf(name string) string {
	if strings.HasSuffix(name, "_total") {
		return "counter"
	}
	return "gauge"
}
