package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"jobench/internal/router"
	"jobench/internal/trace"
)

// peerSet is the replica-topology view a server holds when it runs behind
// the consistent-hash router: the same ring the router hashes with, this
// replica's own identity on it, and a client for asking peers.
//
// The protocol is deliberately read-only: on a local report-cache miss the
// server asks the ring OWNER of the report's (seed, scale) whether it
// already rendered that report (GET /v1/report-cache/{name}), and only
// computes locally when the owner has nothing. Owners never compute on a
// peek — so a fill can never cascade — and a dead or slow peer degrades to
// a local computation after peerTimeout, never to a failed request.
type peerSet struct {
	ring    *router.Ring
	self    string
	client  *http.Client
	timeout time.Duration
}

// newPeerSet wires the peer topology from cfg; returns nil (peer-fill
// disabled) unless both Peers and SelfURL are configured. Affinity only
// works when every replica and the router are started with the identical
// replica list, which is what `make bench-service` and the OPERATIONS doc
// prescribe.
func newPeerSet(cfg Config) *peerSet {
	if len(cfg.Peers) == 0 || cfg.SelfURL == "" {
		return nil
	}
	timeout := cfg.PeerTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &peerSet{
		ring:    router.NewRingFromConfig(cfg.Peers),
		self:    canonicalURL(cfg.SelfURL),
		client:  &http.Client{},
		timeout: timeout,
	}
}

func canonicalURL(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// owner returns the ring owner for a report's world, or "" when the owner
// is this replica itself (nothing to ask).
func (p *peerSet) owner(k reportKey) string {
	o := p.ring.Owner(router.AffinityKey(k.key.World.Workload, k.key.World.Seed, k.key.World.Scale))
	if o == p.self {
		return ""
	}
	return o
}

// peerFill asks the owning replica for an already-rendered report. ok is
// true only on a 200 with a body; every other outcome (no peers, we are
// the owner, owner cold, owner down) falls through to local computation.
//
// reqCtx is observability-only: the peek itself runs under the server
// lifetime context (flight waiters share the result), but it carries the
// initiating request's trace ID in X-Jobench-Trace — so the owner's
// /v1/traces shows the peek under the same trace the router started —
// and records a "peer.fill" span on that trace.
func (s *Server) peerFill(reqCtx context.Context, k reportKey) (text string, ok bool) {
	p := s.peers
	if p == nil {
		return "", false
	}
	owner := p.owner(k)
	if owner == "" {
		return "", false
	}
	sp := trace.StartSpan(reqCtx, "peer.fill")
	defer func() { sp.End(trace.String("owner", owner), trace.Bool("hit", ok)) }()
	ctx, cancel := context.WithTimeout(s.serverCtx(), p.timeout)
	defer cancel()
	u := fmt.Sprintf("%s/v1/report-cache/%s?workload=%s&seed=%d&scale=%s&samples=%d",
		owner, url.PathEscape(k.name), url.QueryEscape(k.key.World.Workload), k.key.World.Seed,
		strconv.FormatFloat(k.key.World.Scale, 'g', -1, 64), k.samples)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		s.metrics.PeerFillMisses.Add(1)
		return "", false
	}
	if id := trace.IDFromContext(reqCtx); id != 0 {
		req.Header.Set(trace.Header, id.String())
	}
	resp, err := p.client.Do(req)
	if err != nil {
		s.metrics.PeerFillMisses.Add(1)
		s.cfg.logger().Warn("peer-fill failed, computing locally",
			"owner", owner, "err", err, "trace_id", trace.IDFromContext(reqCtx).String())
		return "", false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The owner is alive but cold for this report: a miss, not an error.
		io.Copy(io.Discard, resp.Body)
		s.metrics.PeerFillMisses.Add(1)
		return "", false
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil || len(body) == 0 {
		s.metrics.PeerFillMisses.Add(1)
		return "", false
	}
	s.metrics.PeerFillHits.Add(1)
	return string(body), true
}

// handleReportPeek is the peer-fill endpoint: return the locally cached
// rendering of one report, or 404 without computing anything — a peek must
// stay cheap no matter how cold this replica is, or fills would cascade.
func (s *Server) handleReportPeek(w http.ResponseWriter, r *http.Request) (int, error) {
	name := r.PathValue("name")
	wl, seed, scale, err := queryWorld(r)
	if err != nil {
		return http.StatusBadRequest, err
	}
	samples := 0
	if v := r.URL.Query().Get("samples"); v != "" {
		samples, err = strconv.Atoi(v)
		if err != nil || samples < 0 {
			return http.StatusBadRequest, fmt.Errorf("invalid samples %q", v)
		}
	}
	k := reportKey{key: s.key(wl, seed, scale), name: name, samples: normalizeSamples(name, samples)}
	text, ok := s.reports.get(k)
	if !ok {
		return http.StatusNotFound, fmt.Errorf("report %q not cached here", name)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(text))
	return http.StatusOK, nil
}
