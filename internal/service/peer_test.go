package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"jobench/internal/experiments"
	"jobench/internal/router"
	"jobench/internal/trace"
)

// newPeerTestServer builds a service whose Lab construction is stubbed to
// count invocations — peer-fill tests must prove a fill happened INSTEAD
// of a computation, and the cheapest proof is "openLab was never called".
func newPeerTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *atomic.Int64) {
	t.Helper()
	cfg.Logger = discardLogger()
	s := New(cfg)
	var labBuilds atomic.Int64
	s.pool.openLab = func(Key) (*experiments.Lab, error) {
		labBuilds.Add(1)
		return nil, fmt.Errorf("test server must not compute reports locally")
	}
	h := httptest.NewServer(s.Handler())
	t.Cleanup(h.Close)
	return s, h, &labBuilds
}

// seedOwnedBy finds a seed whose report the given peer owns on the ring.
func seedOwnedBy(t *testing.T, peers []string, owner string, scale float64) int64 {
	t.Helper()
	ring := router.NewRingFromConfig(peers)
	for seed := int64(1); seed < 2000; seed++ {
		if ring.Owner(router.AffinityKey("imdb", seed, scale)) == owner {
			return seed
		}
	}
	t.Fatal("no seed owned by the requested peer in 2000 tries")
	return 0
}

// TestPeerFill: replica B, asked for a report whose world replica A owns,
// serves A's cached rendering byte-for-byte without constructing a Lab.
func TestPeerFill(t *testing.T) {
	const scale = 0.25
	// Build A first on a placeholder topology; its real URL exists only
	// after the httptest server starts, so topology is patched afterwards.
	a, aHTTP, aLabs := newPeerTestServer(t, Config{DefaultSeed: 1, DefaultScale: scale})
	b, bHTTP, bLabs := newPeerTestServer(t, Config{DefaultSeed: 1, DefaultScale: scale})
	peers := []string{aHTTP.URL, bHTTP.URL}
	a.peers = newPeerSet(Config{Peers: peers, SelfURL: aHTTP.URL})
	b.peers = newPeerSet(Config{Peers: peers, SelfURL: bHTTP.URL})

	seed := seedOwnedBy(t, peers, aHTTP.URL, scale)
	const reportText = "=== table1 ===\nthe canonical rendering\n"
	k := reportKey{key: a.key("", seed, scale), name: "table1"}
	a.reports.put(k, reportText)

	// The request carries a trace ID so the fill's propagation is
	// checkable below: B's peek at A must ride the same trace.
	const traceID = "00000000cafef00d"
	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/v1/experiment/table1?seed=%d&scale=%g", bHTTP.URL, seed, scale), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.Header, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if string(body) != reportText {
		t.Fatalf("peer-filled report differs:\ngot  %q\nwant %q", body, reportText)
	}
	if n := aLabs.Load() + bLabs.Load(); n != 0 {
		t.Fatalf("%d Lab constructions; peer-fill must not compute", n)
	}
	if b.metrics.PeerFillHits.Load() != 1 {
		t.Fatalf("PeerFillHits = %d, want 1", b.metrics.PeerFillHits.Load())
	}

	// One trace ID end to end: B recorded the experiment request under the
	// caller's ID (with a peer.fill span), and A's ring shows the peek B
	// made under the SAME ID — the cross-process propagation contract.
	var bRec *trace.Record
	for _, r := range b.Traces().Snapshot(0, "") {
		if r.TraceID == traceID {
			bRec = &r
			break
		}
	}
	if bRec == nil {
		t.Fatalf("trace %s missing from B's ring", traceID)
	}
	hasFill := false
	for _, sp := range bRec.Spans {
		if sp.Name == "peer.fill" {
			hasFill = true
		}
	}
	if !hasFill {
		t.Fatalf("B's trace lacks the peer.fill span: %+v", bRec.Spans)
	}
	foundOnA := false
	for _, r := range a.Traces().Snapshot(0, "") {
		if r.TraceID == traceID {
			foundOnA = true
			if r.Route != "/v1/report-cache/{name}" {
				t.Fatalf("A recorded trace %s under route %q", traceID, r.Route)
			}
		}
	}
	if !foundOnA {
		t.Fatalf("peek did not carry trace %s to A's ring", traceID)
	}

	// The fill is cached locally: a second request is a plain cache hit,
	// no second peek (A going away must not matter).
	aHTTP.Close()
	resp, err = http.Get(fmt.Sprintf("%s/v1/experiment/table1?seed=%d&scale=%g", bHTTP.URL, seed, scale))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != reportText {
		t.Fatalf("cached re-read failed: status %d body %q", resp.StatusCode, body)
	}
}

// TestPeerFillColdOwner: when the owner has nothing cached, the replica
// falls through to local computation (here: the stubbed error) — a cold
// fleet must not loop peeks.
func TestPeerFillColdOwner(t *testing.T) {
	const scale = 0.25
	a, aHTTP, _ := newPeerTestServer(t, Config{DefaultSeed: 1, DefaultScale: scale})
	b, bHTTP, bLabs := newPeerTestServer(t, Config{DefaultSeed: 1, DefaultScale: scale})
	_ = a
	peers := []string{aHTTP.URL, bHTTP.URL}
	b.peers = newPeerSet(Config{Peers: peers, SelfURL: bHTTP.URL})

	seed := seedOwnedBy(t, peers, aHTTP.URL, scale)
	resp, err := http.Get(fmt.Sprintf("%s/v1/experiment/table1?seed=%d&scale=%g", bHTTP.URL, seed, scale))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// The stub Lab fails, so the request errors — but it must have TRIED
	// locally after the peek missed.
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("expected local-compute failure from the stub, got 200: %s", body)
	}
	if bLabs.Load() != 1 {
		t.Fatalf("Lab constructions = %d, want 1 (local fallback)", bLabs.Load())
	}
	if b.metrics.PeerFillMisses.Load() != 1 {
		t.Fatalf("PeerFillMisses = %d, want 1", b.metrics.PeerFillMisses.Load())
	}
}

// TestReportPeekEndpoint: the peek endpoint serves only what is cached —
// 404 on a cold key, 200 with the exact bytes on a warm one, and the
// samples normalization matches handleExperiment's.
func TestReportPeekEndpoint(t *testing.T) {
	s, h, _ := newPeerTestServer(t, Config{DefaultSeed: 1, DefaultScale: 0.25})

	resp, err := http.Get(h.URL + "/v1/report-cache/table1?seed=3&scale=0.25")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold peek status %d, want 404", resp.StatusCode)
	}

	// fig9's samples default (0 → 10000) must normalize identically on
	// both surfaces, or a fill could never match a computed key.
	k := reportKey{key: s.key("", 3, 0.25), name: "fig9", samples: 10000}
	s.reports.put(k, "fig9 text")
	resp, err = http.Get(h.URL + "/v1/report-cache/fig9?seed=3&scale=0.25&samples=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "fig9 text" {
		t.Fatalf("warm peek: status %d body %q", resp.StatusCode, body)
	}
}

// TestReplicaInfoMetric: a configured ReplicaID shows up in /metrics.
func TestReplicaInfoMetric(t *testing.T) {
	_, h, _ := newPeerTestServer(t, Config{DefaultSeed: 1, DefaultScale: 0.25, ReplicaID: "replica-7"})
	resp, err := http.Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := `jobench_replica_info{replica="replica-7"} 1`; !strings.Contains(string(body), want) {
		t.Fatalf("/metrics missing %q", want)
	}
	if !strings.Contains(string(body), "jobench_peer_fill_hits_total") {
		t.Fatal("/metrics missing peer-fill counters")
	}
}
