package service

import (
	"context"
	"strconv"

	"jobench"
	"jobench/internal/experiments"
	"jobench/internal/parallel"
	"jobench/internal/reopt"
	"jobench/internal/trace"
	"jobench/internal/workload"
)

// Key identifies one resident world in the pool: everything that determines
// the opened System (and its experiments Lab) besides server-wide settings.
// The cache dir participates so two servers sharing one process but
// pointing at different snapshot stores can never alias.
type Key struct {
	// World is the (workload, seed, scale) triple.
	World workload.Key
	// CacheDir is the snapshot store the instance loads from.
	CacheDir string
}

// String renders the key for logs and metrics labels (the cache dir is
// deliberately omitted — it is server-wide in practice and noisy in logs).
func (k Key) String() string {
	return "workload=" + k.World.Workload +
		",seed=" + strconv.FormatInt(k.World.Seed, 10) +
		",scale=" + strconv.FormatFloat(k.World.Scale, 'g', -1, 64)
}

// entry is one resident instance: the facade System and the experiments
// Lab for a key, each constructed lazily (a server used only for
// /v1/optimize never pays for a Lab and vice versa).
type entry struct {
	sys *jobench.System
	lab *experiments.Lab
}

// Pool keeps warm instances resident, keyed by (seed, scale, cache dir),
// with LRU eviction beyond a fixed capacity and single-flight
// construction: a thundering herd of cold requests for one key performs
// exactly one Open while every other request blocks for (and then shares)
// the same instance. Construction failures are not cached — the next
// request retries.
//
// All methods are safe for concurrent use.
type Pool struct {
	cap     int
	metrics *Metrics

	// openSystem and openLab build a cold instance; injectable so the pool
	// tests can count and stall constructions without generating data.
	openSystem func(Key) (*jobench.System, error)
	openLab    func(Key) (*experiments.Lab, error)

	entries *lruMap

	sysFlight parallel.Flight[Key, *jobench.System]
	labFlight parallel.Flight[Key, *experiments.Lab]
}

// NewPool builds a pool of at most capacity resident instances (minimum 1)
// whose cold constructions run through open functions derived from cfg.
func NewPool(cfg Config, metrics *Metrics) *Pool {
	if metrics == nil {
		metrics = NewMetrics()
	}
	capacity := cfg.PoolSize
	if capacity <= 0 {
		capacity = 2
	}
	return &Pool{
		cap:     capacity,
		metrics: metrics,
		openSystem: func(k Key) (*jobench.System, error) {
			return jobench.Open(jobench.Options{
				Workload: k.World.Workload,
				Scale:    k.World.Scale, Seed: k.World.Seed, Parallel: cfg.Parallel,
				CacheDir: k.CacheDir, Logf: cfg.logf(),
				FeedbackBytes: cfg.FeedbackBytes,
			})
		},
		openLab: func(k Key) (*experiments.Lab, error) {
			return experiments.NewLab(experiments.Config{
				Workload: k.World.Workload,
				Scale:    k.World.Scale, Seed: k.World.Seed, Parallel: cfg.Parallel,
				CacheDir: k.CacheDir, Logf: cfg.logf(),
			})
		},
		entries: newLRUMap(capacity, metrics),
	}
}

// System returns the resident System for key, constructing it (exactly
// once under concurrency) on a miss. ctx bounds the caller's WAIT — a
// deadline-carrying request stops waiting at its deadline — but never the
// construction itself, which runs detached so it always completes and
// populates the pool for the next request. The request that actually
// initiates a cold construction records a "system.open" span covering the
// Open (snapshot load or data generation); joiners share the instance
// without recording it.
func (p *Pool) System(ctx context.Context, key Key) (*jobench.System, error) {
	if e := p.entries.get(key); e != nil && e.sys != nil {
		p.metrics.PoolObserve(key.World.Workload, true)
		return e.sys, nil
	}
	sys, err, shared := p.sysFlight.DoContext(ctx, key, func() (*jobench.System, error) {
		// A flight that completed between our miss and entering Do already
		// populated the entry; don't rebuild.
		if e := p.entries.get(key); e != nil && e.sys != nil {
			p.metrics.PoolObserve(key.World.Workload, true)
			return e.sys, nil
		}
		// Counted here, not in the caller, so a thundering herd records one
		// miss per construction — the metric's contract — rather than one
		// per piled-up request.
		p.metrics.PoolObserve(key.World.Workload, false)
		p.metrics.WarmupsInFlight.Add(1)
		defer p.metrics.WarmupsInFlight.Add(-1)
		sp := trace.StartSpan(ctx, "system.open")
		sys, err := p.openSystem(key)
		sp.End(trace.String("key", key.String()))
		if err != nil {
			return nil, err
		}
		p.entries.set(key, func(e *entry) { e.sys = sys })
		return sys, nil
	})
	if shared && err == nil {
		// Joined another request's in-flight construction: served warm.
		p.metrics.PoolObserve(key.World.Workload, true)
	}
	return sys, err
}

// Lab returns the resident experiments Lab for key, constructing it
// (exactly once under concurrency) on a miss; ctx bounds the caller's
// wait (never the construction), as in System.
func (p *Pool) Lab(ctx context.Context, key Key) (*experiments.Lab, error) {
	if e := p.entries.get(key); e != nil && e.lab != nil {
		p.metrics.PoolObserve(key.World.Workload, true)
		return e.lab, nil
	}
	lab, err, shared := p.labFlight.DoContext(ctx, key, func() (*experiments.Lab, error) {
		if e := p.entries.get(key); e != nil && e.lab != nil {
			p.metrics.PoolObserve(key.World.Workload, true)
			return e.lab, nil
		}
		p.metrics.PoolObserve(key.World.Workload, false)
		p.metrics.WarmupsInFlight.Add(1)
		defer p.metrics.WarmupsInFlight.Add(-1)
		sp := trace.StartSpan(ctx, "lab.open")
		lab, err := p.openLab(key)
		sp.End(trace.String("key", key.String()))
		if err != nil {
			return nil, err
		}
		p.entries.set(key, func(e *entry) { e.lab = lab })
		return lab, nil
	})
	if shared && err == nil {
		p.metrics.PoolObserve(key.World.Workload, true)
	}
	return lab, err
}

// Len reports the number of resident instances.
func (p *Pool) Len() int { return p.entries.len() }

// FeedbackStats sums the plan-feedback cache counters across every resident
// System — the /metrics feedback_cache_* series.
func (p *Pool) FeedbackStats() reopt.Stats {
	var total reopt.Stats
	for _, sys := range p.entries.systems() {
		st := sys.FeedbackStats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Entries += st.Entries
		total.Bytes += st.Bytes
		total.Evictions += st.Evictions
	}
	return total
}
