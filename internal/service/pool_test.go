package service

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jobench"
	"jobench/internal/experiments"
	"jobench/internal/workload"
)

// sharedSystem is one real (tiny) System reused by every fake opener: pool
// tests exercise pooling, not Open.
var (
	sharedSysOnce sync.Once
	sharedSys     *jobench.System
)

func tinySystem(t *testing.T) *jobench.System {
	t.Helper()
	sharedSysOnce.Do(func() {
		var err error
		sharedSys, err = jobench.Open(jobench.Options{Scale: 0.02, Seed: 7})
		if err != nil {
			t.Fatalf("open tiny system: %v", err)
		}
	})
	if sharedSys == nil {
		t.Skip("tiny system failed to open in an earlier test")
	}
	return sharedSys
}

func countingPool(t *testing.T, capacity int, delay time.Duration) (*Pool, *atomic.Int64) {
	t.Helper()
	sys := tinySystem(t)
	m := NewMetrics()
	p := NewPool(Config{PoolSize: capacity}, m)
	opens := new(atomic.Int64)
	p.openSystem = func(Key) (*jobench.System, error) {
		opens.Add(1)
		time.Sleep(delay)
		return sys, nil
	}
	p.openLab = func(Key) (*experiments.Lab, error) {
		t.Fatal("lab opener must not run in these tests")
		return nil, nil
	}
	return p, opens
}

// TestPoolSingleFlight is the acceptance test for cold-start collapsing: N
// concurrent cold requests for one key perform exactly one Open.
func TestPoolSingleFlight(t *testing.T) {
	p, opens := countingPool(t, 2, 100*time.Millisecond)
	key := Key{World: workload.Key{Workload: "imdb", Seed: 7, Scale: 0.02}}

	const callers = 8
	var wg sync.WaitGroup
	systems := make([]*jobench.System, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sys, err := p.System(context.Background(), key)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			systems[i] = sys
		}(i)
	}
	wg.Wait()
	if got := opens.Load(); got != 1 {
		t.Fatalf("%d Opens for one cold key under concurrency, want exactly 1", got)
	}
	for i, sys := range systems {
		if sys != systems[0] {
			t.Fatalf("caller %d got a different instance", i)
		}
	}
	// A warm lookup is a pool hit, not another Open.
	if _, err := p.System(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	if got := opens.Load(); got != 1 {
		t.Fatalf("warm lookup re-opened (%d Opens)", got)
	}
	if hits := p.metrics.PoolHits.Load(); hits == 0 {
		t.Fatal("warm lookup did not count as a pool hit")
	}
}

// TestPoolLRUEviction pins the eviction policy: capacity is enforced and
// the least recently *used* key is the victim.
func TestPoolLRUEviction(t *testing.T) {
	p, opens := countingPool(t, 2, 0)
	a := Key{World: workload.Key{Workload: "imdb", Seed: 1, Scale: 0.02}}
	b := Key{World: workload.Key{Workload: "imdb", Seed: 2, Scale: 0.02}}
	c := Key{World: workload.Key{Workload: "imdb", Seed: 3, Scale: 0.02}}

	for _, k := range []Key{a, b} {
		if _, err := p.System(context.Background(), k); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b becomes the LRU victim, then insert c.
	if _, err := p.System(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.System(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if got := p.Len(); got != 2 {
		t.Fatalf("pool holds %d instances, capacity 2", got)
	}
	if got := p.metrics.PoolEvictions.Load(); got != 1 {
		t.Fatalf("%d evictions, want 1", got)
	}
	openedSoFar := opens.Load()
	// a must still be resident (touched), b must have been evicted.
	if _, err := p.System(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if got := opens.Load(); got != openedSoFar {
		t.Fatal("a was evicted despite being recently used")
	}
	if _, err := p.System(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	if got := opens.Load(); got != openedSoFar+1 {
		t.Fatal("b was still resident; LRU eviction picked the wrong victim")
	}
}

// TestPoolErrorNotCached proves a failed construction does not poison the
// key.
func TestPoolErrorNotCached(t *testing.T) {
	p, opens := countingPool(t, 2, 0)
	key := Key{World: workload.Key{Workload: "imdb", Seed: 9, Scale: 0.02}}
	failures := 0
	realOpen := p.openSystem
	p.openSystem = func(k Key) (*jobench.System, error) {
		if failures == 0 {
			failures++
			return nil, errBoom
		}
		return realOpen(k)
	}
	if _, err := p.System(context.Background(), key); err == nil {
		t.Fatal("first open should fail")
	}
	sys, err := p.System(context.Background(), key)
	if err != nil || sys == nil {
		t.Fatalf("retry after failure: (%v, %v)", sys, err)
	}
	if got := opens.Load(); got != 1 {
		t.Fatalf("retry performed %d real Opens, want 1", got)
	}
}

var errBoom = &poolError{"boom"}

type poolError struct{ msg string }

func (e *poolError) Error() string { return e.msg }
