// Package service is the benchmark-as-a-service layer: an HTTP/JSON server
// that keeps warm jobench.System instances resident in an LRU pool and
// serves the facade surface (optimize, execute, estimate, workload
// listing) plus every paper experiment concurrently. Cold instances are
// built under single-flight — a thundering herd of requests for one
// (seed, scale) performs exactly one Open — and deterministic experiment
// reports are memoized in a report cache. The ops surface is /healthz,
// /metrics (Prometheus text format), and graceful shutdown: cancelling the
// serve context stops the listener and propagates cancellation into
// in-flight true-cardinality and experiment work.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime/debug"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"jobench"
	"jobench/internal/deadline"
	"jobench/internal/experiments"
	"jobench/internal/fault"
	"jobench/internal/parallel"
	"jobench/internal/plan"
	"jobench/internal/trace"
	"jobench/internal/workload"
)

// Config configures a Server.
type Config struct {
	// Addr is the listen address for ListenAndServe (":8080").
	Addr string
	// DefaultWorkload, DefaultSeed and DefaultScale apply when a request
	// omits them, mirroring the CLI's -workload/-seed/-scale defaults.
	DefaultWorkload string
	DefaultSeed     int64
	DefaultScale    float64
	// Parallel sizes the worker pools of every resident instance
	// (0 = GOMAXPROCS).
	Parallel int
	// CacheDir is the shared snapshot store; it becomes part of every pool
	// key. Empty disables snapshot caching (cold opens regenerate).
	CacheDir string
	// PoolSize bounds the resident instances; the least recently used is
	// evicted beyond it (default 2).
	PoolSize int
	// ReportCapacity is the admission-control budget for concurrent
	// experiment computations, in weight units: full workload sweeps weigh
	// 2, estimation sweeps and ablations 1. A burst of distinct uncached
	// reports queues FIFO for these units instead of oversubscribing the
	// box (default 4 — at most two heavy grids at once).
	ReportCapacity int
	// ShutdownGrace bounds how long a cancelled server waits for in-flight
	// requests to notice the cancellation and flush (default 5s).
	ShutdownGrace time.Duration
	// ReplicaID labels this replica in /metrics (jobench_replica_info) so
	// scraped series from a fleet are tellable apart; empty omits the
	// metric.
	ReplicaID string
	// Peers are the base URLs of every replica in the fleet, INCLUDING
	// this one — the identical list (and order-insensitively so) that the
	// router was started with, since both sides derive report ownership
	// from the same consistent-hash ring. Empty disables peer-fill.
	Peers []string
	// SelfURL is this replica's own entry in Peers; required for peer-fill
	// (a replica must know which reports it owns itself).
	SelfURL string
	// PeerTimeout bounds one peer-fill peek before falling back to local
	// computation (default 10s).
	PeerTimeout time.Duration
	// FeedbackBytes bounds each resident instance's plan-feedback cache in
	// accounted bytes (observed cardinalities for adaptive requests);
	// non-positive selects the reopt default of 1 MiB.
	FeedbackBytes int64
	// TraceCapacity bounds the ring buffer of recently finished request
	// traces served by /v1/traces (non-positive selects
	// trace.DefaultStoreCapacity).
	TraceCapacity int
	// SlowQuery logs a span summary for every request at least this slow
	// (0 disables outlier logging).
	SlowQuery time.Duration
	// MaxQueue bounds how many report computations may wait for admission
	// units at once; a request beyond the cap is shed immediately with
	// 429 + Retry-After instead of joining an unbounded line (non-positive
	// selects the default of 16).
	MaxQueue int
	// Fault, when non-nil, wraps the handler in the chaos fault injector
	// (-fault-spec). nil — the production default — adds nothing to the
	// request path.
	Fault *fault.Injector
	// Logger receives serve-loop and snapshot diagnostics (default
	// slog.Default()). Request-scoped lines carry trace_id, workload and
	// route attrs.
	Logger *slog.Logger
}

func (c Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.Default()
}

// logf adapts the structured logger to the printf-style Logf funcs the
// snapshot store and the facade take, so their signatures don't churn.
func (c Config) logf() func(format string, args ...any) {
	lg := c.logger()
	return func(format string, args ...any) {
		lg.Info(fmt.Sprintf(format, args...))
	}
}

// Server is the benchmark service.
type Server struct {
	cfg     Config
	pool    *Pool
	metrics *Metrics
	mux     *http.ServeMux

	// baseCtx is the Serve context: the lifetime of the server itself.
	// Shared computations (report flights) run under it rather than under
	// the first requester's context, so one client's disconnect cannot
	// cancel work other waiters are sharing. Set once in Serve, before any
	// request can arrive.
	baseCtx context.Context

	reports      *reportCache
	reportFlight parallel.Flight[reportKey, string]
	admit        *admission
	peers        *peerSet
	traces       *trace.Store
}

// New builds a Server (without binding a socket).
func New(cfg Config) *Server {
	if cfg.DefaultScale <= 0 {
		cfg.DefaultScale = 1
	}
	if cfg.DefaultSeed == 0 {
		cfg.DefaultSeed = 42
	}
	if cfg.DefaultWorkload == "" {
		cfg.DefaultWorkload = workload.DefaultName
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = 5 * time.Second
	}
	if cfg.ReportCapacity <= 0 {
		cfg.ReportCapacity = 4
	}
	m := NewMetrics()
	s := &Server{
		cfg:     cfg,
		pool:    NewPool(cfg, m),
		metrics: m,
		mux:     http.NewServeMux(),
		reports: newReportCache(),
		admit:   newAdmission(int64(cfg.ReportCapacity), cfg.MaxQueue),
		peers:   newPeerSet(cfg),
		traces:  trace.NewStore(cfg.TraceCapacity),
	}
	m.admission = s.admit
	m.replicaID = cfg.ReplicaID
	m.feedbackStats = s.pool.FeedbackStats
	if cfg.Fault != nil {
		m.faultStats = cfg.Fault.Stats
	}
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("POST /v1/optimize", s.handleOptimize)
	s.route("POST /v1/execute", s.handleExecute)
	s.route("POST /v1/explain", s.handleExplain)
	s.route("POST /v1/estimate", s.handleEstimate)
	s.route("GET /v1/queries", s.handleQueries)
	s.route("GET /v1/experiment/{name}", s.handleExperiment)
	s.route("GET /v1/report-cache/{name}", s.handleReportPeek)
	s.route("GET /v1/traces", s.handleTraces)
	return s
}

// Traces exposes the server's trace ring (for tests and embedding).
func (s *Server) Traces() *trace.Store { return s.traces }

// untraced lists the routes that never open a trace: the ops surface and
// the trace endpoint itself would otherwise fill the ring with noise.
func untraced(route string) bool {
	switch route {
	case "/healthz", "/metrics", "/v1/traces":
		return true
	}
	return false
}

// Handler returns the service's HTTP handler (also useful under
// httptest). When cfg.Fault is set the mux is wrapped in the chaos
// injector — outermost, so an injected connection reset or crash hits
// even /healthz, and an injected panic (http.ErrAbortHandler) bypasses
// the per-route panic recovery exactly like a real transport failure.
func (s *Server) Handler() http.Handler { return s.cfg.Fault.Wrap(s.mux) }

// Metrics exposes the server's counters (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// route registers a handler wrapped in the metrics and tracing
// middleware. pattern is a Go 1.22 mux pattern ("METHOD /path"); its path
// part labels the metrics and the trace's route. Every traced request
// gets a trace — continuing the X-Jobench-Trace ID the router (or a
// peer) propagated, or minting a fresh one — attached to the request
// context, echoed in the response header, and added to the ring on
// completion; requests slower than cfg.SlowQuery log a span summary.
type handlerFunc func(w http.ResponseWriter, r *http.Request) (status int, err error)

func (s *Server) route(pattern string, h handlerFunc) {
	label := pattern
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		label = pattern[i+1:]
	}
	traced := !untraced(label)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var tr *trace.Trace
		if traced {
			id, ok := trace.ParseID(r.Header.Get(trace.Header))
			if !ok {
				id = trace.NewID()
			}
			tr = trace.New(id, label)
			r = r.WithContext(trace.NewContext(r.Context(), tr))
			w.Header().Set(trace.Header, id.String())
		}
		// End-to-end deadline: an X-Jobench-Deadline header (minted by the
		// router from -request-timeout, or sent by the client directly)
		// becomes the request context's deadline, which every downstream
		// stage — pool lookup, admission wait, truecard DP, reopt probes,
		// engine execution — already honors. An absolute deadline means
		// upstream queueing and retries consumed budget instead of
		// resetting it.
		if dl, ok := deadline.FromRequest(r); ok {
			ctx, cancel := context.WithDeadline(r.Context(), dl)
			defer cancel()
			r = r.WithContext(ctx)
		}
		sw := &statusWriter{ResponseWriter: w}
		status, err := s.recovered(sw, r, h, label, tr)
		if err != nil {
			writeError(sw, status, err)
		}
		s.metrics.Observe(label, status, time.Since(start))
		if tr != nil {
			d := tr.Finish()
			s.traces.Add(tr)
			if s.cfg.SlowQuery > 0 && d >= s.cfg.SlowQuery {
				s.cfg.logger().Warn("slow request",
					"trace_id", tr.ID().String(),
					"route", label,
					"duration_ms", float64(d)/float64(time.Millisecond),
					"status", status,
					"spans", spanSummary(tr))
			}
		}
	})
}

// statusWriter remembers whether the handler has started writing a
// response, so panic recovery knows whether a 500 can still be sent or
// the connection is beyond saving.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// recovered runs h with panic recovery: a handler panic becomes a 500
// (with the trace ID in the body and a logged stack) instead of tearing
// down the whole replica's connection. http.ErrAbortHandler re-panics —
// it is net/http's sanctioned "sever this connection" and must reach the
// server loop.
func (s *Server) recovered(w *statusWriter, r *http.Request, h handlerFunc, label string, tr *trace.Trace) (status int, err error) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if p == http.ErrAbortHandler {
			panic(p)
		}
		s.metrics.Panics.Add(1)
		traceID := ""
		if tr != nil {
			traceID = tr.ID().String()
		}
		s.cfg.logger().Error("handler panic recovered",
			"route", label,
			"trace_id", traceID,
			"panic", fmt.Sprint(p),
			"stack", string(debug.Stack()))
		status = http.StatusInternalServerError
		err = nil
		if !w.wrote {
			writeError(w, status, fmt.Errorf("internal error (trace %s)", traceID))
		}
	}()
	return h(w, r)
}

// spanSummary renders a trace's spans as "name=dur name=dur ..." for the
// slow-query log line.
func spanSummary(tr *trace.Trace) string {
	spans := tr.Spans()
	if len(spans) == 0 {
		return "(none)"
	}
	var b strings.Builder
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", sp.Name, sp.Dur.Round(time.Microsecond))
	}
	return b.String()
}

// ListenAndServe binds cfg.Addr and serves until ctx is cancelled, then
// shuts down gracefully: the listener closes, every in-flight request sees
// its context cancelled (requests inherit ctx), and the server waits up to
// cfg.ShutdownGrace for handlers to flush before returning.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.cfg.logf()("jobench serve: listening on %s (pool %d, cache-dir %q)",
		ln.Addr(), s.pool.cap, s.cfg.CacheDir)
	return s.Serve(ctx, ln)
}

// Serve runs the server on an existing listener; see ListenAndServe.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.baseCtx = ctx
	srv := &http.Server{
		Handler: s.Handler(),
		// Every request context derives from ctx, which is how shutdown
		// cancellation reaches in-flight truecard DPs and experiment
		// sweeps.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.cfg.logf()("jobench serve: shutting down (%v)", context.Cause(ctx))
		shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		err := srv.Shutdown(shutCtx)
		<-errc // Serve has returned http.ErrServerClosed
		return err
	}
}

// --- request plumbing -------------------------------------------------------

// serverCtx returns the server's lifetime context (Background under
// httptest, where Serve never ran).
func (s *Server) serverCtx() context.Context {
	if s.baseCtx != nil {
		return s.baseCtx
	}
	return context.Background()
}

func (s *Server) key(wl string, seed int64, scale float64) Key {
	if wl == "" {
		wl = s.cfg.DefaultWorkload
	}
	if seed == 0 {
		seed = s.cfg.DefaultSeed
	}
	// The NaN guard backs up queryWorld for any path that builds a key
	// from a float it did not parse itself (JSON cannot encode NaN, but
	// the key must be safe regardless of who calls this).
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		scale = s.cfg.DefaultScale
	}
	return Key{World: workload.NewKey(wl, seed, scale), CacheDir: s.cfg.CacheDir}
}

// system resolves the resident System for a request's world under a
// "pool.lookup" span (covering both the single-flight wait and, for the
// initiating request, the cold open inside it).
func (s *Server) system(ctx context.Context, wl string, seed int64, scale float64) (*jobench.System, error) {
	k := s.key(wl, seed, scale)
	sp := trace.StartSpan(ctx, "pool.lookup")
	sys, err := s.pool.System(ctx, k)
	sp.End(trace.String("key", k.String()))
	return sys, err
}

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// statusOf maps a pipeline error onto an HTTP status: unknown names are
// client errors (404 for queries/experiments, 400 for knob vocabulary),
// an exceeded deadline is 504 (the end-to-end deadline ran out mid-work —
// the router reports its own expiry the same way), cancellation means the
// server is going away or the client left (503), a shed admission queue
// is 429, anything else is a 500.
func statusOf(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, errShed):
		return http.StatusTooManyRequests
	case strings.Contains(err.Error(), "unknown query"),
		strings.Contains(err.Error(), "unknown experiment"):
		return http.StatusNotFound
	case strings.Contains(err.Error(), "unknown"):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// planOptions translates a PlanRequest's knob strings (CLI vocabulary)
// into jobench.PlanOptions.
func planOptions(req PlanRequest) (jobench.PlanOptions, error) {
	disableNLJ := true
	if req.DisableNestedLoops != nil {
		disableNLJ = *req.DisableNestedLoops
	}
	opts, err := jobench.MakePlanOptions(req.Estimator, req.CostModel, req.Indexes,
		disableNLJ, req.Shape, req.Algorithm)
	if err != nil {
		return opts, err
	}
	opts.Seed = req.PlanSeed
	return opts, nil
}

// --- handlers ---------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) (int, error) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	return http.StatusOK, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) (int, error) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.metrics.Render()))
	return http.StatusOK, nil
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) (int, error) {
	var req PlanRequest
	if err := decodeJSON(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	opts, err := planOptions(req)
	if err != nil {
		return http.StatusBadRequest, err
	}
	sys, err := s.system(r.Context(), req.Workload, req.Seed, req.Scale)
	if err != nil {
		return statusOf(err), err
	}
	if req.Adaptive {
		ap, err := sys.OptimizeAdaptiveContext(r.Context(), req.Query, opts)
		if err != nil {
			return statusOf(err), err
		}
		writeJSON(w, http.StatusOK, OptimizeResponse{
			Workload: sys.Workload(), Query: req.Query, Plan: ap.Plan, Cost: ap.Cost,
			FeedbackHit: &ap.FeedbackHit, Pinned: &ap.Pinned,
		})
		return http.StatusOK, nil
	}
	// The request context flows into the facade so a disconnect or
	// shutdown aborts an on-demand truth computation (estimator "true").
	plan, cost, err := sys.OptimizeContext(r.Context(), req.Query, opts)
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusOK, OptimizeResponse{
		Workload: sys.Workload(), Query: req.Query, Plan: plan, Cost: cost,
	})
	return http.StatusOK, nil
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) (int, error) {
	var req ExecuteRequest
	if err := decodeJSON(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	opts, err := planOptions(req.PlanRequest)
	if err != nil {
		return http.StatusBadRequest, err
	}
	rehash := true
	if req.Rehash != nil {
		rehash = *req.Rehash
	}
	if req.Explain != "" && req.Explain != "analyze" {
		return http.StatusBadRequest, fmt.Errorf("unknown explain mode %q (want \"analyze\")", req.Explain)
	}
	if req.Explain == "analyze" && req.Adaptive {
		return http.StatusBadRequest, errors.New("explain=analyze cannot be combined with adaptive")
	}
	sys, err := s.system(r.Context(), req.Workload, req.Seed, req.Scale)
	if err != nil {
		return statusOf(err), err
	}
	if req.Explain == "analyze" {
		res, err := sys.ExplainAnalyzeContext(r.Context(), req.Query, jobench.RunOptions{
			PlanOptions: opts, Rehash: rehash, WorkLimit: req.WorkLimit,
		})
		if err != nil {
			return statusOf(err), err
		}
		writeJSON(w, http.StatusOK, ExecuteResponse{
			Workload: sys.Workload(), Query: req.Query, Rows: res.Rows, Work: res.Work,
			TimedOut: res.TimedOut,
			Analyze:  res.Text, Nodes: explainNodes(res.Nodes),
		})
		return http.StatusOK, nil
	}
	if req.Adaptive {
		res, err := sys.ExecuteAdaptiveContext(r.Context(), req.Query, jobench.AdaptiveOptions{
			RunOptions:    jobench.RunOptions{PlanOptions: opts, Rehash: rehash, WorkLimit: req.WorkLimit},
			QErrThreshold: req.QErrThreshold,
			MaxReplans:    req.MaxReplans,
		})
		if err != nil {
			return statusOf(err), err
		}
		s.metrics.Replans.Add(int64(res.Replans))
		writeJSON(w, http.StatusOK, ExecuteResponse{
			Workload: sys.Workload(), Query: req.Query, Rows: res.Rows, Work: res.Work,
			TimedOut: res.TimedOut, Plan: res.Plan,
			Replans: &res.Replans, FeedbackHit: &res.FeedbackHit, Pinned: &res.Pinned,
		})
		return http.StatusOK, nil
	}
	res, err := sys.ExecuteContext(r.Context(), req.Query, jobench.RunOptions{
		PlanOptions: opts, Rehash: rehash, WorkLimit: req.WorkLimit,
	})
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusOK, ExecuteResponse{
		Workload: sys.Workload(), Query: req.Query, Rows: res.Rows, Work: res.Work,
		TimedOut: res.TimedOut, Plan: res.Plan,
	})
	return http.StatusOK, nil
}

// explainNodes maps the facade's analyzed operators onto the wire type.
func explainNodes(nodes []plan.AnalyzedNode) []ExplainNode {
	out := make([]ExplainNode, len(nodes))
	for i, n := range nodes {
		out[i] = ExplainNode{
			ID: n.ID, Depth: n.Depth, Op: n.Op, Cond: n.Cond,
			EstRows: n.EstRows, ActualRows: n.ActualRows, QError: n.QError,
			WorkUnits: n.WorkUnits,
			WallMS:    float64(n.WallNanos) / float64(time.Millisecond),
		}
	}
	return out
}

// handleExplain is EXPLAIN ANALYZE as its own endpoint: execute with
// per-operator stats collection and return estimates vs actuals per node.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) (int, error) {
	var req ExecuteRequest
	if err := decodeJSON(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	if req.Adaptive {
		return http.StatusBadRequest, errors.New("explain analyze cannot be combined with adaptive")
	}
	if req.Explain != "" && req.Explain != "analyze" {
		return http.StatusBadRequest, fmt.Errorf("unknown explain mode %q (want \"analyze\")", req.Explain)
	}
	opts, err := planOptions(req.PlanRequest)
	if err != nil {
		return http.StatusBadRequest, err
	}
	rehash := true
	if req.Rehash != nil {
		rehash = *req.Rehash
	}
	sys, err := s.system(r.Context(), req.Workload, req.Seed, req.Scale)
	if err != nil {
		return statusOf(err), err
	}
	res, err := sys.ExplainAnalyzeContext(r.Context(), req.Query, jobench.RunOptions{
		PlanOptions: opts, Rehash: rehash, WorkLimit: req.WorkLimit,
	})
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusOK, ExplainResponse{
		Workload: sys.Workload(), Query: req.Query,
		Text: res.Text, Nodes: explainNodes(res.Nodes),
		Rows: res.Rows, Work: res.Work, TimedOut: res.TimedOut,
	})
	return http.StatusOK, nil
}

// handleTraces serves the ring of recently finished request traces,
// newest first; ?min_ms=N keeps only slower traces and ?route=/v1/execute
// filters by route label.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) (int, error) {
	q := r.URL.Query()
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 || math.IsNaN(ms) || math.IsInf(ms, 0) {
			return http.StatusBadRequest, fmt.Errorf("invalid min_ms %q", v)
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	recs := s.traces.Snapshot(minDur, q.Get("route"))
	writeJSON(w, http.StatusOK, TracesResponse{Count: len(recs), Traces: recs})
	return http.StatusOK, nil
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) (int, error) {
	var req EstimateRequest
	if err := decodeJSON(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	sys, err := s.system(r.Context(), req.Workload, req.Seed, req.Scale)
	if err != nil {
		return statusOf(err), err
	}
	estimator := req.Estimator
	if estimator == "" {
		estimator = jobench.EstPostgres
	}
	card, err := sys.EstimateCardinalityContext(r.Context(), req.Query, estimator)
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Workload: sys.Workload(), Query: req.Query, Estimator: estimator, Cardinality: card,
	})
	return http.StatusOK, nil
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) (int, error) {
	wl, seed, scale, err := queryWorld(r)
	if err != nil {
		return http.StatusBadRequest, err
	}
	sys, err := s.system(r.Context(), wl, seed, scale)
	if err != nil {
		return statusOf(err), err
	}
	ids := sys.QueryIDs()
	writeJSON(w, http.StatusOK, QueriesResponse{
		Workload: sys.Workload(), Count: len(ids), Queries: ids,
	})
	return http.StatusOK, nil
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) (int, error) {
	name := r.PathValue("name")
	// Validate the name before anything expensive: a miss must cost a
	// slice scan, not the construction of an entire Lab.
	if !slices.Contains(experiments.Names(), name) {
		return http.StatusNotFound, fmt.Errorf("unknown experiment %q (%s)",
			name, strings.Join(experiments.Names(), "|"))
	}
	wl, seed, scale, err := queryWorld(r)
	if err != nil {
		return http.StatusBadRequest, err
	}
	samples := 0
	if v := r.URL.Query().Get("samples"); v != "" {
		samples, err = strconv.Atoi(v)
		if err != nil || samples < 0 {
			return http.StatusBadRequest, fmt.Errorf("invalid samples %q", v)
		}
	}
	key := s.key(wl, seed, scale)
	text, err := s.report(r.Context(), reportKey{key: key, name: name, samples: normalizeSamples(name, samples)})
	if err != nil {
		if errors.Is(err, errShed) {
			// The queue already holds several service times' worth of
			// work; a fixed coarse hint beats pretending to know better.
			w.Header().Set("Retry-After", "5")
			trace.Annotate(r.Context(), "shed")
		}
		return statusOf(err), err
	}
	// format=json wraps the report with the resolved world so clients (and
	// the smoke tests) can assert which workload produced it; the default
	// stays the raw text rendering, byte-identical to the CLI.
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, ExperimentResponse{
			Experiment: name,
			Workload:   key.World.Workload,
			Seed:       key.World.Seed,
			Scale:      key.World.Scale,
			Report:     text,
		})
		return http.StatusOK, nil
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(text))
	return http.StatusOK, nil
}

// normalizeSamples canonicalizes the samples parameter before it becomes
// part of a report cache key: only fig9 consumes it, and fig9 treats 0 as
// its 10000 default — without this, distinct samples values would
// redundantly recompute (and separately cache) byte-identical reports.
// The peer-fill peek endpoint applies the same normalization, so a key
// always means the same report on every replica.
func normalizeSamples(name string, samples int) int {
	if name != "fig9" {
		return 0
	}
	if samples == 0 {
		return 10000
	}
	return samples
}

func queryWorld(r *http.Request) (wl string, seed int64, scale float64, err error) {
	q := r.URL.Query()
	wl = q.Get("workload")
	if v := q.Get("seed"); v != "" {
		seed, err = strconv.ParseInt(v, 10, 64)
		if err != nil {
			return "", 0, 0, fmt.Errorf("invalid seed %q", v)
		}
	}
	if v := q.Get("scale"); v != "" {
		scale, err = strconv.ParseFloat(v, 64)
		// NaN and ±Inf parse successfully but must never become part of a
		// pool key: NaN != NaN makes such a key undeletable from every map
		// it enters (the flight group, the LRU), a permanent leak.
		if err != nil || math.IsNaN(scale) || math.IsInf(scale, 0) {
			return "", 0, 0, fmt.Errorf("invalid scale %q", v)
		}
	}
	return wl, seed, scale, nil
}

// --- report cache -----------------------------------------------------------

// reportKey addresses one memoized experiment report. Everything an
// experiment's output depends on is in here: the world (pool key), the
// experiment name, and its parameters — the drivers are deterministic in
// exactly these inputs (reports are byte-identical at any worker count by
// the runner's order-preserving contract).
type reportKey struct {
	key     Key
	name    string
	samples int
}

// reportCacheCap bounds the memoized reports. Keys embed client-supplied
// (seed, scale), so without a cap a client iterating seeds would grow the
// cache without limit; beyond the cap the oldest insertion is dropped
// (recomputable at the cost of one sweep).
const reportCacheCap = 128

type reportCache struct {
	mu    sync.Mutex
	m     map[reportKey]string
	order []reportKey // insertion order, oldest first
}

func newReportCache() *reportCache {
	return &reportCache{m: make(map[reportKey]string)}
}

func (c *reportCache) get(k reportKey) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	text, ok := c.m[k]
	return text, ok
}

func (c *reportCache) put(k reportKey, text string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[k]; !ok {
		c.order = append(c.order, k)
	}
	c.m[k] = text
	for len(c.m) > reportCacheCap && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.m, victim)
	}
}

// report returns the memoized rendering of one experiment, computing it
// under single-flight on a miss. The computation runs detached under the
// server's lifetime context, not the triggering request's: concurrent
// waiters share the flight, so one client's disconnect or expired
// deadline must not cancel work the others (and the cache) still want —
// while shutdown still aborts it. The requester's own wait IS bounded by
// its context (DoContext): a deadline-carrying request gets its 504 on
// time even though the sweep keeps running for the cache. The initiator's
// trace still records the peer-fill, admission-wait and experiment spans
// — trace recording is straggler-safe by design.
//
// Only successful renders are cached, so a cancelled or failed run never
// poisons the cache.
func (s *Server) report(ctx context.Context, k reportKey) (string, error) {
	if text, ok := s.reports.get(k); ok {
		s.metrics.ReportObserve(k.key.World.Workload, true)
		return text, nil
	}
	s.metrics.ReportObserve(k.key.World.Workload, false)
	// The computation context: server lifetime for cancellation, the
	// requester's trace for observability.
	cctx := s.serverCtx()
	if tr := trace.FromContext(ctx); tr != nil {
		cctx = trace.NewContext(cctx, tr)
	}
	text, err, _ := s.reportFlight.DoContext(ctx, k, func() (string, error) {
		if text, ok := s.reports.get(k); ok {
			return text, nil
		}
		// Peer-fill: if another replica owns this report's world on the
		// fleet's hash ring, it has probably rendered the report already —
		// one cheap peek beats recomputing a whole sweep. Any failure falls
		// through to the local computation.
		if text, ok := s.peerFill(cctx, k); ok {
			s.reports.put(k, text)
			return text, nil
		}
		// Admission control: only the goroutine that actually computes
		// acquires (cache hits and flight waiters never queue), under the
		// server lifetime context so shutdown unblocks the queue. A full
		// waiter queue sheds immediately (errShed → 429) instead of
		// joining an unbounded line.
		weight := experimentWeight(k.name)
		asp := trace.StartSpan(cctx, "admission.wait")
		err := s.admit.acquire(s.serverCtx(), weight)
		asp.End(trace.Int64("weight", int64(weight)))
		if err != nil {
			return "", err
		}
		defer s.admit.release(weight)
		lab, err := s.pool.Lab(cctx, k.key)
		if err != nil {
			return "", err
		}
		esp := trace.StartSpan(cctx, "experiment.run")
		text, err := experiments.RunExperiment(s.serverCtx(), lab, k.name, experiments.Params{Samples: k.samples})
		esp.End(trace.String("experiment", k.name))
		if err != nil {
			return "", err
		}
		s.reports.put(k, text)
		return text, nil
	})
	return text, err
}
