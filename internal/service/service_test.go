package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"jobench"
	"jobench/internal/deadline"
	"jobench/internal/experiments"
	"jobench/internal/fault"
	"jobench/internal/trace"
)

// discardLogger silences service logs in tests.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// One shared test server (and its pooled instances) across every test in
// the file: the world is deterministic, so sharing costs nothing and saves
// repeated Opens.
var (
	testOnce sync.Once
	testSrv  *Server
	testHTTP *httptest.Server
)

const (
	testScale = 0.05
	testSeed  = 7
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	testOnce.Do(func() {
		testSrv = New(Config{
			DefaultSeed:  testSeed,
			DefaultScale: testScale,
			PoolSize:     2,
			Logger:       discardLogger(),
		})
		testHTTP = httptest.NewServer(testSrv.Handler())
	})
	return testSrv, testHTTP
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// referenceSystem opens the same world outside the service for comparison.
var (
	refOnce sync.Once
	refSys  *jobench.System
)

func referenceSystem(t *testing.T) *jobench.System {
	t.Helper()
	refOnce.Do(func() {
		var err error
		refSys, err = jobench.Open(jobench.Options{Scale: testScale, Seed: testSeed})
		if err != nil {
			t.Fatalf("reference open: %v", err)
		}
	})
	if refSys == nil {
		t.Skip("reference system failed to open in an earlier test")
	}
	return refSys
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var v map[string]string
	if err := json.Unmarshal(body, &v); err != nil || v["status"] != "ok" {
		t.Fatalf("body %q (%v)", body, err)
	}
}

func TestQueries(t *testing.T) {
	_, ts := testServer(t)
	resp, body := getBody(t, ts.URL+"/v1/queries")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v QueriesResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Count != 113 || len(v.Queries) != 113 || v.Queries[0] != "1a" {
		t.Fatalf("got %d queries, first %q", v.Count, v.Queries[0])
	}
}

func TestOptimizeMatchesFacade(t *testing.T) {
	_, ts := testServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/optimize", PlanRequest{Query: "13d"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v OptimizeResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	sys := referenceSystem(t)
	wantPlan, wantCost, err := sys.Optimize("13d", jobench.PlanOptions{
		Indexes: jobench.PKFK, DisableNestedLoops: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Plan != wantPlan {
		t.Errorf("service plan differs from facade:\n--- service ---\n%s\n--- facade ---\n%s", v.Plan, wantPlan)
	}
	if v.Cost != wantCost {
		t.Errorf("service cost %v, facade %v", v.Cost, wantCost)
	}
}

func TestExecuteAndEstimate(t *testing.T) {
	_, ts := testServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/execute", ExecuteRequest{PlanRequest: PlanRequest{Query: "1a"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute status %d: %s", resp.StatusCode, body)
	}
	var ex ExecuteResponse
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	sys := referenceSystem(t)
	want, err := sys.Execute("1a", jobench.RunOptions{
		PlanOptions: jobench.PlanOptions{Indexes: jobench.PKFK, DisableNestedLoops: true},
		Rehash:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Rows != want.Rows || ex.Work != want.Work {
		t.Errorf("service execute (%d rows, %d work), facade (%d rows, %d work)",
			ex.Rows, ex.Work, want.Rows, want.Work)
	}

	resp, body = postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Query: "1a", Estimator: "postgres"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status %d: %s", resp.StatusCode, body)
	}
	var est EstimateResponse
	if err := json.Unmarshal(body, &est); err != nil {
		t.Fatal(err)
	}
	wantCard, err := sys.EstimateCardinality("1a", jobench.EstPostgres)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cardinality != wantCard {
		t.Errorf("service estimate %v, facade %v", est.Cardinality, wantCard)
	}
}

func TestErrorMapping(t *testing.T) {
	_, ts := testServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/optimize", PlanRequest{Query: "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown query: status %d: %s", resp.StatusCode, body)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("unknown query error body %q", body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/optimize", PlanRequest{Query: "1a", Indexes: "btree"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad knob: status %d: %s", resp.StatusCode, body)
	}
	resp, body = getBody(t, ts.URL+"/v1/experiment/fig99")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment: status %d: %s", resp.StatusCode, body)
	}
	// NaN parses as a float but must be rejected before it can become an
	// (undeletable) pool key.
	for _, bad := range []string{"NaN", "Inf", "-Inf"} {
		resp, body = getBody(t, ts.URL+"/v1/queries?scale="+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("scale=%s: status %d: %s", bad, resp.StatusCode, body)
		}
	}
}

// TestDeadlineHeaderYields504: a request arriving with an already-expired
// X-Jobench-Deadline gets a prompt 504, whether the work would have been a
// pool wait or an engine execution.
func TestDeadlineHeaderYields504(t *testing.T) {
	_, ts := testServer(t)
	body, err := json.Marshal(ExecuteRequest{PlanRequest: PlanRequest{Query: "13d"}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/execute", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	deadline.Set(req.Header, time.Now().Add(-time.Second))
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("expired deadline took %v to fail", elapsed)
	}
	// A comfortably future deadline changes nothing.
	req, err = http.NewRequest(http.MethodPost, ts.URL+"/v1/execute", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	deadline.Set(req.Header, time.Now().Add(10*time.Minute))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("future deadline: status = %d, want 200", resp.StatusCode)
	}
}

// TestPanicRecoveryMiddleware: a handler panic becomes a 500 carrying the
// trace ID — the replica stays up — and is counted in /metrics.
func TestPanicRecoveryMiddleware(t *testing.T) {
	srv := New(Config{DefaultScale: testScale, Logger: discardLogger()})
	srv.route("GET /v1/panic-test", func(w http.ResponseWriter, r *http.Request) (int, error) {
		panic("boom")
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := getBody(t, ts.URL+"/v1/panic-test")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "internal error") {
		t.Fatalf("body = %q (%v)", body, err)
	}
	traceID := resp.Header.Get(trace.Header)
	if traceID == "" || !strings.Contains(e.Error, traceID) {
		t.Fatalf("500 body %q does not carry trace ID %q", e.Error, traceID)
	}
	if got := srv.Metrics().Panics.Load(); got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "jobench_panics_total 1") {
		t.Fatal("/metrics missing jobench_panics_total 1")
	}
	// The server must still answer requests after the panic.
	resp, _ = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %d", resp.StatusCode)
	}
}

// TestFaultInjectorWiring: a Config.Fault injector fires on matched routes
// (tagged responses) and surfaces its counters in /metrics; /healthz stays
// clean under a /v1-scoped rule.
func TestFaultInjectorWiring(t *testing.T) {
	inj := fault.New(&fault.Spec{Seed: 1, Rules: []fault.Rule{{Route: "/v1/queries", ErrorRate: 1}}})
	srv := New(Config{DefaultScale: testScale, Fault: inj, Logger: discardLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := getBody(t, ts.URL+"/v1/queries")
	if resp.StatusCode != http.StatusInternalServerError || resp.Header.Get(fault.Header) != "injected" {
		t.Fatalf("injected error: status %d, header %q", resp.StatusCode, resp.Header.Get(fault.Header))
	}
	resp, _ = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), `jobench_fault_injected_total{kind="error"} 1`) {
		t.Fatalf("/metrics missing fault counter:\n%s", metrics)
	}
}

// TestExperimentByteIdenticalAndCached is the acceptance test for the
// experiment surface: /v1/experiment/table1 renders byte-identically to
// the CLI path (both go through experiments.RunExperiment, compared here
// against a directly driven Lab), and the second request is served from
// the report cache.
func TestExperimentByteIdenticalAndCached(t *testing.T) {
	if testing.Short() {
		t.Skip("computes truth for the full workload")
	}
	srv, ts := testServer(t)
	resp, body := getBody(t, ts.URL+"/v1/experiment/table1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	lab, err := experiments.NewLab(experiments.Config{Scale: testScale, Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.RunExperiment(context.Background(), lab, "table1", experiments.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != want {
		t.Errorf("service report differs from CLI rendering:\n--- service ---\n%s\n--- cli ---\n%s", body, want)
	}

	hitsBefore := srv.Metrics().ReportHits.Load()
	resp2, body2 := getBody(t, ts.URL+"/v1/experiment/table1")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request status %d", resp2.StatusCode)
	}
	if string(body2) != string(body) {
		t.Error("cached report differs from the first rendering")
	}
	if srv.Metrics().ReportHits.Load() != hitsBefore+1 {
		t.Error("second request did not hit the report cache")
	}
	// Exactly one computation went through admission control (the cached
	// second request never queued), and it released its units.
	if waiting, inUse, admitted, _ := srv.admit.stats(); waiting != 0 || inUse != 0 || admitted != 1 {
		t.Errorf("admission stats = (%d, %d, %d), want (0, 0, 1)", waiting, inUse, admitted)
	}
}

// TestConcurrentMixedRequests hammers the HTTP surface with mixed
// optimize/execute/estimate/queries traffic; under -race this extends the
// facade's concurrency contract through the full service stack.
func TestConcurrentMixedRequests(t *testing.T) {
	_, ts := testServer(t)
	queries := []string{"1a", "6a", "17e"}
	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qid := queries[w%len(queries)]
			var resp *http.Response
			var body []byte
			switch w % 4 {
			case 0:
				resp, body = postJSON(t, ts.URL+"/v1/optimize", PlanRequest{Query: qid})
			case 1:
				resp, body = postJSON(t, ts.URL+"/v1/execute", ExecuteRequest{PlanRequest: PlanRequest{Query: qid}})
			case 2:
				resp, body = postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Query: qid})
			case 3:
				resp, body = getBody(t, ts.URL+"/v1/queries")
			}
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("worker %d: status %d: %s", w, resp.StatusCode, body)
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t)
	// Generate at least one observation first.
	getBody(t, ts.URL+"/healthz")
	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"jobench_requests_total{route=\"/healthz\",code=\"200\"}",
		"jobench_request_seconds_total",
		"jobench_pool_hits_total",
		"jobench_pool_misses_total",
		"jobench_pool_warmups_inflight",
		"jobench_report_cache_hits_total",
		"jobench_report_admission_waiting",
		"jobench_report_admission_in_use",
		"jobench_report_admission_admitted_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, body)
		}
	}
}

// TestServeGracefulShutdown proves cancelling the serve context stops the
// server promptly and cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	srv := New(Config{
		DefaultSeed: testSeed, DefaultScale: testScale,
		ShutdownGrace: 2 * time.Second,
		Logger:        discardLogger(),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return within 5s of cancellation")
	}
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestAdaptiveFeedbackRoundTrip is the acceptance test for the adaptive
// surface: an adaptive execution records observed cardinalities, so the
// repeat /v1/optimize for the same query is a feedback-cache hit that skips
// the misestimate — and the /metrics exposition reflects all of it.
func TestAdaptiveFeedbackRoundTrip(t *testing.T) {
	_, ts := testServer(t)
	const qid = "16b" // not touched adaptively by any other test

	// Cold adaptive optimize: nothing observed yet.
	resp, body := postJSON(t, ts.URL+"/v1/optimize", PlanRequest{Query: qid, Adaptive: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold optimize status %d: %s", resp.StatusCode, body)
	}
	var cold OptimizeResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.FeedbackHit == nil || cold.Pinned == nil {
		t.Fatal("adaptive optimize omitted feedback fields")
	}
	if *cold.FeedbackHit || *cold.Pinned != 0 {
		t.Fatalf("cold optimize reported a feedback hit: %s", body)
	}

	// Adaptive execution observes intermediates and fills the cache.
	resp, body = postJSON(t, ts.URL+"/v1/execute", ExecuteRequest{PlanRequest: PlanRequest{Query: qid, Adaptive: true}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adaptive execute status %d: %s", resp.StatusCode, body)
	}
	var ex ExecuteResponse
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Replans == nil || ex.FeedbackHit == nil || ex.Pinned == nil {
		t.Fatalf("adaptive execute omitted adaptive fields: %s", body)
	}
	if ex.Rows <= 0 {
		t.Fatalf("adaptive execute returned %d rows", ex.Rows)
	}

	// Adaptive and plain execution must agree on the result.
	resp, body = postJSON(t, ts.URL+"/v1/execute", ExecuteRequest{PlanRequest: PlanRequest{Query: qid}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain execute status %d: %s", resp.StatusCode, body)
	}
	var plain ExecuteResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Rows != ex.Rows {
		t.Errorf("adaptive execute %d rows, plain %d", ex.Rows, plain.Rows)
	}
	if plain.Replans != nil || plain.FeedbackHit != nil {
		t.Errorf("non-adaptive execute leaked adaptive fields: %s", body)
	}

	// Warm adaptive optimize: the cache now holds this fingerprint.
	resp, body = postJSON(t, ts.URL+"/v1/optimize", PlanRequest{Query: qid, Adaptive: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm optimize status %d: %s", resp.StatusCode, body)
	}
	var warm OptimizeResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.FeedbackHit == nil || !*warm.FeedbackHit {
		t.Fatalf("repeat adaptive optimize missed the feedback cache: %s", body)
	}
	if warm.Pinned == nil || *warm.Pinned == 0 {
		t.Fatalf("warm optimize pinned nothing: %s", body)
	}

	// The exposition carries the feedback-cache and replan counters.
	resp, body = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, name := range []string{
		"feedback_cache_hits_total", "feedback_cache_misses_total",
		"feedback_cache_evictions_total", "feedback_cache_entries",
		"feedback_cache_bytes", "replans_total",
	} {
		if !strings.Contains(text, "jobench_"+name) {
			t.Errorf("metrics exposition missing jobench_%s", name)
		}
	}
	if !strings.Contains(text, "jobench_feedback_cache_hits_total 1") {
		t.Errorf("feedback hit not counted:\n%s", text)
	}
}

// TestTraceMiddleware: traced routes echo X-Jobench-Trace (minting an ID
// when the caller sent none, continuing it otherwise), finished traces
// land in /v1/traces with the request-path spans, and the ops surface
// stays out of the ring.
func TestTraceMiddleware(t *testing.T) {
	srv, ts := testServer(t)

	// Caller-supplied ID: continued, recorded, and carrying spans.
	const want = "0000feedfacebeef"
	data, _ := json.Marshal(map[string]any{"query": "1a"})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.Header, want)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(trace.Header); got != want {
		t.Fatalf("trace header %q, want %q", got, want)
	}
	var rec *trace.Record
	for _, r := range srv.Traces().Snapshot(0, "/v1/optimize") {
		if r.TraceID == want {
			rec = &r
			break
		}
	}
	if rec == nil {
		t.Fatalf("trace %s not in /v1/traces ring", want)
	}
	spans := make(map[string]bool)
	for _, sp := range rec.Spans {
		spans[sp.Name] = true
	}
	for _, name := range []string{"pool.lookup", "optimize"} {
		if !spans[name] {
			t.Errorf("trace lacks span %q (has %v)", name, rec.Spans)
		}
	}

	// No caller ID: the middleware mints a valid one.
	resp, body := postJSON(t, ts.URL+"/v1/optimize", map[string]any{"query": "1a"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if _, ok := trace.ParseID(resp.Header.Get(trace.Header)); !ok {
		t.Fatalf("minted trace header %q invalid", resp.Header.Get(trace.Header))
	}

	// The trace endpoint itself serves the ring and is untraced.
	resp, body = getBody(t, ts.URL+"/v1/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/traces status %d", resp.StatusCode)
	}
	var tr TracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Count == 0 || len(tr.Traces) != tr.Count {
		t.Fatalf("traces response %d/%d", tr.Count, len(tr.Traces))
	}
	for _, r := range tr.Traces {
		if untraced(r.Route) {
			t.Fatalf("untraced route %q found in the ring", r.Route)
		}
	}

	// min_ms filtering: an impossible threshold yields nothing.
	resp, body = getBody(t, ts.URL+"/v1/traces?min_ms=3600000")
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || tr.Count != 0 {
		t.Fatalf("min_ms filter returned %d traces", tr.Count)
	}
}

// TestExplainEndpoint: /v1/explain executes with stats collection; the
// per-node actuals are internally consistent (root actual == executed
// rows) and the rendering shows estimates vs actuals.
func TestExplainEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/explain", map[string]any{"query": "1a"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ExplainResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Nodes) == 0 {
		t.Fatal("no analyzed nodes")
	}
	if out.Nodes[0].ID != 0 || out.Nodes[0].ActualRows != out.Rows {
		t.Fatalf("root node %+v disagrees with executed rows %d", out.Nodes[0], out.Rows)
	}
	for _, n := range out.Nodes {
		if n.QError < 1 {
			t.Errorf("node %d: q-error %g below 1", n.ID, n.QError)
		}
	}
	for _, wantStr := range []string{"est", "actual", "q-err"} {
		if !strings.Contains(out.Text, wantStr) {
			t.Errorf("text missing %q:\n%s", wantStr, out.Text)
		}
	}

	// Adaptive + explain is a contradiction: 400.
	resp, _ = postJSON(t, ts.URL+"/v1/explain", map[string]any{"query": "1a", "adaptive": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("explain+adaptive status %d, want 400", resp.StatusCode)
	}

	// The same instrumented run is reachable via the execute knob.
	resp, body = postJSON(t, ts.URL+"/v1/execute", map[string]any{"query": "1a", "explain": "analyze"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute explain=analyze status %d: %s", resp.StatusCode, body)
	}
	var eres ExecuteResponse
	if err := json.Unmarshal(body, &eres); err != nil {
		t.Fatal(err)
	}
	if eres.Analyze == "" || len(eres.Nodes) == 0 {
		t.Fatalf("execute explain=analyze returned no analyze fields: %s", body)
	}
	if eres.Nodes[0].ActualRows != out.Nodes[0].ActualRows {
		t.Fatalf("execute/explain actuals disagree: %d vs %d",
			eres.Nodes[0].ActualRows, out.Nodes[0].ActualRows)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/execute", map[string]any{"query": "1a", "explain": "verbose"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown explain mode status %d, want 400", resp.StatusCode)
	}
}
