package snapshot

import (
	"context"
	"fmt"

	"jobench/internal/parallel"
	"jobench/internal/storage"
)

// EncodeDatabase serializes a database, fanning the per-table column
// encoding out across the worker pool (workers follows the
// parallel.RunCells contract: <=0 means GOMAXPROCS).
func EncodeDatabase(db *storage.Database, fingerprint string, workers int) ([]byte, error) {
	names := db.TableNames()
	blobs, err := parallel.RunCells(context.Background(), workers, names,
		func(_ context.Context, name string) ([]byte, error) {
			return encodeTable(db.Table(name)), nil
		})
	if err != nil {
		return nil, err
	}
	var e enc
	e.u32(uint32(len(names)))
	for _, b := range blobs {
		e.bytes(b)
	}
	return frame(kindDatabase, fingerprint, e.b), nil
}

func encodeTable(t *storage.Table) []byte {
	var e enc
	e.str(t.Name)
	e.u32(uint32(len(t.Cols)))
	for _, c := range t.Cols {
		e.str(c.Name)
		e.u8(byte(c.Kind))
		e.i64s(c.Ints)
		e.u32(uint32(len(c.Dict)))
		for _, s := range c.Dict {
			e.str(s)
		}
		if nulls := c.NullMask(); nulls == nil {
			e.u8(0)
		} else {
			e.u8(1)
			e.bools(nulls)
		}
	}
	return e.b
}

// DecodeDatabase rebuilds a database from EncodeDatabase's output,
// validating every structural invariant; it returns an error (never
// panics) on truncated, corrupted, version-bumped, or otherwise
// inconsistent input. Table decoding fans out across the worker pool.
func DecodeDatabase(data []byte, fingerprint string, workers int) (*storage.Database, error) {
	payload, err := unframe(data, kindDatabase, fingerprint)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	n := d.u32()
	if d.err == nil && uint64(n) > uint64(len(payload)) {
		d.fail("table count %d exceeds payload size", n)
	}
	blobs := make([][]byte, 0, n)
	for i := 0; i < int(n) && d.err == nil; i++ {
		blobs = append(blobs, d.bytes())
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	tables, err := parallel.RunCells(context.Background(), workers, blobs,
		func(_ context.Context, blob []byte) (*storage.Table, error) {
			return decodeTable(blob)
		})
	if err != nil {
		return nil, err
	}
	db := storage.NewDatabase()
	for _, t := range tables {
		if db.Table(t.Name) != nil {
			return nil, fmt.Errorf("snapshot: duplicate table %q", t.Name)
		}
		db.Add(t)
	}
	if err := db.Check(); err != nil {
		return nil, fmt.Errorf("snapshot: decoded database invalid: %w", err)
	}
	return db, nil
}

func decodeTable(blob []byte) (*storage.Table, error) {
	d := &dec{b: blob}
	name := d.str()
	nCols := d.u32()
	if d.err == nil && uint64(nCols) > uint64(len(blob)) {
		d.fail("column count %d exceeds table blob size", nCols)
	}
	cols := make([]*storage.Column, 0, nCols)
	seen := make(map[string]bool, nCols)
	for i := 0; i < int(nCols) && d.err == nil; i++ {
		colName := d.str()
		kind := d.u8()
		ints := d.i64s()
		nDict := d.u32()
		if d.err == nil && uint64(nDict) > uint64(len(blob)) {
			d.fail("dictionary size %d exceeds table blob size", nDict)
		}
		var dict []string
		if nDict > 0 && d.err == nil {
			dict = make([]string, 0, nDict)
			for j := 0; j < int(nDict) && d.err == nil; j++ {
				dict = append(dict, d.str())
			}
		}
		var nulls []bool
		if d.u8() != 0 {
			nulls = d.bools()
		}
		if d.err != nil {
			break
		}
		if seen[colName] {
			return nil, fmt.Errorf("snapshot: table %q has duplicate column %q", name, colName)
		}
		seen[colName] = true
		col, err := storage.RestoreColumn(colName, storage.Kind(kind), ints, dict, nulls)
		if err != nil {
			return nil, fmt.Errorf("snapshot: table %q: %w", name, err)
		}
		cols = append(cols, col)
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("snapshot: table %q: %w", name, err)
	}
	t := storage.NewTable(name, cols...)
	if err := t.Check(); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return t, nil
}
