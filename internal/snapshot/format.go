// Package snapshot persists the expensive artifacts of opening a benchmark
// instance — the generated storage.Database, its stats, the index sets of
// the three physical designs, and per-query truecard stores — as
// versioned, checksummed binary files in a content-addressed cache
// directory, so repeat runs load in milliseconds instead of regenerating
// for minutes.
//
// Every file shares one frame: a magic number, the format version, a
// section kind, the cache key fingerprint, a length-prefixed payload, and
// a trailing CRC-32 over everything before it. Decoders never trust the
// bytes: the version is checked before anything else (so a format bump
// reads as "version mismatch", not garbage), the checksum before the
// payload is parsed, and every structural invariant (column lengths, dict
// code ranges, bitset bounds) is validated on the way in. A corrupted or
// stale snapshot therefore always surfaces as an error the caller can turn
// into "regenerate with a warning" — never a panic and never silently
// wrong data.
//
// Databases fan encode/decode out per table, index sets per index, and
// truth stores are one file per query, all through internal/parallel,
// mirroring how the rest of the system parallelizes.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// FormatVersion identifies the binary layout AND the semantics of what is
// cached. Bump it on any incompatible change to this package's encoding —
// or to the data generator, ANALYZE, or truecard semantics, since a
// snapshot is only valid if regeneration would reproduce it. Files written
// under any other version are rejected at decode time and regenerated.
//
// v2: cache keys and manifests carry the workload name (internal/workload)
// alongside seed/scale; v1 snapshots regenerate with a logged warning.
const FormatVersion = 2

const magic = "JBSN"

// Section kinds, one per file type in the cache directory.
const (
	kindDatabase byte = 1
	kindStats    byte = 2
	kindTruth    byte = 3
	kindIndexes  byte = 4
)

// enc is an append-only little-endian encoder.
type enc struct{ b []byte }

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}

func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) bytes(p []byte) {
	e.u64(uint64(len(p)))
	e.b = append(e.b, p...)
}

func (e *enc) i64s(v []int64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.i64(x)
	}
}

func (e *enc) i32s(v []int32) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u32(uint32(x))
	}
}

// bools packs a bitmap, 8 flags per byte.
func (e *enc) bools(v []bool) {
	e.u64(uint64(len(v)))
	var cur byte
	for i, b := range v {
		if b {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			e.u8(cur)
			cur = 0
		}
	}
	if len(v)%8 != 0 {
		e.u8(cur)
	}
}

// dec is the matching bounds-checked decoder. The first failure latches
// into err; subsequent reads return zero values, and callers check err
// once at the end. No read can run past the buffer or allocate more than a
// small multiple of the input size, which is what makes decoding untrusted
// bytes safe.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

// need reports whether n more bytes are available, failing the decoder if
// not.
func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("truncated input at offset %d (need %d bytes, have %d)", d.off, n, len(d.b)-d.off)
		return false
	}
	return true
}

func (d *dec) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads an element count and fails unless count*elemBytes fits in
// the remaining input, bounding allocations by the input size.
func (d *dec) count(elemBytes int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	rem := uint64(len(d.b) - d.off)
	if elemBytes > 0 && n > rem/uint64(elemBytes) {
		d.fail("element count %d exceeds remaining %d bytes", n, rem)
		return 0
	}
	return int(n)
}

func (d *dec) str() string {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) bytes() []byte {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	p := d.b[d.off : d.off+n : d.off+n]
	d.off += n
	return p
}

func (d *dec) i64s() []int64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = d.i64()
	}
	return v
}

func (d *dec) i32s() []int32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(d.u32())
	}
	return v
}

func (d *dec) bools() []bool {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	// Bound n before computing the packed size: (n+7)/8 wraps for counts
	// near 2^64, which would slip past the byte check and panic makeslice.
	rem := uint64(len(d.b) - d.off)
	if n > rem*8 {
		d.fail("bitmap of %d flags exceeds remaining %d bytes", n, rem)
		return nil
	}
	packed := (n + 7) / 8
	if n == 0 {
		return nil
	}
	v := make([]bool, n)
	for i := range v {
		v[i] = d.b[d.off+i/8]&(1<<(i%8)) != 0
	}
	d.off += int(packed)
	return v
}

// done verifies the decoder consumed the whole buffer without error.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("snapshot: %d trailing bytes after payload", len(d.b)-d.off)
	}
	return nil
}

// frame wraps a payload in the common file envelope.
func frame(kind byte, fingerprint string, payload []byte) []byte {
	e := enc{b: make([]byte, 0, len(payload)+len(fingerprint)+64)}
	e.b = append(e.b, magic...)
	e.u32(FormatVersion)
	e.u8(kind)
	e.str(fingerprint)
	e.bytes(payload)
	e.u32(crc32.ChecksumIEEE(e.b))
	return e.b
}

// unframe validates the envelope and returns the payload. The version is
// checked before the checksum so files written by a different format
// version report as such rather than as corruption; expectFingerprint ""
// skips the fingerprint comparison (used by inspection and fuzzing).
func unframe(data []byte, kind byte, expectFingerprint string) ([]byte, error) {
	if len(data) < len(magic)+8 {
		return nil, fmt.Errorf("snapshot: file too short (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, errors.New("snapshot: bad magic (not a snapshot file)")
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != FormatVersion {
		return nil, fmt.Errorf("snapshot: format version %d, want %d", v, FormatVersion)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, errors.New("snapshot: checksum mismatch (corrupted file)")
	}
	d := &dec{b: body, off: len(magic) + 4}
	if k := d.u8(); d.err == nil && k != kind {
		return nil, fmt.Errorf("snapshot: section kind %d, want %d", k, kind)
	}
	if fp := d.str(); d.err == nil && expectFingerprint != "" && fp != expectFingerprint {
		return nil, fmt.Errorf("snapshot: fingerprint %q does not match cache key %q", fp, expectFingerprint)
	}
	payload := d.bytes()
	if err := d.done(); err != nil {
		return nil, err
	}
	return payload, nil
}
