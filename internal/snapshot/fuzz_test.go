package snapshot

import (
	"testing"

	"jobench/internal/job"
	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/storage"
	"jobench/internal/truecard"
)

// FuzzDecodeSnapshot throws arbitrary bytes at all three decoders. The
// contract under test: truncated, corrupted, version-bumped, or otherwise
// hostile input is rejected with an error — never a panic, never an
// out-of-range access — and anything a decoder does accept satisfies the
// decoded type's own invariants.
func FuzzDecodeSnapshot(f *testing.F) {
	// Seed with one valid file of each kind so mutation starts from
	// structurally interesting bytes.
	db := storage.NewDatabase()
	ic := storage.NewIntColumn("id")
	ic.AppendInt(1)
	ic.AppendNull()
	sc := storage.NewStringColumn("name")
	sc.AppendString("alpha")
	sc.AppendString("beta")
	db.Add(storage.NewTable("t", ic))
	sc2 := storage.NewTable("u", sc)
	db.Add(sc2)
	dbBytes, err := EncodeDatabase(db, "fp", 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(dbBytes)

	sdb := &stats.DB{Tables: map[string]*stats.TableStats{
		"t": stats.Analyze(db.Table("t"), stats.Options{SampleSize: 10, MCVTarget: 3, HistBuckets: 2, Seed: 1}),
	}}
	f.Add(EncodeStats(sdb, "fp"))

	g := query.MustBuildGraph(job.Workload()[0])
	st, err := truecard.FromDump(g, truecard.Dump{
		MaxSize: g.N,
		Cards:   []truecard.CardEntry{{S: query.Bit(0), Card: 3}, {S: query.FullSet(g.N), Card: 9}},
		Sans:    []truecard.SansEntry{{S: query.Bit(1), Rel: 1, Card: 4}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(EncodeTruth(st, "fp"))

	// A few hostile variants: truncation, bit flips, version bump.
	f.Add(dbBytes[:len(dbBytes)/2])
	f.Add(flip(dbBytes, len(dbBytes)/3))
	f.Add(flip(dbBytes, 4))
	f.Add([]byte("JBSN"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if got, err := DecodeDatabase(data, "", 1); err == nil {
			if cerr := got.Check(); cerr != nil {
				t.Fatalf("accepted database violates invariants: %v", cerr)
			}
			for _, name := range got.TableNames() {
				tbl := got.Table(name)
				for _, col := range tbl.Cols {
					for i := 0; i < col.Len(); i++ {
						if col.Kind == storage.KindString {
							col.StringAt(i) // must not panic on any accepted input
						} else if !col.IsNull(i) {
							col.Int(i)
						}
					}
				}
			}
		}
		if got, err := DecodeStats(data, ""); err == nil {
			for _, ts := range got.Tables {
				for _, cs := range ts.Cols {
					cs.HistFracLE(0)
					cs.MCVFracOf(0)
				}
			}
		}
		if got, err := DecodeTruth(data, "", g); err == nil {
			got.Card(query.Bit(0))
			got.SansSelection(query.Bit(1), 1)
			got.NumSubgraphs()
		}
	})
}
