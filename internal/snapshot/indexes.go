package snapshot

import (
	"context"
	"fmt"

	"jobench/internal/index"
	"jobench/internal/parallel"
	"jobench/internal/storage"
)

// The index snapshots persist the three physical designs (none / PK /
// PK+FK) so a warm Open skips index construction — after the database,
// statistics, and truth stores, index builds are the last big cold-start
// cost. Each design is one file holding every (table, column) hash index
// as sorted postings: keys ascending, each with a length-prefixed run of
// row ids, flattened so decoding performs one allocation per index rather
// than one per row.

// LoadOrBuildIndexes resolves one physical design under the shared
// regenerate-or-warn policy: from the snapshot store when cached (s may be
// nil for no caching), otherwise via build, persisting the fresh set
// best-effort for the next open. Both the facade and the experiments lab
// route their three index sets through here; build is a parameter so the
// facade's test indirection (counting constructions) keeps working.
func LoadOrBuildIndexes(s *Store, logf func(format string, args ...any), what string,
	db *storage.Database, cfg index.Config,
	build func(*storage.Database, index.Config) (*index.Set, error)) (*index.Set, error) {
	label := cfg.Label()
	if s != nil {
		set, ok := Load(logf, what+": snapshot indexes "+label,
			func() (*index.Set, error) { return s.LoadIndexes(label, db) })
		if ok {
			return set, nil
		}
	}
	set, err := build(db, cfg)
	if err != nil {
		return nil, err
	}
	if s != nil {
		Save(logf, what+": snapshot save indexes "+label, func() error {
			return s.SaveIndexes(label, set)
		})
	}
	return set, nil
}

// EncodeIndexes serializes an index set. Only hash indexes are supported
// (the only kind the physical designs build); any other Index
// implementation is an error so the caller's Save degrades to a logged
// warning instead of writing a file it could not read back.
func EncodeIndexes(set *index.Set, fingerprint string, workers int) ([]byte, error) {
	items := set.Items()
	blobs, err := parallel.RunCells(context.Background(), workers, items,
		func(_ context.Context, it index.Item) ([]byte, error) {
			h, ok := it.Index.(*index.Hash)
			if !ok {
				return nil, fmt.Errorf("snapshot: index %s.%s is %T, only hash indexes snapshot", it.Table, it.Column, it.Index)
			}
			return encodeHashIndex(it, h), nil
		})
	if err != nil {
		return nil, err
	}
	var e enc
	e.u32(uint32(len(items)))
	for _, b := range blobs {
		e.bytes(b)
	}
	return frame(kindIndexes, fingerprint, e.b), nil
}

func encodeHashIndex(it index.Item, h *index.Hash) []byte {
	keys, rows := h.Postings()
	var e enc
	e.str(it.Table)
	e.str(it.Column)
	if h.Unique() {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.i64s(keys)
	lens := make([]int32, len(rows))
	total := 0
	for i, r := range rows {
		lens[i] = int32(len(r))
		total += len(r)
	}
	e.i32s(lens)
	flat := make([]int32, 0, total)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	e.i32s(flat)
	return e.b
}

// DecodeIndexes rebuilds an index set from EncodeIndexes output, validating
// every structural invariant against db: known tables and columns, row ids
// in range, posting lists consistent with their length table, unique
// indexes with single-row postings. Like every snapshot decoder it returns
// an error on untrustworthy input, never panics.
func DecodeIndexes(data []byte, fingerprint string, db *storage.Database, workers int) (*index.Set, error) {
	payload, err := unframe(data, kindIndexes, fingerprint)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	n := d.u32()
	if d.err == nil && uint64(n) > uint64(len(payload)) {
		d.fail("index count %d exceeds payload size", n)
	}
	blobs := make([][]byte, 0, n)
	for i := 0; i < int(n) && d.err == nil; i++ {
		blobs = append(blobs, d.bytes())
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	items, err := parallel.RunCells(context.Background(), workers, blobs,
		func(_ context.Context, blob []byte) (decodedIndex, error) {
			return decodeHashIndex(blob, db)
		})
	if err != nil {
		return nil, err
	}
	set := index.NewSet()
	for _, it := range items {
		if set.Has(it.table, it.column) {
			return nil, fmt.Errorf("snapshot: duplicate index on %s.%s", it.table, it.column)
		}
		set.Add(it.table, it.column, it.idx)
	}
	return set, nil
}

// decodedIndex is one index rebuilt from its snapshot blob.
type decodedIndex struct {
	table, column string
	idx           *index.Hash
}

func decodeHashIndex(blob []byte, db *storage.Database) (out decodedIndex, err error) {
	d := &dec{b: blob}
	table := d.str()
	column := d.str()
	unique := d.u8() != 0
	keys := d.i64s()
	lens := d.i32s()
	flat := d.i32s()
	if err := d.done(); err != nil {
		return out, err
	}
	t := db.Table(table)
	if t == nil {
		return out, fmt.Errorf("snapshot: index on unknown table %q", table)
	}
	if t.Column(column) == nil {
		return out, fmt.Errorf("snapshot: index on unknown column %s.%s", table, column)
	}
	if len(lens) != len(keys) {
		return out, fmt.Errorf("snapshot: index %s.%s: %d keys but %d lengths", table, column, len(keys), len(lens))
	}
	numRows := t.NumRows()
	rows := make([][]int32, len(keys))
	off := 0
	for i, l := range lens {
		if l <= 0 || off+int(l) > len(flat) {
			return out, fmt.Errorf("snapshot: index %s.%s: posting list %d overruns flattened rows", table, column, i)
		}
		rows[i] = flat[off : off+int(l) : off+int(l)]
		off += int(l)
	}
	if off != len(flat) {
		return out, fmt.Errorf("snapshot: index %s.%s: %d trailing row ids", table, column, len(flat)-off)
	}
	for _, r := range flat {
		if r < 0 || int(r) >= numRows {
			return out, fmt.Errorf("snapshot: index %s.%s: row id %d out of range [0,%d)", table, column, r, numRows)
		}
	}
	idx, err := index.RestoreHash(keys, rows, unique)
	if err != nil {
		return out, fmt.Errorf("snapshot: index %s.%s: %w", table, column, err)
	}
	out.table, out.column, out.idx = table, column, idx
	return out, nil
}
