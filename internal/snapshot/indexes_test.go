package snapshot

import (
	"strings"
	"testing"

	"jobench/internal/imdb"
	"jobench/internal/index"
)

func TestIndexesRoundTrip(t *testing.T) {
	db := imdb.Generate(imdb.Config{Scale: 0.05, Seed: 7})
	for _, cfg := range []imdb.IndexConfig{imdb.NoIndexes, imdb.PKOnly, imdb.PKFK} {
		set, err := imdb.BuildIndexes(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeIndexes(set, "fp", 2)
		if err != nil {
			t.Fatalf("%v: encode: %v", cfg, err)
		}
		got, err := DecodeIndexes(data, "fp", db, 2)
		if err != nil {
			t.Fatalf("%v: decode: %v", cfg, err)
		}
		if got.Size() != set.Size() {
			t.Fatalf("%v: decoded %d indexes, want %d", cfg, got.Size(), set.Size())
		}
		for _, it := range set.Items() {
			orig := it.Index.(*index.Hash)
			dec, ok := got.Get(it.Table, it.Column).(*index.Hash)
			if !ok {
				t.Fatalf("%v: %s.%s missing or wrong type after decode", cfg, it.Table, it.Column)
			}
			if dec.Len() != orig.Len() || dec.Unique() != orig.Unique() ||
				dec.DistinctKeys() != orig.DistinctKeys() {
				t.Fatalf("%v: %s.%s shape mismatch after decode", cfg, it.Table, it.Column)
			}
			keys, rows := orig.Postings()
			for i, k := range keys {
				got := dec.Lookup(k)
				if len(got) != len(rows[i]) {
					t.Fatalf("%s.%s key %d: %d rows, want %d", it.Table, it.Column, k, len(got), len(rows[i]))
				}
				for j := range got {
					if got[j] != rows[i][j] {
						t.Fatalf("%s.%s key %d row %d: %d, want %d", it.Table, it.Column, k, j, got[j], rows[i][j])
					}
				}
			}
		}
	}
}

func TestIndexesDeterministicEncoding(t *testing.T) {
	db := imdb.Generate(imdb.Config{Scale: 0.05, Seed: 7})
	set, err := imdb.BuildIndexes(db, imdb.PKFK)
	if err != nil {
		t.Fatal(err)
	}
	a, err := EncodeIndexes(set, "fp", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeIndexes(set, "fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("index encoding differs across worker counts")
	}
}

func TestIndexesDecodeRejectsCorruption(t *testing.T) {
	db := imdb.Generate(imdb.Config{Scale: 0.05, Seed: 7})
	set, err := imdb.BuildIndexes(db, imdb.PKOnly)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeIndexes(set, "fp", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Checksum catches a flipped payload byte.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x5a
	if _, err := DecodeIndexes(bad, "fp", db, 1); err == nil {
		t.Fatal("corrupted index snapshot decoded without error")
	}
	// Truncation is caught too.
	if _, err := DecodeIndexes(data[:len(data)/2], "fp", db, 1); err == nil {
		t.Fatal("truncated index snapshot decoded without error")
	}
	// A fingerprint mismatch must be rejected before any content is trusted.
	if _, err := DecodeIndexes(data, "other-fp", db, 1); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint mismatch not rejected: %v", err)
	}
	// A snapshot from a different database scale fails row-bounds checks
	// (the smaller database has fewer rows than the indexed ids).
	smaller := imdb.Generate(imdb.Config{Scale: 0.02, Seed: 7})
	if _, err := DecodeIndexes(data, "fp", smaller, 1); err == nil {
		t.Fatal("index snapshot against mismatched database decoded without error")
	}
}
