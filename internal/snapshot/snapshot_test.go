package snapshot

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"jobench/internal/imdb"
	"jobench/internal/job"
	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/storage"
	"jobench/internal/truecard"
	"jobench/internal/workload"
)

// ---- equality helpers -------------------------------------------------

// columnsEqual compares the observable behavior of two columns: kind,
// per-row values and NULLs, and the dictionary (including Code lookups).
func columnsEqual(t *testing.T, table string, a, b *storage.Column) error {
	t.Helper()
	if a.Name != b.Name || a.Kind != b.Kind || a.Len() != b.Len() {
		return fmt.Errorf("%s.%s: shape mismatch (%s/%d vs %s/%d)", table, a.Name, a.Kind, a.Len(), b.Kind, b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.IsNull(i) != b.IsNull(i) {
			return fmt.Errorf("%s.%s: row %d null mismatch", table, a.Name, i)
		}
		if a.IsNull(i) {
			continue
		}
		if a.Int(i) != b.Int(i) {
			return fmt.Errorf("%s.%s: row %d value %d vs %d", table, a.Name, i, a.Int(i), b.Int(i))
		}
		if a.Kind == storage.KindString && a.StringAt(i) != b.StringAt(i) {
			return fmt.Errorf("%s.%s: row %d string %q vs %q", table, a.Name, i, a.StringAt(i), b.StringAt(i))
		}
	}
	if a.DictSize() != b.DictSize() {
		return fmt.Errorf("%s.%s: dict size %d vs %d", table, a.Name, a.DictSize(), b.DictSize())
	}
	for _, s := range a.Dict {
		ca, oka := a.Code(s)
		cb, okb := b.Code(s)
		if oka != okb || ca != cb {
			return fmt.Errorf("%s.%s: code of %q: (%d,%v) vs (%d,%v)", table, a.Name, s, ca, oka, cb, okb)
		}
	}
	return nil
}

func databasesEqual(t *testing.T, a, b *storage.Database) error {
	t.Helper()
	an, bn := a.TableNames(), b.TableNames()
	if !reflect.DeepEqual(an, bn) {
		return fmt.Errorf("table names %v vs %v", an, bn)
	}
	for _, name := range an {
		ta, tb := a.Table(name), b.Table(name)
		if len(ta.Cols) != len(tb.Cols) {
			return fmt.Errorf("table %s: %d vs %d columns", name, len(ta.Cols), len(tb.Cols))
		}
		for i := range ta.Cols {
			if err := columnsEqual(t, name, ta.Cols[i], tb.Cols[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func i32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func i64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func statsEqual(t *testing.T, a, b *stats.DB) error {
	t.Helper()
	if len(a.Tables) != len(b.Tables) {
		return fmt.Errorf("stats: %d vs %d tables", len(a.Tables), len(b.Tables))
	}
	for name, ta := range a.Tables {
		tb := b.Tables[name]
		if tb == nil {
			return fmt.Errorf("stats: missing table %s", name)
		}
		if ta.Table != tb.Table || ta.RowCount != tb.RowCount || !i32sEqual(ta.SampleRows, tb.SampleRows) {
			return fmt.Errorf("stats %s: header mismatch", name)
		}
		if len(ta.Cols) != len(tb.Cols) {
			return fmt.Errorf("stats %s: %d vs %d columns", name, len(ta.Cols), len(tb.Cols))
		}
		for col, ca := range ta.Cols {
			cb := tb.Cols[col]
			if cb == nil {
				return fmt.Errorf("stats %s: missing column %s", name, col)
			}
			if ca.Col != cb.Col || ca.IsString != cb.IsString || ca.RowCount != cb.RowCount ||
				ca.NullFrac != cb.NullFrac || ca.NDistinct != cb.NDistinct ||
				ca.TrueDistinct != cb.TrueDistinct || ca.MCVFrac != cb.MCVFrac ||
				ca.Lo != cb.Lo || ca.Hi != cb.Hi {
				return fmt.Errorf("stats %s.%s: scalar mismatch: %+v vs %+v", name, col, ca, cb)
			}
			if len(ca.MCVs) != len(cb.MCVs) {
				return fmt.Errorf("stats %s.%s: %d vs %d MCVs", name, col, len(ca.MCVs), len(cb.MCVs))
			}
			for i := range ca.MCVs {
				if ca.MCVs[i] != cb.MCVs[i] {
					return fmt.Errorf("stats %s.%s: MCV %d mismatch", name, col, i)
				}
				// The rebuilt lookup index must answer like the original.
				fa, oka := ca.MCVFracOf(ca.MCVs[i].Val)
				fb, okb := cb.MCVFracOf(ca.MCVs[i].Val)
				if fa != fb || oka != okb {
					return fmt.Errorf("stats %s.%s: MCVFracOf(%d) mismatch", name, col, ca.MCVs[i].Val)
				}
			}
			if !i64sEqual(ca.Hist, cb.Hist) {
				return fmt.Errorf("stats %s.%s: histogram mismatch", name, col)
			}
		}
	}
	return nil
}

// ---- round-trip property tests (testing/quick) ------------------------

// TestQuickColumnRoundTrip drives random int and dictionary-string columns
// (with NULLs) through a full database encode/decode.
func TestQuickColumnRoundTrip(t *testing.T) {
	f := func(ints []int64, intNulls []bool, words []uint8, strNulls []bool) bool {
		ic := storage.NewIntColumn("v")
		for i, v := range ints {
			if i < len(intNulls) && intNulls[i] {
				ic.AppendNull()
			} else {
				ic.AppendInt(v)
			}
		}
		sc := storage.NewStringColumn("s")
		for i, w := range words {
			if i < len(strNulls) && strNulls[i] {
				sc.AppendNull()
			} else {
				// A 7-word alphabet forces dictionary code reuse.
				sc.AppendString(fmt.Sprintf("w%d", w%7))
			}
		}
		db := storage.NewDatabase()
		db.Add(storage.NewTable("a", ic))
		db.Add(storage.NewTable("b", sc))
		data, err := EncodeDatabase(db, "fp", 1)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		got, err := DecodeDatabase(data, "fp", 1)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if err := databasesEqual(t, db, got); err != nil {
			t.Logf("mismatch: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStatsRoundTrip analyzes random tables and round-trips the
// resulting statistics.
func TestQuickStatsRoundTrip(t *testing.T) {
	f := func(vals []int16, nulls []bool, seed int64) bool {
		col := storage.NewIntColumn("x")
		for i, v := range vals {
			if i < len(nulls) && nulls[i] {
				col.AppendNull()
			} else {
				// Small domain so MCVs actually appear.
				col.AppendInt(int64(v % 11))
			}
		}
		tbl := storage.NewTable("t", col)
		sdb := &stats.DB{Tables: map[string]*stats.TableStats{
			"t": stats.Analyze(tbl, stats.Options{SampleSize: 40, MCVTarget: 5, HistBuckets: 4, Seed: seed}),
		}}
		got, err := DecodeStats(EncodeStats(sdb, "fp"), "fp")
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if err := statsEqual(t, sdb, got); err != nil {
			t.Logf("mismatch: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTruthRoundTrip round-trips random truth-store contents against
// a real workload join graph.
func TestQuickTruthRoundTrip(t *testing.T) {
	g := query.MustBuildGraph(job.Workload()[0])
	full := query.FullSet(g.N)
	f := func(cards []uint64, sans []uint64, maxSize uint8) bool {
		d := truecard.Dump{MaxSize: 1 + int(maxSize)%g.N}
		seenCards := make(map[query.BitSet]bool)
		for _, raw := range cards {
			s := query.BitSet(raw) & full
			if s.Empty() || seenCards[s] {
				continue
			}
			seenCards[s] = true
			d.Cards = append(d.Cards, truecard.CardEntry{S: s, Card: float64(raw % 1e9)})
		}
		type sk struct {
			s query.BitSet
			r int
		}
		seenSans := make(map[sk]bool)
		for _, raw := range sans {
			s := query.BitSet(raw) & full
			r := int(raw>>32) % g.N
			if s.Empty() || seenSans[sk{s, r}] {
				continue
			}
			seenSans[sk{s, r}] = true
			d.Sans = append(d.Sans, truecard.SansEntry{S: s, Rel: r, Card: float64(raw % 1e6)})
		}
		st, err := truecard.FromDump(g, d)
		if err != nil {
			t.Logf("fromdump: %v", err)
			return false
		}
		got, err := DecodeTruth(EncodeTruth(st, "fp"), "fp", g)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if !reflect.DeepEqual(st.Dump(), got.Dump()) {
			t.Logf("dump mismatch")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripAtScales drives generated databases at multiple scales —
// including their statistics and real computed truth stores — through the
// codec, with the parallel per-table fan-out enabled.
func TestRoundTripAtScales(t *testing.T) {
	scales := []float64{0.02, 0.06}
	if testing.Short() {
		scales = scales[:1]
	}
	for _, scale := range scales {
		t.Run(fmt.Sprintf("scale=%g", scale), func(t *testing.T) {
			db := imdb.Generate(imdb.Config{Scale: scale, Seed: 42})
			data, err := EncodeDatabase(db, "fp", 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeDatabase(data, "fp", 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := databasesEqual(t, db, got); err != nil {
				t.Fatal(err)
			}

			sdb := stats.AnalyzeDatabase(db, stats.Options{SampleSize: 500, MCVTarget: 100, HistBuckets: 100, Seed: 42})
			gotStats, err := DecodeStats(EncodeStats(sdb, "fp"), "fp")
			if err != nil {
				t.Fatal(err)
			}
			if err := statsEqual(t, sdb, gotStats); err != nil {
				t.Fatal(err)
			}

			for _, q := range job.Workload()[:3] {
				g := query.MustBuildGraph(q)
				st, err := truecard.Compute(db, g, truecard.Options{})
				if err != nil {
					t.Fatal(err)
				}
				gotSt, err := DecodeTruth(EncodeTruth(st, "fp"), "fp", g)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(st.Dump(), gotSt.Dump()) {
					t.Fatalf("%s: truth dump mismatch after round trip", q.ID)
				}
				full := query.FullSet(g.N)
				want, _ := st.Card(full)
				gotCard, ok := gotSt.Card(full)
				if !ok || gotCard != want {
					t.Fatalf("%s: full-query cardinality %v (ok=%v), want %v", q.ID, gotCard, ok, want)
				}
			}
		})
	}
}

// TestUnframeRejections proves the envelope catches every tampering mode
// with a descriptive error.
func TestUnframeRejections(t *testing.T) {
	payload := []byte("hello payload")
	good := frame(kindDatabase, "fp", payload)
	if got, err := unframe(good, kindDatabase, "fp"); err != nil || string(got) != string(payload) {
		t.Fatalf("good frame failed: %v", err)
	}

	cases := []struct {
		name string
		data []byte
		fp   string
	}{
		{"empty", nil, "fp"},
		{"truncated-header", good[:6], "fp"},
		{"truncated-payload", good[:len(good)-6], "fp"},
		{"bad-magic", append([]byte("XXXX"), good[4:]...), "fp"},
		{"flipped-payload-byte", flip(good, len(good)/2), "fp"},
		{"flipped-crc-byte", flip(good, len(good)-1), "fp"},
		{"version-bump", flip(good, 4), "fp"},
		{"wrong-kind", frame(kindStats, "fp", payload), "fp"},
		{"wrong-fingerprint", frame(kindDatabase, "other", payload), "fp"},
	}
	for _, tc := range cases {
		if _, err := unframe(tc.data, kindDatabase, tc.fp); err == nil {
			t.Errorf("%s: unframe accepted tampered input", tc.name)
		}
	}
}

func flip(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x5a
	return out
}

// TestBitmapCountOverflowRejected pins the fix for a decoder panic: a
// null-bitmap count near 2^64 made (n+7)/8 wrap past the byte-bound check
// and panic makeslice. The decoder must reject it with an error.
func TestBitmapCountOverflowRejected(t *testing.T) {
	var e enc
	e.str("t")
	e.u32(1)
	e.str("c")
	e.u8(byte(storage.KindInt))
	e.i64s([]int64{1})
	e.u32(0)          // empty dictionary
	e.u8(1)           // has-nulls flag
	e.u64(^uint64(6)) // 0xFFFF_FFFF_FFFF_FFF9: (n+7)/8 wraps to 0
	if _, err := decodeTable(e.b); err == nil {
		t.Fatal("decoder accepted a wrapping bitmap count")
	}
}

// TestStoreMissVsCorruption pins the ErrMiss contract Load callers build
// their regenerate-or-warn decision on.
func TestStoreMissVsCorruption(t *testing.T) {
	dir := t.TempDir()
	s := New(dir, Key{World: workload.Key{Workload: "w", Seed: 1, Scale: 0.01}}, 1)

	if _, err := s.LoadDatabase(); !IsMiss(err) {
		t.Fatalf("empty cache: want miss, got %v", err)
	}
	db := storage.NewDatabase()
	c := storage.NewIntColumn("id")
	c.AppendInt(7)
	db.Add(storage.NewTable("t", c))
	if err := s.SaveDatabase(db); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadDatabase(); err != nil {
		t.Fatalf("load after save: %v", err)
	}

	// A store with a different key must not see the snapshot.
	other := New(dir, Key{World: workload.Key{Workload: "w", Seed: 2, Scale: 0.01}}, 1)
	if _, err := other.LoadDatabase(); !IsMiss(err) {
		t.Fatalf("different key: want miss, got %v", err)
	}

	infos, err := Inspect(dir)
	if err != nil || len(infos) != 1 {
		t.Fatalf("inspect: %v, %d infos", err, len(infos))
	}
	if !infos[0].HasDatabase || infos[0].Manifest.Seed != 1 {
		t.Fatalf("inspect content wrong: %+v", infos[0])
	}

	removed, err := Clear(dir, "")
	if err != nil || removed != 1 {
		t.Fatalf("clear: %v, removed %d", err, removed)
	}
	if _, err := s.LoadDatabase(); !IsMiss(err) {
		t.Fatalf("after clear: want miss, got %v", err)
	}
}
