package snapshot

import (
	"fmt"
	"sort"

	"jobench/internal/stats"
)

// EncodeStats serializes an ANALYZE result. Statistics are tiny next to
// the database (a few hundred values per column), so encoding is serial;
// tables and columns are written in sorted order for deterministic bytes.
func EncodeStats(sdb *stats.DB, fingerprint string) []byte {
	tableNames := make([]string, 0, len(sdb.Tables))
	for name := range sdb.Tables {
		tableNames = append(tableNames, name)
	}
	sort.Strings(tableNames)

	var e enc
	e.u32(uint32(len(tableNames)))
	for _, name := range tableNames {
		ts := sdb.Tables[name]
		e.str(ts.Table)
		e.u64(uint64(ts.RowCount))
		e.i32s(ts.SampleRows)
		colNames := make([]string, 0, len(ts.Cols))
		for col := range ts.Cols {
			colNames = append(colNames, col)
		}
		sort.Strings(colNames)
		e.u32(uint32(len(colNames)))
		for _, col := range colNames {
			cs := ts.Cols[col]
			e.str(cs.Col)
			if cs.IsString {
				e.u8(1)
			} else {
				e.u8(0)
			}
			e.u64(uint64(cs.RowCount))
			e.f64(cs.NullFrac)
			e.f64(cs.NDistinct)
			e.f64(cs.TrueDistinct)
			e.u64(uint64(len(cs.MCVs)))
			for _, m := range cs.MCVs {
				e.i64(m.Val)
				e.f64(m.Frac)
			}
			e.f64(cs.MCVFrac)
			e.i64s(cs.Hist)
			e.i64(cs.Lo)
			e.i64(cs.Hi)
		}
	}
	return frame(kindStats, fingerprint, e.b)
}

// DecodeStats rebuilds a stats.DB from EncodeStats's output, rebuilding
// the per-column MCV lookup indexes. Like every decoder in this package it
// returns an error on bad input, never panics.
func DecodeStats(data []byte, fingerprint string) (*stats.DB, error) {
	payload, err := unframe(data, kindStats, fingerprint)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	nTables := d.u32()
	if d.err == nil && uint64(nTables) > uint64(len(payload)) {
		d.fail("table count %d exceeds payload size", nTables)
	}
	out := &stats.DB{Tables: make(map[string]*stats.TableStats, nTables)}
	for i := 0; i < int(nTables) && d.err == nil; i++ {
		ts := &stats.TableStats{
			Table:      d.str(),
			RowCount:   int(d.u64()),
			SampleRows: d.i32s(),
		}
		nCols := d.u32()
		if d.err == nil && uint64(nCols) > uint64(len(payload)) {
			d.fail("column count %d exceeds payload size", nCols)
		}
		ts.Cols = make(map[string]*stats.ColumnStats, nCols)
		for j := 0; j < int(nCols) && d.err == nil; j++ {
			cs := &stats.ColumnStats{
				Col:          d.str(),
				IsString:     d.u8() != 0,
				RowCount:     int(d.u64()),
				NullFrac:     d.f64(),
				NDistinct:    d.f64(),
				TrueDistinct: d.f64(),
			}
			nMCV := d.count(16)
			for k := 0; k < nMCV && d.err == nil; k++ {
				cs.MCVs = append(cs.MCVs, stats.MCV{Val: d.i64(), Frac: d.f64()})
			}
			cs.MCVFrac = d.f64()
			cs.Hist = d.i64s()
			cs.Lo = d.i64()
			cs.Hi = d.i64()
			if d.err != nil {
				break
			}
			cs.RestoreMCVIndex()
			if _, dup := ts.Cols[cs.Col]; dup {
				return nil, fmt.Errorf("snapshot: stats table %q has duplicate column %q", ts.Table, cs.Col)
			}
			ts.Cols[cs.Col] = cs
		}
		if d.err != nil {
			break
		}
		if _, dup := out.Tables[ts.Table]; dup {
			return nil, fmt.Errorf("snapshot: duplicate stats table %q", ts.Table)
		}
		out.Tables[ts.Table] = ts
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return out, nil
}
