package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"jobench/internal/index"
	"jobench/internal/query"
	"jobench/internal/stats"
	"jobench/internal/storage"
	"jobench/internal/truecard"
	"jobench/internal/workload"
)

// Key identifies one cacheable world: everything that determines the
// generated database and the query set run against it. Two opens with
// equal keys (and equal FormatVersion) may share snapshots; anything else
// lands in a different fingerprint directory and never collides.
type Key struct {
	// World names the workload and carries the generator inputs.
	World workload.Key
	// QueryHash is a content hash of the query set (WorkloadHash), so
	// editing any query invalidates cached truth.
	QueryHash string
}

// WorkloadHash fingerprints a workload by the id and SQL text of every
// query, so editing any query invalidates cached truth.
func WorkloadHash(qs []*query.Query) string {
	h := sha256.New()
	for _, q := range qs {
		io.WriteString(h, q.ID)
		io.WriteString(h, "\x00")
		io.WriteString(h, q.SQL())
		io.WriteString(h, "\x00")
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Fingerprint derives the content address of the key: the name of the
// cache subdirectory and the value embedded in every file frame. It hashes
// the format version alongside the key fields, so a version bump retires
// every old directory wholesale.
func (k Key) Fingerprint() string {
	s := fmt.Sprintf("jobench-snapshot|v%d|workload=%s|seed=%d|scale=%s|queries=%s",
		FormatVersion, k.World.Workload, k.World.Seed,
		strconv.FormatFloat(k.World.Scale, 'g', -1, 64), k.QueryHash)
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])[:16]
}

// ErrMiss reports that the requested artifact simply is not in the cache
// (as opposed to being present but unreadable). Callers regenerate
// silently on a miss and log a warning on anything else.
var ErrMiss = errors.New("snapshot: not in cache")

// IsMiss reports whether err is a plain cache miss.
func IsMiss(err error) bool { return errors.Is(err, ErrMiss) }

// Load runs one cache load under the regenerate-or-warn policy every
// snapshot consumer shares: a hit returns (value, true); a plain miss
// returns (zero, false) silently; anything else — corruption, truncation,
// a version or fingerprint mismatch — returns (zero, false) after logging
// one warning through logf, so the caller falls back to regeneration and
// the next Save heals the cache.
func Load[T any](logf func(format string, args ...any), what string, load func() (T, error)) (T, bool) {
	v, err := load()
	if err == nil {
		return v, true
	}
	if !IsMiss(err) {
		logf("%s: %v (regenerating)", what, err)
	}
	var zero T
	return zero, false
}

// Save persists one artifact best-effort: a failed write degrades to a
// warning through logf, never to an error — the caller holds the computed
// value either way.
func Save(logf func(format string, args ...any), what string, save func() error) {
	if err := save(); err != nil {
		logf("%s: %v", what, err)
	}
}

// Store is one cache directory bound to one Key. All methods are safe for
// concurrent use: reads are plain file reads, and writes go through a
// temp-file-plus-rename so a crashed or racing writer can never leave a
// torn file (a torn rename target would fail the checksum and read as
// corruption, which callers already tolerate).
type Store struct {
	root    string
	key     Key
	fp      string
	workers int
}

// New opens (without touching the filesystem) the store for key under
// cacheDir. workers sizes the per-table encode/decode fan-out and follows
// the parallel.RunCells contract (<=0 means GOMAXPROCS).
func New(cacheDir string, key Key, workers int) *Store {
	return &Store{root: cacheDir, key: key, fp: key.Fingerprint(), workers: workers}
}

// Dir returns the fingerprint directory all of the store's files live in.
func (s *Store) Dir() string { return filepath.Join(s.root, s.fp) }

// Fingerprint returns the store's content address.
func (s *Store) Fingerprint() string { return s.fp }

const (
	dbFile       = "db.snap"
	manifestFile = "manifest.json"
	truthDir     = "truth"
)

// Manifest is the human-readable sidecar written next to the binary
// snapshots; `jobench snapshot inspect` renders it.
type Manifest struct {
	FormatVersion int     `json:"format_version"`
	Workload      string  `json:"workload"`
	Seed          int64   `json:"seed"`
	Scale         float64 `json:"scale"`
	QueryHash     string  `json:"query_hash"`
}

func (s *Store) read(name string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.Dir(), name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrMiss, name)
	}
	return data, err
}

// write atomically replaces name with data and ensures the manifest
// exists.
func (s *Store) write(name string, data []byte) error {
	path := filepath.Join(s.Dir(), name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	if err := s.writeManifest(); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(name)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func (s *Store) writeManifest() error {
	path := filepath.Join(s.Dir(), manifestFile)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	m := Manifest{
		FormatVersion: FormatVersion,
		Workload:      s.key.World.Workload,
		Seed:          s.key.World.Seed,
		Scale:         s.key.World.Scale,
		QueryHash:     s.key.QueryHash,
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadDatabase reads the cached database. It returns ErrMiss when no
// snapshot exists and a descriptive error when one exists but cannot be
// trusted (corruption, version or fingerprint mismatch).
func (s *Store) LoadDatabase() (*storage.Database, error) {
	data, err := s.read(dbFile)
	if err != nil {
		return nil, err
	}
	return DecodeDatabase(data, s.fp, s.workers)
}

// SaveDatabase writes the database snapshot.
func (s *Store) SaveDatabase(db *storage.Database) error {
	data, err := EncodeDatabase(db, s.fp, s.workers)
	if err != nil {
		return err
	}
	return s.write(dbFile, data)
}

// statsFile names the snapshot of one ANALYZE configuration: the facade
// and the experiments lab analyze the same database with different sample
// sizes (and the lab twice, with and without true distinct counts), so
// each Options value gets its own file.
func statsFile(opts stats.Options) string {
	td := 0
	if opts.TrueDistinct {
		td = 1
	}
	s := fmt.Sprintf("sample=%d|mcv=%d|hist=%d|td=%d|seed=%d",
		opts.SampleSize, opts.MCVTarget, opts.HistBuckets, td, opts.Seed)
	sum := sha256.Sum256([]byte(s))
	return "stats-" + hex.EncodeToString(sum[:])[:12] + ".snap"
}

// LoadStats reads the cached statistics for one ANALYZE configuration.
func (s *Store) LoadStats(opts stats.Options) (*stats.DB, error) {
	data, err := s.read(statsFile(opts))
	if err != nil {
		return nil, err
	}
	return DecodeStats(data, s.fp)
}

// SaveStats writes the statistics snapshot for one ANALYZE configuration.
func (s *Store) SaveStats(opts stats.Options, sdb *stats.DB) error {
	return s.write(statsFile(opts), EncodeStats(sdb, s.fp))
}

// indexesFile names the snapshot of one physical design. config is a
// caller-chosen filename-safe label ("none", "pk", "pkfk").
func indexesFile(config string) string {
	return "indexes-" + config + ".snap"
}

// LoadIndexes reads the cached index set of one physical design, validating
// it against db (row-id bounds, known tables and columns).
func (s *Store) LoadIndexes(config string, db *storage.Database) (*index.Set, error) {
	data, err := s.read(indexesFile(config))
	if err != nil {
		return nil, err
	}
	return DecodeIndexes(data, s.fp, db, s.workers)
}

// SaveIndexes writes the index snapshot of one physical design.
func (s *Store) SaveIndexes(config string, set *index.Set) error {
	data, err := EncodeIndexes(set, s.fp, s.workers)
	if err != nil {
		return err
	}
	return s.write(indexesFile(config), data)
}

// truthFile names one query's truth snapshot. Workload ids ("1a".."33c")
// pass through; anything a user registered with an unruly name is hashed
// into a safe filename.
func truthFile(qid string) string {
	safe := qid != "" && qid != "." && qid != ".."
	for i := 0; safe && i < len(qid); i++ {
		c := qid[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			safe = false
		}
	}
	if !safe {
		sum := sha256.Sum256([]byte(qid))
		qid = "q-" + hex.EncodeToString(sum[:])[:16]
	}
	return filepath.Join(truthDir, qid+".snap")
}

// LoadTruth reads the cached truth store of g's query.
func (s *Store) LoadTruth(g *query.Graph) (*truecard.Store, error) {
	data, err := s.read(truthFile(g.Q.ID))
	if err != nil {
		return nil, err
	}
	return DecodeTruth(data, s.fp, g)
}

// SaveTruth writes one query's truth snapshot.
func (s *Store) SaveTruth(st *truecard.Store) error {
	return s.write(truthFile(st.G.Q.ID), EncodeTruth(st, s.fp))
}

// Info describes one fingerprint directory for `jobench snapshot inspect`.
type Info struct {
	Fingerprint string
	Manifest    Manifest
	HasDatabase bool
	StatsFiles  int
	TruthFiles  int
	// IndexSets lists the cached physical designs by label ("pk", "pkfk",
	// ...), sorted.
	IndexSets []string
	Bytes     int64
}

// Inspect summarizes every snapshot under cacheDir. A missing cache
// directory is an empty cache, not an error.
func Inspect(cacheDir string) ([]Info, error) {
	entries, err := os.ReadDir(cacheDir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []Info
	for _, ent := range entries {
		if !ent.IsDir() || !looksLikeFingerprint(ent.Name()) {
			continue
		}
		info := Info{Fingerprint: ent.Name()}
		dir := filepath.Join(cacheDir, ent.Name())
		if data, err := os.ReadFile(filepath.Join(dir, manifestFile)); err == nil {
			_ = json.Unmarshal(data, &info.Manifest)
		}
		_ = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return nil
			}
			if fi, err := d.Info(); err == nil {
				info.Bytes += fi.Size()
			}
			switch {
			case d.Name() == dbFile:
				info.HasDatabase = true
			case strings.HasPrefix(d.Name(), "stats-"):
				info.StatsFiles++
			case strings.HasPrefix(d.Name(), "indexes-") && strings.HasSuffix(d.Name(), ".snap"):
				info.IndexSets = append(info.IndexSets,
					strings.TrimSuffix(strings.TrimPrefix(d.Name(), "indexes-"), ".snap"))
			case filepath.Base(filepath.Dir(path)) == truthDir:
				info.TruthFiles++
			}
			return nil
		})
		sort.Strings(info.IndexSets)
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out, nil
}

// Clear removes fingerprint directories under cacheDir and reports how
// many it removed. An empty workloadName removes every snapshot; a
// non-empty one removes only snapshots whose manifest names that workload.
// It deliberately touches only directories that look like fingerprints, so
// pointing it at the wrong directory cannot destroy unrelated files.
func Clear(cacheDir, workloadName string) (int, error) {
	entries, err := os.ReadDir(cacheDir)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, ent := range entries {
		if !ent.IsDir() || !looksLikeFingerprint(ent.Name()) {
			continue
		}
		if workloadName != "" {
			var m Manifest
			data, err := os.ReadFile(filepath.Join(cacheDir, ent.Name(), manifestFile))
			if err != nil || json.Unmarshal(data, &m) != nil || m.Workload != workloadName {
				continue
			}
		}
		if err := os.RemoveAll(filepath.Join(cacheDir, ent.Name())); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

// looksLikeFingerprint matches Key.Fingerprint's output: 16 hex digits.
func looksLikeFingerprint(name string) bool {
	if len(name) != 16 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
