package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"jobench/internal/query"
	"jobench/internal/truecard"
)

// sqlHash fingerprints one query's text. Truth files carry it so a store
// saved for a user-registered query id can never be replayed against a
// different query that reuses the id (the workload hash in the cache key
// only covers the built-in workload).
func sqlHash(sql string) string {
	sum := sha256.Sum256([]byte(sql))
	return hex.EncodeToString(sum[:8])
}

// EncodeTruth serializes one query's true-cardinality store.
func EncodeTruth(st *truecard.Store, fingerprint string) []byte {
	d := st.Dump()
	var e enc
	e.str(st.G.Q.ID)
	e.str(sqlHash(st.G.Q.SQL()))
	e.u32(uint32(st.G.N))
	e.u32(uint32(d.MaxSize))
	e.u64(uint64(len(d.Cards)))
	for _, c := range d.Cards {
		e.u64(uint64(c.S))
		e.f64(c.Card)
	}
	e.u64(uint64(len(d.Sans)))
	for _, s := range d.Sans {
		e.u64(uint64(s.S))
		e.u32(uint32(s.Rel))
		e.f64(s.Card)
	}
	return frame(kindTruth, fingerprint, e.b)
}

// DecodeTruth rebuilds a truth store against graph g, verifying that the
// file was written for the same query (id, SQL text, relation count)
// before trusting any cardinality in it.
func DecodeTruth(data []byte, fingerprint string, g *query.Graph) (*truecard.Store, error) {
	payload, err := unframe(data, kindTruth, fingerprint)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	qid := d.str()
	qhash := d.str()
	n := int(d.u32())
	dump := truecard.Dump{MaxSize: int(d.u32())}
	nCards := d.count(16)
	for i := 0; i < nCards && d.err == nil; i++ {
		dump.Cards = append(dump.Cards, truecard.CardEntry{
			S: query.BitSet(d.u64()), Card: d.f64(),
		})
	}
	nSans := d.count(20)
	for i := 0; i < nSans && d.err == nil; i++ {
		dump.Sans = append(dump.Sans, truecard.SansEntry{
			S: query.BitSet(d.u64()), Rel: int(d.u32()), Card: d.f64(),
		})
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	if qid != g.Q.ID {
		return nil, fmt.Errorf("snapshot: truth store for query %q, want %q", qid, g.Q.ID)
	}
	if h := sqlHash(g.Q.SQL()); qhash != h {
		return nil, fmt.Errorf("snapshot: truth store for query %q was computed from different SQL text", qid)
	}
	if n != g.N {
		return nil, fmt.Errorf("snapshot: truth store has %d relations, graph has %d", n, g.N)
	}
	return truecard.FromDump(g, dump)
}
