// Package stats implements the per-attribute statistics a PostgreSQL-style
// ANALYZE collects from a table sample: most-common values with their
// frequencies, equi-depth histograms (quantile statistics), null fractions,
// and sample-based distinct-count estimation, plus reservoir table samples
// (HyPer-style) and exact distinct counts (for the paper's Fig. 5
// experiment).
package stats

import (
	"math"
	"math/rand"
	"sort"

	"jobench/internal/storage"
)

// MCV is one most-common-value entry: a value and its estimated fraction of
// all rows.
type MCV struct {
	Val  int64
	Frac float64
}

// ColumnStats are the per-attribute statistics for one column.
type ColumnStats struct {
	Col      string
	IsString bool

	RowCount  int     // rows in the table
	NullFrac  float64 // fraction of NULL rows (from the sample)
	NDistinct float64 // estimated number of distinct non-NULL values

	// TrueDistinct is the exact distinct count (computed only when
	// AnalyzeOptions.TrueDistinct is set, or by ComputeTrueDistinct).
	TrueDistinct float64

	MCVs    []MCV // most common values, descending by frequency
	mcvSet  map[int64]float64
	MCVFrac float64 // total fraction covered by the MCVs

	// Hist holds nb+1 equi-depth bucket bounds over the sampled non-MCV
	// values, ascending. Empty when too few values remain.
	Hist []int64

	// Lo and Hi are the observed min/max in the sample.
	Lo, Hi int64
}

// RestoreMCVIndex rebuilds the column's MCV lookup map from the exported
// MCVs slice. Decoders call it after reconstructing a ColumnStats from a
// snapshot; Analyze-built statistics never need it.
func (c *ColumnStats) RestoreMCVIndex() {
	c.mcvSet = make(map[int64]float64, len(c.MCVs))
	for _, m := range c.MCVs {
		c.mcvSet[m.Val] = m.Frac
	}
}

// MCVFracOf returns the frequency of v if v is an MCV.
func (c *ColumnStats) MCVFracOf(v int64) (float64, bool) {
	f, ok := c.mcvSet[v]
	return f, ok
}

// TableStats bundles per-column statistics, the table sample, and the row
// count.
type TableStats struct {
	Table    string
	RowCount int
	Cols     map[string]*ColumnStats

	// SampleRows are row ids of a uniform reservoir sample of the table
	// (the HyPer-style base-table estimation sample).
	SampleRows []int32
}

// Options control ANALYZE.
type Options struct {
	// SampleSize is the number of rows sampled per table (PostgreSQL with
	// default_statistics_target=100 samples 30000).
	SampleSize int
	// MCVTarget is the maximum number of most-common values kept.
	MCVTarget int
	// HistBuckets is the number of equi-depth histogram buckets.
	HistBuckets int
	// TrueDistinct computes exact distinct counts instead of estimating
	// them from the sample (the paper's Fig. 5 variant).
	TrueDistinct bool
	// Seed makes sampling deterministic.
	Seed int64
}

// DefaultOptions mirror PostgreSQL's default statistics target.
func DefaultOptions() Options {
	return Options{SampleSize: 30000, MCVTarget: 100, HistBuckets: 100, Seed: 1}
}

// Analyze computes statistics for every column of t.
func Analyze(t *storage.Table, opts Options) *TableStats {
	if opts.SampleSize <= 0 {
		opts.SampleSize = 30000
	}
	if opts.MCVTarget <= 0 {
		opts.MCVTarget = 100
	}
	if opts.HistBuckets <= 0 {
		opts.HistBuckets = 100
	}
	ts := &TableStats{
		Table:    t.Name,
		RowCount: t.NumRows(),
		Cols:     make(map[string]*ColumnStats, len(t.Cols)),
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ int64(len(t.Name))<<32 ^ hashString(t.Name)))
	ts.SampleRows = reservoir(t.NumRows(), opts.SampleSize, rng)
	for _, col := range t.Cols {
		ts.Cols[col.Name] = analyzeColumn(col, ts.SampleRows, t.NumRows(), opts)
	}
	return ts
}

func hashString(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= int64(s[i])
		h *= 1099511628211
	}
	return h
}

// reservoir returns min(n, k) row ids sampled uniformly without replacement.
func reservoir(n, k int, rng *rand.Rand) []int32 {
	if n <= k {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		return all
	}
	res := make([]int32, k)
	for i := 0; i < k; i++ {
		res[i] = int32(i)
	}
	for i := k; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < k {
			res[j] = int32(i)
		}
	}
	return res
}

func analyzeColumn(col *storage.Column, sample []int32, rowCount int, opts Options) *ColumnStats {
	cs := &ColumnStats{
		Col:      col.Name,
		IsString: col.Kind == storage.KindString,
		RowCount: rowCount,
		mcvSet:   make(map[int64]float64),
	}
	counts := make(map[int64]int)
	nulls := 0
	var nonNull []int64
	for _, row := range sample {
		if col.IsNull(int(row)) {
			nulls++
			continue
		}
		v := col.Ints[row]
		counts[v]++
		nonNull = append(nonNull, v)
	}
	sampleN := len(sample)
	if sampleN == 0 {
		cs.NDistinct = 1
		return cs
	}
	cs.NullFrac = float64(nulls) / float64(sampleN)
	if len(nonNull) == 0 {
		cs.NDistinct = 1
		return cs
	}
	sort.Slice(nonNull, func(i, j int) bool { return nonNull[i] < nonNull[j] })
	cs.Lo, cs.Hi = nonNull[0], nonNull[len(nonNull)-1]

	// Distinct estimation. Either exact (Fig. 5 variant) or PostgreSQL's
	// Duj1 estimator: n*d / (n - f1 + f1*n/N), where d is the number of
	// distinct values in the sample, f1 the number of values occurring
	// exactly once, n the sample size and N the table size. Duj1 is known
	// to underestimate badly for large skewed tables, which §3.4 exploits.
	if opts.TrueDistinct {
		cs.NDistinct = exactDistinct(col)
		cs.TrueDistinct = cs.NDistinct
	} else {
		d := float64(len(counts))
		f1 := 0.0
		for _, c := range counts {
			if c == 1 {
				f1++
			}
		}
		n := float64(len(nonNull))
		bigN := float64(rowCount)
		if n >= bigN || f1 == 0 {
			cs.NDistinct = d
		} else {
			denom := n - f1 + f1*n/bigN
			if denom < 1 {
				denom = 1
			}
			est := n * d / denom
			if est < d {
				est = d
			}
			if est > bigN {
				est = bigN
			}
			cs.NDistinct = est
		}
	}
	if cs.NDistinct < 1 {
		cs.NDistinct = 1
	}

	// Most common values: keep up to MCVTarget values that occur more than
	// once in the sample (PostgreSQL keeps values deemed more frequent than
	// average; "occurs at least twice" is its minimum bar).
	type vc struct {
		v int64
		c int
	}
	vcs := make([]vc, 0, len(counts))
	for v, c := range counts {
		if c >= 2 {
			vcs = append(vcs, vc{v, c})
		}
	}
	sort.Slice(vcs, func(i, j int) bool {
		if vcs[i].c != vcs[j].c {
			return vcs[i].c > vcs[j].c
		}
		return vcs[i].v < vcs[j].v
	})
	if len(vcs) > opts.MCVTarget {
		vcs = vcs[:opts.MCVTarget]
	}
	mcvValues := make(map[int64]bool, len(vcs))
	for _, e := range vcs {
		frac := float64(e.c) / float64(sampleN)
		cs.MCVs = append(cs.MCVs, MCV{Val: e.v, Frac: frac})
		cs.mcvSet[e.v] = frac
		cs.MCVFrac += frac
		mcvValues[e.v] = true
	}

	// Equi-depth histogram over the non-MCV sampled values.
	rest := nonNull[:0:0]
	for _, v := range nonNull {
		if !mcvValues[v] {
			rest = append(rest, v)
		}
	}
	nb := opts.HistBuckets
	if len(rest) >= 2 {
		if nb > len(rest)-1 {
			nb = len(rest) - 1
		}
		if nb >= 1 {
			cs.Hist = make([]int64, nb+1)
			for i := 0; i <= nb; i++ {
				pos := i * (len(rest) - 1) / nb
				cs.Hist[i] = rest[pos]
			}
		}
	}
	return cs
}

func exactDistinct(col *storage.Column) float64 {
	if col.Kind == storage.KindString {
		// The dictionary may contain strings from rows later overwritten;
		// count codes actually present.
		seen := make(map[int64]struct{})
		for i, v := range col.Ints {
			if !col.IsNull(i) {
				seen[v] = struct{}{}
			}
		}
		return float64(len(seen))
	}
	seen := make(map[int64]struct{})
	for i, v := range col.Ints {
		if !col.IsNull(i) {
			seen[v] = struct{}{}
		}
	}
	return math.Max(1, float64(len(seen)))
}

// HistFracLE returns the estimated fraction of non-MCV, non-NULL values
// that are <= v according to the histogram, with linear interpolation
// within buckets.
func (c *ColumnStats) HistFracLE(v int64) float64 {
	h := c.Hist
	if len(h) < 2 {
		// No histogram: fall back to a uniform range assumption.
		if c.Hi == c.Lo {
			if v >= c.Hi {
				return 1
			}
			return 0
		}
		f := float64(v-c.Lo+1) / float64(c.Hi-c.Lo+1)
		return clamp01(f)
	}
	if v < h[0] {
		return 0
	}
	if v >= h[len(h)-1] {
		return 1
	}
	nb := len(h) - 1
	// Find the bucket containing v.
	i := sort.Search(nb, func(i int) bool { return h[i+1] > v })
	lo, hi := h[i], h[i+1]
	within := 1.0
	if hi > lo {
		within = float64(v-lo) / float64(hi-lo)
	}
	return (float64(i) + within) / float64(nb)
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// DB holds statistics for a whole catalog.
type DB struct {
	Tables map[string]*TableStats
}

// AnalyzeDatabase runs Analyze over every table of db.
func AnalyzeDatabase(db *storage.Database, opts Options) *DB {
	out := &DB{Tables: make(map[string]*TableStats)}
	for _, name := range db.TableNames() {
		out.Tables[name] = Analyze(db.Table(name), opts)
	}
	return out
}

// Table returns the statistics of one table, or nil.
func (d *DB) Table(name string) *TableStats { return d.Tables[name] }
