package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"jobench/internal/storage"
)

func uniformTable(n int, distinct int64, seed int64) *storage.Table {
	rng := rand.New(rand.NewSource(seed))
	id := storage.NewIntColumn("id")
	val := storage.NewIntColumn("val")
	for i := 0; i < n; i++ {
		id.AppendInt(int64(i))
		val.AppendInt(rng.Int63n(distinct))
	}
	return storage.NewTable("u", id, val)
}

func TestAnalyzeUniformColumn(t *testing.T) {
	tbl := uniformTable(20000, 50, 7)
	ts := Analyze(tbl, Options{SampleSize: 5000, MCVTarget: 100, HistBuckets: 20, Seed: 1})
	cs := ts.Cols["val"]
	if cs == nil {
		t.Fatal("no stats for val")
	}
	if cs.NDistinct < 40 || cs.NDistinct > 60 {
		t.Fatalf("NDistinct = %g, want ~50", cs.NDistinct)
	}
	if cs.NullFrac != 0 {
		t.Fatalf("NullFrac = %g", cs.NullFrac)
	}
	// Uniform column: each MCV frequency should be near 1/50.
	for _, m := range cs.MCVs[:3] {
		if m.Frac < 0.005 || m.Frac > 0.06 {
			t.Fatalf("MCV frac %g implausible for uniform data", m.Frac)
		}
	}
}

func TestAnalyzeKeyColumnDistinct(t *testing.T) {
	tbl := uniformTable(50000, math.MaxInt64, 3) // id column is a dense key
	ts := Analyze(tbl, Options{SampleSize: 5000, Seed: 1})
	cs := ts.Cols["id"]
	// Duj1 on a unique column should estimate close to the table size.
	if cs.NDistinct < 25000 {
		t.Fatalf("NDistinct = %g, want close to 50000 for a key", cs.NDistinct)
	}
	if len(cs.MCVs) != 0 {
		t.Fatalf("key column has %d MCVs, want 0", len(cs.MCVs))
	}
}

func TestDuj1UnderestimatesSkewedDistinct(t *testing.T) {
	// Zipf-like column on a large table: a small sample sees mostly the
	// head, so Duj1 underestimates the true distinct count. This is the
	// paper's §3.4 premise.
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.4, 1, 200000)
	col := storage.NewIntColumn("z")
	truth := make(map[int64]struct{})
	for i := 0; i < 200000; i++ {
		v := int64(zipf.Uint64())
		col.AppendInt(v)
		truth[v] = struct{}{}
	}
	tbl := storage.NewTable("z", col)
	est := Analyze(tbl, Options{SampleSize: 5000, Seed: 1}).Cols["z"].NDistinct
	if est >= float64(len(truth)) {
		t.Fatalf("expected underestimation: est %g >= true %d", est, len(truth))
	}
	exact := Analyze(tbl, Options{SampleSize: 5000, Seed: 1, TrueDistinct: true}).Cols["z"]
	if exact.NDistinct != float64(len(truth)) {
		t.Fatalf("TrueDistinct = %g, want %d", exact.NDistinct, len(truth))
	}
}

func TestNullFraction(t *testing.T) {
	col := storage.NewIntColumn("x")
	for i := 0; i < 1000; i++ {
		if i%4 == 0 {
			col.AppendNull()
		} else {
			col.AppendInt(int64(i % 10))
		}
	}
	tbl := storage.NewTable("n", col)
	cs := Analyze(tbl, Options{SampleSize: 1000, Seed: 1}).Cols["x"]
	if math.Abs(cs.NullFrac-0.25) > 0.05 {
		t.Fatalf("NullFrac = %g, want ~0.25", cs.NullFrac)
	}
}

func TestMCVsCaptureSkew(t *testing.T) {
	col := storage.NewIntColumn("x")
	for i := 0; i < 10000; i++ {
		switch {
		case i%2 == 0:
			col.AppendInt(1) // 50%
		case i%4 == 1:
			col.AppendInt(2) // 25%
		default:
			col.AppendInt(int64(100 + i)) // long tail of singletons
		}
	}
	tbl := storage.NewTable("s", col)
	cs := Analyze(tbl, Options{SampleSize: 2000, MCVTarget: 10, Seed: 1}).Cols["x"]
	if len(cs.MCVs) == 0 || cs.MCVs[0].Val != 1 {
		t.Fatalf("top MCV = %+v, want value 1", cs.MCVs)
	}
	if math.Abs(cs.MCVs[0].Frac-0.5) > 0.08 {
		t.Fatalf("MCV frac = %g, want ~0.5", cs.MCVs[0].Frac)
	}
	if f, ok := cs.MCVFracOf(1); !ok || f != cs.MCVs[0].Frac {
		t.Fatal("MCVFracOf inconsistent")
	}
	if _, ok := cs.MCVFracOf(9999999); ok {
		t.Fatal("MCVFracOf found non-MCV")
	}
}

func TestHistFracLE(t *testing.T) {
	// Uniform values 0..999 with no repeats in sample -> pure histogram.
	col := storage.NewIntColumn("x")
	for i := 0; i < 1000; i++ {
		col.AppendInt(int64(i))
	}
	tbl := storage.NewTable("h", col)
	cs := Analyze(tbl, Options{SampleSize: 1000, HistBuckets: 10, Seed: 1}).Cols["x"]
	if len(cs.Hist) != 11 {
		t.Fatalf("histogram bounds = %d, want 11", len(cs.Hist))
	}
	for _, tc := range []struct {
		v    int64
		want float64
		tol  float64
	}{
		{-5, 0, 0}, {999, 1, 0}, {499, 0.5, 0.02}, {250, 0.25, 0.02},
	} {
		if got := cs.HistFracLE(tc.v); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("HistFracLE(%d) = %g, want %g±%g", tc.v, got, tc.want, tc.tol)
		}
	}
}

func TestHistFracLEWithoutHistogram(t *testing.T) {
	cs := &ColumnStats{Lo: 10, Hi: 19}
	if got := cs.HistFracLE(14); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("uniform fallback = %g", got)
	}
	if got := cs.HistFracLE(5); got != 0 {
		t.Fatalf("below range = %g", got)
	}
	single := &ColumnStats{Lo: 7, Hi: 7}
	if got := single.HistFracLE(7); got != 1 {
		t.Fatalf("singleton range = %g", got)
	}
}

// Property: HistFracLE is monotone and within [0,1] for arbitrary columns.
func TestHistFracMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		col := storage.NewIntColumn("x")
		for i := 0; i < int(n%500)+10; i++ {
			col.AppendInt(rng.Int63n(1000) - 500)
		}
		tbl := storage.NewTable("p", col)
		cs := Analyze(tbl, Options{SampleSize: 200, HistBuckets: 8, Seed: 1}).Cols["x"]
		prev := -1.0
		for v := int64(-600); v <= 600; v += 37 {
			f := cs.HistFracLE(v)
			if f < 0 || f > 1 || f < prev-1e-12 {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirDeterministicAndUniform(t *testing.T) {
	tbl := uniformTable(10000, 100, 1)
	a := Analyze(tbl, Options{SampleSize: 500, Seed: 42})
	b := Analyze(tbl, Options{SampleSize: 500, Seed: 42})
	if len(a.SampleRows) != 500 || len(b.SampleRows) != 500 {
		t.Fatalf("sample sizes %d/%d", len(a.SampleRows), len(b.SampleRows))
	}
	for i := range a.SampleRows {
		if a.SampleRows[i] != b.SampleRows[i] {
			t.Fatal("sampling not deterministic for equal seeds")
		}
	}
	// Small tables are fully sampled.
	small := uniformTable(50, 10, 1)
	s := Analyze(small, Options{SampleSize: 500, Seed: 1})
	if len(s.SampleRows) != 50 {
		t.Fatalf("small table sample = %d, want 50", len(s.SampleRows))
	}
}

func TestAnalyzeDatabase(t *testing.T) {
	db := storage.NewDatabase()
	db.Add(uniformTable(100, 10, 1))
	sdb := AnalyzeDatabase(db, DefaultOptions())
	if sdb.Table("u") == nil || sdb.Table("missing") != nil {
		t.Fatal("DB stats lookup broken")
	}
	if sdb.Table("u").RowCount != 100 {
		t.Fatalf("RowCount = %d", sdb.Table("u").RowCount)
	}
}

func TestAnalyzeStringColumn(t *testing.T) {
	col := storage.NewStringColumn("s")
	for i := 0; i < 1000; i++ {
		if i%3 == 0 {
			col.AppendString("common")
		} else {
			col.AppendString(string(rune('a'+i%26)) + "x")
		}
	}
	tbl := storage.NewTable("st", col)
	cs := Analyze(tbl, Options{SampleSize: 1000, Seed: 1}).Cols["s"]
	if !cs.IsString {
		t.Fatal("IsString = false")
	}
	code, _ := col.Code("common")
	f, ok := cs.MCVFracOf(code)
	if !ok || math.Abs(f-1.0/3) > 0.05 {
		t.Fatalf("common MCV frac = %g/%v", f, ok)
	}
}

func TestEmptyTableAnalyze(t *testing.T) {
	tbl := storage.NewTable("e", storage.NewIntColumn("x"))
	cs := Analyze(tbl, DefaultOptions()).Cols["x"]
	if cs.NDistinct != 1 {
		t.Fatalf("empty NDistinct = %g", cs.NDistinct)
	}
}
