// Package storage implements the in-memory column store that underpins the
// benchmark: append-only columnar tables with int64 and dictionary-encoded
// string columns, NULL support, and a simple catalog.
//
// The design deliberately mirrors what the paper's main-memory setting
// assumes: all data is RAM resident, tuples are identified by dense row ids,
// and joins operate on integer (surrogate key) columns.
package storage

import (
	"fmt"
	"sort"
)

// Kind identifies the logical type of a column.
type Kind uint8

const (
	// KindInt is a 64-bit signed integer column (also used for all keys).
	KindInt Kind = iota
	// KindString is a dictionary-encoded string column. Values are stored
	// as int64 codes into the column's dictionary, which makes equality
	// joins and predicate evaluation uniform across both kinds.
	KindString
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Column is an append-only columnar vector. String columns are dictionary
// encoded: Ints holds codes into Dict. NULLs are tracked in an optional
// bitmap; a column without NULLs carries no per-row overhead for them.
type Column struct {
	Name string
	Kind Kind

	// Ints holds the value of every row: the integer itself for KindInt,
	// or a dictionary code for KindString. For NULL rows the entry is 0
	// and must be ignored.
	Ints []int64

	// Dict is the string dictionary for KindString columns (code -> string).
	Dict []string

	// nulls[i] reports whether row i is NULL. nil means "no NULLs".
	nulls []bool

	dictIdx map[string]int64 // builder state: string -> code
}

// NewIntColumn returns an empty integer column.
func NewIntColumn(name string) *Column {
	return &Column{Name: name, Kind: KindInt}
}

// NewStringColumn returns an empty dictionary-encoded string column.
func NewStringColumn(name string) *Column {
	return &Column{
		Name:    name,
		Kind:    KindString,
		dictIdx: make(map[string]int64),
	}
}

// Len returns the number of rows in the column.
func (c *Column) Len() int { return len(c.Ints) }

// AppendInt appends an integer value. The column must be KindInt.
func (c *Column) AppendInt(v int64) {
	if c.Kind != KindInt {
		panic(fmt.Sprintf("storage: AppendInt on %s column %q", c.Kind, c.Name))
	}
	c.Ints = append(c.Ints, v)
	if c.nulls != nil {
		c.nulls = append(c.nulls, false)
	}
}

// AppendString appends a string value, interning it in the dictionary.
// The column must be KindString.
func (c *Column) AppendString(s string) {
	if c.Kind != KindString {
		panic(fmt.Sprintf("storage: AppendString on %s column %q", c.Kind, c.Name))
	}
	code, ok := c.dictIdx[s]
	if !ok {
		code = int64(len(c.Dict))
		c.Dict = append(c.Dict, s)
		c.dictIdx[s] = code
	}
	c.Ints = append(c.Ints, code)
	if c.nulls != nil {
		c.nulls = append(c.nulls, false)
	}
}

// AppendNull appends a NULL row.
func (c *Column) AppendNull() {
	if c.nulls == nil {
		c.nulls = make([]bool, len(c.Ints), cap(c.Ints)+1)
	}
	c.Ints = append(c.Ints, 0)
	c.nulls = append(c.nulls, true)
}

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool {
	return c.nulls != nil && c.nulls[i]
}

// HasNulls reports whether any row of the column is NULL.
func (c *Column) HasNulls() bool {
	for _, n := range c.nulls {
		if n {
			return true
		}
	}
	return false
}

// Int returns the raw int64 value (or dictionary code) of row i.
// The caller is responsible for checking IsNull first.
func (c *Column) Int(i int) int64 { return c.Ints[i] }

// StringAt returns the string value of row i of a KindString column.
func (c *Column) StringAt(i int) string {
	if c.Kind != KindString {
		panic(fmt.Sprintf("storage: StringAt on %s column %q", c.Kind, c.Name))
	}
	if c.IsNull(i) {
		return ""
	}
	return c.Dict[c.Ints[i]]
}

// Code returns the dictionary code for s, if s occurs in the column.
func (c *Column) Code(s string) (int64, bool) {
	if c.Kind != KindString {
		return 0, false
	}
	code, ok := c.dictIdx[s]
	return code, ok
}

// DictSize returns the number of distinct strings in the dictionary.
func (c *Column) DictSize() int { return len(c.Dict) }

// MinMax returns the minimum and maximum non-NULL value of the column and
// whether any non-NULL value exists.
func (c *Column) MinMax() (lo, hi int64, ok bool) {
	for i, v := range c.Ints {
		if c.IsNull(i) {
			continue
		}
		if !ok {
			lo, hi, ok = v, v, true
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, ok
}

// NullMask exposes the column's NULL bitmap for serialization: nulls[i]
// reports whether row i is NULL, and nil means "no NULLs". The returned
// slice is the column's own storage — callers must not modify it.
func (c *Column) NullMask() []bool { return c.nulls }

// RestoreColumn reconstructs a column from its serialized parts (the
// inverse of reading Ints, Dict and NullMask), rebuilding the dictionary
// index. Unlike the Append builders it validates rather than panics, so a
// decoder can feed it untrusted bytes: the kind must be known, nulls must
// be nil or as long as ints, KindInt columns must carry no dictionary, and
// every non-NULL code of a KindString column must index into dict.
func RestoreColumn(name string, kind Kind, ints []int64, dict []string, nulls []bool) (*Column, error) {
	if kind != KindInt && kind != KindString {
		return nil, fmt.Errorf("storage: column %q has unknown kind %d", name, uint8(kind))
	}
	if nulls != nil && len(nulls) != len(ints) {
		return nil, fmt.Errorf("storage: column %q has %d null flags for %d rows", name, len(nulls), len(ints))
	}
	hasNull := false
	for _, n := range nulls {
		if n {
			hasNull = true
			break
		}
	}
	if !hasNull {
		nulls = nil
	}
	c := &Column{Name: name, Kind: kind, Ints: ints, nulls: nulls}
	switch kind {
	case KindInt:
		if len(dict) != 0 {
			return nil, fmt.Errorf("storage: int column %q carries a %d-entry dictionary", name, len(dict))
		}
	case KindString:
		c.Dict = dict
		c.dictIdx = make(map[string]int64, len(dict))
		for code, s := range dict {
			c.dictIdx[s] = int64(code)
		}
		for i, v := range ints {
			if c.IsNull(i) {
				continue
			}
			if v < 0 || v >= int64(len(dict)) {
				return nil, fmt.Errorf("storage: column %q row %d has dictionary code %d outside [0,%d)", name, i, v, len(dict))
			}
		}
	}
	return c, nil
}

// SortedDictCodes returns the codes of all dictionary entries whose string
// satisfies match, in ascending code order. It is the building block for
// LIKE evaluation on dictionary-encoded columns.
func (c *Column) SortedDictCodes(match func(string) bool) []int64 {
	var codes []int64
	for code, s := range c.Dict {
		if match(s) {
			codes = append(codes, int64(code))
		}
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	return codes
}
