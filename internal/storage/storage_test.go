package storage

import (
	"testing"
	"testing/quick"
)

func TestIntColumnAppendAndRead(t *testing.T) {
	c := NewIntColumn("x")
	for i := int64(0); i < 100; i++ {
		c.AppendInt(i * 3)
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
	for i := 0; i < 100; i++ {
		if got := c.Int(i); got != int64(i*3) {
			t.Fatalf("Int(%d) = %d, want %d", i, got, i*3)
		}
		if c.IsNull(i) {
			t.Fatalf("row %d unexpectedly NULL", i)
		}
	}
	lo, hi, ok := c.MinMax()
	if !ok || lo != 0 || hi != 297 {
		t.Fatalf("MinMax = (%d,%d,%v), want (0,297,true)", lo, hi, ok)
	}
}

func TestStringColumnDictionaryEncoding(t *testing.T) {
	c := NewStringColumn("s")
	words := []string{"alpha", "beta", "alpha", "gamma", "beta", "alpha"}
	for _, w := range words {
		c.AppendString(w)
	}
	if c.DictSize() != 3 {
		t.Fatalf("DictSize = %d, want 3", c.DictSize())
	}
	for i, w := range words {
		if got := c.StringAt(i); got != w {
			t.Fatalf("StringAt(%d) = %q, want %q", i, got, w)
		}
	}
	// Equal strings share a code; different strings do not.
	if c.Int(0) != c.Int(2) || c.Int(0) == c.Int(1) {
		t.Fatalf("dictionary codes broken: %v", c.Ints)
	}
	code, ok := c.Code("gamma")
	if !ok || c.Dict[code] != "gamma" {
		t.Fatalf("Code(gamma) = (%d,%v)", code, ok)
	}
	if _, ok := c.Code("missing"); ok {
		t.Fatal("Code(missing) should not exist")
	}
}

func TestNullHandling(t *testing.T) {
	c := NewIntColumn("x")
	c.AppendInt(1)
	c.AppendNull()
	c.AppendInt(3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.IsNull(0) || !c.IsNull(1) || c.IsNull(2) {
		t.Fatalf("null mask wrong: %v %v %v", c.IsNull(0), c.IsNull(1), c.IsNull(2))
	}
	if !c.HasNulls() {
		t.Fatal("HasNulls = false")
	}
	lo, hi, ok := c.MinMax()
	if !ok || lo != 1 || hi != 3 {
		t.Fatalf("MinMax ignoring NULLs = (%d,%d,%v)", lo, hi, ok)
	}
}

func TestNullBeforeAndAfterValues(t *testing.T) {
	c := NewStringColumn("s")
	c.AppendNull()
	c.AppendString("a")
	c.AppendNull()
	if !c.IsNull(0) || c.IsNull(1) || !c.IsNull(2) {
		t.Fatal("null positions wrong")
	}
	if c.StringAt(1) != "a" {
		t.Fatalf("StringAt(1) = %q", c.StringAt(1))
	}
	if c.StringAt(0) != "" {
		t.Fatalf("StringAt(NULL) = %q, want empty", c.StringAt(0))
	}
}

func TestTableAndDatabase(t *testing.T) {
	id := NewIntColumn("id")
	name := NewStringColumn("name")
	for i := int64(0); i < 10; i++ {
		id.AppendInt(i)
		name.AppendString("n")
	}
	tbl := NewTable("t", id, name)
	if tbl.NumRows() != 10 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	if tbl.Column("id") != id || tbl.Column("nope") != nil {
		t.Fatal("Column lookup broken")
	}
	if err := tbl.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if w := tbl.TupleWidth(); w != 16 {
		t.Fatalf("TupleWidth = %d, want 16", w)
	}

	db := NewDatabase()
	db.Add(tbl)
	if db.Table("t") != tbl || db.Table("u") != nil {
		t.Fatal("database lookup broken")
	}
	if got := db.TableNames(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("TableNames = %v", got)
	}
	if db.TotalRows() != 10 {
		t.Fatalf("TotalRows = %d", db.TotalRows())
	}
	if err := db.Check(); err != nil {
		t.Fatalf("db.Check: %v", err)
	}
}

func TestTableCheckDetectsRaggedColumns(t *testing.T) {
	a := NewIntColumn("a")
	b := NewIntColumn("b")
	a.AppendInt(1)
	a.AppendInt(2)
	b.AppendInt(1)
	tbl := NewTable("ragged", a, b)
	if err := tbl.Check(); err == nil {
		t.Fatal("Check accepted ragged table")
	}
}

func TestDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for duplicate column")
		}
	}()
	NewTable("t", NewIntColumn("x"), NewIntColumn("x"))
}

func TestDuplicateTablePanics(t *testing.T) {
	db := NewDatabase()
	db.Add(NewTable("t", NewIntColumn("x")))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for duplicate table")
		}
	}()
	db.Add(NewTable("t", NewIntColumn("x")))
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for AppendString on int column")
		}
	}()
	NewIntColumn("x").AppendString("boom")
}

// Property: dictionary round-trip — any sequence of strings reads back
// exactly, and the dictionary never exceeds the number of distinct inputs.
func TestStringRoundTripProperty(t *testing.T) {
	f := func(words []string) bool {
		c := NewStringColumn("s")
		for _, w := range words {
			c.AppendString(w)
		}
		distinct := make(map[string]bool)
		for i, w := range words {
			if c.StringAt(i) != w {
				return false
			}
			distinct[w] = true
		}
		return c.DictSize() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedDictCodes(t *testing.T) {
	c := NewStringColumn("s")
	for _, w := range []string{"movie", "tv", "movietone", "short"} {
		c.AppendString(w)
	}
	codes := c.SortedDictCodes(func(s string) bool { return len(s) >= 5 })
	if len(codes) != 3 {
		t.Fatalf("got %d codes, want 3 (movie, movietone, short)", len(codes))
	}
	for i := 1; i < len(codes); i++ {
		if codes[i] <= codes[i-1] {
			t.Fatal("codes not sorted ascending")
		}
	}
}
