package storage

import (
	"fmt"
	"sort"
)

// Table is a named collection of equal-length columns.
type Table struct {
	Name string
	Cols []*Column

	byName map[string]int
}

// NewTable creates a table with the given columns. Column names must be
// unique within the table.
func NewTable(name string, cols ...*Column) *Table {
	t := &Table{Name: name, Cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := t.byName[c.Name]; dup {
			panic(fmt.Sprintf("storage: duplicate column %q in table %q", c.Name, name))
		}
		t.byName[c.Name] = i
	}
	return t
}

// NumRows returns the number of rows. All columns must have equal length;
// Check verifies this.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// Column returns the column with the given name, or nil if absent.
func (t *Table) Column(name string) *Column {
	i, ok := t.byName[name]
	if !ok {
		return nil
	}
	return t.Cols[i]
}

// MustColumn returns the named column or panics. It is used by internal
// machinery after schema validation has already happened.
func (t *Table) MustColumn(name string) *Column {
	c := t.Column(name)
	if c == nil {
		panic(fmt.Sprintf("storage: table %q has no column %q", t.Name, name))
	}
	return c
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		names[i] = c.Name
	}
	return names
}

// TupleWidth returns a rough per-tuple width in bytes, used by the
// disk-oriented cost model to translate rows into pages.
func (t *Table) TupleWidth() int {
	// 8 bytes per attribute is the natural width of our storage format.
	w := 8 * len(t.Cols)
	if w == 0 {
		w = 8
	}
	return w
}

// Check validates structural invariants: equal column lengths and
// resolvable names. It returns an error describing the first violation.
func (t *Table) Check() error {
	n := t.NumRows()
	for _, c := range t.Cols {
		if c.Len() != n {
			return fmt.Errorf("table %q: column %q has %d rows, want %d", t.Name, c.Name, c.Len(), n)
		}
	}
	return nil
}

// Database is a catalog of tables.
type Database struct {
	tables map[string]*Table
	order  []string
}

// NewDatabase returns an empty catalog.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// Add registers a table. Adding a duplicate name panics: schemas are static
// in this system and a duplicate is always a programming error.
func (d *Database) Add(t *Table) {
	if _, dup := d.tables[t.Name]; dup {
		panic(fmt.Sprintf("storage: duplicate table %q", t.Name))
	}
	d.tables[t.Name] = t
	d.order = append(d.order, t.Name)
}

// Table returns the named table, or nil if absent.
func (d *Database) Table(name string) *Table { return d.tables[name] }

// MustTable returns the named table or panics.
func (d *Database) MustTable(name string) *Table {
	t := d.Table(name)
	if t == nil {
		panic(fmt.Sprintf("storage: no table %q", name))
	}
	return t
}

// TableNames returns all table names in registration order.
func (d *Database) TableNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// TotalRows returns the sum of row counts over all tables.
func (d *Database) TotalRows() int {
	total := 0
	for _, name := range d.order {
		total += d.tables[name].NumRows()
	}
	return total
}

// Check validates every table in the catalog.
func (d *Database) Check() error {
	names := d.TableNames()
	sort.Strings(names)
	for _, name := range names {
		if err := d.tables[name].Check(); err != nil {
			return err
		}
	}
	return nil
}
