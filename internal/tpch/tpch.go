// Package tpch implements a miniature TPC-H data generator and three JOB-
// style renderings of TPC-H queries 5, 8 and 10. Its purpose in the paper is
// Figure 4: TPC-H data is generated under exactly the uniformity and
// independence assumptions that cardinality estimators make, so estimates
// are nearly perfect on it — unlike on the correlated IMDB data. The
// generator therefore deliberately draws every attribute independently and
// uniformly (within the value distributions of the TPC-H specification).
package tpch

import (
	"fmt"
	"math/rand"

	"jobench/internal/query"
	"jobench/internal/storage"
)

// Config controls generation. Scale 1.0 is a 1/100 TPC-H SF1:
// 15,000 orders, 60,000 lineitems.
type Config struct {
	Scale float64
	Seed  int64
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nations = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3},
	{"UNITED STATES", 1},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var typeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

// Generate builds the 7-table mini TPC-H database.
func Generate(cfg Config) *storage.Database {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nOrders := int(15000 * cfg.Scale)
	if nOrders < 500 {
		nOrders = 500
	}
	nCustomer := nOrders / 10
	nSupplier := maxInt(20, nOrders/150)
	nPart := maxInt(100, nOrders/8)

	db := storage.NewDatabase()

	// region
	{
		id := storage.NewIntColumn("id")
		name := storage.NewStringColumn("name")
		for i, r := range regions {
			id.AppendInt(int64(i + 1))
			name.AppendString(r)
		}
		db.Add(storage.NewTable("region", id, name))
	}
	// nation
	{
		id := storage.NewIntColumn("id")
		name := storage.NewStringColumn("name")
		region := storage.NewIntColumn("region_id")
		for i, n := range nations {
			id.AppendInt(int64(i + 1))
			name.AppendString(n.name)
			region.AppendInt(int64(n.region + 1))
		}
		db.Add(storage.NewTable("nation", id, name, region))
	}
	// supplier: nation uniform.
	{
		id := storage.NewIntColumn("id")
		name := storage.NewStringColumn("name")
		nation := storage.NewIntColumn("nation_id")
		for i := 0; i < nSupplier; i++ {
			id.AppendInt(int64(i + 1))
			name.AppendString(fmt.Sprintf("Supplier#%09d", i+1))
			nation.AppendInt(int64(1 + rng.Intn(len(nations))))
		}
		db.Add(storage.NewTable("supplier", id, name, nation))
	}
	// customer: nation and segment uniform, independent.
	{
		id := storage.NewIntColumn("id")
		name := storage.NewStringColumn("name")
		nation := storage.NewIntColumn("nation_id")
		seg := storage.NewStringColumn("mktsegment")
		for i := 0; i < nCustomer; i++ {
			id.AppendInt(int64(i + 1))
			name.AppendString(fmt.Sprintf("Customer#%09d", i+1))
			nation.AppendInt(int64(1 + rng.Intn(len(nations))))
			seg.AppendString(segments[rng.Intn(len(segments))])
		}
		db.Add(storage.NewTable("customer", id, name, nation, seg))
	}
	// part: type/brand/size uniform.
	{
		id := storage.NewIntColumn("id")
		ptype := storage.NewStringColumn("type")
		brand := storage.NewStringColumn("brand")
		size := storage.NewIntColumn("size")
		for i := 0; i < nPart; i++ {
			id.AppendInt(int64(i + 1))
			ptype.AppendString(typeSyllable1[rng.Intn(6)] + " " + typeSyllable2[rng.Intn(5)] + " " + typeSyllable3[rng.Intn(5)])
			brand.AppendString(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5)))
			size.AppendInt(int64(1 + rng.Intn(50)))
		}
		db.Add(storage.NewTable("part", id, ptype, brand, size))
	}
	// orders: customer uniform, dates uniform over 7 years (2556 days).
	{
		id := storage.NewIntColumn("id")
		cust := storage.NewIntColumn("customer_id")
		date := storage.NewIntColumn("orderdate")
		prio := storage.NewStringColumn("orderpriority")
		for i := 0; i < nOrders; i++ {
			id.AppendInt(int64(i + 1))
			cust.AppendInt(int64(1 + rng.Intn(nCustomer)))
			date.AppendInt(int64(rng.Intn(2556)))
			prio.AppendString(priorities[rng.Intn(len(priorities))])
		}
		db.Add(storage.NewTable("orders", id, cust, date, prio))
	}
	// lineitem: 1-7 per order (uniform), everything independent.
	{
		id := storage.NewIntColumn("id")
		order := storage.NewIntColumn("order_id")
		part := storage.NewIntColumn("part_id")
		supp := storage.NewIntColumn("supplier_id")
		qty := storage.NewIntColumn("quantity")
		disc := storage.NewIntColumn("discount")
		ship := storage.NewIntColumn("shipdate")
		ret := storage.NewStringColumn("returnflag")
		row := int64(1)
		orderDates := db.MustTable("orders").MustColumn("orderdate")
		for o := 0; o < nOrders; o++ {
			nl := 1 + rng.Intn(7)
			for k := 0; k < nl; k++ {
				id.AppendInt(row)
				order.AppendInt(int64(o + 1))
				part.AppendInt(int64(1 + rng.Intn(nPart)))
				supp.AppendInt(int64(1 + rng.Intn(nSupplier)))
				qty.AppendInt(int64(1 + rng.Intn(50)))
				disc.AppendInt(int64(rng.Intn(11)))
				ship.AppendInt(orderDates.Ints[o] + int64(1+rng.Intn(120)))
				// Spec: returned for "old" lineitems, else A/N; we keep the
				// ~25/25/50 split but draw it independently of the date so
				// the independence assumption holds by construction.
				r := rng.Float64()
				switch {
				case r < 0.25:
					ret.AppendString("R")
				case r < 0.5:
					ret.AppendString("A")
				default:
					ret.AppendString("N")
				}
				row++
			}
		}
		db.Add(storage.NewTable("lineitem", id, order, part, supp, qty, disc, ship, ret))
	}
	return db
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Queries returns SPJ renderings of TPC-H Q5, Q8 and Q10 over the mini
// schema (aggregations dropped, like the JOB queries).
func Queries() []*query.Query {
	q5 := &query.Query{
		ID: "tpch5",
		Rels: []query.Rel{
			{Alias: "c", Table: "customer"},
			{Alias: "o", Table: "orders", Preds: []*query.Pred{query.Between("orderdate", 730, 1095)}},
			{Alias: "l", Table: "lineitem"},
			{Alias: "s", Table: "supplier"},
			{Alias: "n", Table: "nation"},
			{Alias: "r", Table: "region", Preds: []*query.Pred{query.EqStr("name", "ASIA")}},
		},
		Joins: []query.Join{
			{LeftAlias: "c", LeftCol: "id", RightAlias: "o", RightCol: "customer_id"},
			{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"},
			{LeftAlias: "l", LeftCol: "supplier_id", RightAlias: "s", RightCol: "id"},
			{LeftAlias: "c", LeftCol: "nation_id", RightAlias: "s", RightCol: "nation_id"},
			{LeftAlias: "s", LeftCol: "nation_id", RightAlias: "n", RightCol: "id"},
			{LeftAlias: "n", LeftCol: "region_id", RightAlias: "r", RightCol: "id"},
		},
	}
	q8 := &query.Query{
		ID: "tpch8",
		Rels: []query.Rel{
			{Alias: "p", Table: "part", Preds: []*query.Pred{query.EqStr("type", "ECONOMY ANODIZED STEEL")}},
			{Alias: "s", Table: "supplier"},
			{Alias: "l", Table: "lineitem"},
			{Alias: "o", Table: "orders", Preds: []*query.Pred{query.Between("orderdate", 1095, 1825)}},
			{Alias: "c", Table: "customer"},
			{Alias: "n1", Table: "nation"},
			{Alias: "n2", Table: "nation"},
			{Alias: "r", Table: "region", Preds: []*query.Pred{query.EqStr("name", "AMERICA")}},
		},
		Joins: []query.Join{
			{LeftAlias: "p", LeftCol: "id", RightAlias: "l", RightCol: "part_id"},
			{LeftAlias: "s", LeftCol: "id", RightAlias: "l", RightCol: "supplier_id"},
			{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"},
			{LeftAlias: "o", LeftCol: "customer_id", RightAlias: "c", RightCol: "id"},
			{LeftAlias: "c", LeftCol: "nation_id", RightAlias: "n1", RightCol: "id"},
			{LeftAlias: "n1", LeftCol: "region_id", RightAlias: "r", RightCol: "id"},
			{LeftAlias: "s", LeftCol: "nation_id", RightAlias: "n2", RightCol: "id"},
		},
	}
	q10 := &query.Query{
		ID: "tpch10",
		Rels: []query.Rel{
			{Alias: "c", Table: "customer"},
			{Alias: "o", Table: "orders", Preds: []*query.Pred{query.Between("orderdate", 821, 911)}},
			{Alias: "l", Table: "lineitem", Preds: []*query.Pred{query.EqStr("returnflag", "R")}},
			{Alias: "n", Table: "nation"},
		},
		Joins: []query.Join{
			{LeftAlias: "c", LeftCol: "id", RightAlias: "o", RightCol: "customer_id"},
			{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"},
			{LeftAlias: "c", LeftCol: "nation_id", RightAlias: "n", RightCol: "id"},
		},
	}
	return []*query.Query{q5, q8, q10}
}
