// Package tpch implements a miniature TPC-H data generator and JOB-style
// SPJ renderings of ten TPC-H query families. Its original purpose in the
// paper is Figure 4: TPC-H data is generated under exactly the uniformity
// and independence assumptions that cardinality estimators make, so
// estimates are nearly perfect on it — unlike on the correlated IMDB data.
// The generator therefore deliberately draws every attribute independently
// and uniformly (within the value distributions of the TPC-H
// specification). As a first-class workload (internal/workload) the full
// ten-family set exercises the optimizer; Fig4Queries returns the original
// three used by the figure-4 experiment.
package tpch

import (
	"fmt"
	"math/rand"

	"jobench/internal/index"
	"jobench/internal/query"
	"jobench/internal/storage"
)

// Config controls generation. Scale 1.0 is a 1/100 TPC-H SF1:
// 15,000 orders, 60,000 lineitems. Zero values default like the facade:
// Scale 0 means 1.0, Seed 0 means 42.
type Config struct {
	Scale float64
	Seed  int64
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nations = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3},
	{"UNITED STATES", 1},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var typeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

// Generate builds the 7-table mini TPC-H database.
func Generate(cfg Config) *storage.Database {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nOrders := int(15000 * cfg.Scale)
	if nOrders < 500 {
		nOrders = 500
	}
	nCustomer := nOrders / 10
	nSupplier := max(20, nOrders/150)
	nPart := max(100, nOrders/8)

	db := storage.NewDatabase()

	// region
	{
		id := storage.NewIntColumn("id")
		name := storage.NewStringColumn("name")
		for i, r := range regions {
			id.AppendInt(int64(i + 1))
			name.AppendString(r)
		}
		db.Add(storage.NewTable("region", id, name))
	}
	// nation
	{
		id := storage.NewIntColumn("id")
		name := storage.NewStringColumn("name")
		region := storage.NewIntColumn("region_id")
		for i, n := range nations {
			id.AppendInt(int64(i + 1))
			name.AppendString(n.name)
			region.AppendInt(int64(n.region + 1))
		}
		db.Add(storage.NewTable("nation", id, name, region))
	}
	// supplier: nation uniform.
	{
		id := storage.NewIntColumn("id")
		name := storage.NewStringColumn("name")
		nation := storage.NewIntColumn("nation_id")
		for i := 0; i < nSupplier; i++ {
			id.AppendInt(int64(i + 1))
			name.AppendString(fmt.Sprintf("Supplier#%09d", i+1))
			nation.AppendInt(int64(1 + rng.Intn(len(nations))))
		}
		db.Add(storage.NewTable("supplier", id, name, nation))
	}
	// customer: nation and segment uniform, independent.
	{
		id := storage.NewIntColumn("id")
		name := storage.NewStringColumn("name")
		nation := storage.NewIntColumn("nation_id")
		seg := storage.NewStringColumn("mktsegment")
		for i := 0; i < nCustomer; i++ {
			id.AppendInt(int64(i + 1))
			name.AppendString(fmt.Sprintf("Customer#%09d", i+1))
			nation.AppendInt(int64(1 + rng.Intn(len(nations))))
			seg.AppendString(segments[rng.Intn(len(segments))])
		}
		db.Add(storage.NewTable("customer", id, name, nation, seg))
	}
	// part: type/brand/size uniform.
	{
		id := storage.NewIntColumn("id")
		ptype := storage.NewStringColumn("type")
		brand := storage.NewStringColumn("brand")
		size := storage.NewIntColumn("size")
		for i := 0; i < nPart; i++ {
			id.AppendInt(int64(i + 1))
			ptype.AppendString(typeSyllable1[rng.Intn(6)] + " " + typeSyllable2[rng.Intn(5)] + " " + typeSyllable3[rng.Intn(5)])
			brand.AppendString(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5)))
			size.AppendInt(int64(1 + rng.Intn(50)))
		}
		db.Add(storage.NewTable("part", id, ptype, brand, size))
	}
	// orders: customer uniform, dates uniform over 7 years (2556 days).
	{
		id := storage.NewIntColumn("id")
		cust := storage.NewIntColumn("customer_id")
		date := storage.NewIntColumn("orderdate")
		prio := storage.NewStringColumn("orderpriority")
		for i := 0; i < nOrders; i++ {
			id.AppendInt(int64(i + 1))
			cust.AppendInt(int64(1 + rng.Intn(nCustomer)))
			date.AppendInt(int64(rng.Intn(2556)))
			prio.AppendString(priorities[rng.Intn(len(priorities))])
		}
		db.Add(storage.NewTable("orders", id, cust, date, prio))
	}
	// lineitem: 1-7 per order (uniform), everything independent.
	{
		id := storage.NewIntColumn("id")
		order := storage.NewIntColumn("order_id")
		part := storage.NewIntColumn("part_id")
		supp := storage.NewIntColumn("supplier_id")
		qty := storage.NewIntColumn("quantity")
		disc := storage.NewIntColumn("discount")
		ship := storage.NewIntColumn("shipdate")
		ret := storage.NewStringColumn("returnflag")
		row := int64(1)
		orderDates := db.MustTable("orders").MustColumn("orderdate")
		for o := 0; o < nOrders; o++ {
			nl := 1 + rng.Intn(7)
			for k := 0; k < nl; k++ {
				id.AppendInt(row)
				order.AppendInt(int64(o + 1))
				part.AppendInt(int64(1 + rng.Intn(nPart)))
				supp.AppendInt(int64(1 + rng.Intn(nSupplier)))
				qty.AppendInt(int64(1 + rng.Intn(50)))
				disc.AppendInt(int64(rng.Intn(11)))
				ship.AppendInt(orderDates.Ints[o] + int64(1+rng.Intn(120)))
				// Spec: returned for "old" lineitems, else A/N; we keep the
				// ~25/25/50 split but draw it independently of the date so
				// the independence assumption holds by construction.
				r := rng.Float64()
				switch {
				case r < 0.25:
					ret.AppendString("R")
				case r < 0.5:
					ret.AppendString("A")
				default:
					ret.AppendString("N")
				}
				row++
			}
		}
		db.Add(storage.NewTable("lineitem", id, order, part, supp, qty, disc, ship, ret))
	}
	return db
}

// FK describes one foreign-key relationship of the mini TPC-H schema.
type FK struct {
	Table     string
	Column    string
	RefTable  string
	RefColumn string
}

// ForeignKeys returns every FK of the mini schema. It drives the PK+FK
// index configuration.
func ForeignKeys() []FK {
	return []FK{
		{"nation", "region_id", "region", "id"},
		{"supplier", "nation_id", "nation", "id"},
		{"customer", "nation_id", "nation", "id"},
		{"orders", "customer_id", "customer", "id"},
		{"lineitem", "order_id", "orders", "id"},
		{"lineitem", "part_id", "part", "id"},
		{"lineitem", "supplier_id", "supplier", "id"},
	}
}

// TableNames lists the 7 tables of the mini schema.
func TableNames() []string {
	return []string{
		"region", "nation", "supplier", "customer", "part", "orders",
		"lineitem",
	}
}

// BuildIndexes constructs the index set for the chosen physical design,
// mirroring imdb.BuildIndexes: PKOnly hashes every id column, PKFK
// additionally hashes every foreign-key column.
func BuildIndexes(db *storage.Database, cfg index.Config) (*index.Set, error) {
	set := index.NewSet()
	if cfg == index.NoIndexes {
		return set, nil
	}
	for _, name := range TableNames() {
		if err := set.BuildHashOn(db, name, "id", true); err != nil {
			return nil, err
		}
	}
	if cfg == index.PKOnly {
		return set, nil
	}
	for _, fk := range ForeignKeys() {
		if err := set.BuildHashOn(db, fk.Table, fk.Column, false); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// Queries returns SPJ renderings of ten TPC-H query families over the mini
// schema (aggregations dropped, like the JOB queries), in family order.
// The three figure-4 families (Q5, Q8, Q10) are byte-identical to the
// original appendix versions; Fig4Queries returns just those.
func Queries() []*query.Query {
	qs := []*query.Query{q3(), q4()}
	qs = append(qs, q5(), q7(), q8(), q9(), q10(), q12(), q14(), q19())
	return qs
}

// Fig4Queries returns the original three TPC-H renderings (Q5, Q8, Q10)
// that the figure-4 experiment measures, unchanged from when they were the
// whole workload — the experiment's report bytes depend on exactly this
// set.
func Fig4Queries() []*query.Query {
	return []*query.Query{q5(), q8(), q10()}
}

// q3 is TPC-H Q3: shipping priority — customers of one market segment with
// orders placed before, and lineitems shipped after, a date.
func q3() *query.Query {
	return &query.Query{
		ID: "tpch3",
		Rels: []query.Rel{
			{Alias: "c", Table: "customer", Preds: []*query.Pred{query.EqStr("mktsegment", "BUILDING")}},
			{Alias: "o", Table: "orders", Preds: []*query.Pred{query.LtInt("orderdate", 760)}},
			{Alias: "l", Table: "lineitem", Preds: []*query.Pred{query.GtInt("shipdate", 760)}},
		},
		Joins: []query.Join{
			{LeftAlias: "c", LeftCol: "id", RightAlias: "o", RightCol: "customer_id"},
			{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"},
		},
	}
}

// q4 is TPC-H Q4: order priority checking — orders of one quarter joined
// with their late lineitems.
func q4() *query.Query {
	return &query.Query{
		ID: "tpch4",
		Rels: []query.Rel{
			{Alias: "o", Table: "orders", Preds: []*query.Pred{query.Between("orderdate", 912, 1003)}},
			{Alias: "l", Table: "lineitem", Preds: []*query.Pred{query.GtInt("shipdate", 1003)}},
		},
		Joins: []query.Join{
			{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"},
		},
	}
}

// q7 is TPC-H Q7: volume shipping — supplier and customer nations fixed to
// a trading pair, lineitems within a two-year window.
func q7() *query.Query {
	return &query.Query{
		ID: "tpch7",
		Rels: []query.Rel{
			{Alias: "s", Table: "supplier"},
			{Alias: "l", Table: "lineitem", Preds: []*query.Pred{query.Between("shipdate", 730, 1460)}},
			{Alias: "o", Table: "orders"},
			{Alias: "c", Table: "customer"},
			{Alias: "n1", Table: "nation", Preds: []*query.Pred{query.EqStr("name", "FRANCE")}},
			{Alias: "n2", Table: "nation", Preds: []*query.Pred{query.EqStr("name", "GERMANY")}},
		},
		Joins: []query.Join{
			{LeftAlias: "s", LeftCol: "id", RightAlias: "l", RightCol: "supplier_id"},
			{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"},
			{LeftAlias: "o", LeftCol: "customer_id", RightAlias: "c", RightCol: "id"},
			{LeftAlias: "s", LeftCol: "nation_id", RightAlias: "n1", RightCol: "id"},
			{LeftAlias: "c", LeftCol: "nation_id", RightAlias: "n2", RightCol: "id"},
		},
	}
}

// q9 is TPC-H Q9: product type profit — lineitems of parts of one material
// traced through supplier nation and order.
func q9() *query.Query {
	return &query.Query{
		ID: "tpch9",
		Rels: []query.Rel{
			{Alias: "p", Table: "part", Preds: []*query.Pred{query.Like("type", "%STEEL")}},
			{Alias: "s", Table: "supplier"},
			{Alias: "l", Table: "lineitem"},
			{Alias: "o", Table: "orders"},
			{Alias: "n", Table: "nation"},
		},
		Joins: []query.Join{
			{LeftAlias: "p", LeftCol: "id", RightAlias: "l", RightCol: "part_id"},
			{LeftAlias: "s", LeftCol: "id", RightAlias: "l", RightCol: "supplier_id"},
			{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"},
			{LeftAlias: "s", LeftCol: "nation_id", RightAlias: "n", RightCol: "id"},
		},
	}
}

// q12 is TPC-H Q12: shipping modes and order priority — urgent orders with
// lineitems shipped in one year.
func q12() *query.Query {
	return &query.Query{
		ID: "tpch12",
		Rels: []query.Rel{
			{Alias: "o", Table: "orders", Preds: []*query.Pred{query.InStr("orderpriority", "1-URGENT", "2-HIGH")}},
			{Alias: "l", Table: "lineitem", Preds: []*query.Pred{query.Between("shipdate", 1095, 1460)}},
		},
		Joins: []query.Join{
			{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"},
		},
	}
}

// q14 is TPC-H Q14: promotion effect — promo parts in a one-month shipping
// window.
func q14() *query.Query {
	return &query.Query{
		ID: "tpch14",
		Rels: []query.Rel{
			{Alias: "l", Table: "lineitem", Preds: []*query.Pred{query.Between("shipdate", 1186, 1216)}},
			{Alias: "p", Table: "part", Preds: []*query.Pred{query.Like("type", "PROMO%")}},
		},
		Joins: []query.Join{
			{LeftAlias: "l", LeftCol: "part_id", RightAlias: "p", RightCol: "id"},
		},
	}
}

// q19 is TPC-H Q19: discounted revenue — one brand, small sizes, low
// quantities.
func q19() *query.Query {
	return &query.Query{
		ID: "tpch19",
		Rels: []query.Rel{
			{Alias: "l", Table: "lineitem", Preds: []*query.Pred{query.Between("quantity", 1, 11)}},
			{Alias: "p", Table: "part", Preds: []*query.Pred{
				query.EqStr("brand", "Brand#12"),
				query.Between("size", 1, 5),
			}},
		},
		Joins: []query.Join{
			{LeftAlias: "l", LeftCol: "part_id", RightAlias: "p", RightCol: "id"},
		},
	}
}

// q5 is TPC-H Q5: local supplier volume, unchanged from the figure-4
// appendix rendering.
func q5() *query.Query {
	q5 := &query.Query{
		ID: "tpch5",
		Rels: []query.Rel{
			{Alias: "c", Table: "customer"},
			{Alias: "o", Table: "orders", Preds: []*query.Pred{query.Between("orderdate", 730, 1095)}},
			{Alias: "l", Table: "lineitem"},
			{Alias: "s", Table: "supplier"},
			{Alias: "n", Table: "nation"},
			{Alias: "r", Table: "region", Preds: []*query.Pred{query.EqStr("name", "ASIA")}},
		},
		Joins: []query.Join{
			{LeftAlias: "c", LeftCol: "id", RightAlias: "o", RightCol: "customer_id"},
			{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"},
			{LeftAlias: "l", LeftCol: "supplier_id", RightAlias: "s", RightCol: "id"},
			{LeftAlias: "c", LeftCol: "nation_id", RightAlias: "s", RightCol: "nation_id"},
			{LeftAlias: "s", LeftCol: "nation_id", RightAlias: "n", RightCol: "id"},
			{LeftAlias: "n", LeftCol: "region_id", RightAlias: "r", RightCol: "id"},
		},
	}
	return q5
}

// q8 is TPC-H Q8: national market share, unchanged from the figure-4
// appendix rendering.
func q8() *query.Query {
	q8 := &query.Query{
		ID: "tpch8",
		Rels: []query.Rel{
			{Alias: "p", Table: "part", Preds: []*query.Pred{query.EqStr("type", "ECONOMY ANODIZED STEEL")}},
			{Alias: "s", Table: "supplier"},
			{Alias: "l", Table: "lineitem"},
			{Alias: "o", Table: "orders", Preds: []*query.Pred{query.Between("orderdate", 1095, 1825)}},
			{Alias: "c", Table: "customer"},
			{Alias: "n1", Table: "nation"},
			{Alias: "n2", Table: "nation"},
			{Alias: "r", Table: "region", Preds: []*query.Pred{query.EqStr("name", "AMERICA")}},
		},
		Joins: []query.Join{
			{LeftAlias: "p", LeftCol: "id", RightAlias: "l", RightCol: "part_id"},
			{LeftAlias: "s", LeftCol: "id", RightAlias: "l", RightCol: "supplier_id"},
			{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"},
			{LeftAlias: "o", LeftCol: "customer_id", RightAlias: "c", RightCol: "id"},
			{LeftAlias: "c", LeftCol: "nation_id", RightAlias: "n1", RightCol: "id"},
			{LeftAlias: "n1", LeftCol: "region_id", RightAlias: "r", RightCol: "id"},
			{LeftAlias: "s", LeftCol: "nation_id", RightAlias: "n2", RightCol: "id"},
		},
	}
	return q8
}

// q10 is TPC-H Q10: returned item reporting, unchanged from the figure-4
// appendix rendering.
func q10() *query.Query {
	q10 := &query.Query{
		ID: "tpch10",
		Rels: []query.Rel{
			{Alias: "c", Table: "customer"},
			{Alias: "o", Table: "orders", Preds: []*query.Pred{query.Between("orderdate", 821, 911)}},
			{Alias: "l", Table: "lineitem", Preds: []*query.Pred{query.EqStr("returnflag", "R")}},
			{Alias: "n", Table: "nation"},
		},
		Joins: []query.Join{
			{LeftAlias: "c", LeftCol: "id", RightAlias: "o", RightCol: "customer_id"},
			{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"},
			{LeftAlias: "c", LeftCol: "nation_id", RightAlias: "n", RightCol: "id"},
		},
	}
	return q10
}
